package senn

// integration_test.go exercises whole-system flows across module
// boundaries: SENN feeding SNNN, the range-query extension against the
// R*-tree server, and peer populations produced by an actual simulation.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/spatialnet"
)

// TestSNNNOverSENNMatchesBruteForce drives the complete §3.4 pipeline: the
// Euclidean candidate stream comes from SENN (peers + bounded server
// fallback), network distances come from a generated road network, and the
// result must equal the brute-force network kNN over all POIs.
func TestSNNNOverSENNMatchesBruteForce(t *testing.T) {
	roads, err := GenerateRoadNetwork(GridConfig{
		Width: 3000, Height: 3000, Spacing: 250, SecondaryEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	edges := roads.Edges()
	pois := make([]POI, 50)
	for i := range pois {
		e := edges[rng.Intn(len(edges))]
		pois[i] = POI{ID: int64(i), Loc: roads.Loc(e.From).Lerp(roads.Loc(e.To), rng.Float64())}
	}
	db := NewDatabase(pois)
	var peers []PeerCache
	for i := 0; i < 10; i++ {
		loc := Pt(rng.Float64()*3000, rng.Float64()*3000)
		peers = append(peers, NewPeerCache(loc, db.KNN(loc, 8, Bounds{})))
	}

	for trial := 0; trial < 10; trial++ {
		q := Pt(rng.Float64()*3000, rng.Float64()*3000)
		k := 1 + rng.Intn(4)
		fetch := func(n int) []POI {
			r := Query(q, n, peers, db, QueryOptions{})
			out := make([]POI, len(r.Neighbors))
			for i, rp := range r.Neighbors {
				out[i] = rp.POI
			}
			return out
		}
		nd := NetworkDistance(roads, q)
		got := NetworkQuery(q, k, fetch, nd)
		want := spatialnet.BruteForceNetworkKNN(q, k, pois, nd)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].ND-want[i].ND) > 1e-6 {
				t.Fatalf("trial %d rank %d: ND %v, want %v", trial, i+1, got[i].ND, want[i].ND)
			}
		}
	}
}

// TestRangeQueryAgainstServerOracle validates the range extension end to end
// over the R*-tree server.
func TestRangeQueryAgainstServerOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pois := make([]POI, 300)
	for i := range pois {
		pois[i] = POI{ID: int64(i), Loc: Pt(rng.Float64()*2000, rng.Float64()*2000)}
	}
	db := NewDatabase(pois)
	var peers []PeerCache
	for i := 0; i < 8; i++ {
		loc := Pt(rng.Float64()*2000, rng.Float64()*2000)
		peers = append(peers, NewPeerCache(loc, db.KNN(loc, 20, Bounds{})))
	}

	for trial := 0; trial < 50; trial++ {
		q := Pt(rng.Float64()*2000, rng.Float64()*2000)
		r := rng.Float64() * 400
		res := RangeQueryWithin(q, r, peers, db, QueryOptions{})
		if !res.Certain {
			t.Fatalf("trial %d: server-backed range query not certain", trial)
		}
		want := map[int64]bool{}
		for _, p := range pois {
			if q.Dist(p.Loc) <= r {
				want[p.ID] = true
			}
		}
		if len(res.POIs) != len(want) {
			t.Fatalf("trial %d (src %v): got %d POIs, want %d",
				trial, res.Source, len(res.POIs), len(want))
		}
		for _, p := range res.POIs {
			if !want[p.ID] {
				t.Fatalf("trial %d: unexpected POI %d", trial, p.ID)
			}
		}
	}
}

// TestSimulationPeersAreValidCaches runs a short simulation and then
// validates that every cache the hosts hold is a sound shareable result: an
// exact distance prefix of the POI set around its query location.
func TestSimulationPeersAreValidCaches(t *testing.T) {
	cfg := PaperConfig(LosAngeles, Area2mi)
	cfg.Duration = 600
	w, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Run()
	pois := w.Server().POIs()

	checked := 0
	// Reconstruct peer caches by querying the same infrastructure the
	// simulator uses: collect every host's cache via a fresh SENN query
	// audit is not needed — validate through the server's POI set directly.
	for _, pc := range harvestCaches(w) {
		if pc.IsEmpty() {
			continue
		}
		checked++
		// Every POI strictly inside the cache circle must be cached.
		r := pc.Radius()
		cached := map[int64]bool{}
		for _, n := range pc.Neighbors {
			cached[n.ID] = true
		}
		for _, p := range pois {
			if pc.QueryLoc.Dist(p.Loc) < r-1e-9 && !cached[p.ID] {
				t.Fatalf("cache at %v radius %.1f misses POI %d at %.1f — not an exact prefix",
					pc.QueryLoc, r, p.ID, pc.QueryLoc.Dist(p.Loc))
			}
		}
	}
	if checked < 50 {
		t.Errorf("only %d caches to check; run too short", checked)
	}
}

// harvestCaches extracts the current cache entries of all hosts.
func harvestCaches(w *Simulation) []PeerCache {
	return w.PeerCachesSnapshot()
}
