package senn

// ablation_test.go quantifies the individual design choices of the system,
// as promised in DESIGN.md. Each ablation switches one mechanism off (or
// swaps an implementation) and reports the effect:
//
//   - Heuristic 3.3 peer ordering vs arbitrary order;
//   - the kNN_multiple stage vs single-peer verification only;
//   - the exact arc-coverage region test vs the paper's polygonization;
//   - EINN pruning bounds vs plain INN at the server.
//
// Run with: go test -bench Ablation -benchmem

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/sim"
)

// ablationScene builds a reproducible peer population over clustered POIs.
func ablationScene(seed int64) (pois []core.POI, caches []core.PeerCache, srv *sim.ServerModule, rng *rand.Rand) {
	rng = rand.New(rand.NewSource(seed))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(20000, 20000))
	pois = sim.ClusteredPOIs(3000, bounds, 120, 90, rng)
	srv = sim.NewServerModule(pois, 30)
	caches = make([]core.PeerCache, 1200)
	for i := range caches {
		loc := geom.Pt(rng.Float64()*20000, rng.Float64()*20000)
		res := nn.BestFirst(srv.Tree(), loc, 15)
		ns := make([]core.POI, len(res))
		for j, r := range res {
			ns[j] = r.Data.(core.POI)
		}
		caches[i] = core.NewPeerCache(loc, ns)
	}
	srv.ResetStats()
	return pois, caches, srv, rng
}

// gatherPeers returns the caches within radius of q.
func gatherPeers(q geom.Point, caches []core.PeerCache, radius float64) []core.PeerCache {
	var out []core.PeerCache
	for _, c := range caches {
		if q.Dist(c.QueryLoc) <= radius {
			out = append(out, c)
		}
	}
	return out
}

// BenchmarkAblationPeerOrdering compares Heuristic 3.3 (nearest cached query
// location first) against the unsorted peer order: the heuristic should
// reach k certain objects after examining fewer peers.
func BenchmarkAblationPeerOrdering(b *testing.B) {
	_, caches, _, rng := ablationScene(1)
	const k = 5
	var withH, withoutH, solvedBoth int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		home := caches[rng.Intn(len(caches))]
		q := home.QueryLoc.Add(geom.Pt(rng.NormFloat64()*120, rng.NormFloat64()*120))
		peers := gatherPeers(q, caches, 600)

		count := func(ps []core.PeerCache) (peersUsed int, solved bool) {
			h := core.NewResultHeap(k)
			for _, p := range ps {
				peersUsed++
				core.VerifySinglePeer(q, p, h)
				if h.Complete() {
					return peersUsed, true
				}
			}
			return peersUsed, false
		}
		u1, s1 := count(core.SortPeersByProximity(q, peers))
		u2, s2 := count(peers) // arbitrary (generation) order
		if s1 && s2 {
			solvedBoth++
			withH += u1
			withoutH += u2
		}
	}
	if solvedBoth > 0 {
		b.ReportMetric(float64(withH)/float64(solvedBoth), "peersUsed/sorted")
		b.ReportMetric(float64(withoutH)/float64(solvedBoth), "peersUsed/unsorted")
	}
}

// BenchmarkAblationMultiPeerStage measures how many queries only the merged
// region of kNN_multiple can resolve — the stage's whole contribution.
func BenchmarkAblationMultiPeerStage(b *testing.B) {
	_, caches, _, rng := ablationScene(2)
	const k = 6
	var singleOnly, multiRescued, unresolved int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		home := caches[rng.Intn(len(caches))]
		q := home.QueryLoc.Add(geom.Pt(rng.NormFloat64()*150, rng.NormFloat64()*150))
		peers := core.SortPeersByProximity(q, gatherPeers(q, caches, 400))
		h := core.NewResultHeap(k)
		for _, p := range peers {
			core.VerifySinglePeer(q, p, h)
			if h.Complete() {
				break
			}
		}
		switch {
		case h.Complete():
			singleOnly++
		default:
			core.VerifyMultiPeer(q, peers, h)
			if h.Complete() {
				multiRescued++
			} else {
				unresolved++
			}
		}
	}
	total := float64(singleOnly + multiRescued + unresolved)
	if total > 0 {
		b.ReportMetric(100*float64(singleOnly)/total, "single%")
		b.ReportMetric(100*float64(multiRescued)/total, "multiRescued%")
		b.ReportMetric(100*float64(unresolved)/total, "server%")
	}
}

// BenchmarkAblationRegionExact and ...RegionPolygonized compare the two
// Lemma 3.8 implementations on identical workloads: same verdicts (up to the
// polygonization's conservatism), very different cost.
func BenchmarkAblationRegionExact(b *testing.B) {
	benchRegionMethod(b, func(r *geom.Region, c geom.Circle) bool { return r.CoversCircle(c) })
}

// BenchmarkAblationRegionPolygonized is the paper-faithful counterpart of
// BenchmarkAblationRegionExact.
func BenchmarkAblationRegionPolygonized(b *testing.B) {
	benchRegionMethod(b, func(r *geom.Region, c geom.Circle) bool { return r.CoversCirclePolygonized(c) })
}

func benchRegionMethod(b *testing.B, covers func(*geom.Region, geom.Circle) bool) {
	rng := rand.New(rand.NewSource(3))
	type tc struct {
		region *geom.Region
		cand   geom.Circle
	}
	cases := make([]tc, 256)
	for i := range cases {
		var circles []geom.Circle
		for j := 0; j < 2+rng.Intn(6); j++ {
			circles = append(circles, geom.NewCircle(
				geom.Pt(rng.Float64()*100, rng.Float64()*100), 20+rng.Float64()*30))
		}
		cases[i] = tc{
			region: geom.NewRegion(circles...),
			cand:   geom.NewCircle(geom.Pt(rng.Float64()*100, rng.Float64()*100), 5+rng.Float64()*30),
		}
	}
	covered := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cases[i%len(cases)]
		if covers(c.region, c.cand) {
			covered++
		}
	}
	b.ReportMetric(100*float64(covered)/float64(b.N), "covered%")
}

// BenchmarkAblationServerBoundsOff reruns the Figure 17 situation with the
// bounds discarded, isolating their PAR contribution.
func BenchmarkAblationServerBoundsOff(b *testing.B) {
	benchServerBounds(b, false)
}

// BenchmarkAblationServerBoundsOn is the bounded counterpart.
func BenchmarkAblationServerBoundsOn(b *testing.B) {
	benchServerBounds(b, true)
}

func benchServerBounds(b *testing.B, useBounds bool) {
	_, caches, srv, rng := ablationScene(4)
	const k, capacity = 5, 15
	tree := srv.Tree()
	var pages int64
	queries := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		home := caches[rng.Intn(len(caches))]
		q := home.QueryLoc.Add(geom.Pt(rng.NormFloat64()*100, rng.NormFloat64()*100))
		peers := core.SortPeersByProximity(q, gatherPeers(q, caches, 200))
		h := core.NewResultHeap(capacity)
		for _, p := range peers {
			core.VerifySinglePeer(q, p, h)
			if h.NumCertain() >= k {
				break
			}
		}
		if h.NumCertain() >= k {
			continue // peer-resolved
		}
		bounds := nn.NoBounds
		fetch := capacity
		if useBounds {
			bounds = h.Bounds()
			bounds.HasUpper = false
			if ub, ok := h.UpperBoundFor(k); ok {
				bounds.Upper, bounds.HasUpper = ub, true
			}
			fetch = capacity - h.NumCertain()
		}
		tree.ResetAccessCount()
		nn.EINN(tree, q, fetch, bounds)
		pages += tree.AccessCount()
		queries++
	}
	if queries > 0 {
		b.ReportMetric(float64(pages)/float64(queries), "pages/serverquery")
	}
}
