package senn

import (
	"math/rand"
	"testing"

	"repro/internal/experiments"
)

// newRand keeps seeded construction uniform across the root tests/benches.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestFacadeQueryRoundTrip exercises the public API end to end: database,
// peer caches, SENN query, verification helpers.
func TestFacadeQueryRoundTrip(t *testing.T) {
	rng := newRand(1)
	pois := make([]POI, 200)
	for i := range pois {
		pois[i] = POI{ID: int64(i), Loc: Pt(rng.Float64()*5000, rng.Float64()*5000)}
	}
	db := NewDatabase(pois)

	peerLoc := Pt(2500, 2500)
	peer := NewPeerCache(peerLoc, db.KNN(peerLoc, 15, Bounds{}))
	db.ResetStats()

	q := Pt(2520, 2510)
	res := Query(q, 3, []PeerCache{peer}, db, QueryOptions{})
	if len(res.Neighbors) != 3 {
		t.Fatalf("got %d neighbors", len(res.Neighbors))
	}
	if res.Source != SolvedBySinglePeer {
		t.Errorf("expected single-peer resolution next to the peer's cache, got %v", res.Source)
	}
	// Verify against a direct (unshared) database answer.
	direct := db.KNN(q, 3, Bounds{})
	for i := range direct {
		if direct[i].ID != res.Neighbors[i].ID {
			t.Fatalf("facade answer differs from direct query at rank %d", i+1)
		}
	}
}

func TestFacadeHeapAndVerification(t *testing.T) {
	h := NewResultHeap(2)
	peer := NewPeerCache(Pt(1, 0), []POI{
		{ID: 1, Loc: Pt(0, 1)},
		{ID: 2, Loc: Pt(4, 0)},
	})
	VerifySinglePeer(Pt(0, 0), peer, h)
	if h.NumCertain() != 1 {
		t.Errorf("certain = %d, want 1", h.NumCertain())
	}
	VerifyMultiPeer(Pt(0, 0), []PeerCache{peer}, h)
	if h.Len() == 0 {
		t.Error("heap empty after verification")
	}
}

func TestFacadeNetworkQuery(t *testing.T) {
	roads, err := GenerateRoadNetwork(GridConfig{
		Width: 1000, Height: 1000, Spacing: 100, SecondaryEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pois := []POI{
		{ID: 1, Loc: Pt(100, 100)},
		{ID: 2, Loc: Pt(900, 900)},
		{ID: 3, Loc: Pt(500, 480)},
	}
	db := NewDatabase(pois)
	q := Pt(480, 500)
	fetch := func(n int) []POI { return db.KNN(q, n, Bounds{}) }
	res := NetworkQuery(q, 1, fetch, NetworkDistance(roads, q))
	if len(res) != 1 || res[0].ID != 3 {
		t.Fatalf("network NN = %v, want POI 3", res)
	}
	if res[0].ND < res[0].ED {
		t.Errorf("ND %v < ED %v", res[0].ND, res[0].ED)
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg := PaperConfig(Riverside, Area2mi)
	cfg.Duration = 300
	w, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := w.Run()
	total := m.SolvedBySingle + m.SolvedByMulti + m.SolvedByServer + m.SolvedUncertain
	if total != m.TotalQueries {
		t.Errorf("conservation violated: %v", m)
	}
}

func TestFacadeRegionCoverage(t *testing.T) {
	r := NewRegion(
		Circle{Center: Pt(-3, 0), Radius: 4},
		Circle{Center: Pt(3, 0), Radius: 4},
	)
	if !r.CoversCircle(Circle{Center: Pt(0, 0), Radius: 2.5}) {
		t.Error("union should cover the lens-center disc")
	}
	if r.CoversCircle(Circle{Center: Pt(0, 0), Radius: 5}) {
		t.Error("too-large disc must not verify")
	}
}

func TestPaperConfigMatchesExperiments(t *testing.T) {
	got := PaperConfig(LosAngeles, Area30mi)
	want := experiments.BaseConfig(experiments.LosAngeles, experiments.Area30mi)
	if got.NumHosts != want.NumHosts || got.NumPOIs != want.NumPOIs {
		t.Error("facade PaperConfig diverges from experiments.BaseConfig")
	}
}
