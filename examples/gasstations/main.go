// Gas stations: the paper's motivating urban scenario end to end.
//
// This example runs the full mobile simulation on the Los Angeles County
// parameter set (Table 3): 463 vehicles over a 2×2 mile area with 16 gas
// stations, launching "find my k nearest gas stations" queries while driving
// the road network. It then sweeps the wireless transmission range the way
// Figure 9a does and prints how the server load collapses as peers get to
// share more.
//
// Run with:
//
//	go run ./examples/gasstations
package main

import (
	"fmt"

	senn "repro"
)

func main() {
	base := senn.PaperConfig(senn.LosAngeles, senn.Area2mi)
	base.Duration = 1800 // half an hour of simulated traffic per point

	fmt.Println("Los Angeles County, 2x2 mi, 463 vehicles, 16 gas stations")
	fmt.Println("sweeping the ad-hoc transmission range (Figure 9a):")
	fmt.Printf("\n%-12s %14s %14s %14s\n", "tx range (m)", "single-peer %", "multi-peer %", "server %")
	for _, tx := range []float64{25, 50, 100, 150, 200} {
		cfg := base
		cfg.TxRange = tx
		w, err := senn.NewSimulation(cfg)
		if err != nil {
			panic(err)
		}
		m := w.Run()
		fmt.Printf("%-12.0f %14.1f %14.1f %14.1f\n",
			tx, m.ShareSingle(), m.ShareMulti(), m.SQRR())
	}
	fmt.Println("\nthe higher the peer density within range, the fewer queries")
	fmt.Println("reach the database: the system scales with its own popularity.")
}
