// Server bounds: how partial peer answers speed up the database (EINN).
//
// When peer verification certifies only part of a kNN answer, the heap H
// still yields two bounds (§3.3): everything inside the last certain
// neighbor's circle is already known (the lower bound), and no true top-k
// neighbor can be farther than the k-th entry of H (the upper bound). The
// server's R*-tree search prunes with both — MBRs inside the certain circle
// are skipped (MAXDIST, downward pruning) and MBRs beyond the upper bound
// are discarded (MINDIST, upward pruning).
//
// The effect matters under the paper's cache policy 2: a query that reaches
// the server asks for cache-capacity many neighbors (here 60) to refill the
// host cache, and the upper bound lets EINN cut that deep search off early.
// Like the paper's gas stations, the stations here are clustered — that is
// what makes R*-tree leaves small enough for the pruning to skip pages.
//
// Run with:
//
//	go run ./examples/serverbounds
package main

import (
	"fmt"
	"math/rand"

	senn "repro"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	// 5000 stations in gaussian pockets over a 10x10 km area.
	stations := make([]senn.POI, 5000)
	var centers []senn.Point
	for i := 0; i < 350; i++ {
		centers = append(centers, senn.Pt(rng.Float64()*10000, rng.Float64()*10000))
	}
	for i := range stations {
		c := centers[rng.Intn(len(centers))]
		stations[i] = senn.POI{ID: int64(i), Loc: senn.Pt(
			c.X+rng.NormFloat64()*60, c.Y+rng.NormFloat64()*60)}
	}
	db := senn.NewDatabase(stations)

	const (
		k        = 5  // what the application asked for
		capacity = 60 // cache refill size (policy 2; deep to make the single-query effect visible)
	)

	// Two peers with different histories: a close one that cached a small
	// 4-NN result (certifies a prefix of the answer) and a farther one
	// whose 30 cached stations stay uncertain but fill the heap, so
	// both bounds materialize.
	q := centers[7]
	nearLoc := senn.Pt(q.X+12, q.Y+9)
	farLoc := senn.Pt(q.X+250, q.Y+60)
	near := senn.NewPeerCache(nearLoc, db.KNN(nearLoc, 4, senn.Bounds{}))
	far := senn.NewPeerCache(farLoc, db.KNN(farLoc, 30, senn.Bounds{}))
	db.ResetStats()

	// Verify the peers' results locally into a capacity-sized heap.
	h := senn.NewResultHeap(capacity)
	senn.VerifySinglePeer(q, near, h)
	senn.VerifySinglePeer(q, far, h)
	fmt.Printf("two peers shared %d stations; %d verified certain (k=%d wanted)\n",
		4+30, h.NumCertain(), k)
	b := h.Bounds()
	b.HasUpper = false
	if ub, ok := h.UpperBoundFor(k); ok {
		b.Upper, b.HasUpper = ub, true
	}
	if b.HasLower {
		fmt.Printf("  lower bound (certain circle radius): %.1f m\n", b.Lower)
	}
	if b.HasUpper {
		fmt.Printf("  upper bound (k-th entry of H):       %.1f m\n", b.Upper)
	}
	if h.NumCertain() >= k {
		fmt.Println("  (peer alone answers the query; rerun with another seed for a partial case)")
	}

	// Plain INN: the server pages out to the capacity-th neighbor.
	db.ResetStats()
	db.KNN(q, capacity, senn.Bounds{})
	innPages := db.PageAccesses()

	// EINN: the server answers only the uncertified remainder, pruned by
	// the client's bounds; the refill truncates at the upper bound.
	db.ResetStats()
	rest := db.KNN(q, capacity-h.NumCertain(), b)
	einnPages := db.PageAccesses()

	fmt.Printf("\nserver work for the same request (refill to %d):\n", capacity)
	fmt.Printf("  INN  (no bounds):   %3d page accesses\n", innPages)
	fmt.Printf("  EINN (with bounds): %3d page accesses, %d results beyond the certain circle\n",
		einnPages, len(rest))
	if innPages > 0 {
		fmt.Printf("  saved: %.0f%%\n", 100*float64(innPages-einnPages)/float64(innPages))
	}

	// The client merges its certain prefix with the server's remainder; the
	// top k answers the query, the rest refills the cache.
	fmt.Printf("\nanswer (top %d of the merged prefix):\n", k)
	rank := 1
	for _, c := range h.CertainEntries() {
		if rank > k {
			break
		}
		fmt.Printf("  rank %2d: station #%-4d %7.1f m  (verified from peer)\n", rank, c.ID, c.Dist)
		rank++
	}
	for _, p := range rest {
		if rank > k {
			break
		}
		fmt.Printf("  rank %2d: station #%-4d %7.1f m  (from server)\n", rank, p.ID, q.Dist(p.Loc))
		rank++
	}
}
