// Range query: the paper's future-work extension, working.
//
// "Which coffee shops are within 400 m of me?" is a range query. The same
// sharing machinery that verifies kNN answers verifies ranges: if the query
// disc fits inside one peer's certain circle — or inside the merged certain
// region of several peers — the union of their cached POIs inside the disc
// is provably the complete answer, and the server is never contacted.
//
// Run with:
//
//	go run ./examples/rangequery
package main

import (
	"fmt"
	"math/rand"

	senn "repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	shops := make([]senn.POI, 120)
	for i := range shops {
		shops[i] = senn.POI{ID: int64(i), Loc: senn.Pt(rng.Float64()*3000, rng.Float64()*3000)}
	}
	db := senn.NewDatabase(shops)

	// Peers that recently ran generous kNN queries around downtown.
	var peers []senn.PeerCache
	for _, loc := range []senn.Point{senn.Pt(1450, 1500), senn.Pt(1650, 1480), senn.Pt(1520, 1700)} {
		peers = append(peers, senn.NewPeerCache(loc, db.KNN(loc, 25, senn.Bounds{})))
	}
	db.ResetStats()

	q := senn.Pt(1530, 1550)
	for _, radius := range []float64{200, 400, 1200} {
		res := senn.RangeQueryWithin(q, radius, peers, db, senn.QueryOptions{})
		fmt.Printf("shops within %4.0f m: %2d  (resolved by %v, certain=%v)\n",
			radius, len(res.POIs), res.Source, res.Certain)
		for _, p := range res.POIs[:min(3, len(res.POIs))] {
			fmt.Printf("    #%-3d at %.0f m\n", p.ID, p.Dist)
		}
	}
	fmt.Printf("\nserver contacted %d time(s) across the three queries\n", db.Queries())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
