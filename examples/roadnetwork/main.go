// Road network: sharing-based nearest neighbors by travel distance (SNNN).
//
// Euclidean proximity lies: the gas station across the river is useless if
// the nearest bridge is two miles away. This example builds a synthetic road
// network (with highways that pass over rural roads), places stations along
// the roads, and compares the Euclidean kNN answer with the network-distance
// answer produced by Algorithm 2 (SNNN), drawing Euclidean candidates from
// the peer-sharing SENN pipeline.
//
// Run with:
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"math/rand"

	senn "repro"
)

func main() {
	roads, err := senn.GenerateRoadNetwork(senn.GridConfig{
		Width: 4000, Height: 4000, Spacing: 250,
		SecondaryEvery: 4, HighwayEvery: 8,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("road network: %d nodes, %d edges\n", roads.NumNodes(), roads.NumEdges())

	// Stations along random road segments.
	rng := rand.New(rand.NewSource(7))
	edges := roads.Edges()
	stations := make([]senn.POI, 40)
	for i := range stations {
		e := edges[rng.Intn(len(edges))]
		t := rng.Float64()
		stations[i] = senn.POI{ID: int64(i), Loc: roads.Loc(e.From).Lerp(roads.Loc(e.To), t)}
	}
	db := senn.NewDatabase(stations)

	// A peer population that previously queried around the map.
	var peers []senn.PeerCache
	for i := 0; i < 12; i++ {
		loc := senn.Pt(rng.Float64()*4000, rng.Float64()*4000)
		peers = append(peers, senn.NewPeerCache(loc, db.KNN(loc, 8, senn.Bounds{})))
	}
	db.ResetStats()

	// Note: keep the query point away from highway grid lines (x or y
	// multiples of 2000 here) — a point next to a freeway snaps onto it and
	// every trip detours via the nearest interchange, which is realistic
	// but makes a confusing first demo.
	q := senn.Pt(1620, 2130)
	const k = 3

	// Euclidean answer via SENN (peers first, server as fallback).
	euclid := senn.Query(q, k, peers, db, senn.QueryOptions{})
	fmt.Printf("\nEuclidean %dNN of %v (resolved by %v):\n", k, q, euclid.Source)
	for _, n := range euclid.Neighbors {
		fmt.Printf("  station #%-3d ED %7.1f m\n", n.ID, n.Dist)
	}

	// Network-distance answer via SNNN: fetch draws growing Euclidean NN
	// prefixes through the same sharing pipeline; distances come from the
	// host's local road graph.
	fetch := func(n int) []senn.POI {
		r := senn.Query(q, n, peers, db, senn.QueryOptions{})
		out := make([]senn.POI, len(r.Neighbors))
		for i, rp := range r.Neighbors {
			out[i] = rp.POI
		}
		return out
	}
	network := senn.NetworkQuery(q, k, fetch, senn.NetworkDistance(roads, q))
	fmt.Printf("\nNetwork %dNN of %v (travel distance over the roads):\n", k, q)
	for _, n := range network {
		fmt.Printf("  station #%-3d ND %7.1f m  (ED %7.1f m)\n", n.ID, n.ND, n.ED)
	}
	fmt.Printf("\nserver queries: %d, page accesses: %d\n", db.Queries(), db.PageAccesses())
}
