// Quickstart: the smallest complete SENN round trip.
//
// A mobile host Q needs its 3 nearest gas stations. Two nearby peers share
// the kNN results they cached earlier; Q verifies them locally (Lemma 3.2 /
// 3.8) and only asks the remote database for what the peers cannot certify.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	senn "repro"
)

func main() {
	// The world: eight gas stations.
	stations := []senn.POI{
		{ID: 1, Loc: senn.Pt(120, 80)},
		{ID: 2, Loc: senn.Pt(200, 150)},
		{ID: 3, Loc: senn.Pt(90, 210)},
		{ID: 4, Loc: senn.Pt(330, 60)},
		{ID: 5, Loc: senn.Pt(400, 320)},
		{ID: 6, Loc: senn.Pt(60, 380)},
		{ID: 7, Loc: senn.Pt(280, 270)},
		{ID: 8, Loc: senn.Pt(150, 330)},
	}
	// The remote spatial database: an R*-tree over the stations, queried
	// with the bounded EINN search.
	db := senn.NewDatabase(stations)

	// Two peers cached 4NN results at their own earlier query locations.
	// (In the running system these arrive over the ad-hoc network; here we
	// build them from the ground truth with a direct database query.)
	peerAt := func(p senn.Point) senn.PeerCache {
		return senn.NewPeerCache(p, db.KNN(p, 4, senn.Bounds{}))
	}
	peers := []senn.PeerCache{
		peerAt(senn.Pt(140, 120)),
		peerAt(senn.Pt(100, 250)),
	}
	db.ResetStats() // peer setup queries should not count

	// Q's own query.
	q := senn.Pt(130, 160)
	res := senn.Query(q, 3, peers, db, senn.QueryOptions{})

	fmt.Printf("3NN of %v — resolved by: %v\n", q, res.Source)
	for _, n := range res.Neighbors {
		fmt.Printf("  rank %d: station #%d at %v (%.1f m)\n", n.Rank, n.ID, n.Loc, n.Dist)
	}
	fmt.Printf("peer caches used: %d, heap state: %v\n", res.PeersUsed, res.State)
	fmt.Printf("server queries needed: %d (page accesses: %d)\n",
		db.Queries(), db.PageAccesses())
}
