package senn

// bench_test.go regenerates every table and figure of the paper's evaluation
// as testing.B benchmarks. Each benchmark runs the corresponding experiment
// at a reduced duration scale (the shapes are stable well below the paper's
// 1 h / 5 h runs) and reports the headline quantities via b.ReportMetric, so
//
//	go test -bench . -benchmem
//
// prints both the runtime cost and the reproduced measurements. The
// cmd/experiments binary runs the same sweeps at arbitrary scale for the
// full three-region tables recorded in EXPERIMENTS.md.

import (
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// benchOpts2mi runs the 2×2 mi experiments at 1/6 of the paper duration
// (10 simulated minutes), enough for the caches to reach steady state.
var benchOpts2mi = experiments.Options{DurationScale: 6}

// benchOpts30mi runs the 30×30 mi experiments at the 120 s duration floor
// with the full host population (faithful densities).
var benchOpts30mi = experiments.Options{DurationScale: 150}

// reportShares attaches the last sweep point's resolution shares to the
// benchmark output.
func reportShares(b *testing.B, fr experiments.FigureResult) {
	b.Helper()
	if len(fr.Points) == 0 {
		b.Fatal("empty sweep")
	}
	last := fr.Points[len(fr.Points)-1]
	b.ReportMetric(last.ShareSingle, "single%")
	b.ReportMetric(last.ShareMulti, "multi%")
	b.ReportMetric(last.ShareServer, "server%")
}

func benchSweep(b *testing.B, area experiments.Area,
	fn func(experiments.Region, experiments.Area, experiments.Options) (experiments.FigureResult, error)) {
	opts := benchOpts2mi
	if area == experiments.Area30mi {
		opts = benchOpts30mi
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr, err := fn(experiments.LosAngeles, area, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportShares(b, fr)
		}
	}
}

// BenchmarkFig09TransmissionRange2mi regenerates Figure 9a: query resolution
// shares as the wireless range sweeps 20–200 m over the 2×2 mi LA set.
func BenchmarkFig09TransmissionRange2mi(b *testing.B) {
	benchSweep(b, experiments.Area2mi, experiments.TransmissionRangeSweep)
}

// BenchmarkFig10TransmissionRange30mi regenerates Figure 10a on the 30×30 mi
// LA set with its full 121,500-host population.
func BenchmarkFig10TransmissionRange30mi(b *testing.B) {
	benchSweep(b, experiments.Area30mi, experiments.TransmissionRangeSweep)
}

// BenchmarkFig11CacheCapacity2mi regenerates Figure 11a: cache capacity 1–9.
func BenchmarkFig11CacheCapacity2mi(b *testing.B) {
	benchSweep(b, experiments.Area2mi, experiments.CacheCapacitySweep)
}

// BenchmarkFig12CacheCapacity30mi regenerates Figure 12a: capacity 4–20.
func BenchmarkFig12CacheCapacity30mi(b *testing.B) {
	benchSweep(b, experiments.Area30mi, experiments.CacheCapacitySweep)
}

// BenchmarkFig13Velocity2mi regenerates Figure 13a: host speed 10–50 mph.
func BenchmarkFig13Velocity2mi(b *testing.B) {
	benchSweep(b, experiments.Area2mi, experiments.VelocitySweep)
}

// BenchmarkFig14Velocity30mi regenerates Figure 14a on the large region.
func BenchmarkFig14Velocity30mi(b *testing.B) {
	benchSweep(b, experiments.Area30mi, experiments.VelocitySweep)
}

// BenchmarkFig15K2mi regenerates Figure 15a: requested k 1–9.
func BenchmarkFig15K2mi(b *testing.B) {
	benchSweep(b, experiments.Area2mi, experiments.KSweep)
}

// BenchmarkFig16K30mi regenerates Figure 16a: requested k 3–15.
func BenchmarkFig16K30mi(b *testing.B) {
	benchSweep(b, experiments.Area30mi, experiments.KSweep)
}

// BenchmarkFreeMovementComparison regenerates the §4.3 comparison: road
// network vs free movement server share on the 2×2 mi LA set.
func BenchmarkFreeMovementComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		road, free, err := experiments.FreeMovementComparison(
			experiments.LosAngeles, experiments.Area2mi, benchOpts2mi)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(road, "roadSQRR%")
			b.ReportMetric(free, "freeSQRR%")
			b.ReportMetric(road-free, "delta%")
		}
	}
}

// BenchmarkFig17EINNvsINN regenerates Figure 17: R*-tree page accesses of
// EINN vs INN on the 30×30 mi LA POI set.
func BenchmarkFig17EINNvsINN(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr, err := experiments.EINNvsINN(
			experiments.LosAngeles, experiments.Area30mi, 150, experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(fr.Points) > 0 {
			first := fr.Points[0]
			last := fr.Points[len(fr.Points)-1]
			b.ReportMetric(first.Reduction, "saveAtK4%")
			b.ReportMetric(last.Reduction, "saveAtK14%")
			b.ReportMetric(last.INNPages, "INNpages")
			b.ReportMetric(last.EINNPages, "EINNpages")
		}
	}
}

// BenchmarkTable1HeapOperations measures the result heap H (Table 1): the
// cost of the insert/evict/upgrade discipline under a candidate stream.
func BenchmarkTable1HeapOperations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := NewResultHeap(8)
		for j := 0; j < 64; j++ {
			h.Add(Candidate{
				POI:     POI{ID: int64(j % 32), Loc: Pt(float64(j), 0)},
				Dist:    float64((j * 37) % 100),
				Certain: j%3 == 0,
			})
		}
	}
}

// benchWorld builds and runs a short simulation from a Table 3/4 parameter
// set, reporting its steady-state SQRR.
func benchWorld(b *testing.B, r experiments.Region, a experiments.Area, scale float64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := experiments.ScaleDuration(experiments.BaseConfig(r, a), scale)
		w, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		m := w.Run()
		if i == b.N-1 {
			b.ReportMetric(m.SQRR(), "SQRR%")
			b.ReportMetric(float64(m.TotalQueries), "queries")
		}
	}
}

// BenchmarkTable3LosAngeles2mi runs the Table 3 LA configuration end to end.
func BenchmarkTable3LosAngeles2mi(b *testing.B) {
	benchWorld(b, experiments.LosAngeles, experiments.Area2mi, 6)
}

// BenchmarkTable3Riverside2mi runs the Table 3 Riverside configuration.
func BenchmarkTable3Riverside2mi(b *testing.B) {
	benchWorld(b, experiments.Riverside, experiments.Area2mi, 6)
}

// BenchmarkTable3Suburbia2mi runs the Table 3 Synthetic Suburbia set.
func BenchmarkTable3Suburbia2mi(b *testing.B) {
	benchWorld(b, experiments.Suburbia, experiments.Area2mi, 6)
}

// BenchmarkTable4LosAngeles30mi runs the Table 4 LA configuration (121,500
// hosts) for the 120 s duration floor.
func BenchmarkTable4LosAngeles30mi(b *testing.B) {
	benchWorld(b, experiments.LosAngeles, experiments.Area30mi, 150)
}

// BenchmarkTable4Riverside30mi runs the Table 4 Riverside configuration.
func BenchmarkTable4Riverside30mi(b *testing.B) {
	benchWorld(b, experiments.Riverside, experiments.Area30mi, 150)
}

// BenchmarkTable4Suburbia30mi runs the Table 4 Synthetic Suburbia set.
func BenchmarkTable4Suburbia30mi(b *testing.B) {
	benchWorld(b, experiments.Suburbia, experiments.Area30mi, 150)
}

// BenchmarkSENNQuery measures one sharing-based query end to end (peer
// verification plus server fallback) outside the simulator loop.
func BenchmarkSENNQuery(b *testing.B) {
	cfg := experiments.BaseConfig(experiments.LosAngeles, experiments.Area2mi)
	pois := make([]POI, 0, cfg.NumPOIs)
	db := func() *Database {
		rngPois := sim.RandomPOIs(cfg.NumPOIs, cfg.Bounds(), newRand(5))
		pois = append(pois, rngPois...)
		return NewDatabase(rngPois)
	}()
	rng := newRand(6)
	var peers []PeerCache
	for i := 0; i < 6; i++ {
		loc := Pt(rng.Float64()*cfg.AreaWidth, rng.Float64()*cfg.AreaHeight)
		peers = append(peers, NewPeerCache(loc, db.KNN(loc, cfg.CacheSize, Bounds{})))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Pt(rng.Float64()*cfg.AreaWidth, rng.Float64()*cfg.AreaHeight)
		Query(q, 3, peers, db, QueryOptions{})
	}
}

// figureSuite runs a representative slice of the figure suite — one full
// three-region sweep (Figure 9a–c) plus the §4.3 comparison — with the given
// worker count. Results are bit-identical for any worker count
// (TestParallelMatchesSequentialSweep); only wall-clock time changes.
func figureSuite(b *testing.B, workers int) {
	opts := benchOpts2mi
	opts.Workers = workers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Regions {
			fr, err := experiments.TransmissionRangeSweep(r, experiments.Area2mi, opts)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 && r == experiments.LosAngeles {
				reportShares(b, fr)
			}
		}
		if _, _, err := experiments.FreeMovementComparison(
			experiments.LosAngeles, experiments.Area2mi, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigureSuiteSequential is the one-core baseline of the sweep
// engine: every simulation of the suite slice runs on a single worker.
func BenchmarkFigureSuiteSequential(b *testing.B) { figureSuite(b, 1) }

// BenchmarkFigureSuiteParallel fans the same independent simulations across
// GOMAXPROCS workers. Compare against BenchmarkFigureSuiteSequential for the
// wall-clock speedup (≈ linear up to the 10-runs-per-sweep fan-out on
// multi-core hardware; identical on one core). EXPERIMENTS.md records the
// measured ratios.
func BenchmarkFigureSuiteParallel(b *testing.B) {
	figureSuite(b, runtime.GOMAXPROCS(0))
}
