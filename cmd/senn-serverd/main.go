// Command senn-serverd serves SENN spatial queries over the network: HTTP
// for session setup and stats, WebSocket + the internal/wire binary protocol
// for position updates and kNN/range queries. The POI data set comes from an
// on-disk page-aligned store (see internal/serve), which the daemon indexes
// at boot into the same R*-tree the in-process simulator uses — served
// answers are bit-identical to ServerModule's, page counts included.
//
// Usage:
//
//	senn-serverd -store pois.senp [-addr 127.0.0.1:8046] [-maxk 512]
//
// Generate a store first (clustered POIs, the paper's workload shape):
//
//	senn-serverd -mkstore pois.senp -pois 50000 -clusters 16 -width 20000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/geom"
	"repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8046", "listen address")
		store        = flag.String("store", "", "POI store file to serve (required unless -mkstore)")
		maxK         = flag.Int("maxk", 512, "largest k served per query")
		maxTxRange   = flag.Float64("max-txrange", 0, "cap on relayed transmission radius (0 = default 10000 m)")
		relayTimeout = flag.Duration("relay-timeout", 0, "peer relay wait bound (0 = default 2s)")
		flushBytes   = flag.Int("flush-threshold", 0, "write-batch flush threshold in bytes (0 = default 2048, negative disables)")
		dirCell      = flag.Float64("dir-cell", 0, "session-directory grid cell size in m (0 = 1/64 of the larger area side)")
		dirShards    = flag.Int("dir-shards", 0, "session-directory lock stripes, rounded up to a power of two (0 = default 64)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")

		mkstore  = flag.String("mkstore", "", "write a fresh POI store to this path and exit")
		nPOIs    = flag.Int("pois", 50000, "mkstore: number of POIs")
		fanout   = flag.Int("fanout", 30, "mkstore: R*-tree fan-out")
		width    = flag.Float64("width", 20000, "mkstore: square area side (m)")
		clusters = flag.Int("clusters", 0, "mkstore: POI clusters (0 = uniform)")
		sigma    = flag.Float64("sigma", 400, "mkstore: cluster spread (m)")
		seed     = flag.Int64("seed", 1, "mkstore: random seed")
	)
	flag.Parse()

	if *mkstore != "" {
		if err := makeStore(*mkstore, *nPOIs, *fanout, *width, *clusters, *sigma, *seed); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d POIs, fanout %d, %gx%g m\n", *mkstore, *nPOIs, *fanout, *width, *width)
		return
	}
	if *store == "" {
		fatal(errors.New("missing -store (or -mkstore to create one)"))
	}

	t0 := time.Now()
	info, pois, err := serve.ReadStore(*store)
	if err != nil {
		fatal(err)
	}
	mod := sim.NewServerModule(pois, info.Fanout)
	fmt.Printf("senn-serverd: indexed %d POIs (fanout %d) in %v\n",
		info.Count, info.Fanout, time.Since(t0).Round(time.Millisecond))

	srv := serve.NewServer(mod, serve.Options{
		MaxK:           *maxK,
		Bounds:         info.Bounds,
		MaxTxRange:     *maxTxRange,
		RelayTimeout:   *relayTimeout,
		FlushThreshold: *flushBytes,
		DirCell:        *dirCell,
		DirShards:      *dirShards,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *pprofAddr != "" {
		// The profiling endpoint rides a separate listener so it is never
		// reachable through the service address; http.DefaultServeMux is
		// what net/http/pprof registers its handlers on.
		go func() {
			fmt.Printf("senn-serverd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "senn-serverd: pprof:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Printf("senn-serverd: listening on %s\n", *addr)

	select {
	case err := <-done:
		fatal(err)
	case <-ctx.Done():
		fmt.Println("senn-serverd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutCtx)
	}
}

func makeStore(path string, n, fanout int, width float64, clusters int, sigma float64, seed int64) error {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(width, width)}
	rng := rand.New(rand.NewSource(seed))
	var pois = sim.RandomPOIs(n, bounds, rng)
	if clusters > 0 {
		pois = sim.ClusteredPOIs(n, bounds, clusters, sigma, rng)
	}
	return serve.WriteStore(path, pois, fanout, bounds)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "senn-serverd:", err)
	os.Exit(1)
}
