// Command senn-load drives a senn-serverd instance with N concurrent mobile
// sessions. Each session walks the service area with random-waypoint
// movement (internal/mobility), streams position updates, and issues kNN
// queries (plus an occasional range query), measuring per-query round-trip
// latency. At the end it prints a JSON report: sustained queries/sec and
// p50/p99/p999 latency, shaped as a benchjson Document so the repo's
// benchmark gate can ingest it, plus a "load" summary block with raw counts
// that CI gates on (zero errors, nonzero throughput).
//
// With -sweep "64,256,1024" it instead runs the same load once per session
// count and emits one combined JSON document whose "sweep" array holds a
// summary per point — the scaling curve of the daemon's relay fan-out in a
// single run. When -share is on, the report also carries relay-exchange
// latency percentiles (PeerRequest sent → PeerShares received), the
// end-to-end measure of the server's in-range sweep.
//
// Usage:
//
//	senn-load -addr 127.0.0.1:8046 -sessions 64 -duration 15s -out load.json
//	senn-load -addr 127.0.0.1:8046 -sweep 64,256,1024 -duration 10s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/serve"
)

type config struct {
	addr        string
	sessions    int
	duration    time.Duration
	k           int
	rangeEvery  int
	rangeRadius float64
	share       bool
	csize       int
	txRange     float64
	seed        int64
	out         string
	sweep       string
}

// result aggregates one session's outcome.
type result struct {
	queries        int64
	errors         int64
	latencies      []time.Duration
	relayLatencies []time.Duration
	stats          serve.ClientStats
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8046", "senn-serverd address")
	flag.IntVar(&cfg.sessions, "sessions", 64, "concurrent sessions")
	flag.DurationVar(&cfg.duration, "duration", 15*time.Second, "run length")
	flag.IntVar(&cfg.k, "k", 5, "neighbors per kNN query")
	flag.IntVar(&cfg.rangeEvery, "range-every", 10, "issue a range query every Nth query (0 = never)")
	flag.Float64Var(&cfg.rangeRadius, "range-radius", 300, "range query radius (m)")
	flag.BoolVar(&cfg.share, "share", true, "exchange peer caches through the daemon relay before falling back to the server")
	flag.IntVar(&cfg.csize, "csize", 16, "local cache capacity C_Size per session")
	flag.Float64Var(&cfg.txRange, "txrange", 1000, "transmission radius sent with each peer request (m)")
	flag.Int64Var(&cfg.seed, "seed", 1, "movement/workload seed")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report here too (stdout always)")
	flag.StringVar(&cfg.sweep, "sweep", "", "comma-separated session counts: run once per count, emit a combined sweep report (overrides -sessions)")
	flag.Parse()

	var err error
	if cfg.sweep != "" {
		err = runSweep(cfg)
	} else {
		err = runSingle(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "senn-load:", err)
		os.Exit(1)
	}
}

func runSingle(cfg config) error {
	doc, err := run(cfg)
	if err != nil {
		return err
	}
	if err := emit(doc, cfg.out); err != nil {
		return err
	}
	return gateAndNarrate(cfg, doc.Load)
}

// runSweep repeats the load once per requested session count and emits one
// document: a "sweep" array of per-point summaries plus session-suffixed
// benchjson entries, so the scaling curve lands in a single artifact.
func runSweep(cfg config) error {
	var counts []int
	for _, f := range strings.Split(cfg.sweep, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -sweep point %q", f)
		}
		counts = append(counts, n)
	}
	doc := struct {
		Benchmarks []benchmark   `json:"benchmarks"`
		Sweep      []loadSummary `json:"sweep"`
	}{}
	for _, n := range counts {
		pt := cfg
		pt.sessions = n
		fmt.Fprintf(os.Stderr, "senn-load: sweep point sessions=%d\n", n)
		one, err := run(pt)
		if err != nil {
			return fmt.Errorf("sessions=%d: %w", n, err)
		}
		suffix := "/sessions=" + strconv.Itoa(n)
		for _, b := range one.Benchmarks {
			b.Name += suffix
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
		doc.Sweep = append(doc.Sweep, one.Load)
		if err := gateAndNarrate(pt, one.Load); err != nil {
			return err
		}
	}
	return emit(doc, cfg.out)
}

func emit(doc any, out string) error {
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	os.Stdout.Write(blob)
	if out != "" {
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func run(cfg config) (loadDoc, error) {
	bounds, err := fetchBounds(cfg.addr)
	if err != nil {
		return loadDoc{}, fmt.Errorf("fetch service bounds: %w", err)
	}

	// One waypoint engine for the whole fleet; each session owns slot i.
	// Walking speed with short pauses, trips across a tenth of the area.
	diag := bounds.Max.X - bounds.Min.X
	wp := mobility.NewWaypoints(bounds, 1.5, 5, diag/10, cfg.sessions)
	var seedRNG mobility.SplitMix64 = mobility.SplitMix64(cfg.seed)

	stop := make(chan struct{})
	results := make([]result, cfg.sessions)
	var inFlight sync.WaitGroup
	var dialErrors atomic.Int64

	start := time.Now()
	for i := 0; i < cfg.sessions; i++ {
		startPos := geom.Pt(
			bounds.Min.X+seedRNG.Float64()*(bounds.Max.X-bounds.Min.X),
			bounds.Min.Y+seedRNG.Float64()*(bounds.Max.Y-bounds.Min.Y),
		)
		wp.Seed(i, startPos, seedRNG.Uint64())
		inFlight.Add(1)
		go func(i int, pos geom.Point) {
			defer inFlight.Done()
			if err := session(cfg, i, pos, wp, stop, &results[i]); err != nil {
				dialErrors.Add(1)
				results[i].errors++
			}
		}(i, startPos)
	}
	time.AfterFunc(cfg.duration, func() { close(stop) })
	inFlight.Wait()
	elapsed := time.Since(start)

	return buildDoc(cfg, results, elapsed, dialErrors.Load()), nil
}

// fetchBounds asks the server's /v1/stats for the service area.
func fetchBounds(addr string) (geom.Rect, error) {
	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		return geom.Rect{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return geom.Rect{}, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return geom.Rect{}, err
	}
	b := geom.Rect{
		Min: geom.Pt(st.BoundsMinX, st.BoundsMinY),
		Max: geom.Pt(st.BoundsMaxX, st.BoundsMaxY),
	}
	if b.Max.X <= b.Min.X || b.Max.Y <= b.Min.Y {
		return geom.Rect{}, fmt.Errorf("stats: degenerate bounds %+v", b)
	}
	return b, nil
}

// session runs one mobile SENN client until stop closes: move, report
// position, resolve a query (relay exchange, local verification, server
// fallback — the full Algorithm-1 pipeline of internal/client), time the
// round trip. Movement advances in virtual 1-second steps per query — a
// query rate of one per simulated second, issued as fast as resolution
// completes. With -share=false the relay exchange is skipped but the local
// cache still serves — the paper's no-sharing baseline.
func session(cfg config, slot int, pos geom.Point, wp *mobility.Waypoints, stop <-chan struct{}, res *result) error {
	token, err := newSession(cfg.addr)
	if err != nil {
		return err
	}
	ws, err := serve.DialWS("ws://" + cfg.addr + "/v1/ws?session=" + token)
	if err != nil {
		return err
	}
	defer ws.Close()
	cl := serve.NewSENNClient(ws, cfg.csize, cfg.txRange, cfg.share)
	cl.SetRelayObserver(func(d time.Duration) {
		res.relayLatencies = append(res.relayLatencies, d)
	})
	defer func() { res.stats = cl.Stats() }()

	n := uint32(0)
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		pos = wp.Advance(slot, pos, 1)
		if err := cl.Move(pos); err != nil {
			res.errors++
			return nil
		}
		n++
		t0 := time.Now()
		if cfg.rangeEvery > 0 && n%uint32(cfg.rangeEvery) == 0 {
			_, err = cl.Range(cfg.rangeRadius)
		} else {
			_, _, err = cl.Query(cfg.k)
		}
		if err != nil {
			// A close while the run is winding down is orderly; anything
			// mid-run is an error.
			select {
			case <-stop:
				return nil
			default:
				res.errors++
				return nil
			}
		}
		res.queries++
		res.latencies = append(res.latencies, time.Since(t0))
	}
}

func newSession(addr string) (string, error) {
	resp, err := http.Post("http://"+addr+"/v1/session", "application/json", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("session: status %d", resp.StatusCode)
	}
	var doc struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", err
	}
	return doc.Session, nil
}

// percentile returns the nearest-rank percentile of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// benchmark mirrors benchjson's Benchmark JSON shape.
type benchmark struct {
	Name    string  `json:"name"`
	Runs    int     `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
}

type loadSummary struct {
	Sessions      int     `json:"sessions"`
	DurationSec   float64 `json:"duration_sec"`
	Queries       int64   `json:"queries"`
	Errors        int64   `json:"errors"`
	DialErrors    int64   `json:"dial_errors"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
	// Sharing columns (kNN queries only; range queries bypass the cache).
	// peer_solved counts kNN queries certified without the server;
	// cache_hits is the subset answered by the session's own cache alone.
	Sharing            bool    `json:"sharing"`
	KNNQueries         int64   `json:"knn_queries"`
	PeerSolved         int64   `json:"peer_solved"`
	PeerSolvedFraction float64 `json:"peer_solved_fraction"`
	CacheHits          int64   `json:"cache_hits"`
	CacheHitRate       float64 `json:"cache_hit_rate"`
	ServerSolved       int64   `json:"server_solved"`
	SharesReceived     int64   `json:"shares_received"`
	PeerBytes          int64   `json:"peer_bytes"`
	// Relay-exchange latency percentiles (PeerRequest written → PeerShares
	// decoded): the end-to-end cost of the daemon's in-range sweep plus the
	// slowest probed peer. Zero when sharing is off.
	RelayExchanges int64   `json:"relay_exchanges"`
	RelayP50Ms     float64 `json:"relay_p50_ms"`
	RelayP99Ms     float64 `json:"relay_p99_ms"`
	RelayP999Ms    float64 `json:"relay_p999_ms"`
}

// loadDoc is one run's report: benchjson-shaped entries plus the raw "load"
// block CI gates on.
type loadDoc struct {
	Benchmarks []benchmark `json:"benchmarks"`
	Load       loadSummary `json:"load"`
}

func buildDoc(cfg config, results []result, elapsed time.Duration, dialErrors int64) loadDoc {
	var all, relay []time.Duration
	var queries, errs int64
	var cs serve.ClientStats
	for i := range results {
		queries += results[i].queries
		errs += results[i].errors
		all = append(all, results[i].latencies...)
		relay = append(relay, results[i].relayLatencies...)
		st := results[i].stats
		cs.Queries += st.Queries
		cs.PeerSolved += st.PeerSolved
		cs.OwnCacheSolved += st.OwnCacheSolved
		cs.ServerSolved += st.ServerSolved
		cs.SharesReceived += st.SharesReceived
		cs.PeerBytes += st.PeerBytes
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(relay, func(i, j int) bool { return relay[i] < relay[j] })

	p50 := percentile(all, 50)
	p99 := percentile(all, 99)
	p999 := percentile(all, 99.9)
	qps := float64(queries) / elapsed.Seconds()

	doc := loadDoc{
		Benchmarks: []benchmark{
			{Name: "ServeQuery/p50", Runs: int(queries), NsPerOp: float64(p50.Nanoseconds())},
			{Name: "ServeQuery/p99", Runs: int(queries), NsPerOp: float64(p99.Nanoseconds())},
			{Name: "ServeQuery/p999", Runs: int(queries), NsPerOp: float64(p999.Nanoseconds())},
		},
		Load: loadSummary{
			Sessions:       cfg.sessions,
			DurationSec:    elapsed.Seconds(),
			Queries:        queries,
			Errors:         errs,
			DialErrors:     dialErrors,
			QueriesPerSec:  qps,
			P50Ms:          float64(p50) / float64(time.Millisecond),
			P99Ms:          float64(p99) / float64(time.Millisecond),
			P999Ms:         float64(p999) / float64(time.Millisecond),
			Sharing:        cfg.share,
			KNNQueries:     cs.Queries,
			PeerSolved:     cs.PeerSolved,
			CacheHits:      cs.OwnCacheSolved,
			ServerSolved:   cs.ServerSolved,
			SharesReceived: cs.SharesReceived,
			PeerBytes:      cs.PeerBytes,
			RelayExchanges: int64(len(relay)),
		},
	}
	if cs.Queries > 0 {
		doc.Load.PeerSolvedFraction = float64(cs.PeerSolved) / float64(cs.Queries)
		doc.Load.CacheHitRate = float64(cs.OwnCacheSolved) / float64(cs.Queries)
	}
	if len(relay) > 0 {
		rp50, rp99, rp999 := percentile(relay, 50), percentile(relay, 99), percentile(relay, 99.9)
		doc.Load.RelayP50Ms = float64(rp50) / float64(time.Millisecond)
		doc.Load.RelayP99Ms = float64(rp99) / float64(time.Millisecond)
		doc.Load.RelayP999Ms = float64(rp999) / float64(time.Millisecond)
		doc.Benchmarks = append(doc.Benchmarks,
			benchmark{Name: "RelayExchange/p50", Runs: len(relay), NsPerOp: float64(rp50.Nanoseconds())},
			benchmark{Name: "RelayExchange/p99", Runs: len(relay), NsPerOp: float64(rp99.Nanoseconds())},
			benchmark{Name: "RelayExchange/p999", Runs: len(relay), NsPerOp: float64(rp999.Nanoseconds())},
		)
	}
	return doc
}

// gateAndNarrate enforces the run-level invariants (no session errors, some
// progress) and prints the human summary to stderr.
func gateAndNarrate(cfg config, ld loadSummary) error {
	if ld.Errors > 0 || ld.DialErrors > 0 {
		return fmt.Errorf("%d session errors (%d dial)", ld.Errors, ld.DialErrors)
	}
	if ld.Queries == 0 {
		return fmt.Errorf("no queries completed")
	}
	fmt.Fprintf(os.Stderr, "senn-load: %d sessions, %d queries in %.1fs (%.0f q/s), p50 %.2fms p99 %.2fms p999 %.2fms\n",
		cfg.sessions, ld.Queries, ld.DurationSec, ld.QueriesPerSec, ld.P50Ms, ld.P99Ms, ld.P999Ms)
	if ld.KNNQueries > 0 {
		fmt.Fprintf(os.Stderr, "senn-load: sharing=%v peer-solved %d/%d (%.1f%%, own-cache %d), server %d, shares %d\n",
			cfg.share, ld.PeerSolved, ld.KNNQueries, 100*ld.PeerSolvedFraction,
			ld.CacheHits, ld.ServerSolved, ld.SharesReceived)
	}
	if ld.RelayExchanges > 0 {
		fmt.Fprintf(os.Stderr, "senn-load: relay exchanges %d, p50 %.2fms p99 %.2fms p999 %.2fms\n",
			ld.RelayExchanges, ld.RelayP50Ms, ld.RelayP99Ms, ld.RelayP999Ms)
	}
	return nil
}
