// Command senn-load drives a senn-serverd instance with N concurrent mobile
// sessions. Each session walks the service area with random-waypoint
// movement (internal/mobility), streams position updates, and issues kNN
// queries (plus an occasional range query), measuring per-query round-trip
// latency. At the end it prints a JSON report: sustained queries/sec and
// p50/p99/p999 latency, shaped as a benchjson Document so the repo's
// benchmark gate can ingest it, plus a "load" summary block with raw counts
// that CI gates on (zero errors, nonzero throughput).
//
// Usage:
//
//	senn-load -addr 127.0.0.1:8046 -sessions 64 -duration 15s -out load.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/serve"
	"repro/internal/wire"
)

type config struct {
	addr        string
	sessions    int
	duration    time.Duration
	k           int
	rangeEvery  int
	rangeRadius float64
	seed        int64
	out         string
}

// result aggregates one session's outcome.
type result struct {
	queries   int64
	errors    int64
	latencies []time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8046", "senn-serverd address")
	flag.IntVar(&cfg.sessions, "sessions", 64, "concurrent sessions")
	flag.DurationVar(&cfg.duration, "duration", 15*time.Second, "run length")
	flag.IntVar(&cfg.k, "k", 5, "neighbors per kNN query")
	flag.IntVar(&cfg.rangeEvery, "range-every", 10, "issue a range query every Nth query (0 = never)")
	flag.Float64Var(&cfg.rangeRadius, "range-radius", 300, "range query radius (m)")
	flag.Int64Var(&cfg.seed, "seed", 1, "movement/workload seed")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report here too (stdout always)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "senn-load:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	bounds, err := fetchBounds(cfg.addr)
	if err != nil {
		return fmt.Errorf("fetch service bounds: %w", err)
	}

	// One waypoint engine for the whole fleet; each session owns slot i.
	// Walking speed with short pauses, trips across a tenth of the area.
	diag := bounds.Max.X - bounds.Min.X
	wp := mobility.NewWaypoints(bounds, 1.5, 5, diag/10, cfg.sessions)
	var seedRNG mobility.SplitMix64 = mobility.SplitMix64(cfg.seed)

	stop := make(chan struct{})
	results := make([]result, cfg.sessions)
	var inFlight sync.WaitGroup
	var dialErrors atomic.Int64

	start := time.Now()
	for i := 0; i < cfg.sessions; i++ {
		startPos := geom.Pt(
			bounds.Min.X+seedRNG.Float64()*(bounds.Max.X-bounds.Min.X),
			bounds.Min.Y+seedRNG.Float64()*(bounds.Max.Y-bounds.Min.Y),
		)
		wp.Seed(i, startPos, seedRNG.Uint64())
		inFlight.Add(1)
		go func(i int, pos geom.Point) {
			defer inFlight.Done()
			if err := session(cfg, i, pos, wp, stop, &results[i]); err != nil {
				dialErrors.Add(1)
				results[i].errors++
			}
		}(i, startPos)
	}
	time.AfterFunc(cfg.duration, func() { close(stop) })
	inFlight.Wait()
	elapsed := time.Since(start)

	return report(cfg, results, elapsed, dialErrors.Load())
}

// fetchBounds asks the server's /v1/stats for the service area.
func fetchBounds(addr string) (geom.Rect, error) {
	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		return geom.Rect{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return geom.Rect{}, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return geom.Rect{}, err
	}
	b := geom.Rect{
		Min: geom.Pt(st.BoundsMinX, st.BoundsMinY),
		Max: geom.Pt(st.BoundsMaxX, st.BoundsMaxY),
	}
	if b.Max.X <= b.Min.X || b.Max.Y <= b.Min.Y {
		return geom.Rect{}, fmt.Errorf("stats: degenerate bounds %+v", b)
	}
	return b, nil
}

// session runs one mobile client until stop closes: move, report position,
// query, time the answer. Movement advances in virtual 1-second steps per
// query — a query rate of one per simulated second, issued as fast as the
// server answers.
func session(cfg config, slot int, pos geom.Point, wp *mobility.Waypoints, stop <-chan struct{}, res *result) error {
	token, err := newSession(cfg.addr)
	if err != nil {
		return err
	}
	ws, err := serve.DialWS("ws://" + cfg.addr + "/v1/ws?session=" + token)
	if err != nil {
		return err
	}
	defer ws.Close()

	reqID := uint32(0)
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		pos = wp.Advance(slot, pos, 1)
		if err := ws.WriteBinary(wire.EncodePosition(pos)); err != nil {
			res.errors++
			return nil
		}
		reqID++
		var payload []byte
		if cfg.rangeEvery > 0 && reqID%uint32(cfg.rangeEvery) == 0 {
			payload = wire.EncodeRange(wire.RangeQuery{ReqID: reqID, Loc: pos, Radius: cfg.rangeRadius})
		} else {
			payload = wire.EncodeQuery(wire.Query{ReqID: reqID, K: cfg.k, Loc: pos})
		}
		t0 := time.Now()
		if err := ws.WriteBinary(payload); err != nil {
			res.errors++
			return nil
		}
		data, err := ws.ReadMessage()
		if err != nil {
			// A close while the run is winding down is orderly; anything
			// mid-run is an error.
			select {
			case <-stop:
				return nil
			default:
				res.errors++
				return nil
			}
		}
		rtt := time.Since(t0)
		msg, err := wire.Decode(data)
		if err != nil || msg.Type != wire.TypeAnswer || msg.Answer.ReqID != reqID {
			res.errors++
			return nil
		}
		res.queries++
		res.latencies = append(res.latencies, rtt)
	}
}

func newSession(addr string) (string, error) {
	resp, err := http.Post("http://"+addr+"/v1/session", "application/json", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("session: status %d", resp.StatusCode)
	}
	var doc struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", err
	}
	return doc.Session, nil
}

// percentile returns the nearest-rank percentile of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// benchmark mirrors benchjson's Benchmark JSON shape.
type benchmark struct {
	Name    string  `json:"name"`
	Runs    int     `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
}

type loadSummary struct {
	Sessions      int     `json:"sessions"`
	DurationSec   float64 `json:"duration_sec"`
	Queries       int64   `json:"queries"`
	Errors        int64   `json:"errors"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
}

func report(cfg config, results []result, elapsed time.Duration, dialErrors int64) error {
	var all []time.Duration
	var queries, errs int64
	for i := range results {
		queries += results[i].queries
		errs += results[i].errors
		all = append(all, results[i].latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	p50 := percentile(all, 50)
	p99 := percentile(all, 99)
	p999 := percentile(all, 99.9)
	qps := float64(queries) / elapsed.Seconds()

	doc := struct {
		Benchmarks []benchmark `json:"benchmarks"`
		Load       loadSummary `json:"load"`
	}{
		Benchmarks: []benchmark{
			{Name: "ServeQuery/p50", Runs: int(queries), NsPerOp: float64(p50.Nanoseconds())},
			{Name: "ServeQuery/p99", Runs: int(queries), NsPerOp: float64(p99.Nanoseconds())},
			{Name: "ServeQuery/p999", Runs: int(queries), NsPerOp: float64(p999.Nanoseconds())},
		},
		Load: loadSummary{
			Sessions:      cfg.sessions,
			DurationSec:   elapsed.Seconds(),
			Queries:       queries,
			Errors:        errs,
			QueriesPerSec: qps,
			P50Ms:         float64(p50) / float64(time.Millisecond),
			P99Ms:         float64(p99) / float64(time.Millisecond),
			P999Ms:        float64(p999) / float64(time.Millisecond),
		},
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	os.Stdout.Write(blob)
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
			return err
		}
	}

	if errs > 0 || dialErrors > 0 {
		return fmt.Errorf("%d session errors", errs)
	}
	if queries == 0 {
		return fmt.Errorf("no queries completed")
	}
	fmt.Fprintf(os.Stderr, "senn-load: %d sessions, %d queries in %.1fs (%.0f q/s), p50 %.2fms p99 %.2fms p999 %.2fms\n",
		cfg.sessions, queries, elapsed.Seconds(), qps,
		doc.Load.P50Ms, doc.Load.P99Ms, doc.Load.P999Ms)
	return nil
}
