// Command nnbench is a focused harness for the server-side study of §4.4
// (Figure 17): it compares R*-tree page accesses of the original incremental
// NN algorithm (INN) and the paper's bounded extension (EINN) across k, with
// the pruning bounds produced by realistic peer caches and the cache-refill
// request semantics of policy 2 (§4.1): a query reaching the server asks for
// cache-capacity many neighbors.
//
// POIs are clustered by default, modeling real gas-station distributions
// (the source data of the paper); pass -clusters 0 for uniform placement.
//
// Usage:
//
//	nnbench [-pois N] [-queries N] [-cache N] [-fanout N] [-clusters N]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/rtree"
	"repro/internal/sim"
)

func main() {
	var (
		pois     = flag.Int("pois", 4050, "number of points of interest")
		queries  = flag.Int("queries", 500, "queries per k")
		cacheSz  = flag.Int("cache", 20, "peer cache capacity (refill request size)")
		fanout   = flag.Int("fanout", 30, "R*-tree branching factor")
		side     = flag.Float64("side", 48280, "area side length (m)")
		nCaches  = flag.Int("peers", 2000, "synthetic peer cache count")
		txRange  = flag.Float64("tx", 200, "transmission range for peer gathering (m)")
		clusters = flag.Int("clusters", 160, "POI cluster count (0 = uniform)")
		seed     = flag.Int64("seed", 17, "random seed")
		kMax     = flag.Int("kmax", 14, "largest k in the sweep")
	)
	flag.Parse()
	if *queries <= 0 {
		fmt.Fprintln(os.Stderr, "nnbench: -queries must be positive")
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))

	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(*side, *side))
	var poiSet []core.POI
	if *clusters > 0 {
		poiSet = sim.ClusteredPOIs(*pois, bounds, *clusters, *side/250, rng)
	} else {
		poiSet = sim.RandomPOIs(*pois, bounds, rng)
	}
	tree := rtree.New(*fanout)
	for _, p := range poiSet {
		tree.InsertPoint(p.Loc, p)
	}

	caches := make([]core.PeerCache, *nCaches)
	for i := range caches {
		loc := geom.Pt(rng.Float64()**side, rng.Float64()**side)
		res := nn.BestFirst(tree, loc, *cacheSz)
		ns := make([]core.POI, len(res))
		for j, r := range res {
			ns[j] = r.Data.(core.POI)
		}
		caches[i] = core.NewPeerCache(loc, ns)
	}
	tree.ResetAccessCount()

	fmt.Printf("EINN vs INN: %d POIs (%d clusters), fanout %d, %d peer caches of %d NNs, %d queries/k\n\n",
		*pois, *clusters, *fanout, *nCaches, *cacheSz, *queries)
	fmt.Printf("%-6s %12s %12s %12s %14s\n", "k", "INN pages", "EINN pages", "saved %", "bounds found")
	for k := 4; k <= *kMax; k += 2 {
		var innPages, einnPages int64
		boundsFound := 0
		for q := 0; q < *queries; q++ {
			// Queries originate at hosts that hold a drifted cache of
			// their own (see internal/experiments.EINNvsINN).
			home := caches[rng.Intn(len(caches))]
			drift := rng.Float64() * *txRange
			angle := rng.Float64() * 2 * math.Pi
			query := home.QueryLoc.Add(geom.Pt(drift*math.Cos(angle), drift*math.Sin(angle)))
			var peers []core.PeerCache
			for _, c := range caches {
				if query.Dist(c.QueryLoc) <= *txRange {
					peers = append(peers, c)
				}
			}
			heap := core.NewResultHeap(maxInt(k, *cacheSz))
			for _, pc := range core.SortPeersByProximity(query, peers) {
				core.VerifySinglePeer(query, pc, heap)
				if heap.NumCertain() >= k {
					break
				}
			}
			if heap.NumCertain() >= k {
				q--
				continue // peer-resolved: never reaches the server
			}
			b := heap.Bounds()
			b.HasUpper = false
			if ub, ok := heap.UpperBoundFor(k); ok {
				b.Upper, b.HasUpper = ub, true
			}
			if b.HasLower || b.HasUpper {
				boundsFound++
			}
			want := maxInt(k, *cacheSz)

			tree.ResetAccessCount()
			nn.BestFirst(tree, query, want)
			innPages += tree.AccessCount()

			tree.ResetAccessCount()
			nn.EINN(tree, query, want-heap.NumCertain(), b)
			einnPages += tree.AccessCount()
		}
		n := float64(*queries)
		inn, einn := float64(innPages)/n, float64(einnPages)/n
		saved := 0.0
		if inn > 0 {
			saved = 100 * (inn - einn) / inn
		}
		fmt.Printf("%-6d %12.2f %12.2f %12.1f %13.0f%%\n",
			k, inn, einn, saved, 100*float64(boundsFound)/n)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
