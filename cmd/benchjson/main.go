// Command benchjson converts `go test -bench` text output into a stable JSON
// document and optionally gates it against a committed baseline.
//
// The CI bench job pipes the benchmark run through a file and then:
//
//	benchjson -in bench.txt -out BENCH_ci.json \
//	          -baseline results/BENCH_baseline.json \
//	          -minspeedup 'WorldStep/workers=1:WorldStep/workers=8:2.0'
//
// With -count N the same benchmark appears N times; benchjson keeps the
// fastest run (minimum ns/op), the standard noise-rejection choice for
// regression gating. The trailing -GOMAXPROCS suffix is stripped from names
// so documents from machines with different core counts stay comparable.
//
// Gate semantics: only the -minspeedup ratios fail a run. Each ratio is
// measured between two benchmarks of the *same* run, so it is
// machine-speed independent — the number to trust on heterogeneous CI
// runners, where absolute ns/op would need a per-runner baseline. Every
// ratio is also recorded in the output document's "speedups" section (e.g.
// the WorldStep workers=8/workers=1 ratio in BENCH_ci.json).
//
// The -baseline comparison is informational by default: differences beyond
// the -tolerance are reported on stderr but do not fail the run. Pass
// -gate-absolute to restore hard failing for same-machine workflows (e.g.
// a developer comparing against their own committed baseline); -update
// rewrites the baseline from the current run instead. Benchmarks missing
// from the baseline (or present only there) are noted but never fail, so
// adding or removing benchmarks does not require a lockstep baseline
// update.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one aggregated benchmark result.
type Benchmark struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	NsPerOp  float64 `json:"ns_per_op"` // minimum across runs
	BPerOp   float64 `json:"b_per_op,omitempty"`
	AllocsOp float64 `json:"allocs_per_op,omitempty"`
}

// Speedup is one measured parallel-speedup ratio, recorded in the JSON
// document so the CI artifact carries the workers=8/workers=1 ratio
// explicitly. Unlike absolute ns/op, the ratio is comparable across
// runners of different speeds, which is what makes it the sturdier gate.
type Speedup struct {
	Slow     string  `json:"slow"`
	Fast     string  `json:"fast"`
	Ratio    float64 `json:"ratio"`     // slow ns/op ÷ fast ns/op
	MinRatio float64 `json:"min_ratio"` // required by the -minspeedup gate
}

// AllocGate is one enforced allocs/op ceiling, recorded in the JSON document
// so the artifact shows the measured count next to the limit. Like the
// speedup ratios it is machine-independent: an allocation count depends only
// on the code, never on runner speed.
type AllocGate struct {
	Name      string  `json:"name"`
	AllocsOp  float64 `json:"allocs_per_op"`
	MaxAllocs float64 `json:"max_allocs"`
}

// Document is the BENCH_ci.json layout. Benchmarks are sorted by name so
// regenerated files are byte-diffable.
type Document struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
	AllocGates []AllocGate `json:"alloc_gates,omitempty"`
}

func main() {
	var (
		in        = flag.String("in", "", "benchmark text to parse (default stdin)")
		out       = flag.String("out", "", "JSON output path (default stdout)")
		baseline  = flag.String("baseline", "", "baseline JSON to compare against (informational unless -gate-absolute)")
		tolerance = flag.Float64("tolerance", 0.20, "slowdown vs baseline worth reporting (0.20 = +20%)")
		gateAbs   = flag.Bool("gate-absolute", false,
			"fail when a benchmark exceeds the baseline tolerance (off: only -minspeedup ratios gate)")
		update    = flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
		speedups  multiFlag
		maxallocs multiFlag
	)
	flag.Var(&speedups, "minspeedup",
		"require benchmark B to be at least R× faster than A, as 'A:B:R' (repeatable)")
	flag.Var(&maxallocs, "maxallocs",
		"require benchmark NAME to allocate at most N objects per op, as 'NAME:N' (repeatable; needs -benchmem output)")
	flag.Parse()

	if err := run(*in, *out, *baseline, *tolerance, *gateAbs, *update, speedups, maxallocs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in, out, baseline string, tolerance float64, gateAbs, update bool, speedups, maxallocs []string) error {
	var src io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	doc, err := Parse(src)
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	// Resolve the speedup ratios into the document before writing it, so
	// the uploaded artifact records the measured ratio even when the gate
	// below fails the job.
	for _, spec := range speedups {
		if err := addSpeedup(&doc, spec); err != nil {
			return err
		}
	}
	for _, spec := range maxallocs {
		if err := addAllocGate(&doc, spec); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}

	if err := gateSpeedups(os.Stderr, doc); err != nil {
		return err
	}
	if err := gateAllocs(os.Stderr, doc); err != nil {
		return err
	}

	if baseline == "" {
		return nil
	}
	if update {
		return os.WriteFile(baseline, data, 0o644)
	}
	base, err := readDocument(baseline)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	if err := Gate(os.Stderr, doc, base, tolerance); err != nil {
		if gateAbs {
			return err
		}
		// Ratio-only gating: absolute ns/op differences against a baseline
		// recorded on a different machine are noise, so report and move on.
		fmt.Fprintf(os.Stderr, "benchjson: baseline comparison informational only (-gate-absolute off): %v\n", err)
	}
	return nil
}

// readDocument loads a previously written benchmark JSON document.
func readDocument(path string) (Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return Document{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkWorldStep/workers=4-8   3   123456 ns/op   64 B/op   2 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// procSuffix is the trailing -GOMAXPROCS tag Go appends to benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads benchmark text and aggregates repeated runs of the same
// benchmark, keeping the minimum ns/op.
func Parse(r io.Reader) (Document, error) {
	best := map[string]*Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(strings.TrimPrefix(m[1], "Benchmark"), "")
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		b := best[name]
		if b == nil {
			b = &Benchmark{Name: name, NsPerOp: ns}
			best[name] = b
		}
		b.Runs++
		if ns < b.NsPerOp {
			b.NsPerOp = ns
		}
		for _, metric := range []struct {
			unit string
			dst  *float64
		}{{"B/op", &b.BPerOp}, {"allocs/op", &b.AllocsOp}} {
			if v, ok := extraMetric(m[4], metric.unit); ok &&
				(*metric.dst == 0 || v < *metric.dst) {
				*metric.dst = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Document{}, err
	}
	doc := Document{Benchmarks: make([]Benchmark, 0, len(best))}
	for _, b := range best {
		doc.Benchmarks = append(doc.Benchmarks, *b)
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

// extraMetric pulls "<value> <unit>" out of the tail of a benchmark line.
func extraMetric(tail, unit string) (float64, bool) {
	fields := strings.Fields(tail)
	for i := 1; i < len(fields); i++ {
		if fields[i] == unit {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			return v, err == nil
		}
	}
	return 0, false
}

// Gate compares doc against base and returns an error when any shared
// benchmark regressed beyond the tolerance. Diagnostics go to w. Whether
// the error fails the run is the caller's decision: CI treats it as
// informational (-gate-absolute off) because absolute ns/op from
// heterogeneous runners is not comparable; only the speedup ratios gate.
func Gate(w io.Writer, doc, base Document, tolerance float64) error {
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var failures []string
	for _, b := range doc.Benchmarks {
		bb, ok := baseBy[b.Name]
		if !ok {
			fmt.Fprintf(w, "benchjson: %s: not in baseline (new benchmark, not gated)\n", b.Name)
			continue
		}
		delete(baseBy, b.Name)
		ratio := b.NsPerOp / bb.NsPerOp
		limit := 1 + tolerance
		status := "ok"
		if ratio > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx > %.2fx allowed)",
				b.Name, b.NsPerOp, bb.NsPerOp, ratio, limit))
		}
		fmt.Fprintf(w, "benchjson: %-40s %12.0f ns/op  baseline %12.0f  ratio %.2f  %s\n",
			b.Name, b.NsPerOp, bb.NsPerOp, ratio, status)
	}
	for name := range baseBy {
		fmt.Fprintf(w, "benchjson: %s: in baseline but not in this run (not gated)\n", name)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond +%.0f%%:\n  %s",
			len(failures), tolerance*100, strings.Join(failures, "\n  "))
	}
	return nil
}

// addSpeedup resolves one 'slow:fast:ratio' spec against the parsed
// benchmarks and records the measured ratio in doc.Speedups.
func addSpeedup(doc *Document, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("bad -minspeedup %q: want 'slowName:fastName:minRatio'", spec)
	}
	want, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("bad -minspeedup ratio %q: %v", parts[2], err)
	}
	find := func(name string) (Benchmark, error) {
		for _, b := range doc.Benchmarks {
			if b.Name == name {
				return b, nil
			}
		}
		return Benchmark{}, fmt.Errorf("-minspeedup: benchmark %q not in this run", name)
	}
	slow, err := find(parts[0])
	if err != nil {
		return err
	}
	fast, err := find(parts[1])
	if err != nil {
		return err
	}
	doc.Speedups = append(doc.Speedups, Speedup{
		Slow:     slow.Name,
		Fast:     fast.Name,
		Ratio:    math.Round(slow.NsPerOp/fast.NsPerOp*10000) / 10000,
		MinRatio: want,
	})
	return nil
}

// addAllocGate resolves one 'name:maxAllocs' spec against the parsed
// benchmarks and records the measured allocs/op in doc.AllocGates.
func addAllocGate(doc *Document, spec string) error {
	i := strings.LastIndex(spec, ":")
	if i < 0 {
		return fmt.Errorf("bad -maxallocs %q: want 'benchName:maxAllocsPerOp'", spec)
	}
	name, limit := spec[:i], spec[i+1:]
	max, err := strconv.ParseFloat(limit, 64)
	if err != nil {
		return fmt.Errorf("bad -maxallocs limit %q: %v", limit, err)
	}
	for _, b := range doc.Benchmarks {
		if b.Name == name {
			doc.AllocGates = append(doc.AllocGates, AllocGate{
				Name: name, AllocsOp: b.AllocsOp, MaxAllocs: max,
			})
			return nil
		}
	}
	return fmt.Errorf("-maxallocs: benchmark %q not in this run", name)
}

// gateSpeedups enforces every recorded speedup requirement, printing each
// measured ratio to w.
func gateSpeedups(w io.Writer, doc Document) error {
	for _, s := range doc.Speedups {
		fmt.Fprintf(w, "benchjson: speedup %s -> %s = %.2fx (want >= %.2fx)\n",
			s.Slow, s.Fast, s.Ratio, s.MinRatio)
		if s.Ratio < s.MinRatio {
			return fmt.Errorf("speedup %s -> %s is %.2fx, want >= %.2fx",
				s.Slow, s.Fast, s.Ratio, s.MinRatio)
		}
	}
	return nil
}

// gateAllocs enforces every recorded allocs/op ceiling, printing each
// measured count to w.
func gateAllocs(w io.Writer, doc Document) error {
	for _, g := range doc.AllocGates {
		fmt.Fprintf(w, "benchjson: allocs %s = %g allocs/op (want <= %g)\n",
			g.Name, g.AllocsOp, g.MaxAllocs)
		if g.AllocsOp > g.MaxAllocs {
			return fmt.Errorf("allocs %s is %g allocs/op, want <= %g",
				g.Name, g.AllocsOp, g.MaxAllocs)
		}
	}
	return nil
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }
