package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkWorldStep/workers=1-8         	       3	 90000000 ns/op
BenchmarkWorldStep/workers=1-8         	       3	 80000000 ns/op
BenchmarkWorldStep/workers=8-8         	       3	 20000000 ns/op	     512 B/op	       7 allocs/op
BenchmarkFigureSuiteSequential-8       	       1	500000000 ns/op
PASS
ok  	repro	42.0s
`

func TestParseAggregatesAndStripsProcSuffix(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	byName := map[string]Benchmark{}
	for _, b := range doc.Benchmarks {
		byName[b.Name] = b
	}
	w1, ok := byName["WorldStep/workers=1"]
	if !ok {
		t.Fatalf("proc suffix not stripped: %+v", byName)
	}
	if w1.Runs != 2 || w1.NsPerOp != 80000000 {
		t.Errorf("workers=1 = %+v, want 2 runs at min 8e7 ns/op", w1)
	}
	if w8 := byName["WorldStep/workers=8"]; w8.BPerOp != 512 || w8.AllocsOp != 7 {
		t.Errorf("extra metrics not parsed: %+v", w8)
	}
	// Sorted by name for byte-diffable output.
	for i := 1; i < len(doc.Benchmarks); i++ {
		if doc.Benchmarks[i-1].Name > doc.Benchmarks[i].Name {
			t.Errorf("benchmarks not sorted: %q before %q",
				doc.Benchmarks[i-1].Name, doc.Benchmarks[i].Name)
		}
	}
}

func TestGate(t *testing.T) {
	base := Document{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 100},
		{Name: "B", NsPerOp: 100},
		{Name: "Gone", NsPerOp: 100},
	}}
	ok := Document{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 115}, // +15% < +20%: fine
		{Name: "B", NsPerOp: 50},  // faster: fine
		{Name: "New", NsPerOp: 9e9},
	}}
	if err := Gate(io.Discard, ok, base, 0.20); err != nil {
		t.Errorf("within-tolerance run failed the gate: %v", err)
	}
	bad := Document{Benchmarks: []Benchmark{{Name: "A", NsPerOp: 130}}}
	if err := Gate(io.Discard, bad, base, 0.20); err == nil {
		t.Error("+30% regression passed a +20% gate")
	}
}

// TestRatioOnlyGating pins the CI gate semantics end to end: an absolute
// regression against the baseline is informational unless -gate-absolute is
// set, while a missed -minspeedup ratio always fails.
func TestRatioOnlyGating(t *testing.T) {
	dir := t.TempDir()
	benchTxt := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchTxt, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	// Baseline so fast that every parsed benchmark is a huge "regression".
	base := Document{Benchmarks: []Benchmark{
		{Name: "WorldStep/workers=1", NsPerOp: 1},
		{Name: "WorldStep/workers=8", NsPerOp: 1},
	}}
	baseJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(basePath, baseJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.json")

	// sample has workers=1 at 8e7 and workers=8 at 2e7 ns/op: a 4x ratio.
	okSpeedup := []string{"WorldStep/workers=1:WorldStep/workers=8:2.0"}
	if err := run(benchTxt, out, basePath, 0.20, false, false, okSpeedup, nil); err != nil {
		t.Errorf("absolute regression failed a ratio-only run: %v", err)
	}
	if err := run(benchTxt, out, basePath, 0.20, true, false, okSpeedup, nil); err == nil {
		t.Error("-gate-absolute did not fail on a regression beyond tolerance")
	}
	badSpeedup := []string{"WorldStep/workers=1:WorldStep/workers=8:9.0"}
	if err := run(benchTxt, out, basePath, 0.20, false, false, badSpeedup, nil); err == nil {
		t.Error("missed speedup ratio passed a ratio-only run")
	}

	// The alloc gate rides the same pipeline: workers=8 reports 7 allocs/op
	// in sample, so a ceiling of 7 passes and a ceiling of 0 fails.
	okAllocs := []string{"WorldStep/workers=8:7"}
	if err := run(benchTxt, out, basePath, 0.20, false, false, nil, okAllocs); err != nil {
		t.Errorf("7 allocs/op failed a <=7 gate: %v", err)
	}
	badAllocs := []string{"WorldStep/workers=8:0"}
	if err := run(benchTxt, out, basePath, 0.20, false, false, nil, badAllocs); err == nil {
		t.Error("7 allocs/op passed a <=0 gate")
	}
}

func TestAllocGateRecording(t *testing.T) {
	doc := Document{Benchmarks: []Benchmark{
		{Name: "Resolve/peersolved", NsPerOp: 100, AllocsOp: 0},
		{Name: "WorldStep/workers=8", NsPerOp: 40, AllocsOp: 7},
	}}
	if err := addAllocGate(&doc, "Resolve/peersolved:0"); err != nil {
		t.Fatalf("addAllocGate: %v", err)
	}
	if len(doc.AllocGates) != 1 {
		t.Fatalf("got %d alloc gates, want 1", len(doc.AllocGates))
	}
	if g := doc.AllocGates[0]; g.Name != "Resolve/peersolved" || g.AllocsOp != 0 || g.MaxAllocs != 0 {
		t.Errorf("recorded alloc gate = %+v, want 0 allocs over a 0 ceiling", g)
	}
	if err := gateAllocs(io.Discard, doc); err != nil {
		t.Errorf("0 allocs/op failed a <=0 requirement: %v", err)
	}

	// The measured count must land in the JSON artifact, not just on stderr.
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"alloc_gates"`) || !strings.Contains(string(data), `"max_allocs":0`) {
		t.Errorf("alloc gate missing from JSON document: %s", data)
	}

	if err := addAllocGate(&doc, "WorldStep/workers=8:3"); err != nil {
		t.Fatalf("addAllocGate: %v", err)
	}
	if err := gateAllocs(io.Discard, doc); err == nil {
		t.Error("7 allocs/op passed a <=3 requirement")
	}

	if err := addAllocGate(&doc, "nope"); err == nil {
		t.Error("malformed spec accepted")
	}
	if err := addAllocGate(&doc, "Missing:0"); err == nil {
		t.Error("spec naming an absent benchmark accepted")
	}
}

func TestSpeedupRecordingAndGate(t *testing.T) {
	doc := Document{Benchmarks: []Benchmark{
		{Name: "WorldStep/workers=1", NsPerOp: 100},
		{Name: "WorldStep/workers=8", NsPerOp: 40},
	}}
	if err := addSpeedup(&doc, "WorldStep/workers=1:WorldStep/workers=8:2.0"); err != nil {
		t.Fatalf("addSpeedup: %v", err)
	}
	if len(doc.Speedups) != 1 {
		t.Fatalf("got %d speedups, want 1", len(doc.Speedups))
	}
	s := doc.Speedups[0]
	if s.Slow != "WorldStep/workers=1" || s.Fast != "WorldStep/workers=8" ||
		s.Ratio != 2.5 || s.MinRatio != 2.0 {
		t.Errorf("recorded speedup = %+v, want 2.5x over a 2.0x floor", s)
	}
	if err := gateSpeedups(io.Discard, doc); err != nil {
		t.Errorf("2.5x speedup failed a 2.0x requirement: %v", err)
	}

	// The ratio must land in the JSON document (the CI artifact), not just
	// the gate's stderr.
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"speedups"`) || !strings.Contains(string(data), `"ratio":2.5`) {
		t.Errorf("speedup ratio missing from JSON document: %s", data)
	}

	if err := addSpeedup(&doc, "WorldStep/workers=1:WorldStep/workers=8:3.0"); err != nil {
		t.Fatalf("addSpeedup: %v", err)
	}
	if err := gateSpeedups(io.Discard, doc); err == nil {
		t.Error("2.5x speedup passed a 3.0x requirement")
	}

	if err := addSpeedup(&doc, "nope"); err == nil {
		t.Error("malformed spec accepted")
	}
	if err := addSpeedup(&doc, "WorldStep/workers=1:Missing:2.0"); err == nil {
		t.Error("spec naming an absent benchmark accepted")
	}
}
