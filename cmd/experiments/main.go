// Command experiments regenerates the paper's evaluation figures. Every
// sub-figure of Figures 9–17 has a runner; by default all of them execute
// with durations scaled down 30x from the paper's (1 h and 5 h); pass
// -scale 1 for full-length runs.
//
// Usage:
//
//	experiments [-fig 9|10|11|12|13|14|15|16|17|free|uncertain|diskio|all]
//	            [-scale N] [-queries N] [-area 2mi|30mi] [-chart]
//	            [-parallel N] [-worldworkers N] [-queryworkers N]
//	            [-gather batched|perquery] [-rebuild incremental|full]
//	            [-repeats N] [-json dir]
//	            [-cpuprofile file] [-memprofile file]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/plot"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 9..17, free (the §4.3 comparison), or all")
		scale    = flag.Float64("scale", 30, "duration scale divisor (1 = full paper-length runs)")
		hostSc   = flag.Float64("hostscale", 1, "host-count scale divisor for smoke runs")
		queries  = flag.Int("queries", 300, "query count per k for the Figure 17 study")
		seed     = flag.Int64("seed", 0, "seed offset applied to every run")
		areaSel  = flag.String("area", "", "restrict the free comparison to one area: 2mi or 30mi")
		chart    = flag.Bool("chart", false, "render ASCII charts next to the numeric tables")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"core budget per figure: concurrent simulation runs × per-run workers (1 = fully sequential; output is identical either way)")
		worldWorkers = flag.Int("worldworkers", 0,
			"movement workers inside each simulation (0 = derive from the -parallel budget; output is identical for any value)")
		queryWorkers = flag.Int("queryworkers", 0,
			"query-resolve workers inside each simulation (0 = derive from the -parallel budget; output is identical for any value)")
		repeats = flag.Int("repeats", 0,
			"independent runs per sweep point, reported as mean ± stddev in the JSON output (0 = runner default: 1 for sweeps, 3 for the free comparison)")
		gather = flag.String("gather", "batched",
			"peer gather strategy: batched (per-step spatial join) or perquery (per-query grid sweep); output is identical either way")
		rebuild = flag.String("rebuild", "incremental",
			"host-grid maintenance: incremental (patch from the moved-host delta) or full (counting rebuild every step); output is identical either way")
		jsonDir = flag.String("json", "",
			"directory to also write machine-readable results into (one JSON file per figure, stable key order)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	perQueryGather := false
	switch *gather {
	case "batched":
	case "perquery":
		perQueryGather = true
	default:
		fatal(fmt.Errorf("unknown -gather mode %q; want batched or perquery", *gather))
	}
	fullRebuild := false
	switch *rebuild {
	case "incremental":
	case "full":
		fullRebuild = true
	default:
		fatal(fmt.Errorf("unknown -rebuild mode %q; want incremental or full", *rebuild))
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live steady-state objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	opts := experiments.Options{
		DurationScale: *scale, HostScale: *hostSc, Seed: *seed,
		Workers: *parallel, WorldWorkers: *worldWorkers,
		QueryWorkers: *queryWorkers, Repeats: *repeats,
		PerQueryGather: perQueryGather, FullRebuild: fullRebuild,
	}
	persist := func(err error) {
		if err != nil {
			fatal(err)
		}
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	type sweepFn func(experiments.Region, experiments.Area, experiments.Options) (experiments.FigureResult, error)
	sweeps := []struct {
		name string
		area experiments.Area
		fn   sweepFn
	}{
		{"9", experiments.Area2mi, experiments.TransmissionRangeSweep},
		{"10", experiments.Area30mi, experiments.TransmissionRangeSweep},
		{"11", experiments.Area2mi, experiments.CacheCapacitySweep},
		{"12", experiments.Area30mi, experiments.CacheCapacitySweep},
		{"13", experiments.Area2mi, experiments.VelocitySweep},
		{"14", experiments.Area30mi, experiments.VelocitySweep},
		{"15", experiments.Area2mi, experiments.KSweep},
		{"16", experiments.Area30mi, experiments.KSweep},
	}
	ran := false
	for _, s := range sweeps {
		if !want(s.name) {
			continue
		}
		ran = true
		frs := make([]experiments.FigureResult, 0, len(experiments.Regions))
		for _, r := range experiments.Regions {
			fr, err := s.fn(r, s.area, opts)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.FormatFigure(fr))
			if *chart {
				fmt.Println(figureChart(fr))
			}
			frs = append(frs, fr)
		}
		if *jsonDir != "" {
			persist(experiments.WriteFigureJSON(*jsonDir, frs))
		}
	}
	if want("free") {
		ran = true
		areas := []experiments.Area{experiments.Area2mi, experiments.Area30mi}
		switch *areaSel {
		case "2mi":
			areas = areas[:1]
		case "30mi":
			areas = areas[1:]
		}
		var rows []experiments.FreeComparisonRow
		fmt.Println("Section 4.3 — free movement vs road network mode (server share %)")
		fmt.Printf("%-22s %-10s %12s %12s %10s\n", "region", "area", "road SQRR", "free SQRR", "delta")
		for _, a := range areas {
			for _, r := range experiments.Regions {
				road, free, err := experiments.FreeMovementComparison(r, a, opts)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("%-22s %-10s %12.1f %12.1f %10.1f\n", r, a, road, free, road-free)
				rows = append(rows, experiments.FreeComparisonRow{
					Region: r.String(), Area: a.String(),
					RoadSQRR: road, FreeSQRR: free, Delta: road - free,
				})
			}
		}
		fmt.Println()
		if *jsonDir != "" {
			persist(experiments.WriteFreeJSON(*jsonDir, rows))
		}
	}
	if want("uncertain") {
		ran = true
		fmt.Println("Uncertain-answer quality (AcceptUncertain on; extension study)")
		fmt.Printf("%-22s %12s %12s %12s %12s\n",
			"region", "uncertain %", "server %", "precision", "rank acc.")
		uqs, err := experiments.UncertainQualityAll(experiments.Area2mi, opts)
		if err != nil {
			fatal(err)
		}
		for i, r := range experiments.Regions {
			uq := uqs[i]
			fmt.Printf("%-22s %12.1f %12.1f %12.2f %12.2f\n",
				r, uq.UncertainShare, uq.ServerShare, uq.Precision, uq.RankAccuracy)
		}
		fmt.Println()
		if *jsonDir != "" {
			persist(experiments.WriteUncertainJSON(*jsonDir, uqs))
		}
	}
	if want("diskio") {
		ran = true
		fr, err := experiments.DiskIOStudy(experiments.LosAngeles, *queries, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatDiskIO(fr))
		if *jsonDir != "" {
			persist(experiments.WriteDiskIOJSON(*jsonDir, fr))
		}
	}
	if want("17") {
		ran = true
		frs := make([]experiments.Fig17Result, 0, len(experiments.Regions))
		for _, r := range experiments.Regions {
			fr, err := experiments.EINNvsINN(r, experiments.Area30mi, *queries, opts)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.FormatFig17(fr))
			frs = append(frs, fr)
		}
		if *jsonDir != "" {
			persist(experiments.WriteFig17JSON(*jsonDir, frs))
		}
	}
	if !ran {
		fatal(fmt.Errorf("unknown figure %q; want one of 9..17, free, uncertain, diskio, all", *fig))
	}
	if *scale > 1 && !strings.Contains(*fig, "17") {
		fmt.Printf("note: durations scaled down %.0fx from the paper's; pass -scale 1 for full runs\n", *scale)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// figureChart renders a figure's three share series as an ASCII chart.
func figureChart(fr experiments.FigureResult) string {
	labels := make([]string, len(fr.Points))
	single := make([]float64, len(fr.Points))
	multi := make([]float64, len(fr.Points))
	server := make([]float64, len(fr.Points))
	for i, p := range fr.Points {
		labels[i] = strconv.FormatFloat(p.X, 'f', -1, 64)
		single[i] = p.ShareSingle
		multi[i] = p.ShareMulti
		server[i] = p.ShareServer
	}
	return plot.Chart{
		Title:   fmt.Sprintf("Figure %s — %% of queries (y) vs %s (x)", fr.Figure, fr.XLabel),
		XLabels: labels,
		YMin:    0, YMax: 100,
		Series: []plot.Series{
			{Name: "single-peer", Points: single, Marker: '1'},
			{Name: "multi-peer", Points: multi, Marker: 'm'},
			{Name: "server", Points: server, Marker: 'S'},
		},
	}.Render()
}
