// Command simvet runs the repository's determinism-and-concurrency lint
// suite (internal/analysis) over the module. The v1 analyzers — maporder,
// globalrand, walltime, floateq, counteratomic — are the static half of
// the reproducibility gate: the CI determinism job byte-diffs simulator
// output at run time; simvet rejects the bug classes that would make that
// diff fail (or make it pass by luck) before they compile into the tree.
// The v2 analyzers ride on a per-package call graph with bottom-up
// function summaries and guard the serving stack: locksafe (a mutex held
// across a blocking call; sync types copied by value), goleak (a goroutine
// spawned with no reachable termination path), errsink (a discarded error
// from conn/wire/pagestore operations or their same-package wrappers).
// annotation audits the //simvet: suppression comments themselves, so a
// typo'd key fails the lint instead of silently suppressing nothing.
//
// Usage:
//
//	go run ./cmd/simvet ./...
//	go run ./cmd/simvet -only maporder,walltime ./internal/sim
//
// Patterns are package directories; a trailing /... walks recursively,
// skipping testdata and vendor like the go tool. With no patterns, ./...
// is assumed. Exit status is 1 when any analyzer reports a finding, 2 on
// usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "print the analyzers and their scopes, then exit")
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if len(a.Scope) > 0 {
				scope = strings.Join(a.Scope, ", ")
			}
			fmt.Printf("%-14s %s\n%14s scope: %s\n", a.Name+":", a.Doc, "", scope)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, importPaths, err := resolve(patterns)
	if err != nil {
		fatalf("%v", err)
	}

	loader := analysis.NewLoader()
	findings := 0
	for i, dir := range dirs {
		pkg, err := loader.Load(dir, importPaths[i])
		if err != nil {
			fatalf("%v", err)
		}
		if pkg == nil {
			continue
		}
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fatalf("%v", err)
			}
			for _, d := range diags {
				fmt.Println(d)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "simvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// resolve expands the command-line patterns into package directories and
// import paths inside the enclosing module.
func resolve(patterns []string) (dirs, importPaths []string, err error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, nil, err
	}
	root, modPath, err := findModule(cwd)
	if err != nil {
		return nil, nil, err
	}
	seen := make(map[string]bool)
	add := func(ds, ips []string) {
		for i, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
				importPaths = append(importPaths, ips[i])
			}
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := filepath.Join(cwd, rest)
			ds, ips, err := analysis.ModulePackages(root)
			if err != nil {
				return nil, nil, err
			}
			// ModulePackages walks the whole module; keep the subtree the
			// pattern names.
			var fds, fips []string
			for i, d := range ds {
				if d == base || strings.HasPrefix(d, base+string(filepath.Separator)) {
					fds = append(fds, d)
					fips = append(fips, ips[i])
				}
			}
			add(fds, fips)
			continue
		}
		dir, err := filepath.Abs(filepath.Join(cwd, pat))
		if err != nil {
			return nil, nil, err
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, nil, fmt.Errorf("package %s is outside module %s", pat, modPath)
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		add([]string{dir}, []string{ip})
	}
	return dirs, importPaths, nil
}

// findModule locates the enclosing go.mod and returns the module root
// directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module declaration", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simvet: "+format+"\n", args...)
	os.Exit(2)
}
