// Command senn-sim runs one configured simulation of the sharing-based
// nearest-neighbor system and prints its steady-state metrics: the share of
// queries resolved by a single peer, by multiple peers, and by the server
// (SQRR), plus the server's R*-tree page accesses (PAR).
//
// Usage:
//
//	senn-sim [flags]
//
// Examples:
//
//	senn-sim -region la -area 2mi
//	senn-sim -region riverside -area 30mi -scale 100 -tx 100
//	senn-sim -hosts 500 -pois 20 -width 3218 -height 3218 -rate 23
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	var (
		region  = flag.String("region", "la", "parameter set: la, suburbia, riverside")
		area    = flag.String("area", "2mi", "simulation area: 2mi or 30mi")
		scale   = flag.Float64("scale", 30, "duration scale divisor (1 = full paper-length run)")
		hostSc  = flag.Float64("hostscale", 1, "host-count scale divisor for smoke runs")
		tx      = flag.Float64("tx", -1, "override transmission range (m)")
		cacheSz = flag.Int("cache", -1, "override cache capacity")
		vel     = flag.Float64("velocity", -1, "override host velocity (mph)")
		k       = flag.Int("k", -1, "override requested neighbor count (fixes k)")
		free    = flag.Bool("free", false, "use free movement instead of the road network")
		series  = flag.Float64("series", 0, "print a query-resolution time series with this window (seconds)")
		seed    = flag.Int64("seed", 1, "random seed")

		hosts   = flag.Int("hosts", 0, "custom: number of hosts (enables custom mode)")
		pois    = flag.Int("pois", 0, "custom: number of POIs")
		width   = flag.Float64("width", 0, "custom: area width (m)")
		rate    = flag.Float64("rate", 0, "custom: queries per minute")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var cfg sim.Config
	if *hosts > 0 {
		cfg = sim.Config{
			AreaWidth: *width, AreaHeight: *width,
			NumPOIs: *pois, NumHosts: *hosts,
			CacheSize: 10, MovePercentage: 0.8,
			Velocity: 30 * experiments.MPH, QueriesPerMinute: *rate,
			TxRange: 200, KMin: 1, KMax: 5, Duration: 600,
			Mode: sim.ModeRoadNetwork, MaxPause: 30, Seed: *seed,
		}
	} else {
		r, err := experiments.ParseRegion(*region)
		if err != nil {
			fatal(err)
		}
		a := experiments.Area2mi
		if strings.Contains(*area, "30") {
			a = experiments.Area30mi
		}
		cfg = experiments.ScaleHosts(
			experiments.ScaleDuration(experiments.BaseConfig(r, a), *scale), *hostSc)
		cfg.Seed = *seed
	}
	if *tx >= 0 {
		cfg.TxRange = *tx
	}
	if *cacheSz > 0 {
		cfg.CacheSize = *cacheSz
	}
	if *vel > 0 {
		cfg.Velocity = *vel * experiments.MPH
	}
	if *k > 0 {
		cfg.KMin, cfg.KMax = *k, *k
	}
	if *free {
		cfg.Mode = sim.ModeFreeMovement
	}
	if *series > 0 {
		cfg.SeriesWindow = *series
	}

	w, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("running %s: %d hosts, %d POIs, %.0f q/min, tx=%.0f m, cache=%d, k=[%d,%d], %.0f s simulated\n",
		cfg.Mode, cfg.NumHosts, cfg.NumPOIs, cfg.QueriesPerMinute,
		cfg.TxRange, cfg.CacheSize, cfg.KMin, cfg.KMax, cfg.Duration)
	m := w.Run()
	fmt.Printf("\nsteady-state results (%.0f s measured):\n", m.MeasuredSeconds)
	fmt.Printf("  total queries        %d\n", m.TotalQueries)
	fmt.Printf("  single-peer solved   %6.1f %%\n", m.ShareSingle())
	fmt.Printf("  multi-peer solved    %6.1f %%\n", m.ShareMulti())
	fmt.Printf("  server solved (SQRR) %6.1f %%\n", m.SQRR())
	if m.SolvedUncertain > 0 {
		fmt.Printf("  uncertain accepted   %6.1f %%\n", m.ShareUncertain())
	}
	fmt.Printf("  server page accesses %d (%.1f per server query)\n",
		m.ServerPageAccesses, m.PagesPerServerQuery())
	fmt.Printf("  p2p overhead         %d messages, %.0f bytes/query\n",
		m.PeerMessages, m.PeerBytesPerQuery())

	if pts := w.Series(); len(pts) > 0 {
		fmt.Printf("\ntime series (window %.0f s; includes warm-up):\n", *series)
		fmt.Printf("%-14s %8s %8s %8s %8s\n", "window", "queries", "single%", "multi%", "server%")
		for _, p := range pts {
			if p.Queries == 0 {
				continue
			}
			pct := func(n int64) float64 { return 100 * float64(n) / float64(p.Queries) }
			fmt.Printf("%6.0f-%-7.0f %8d %8.1f %8.1f %8.1f\n",
				p.Start, p.End, p.Queries, pct(p.Single), pct(p.Multi), pct(p.Server))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "senn-sim:", err)
	os.Exit(1)
}
