// Command roadgen generates a synthetic TIGER/LINE-style road network
// (DESIGN.md substitution D2) and writes it as segment records — one per
// edge: "x1 y1 x2 y2 class" — to stdout, with a structural summary on
// stderr. The output is convenient for plotting and for feeding external
// tools.
//
// Usage:
//
//	roadgen [-width M] [-height M] [-spacing M] [-secondary N] [-highway N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/spatialnet"
)

func main() {
	var (
		width     = flag.Float64("width", 3218.688, "area width (m)")
		height    = flag.Float64("height", 3218.688, "area height (m)")
		spacing   = flag.Float64("spacing", 160, "grid spacing (m)")
		secondary = flag.Int("secondary", 5, "every n-th line is a secondary road (0 = none)")
		highway   = flag.Int("highway", 20, "every n-th line is a highway (0 = none)")
		summarize = flag.Bool("summary", true, "print a structural summary to stderr")
	)
	flag.Parse()

	g, err := spatialnet.GenerateGrid(spatialnet.GridConfig{
		Width:          *width,
		Height:         *height,
		Spacing:        *spacing,
		SecondaryEvery: *secondary,
		HighwayEvery:   *highway,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roadgen:", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, e := range g.Edges() {
		a, b := g.Loc(e.From), g.Loc(e.To)
		fmt.Fprintf(w, "%.3f %.3f %.3f %.3f %s\n", a.X, a.Y, b.X, b.Y, e.Class)
	}

	if *summarize {
		classes := map[spatialnet.RoadClass]int{}
		var totalLen float64
		for _, e := range g.Edges() {
			classes[e.Class]++
			totalLen += e.Length
		}
		comps := g.ConnectedComponents()
		fmt.Fprintf(os.Stderr, "nodes: %d  edges: %d  components: %d  total length: %.1f km\n",
			g.NumNodes(), g.NumEdges(), len(comps), totalLen/1000)
		for _, c := range []spatialnet.RoadClass{spatialnet.ClassHighway, spatialnet.ClassSecondary, spatialnet.ClassRural} {
			fmt.Fprintf(os.Stderr, "  %-10s %6d edges (limit %.0f mph)\n",
				c, classes[c], c.SpeedLimit()/0.44704)
		}
	}
}
