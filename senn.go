// Package senn is the public facade of this repository: a from-scratch Go
// implementation of "Location-based Spatial Queries with Data Sharing in
// Mobile Environments" (Ku, Zimmermann, Wan — USC TR 05-843 / ICDE 2006).
//
// The paper's idea: a mobile host answers k-nearest-neighbor queries by
// verifying the cached kNN results of peers reachable over a short-range
// ad-hoc network. A result object from a peer is provably correct
// ("certain") when the disc around the query point through the object lies
// inside the peer's known area (Lemma 3.2), or inside the merged known area
// of several peers (Lemma 3.8). Only the uncertified remainder goes to the
// remote spatial database — along with pruning bounds that cut the server's
// R*-tree page accesses (the EINN algorithm, §3.3). An extension answers
// network-distance queries over road networks (SNNN, §3.4).
//
// This package re-exports the stable API surface from the internal
// implementation packages; the examples/ directory shows complete programs
// built on it. (In an external release the internal packages would simply be
// lifted to public paths; the facade keeps the repository layout of
// DESIGN.md while offering one import for downstream use.)
package senn

import (
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/spatialnet"
)

// Geometric primitives.
type (
	// Point is a planar location in meters.
	Point = geom.Point
	// Circle is a closed disc.
	Circle = geom.Circle
	// Region is a union of discs — the merged certain region R_c of
	// multi-peer verification.
	Region = geom.Region
)

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewRegion builds the union of the given discs.
func NewRegion(circles ...Circle) *Region { return geom.NewRegion(circles...) }

// Core sharing-based query types (§3.2–3.3).
type (
	// POI is a point of interest (the query target objects).
	POI = core.POI
	// RankedPOI is a POI with its distance and (when certified) exact rank.
	RankedPOI = core.RankedPOI
	// PeerCache is the kNN result a peer shares: its query location and the
	// certain neighbors it holds.
	PeerCache = core.PeerCache
	// ResultHeap is the heap H of certain and uncertain candidates.
	ResultHeap = core.ResultHeap
	// Candidate is an entry of the heap H.
	Candidate = core.Candidate
	// HeapState classifies H per §3.3 (states 1–6).
	HeapState = core.HeapState
	// Bounds carries the branch-expanding lower/upper bounds for the
	// server's EINN search.
	Bounds = nn.Bounds
	// Server is the remote database interface SENN falls back to.
	Server = core.Server
	// QueryOptions configures a SENN query.
	QueryOptions = core.Options
	// QueryResult is the outcome of a SENN query.
	QueryResult = core.Result
	// Source tells how a query was resolved (single peer, multiple peers,
	// uncertain, or server).
	Source = core.Source
)

// Re-exported Source values.
const (
	SolvedBySinglePeer = core.SolvedBySinglePeer
	SolvedByMultiPeer  = core.SolvedByMultiPeer
	SolvedUncertain    = core.SolvedUncertain
	SolvedByServer     = core.SolvedByServer
)

// NewPeerCache builds a shareable peer cache entry from an unordered
// neighbor set.
func NewPeerCache(queryLoc Point, neighbors []POI) PeerCache {
	return core.NewPeerCache(queryLoc, neighbors)
}

// NewResultHeap returns an empty heap H for a query requesting k neighbors.
func NewResultHeap(k int) *ResultHeap { return core.NewResultHeap(k) }

// Query executes the SENN algorithm (Algorithm 1): verify cached results
// from the given peers, then fall back to srv (which may be nil) for the
// uncertified remainder.
func Query(q Point, k int, peers []PeerCache, srv Server, opts QueryOptions) QueryResult {
	return core.SENN(q, k, peers, srv, opts)
}

// Range-query extension (the paper's §5 future work).
type (
	// RangeServer is the remote database interface for range queries.
	RangeServer = core.RangeServer
	// RangeResult is the outcome of a sharing-based range query.
	RangeResult = core.RangeResult
)

// RangeQueryWithin answers "every POI within r of q" through peer
// verification with server fallback, extending the SENN machinery to range
// queries (the paper's first listed piece of future work).
func RangeQueryWithin(q Point, r float64, peers []PeerCache, srv RangeServer, opts QueryOptions) RangeResult {
	return core.RangeQuery(q, r, peers, srv, opts)
}

// VerifySinglePeer runs kNN_single for one peer (Lemma 3.2) against heap h.
func VerifySinglePeer(q Point, peer PeerCache, h *ResultHeap) {
	core.VerifySinglePeer(q, peer, h)
}

// VerifyMultiPeer runs kNN_multiple (Lemma 3.8) over the merged certain
// region of all peers, using the exact arc-coverage test.
func VerifyMultiPeer(q Point, peers []PeerCache, h *ResultHeap) {
	core.VerifyMultiPeer(q, peers, h)
}

// VerifyMultiPeerPolygonized is VerifyMultiPeer with the paper's
// polygonization + overlay construction at the given fidelity (vertices per
// circle; 0 selects the default). Its verdicts are a conservative subset of
// VerifyMultiPeer's.
func VerifyMultiPeerPolygonized(q Point, peers []PeerCache, h *ResultHeap, vertices int) {
	core.VerifyMultiPeerPolygonized(q, peers, h, vertices)
}

// Database is an in-process spatial database server: an R*-tree over a POI
// set answering bounded kNN queries with the EINN algorithm and counting its
// page accesses. It implements Server.
type Database = sim.ServerModule

// NewDatabase indexes pois with the paper's default branching factor (30).
func NewDatabase(pois []POI) *Database { return sim.NewServerModule(pois, 30) }

// NewDatabaseFanout indexes pois with an explicit branching factor.
func NewDatabaseFanout(pois []POI, fanout int) *Database {
	return sim.NewServerModule(pois, fanout)
}

// Spatial network queries (§3.4).
type (
	// RoadNetwork is a road graph with per-class speed limits.
	RoadNetwork = spatialnet.Graph
	// RoadClass categorizes segments (highway, secondary, rural).
	RoadClass = spatialnet.RoadClass
	// RoadSegment is a raw input segment for network construction.
	RoadSegment = spatialnet.Segment
	// GridConfig parameterizes the synthetic road network generator.
	GridConfig = spatialnet.GridConfig
	// NetworkResult is one network-distance nearest neighbor.
	NetworkResult = spatialnet.NetworkResult
	// FetchFunc supplies Euclidean NNs incrementally to SNNN.
	FetchFunc = spatialnet.FetchFunc
	// NetworkDistFunc measures network distance from the query point.
	NetworkDistFunc = spatialnet.NetworkDistFunc
)

// Road classes.
const (
	ClassHighway   = spatialnet.ClassHighway
	ClassSecondary = spatialnet.ClassSecondary
	ClassRural     = spatialnet.ClassRural
)

// GenerateRoadNetwork builds a synthetic TIGER/LINE-style road network.
func GenerateRoadNetwork(cfg GridConfig) (*RoadNetwork, error) {
	return spatialnet.GenerateGrid(cfg)
}

// RoadNetworkFromSegments integrates raw segments, detecting junctions and
// over-passes (§4.1.2).
func RoadNetworkFromSegments(segs []RoadSegment) (*RoadNetwork, error) {
	return spatialnet.FromSegments(segs)
}

// NetworkQuery executes the SNNN algorithm (Algorithm 2): k network-distance
// nearest neighbors, drawing Euclidean candidates from fetch — typically
// backed by Query — and measuring distances with nd.
func NetworkQuery(q Point, k int, fetch FetchFunc, nd NetworkDistFunc) []NetworkResult {
	return spatialnet.SNNN(q, k, fetch, nd)
}

// NetworkDistance returns a NetworkDistFunc measuring network distance from
// q over g.
func NetworkDistance(g *RoadNetwork, q Point) NetworkDistFunc {
	return spatialnet.NDFrom(g, q)
}

// Simulation (§4).
type (
	// SimConfig holds every Table 2 simulation parameter.
	SimConfig = sim.Config
	// SimMetrics aggregates SQRR/PAR and the resolution shares.
	SimMetrics = sim.Metrics
	// Simulation is a constructed world ready to run.
	Simulation = sim.World
)

// Simulation modes.
const (
	ModeRoadNetwork  = sim.ModeRoadNetwork
	ModeFreeMovement = sim.ModeFreeMovement
)

// NewSimulation builds a simulation world from cfg.
func NewSimulation(cfg SimConfig) (*Simulation, error) { return sim.New(cfg) }

// Paper parameter sets (Tables 3 and 4).
type (
	// ParamRegion selects Los Angeles / Suburbia / Riverside.
	ParamRegion = experiments.Region
	// ParamArea selects the 2×2 mi or 30×30 mi region.
	ParamArea = experiments.Area
)

// Parameter-set selectors.
const (
	LosAngeles = experiments.LosAngeles
	Suburbia   = experiments.Suburbia
	Riverside  = experiments.Riverside
	Area2mi    = experiments.Area2mi
	Area30mi   = experiments.Area30mi
)

// PaperConfig returns the Table 3/4 configuration for a region and area.
func PaperConfig(r ParamRegion, a ParamArea) SimConfig {
	return experiments.BaseConfig(r, a)
}
