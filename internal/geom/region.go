package geom

import (
	"math"
	"sort"
)

// DefaultPolygonVertices is the number of vertices used when polygonizing
// circles for region-coverage tests. 32 keeps the conservative approximation
// error of the inscribed polygon below 0.5 % of the radius.
const DefaultPolygonVertices = 32

// Region is the union of a set of discs. In the multi-peer verification step
// of the paper (kNN_multiple, §3.2.2) the certain region R_c is the union of
// every reachable peer's certain circle; a candidate point of interest n_i is
// a certain nearest neighbor of the query point Q exactly when the circle
// centered at Q through n_i is fully covered by R_c (Lemma 3.8).
type Region struct {
	circles    []Circle
	vertices   int      // polygonization fidelity
	overlapBuf []Circle // scratch, reused across CoversCircle calls
}

// NewRegion returns the union of the given circles. Zero-radius circles are
// kept (they can still cover degenerate candidates). The polygonization
// fidelity defaults to DefaultPolygonVertices.
func NewRegion(circles ...Circle) *Region {
	cs := make([]Circle, len(circles))
	copy(cs, circles)
	return &Region{circles: cs, vertices: DefaultPolygonVertices}
}

// SetPolygonVertices overrides the number of vertices used to polygonize
// circles during coverage tests. n must be at least 3.
func (r *Region) SetPolygonVertices(n int) {
	if n < 3 {
		panic("geom: region polygonization needs >= 3 vertices")
	}
	r.vertices = n
}

// Add extends the region with another disc.
func (r *Region) Add(c Circle) { r.circles = append(r.circles, c) }

// Circles returns a copy of the discs whose union forms the region.
func (r *Region) Circles() []Circle {
	out := make([]Circle, len(r.circles))
	copy(out, r.circles)
	return out
}

// IsEmpty reports whether the region contains no disc with positive radius
// and no point circle.
func (r *Region) IsEmpty() bool { return len(r.circles) == 0 }

// Contains reports whether p lies in the union.
func (r *Region) Contains(p Point) bool {
	for _, c := range r.circles {
		if c.Contains(p) {
			return true
		}
	}
	return false
}

// Bounds returns the MBR of the union.
func (r *Region) Bounds() Rect {
	out := EmptyRect()
	for _, c := range r.circles {
		out = out.Union(c.Bounds())
	}
	return out
}

// CoversCircle reports whether the disc c is entirely contained in the
// region, using an exact arc-arrangement argument:
//
//  1. the boundary circle of c must be fully covered — decided by merging,
//     per region disc, the angular interval of c's boundary it covers; and
//  2. no "hole" of the union may open inside c — a bounded uncovered pocket
//     of a disc union has corners at intersection points of two disc
//     boundaries, so every such intersection point lying strictly inside c
//     must be strictly interior to some third disc.
//
// Both conditions together are necessary and sufficient; the epsilon
// handling errs toward "not covered", keeping Lemma 3.8 verification sound.
// CoversCirclePolygonized implements the paper's polygonization + MapOverlay
// construction of §3.2.2 and agrees with this method up to its (also
// conservative) approximation error; tests cross-validate the two.
func (r *Region) CoversCircle(c Circle) bool {
	if c.Radius <= Eps {
		return r.Contains(c.Center)
	}
	// Fast path: a single region disc covers the candidate outright.
	for _, rc := range r.circles {
		if rc.ContainsCircle(c) {
			return true
		}
	}
	// Quick reject: coverage requires the candidate's bounding box to fit
	// inside the region's bounding box.
	if !r.Bounds().ContainsRect(c.Bounds()) {
		return false
	}
	// Only region discs that intersect the candidate can contribute.
	overlapping := r.overlapBuf[:0]
	for _, rc := range r.circles {
		if rc.Radius > Eps && rc.Intersects(c) {
			overlapping = append(overlapping, rc)
		}
	}
	r.overlapBuf = overlapping
	if len(overlapping) == 0 {
		return false
	}

	// Condition 1: angular coverage of c's boundary.
	if !boundaryCovered(c, overlapping) {
		return false
	}
	// Condition 2: every circle-circle intersection vertex strictly inside
	// the candidate must be strictly interior to a third disc.
	for i := 0; i < len(overlapping); i++ {
		for j := i + 1; j < len(overlapping); j++ {
			p1, p2, n := circleIntersections(overlapping[i], overlapping[j])
			pts := [2]Point{p1, p2}
			for _, p := range pts[:n] {
				if c.Center.Dist(p) >= c.Radius-Eps {
					continue // on or outside the candidate boundary
				}
				coveredByThird := false
				for k := range overlapping {
					if k == i || k == j {
						continue
					}
					rc := overlapping[k]
					if rc.Center.Dist(p) < rc.Radius-Eps {
						coveredByThird = true
						break
					}
				}
				if !coveredByThird {
					return false
				}
			}
		}
	}
	return true
}

// boundaryCovered reports whether the boundary circle of c is fully covered
// by the union of the given discs, by exact angular-interval merging.
func boundaryCovered(c Circle, discs []Circle) bool {
	type arc struct{ lo, hi float64 }
	var arcs []arc
	add := func(lo, hi float64) { arcs = append(arcs, arc{lo, hi}) }
	for _, rc := range discs {
		d := c.Center.Dist(rc.Center)
		if d+c.Radius <= rc.Radius+Eps {
			return true // this disc alone covers the whole boundary
		}
		if d >= rc.Radius+c.Radius || rc.Radius+d <= c.Radius {
			continue // boundary circles don't interact
		}
		// Law of cosines: half-angle of the covered arc around the
		// direction from c's center to rc's center.
		cosPhi := (d*d + c.Radius*c.Radius - rc.Radius*rc.Radius) / (2 * d * c.Radius)
		if cosPhi > 1 {
			cosPhi = 1
		} else if cosPhi < -1 {
			cosPhi = -1
		}
		phi := math.Acos(cosPhi)
		theta := math.Atan2(rc.Center.Y-c.Center.Y, rc.Center.X-c.Center.X)
		lo, hi := theta-phi, theta+phi
		// Normalize into [0, 2π) and split wrap-around arcs.
		lo = math.Mod(lo+4*math.Pi, 2*math.Pi)
		hi = math.Mod(hi+4*math.Pi, 2*math.Pi)
		if lo <= hi {
			add(lo, hi)
		} else {
			add(lo, 2*math.Pi)
			add(0, hi)
		}
	}
	if len(arcs) == 0 {
		return false
	}
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].lo < arcs[j].lo })
	const angEps = 1e-12
	if arcs[0].lo > angEps {
		return false
	}
	reach := arcs[0].hi
	for _, a := range arcs[1:] {
		if a.lo > reach+angEps {
			return false
		}
		if a.hi > reach {
			reach = a.hi
		}
	}
	return reach >= 2*math.Pi-angEps
}

// circleIntersections returns the intersection points of two circle
// boundaries and how many exist (0, 1 or 2).
func circleIntersections(a, b Circle) (Point, Point, int) {
	d := a.Center.Dist(b.Center)
	if d <= Eps || d > a.Radius+b.Radius || d < math.Abs(a.Radius-b.Radius) {
		return Point{}, Point{}, 0
	}
	// Distance from a's center to the chord midpoint.
	x := (d*d + a.Radius*a.Radius - b.Radius*b.Radius) / (2 * d)
	h2 := a.Radius*a.Radius - x*x
	dir := b.Center.Sub(a.Center).Scale(1 / d)
	mid := a.Center.Add(dir.Scale(x))
	if h2 <= Eps*Eps {
		return mid, Point{}, 1
	}
	h := math.Sqrt(h2)
	perp := Point{-dir.Y, dir.X}
	return mid.Add(perp.Scale(h)), mid.Sub(perp.Scale(h)), 2
}

// CoversCirclePolygonized is the paper-faithful variant of CoversCircle
// (§3.2.2, DESIGN.md substitution D1): the candidate disc is
// over-approximated by its circumscribed polygon, each region disc is
// under-approximated by its inscribed polygon, and coverage is decided by
// subtracting region polygons from the candidate until either nothing
// remains (covered) or residual area survives (not covered). The test is
// conservative for any polygon fidelity, so every "certain" verdict remains
// sound.
func (r *Region) CoversCirclePolygonized(c Circle) bool {
	if c.Radius <= Eps {
		return r.Contains(c.Center)
	}
	for _, rc := range r.circles {
		if rc.ContainsCircle(c) {
			return true
		}
	}
	if !r.Bounds().ContainsRect(c.Bounds()) {
		return false
	}
	var overlapping []Circle
	for _, rc := range r.circles {
		if rc.Radius > Eps && rc.Intersects(c) {
			overlapping = append(overlapping, rc)
		}
	}
	if len(overlapping) == 0 {
		return false
	}

	candidate := c.CircumscribedPolygon(r.vertices)
	// Slivers below this area are treated as numerical noise. It scales with
	// the candidate size so the predicate is unit-independent.
	areaEps := math.Max(c.Area()*1e-9, 1e-12)

	residual := []ConvexPolygon{candidate}
	// Piece-count guard: the residual decomposition can in principle grow
	// multiplicatively with many overlapping circles. Beyond the cap the
	// test answers false, which is the conservative (sound) direction.
	const maxPieces = 4096
	for _, rc := range overlapping {
		cover := rc.InscribedPolygon(r.vertices)
		next := residual[:0:0]
		for _, piece := range residual {
			next = append(next, piece.SubtractConvex(cover, areaEps)...)
		}
		residual = next
		if len(residual) == 0 {
			return true
		}
		if len(residual) > maxPieces {
			return false
		}
	}
	var left float64
	for _, piece := range residual {
		left += piece.Area()
	}
	return left <= math.Max(c.Area()*1e-7, 1e-10)
}

// MaxCoveredRadius returns the largest radius rad such that the disc centered
// at p with radius rad is covered by the region, computed by binary search
// over CoversCircle. It returns 0 when even the point p is uncovered. hi
// bounds the search from above.
func (r *Region) MaxCoveredRadius(p Point, hi float64) float64 {
	if !r.Contains(p) || hi <= 0 {
		return 0
	}
	lo := 0.0
	if r.CoversCircle(NewCircle(p, hi)) {
		return hi
	}
	for i := 0; i < 40 && hi-lo > Eps*(1+hi); i++ {
		mid := (lo + hi) / 2
		if r.CoversCircle(NewCircle(p, mid)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
