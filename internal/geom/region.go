package geom

import (
	"math"
	"sort"
)

// DefaultPolygonVertices is the number of vertices used when polygonizing
// circles for region-coverage tests. 32 keeps the conservative approximation
// error of the inscribed polygon below 0.5 % of the radius.
const DefaultPolygonVertices = 32

// Region is the union of a set of discs. In the multi-peer verification step
// of the paper (kNN_multiple, §3.2.2) the certain region R_c is the union of
// every reachable peer's certain circle; a candidate point of interest n_i is
// a certain nearest neighbor of the query point Q exactly when the circle
// centered at Q through n_i is fully covered by R_c (Lemma 3.8).
type Region struct {
	circles    []Circle
	vertices   int         // polygonization fidelity
	overlapBuf []Circle    // scratch, reused across CoversCircle calls
	arcBuf     []regionArc // scratch, reused across MaxCoveredRadius calls
}

// NewRegion returns the union of the given circles. Zero-radius circles are
// kept (they can still cover degenerate candidates). The polygonization
// fidelity defaults to DefaultPolygonVertices.
func NewRegion(circles ...Circle) *Region {
	cs := make([]Circle, len(circles))
	copy(cs, circles)
	return &Region{circles: cs, vertices: DefaultPolygonVertices}
}

// SetPolygonVertices overrides the number of vertices used to polygonize
// circles during coverage tests. n must be at least 3.
func (r *Region) SetPolygonVertices(n int) {
	if n < 3 {
		panic("geom: region polygonization needs >= 3 vertices")
	}
	r.vertices = n
}

// Add extends the region with another disc.
func (r *Region) Add(c Circle) { r.circles = append(r.circles, c) }

// Reset clears the region's discs in place, retaining allocated capacity and
// the polygonization fidelity, so a scratch Region can be rebuilt across
// queries without heap churn.
func (r *Region) Reset() { r.circles = r.circles[:0] }

// Circles returns a copy of the discs whose union forms the region.
func (r *Region) Circles() []Circle {
	out := make([]Circle, len(r.circles))
	copy(out, r.circles)
	return out
}

// IsEmpty reports whether the region contains no disc with positive radius
// and no point circle.
func (r *Region) IsEmpty() bool { return len(r.circles) == 0 }

// Contains reports whether p lies in the union.
func (r *Region) Contains(p Point) bool {
	for _, c := range r.circles {
		if c.Contains(p) {
			return true
		}
	}
	return false
}

// Bounds returns the MBR of the union.
func (r *Region) Bounds() Rect {
	out := EmptyRect()
	for _, c := range r.circles {
		out = out.Union(c.Bounds())
	}
	return out
}

// CoversCircle reports whether the disc c is entirely contained in the
// region, using an exact arc-arrangement argument:
//
//  1. the boundary circle of c must be fully covered — decided by merging,
//     per region disc, the angular interval of c's boundary it covers; and
//  2. no "hole" of the union may open inside c — a bounded uncovered pocket
//     of a disc union has corners at intersection points of two disc
//     boundaries, so every such intersection point lying strictly inside c
//     must be strictly interior to some third disc.
//
// Both conditions together are necessary and sufficient; the epsilon
// handling errs toward "not covered", keeping Lemma 3.8 verification sound.
// CoversCirclePolygonized implements the paper's polygonization + MapOverlay
// construction of §3.2.2 and agrees with this method up to its (also
// conservative) approximation error; tests cross-validate the two.
func (r *Region) CoversCircle(c Circle) bool {
	if c.Radius <= Eps {
		return r.Contains(c.Center)
	}
	// Fast path: a single region disc covers the candidate outright.
	for _, rc := range r.circles {
		if rc.ContainsCircle(c) {
			return true
		}
	}
	// Quick reject: coverage requires the candidate's bounding box to fit
	// inside the region's bounding box.
	if !r.Bounds().ContainsRect(c.Bounds()) {
		return false
	}
	// Only region discs that intersect the candidate can contribute.
	overlapping := r.overlapBuf[:0]
	for _, rc := range r.circles {
		if rc.Radius > Eps && rc.Intersects(c) {
			overlapping = append(overlapping, rc)
		}
	}
	r.overlapBuf = overlapping
	if len(overlapping) == 0 {
		return false
	}

	// Condition 1: angular coverage of c's boundary.
	if !boundaryCovered(c, overlapping) {
		return false
	}
	// Condition 2: every circle-circle intersection vertex strictly inside
	// the candidate must be strictly interior to a third disc.
	for i := 0; i < len(overlapping); i++ {
		for j := i + 1; j < len(overlapping); j++ {
			p1, p2, n := circleIntersections(overlapping[i], overlapping[j])
			pts := [2]Point{p1, p2}
			for _, p := range pts[:n] {
				if c.Center.Dist(p) >= c.Radius-Eps {
					continue // on or outside the candidate boundary
				}
				coveredByThird := false
				for k := range overlapping {
					if k == i || k == j {
						continue
					}
					rc := overlapping[k]
					if rc.Center.Dist(p) < rc.Radius-Eps {
						coveredByThird = true
						break
					}
				}
				if !coveredByThird {
					return false
				}
			}
		}
	}
	return true
}

// boundaryCovered reports whether the boundary circle of c is fully covered
// by the union of the given discs, by exact angular-interval merging.
func boundaryCovered(c Circle, discs []Circle) bool {
	type arc struct{ lo, hi float64 }
	var arcs []arc
	add := func(lo, hi float64) { arcs = append(arcs, arc{lo, hi}) }
	for _, rc := range discs {
		d := c.Center.Dist(rc.Center)
		if d+c.Radius <= rc.Radius+Eps {
			return true // this disc alone covers the whole boundary
		}
		if d >= rc.Radius+c.Radius || rc.Radius+d <= c.Radius {
			continue // boundary circles don't interact
		}
		// Law of cosines: half-angle of the covered arc around the
		// direction from c's center to rc's center.
		cosPhi := (d*d + c.Radius*c.Radius - rc.Radius*rc.Radius) / (2 * d * c.Radius)
		if cosPhi > 1 {
			cosPhi = 1
		} else if cosPhi < -1 {
			cosPhi = -1
		}
		phi := math.Acos(cosPhi)
		theta := math.Atan2(rc.Center.Y-c.Center.Y, rc.Center.X-c.Center.X)
		lo, hi := theta-phi, theta+phi
		// Normalize into [0, 2π) and split wrap-around arcs.
		lo = math.Mod(lo+4*math.Pi, 2*math.Pi)
		hi = math.Mod(hi+4*math.Pi, 2*math.Pi)
		if lo <= hi {
			add(lo, hi)
		} else {
			add(lo, 2*math.Pi)
			add(0, hi)
		}
	}
	if len(arcs) == 0 {
		return false
	}
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].lo < arcs[j].lo })
	const angEps = 1e-12
	if arcs[0].lo > angEps {
		return false
	}
	reach := arcs[0].hi
	for _, a := range arcs[1:] {
		if a.lo > reach+angEps {
			return false
		}
		if a.hi > reach {
			reach = a.hi
		}
	}
	return reach >= 2*math.Pi-angEps
}

// circleIntersections returns the intersection points of two circle
// boundaries and how many exist (0, 1 or 2).
func circleIntersections(a, b Circle) (Point, Point, int) {
	d := a.Center.Dist(b.Center)
	if d <= Eps || d > a.Radius+b.Radius || d < math.Abs(a.Radius-b.Radius) {
		return Point{}, Point{}, 0
	}
	// Distance from a's center to the chord midpoint.
	x := (d*d + a.Radius*a.Radius - b.Radius*b.Radius) / (2 * d)
	h2 := a.Radius*a.Radius - x*x
	dir := b.Center.Sub(a.Center).Scale(1 / d)
	mid := a.Center.Add(dir.Scale(x))
	if h2 <= Eps*Eps {
		return mid, Point{}, 1
	}
	h := math.Sqrt(h2)
	perp := Point{-dir.Y, dir.X}
	return mid.Add(perp.Scale(h)), mid.Sub(perp.Scale(h)), 2
}

// CoversCirclePolygonized is the paper-faithful variant of CoversCircle
// (§3.2.2, DESIGN.md substitution D1): the candidate disc is
// over-approximated by its circumscribed polygon, each region disc is
// under-approximated by its inscribed polygon, and coverage is decided by
// subtracting region polygons from the candidate until either nothing
// remains (covered) or residual area survives (not covered). The test is
// conservative for any polygon fidelity, so every "certain" verdict remains
// sound.
func (r *Region) CoversCirclePolygonized(c Circle) bool {
	if c.Radius <= Eps {
		return r.Contains(c.Center)
	}
	for _, rc := range r.circles {
		if rc.ContainsCircle(c) {
			return true
		}
	}
	if !r.Bounds().ContainsRect(c.Bounds()) {
		return false
	}
	var overlapping []Circle
	for _, rc := range r.circles {
		if rc.Radius > Eps && rc.Intersects(c) {
			overlapping = append(overlapping, rc)
		}
	}
	if len(overlapping) == 0 {
		return false
	}

	candidate := c.CircumscribedPolygon(r.vertices)
	// Slivers below this area are treated as numerical noise. It scales with
	// the candidate size so the predicate is unit-independent.
	areaEps := math.Max(c.Area()*1e-9, 1e-12)

	residual := []ConvexPolygon{candidate}
	// Piece-count guard: the residual decomposition can in principle grow
	// multiplicatively with many overlapping circles. Beyond the cap the
	// test answers false, which is the conservative (sound) direction.
	const maxPieces = 4096
	for _, rc := range overlapping {
		cover := rc.InscribedPolygon(r.vertices)
		next := residual[:0:0]
		for _, piece := range residual {
			next = append(next, piece.SubtractConvex(cover, areaEps)...)
		}
		residual = next
		if len(residual) == 0 {
			return true
		}
		if len(residual) > maxPieces {
			return false
		}
	}
	var left float64
	for _, piece := range residual {
		left += piece.Area()
	}
	return left <= math.Max(c.Area()*1e-7, 1e-10)
}

// regionArc is an angular interval [lo, hi] ⊆ [0, 2π] of one disc's boundary
// covered by another disc; scratch storage for MaxCoveredRadius.
type regionArc struct{ lo, hi float64 }

// MaxCoveredRadius returns the largest radius rad (capped at hi) such that the
// disc centered at p with radius rad is covered by the region — the monotone
// coverage threshold ρ_max(p). Coverage at a fixed center is monotone in the
// radius, so CoversCircle(NewCircle(p, rad)) holds exactly for rad ≤ ρ_max (up
// to the shared Eps conventions), which lets a verifier replace per-candidate
// coverage tests with one threshold computation and a distance comparison.
// It returns 0 when p itself is uncovered, or covered only by zero-radius
// point circles (which contribute no interior).
//
// The threshold is computed exactly in one pass over the disc arrangement:
// ρ_max is the distance from p to the nearest *exposed* boundary point of the
// union — a point on some disc's boundary circle that is not strictly interior
// to any other disc. For each disc, the angular intervals of its boundary
// covered by the other discs are merged (the same law-of-cosines arcs
// CoversCircle uses); the uncovered gaps yield the candidate distances: the
// radial projection of p when its direction falls inside a gap, or the gap
// endpoints otherwise. Gap endpoints are exactly the arrangement's
// intersection vertices, so interior holes of the union need no separate
// treatment — their corners are gap endpoints too.
func (r *Region) MaxCoveredRadius(p Point, hi float64) float64 {
	if hi <= 0 {
		return 0
	}
	coveredPositive := false
	for _, c := range r.circles {
		if c.Radius > Eps && c.Contains(p) {
			coveredPositive = true
			break
		}
	}
	if !coveredPositive {
		return 0
	}
	best := hi
	for i := range r.circles {
		ci := r.circles[i]
		if ci.Radius <= Eps {
			continue // point circles have no boundary arcs and no interior
		}
		d := p.Dist(ci.Center)
		if near := math.Abs(d - ci.Radius); near >= best {
			continue // every point of this boundary is at least near away
		}
		if dist, exposed := r.nearestExposedOnCircle(p, i, d); exposed && dist < best {
			best = dist
		}
	}
	return best
}

// nearestExposedOnCircle returns the minimum distance from p to an exposed
// point of circle i's boundary; d is the precomputed distance from p to that
// circle's center. exposed is false when the other discs cover the boundary
// entirely.
func (r *Region) nearestExposedOnCircle(p Point, i int, d float64) (float64, bool) {
	ci := r.circles[i]
	arcs := r.arcBuf[:0]
	for j := range r.circles {
		if j == i {
			continue
		}
		cj := r.circles[j]
		if cj.Radius <= Eps {
			continue
		}
		D := ci.Center.Dist(cj.Center)
		if D+ci.Radius <= cj.Radius+Eps {
			// cj covers this whole boundary. Mutually-covering discs
			// (identical up to Eps) tie-break by index so exactly one of them
			// keeps the shared boundary — otherwise duplicates would erase
			// each other and the boundary would vanish from the arrangement.
			if D+cj.Radius <= ci.Radius+Eps && j > i {
				continue
			}
			r.arcBuf = arcs
			return 0, false
		}
		if D >= cj.Radius+ci.Radius || cj.Radius+D <= ci.Radius {
			continue // boundary circles don't interact
		}
		cosPhi := (D*D + ci.Radius*ci.Radius - cj.Radius*cj.Radius) / (2 * D * ci.Radius)
		if cosPhi > 1 {
			cosPhi = 1
		} else if cosPhi < -1 {
			cosPhi = -1
		}
		phi := math.Acos(cosPhi)
		theta := math.Atan2(cj.Center.Y-ci.Center.Y, cj.Center.X-ci.Center.X)
		lo, hiAng := theta-phi, theta+phi
		// Normalize into [0, 2π) and split wrap-around arcs.
		lo = math.Mod(lo+4*math.Pi, 2*math.Pi)
		hiAng = math.Mod(hiAng+4*math.Pi, 2*math.Pi)
		if lo <= hiAng {
			arcs = append(arcs, regionArc{lo, hiAng})
		} else {
			arcs = append(arcs, regionArc{lo, 2 * math.Pi}, regionArc{0, hiAng})
		}
	}
	r.arcBuf = arcs
	// Angle of p as seen from the circle's center (arbitrary when p is at the
	// center, where the distance below is R for every gap angle anyway).
	thetaP := math.Atan2(p.Y-ci.Center.Y, p.X-ci.Center.X)
	if thetaP < 0 {
		thetaP += 2 * math.Pi
	}
	if len(arcs) == 0 {
		return math.Abs(d - ci.Radius), true // whole boundary exposed
	}
	// Insertion sort: arc counts are small (≤ 2·discs) and sorting in place
	// keeps the hot path allocation-free.
	for k := 1; k < len(arcs); k++ {
		a := arcs[k]
		m := k - 1
		for m >= 0 && arcs[m].lo > a.lo {
			arcs[m+1] = arcs[m]
			m--
		}
		arcs[m+1] = a
	}
	const angEps = 1e-12
	minDist := math.Inf(1)
	gap := func(gLo, gHi float64) {
		if gHi-gLo <= angEps {
			return
		}
		var ang float64
		if thetaP >= gLo && thetaP <= gHi {
			ang = 0
		} else {
			ang = math.Min(circAngleDiff(thetaP, gLo), circAngleDiff(thetaP, gHi))
		}
		// Law of cosines: distance from p to the boundary point at angular
		// offset ang from p's direction. Distance grows with the circular
		// offset, so the nearest gap point is p's radial projection when it
		// falls inside the gap and the circularly nearest endpoint otherwise.
		v := d*d + ci.Radius*ci.Radius - 2*d*ci.Radius*math.Cos(ang)
		if v < 0 {
			v = 0
		}
		if dist := math.Sqrt(v); dist < minDist {
			minDist = dist
		}
	}
	if arcs[0].lo > angEps {
		gap(0, arcs[0].lo)
	}
	reach := arcs[0].hi
	for _, a := range arcs[1:] {
		if a.lo > reach+angEps {
			gap(reach, a.lo)
		}
		if a.hi > reach {
			reach = a.hi
		}
	}
	if reach < 2*math.Pi-angEps {
		gap(reach, 2*math.Pi)
	}
	if math.IsInf(minDist, 1) {
		return 0, false
	}
	return minDist, true
}

// circAngleDiff returns the circular distance between two angles in [0, 2π).
func circAngleDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}
