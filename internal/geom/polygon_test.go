package geom

import (
	"math"
	"math/rand"
	"testing"
)

func square(lo, hi float64) ConvexPolygon {
	p, err := NewConvexPolygon([]Point{Pt(lo, lo), Pt(hi, lo), Pt(hi, hi), Pt(lo, hi)})
	if err != nil {
		panic(err)
	}
	return p
}

func TestNewConvexPolygonValidation(t *testing.T) {
	if _, err := NewConvexPolygon([]Point{Pt(0, 0), Pt(1, 0)}); err == nil {
		t.Error("two vertices should be rejected")
	}
	// Non-convex "arrow" shape.
	_, err := NewConvexPolygon([]Point{Pt(0, 0), Pt(4, 0), Pt(2, 1), Pt(4, 4)})
	if err == nil {
		t.Error("non-convex polygon should be rejected")
	}
	// Clockwise input must be re-oriented to CCW.
	p, err := NewConvexPolygon([]Point{Pt(0, 0), Pt(0, 1), Pt(1, 1), Pt(1, 0)})
	if err != nil {
		t.Fatalf("clockwise square rejected: %v", err)
	}
	if p.Area() <= 0 {
		t.Errorf("area after reorientation should be positive, got %v", p.Area())
	}
}

func TestPolygonAreaCentroidBounds(t *testing.T) {
	p := square(0, 10)
	if p.Area() != 100 {
		t.Errorf("Area = %v", p.Area())
	}
	if got := p.Centroid(); !got.Eq(Pt(5, 5)) {
		t.Errorf("Centroid = %v", got)
	}
	if got := p.Bounds(); got != NewRect(Pt(0, 0), Pt(10, 10)) {
		t.Errorf("Bounds = %v", got)
	}
	tri, _ := NewConvexPolygon([]Point{Pt(0, 0), Pt(6, 0), Pt(0, 6)})
	if tri.Area() != 18 {
		t.Errorf("triangle area = %v", tri.Area())
	}
	if got := tri.Centroid(); !got.Eq(Pt(2, 2)) {
		t.Errorf("triangle centroid = %v", got)
	}
}

func TestPolygonContains(t *testing.T) {
	p := square(0, 10)
	for _, q := range []Point{Pt(5, 5), Pt(0, 0), Pt(10, 10), Pt(0, 5)} {
		if !p.Contains(q) {
			t.Errorf("square should contain %v", q)
		}
	}
	for _, q := range []Point{Pt(-0.01, 5), Pt(5, 10.01), Pt(20, 20)} {
		if p.Contains(q) {
			t.Errorf("square should not contain %v", q)
		}
	}
}

func TestClipHalfPlane(t *testing.T) {
	p := square(0, 10)
	// Keep x <= 4.
	h := HalfPlane{Normal: Pt(1, 0), Offset: 4}
	got := p.ClipHalfPlane(h)
	if math.Abs(got.Area()-40) > 1e-9 {
		t.Errorf("clipped area = %v, want 40", got.Area())
	}
	// Half-plane that misses the polygon entirely.
	miss := HalfPlane{Normal: Pt(1, 0), Offset: -5}
	if !p.ClipHalfPlane(miss).IsEmpty() {
		t.Error("clip by disjoint half-plane should be empty")
	}
	// Half-plane containing everything.
	all := HalfPlane{Normal: Pt(1, 0), Offset: 100}
	if a := p.ClipHalfPlane(all).Area(); math.Abs(a-100) > 1e-9 {
		t.Errorf("clip by covering half-plane changed area: %v", a)
	}
	// Diagonal cut of the unit square through the center.
	diag := HalfPlane{Normal: Pt(1, 1), Offset: 10}
	if a := p.ClipHalfPlane(diag).Area(); math.Abs(a-50) > 1e-9 {
		t.Errorf("diagonal clip area = %v, want 50", a)
	}
}

// Clipping can never grow a polygon, and the result stays inside both the
// original polygon and the half-plane.
func TestClipHalfPlaneShrinksOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 400; i++ {
		c := NewCircle(Pt(rng.Float64()*40, rng.Float64()*40), rng.Float64()*10+0.1)
		p := c.InscribedPolygon(3 + rng.Intn(12))
		n := Pt(rng.Float64()*2-1, rng.Float64()*2-1)
		if n.Norm() < 1e-3 {
			continue
		}
		h := HalfPlane{Normal: n, Offset: n.Dot(Pt(rng.Float64()*40, rng.Float64()*40))}
		q := p.ClipHalfPlane(h)
		if q.Area() > p.Area()+1e-7 {
			t.Fatalf("clip grew area: %v -> %v", p.Area(), q.Area())
		}
		for _, v := range q.Vertices() {
			if !h.Contains(v) {
				t.Fatalf("clipped vertex %v outside half-plane", v)
			}
			if !p.Contains(v) {
				t.Fatalf("clipped vertex %v outside original polygon", v)
			}
		}
	}
}

func TestEdgeHalfPlaneOrientation(t *testing.T) {
	// For a CCW square the interior must be inside every edge half-plane.
	p := square(0, 10)
	inner := Pt(5, 5)
	for _, h := range p.HalfPlanes() {
		if !h.Contains(inner) {
			t.Fatal("interior point outside edge half-plane: wrong orientation")
		}
		if h.Complement().Contains(Pt(5, 5-1e-3)) && !h.Contains(Pt(5, 5-1e-3)) {
			t.Fatal("strict interior point must not be in the complement")
		}
	}
	if p.ClipHalfPlane(p.HalfPlanes()[0]).IsEmpty() {
		t.Fatal("clip by own half-plane should keep the polygon")
	}
}

func TestIntersectConvex(t *testing.T) {
	a := square(0, 10)
	b := square(5, 15)
	got := a.IntersectConvex(b)
	if math.Abs(got.Area()-25) > 1e-9 {
		t.Errorf("intersection area = %v, want 25", got.Area())
	}
	if !a.IntersectConvex(square(20, 30)).IsEmpty() {
		t.Error("disjoint intersection should be empty")
	}
	self := a.IntersectConvex(a)
	if math.Abs(self.Area()-100) > 1e-7 {
		t.Errorf("self intersection area = %v", self.Area())
	}
}

func TestSubtractConvexAreas(t *testing.T) {
	a := square(0, 10)
	tests := []struct {
		name string
		b    ConvexPolygon
		want float64
	}{
		{"disjoint", square(20, 30), 100},
		{"self", a, 0},
		{"covering", square(-5, 15), 0},
		{"corner overlap", square(5, 15), 75},
		{"hole in middle", square(4, 6), 96},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pieces := a.SubtractConvex(tc.b, 0)
			var total float64
			for _, pc := range pieces {
				total += pc.Area()
			}
			if math.Abs(total-tc.want) > 1e-6 {
				t.Errorf("residual area = %v, want %v", total, tc.want)
			}
		})
	}
}

// The difference decomposition must produce pieces that are disjoint from the
// subtrahend and contained in the minuend, and whose total area equals
// area(p) - area(p ∩ q).
func TestSubtractConvexProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 300; i++ {
		cp := NewCircle(Pt(rng.Float64()*20, rng.Float64()*20), rng.Float64()*8+0.5)
		cq := NewCircle(Pt(rng.Float64()*20, rng.Float64()*20), rng.Float64()*8+0.5)
		p := cp.InscribedPolygon(3 + rng.Intn(10))
		q := cq.InscribedPolygon(3 + rng.Intn(10))
		pieces := p.SubtractConvex(q, 0)
		var total float64
		for _, piece := range pieces {
			total += piece.Area()
			centroid := piece.Centroid()
			if !p.Contains(centroid) {
				t.Fatalf("piece centroid %v escapes minuend", centroid)
			}
			if q.Contains(centroid) && q.ClipHalfPlane(HalfPlane{}).IsEmpty() == false {
				// The centroid of a piece must lie outside the open
				// subtrahend; boundary contact is tolerated via area check
				// below.
				inter := piece.IntersectConvex(q)
				if inter.Area() > 1e-6 {
					t.Fatalf("piece overlaps subtrahend with area %v", inter.Area())
				}
			}
		}
		want := p.Area() - p.IntersectConvex(q).Area()
		if math.Abs(total-want) > 1e-5*(1+want) {
			t.Fatalf("residual area %v, want %v", total, want)
		}
	}
}

func TestCentroidInsidePolygon(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		c := NewCircle(Pt(rng.Float64()*50, rng.Float64()*50), rng.Float64()*10+0.1)
		p := c.InscribedPolygon(3 + rng.Intn(20))
		if !p.Contains(p.Centroid()) {
			t.Fatalf("centroid outside convex polygon %v", p)
		}
	}
}

func TestVerticesReturnsCopy(t *testing.T) {
	p := square(0, 1)
	v := p.Vertices()
	v[0] = Pt(99, 99)
	if p.Vertices()[0].Eq(Pt(99, 99)) {
		t.Error("Vertices must return a defensive copy")
	}
}
