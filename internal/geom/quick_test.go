package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func boundedPt(x, y float64) Point {
	return Pt(clampCoord(x), clampCoord(y))
}

// Rect algebra properties: union is the smallest covering rectangle,
// intersection is contained in both operands, and MinDist/MaxDist respect
// containment ordering.
func TestRectAlgebraQuick(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy, px, py float64) bool {
		r := NewRect(boundedPt(ax, ay), boundedPt(bx, by))
		s := NewRect(boundedPt(cx, cy), boundedPt(dx, dy))
		p := boundedPt(px, py)

		u := r.Union(s)
		if !u.ContainsRect(r) || !u.ContainsRect(s) {
			return false
		}
		i := r.Intersect(s)
		if !i.IsEmpty() && (!r.ContainsRect(i) || !s.ContainsRect(i)) {
			return false
		}
		// A point in the intersection is in both.
		if !i.IsEmpty() && i.Contains(p) && (!r.Contains(p) || !s.Contains(p)) {
			return false
		}
		// Union can only reduce MinDist and raise MaxDist.
		if u.MinDist(p) > r.MinDist(p)+1e-9 {
			return false
		}
		if u.MaxDist(p)+1e-9 < r.MaxDist(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Circle containment transitivity: a ⊇ b and b ⊇ c imply a ⊇ c.
func TestCircleContainmentTransitiveQuick(t *testing.T) {
	f := func(ax, ay, ar, bx, by, br, cx, cy, cr float64) bool {
		a := NewCircle(boundedPt(ax, ay), math.Abs(clampCoord(ar)))
		b := NewCircle(boundedPt(bx, by), math.Abs(clampCoord(br)))
		c := NewCircle(boundedPt(cx, cy), math.Abs(clampCoord(cr)))
		if a.ContainsCircle(b) && b.ContainsCircle(c) {
			// Allow epsilon slack accumulation over two containments.
			return a.Center.Dist(c.Center)+c.Radius <= a.Radius+3*Eps
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Region coverage is monotone: adding circles never turns a covered disc
// uncovered, and shrinking a covered disc keeps it covered.
func TestRegionMonotoneQuick(t *testing.T) {
	f := func(cx, cy, cr, ex, ey, er, qx, qy, qr, shrink float64) bool {
		base := NewCircle(boundedPt(cx, cy), math.Abs(clampCoord(cr)))
		extra := NewCircle(boundedPt(ex, ey), math.Abs(clampCoord(er)))
		cand := NewCircle(boundedPt(qx, qy), math.Abs(clampCoord(qr)))
		r1 := NewRegion(base)
		if !r1.CoversCircle(cand) {
			return true
		}
		// Adding a circle must preserve coverage.
		r2 := NewRegion(base, extra)
		if !r2.CoversCircle(cand) {
			return false
		}
		// A concentric smaller disc stays covered.
		f := math.Abs(math.Mod(shrink, 1))
		smaller := NewCircle(cand.Center, cand.Radius*f)
		return r1.CoversCircle(smaller)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Segment intersection commutes with endpoint swaps.
func TestSegmentsIntersectSwapQuick(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		a, b := boundedPt(ax, ay), boundedPt(bx, by)
		c, d := boundedPt(cx, cy), boundedPt(dx, dy)
		_, r1 := SegmentsIntersect(a, b, c, d)
		_, r2 := SegmentsIntersect(b, a, c, d)
		_, r3 := SegmentsIntersect(a, b, d, c)
		return r1 == r2 && r2 == r3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
