package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Pt(5, 1), Pt(2, 7))
	if r.Min != Pt(2, 1) || r.Max != Pt(5, 7) {
		t.Errorf("NewRect did not normalize corners: %v", r)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 || e.Margin() != 0 {
		t.Error("empty rect should have zero measures")
	}
	if e.Contains(Pt(0, 0)) {
		t.Error("empty rect should contain nothing")
	}
	r := NewRect(Pt(0, 0), Pt(1, 1))
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty rect should intersect nothing")
	}
	if got := e.Union(r); got != r {
		t.Errorf("union with empty should be identity, got %v", got)
	}
	if got := r.Union(e); got != r {
		t.Errorf("union with empty should be identity, got %v", got)
	}
	if !r.ContainsRect(e) {
		t.Error("every rect contains the empty rect")
	}
}

func TestRectMeasures(t *testing.T) {
	r := NewRect(Pt(1, 2), Pt(4, 8))
	if r.Width() != 3 || r.Height() != 6 {
		t.Errorf("extents = %v x %v", r.Width(), r.Height())
	}
	if r.Area() != 18 {
		t.Errorf("Area = %v", r.Area())
	}
	if r.Margin() != 9 {
		t.Errorf("Margin = %v", r.Margin())
	}
	if r.Center() != Pt(2.5, 5) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestRectContainsAndIntersects(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	for _, p := range []Point{Pt(0, 0), Pt(10, 10), Pt(5, 5), Pt(0, 10)} {
		if !r.Contains(p) {
			t.Errorf("r should contain boundary/interior point %v", p)
		}
	}
	for _, p := range []Point{Pt(-0.001, 5), Pt(5, 10.001), Pt(11, 11)} {
		if r.Contains(p) {
			t.Errorf("r should not contain %v", p)
		}
	}
	cases := []struct {
		s    Rect
		want bool
	}{
		{NewRect(Pt(5, 5), Pt(15, 15)), true},
		{NewRect(Pt(10, 10), Pt(20, 20)), true}, // corner touch
		{NewRect(Pt(11, 11), Pt(20, 20)), false},
		{NewRect(Pt(2, 2), Pt(3, 3)), true}, // nested
		{NewRect(Pt(-5, 3), Pt(-1, 4)), false},
	}
	for _, tc := range cases {
		if got := r.Intersects(tc.s); got != tc.want {
			t.Errorf("Intersects(%v) = %v, want %v", tc.s, got, tc.want)
		}
		if got := tc.s.Intersects(r); got != tc.want {
			t.Errorf("Intersects not symmetric for %v", tc.s)
		}
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(10, 10))
	b := NewRect(Pt(5, 5), Pt(15, 20))
	got := a.Intersect(b)
	want := NewRect(Pt(5, 5), Pt(10, 10))
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if ov := a.OverlapArea(b); ov != 25 {
		t.Errorf("OverlapArea = %v, want 25", ov)
	}
	u := a.Union(b)
	if u != NewRect(Pt(0, 0), Pt(15, 20)) {
		t.Errorf("Union = %v", u)
	}
	if a.Intersect(NewRect(Pt(20, 20), Pt(30, 30))).IsEmpty() != true {
		t.Error("disjoint intersect should be empty")
	}
}

func TestEnlargement(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(10, 10))
	if e := a.Enlargement(NewRect(Pt(2, 2), Pt(5, 5))); e != 0 {
		t.Errorf("contained rect should need 0 enlargement, got %v", e)
	}
	if e := a.Enlargement(NewRect(Pt(0, 0), Pt(20, 10))); e != 100 {
		t.Errorf("Enlargement = %v, want 100", e)
	}
}

func TestMinDist(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 5), 0},            // inside
		{Pt(0, 0), 0},            // corner
		{Pt(-3, 5), 3},           // left
		{Pt(5, 14), 4},           // above
		{Pt(13, 14), 5},          // diagonal 3-4-5
		{Pt(-3, -4), 5},          // other diagonal
		{Pt(10, 10.5), 0.5},      // just above corner
		{Pt(10.0001, 5), 0.0001}, // just right
	}
	for _, tc := range tests {
		if got := r.MinDist(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("MinDist(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestMaxDist(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(0, 0), math.Sqrt(200)}, // corner: farthest is opposite corner
		{Pt(5, 5), math.Sqrt(50)},  // center
		{Pt(-10, 5), math.Hypot(20, 5)},
		{Pt(20, 20), math.Hypot(20, 20)},
	}
	for _, tc := range tests {
		if got := r.MaxDist(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("MaxDist(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestMinMaxDist(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	// Query at the center: nearest face is 5 away; the guaranteed object on
	// that face may sit at the far end of the other axis: sqrt(25+25).
	if got, want := r.MinMaxDist(Pt(5, 5)), math.Sqrt(50); math.Abs(got-want) > 1e-12 {
		t.Errorf("center MinMaxDist = %v, want %v", got, want)
	}
	// Query far left: closer x face is x=0; object may be at y=10:
	// sqrt(100 + 100) via x; via y: closer y face 0 with far x face 10:
	// sqrt(400+100). min is via x.
	if got, want := r.MinMaxDist(Pt(-10, 0)), math.Hypot(10, 10); math.Abs(got-want) > 1e-12 {
		t.Errorf("left MinMaxDist = %v, want %v", got, want)
	}
}

// MINMAXDIST's defining guarantee: for any MBR tightly bounding a point set
// (every face touched), at least one point lies within MinMaxDist of any
// query. And MINDIST <= MINMAXDIST <= MAXDIST always.
func TestMinMaxDistGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		// A point set whose MBR touches all faces by construction.
		n := 4 + rng.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		mbr := EmptyRect()
		for _, p := range pts {
			mbr = mbr.Union(RectFromPoint(p))
		}
		q := Pt(rng.Float64()*300-100, rng.Float64()*300-100)
		mmd := mbr.MinMaxDist(q)
		if mbr.MinDist(q) > mmd+1e-9 || mmd > mbr.MaxDist(q)+1e-9 {
			t.Fatalf("ordering violated: min %v mm %v max %v",
				mbr.MinDist(q), mmd, mbr.MaxDist(q))
		}
		nearest := math.Inf(1)
		for _, p := range pts {
			if d := q.Dist(p); d < nearest {
				nearest = d
			}
		}
		if nearest > mmd+1e-9 {
			t.Fatalf("guarantee violated: nearest object %v beyond MinMaxDist %v", nearest, mmd)
		}
	}
}

// MinDist and MaxDist must bracket the distance to every point inside the
// rectangle — the invariant the kNN pruning rules depend on.
func TestMinMaxDistBracketInterior(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		r := NewRect(
			Pt(rng.Float64()*100, rng.Float64()*100),
			Pt(rng.Float64()*100, rng.Float64()*100),
		)
		q := Pt(rng.Float64()*200-50, rng.Float64()*200-50)
		lo, hi := r.MinDist(q), r.MaxDist(q)
		if lo > hi+1e-9 {
			t.Fatalf("MinDist %v > MaxDist %v for %v, %v", lo, hi, r, q)
		}
		for j := 0; j < 30; j++ {
			p := Pt(
				r.Min.X+rng.Float64()*r.Width(),
				r.Min.Y+rng.Float64()*r.Height(),
			)
			d := q.Dist(p)
			if d < lo-1e-9 || d > hi+1e-9 {
				t.Fatalf("interior point %v at distance %v outside [%v, %v]", p, d, lo, hi)
			}
		}
	}
}

func TestUnionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a := NewRect(Pt(rng.Float64()*50, rng.Float64()*50), Pt(rng.Float64()*50, rng.Float64()*50))
		b := NewRect(Pt(rng.Float64()*50, rng.Float64()*50), Pt(rng.Float64()*50, rng.Float64()*50))
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("union %v does not contain operands %v %v", u, a, b)
		}
		if u.Area()+1e-9 < math.Max(a.Area(), b.Area()) {
			t.Fatalf("union area shrank")
		}
	}
}
