package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistBasics(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"identical", Pt(1, 2), Pt(1, 2), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"345 triangle", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-3, -4), Pt(0, 0), 5},
		{"large values", Pt(1e6, 0), Pt(1e6, 7), 7},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
		})
	}
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(clampCoord(ax), clampCoord(ay)), Pt(clampCoord(bx), clampCoord(by))
		d := a.Dist(b)
		return math.Abs(a.Dist2(b)-d*d) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampCoord maps an arbitrary float into the coordinate range the system
// actually uses (a 50 km square) so quick-generated extremes do not trigger
// irrelevant overflow.
func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 5e4)
}

func TestMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randPt := func() Point { return Pt(rng.Float64()*1e4-5e3, rng.Float64()*1e4-5e3) }
	for i := 0; i < 2000; i++ {
		a, b, c := randPt(), randPt(), randPt()
		if d := a.Dist(b); d < 0 {
			t.Fatalf("negative distance %v", d)
		}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			t.Fatalf("asymmetric distance for %v %v", a, b)
		}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestVectorOps(t *testing.T) {
	a, b := Pt(1, 2), Pt(3, -4)
	if got := a.Add(b); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
	if got := Pt(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); !got.Eq(a) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.Eq(b) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); !got.Eq(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
	if got := a.Lerp(b, 2); !got.Eq(Pt(20, 40)) {
		t.Errorf("Lerp extrapolation = %v", got)
	}
}

func TestSegmentClosest(t *testing.T) {
	tests := []struct {
		name    string
		p, a, b Point
		want    Point
		wantT   float64
	}{
		{"projects inside", Pt(5, 5), Pt(0, 0), Pt(10, 0), Pt(5, 0), 0.5},
		{"clamps to start", Pt(-3, 1), Pt(0, 0), Pt(10, 0), Pt(0, 0), 0},
		{"clamps to end", Pt(42, 1), Pt(0, 0), Pt(10, 0), Pt(10, 0), 1},
		{"degenerate segment", Pt(3, 4), Pt(1, 1), Pt(1, 1), Pt(1, 1), 0},
		{"on segment", Pt(2, 0), Pt(0, 0), Pt(10, 0), Pt(2, 0), 0.2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, gotT := SegmentClosest(tc.p, tc.a, tc.b)
			if !got.Eq(tc.want) || math.Abs(gotT-tc.wantT) > 1e-9 {
				t.Errorf("SegmentClosest = %v t=%v, want %v t=%v", got, gotT, tc.want, tc.wantT)
			}
		})
	}
}

func TestSegmentDistIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := Pt(rng.Float64()*100, rng.Float64()*100)
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		d := SegmentDist(p, a, b)
		// No sampled point on the segment may be closer.
		for s := 0; s <= 20; s++ {
			q := a.Lerp(b, float64(s)/20)
			if p.Dist(q) < d-1e-9 {
				t.Fatalf("sampled point %v closer (%v) than SegmentDist (%v)", q, p.Dist(q), d)
			}
		}
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		name       string
		a, b, c, d Point
		want       bool
	}{
		{"plain crossing", Pt(0, 0), Pt(10, 10), Pt(0, 10), Pt(10, 0), true},
		{"touch at endpoint", Pt(0, 0), Pt(5, 5), Pt(5, 5), Pt(9, 1), true},
		{"parallel disjoint", Pt(0, 0), Pt(10, 0), Pt(0, 1), Pt(10, 1), false},
		{"collinear overlapping", Pt(0, 0), Pt(10, 0), Pt(5, 0), Pt(15, 0), true},
		{"collinear disjoint", Pt(0, 0), Pt(4, 0), Pt(5, 0), Pt(9, 0), false},
		{"T junction", Pt(0, 0), Pt(10, 0), Pt(5, -5), Pt(5, 0), true},
		{"near miss", Pt(0, 0), Pt(10, 0), Pt(5, 0.001), Pt(5, 5), false},
		{"degenerate on segment", Pt(3, 0), Pt(3, 0), Pt(0, 0), Pt(10, 0), true},
		{"degenerate off segment", Pt(3, 1), Pt(3, 1), Pt(0, 0), Pt(10, 0), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p, ok := SegmentsIntersect(tc.a, tc.b, tc.c, tc.d)
			if ok != tc.want {
				t.Fatalf("SegmentsIntersect = %v, want %v", ok, tc.want)
			}
			if ok {
				if SegmentDist(p, tc.a, tc.b) > 1e-6 || SegmentDist(p, tc.c, tc.d) > 1e-6 {
					t.Errorf("reported intersection %v not on both segments", p)
				}
			}
		})
	}
}

func TestSegmentsIntersectSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a := Pt(rng.Float64()*20, rng.Float64()*20)
		b := Pt(rng.Float64()*20, rng.Float64()*20)
		c := Pt(rng.Float64()*20, rng.Float64()*20)
		d := Pt(rng.Float64()*20, rng.Float64()*20)
		_, ok1 := SegmentsIntersect(a, b, c, d)
		_, ok2 := SegmentsIntersect(c, d, a, b)
		if ok1 != ok2 {
			t.Fatalf("asymmetric intersection verdict for %v %v %v %v", a, b, c, d)
		}
	}
}
