package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaxCoveredRadiusTangentCircles(t *testing.T) {
	// Externally tangent discs: the union pinches to a point at (5,0), so
	// from either center the threshold is that disc's own radius.
	ext := NewRegion(NewCircle(Pt(0, 0), 5), NewCircle(Pt(10, 0), 5))
	if got := ext.MaxCoveredRadius(Pt(0, 0), 20); math.Abs(got-5) > 1e-9 {
		t.Errorf("external tangency: MaxCoveredRadius = %v, want 5", got)
	}
	// Internally tangent discs: the small disc is dominated by the big one;
	// only the big boundary is exposed.
	intl := NewRegion(NewCircle(Pt(0, 0), 10), NewCircle(Pt(5, 0), 5))
	if got := intl.MaxCoveredRadius(Pt(5, 0), 20); math.Abs(got-5) > 1e-9 {
		t.Errorf("internal tangency: MaxCoveredRadius = %v, want 5", got)
	}
	if got := intl.MaxCoveredRadius(Pt(0, 0), 20); math.Abs(got-10) > 1e-9 {
		t.Errorf("internal tangency at big center: MaxCoveredRadius = %v, want 10", got)
	}
}

func TestMaxCoveredRadiusCenterOutside(t *testing.T) {
	r := NewRegion(NewCircle(Pt(0, 0), 5), NewCircle(Pt(20, 0), 3))
	if got := r.MaxCoveredRadius(Pt(10, 0), 4); got != 0 {
		t.Errorf("center outside all circles: MaxCoveredRadius = %v, want 0", got)
	}
	// A zero-radius point circle contributes no interior: a center covered
	// only by it has uncovered points arbitrarily close.
	pt := NewRegion(NewCircle(Pt(7, 7), 0))
	if got := pt.MaxCoveredRadius(Pt(7, 7), 4); got != 0 {
		t.Errorf("point-circle-only coverage: MaxCoveredRadius = %v, want 0", got)
	}
	if NewRegion().MaxCoveredRadius(Pt(0, 0), 4) != 0 {
		t.Error("empty region: MaxCoveredRadius should be 0")
	}
}

func TestMaxCoveredRadiusClampBelowFirstGap(t *testing.T) {
	// hi smaller than the distance to the nearest exposed boundary: every
	// per-circle scan is pruned and the cap comes back unchanged.
	r := NewRegion(NewCircle(Pt(-0.5, 0), 10), NewCircle(Pt(0.5, 0), 10))
	if got := r.MaxCoveredRadius(Pt(0, 0), 3); got != 3 {
		t.Errorf("clamped MaxCoveredRadius = %v, want 3", got)
	}
}

func TestMaxCoveredRadiusDuplicateCircles(t *testing.T) {
	// Identical discs cover each other's boundary completely; the index
	// tie-break must keep one copy of the shared boundary in the
	// arrangement instead of letting the duplicates erase each other.
	r := NewRegion(NewCircle(Pt(0, 0), 10), NewCircle(Pt(0, 0), 10))
	if got := r.MaxCoveredRadius(Pt(3, 0), 20); math.Abs(got-7) > 1e-9 {
		t.Errorf("duplicate circles: MaxCoveredRadius = %v, want 7", got)
	}
	r3 := NewRegion(
		NewCircle(Pt(0, 0), 10), NewCircle(Pt(0, 0), 10), NewCircle(Pt(0, 0), 10),
	)
	if got := r3.MaxCoveredRadius(Pt(0, 0), 20); math.Abs(got-10) > 1e-9 {
		t.Errorf("triplicate circles: MaxCoveredRadius = %v, want 10", got)
	}
}

func TestMaxCoveredRadiusVertexBound(t *testing.T) {
	// Two-disc union from TestExactTighterThanPolygonized: the threshold at
	// the origin is set by the intersection vertices (0, ±sqrt(99.75)), not
	// by either disc alone.
	r := NewRegion(NewCircle(Pt(-0.5, 0), 10), NewCircle(Pt(0.5, 0), 10))
	want := math.Sqrt(99.75)
	if got := r.MaxCoveredRadius(Pt(0, 0), 20); math.Abs(got-want) > 1e-9 {
		t.Errorf("vertex-bound MaxCoveredRadius = %v, want %v", got, want)
	}
}

func TestMaxCoveredRadiusHole(t *testing.T) {
	// Three discs around the origin leaving an interior hole: centers 10
	// from the origin, radius 9, pairwise overlapping. From p = (0,3) the
	// nearest uncovered point is (0,1) on the hole side of the top disc.
	r := NewRegion(
		NewCircle(Pt(0, 10), 9),
		NewCircle(Pt(10*math.Cos(7*math.Pi/6), 10*math.Sin(7*math.Pi/6)), 9),
		NewCircle(Pt(10*math.Cos(-math.Pi/6), 10*math.Sin(-math.Pi/6)), 9),
	)
	if r.Contains(Pt(0, 0)) {
		t.Fatal("test geometry broken: origin should sit in the hole")
	}
	if got := r.MaxCoveredRadius(Pt(0, 3), 20); math.Abs(got-2) > 1e-9 {
		t.Errorf("hole-bounded MaxCoveredRadius = %v, want 2", got)
	}
}

// checkMaxCoveredRadiusAgreement cross-validates the one-pass threshold
// against CoversCircle: coverage must hold at a radius just below the
// returned bound and fail just above it (unless the bound was clamped at hi).
func checkMaxCoveredRadiusAgreement(t *testing.T, r *Region, p Point, hi float64) {
	t.Helper()
	rho := r.MaxCoveredRadius(p, hi)
	if rho < 0 || rho > hi {
		t.Fatalf("MaxCoveredRadius(%v, %v) = %v out of range", p, hi, rho)
	}
	margin := 1e-6 * (1 + rho)
	if rho > margin {
		if c := NewCircle(p, rho-margin); !r.CoversCircle(c) {
			t.Errorf("CoversCircle false just below bound: p=%v rho=%v circles=%v",
				p, rho, r.Circles())
		}
	}
	if rho+margin < hi {
		if c := NewCircle(p, rho+margin); r.CoversCircle(c) {
			t.Errorf("CoversCircle true just above bound: p=%v rho=%v circles=%v",
				p, rho, r.Circles())
		}
	}
}

func randomAgreementCase(rng *rand.Rand) (*Region, Point, float64) {
	var circles []Circle
	n := 1 + rng.Intn(6)
	for j := 0; j < n; j++ {
		circles = append(circles, NewCircle(
			Pt(rng.Float64()*20-10, rng.Float64()*20-10),
			rng.Float64()*8+0.2,
		))
	}
	// Occasionally inject a duplicate or a point circle to hit the
	// degenerate arrangement paths.
	if rng.Intn(4) == 0 {
		circles = append(circles, circles[rng.Intn(len(circles))])
	}
	if rng.Intn(4) == 0 {
		circles = append(circles, NewCircle(Pt(rng.Float64()*20-10, rng.Float64()*20-10), 0))
	}
	// Bias p toward a circle center so the covered case is common.
	base := circles[rng.Intn(len(circles))]
	p := Pt(
		base.Center.X+(rng.Float64()*2-1)*base.Radius,
		base.Center.Y+(rng.Float64()*2-1)*base.Radius,
	)
	hi := rng.Float64()*12 + 0.5
	return NewRegion(circles...), p, hi
}

func TestMaxCoveredRadiusAgreesWithCoversCircleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for i := 0; i < 2000; i++ {
		r, p, hi := randomAgreementCase(rng)
		checkMaxCoveredRadiusAgreement(t, r, p, hi)
	}
}

func FuzzMaxCoveredRadiusAgreesWithCoversCircle(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, 987654321} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 16; i++ {
			r, p, hi := randomAgreementCase(rng)
			checkMaxCoveredRadiusAgreement(t, r, p, hi)
		}
	})
}
