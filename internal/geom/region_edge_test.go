package geom

import (
	"math"
	"testing"
)

// Edge cases of the exact arc-coverage test: tangencies, concentric discs,
// identical discs, degenerate radii.
func TestCoversCircleEdgeCases(t *testing.T) {
	tests := []struct {
		name   string
		region []Circle
		cand   Circle
		want   bool
	}{
		{
			"identical disc",
			[]Circle{NewCircle(Pt(0, 0), 5)},
			NewCircle(Pt(0, 0), 5),
			true,
		},
		{
			"concentric smaller",
			[]Circle{NewCircle(Pt(0, 0), 5)},
			NewCircle(Pt(0, 0), 4.999),
			true,
		},
		{
			"concentric larger",
			[]Circle{NewCircle(Pt(0, 0), 5)},
			NewCircle(Pt(0, 0), 5.001),
			false,
		},
		{
			"internally tangent",
			[]Circle{NewCircle(Pt(0, 0), 10)},
			NewCircle(Pt(5, 0), 5),
			true,
		},
		{
			"externally tangent",
			[]Circle{NewCircle(Pt(0, 0), 5)},
			NewCircle(Pt(10, 0), 5),
			false,
		},
		{
			"two identical discs",
			[]Circle{NewCircle(Pt(0, 0), 5), NewCircle(Pt(0, 0), 5)},
			NewCircle(Pt(1, 0), 3.9),
			true,
		},
		{
			"zero-radius region circle irrelevant",
			[]Circle{NewCircle(Pt(0, 0), 5), NewCircle(Pt(100, 100), 0)},
			NewCircle(Pt(0, 0), 4),
			true,
		},
		{
			"candidate is a point on region boundary",
			[]Circle{NewCircle(Pt(0, 0), 5)},
			NewCircle(Pt(5, 0), 0),
			true,
		},
		{
			"candidate point just outside",
			[]Circle{NewCircle(Pt(0, 0), 5)},
			NewCircle(Pt(5.001, 0), 0),
			false,
		},
		{
			"three-way overlap with central hole closed",
			[]Circle{
				NewCircle(Pt(0, 2), 2.5),
				NewCircle(Pt(-2, -1.2), 2.5),
				NewCircle(Pt(2, -1.2), 2.5),
			},
			NewCircle(Pt(0, 0), 1.2),
			true,
		},
		{
			"ring of discs leaves a hole",
			[]Circle{
				NewCircle(Pt(4, 0), 2.2),
				NewCircle(Pt(-4, 0), 2.2),
				NewCircle(Pt(0, 4), 2.2),
				NewCircle(Pt(0, -4), 2.2),
				NewCircle(Pt(2.83, 2.83), 2.2),
				NewCircle(Pt(-2.83, 2.83), 2.2),
				NewCircle(Pt(2.83, -2.83), 2.2),
				NewCircle(Pt(-2.83, -2.83), 2.2),
			},
			// The ring covers an annulus but its center is a hole: a
			// candidate spanning the hole must fail even though its
			// boundary may be covered.
			NewCircle(Pt(0, 0), 3.5),
			false,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegion(tc.region...)
			if got := r.CoversCircle(tc.cand); got != tc.want {
				t.Errorf("CoversCircle = %v, want %v", got, tc.want)
			}
		})
	}
}

// The hole-detection condition (circle-pair intersection vertices) is what
// rejects the ring-with-hole case; verify the boundary coverage alone would
// have passed it, i.e. the vertex rule is load-bearing.
func TestRingHoleBoundaryIsCovered(t *testing.T) {
	ring := []Circle{
		NewCircle(Pt(4, 0), 2.2),
		NewCircle(Pt(-4, 0), 2.2),
		NewCircle(Pt(0, 4), 2.2),
		NewCircle(Pt(0, -4), 2.2),
		NewCircle(Pt(2.83, 2.83), 2.2),
		NewCircle(Pt(-2.83, 2.83), 2.2),
		NewCircle(Pt(2.83, -2.83), 2.2),
		NewCircle(Pt(-2.83, -2.83), 2.2),
	}
	cand := NewCircle(Pt(0, 0), 3.5)
	// Sample the candidate boundary: every point should be inside the ring
	// union (the annulus covers radius ~1.8 to ~6).
	r := NewRegion(ring...)
	for th := 0.0; th < 2*math.Pi; th += 0.05 {
		if !r.Contains(cand.PointAt(th)) {
			t.Skip("ring too sparse to cover the boundary; geometry changed")
		}
	}
	// Boundary fully covered, yet the disc must not verify (hole inside).
	if r.CoversCircle(cand) {
		t.Fatal("hole not detected: circle-pair vertex rule failed")
	}
	// The hole itself: the center is uncovered.
	if r.Contains(Pt(0, 0)) {
		t.Skip("center covered; geometry changed")
	}
}

func TestCircleIntersections(t *testing.T) {
	a := NewCircle(Pt(0, 0), 5)
	// Two proper intersections.
	p1, p2, n := circleIntersections(a, NewCircle(Pt(6, 0), 5))
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	for _, p := range []Point{p1, p2} {
		if math.Abs(p.Dist(Pt(0, 0))-5) > 1e-9 || math.Abs(p.Dist(Pt(6, 0))-5) > 1e-9 {
			t.Errorf("intersection %v not on both circles", p)
		}
	}
	// Externally tangent: one point.
	_, _, n = circleIntersections(a, NewCircle(Pt(10, 0), 5))
	if n != 1 {
		t.Errorf("tangent n = %d, want 1", n)
	}
	// Disjoint.
	if _, _, n = circleIntersections(a, NewCircle(Pt(20, 0), 5)); n != 0 {
		t.Errorf("disjoint n = %d", n)
	}
	// Nested.
	if _, _, n = circleIntersections(a, NewCircle(Pt(1, 0), 1)); n != 0 {
		t.Errorf("nested n = %d", n)
	}
	// Concentric identical: treated as no crossing (d <= Eps).
	if _, _, n = circleIntersections(a, a); n != 0 {
		t.Errorf("identical n = %d", n)
	}
}

func TestBoundaryCoveredDirect(t *testing.T) {
	c := NewCircle(Pt(0, 0), 3)
	// One disc covering everything.
	if !boundaryCovered(c, []Circle{NewCircle(Pt(0, 0), 4)}) {
		t.Error("full cover not detected")
	}
	// Two half-covers meeting with overlap.
	left := NewCircle(Pt(-2.2, 0), 3.8)
	right := NewCircle(Pt(2.2, 0), 3.8)
	if !boundaryCovered(c, []Circle{left, right}) {
		t.Error("two-arc cover not detected")
	}
	// A single off-center disc cannot cover the whole boundary.
	if boundaryCovered(c, []Circle{left}) {
		t.Error("half cover accepted as full")
	}
	// No interacting discs at all.
	if boundaryCovered(c, []Circle{NewCircle(Pt(100, 0), 1)}) {
		t.Error("disjoint disc accepted")
	}
}
