// Package geom provides the planar geometry substrate used throughout the
// SENN/SNNN reproduction: points, axis-aligned rectangles (MBRs), circles,
// convex polygons with half-plane clipping, and the union-of-circles
// "certain region" coverage test required by the multi-peer verification
// step (Lemma 3.8 of the paper).
//
// All coordinates are in meters. The package is purely computational and has
// no dependencies beyond the standard library.
package geom

import (
	"fmt"
	"math"
)

// Eps is the absolute tolerance used for geometric predicates. Coordinates in
// this system span at most ~5e4 m, so 1e-9 m is far below any meaningful
// resolution while staying well above float64 noise for the involved
// magnitudes.
const Eps = 1e-9

// Point is a location in the plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids the
// square root and is the preferred comparison key in hot paths.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s about the origin.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q viewed as
// vectors. It is positive when q lies counter-clockwise of p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Lerp returns the point a fraction t of the way from p to q. t is not
// clamped, so t<0 and t>1 extrapolate.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Eq reports whether p and q coincide within Eps in both coordinates.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// SegmentClosest returns the point on segment [a,b] closest to p, and the
// parameter t in [0,1] such that the returned point is a.Lerp(b, t).
func SegmentClosest(p, a, b Point) (Point, float64) {
	ab := b.Sub(a)
	len2 := ab.Dot(ab)
	if len2 <= Eps*Eps {
		return a, 0
	}
	t := p.Sub(a).Dot(ab) / len2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return a.Lerp(b, t), t
}

// SegmentDist returns the Euclidean distance from p to segment [a,b].
func SegmentDist(p, a, b Point) float64 {
	c, _ := SegmentClosest(p, a, b)
	return p.Dist(c)
}

// SegmentsIntersect reports whether the closed segments [a,b] and [c,d] share
// at least one point, and returns one such point when they do. Collinear
// overlapping segments report an arbitrary shared point.
func SegmentsIntersect(a, b, c, d Point) (Point, bool) {
	r := b.Sub(a)
	s := d.Sub(c)
	denom := r.Cross(s)
	qp := c.Sub(a)
	if math.Abs(denom) <= Eps {
		// Parallel. Overlap only if collinear.
		if math.Abs(qp.Cross(r)) > Eps {
			return Point{}, false
		}
		rr := r.Dot(r)
		if rr <= Eps*Eps {
			// a==b: degenerate segment; intersects iff a lies on [c,d].
			if SegmentDist(a, c, d) <= Eps {
				return a, true
			}
			return Point{}, false
		}
		t0 := qp.Dot(r) / rr
		t1 := t0 + s.Dot(r)/rr
		lo, hi := math.Min(t0, t1), math.Max(t0, t1)
		if hi < -Eps || lo > 1+Eps {
			return Point{}, false
		}
		t := math.Max(0, lo)
		return a.Lerp(b, t), true
	}
	t := qp.Cross(s) / denom
	u := qp.Cross(r) / denom
	if t < -Eps || t > 1+Eps || u < -Eps || u > 1+Eps {
		return Point{}, false
	}
	return a.Lerp(b, t), true
}
