package geom

import (
	"fmt"
	"math"
)

// ConvexPolygon is a convex polygon with vertices in counter-clockwise order.
// The zero value is the empty polygon. Construct arbitrary instances with
// NewConvexPolygon, which validates convexity and orientation.
type ConvexPolygon struct {
	vertices []Point
}

// NewConvexPolygon builds a convex polygon from vertices given in either
// orientation. It returns an error if fewer than three distinct vertices are
// supplied or the vertex sequence is not convex.
func NewConvexPolygon(pts []Point) (ConvexPolygon, error) {
	if len(pts) < 3 {
		return ConvexPolygon{}, fmt.Errorf("geom: convex polygon needs >= 3 vertices, got %d", len(pts))
	}
	vs := make([]Point, len(pts))
	copy(vs, pts)
	if signedArea(vs) < 0 {
		reverse(vs)
	}
	// Verify convexity: every consecutive triple must turn left or be
	// collinear.
	n := len(vs)
	for i := 0; i < n; i++ {
		a, b, c := vs[i], vs[(i+1)%n], vs[(i+2)%n]
		if b.Sub(a).Cross(c.Sub(b)) < -1e-7 {
			return ConvexPolygon{}, fmt.Errorf("geom: vertices are not convex at index %d", (i+1)%n)
		}
	}
	return ConvexPolygon{vertices: vs}, nil
}

func signedArea(vs []Point) float64 {
	var a float64
	n := len(vs)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += vs[i].Cross(vs[j])
	}
	return a / 2
}

func reverse(vs []Point) {
	for i, j := 0, len(vs)-1; i < j; i, j = i+1, j-1 {
		vs[i], vs[j] = vs[j], vs[i]
	}
}

// IsEmpty reports whether the polygon has no interior.
func (p ConvexPolygon) IsEmpty() bool { return len(p.vertices) < 3 }

// Vertices returns a copy of the vertex ring in counter-clockwise order.
func (p ConvexPolygon) Vertices() []Point {
	out := make([]Point, len(p.vertices))
	copy(out, p.vertices)
	return out
}

// NumVertices returns the number of vertices.
func (p ConvexPolygon) NumVertices() int { return len(p.vertices) }

// Area returns the area of the polygon.
func (p ConvexPolygon) Area() float64 {
	if p.IsEmpty() {
		return 0
	}
	return signedArea(p.vertices)
}

// Bounds returns the MBR of the polygon.
func (p ConvexPolygon) Bounds() Rect {
	r := EmptyRect()
	for _, v := range p.vertices {
		r = r.Union(RectFromPoint(v))
	}
	return r
}

// Centroid returns the area centroid of the polygon. It panics on the empty
// polygon.
func (p ConvexPolygon) Centroid() Point {
	if p.IsEmpty() {
		panic("geom: centroid of empty polygon")
	}
	var cx, cy, a float64
	n := len(p.vertices)
	for i := 0; i < n; i++ {
		v, w := p.vertices[i], p.vertices[(i+1)%n]
		cr := v.Cross(w)
		cx += (v.X + w.X) * cr
		cy += (v.Y + w.Y) * cr
		a += cr
	}
	if math.Abs(a) <= Eps {
		// Degenerate (collinear) polygon: fall back to the vertex mean.
		var m Point
		for _, v := range p.vertices {
			m = m.Add(v)
		}
		return m.Scale(1 / float64(n))
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// Contains reports whether q lies in the closed polygon.
func (p ConvexPolygon) Contains(q Point) bool {
	n := len(p.vertices)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		a, b := p.vertices[i], p.vertices[(i+1)%n]
		if b.Sub(a).Cross(q.Sub(a)) < -1e-7 {
			return false
		}
	}
	return true
}

// HalfPlane is the set of points q with Normal·q <= Offset. Each directed
// edge (a -> b) of a counter-clockwise convex polygon induces the half-plane
// containing the polygon's interior.
type HalfPlane struct {
	Normal Point
	Offset float64
}

// EdgeHalfPlane returns the half-plane to the left of the directed edge
// a -> b, i.e. the side containing the interior of a counter-clockwise
// polygon that uses the edge.
func EdgeHalfPlane(a, b Point) HalfPlane {
	d := b.Sub(a)
	n := Point{d.Y, -d.X} // outward normal for a CCW edge
	return HalfPlane{Normal: n, Offset: n.Dot(a)}
}

// Contains reports whether q lies in the closed half-plane.
func (h HalfPlane) Contains(q Point) bool {
	return h.Normal.Dot(q) <= h.Offset+Eps*(1+h.Normal.Norm())
}

// Complement returns the closed complement half-plane (the two closed
// half-planes overlap on the boundary line, which has zero area and is
// irrelevant to the area-based predicates in this package).
func (h HalfPlane) Complement() HalfPlane {
	return HalfPlane{Normal: h.Normal.Scale(-1), Offset: -h.Offset}
}

// HalfPlanes returns the half-planes whose intersection is the polygon, one
// per edge, in edge order.
func (p ConvexPolygon) HalfPlanes() []HalfPlane {
	n := len(p.vertices)
	out := make([]HalfPlane, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, EdgeHalfPlane(p.vertices[i], p.vertices[(i+1)%n]))
	}
	return out
}

// ClipHalfPlane returns the intersection of the polygon with the half-plane,
// using one pass of the Sutherland–Hodgman algorithm. The result is convex
// and may be empty.
func (p ConvexPolygon) ClipHalfPlane(h HalfPlane) ConvexPolygon {
	n := len(p.vertices)
	if n == 0 {
		return ConvexPolygon{}
	}
	scale := 1 + h.Normal.Norm()
	dist := func(q Point) float64 { return h.Normal.Dot(q) - h.Offset }
	out := make([]Point, 0, n+1)
	for i := 0; i < n; i++ {
		cur, next := p.vertices[i], p.vertices[(i+1)%n]
		dc, dn := dist(cur), dist(next)
		inC, inN := dc <= Eps*scale, dn <= Eps*scale
		if inC {
			out = append(out, cur)
		}
		if inC != inN {
			// The edge crosses the boundary line; add the crossing point.
			t := dc / (dc - dn)
			out = append(out, cur.Lerp(next, t))
		}
	}
	if len(out) < 3 {
		return ConvexPolygon{}
	}
	res := ConvexPolygon{vertices: dedupeRing(out)}
	if res.NumVertices() < 3 || res.Area() <= Eps {
		return ConvexPolygon{}
	}
	return res
}

// dedupeRing removes consecutive (near-)duplicate vertices from a ring.
func dedupeRing(vs []Point) []Point {
	out := vs[:0:0]
	for _, v := range vs {
		if len(out) == 0 || !out[len(out)-1].Eq(v) {
			out = append(out, v)
		}
	}
	if len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}

// IntersectConvex returns the intersection of two convex polygons, computed
// by clipping p against every half-plane of q.
func (p ConvexPolygon) IntersectConvex(q ConvexPolygon) ConvexPolygon {
	out := p
	for _, h := range q.HalfPlanes() {
		out = out.ClipHalfPlane(h)
		if out.IsEmpty() {
			return ConvexPolygon{}
		}
	}
	return out
}

// SubtractConvex returns the set difference p \ q as a slice of disjoint
// convex pieces (up to one per edge of q). This is the decomposition
//
//	p \ q  =  ⋃_i  p ∩ H̄_i ∩ H_1 ∩ … ∩ H_{i-1}
//
// where H_i are q's interior half-planes and H̄_i their complements. Pieces
// with area below areaEps are dropped; pass 0 to keep everything.
func (p ConvexPolygon) SubtractConvex(q ConvexPolygon, areaEps float64) []ConvexPolygon {
	if p.IsEmpty() {
		return nil
	}
	if q.IsEmpty() {
		return []ConvexPolygon{p}
	}
	hs := q.HalfPlanes()
	var pieces []ConvexPolygon
	remain := p // p ∩ H_1 ∩ … ∩ H_{i-1}, maintained incrementally
	for _, h := range hs {
		piece := remain.ClipHalfPlane(h.Complement())
		if !piece.IsEmpty() && piece.Area() > areaEps {
			pieces = append(pieces, piece)
		}
		remain = remain.ClipHalfPlane(h)
		if remain.IsEmpty() {
			break
		}
	}
	return pieces
}

// String implements fmt.Stringer.
func (p ConvexPolygon) String() string {
	return fmt.Sprintf("polygon(%d vertices, area=%.3f)", len(p.vertices), p.Area())
}
