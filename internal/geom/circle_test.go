package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestCircleContains(t *testing.T) {
	c := NewCircle(Pt(0, 0), 5)
	for _, p := range []Point{Pt(0, 0), Pt(5, 0), Pt(3, 4), Pt(-3, -4)} {
		if !c.Contains(p) {
			t.Errorf("circle should contain %v", p)
		}
	}
	for _, p := range []Point{Pt(5.001, 0), Pt(4, 4)} {
		if c.Contains(p) {
			t.Errorf("circle should not contain %v", p)
		}
	}
}

func TestCircleNegativeRadiusClamped(t *testing.T) {
	c := NewCircle(Pt(1, 1), -3)
	if c.Radius != 0 {
		t.Errorf("negative radius should clamp to 0, got %v", c.Radius)
	}
	if !c.Contains(Pt(1, 1)) {
		t.Error("zero-radius circle should contain its center")
	}
}

func TestContainsCircle(t *testing.T) {
	big := NewCircle(Pt(0, 0), 10)
	tests := []struct {
		name string
		d    Circle
		want bool
	}{
		{"same circle", big, true},
		{"nested", NewCircle(Pt(2, 0), 3), true},
		{"internally tangent", NewCircle(Pt(5, 0), 5), true},
		{"sticking out", NewCircle(Pt(8, 0), 3), false},
		{"disjoint", NewCircle(Pt(30, 0), 3), false},
		{"point inside", NewCircle(Pt(1, 1), 0), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := big.ContainsCircle(tc.d); got != tc.want {
				t.Errorf("ContainsCircle = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCircleIntersects(t *testing.T) {
	a := NewCircle(Pt(0, 0), 3)
	cases := []struct {
		b    Circle
		want bool
	}{
		{NewCircle(Pt(5, 0), 2), true}, // externally tangent
		{NewCircle(Pt(7, 0), 2), false},
		{NewCircle(Pt(1, 0), 1), true}, // nested
		{NewCircle(Pt(0, 4), 2), true},
	}
	for _, tc := range cases {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("Intersects(%v) = %v, want %v", tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("Intersects asymmetric for %v", tc.b)
		}
	}
}

func TestCircleBounds(t *testing.T) {
	c := NewCircle(Pt(2, -1), 3)
	want := NewRect(Pt(-1, -4), Pt(5, 2))
	if got := c.Bounds(); got != want {
		t.Errorf("Bounds = %v, want %v", got, want)
	}
}

func TestPointAt(t *testing.T) {
	c := NewCircle(Pt(1, 1), 2)
	if got := c.PointAt(0); !got.Eq(Pt(3, 1)) {
		t.Errorf("PointAt(0) = %v", got)
	}
	if got := c.PointAt(math.Pi / 2); !got.Eq(Pt(1, 3)) {
		t.Errorf("PointAt(pi/2) = %v", got)
	}
	// Every boundary point must be at distance Radius from the center.
	for th := 0.0; th < 2*math.Pi; th += 0.1 {
		if d := c.Center.Dist(c.PointAt(th)); math.Abs(d-c.Radius) > 1e-12 {
			t.Fatalf("PointAt(%v) at distance %v", th, d)
		}
	}
}

// The inscribed polygon must be a subset of the disc and the circumscribed a
// superset; their areas must bracket the disc area and converge to it.
func TestPolygonizationSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		c := NewCircle(Pt(rng.Float64()*100-50, rng.Float64()*100-50), rng.Float64()*40+0.5)
		for _, n := range []int{3, 4, 8, 16, 32, 64} {
			in := c.InscribedPolygon(n)
			out := c.CircumscribedPolygon(n)
			for _, v := range in.Vertices() {
				if d := c.Center.Dist(v); d > c.Radius+1e-9 {
					t.Fatalf("inscribed vertex outside circle: n=%d d=%v r=%v", n, d, c.Radius)
				}
			}
			// Sample disc boundary points: all must be inside the
			// circumscribed polygon.
			for th := 0.0; th < 2*math.Pi; th += 0.05 {
				if !out.Contains(c.PointAt(th)) {
					t.Fatalf("circumscribed polygon (n=%d) misses boundary point at %v", n, th)
				}
			}
			if in.Area() > c.Area()+1e-6 {
				t.Fatalf("inscribed area %v exceeds disc area %v", in.Area(), c.Area())
			}
			if out.Area() < c.Area()-1e-6 {
				t.Fatalf("circumscribed area %v below disc area %v", out.Area(), c.Area())
			}
		}
		// Convergence: 64-gon areas within 0.5% of the disc.
		in, out := c.InscribedPolygon(64), c.CircumscribedPolygon(64)
		if in.Area() < c.Area()*0.995 {
			t.Fatalf("64-gon inscribed area too small: %v vs %v", in.Area(), c.Area())
		}
		if out.Area() > c.Area()*1.005 {
			t.Fatalf("64-gon circumscribed area too large: %v vs %v", out.Area(), c.Area())
		}
	}
}

func TestPolygonizationPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InscribedPolygon(2) should panic")
		}
	}()
	NewCircle(Pt(0, 0), 1).InscribedPolygon(2)
}
