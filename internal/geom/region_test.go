package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegionContains(t *testing.T) {
	r := NewRegion(NewCircle(Pt(0, 0), 5), NewCircle(Pt(8, 0), 5))
	for _, p := range []Point{Pt(0, 0), Pt(4, 0), Pt(12, 0), Pt(8, 4)} {
		if !r.Contains(p) {
			t.Errorf("region should contain %v", p)
		}
	}
	for _, p := range []Point{Pt(4, 5), Pt(-6, 0), Pt(14, 0)} {
		if r.Contains(p) {
			t.Errorf("region should not contain %v", p)
		}
	}
	if NewRegion().Contains(Pt(0, 0)) {
		t.Error("empty region contains nothing")
	}
}

func TestRegionBounds(t *testing.T) {
	r := NewRegion(NewCircle(Pt(0, 0), 2), NewCircle(Pt(10, 10), 1))
	want := NewRect(Pt(-2, -2), Pt(11, 11))
	if got := r.Bounds(); got != want {
		t.Errorf("Bounds = %v, want %v", got, want)
	}
	if !NewRegion().Bounds().IsEmpty() {
		t.Error("empty region should have empty bounds")
	}
}

func TestCoversCircleSingleDisc(t *testing.T) {
	r := NewRegion(NewCircle(Pt(0, 0), 10))
	tests := []struct {
		name string
		c    Circle
		want bool
	}{
		{"well inside", NewCircle(Pt(1, 1), 2), true},
		{"centered same size", NewCircle(Pt(0, 0), 10), true},
		{"sticking out", NewCircle(Pt(8, 0), 4), false},
		{"disjoint", NewCircle(Pt(30, 0), 2), false},
		{"zero radius inside", NewCircle(Pt(3, 3), 0), true},
		{"zero radius outside", NewCircle(Pt(30, 3), 0), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.CoversCircle(tc.c); got != tc.want {
				t.Errorf("CoversCircle(%v) = %v, want %v", tc.c, got, tc.want)
			}
		})
	}
}

// Figure 7 of the paper: a candidate circle covered by neither peer circle
// alone but covered by their union must verify as certain only with the
// merged region.
func TestCoversCircleNeedsUnionFig7(t *testing.T) {
	p3 := NewCircle(Pt(-4, 0), 6.5)
	p4 := NewCircle(Pt(4, 0), 6.5)
	// Query circle centered between them, radius small enough to fit in the
	// lens-shaped union but not in either circle alone... it must extend
	// beyond both individual circles' coverage of the query point.
	q := NewCircle(Pt(0, 0), 3.2)
	if NewRegion(p3).CoversCircle(q) {
		t.Fatal("peer 3 alone should not cover the candidate")
	}
	if NewRegion(p4).CoversCircle(q) {
		t.Fatal("peer 4 alone should not cover the candidate")
	}
	if !NewRegion(p3, p4).CoversCircle(q) {
		t.Fatal("merged region should cover the candidate (Lemma 3.8)")
	}
}

// Soundness: whenever CoversCircle says true, Monte-Carlo sampling of the
// candidate disc must find no uncovered point. This is the property that
// keeps multi-peer verification sound (no false "certain" answers).
func TestCoversCircleSoundMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	covered, uncovered := 0, 0
	for i := 0; i < 400; i++ {
		var circles []Circle
		n := 1 + rng.Intn(5)
		for j := 0; j < n; j++ {
			circles = append(circles, NewCircle(
				Pt(rng.Float64()*20-10, rng.Float64()*20-10),
				rng.Float64()*8+0.5,
			))
		}
		r := NewRegion(circles...)
		c := NewCircle(Pt(rng.Float64()*20-10, rng.Float64()*20-10), rng.Float64()*6+0.1)
		if !r.CoversCircle(c) {
			uncovered++
			continue
		}
		covered++
		for s := 0; s < 3000; s++ {
			// Uniform sample in the disc.
			th := rng.Float64() * 2 * math.Pi
			rad := c.Radius * math.Sqrt(rng.Float64())
			p := Pt(c.Center.X+rad*math.Cos(th), c.Center.Y+rad*math.Sin(th))
			if !r.Contains(p) {
				t.Fatalf("CoversCircle=true but sample %v uncovered (candidate %v)", p, c)
			}
		}
	}
	if covered == 0 {
		t.Error("test generated no covered cases; tighten generator")
	}
	if uncovered == 0 {
		t.Error("test generated no uncovered cases; tighten generator")
	}
}

// Approximate completeness: a disc with comfortable slack inside the union
// must be detected as covered at the default fidelity.
func TestCoversCircleCompleteWithSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for i := 0; i < 200; i++ {
		center := Pt(rng.Float64()*10, rng.Float64()*10)
		radius := rng.Float64()*5 + 1
		// Cover the disc with three overlapping larger discs around it.
		r := NewRegion(
			NewCircle(center.Add(Pt(radius*0.3, 0)), radius*1.6),
			NewCircle(center.Add(Pt(-radius*0.3, 0.2*radius)), radius*1.6),
			NewCircle(center.Add(Pt(0, -radius*0.3)), radius*1.6),
		)
		if !r.CoversCircle(NewCircle(center, radius)) {
			t.Fatalf("disc with 30%% slack not detected as covered (i=%d)", i)
		}
	}
}

func TestCoversCircleChainOfDiscs(t *testing.T) {
	// A long thin candidate region covered by a chain of overlapping discs.
	var circles []Circle
	for x := 0.0; x <= 20; x += 2 {
		circles = append(circles, NewCircle(Pt(x, 0), 3))
	}
	r := NewRegion(circles...)
	if !r.CoversCircle(NewCircle(Pt(10, 0), 2.5)) {
		t.Error("chain union should cover center disc")
	}
	if r.CoversCircle(NewCircle(Pt(10, 0), 3.5)) {
		t.Error("disc taller than the chain must not verify")
	}
}

// The polygonized (paper-faithful) method is conservative with respect to
// the exact arc method: whenever polygonization certifies coverage, the
// exact test must agree. And whenever the exact test denies coverage with
// slack, polygonization must deny too.
func TestExactVsPolygonizedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	agreePos, agreeNeg := 0, 0
	for i := 0; i < 800; i++ {
		var circles []Circle
		n := 1 + rng.Intn(5)
		for j := 0; j < n; j++ {
			circles = append(circles, NewCircle(
				Pt(rng.Float64()*20-10, rng.Float64()*20-10),
				rng.Float64()*8+0.5,
			))
		}
		r := NewRegion(circles...)
		c := NewCircle(Pt(rng.Float64()*20-10, rng.Float64()*20-10), rng.Float64()*6+0.1)
		exact := r.CoversCircle(c)
		poly := r.CoversCirclePolygonized(c)
		if poly && !exact {
			t.Fatalf("polygonized=true but exact=false for %v over %v", c, circles)
		}
		if exact == poly {
			if exact {
				agreePos++
			} else {
				agreeNeg++
			}
		}
	}
	if agreePos == 0 || agreeNeg == 0 {
		t.Errorf("methods never agreed on both verdicts (pos=%d neg=%d)", agreePos, agreeNeg)
	}
}

// The exact method must certify tight fits the conservative polygonization
// rejects: a disc inscribed with sub-percent slack in a two-disc union.
func TestExactTighterThanPolygonized(t *testing.T) {
	r := NewRegion(NewCircle(Pt(-0.5, 0), 10), NewCircle(Pt(0.5, 0), 10))
	// Max covered radius at origin: boundary point (0, y): dist to (±0.5,0)
	// is sqrt(0.25+y^2) <= 10 -> y <= sqrt(99.75) ~ 9.9875.
	tight := NewCircle(Pt(0, 0), 9.98)
	if !r.CoversCircle(tight) {
		t.Error("exact method should certify a fit with 0.07% slack")
	}
	if r.CoversCircle(NewCircle(Pt(0, 0), 9.99)) {
		t.Error("exact method certified an uncovered disc")
	}
}

func TestMaxCoveredRadius(t *testing.T) {
	r := NewRegion(NewCircle(Pt(0, 0), 10))
	got := r.MaxCoveredRadius(Pt(4, 0), 20)
	if math.Abs(got-6) > 0.1 {
		t.Errorf("MaxCoveredRadius = %v, want about 6", got)
	}
	if r.MaxCoveredRadius(Pt(30, 0), 5) != 0 {
		t.Error("uncovered center should yield 0")
	}
	// hi smaller than the true maximum: return hi.
	if got := r.MaxCoveredRadius(Pt(0, 0), 4); got != 4 {
		t.Errorf("clamped MaxCoveredRadius = %v, want 4", got)
	}
}

func TestSetPolygonVerticesFidelity(t *testing.T) {
	// A disc that barely fits: low fidelity must be conservative (reject),
	// high fidelity should accept.
	r := NewRegion(NewCircle(Pt(0, 0), 10))
	c := NewCircle(Pt(0, 0), 9.9)
	r.SetPolygonVertices(4)
	if r.CoversCircle(c) {
		// With a square inscribed in radius 10, max covered radius along the
		// diagonal is ~7.07 < 9.9: must reject. (Single-disc fast path is
		// exact; force the polygon path with two discs.)
		t.Skip("single-disc fast path is exact; see two-disc variant below")
	}
	r2 := NewRegion(NewCircle(Pt(-0.5, 0), 10), NewCircle(Pt(0.5, 0), 10))
	r2.SetPolygonVertices(4)
	lowFidelity := r2.CoversCirclePolygonized(NewCircle(Pt(0, 0), 8.5))
	r3 := NewRegion(NewCircle(Pt(-0.5, 0), 10), NewCircle(Pt(0.5, 0), 10))
	r3.SetPolygonVertices(128)
	highFidelity := r3.CoversCirclePolygonized(NewCircle(Pt(0, 0), 8.5))
	if lowFidelity {
		t.Error("4-gon fidelity should be too coarse to certify a tight fit")
	}
	if !highFidelity {
		t.Error("128-gon fidelity should certify a disc with >1 unit slack")
	}
}

func TestRegionAddAndCircles(t *testing.T) {
	r := NewRegion(NewCircle(Pt(0, 0), 1))
	r.Add(NewCircle(Pt(5, 5), 2))
	cs := r.Circles()
	if len(cs) != 2 {
		t.Fatalf("Circles len = %d", len(cs))
	}
	cs[0] = NewCircle(Pt(9, 9), 9)
	if r.Circles()[0].Center.Eq(Pt(9, 9)) {
		t.Error("Circles must return a defensive copy")
	}
	if r.IsEmpty() {
		t.Error("region with circles should not be empty")
	}
	if !NewRegion().IsEmpty() {
		t.Error("NewRegion() should be empty")
	}
}
