package geom

import (
	"fmt"
	"math"
)

// Rect is a closed axis-aligned rectangle, the minimum bounding rectangle
// (MBR) type used by the R*-tree. Min must not exceed Max in either
// coordinate; use NewRect to normalize arbitrary corner pairs.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points, normalizing
// the corner order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// RectFromPoint returns the degenerate rectangle containing only p.
func RectFromPoint(p Point) Rect { return Rect{Min: p, Max: p} }

// EmptyRect returns the canonical empty rectangle: the identity element of
// Union, for which Contains and Intersects are always false.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the extent of r along the x axis (0 when empty).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.X - r.Min.X
}

// Height returns the extent of r along the y axis (0 when empty).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.Y - r.Min.Y
}

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r, the "margin" metric minimized by
// the R* split algorithm.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s is entirely inside r. An empty s is
// contained in every rectangle.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// OverlapArea returns the area shared by r and s.
func (r Rect) OverlapArea(s Rect) float64 { return r.Intersect(s).Area() }

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Enlargement returns the area increase needed for r to also cover s.
func (r Rect) Enlargement(s Rect) float64 { return r.Union(s).Area() - r.Area() }

// MinDist returns the minimum Euclidean distance from p to any point of r
// (zero when p is inside r). This is the MINDIST metric of Roussopoulos et
// al. used by every kNN tree-search variant in this repository.
func (r Rect) MinDist(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// MaxDist returns the maximum Euclidean distance from p to any point of r.
// This is the MAXDIST metric added by the paper's EINN algorithm (§3.3): an
// MBR with MaxDist below the branch-expanding lower bound lies entirely
// within the certain circle C_r and need not be expanded.
func (r Rect) MaxDist(p Point) float64 {
	if r.IsEmpty() {
		return 0
	}
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// MinMaxDist returns the MINMAXDIST metric of Roussopoulos et al.: the
// smallest upper bound on the distance from p to the nearest object inside
// an MBR that is known to touch all of its faces. For each axis, assume the
// nearest object lies on the closer face along that axis and as far as
// possible along the others; the minimum over axes is the guarantee. The
// depth-first kNN search uses it to discard sibling MBRs that provably
// cannot contain the nearest neighbor.
func (r Rect) MinMaxDist(p Point) float64 {
	if r.IsEmpty() {
		return 0
	}
	// rm: the closer face coordinate per axis; rM: the farther face.
	rmX := r.Min.X
	if p.X > (r.Min.X+r.Max.X)/2 {
		rmX = r.Max.X
	}
	rmY := r.Min.Y
	if p.Y > (r.Min.Y+r.Max.Y)/2 {
		rmY = r.Max.Y
	}
	rMX := r.Max.X
	if p.X >= (r.Min.X+r.Max.X)/2 {
		rMX = r.Min.X
	}
	rMY := r.Max.Y
	if p.Y >= (r.Min.Y+r.Max.Y)/2 {
		rMY = r.Min.Y
	}
	dx, dy := p.X-rmX, p.Y-rmY
	fx, fy := p.X-rMX, p.Y-rMY
	viaX := dx*dx + fy*fy // nearest object on the closer x face
	viaY := fx*fx + dy*dy // nearest object on the closer y face
	return math.Sqrt(math.Min(viaX, viaY))
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}
