package geom

import (
	"fmt"
	"math"
)

// Circle is a closed disc with the given center and radius. In the SENN
// verification algorithms a circle around a peer's cached query location with
// radius Dist(P, n_k) bounds the peer's "certain area": every point of
// interest inside it is known to the peer.
type Circle struct {
	Center Point
	Radius float64
}

// NewCircle returns the disc with the given center and radius. A negative
// radius is treated as zero.
func NewCircle(c Point, r float64) Circle {
	if r < 0 {
		r = 0
	}
	return Circle{Center: c, Radius: r}
}

// Contains reports whether p lies in the closed disc.
func (c Circle) Contains(p Point) bool {
	return c.Center.Dist2(p) <= (c.Radius+Eps)*(c.Radius+Eps)
}

// ContainsCircle reports whether the disc d is entirely inside c.
func (c Circle) ContainsCircle(d Circle) bool {
	return c.Center.Dist(d.Center)+d.Radius <= c.Radius+Eps
}

// Intersects reports whether the two closed discs share at least one point.
func (c Circle) Intersects(d Circle) bool {
	sum := c.Radius + d.Radius
	return c.Center.Dist2(d.Center) <= (sum+Eps)*(sum+Eps)
}

// Area returns the area of the disc.
func (c Circle) Area() float64 { return math.Pi * c.Radius * c.Radius }

// Bounds returns the MBR of the disc.
func (c Circle) Bounds() Rect {
	return Rect{
		Min: Point{c.Center.X - c.Radius, c.Center.Y - c.Radius},
		Max: Point{c.Center.X + c.Radius, c.Center.Y + c.Radius},
	}
}

// PointAt returns the boundary point at angle theta (radians, measured
// counter-clockwise from the positive x axis).
func (c Circle) PointAt(theta float64) Point {
	return Point{
		X: c.Center.X + c.Radius*math.Cos(theta),
		Y: c.Center.Y + c.Radius*math.Sin(theta),
	}
}

// InscribedPolygon returns the regular n-gon inscribed in c (a subset of the
// disc). n must be at least 3. The polygonization step of the paper's
// kNN_multiple (§3.2.2) uses inscribed polygons for the peers' certain
// circles so that the merged region under-approximates the true certain
// region and verification stays sound.
func (c Circle) InscribedPolygon(n int) ConvexPolygon {
	if n < 3 {
		panic(fmt.Sprintf("geom: inscribed polygon needs >= 3 vertices, got %d", n))
	}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		pts[i] = c.PointAt(2 * math.Pi * float64(i) / float64(n))
	}
	return ConvexPolygon{vertices: pts}
}

// CircumscribedPolygon returns the regular n-gon circumscribed about c (a
// superset of the disc), with edge midpoints touching the circle. n must be
// at least 3. The candidate circle C_ni of Lemma 3.8 uses the circumscribed
// polygon so that coverage of the polygon implies coverage of the disc.
func (c Circle) CircumscribedPolygon(n int) ConvexPolygon {
	if n < 3 {
		panic(fmt.Sprintf("geom: circumscribed polygon needs >= 3 vertices, got %d", n))
	}
	// Scale the inscribed polygon's vertices so its edges become tangent.
	r := c.Radius / math.Cos(math.Pi/float64(n))
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * (float64(i) + 0.5) / float64(n)
		pts[i] = Point{
			X: c.Center.X + r*math.Cos(theta),
			Y: c.Center.Y + r*math.Sin(theta),
		}
	}
	return ConvexPolygon{vertices: pts}
}

// String implements fmt.Stringer.
func (c Circle) String() string {
	return fmt.Sprintf("circle(%s, r=%.3f)", c.Center, c.Radius)
}
