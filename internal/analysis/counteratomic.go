package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// CounterAtomic flags plain (non-atomic) accesses to variables and struct
// fields that are elsewhere in the package accessed through sync/atomic
// functions. Mixing the two is a data race: the atomic access promises
// other goroutines are touching the location concurrently, so every other
// read, write, and ++ on it must go through sync/atomic too. This is
// exactly the MemPager read-counter bug fixed in PR 1 — a counter
// incremented with atomic.AddInt64 from worker goroutines but read with a
// plain load in the stats path — generalized into a compile-time check.
// (Counters migrated to the atomic.Int64 type family are immune by
// construction: the type has no non-atomic accessors.)
var CounterAtomic = &Analyzer{
	Name: "counteratomic",
	Doc:  "flags plain reads/writes of counters that are elsewhere accessed via sync/atomic",
	Run:  runCounterAtomic,
}

func runCounterAtomic(pass *Pass) error {
	// Pass 1: find every &x / &x.f handed to a sync/atomic operation.
	// atomicOperands records the object; blessed records the exact AST
	// nodes inside those calls so pass 2 does not flag them.
	atomicOperands := make(map[types.Object]token.Position)
	blessed := make(map[ast.Node]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := arg.(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				obj := referencedObj(pass, unary.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicOperands[obj]; !seen {
					atomicOperands[obj] = pass.Fset.Position(call.Pos())
				}
				blessed[unary.X] = true
			}
			return true
		})
	}
	if len(atomicOperands) == 0 {
		return nil
	}

	// Pass 2: any other reference to those objects is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if blessed[n] {
				return false // the &x.f inside the atomic call itself
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := referencedObj(pass, n)
				if obj == nil {
					return true
				}
				if first, ok := atomicOperands[obj]; ok {
					pass.Reportf(n.Pos(),
						"plain access to %s, which is accessed via sync/atomic at %s; mixed atomic/plain access is a data race — use sync/atomic here too (or migrate the field to atomic.Int64)",
						obj.Name(), shortPos(first))
					return false // don't re-report the embedded ident
				}
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[n]
				if obj == nil {
					return true
				}
				if first, ok := atomicOperands[obj]; ok {
					pass.Reportf(n.Pos(),
						"plain access to %s, which is accessed via sync/atomic at %s; mixed atomic/plain access is a data race — use sync/atomic here too (or migrate the variable to atomic.Int64)",
						obj.Name(), shortPos(first))
				}
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// operation (Add*, Load*, Store*, Swap*, CompareAndSwap*).
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return true
		}
	}
	return false
}

// referencedObj resolves the variable or field object named by e (an Ident
// or a SelectorExpr field selection).
func referencedObj(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	}
	return nil
}

func shortPos(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}
