package analysis

import (
	"go/ast"
)

// GoLeak flags `go` statements that spawn a goroutine with no reachable
// termination path: the spawned function (a literal, or a same-package
// function resolved through the call-graph summaries) contains an
// unconditional `for` loop with no exit — no return, no break out of the
// loop, no panic — and no termination signal flows into it: no
// context.Context value, no channel operation (a receive, send, select,
// close, or channel range is how a close-channel or done-channel protocol
// reaches a worker), and no sync.WaitGroup.Done. Such a goroutine runs
// until process exit no matter what the rest of the program does — in a
// per-connection server that is a connection-scoped resource leaked
// process-wide, and in the simulator it is a worker the determinism
// harness cannot drain.
//
// Straight-line goroutines (no unconditional loop) terminate on their own
// and stay silent, as do loops with any exit path and loops reached by a
// signal. A reviewed intentionally-detached goroutine is annotated
// //simvet:detached on the `go` statement. Spawns of functions the
// summaries cannot see (other packages, dynamic calls) are skipped rather
// than guessed at.
var GoLeak = &Analyzer{
	Name:  "goleak",
	Doc:   "flags goroutines spawned without a reachable termination path (no context, close-channel, or WaitGroup flows in and the body loops forever)",
	Scope: ServingPackages,
	Run:   runGoLeak,
}

func runGoLeak(pass *Pass) error {
	sums := Summarize(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			loops, term, known := sums.SpawnFacts(gs.Call)
			if !known || !loops || term {
				return true
			}
			if pass.Annotated(gs.Pos(), "detached") {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine spawned here loops forever and no termination signal reaches it (no context, channel, or WaitGroup); plumb a stop signal in or annotate //simvet:detached after review")
			return true
		})
	}
	return nil
}
