package analysis

import (
	"go/ast"
	"go/types"
)

// WallTime flags reads of the wall clock inside simulation and metrics
// code. The simulator's only clock is virtual step time (step index × dt):
// results, series, and metrics must be functions of the scenario and the
// seed alone. time.Now/time.Since smuggle host load and scheduling into
// the output; time.Sleep couples simulated behavior to real scheduling
// (and is a determinism *and* a throughput bug inside a shard). Wall-clock
// measurement belongs in benchmarks and cmd/ harnesses, which are outside
// this analyzer's scope.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "flags time.Now/time.Since/time.Sleep in simulation and metrics code, where virtual step time is the only clock",
	Scope: []string{
		"repro/internal/sim",
		"repro/internal/core",
		"repro/internal/experiments",
	},
	Run: runWallTime,
}

var wallClockFuncs = map[string]string{
	"Now":   "read the wall clock",
	"Since": "measure wall-clock elapsed time",
	"Sleep": "block on the wall clock",
}

func runWallTime(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			what, bad := wallClockFuncs[sel.Sel.Name]
			if !bad {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s would %s inside simulation code; the simulator's only clock is virtual step time (step × dt)",
				sel.Sel.Name, what)
			return true
		})
	}
	return nil
}
