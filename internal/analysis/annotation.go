package analysis

import (
	"regexp"
	"sort"
	"strings"
)

// KnownAnnotationKeys is the exhaustive inventory of //simvet:<key>
// suppression annotations, mapping each key to the analyzer it silences.
// The annotation analyzer fails the build on any other key, so a typo'd
// suppression (//simvet:dicard) — which would otherwise silence nothing
// while looking reviewed — is caught at lint time.
var KnownAnnotationKeys = map[string]string{
	"ordered":  "maporder",
	"exact":    "floateq",
	"discard":  "errsink",
	"lockio":   "locksafe",
	"detached": "goleak",
}

// Annotation validates the //simvet: annotations themselves: every key
// must be in KnownAnnotationKeys, and the comment must use the exact
// machine-readable form (no space between // and simvet:, no space around
// the colon) — a malformed annotation is inert, which is worse than
// absent, because it reads as a reviewed exception while suppressing
// nothing.
var Annotation = &Analyzer{
	Name: "annotation",
	Doc:  "flags //simvet: annotations with unknown keys or malformed spelling (an inert suppression silences nothing while looking reviewed)",
	Run:  runAnnotation,
}

// inertAnnotation matches comment spellings the suppression machinery does
// not recognize but a human plainly meant as one: leading whitespace before
// the marker, or whitespace around the colon.
var inertAnnotation = regexp.MustCompile(`^//\s+simvet\s*:|^//simvet\s+:|^//simvet:\s`)

func runAnnotation(pass *Pass) error {
	known := knownKeysList()
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "/") || !strings.Contains(c.Text, "simvet") {
					continue
				}
				if key, ok := annotationKey(c.Text); ok {
					if _, isKnown := KnownAnnotationKeys[key]; !isKnown {
						pass.Reportf(c.Pos(),
							"unknown //simvet: key %q suppresses nothing (known keys: %s); fix the key or drop the annotation",
							key, known)
					}
					continue
				}
				if inertAnnotation.MatchString(c.Text) {
					pass.Reportf(c.Pos(),
						"malformed simvet annotation %q is inert; write //simvet:<key> with no spaces",
						firstLine(c.Text))
				}
			}
		}
	}
	return nil
}

func knownKeysList() string {
	keys := make([]string, 0, len(KnownAnnotationKeys))
	for k := range KnownAnnotationKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 40 {
		s = s[:40] + "…"
	}
	return s
}
