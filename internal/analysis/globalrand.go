package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand enforces the per-shard RNG contract from the parallel movement
// engine: every random stream must be owned by exactly one goroutine and
// seeded deterministically. Two violation shapes are reported:
//
//  1. Calls to math/rand (or math/rand/v2) package-level functions that
//     draw from the process-global source — rand.Intn, rand.Float64,
//     rand.Seed, rand.Perm, rand.Shuffle, … . The global source is both
//     seeded nondeterministically and shared by every goroutine, so a
//     single call anywhere on the simulation path breaks bit-identical
//     replay. Constructors (rand.New, rand.NewSource, rand.NewPCG, …)
//     are fine: they build the per-shard generators the contract wants.
//
//  2. Package-level variables whose type is rand.Rand or *rand.Rand. A
//     package-global generator is reachable from every movement-shard
//     goroutine at once, which is a data race (rand.Rand is not
//     goroutine-safe) and an ordering hazard even when mutex-guarded —
//     the draw sequence then depends on shard scheduling. This is the
//     static approximation of "a *rand.Rand reachable from more than one
//     shard": generators must be locals, struct fields owned by one
//     shard, or function parameters.
var GlobalRand = &Analyzer{
	Name:  "globalrand",
	Doc:   "flags math/rand global-source functions and package-level rand.Rand values in deterministic packages (per-shard RNGs are the parallel-engine contract)",
	Scope: DeterministicPackages,
	Run:   runGlobalRand,
}

// globalSourceFuncs are the math/rand package-level functions backed by the
// shared global source. Constructors are deliberately absent.
var globalSourceFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runGlobalRand(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgIdent, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
				if !ok || !isRandPkg(pkgName.Imported().Path()) {
					return true
				}
				if globalSourceFuncs[n.Sel.Name] {
					pass.Reportf(n.Pos(),
						"%s.%s draws from the process-global rand source; use the per-shard *rand.Rand (rand.New(rand.NewSource(seed)))",
						pkgIdent.Name, n.Sel.Name)
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.Defs[name]
						v, ok := obj.(*types.Var)
						if !ok || v.Parent() != pass.Pkg.Scope() {
							continue // not package-level
						}
						if isRandType(v.Type()) {
							pass.Reportf(name.Pos(),
								"package-level %s %s is reachable from every movement-shard goroutine; rand.Rand is not goroutine-safe and shared draw order is nondeterministic — make it per-shard state",
								name.Name, types.TypeString(v.Type(), types.RelativeTo(pass.Pkg)))
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// isRandType reports whether t is rand.Rand or *rand.Rand (from either
// math/rand generation).
func isRandType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && isRandPkg(obj.Pkg().Path())
}
