package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GlobalRand enforces the per-shard RNG contract from the parallel movement
// engine: every random stream must be owned by exactly one goroutine and
// seeded deterministically. Two violation shapes are reported:
//
//  1. Calls to math/rand (or math/rand/v2) package-level functions that
//     draw from the process-global source — rand.Intn, rand.Float64,
//     rand.Seed, rand.Perm, rand.Shuffle, … . The global source is both
//     seeded nondeterministically and shared by every goroutine, so a
//     single call anywhere on the simulation path breaks bit-identical
//     replay. Constructors (rand.New, rand.NewSource, rand.NewPCG, …)
//     are fine: they build the per-shard generators the contract wants.
//
//  2. Package-level variables whose type is rand.Rand or *rand.Rand. A
//     package-global generator is reachable from every movement-shard
//     goroutine at once, which is a data race (rand.Rand is not
//     goroutine-safe) and an ordering hazard even when mutex-guarded —
//     the draw sequence then depends on shard scheduling. This is the
//     static approximation of "a *rand.Rand reachable from more than one
//     shard": generators must be locals, struct fields owned by one
//     shard, or function parameters.
//
//  3. A rand.Rand struct field selected inside two or more sibling
//     function literals of the same function, through a variable captured
//     from outside the literal. Two distinct closures reaching the same
//     generator is the escape shape the worker-pool code paths produce: if
//     those closures ever run on separate goroutines the draws race, and
//     even serialized they interleave the stream nondeterministically. The
//     legitimate fan-out pattern — one literal invoked once per shard,
//     each invocation selecting its own per-shard element — uses a single
//     literal and stays silent.
//
//  4. The cross-function variant of shape 3, via the call-graph summaries:
//     the closures never select the rand field themselves, but pass the
//     captured variable to a same-package function whose summary says it
//     draws a rand field through that parameter (directly or through
//     further calls). The generator escapes the function boundary into
//     caller-spawned workers all the same — the shape the ROADMAP's
//     hostile-scenario work keeps producing — so the draw is charged to
//     the call site and the same two-closure rule applies.
var GlobalRand = &Analyzer{
	Name:  "globalrand",
	Doc:   "flags math/rand global-source functions and package-level rand.Rand values in deterministic packages (per-shard RNGs are the parallel-engine contract)",
	Scope: DeterministicPackages,
	Run:   runGlobalRand,
}

// globalSourceFuncs are the math/rand package-level functions backed by the
// shared global source. Constructors are deliberately absent.
var globalSourceFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runGlobalRand(pass *Pass) error {
	sums := Summarize(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgIdent, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
				if !ok || !isRandPkg(pkgName.Imported().Path()) {
					return true
				}
				if globalSourceFuncs[n.Sel.Name] {
					pass.Reportf(n.Pos(),
						"%s.%s draws from the process-global rand source; use the per-shard *rand.Rand (rand.New(rand.NewSource(seed)))",
						pkgIdent.Name, n.Sel.Name)
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.Defs[name]
						v, ok := obj.(*types.Var)
						if !ok || v.Parent() != pass.Pkg.Scope() {
							continue // not package-level
						}
						if isRandType(v.Type()) {
							pass.Reportf(name.Pos(),
								"package-level %s %s is reachable from every movement-shard goroutine; rand.Rand is not goroutine-safe and shared draw order is nondeterministic — make it per-shard state",
								name.Name, types.TypeString(v.Type(), types.RelativeTo(pass.Pkg)))
						}
					}
				}
			}
			return true
		})
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSharedRandField(pass, sums, fd.Body)
			}
		}
	}
	return nil
}

// checkSharedRandField implements violation shapes 3 and 4: within one
// function, collect every use of a rand-typed field made inside a function
// literal through a variable captured from outside that literal — a direct
// field selection (shape 3), or a call passing the captured variable into a
// same-package function whose summary draws a rand field through that
// parameter (shape 4) — keyed by (root variable, field). A key reached from
// two or more distinct literals is one generator shared between worker
// closures; every use site is reported.
func checkSharedRandField(pass *Pass, sums *Summaries, body *ast.BlockStmt) {
	type key struct{ root, field types.Object }
	type use struct {
		lit *ast.FuncLit
		pos token.Pos
		via string // same-package callee mediating the draw ("" for a direct selection)
		in  string // function the draw itself happens in (shape 4 only)
	}
	uses := map[key][]use{}

	// captured reports whether root resolves to a variable declared outside
	// lit (its parameters included), i.e. closure-captured state.
	captured := func(root *ast.Ident, lit *ast.FuncLit) (types.Object, bool) {
		obj := pass.TypesInfo.Uses[root]
		if obj == nil || obj.Pos() == token.NoPos {
			return nil, false
		}
		if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
			return nil, false
		}
		return obj, true
	}

	var collect func(n ast.Node, lit *ast.FuncLit)
	collect = func(n ast.Node, lit *ast.FuncLit) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			if fl, ok := m.(*ast.FuncLit); ok {
				// Uses belong to the innermost enclosing literal.
				collect(fl.Body, fl)
				return false
			}
			if lit == nil {
				return true
			}
			switch m := m.(type) {
			case *ast.SelectorExpr:
				selInfo, ok := pass.TypesInfo.Selections[m]
				if !ok || selInfo.Kind() != types.FieldVal || !isRandType(selInfo.Obj().Type()) {
					return true
				}
				root := rootIdent(m.X)
				if root == nil {
					return true
				}
				obj, ok := captured(root, lit)
				if !ok {
					return true
				}
				k := key{root: obj, field: selInfo.Obj()}
				uses[k] = append(uses[k], use{lit: lit, pos: m.Pos()})
			case *ast.CallExpr:
				callee := staticCallee(pass, m)
				cs := sums.ForFunc(callee)
				if cs == nil || len(cs.RandFields) == 0 {
					return true
				}
				sig := callee.Type().(*types.Signature)
				charge := func(arg ast.Expr, calleeVar *types.Var) {
					root := rootIdent(arg)
					if root == nil || calleeVar == nil {
						return
					}
					obj, ok := captured(root, lit)
					if !ok {
						return
					}
					for field := range cs.RandFields[calleeVar] {
						in := cs.RandVia(calleeVar, field)
						if in == "" {
							in = callee.Name()
						}
						k := key{root: obj, field: field}
						uses[k] = append(uses[k], use{lit: lit, pos: arg.Pos(), via: callee.Name(), in: in})
					}
				}
				if recv := sig.Recv(); recv != nil {
					if sel, ok := m.Fun.(*ast.SelectorExpr); ok {
						charge(sel.X, recv)
					}
				}
				for i, arg := range m.Args {
					if i >= sig.Params().Len() {
						break
					}
					charge(arg, sig.Params().At(i))
				}
			}
			return true
		})
	}
	collect(body, nil)

	for k, us := range uses {
		lits := map[*ast.FuncLit]bool{}
		for _, u := range us {
			lits[u.lit] = true
		}
		if len(lits) < 2 {
			continue
		}
		for _, u := range us {
			if u.via != "" {
				pass.Reportf(u.pos,
					"rand field %s (via %s, drawn in %s) is reachable from %d worker closures; rand.Rand is not goroutine-safe and a shared draw order depends on scheduling — give each closure its own per-shard generator",
					k.field.Name(), k.root.Name(), u.in, len(lits))
				continue
			}
			pass.Reportf(u.pos,
				"rand field %s (via %s) is reachable from %d worker closures; rand.Rand is not goroutine-safe and a shared draw order depends on scheduling — give each closure its own per-shard generator",
				k.field.Name(), k.root.Name(), len(lits))
		}
	}
}

// rootIdent walks a selector/index chain down to its root identifier,
// returning nil for roots that are not plain variables (calls, composite
// literals, …).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isRandType reports whether t is rand.Rand or *rand.Rand (from either
// math/rand generation).
func isRandType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && isRandPkg(obj.Pkg().Path())
}
