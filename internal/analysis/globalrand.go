package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GlobalRand enforces the per-shard RNG contract from the parallel movement
// engine: every random stream must be owned by exactly one goroutine and
// seeded deterministically. Two violation shapes are reported:
//
//  1. Calls to math/rand (or math/rand/v2) package-level functions that
//     draw from the process-global source — rand.Intn, rand.Float64,
//     rand.Seed, rand.Perm, rand.Shuffle, … . The global source is both
//     seeded nondeterministically and shared by every goroutine, so a
//     single call anywhere on the simulation path breaks bit-identical
//     replay. Constructors (rand.New, rand.NewSource, rand.NewPCG, …)
//     are fine: they build the per-shard generators the contract wants.
//
//  2. Package-level variables whose type is rand.Rand or *rand.Rand. A
//     package-global generator is reachable from every movement-shard
//     goroutine at once, which is a data race (rand.Rand is not
//     goroutine-safe) and an ordering hazard even when mutex-guarded —
//     the draw sequence then depends on shard scheduling. This is the
//     static approximation of "a *rand.Rand reachable from more than one
//     shard": generators must be locals, struct fields owned by one
//     shard, or function parameters.
//
//  3. A rand.Rand struct field selected inside two or more sibling
//     function literals of the same function, through a variable captured
//     from outside the literal. Two distinct closures reaching the same
//     generator is the escape shape the worker-pool code paths produce: if
//     those closures ever run on separate goroutines the draws race, and
//     even serialized they interleave the stream nondeterministically. The
//     legitimate fan-out pattern — one literal invoked once per shard,
//     each invocation selecting its own per-shard element — uses a single
//     literal and stays silent.
var GlobalRand = &Analyzer{
	Name:  "globalrand",
	Doc:   "flags math/rand global-source functions and package-level rand.Rand values in deterministic packages (per-shard RNGs are the parallel-engine contract)",
	Scope: DeterministicPackages,
	Run:   runGlobalRand,
}

// globalSourceFuncs are the math/rand package-level functions backed by the
// shared global source. Constructors are deliberately absent.
var globalSourceFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runGlobalRand(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgIdent, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
				if !ok || !isRandPkg(pkgName.Imported().Path()) {
					return true
				}
				if globalSourceFuncs[n.Sel.Name] {
					pass.Reportf(n.Pos(),
						"%s.%s draws from the process-global rand source; use the per-shard *rand.Rand (rand.New(rand.NewSource(seed)))",
						pkgIdent.Name, n.Sel.Name)
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.Defs[name]
						v, ok := obj.(*types.Var)
						if !ok || v.Parent() != pass.Pkg.Scope() {
							continue // not package-level
						}
						if isRandType(v.Type()) {
							pass.Reportf(name.Pos(),
								"package-level %s %s is reachable from every movement-shard goroutine; rand.Rand is not goroutine-safe and shared draw order is nondeterministic — make it per-shard state",
								name.Name, types.TypeString(v.Type(), types.RelativeTo(pass.Pkg)))
						}
					}
				}
			}
			return true
		})
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSharedRandField(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkSharedRandField implements violation shape 3: within one function,
// collect every rand-typed field selection made inside a function literal
// whose root variable is captured from outside that literal, keyed by
// (root variable, field). A key reached from two or more distinct literals
// is one generator shared between worker closures; every use site is
// reported.
func checkSharedRandField(pass *Pass, body *ast.BlockStmt) {
	type key struct{ root, field types.Object }
	type use struct {
		lit *ast.FuncLit
		sel *ast.SelectorExpr
	}
	uses := map[key][]use{}

	var collect func(n ast.Node, lit *ast.FuncLit)
	collect = func(n ast.Node, lit *ast.FuncLit) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			if fl, ok := m.(*ast.FuncLit); ok {
				// Uses belong to the innermost enclosing literal.
				collect(fl.Body, fl)
				return false
			}
			if lit == nil {
				return true
			}
			se, ok := m.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selInfo, ok := pass.TypesInfo.Selections[se]
			if !ok || selInfo.Kind() != types.FieldVal || !isRandType(selInfo.Obj().Type()) {
				return true
			}
			root := rootIdent(se.X)
			if root == nil {
				return true
			}
			obj := pass.TypesInfo.Uses[root]
			if obj == nil || obj.Pos() == token.NoPos {
				return true
			}
			// A root declared inside the literal (including its parameters)
			// is closure-owned state, not a capture.
			if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
				return true
			}
			k := key{root: obj, field: selInfo.Obj()}
			uses[k] = append(uses[k], use{lit: lit, sel: se})
			return true
		})
	}
	collect(body, nil)

	for k, us := range uses {
		lits := map[*ast.FuncLit]bool{}
		for _, u := range us {
			lits[u.lit] = true
		}
		if len(lits) < 2 {
			continue
		}
		for _, u := range us {
			pass.Reportf(u.sel.Pos(),
				"rand field %s (via %s) is reachable from %d worker closures; rand.Rand is not goroutine-safe and a shared draw order depends on scheduling — give each closure its own per-shard generator",
				k.field.Name(), k.root.Name(), len(lits))
		}
	}
}

// rootIdent walks a selector/index chain down to its root identifier,
// returning nil for roots that are not plain variables (calls, composite
// literals, …).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isRandType reports whether t is rand.Rand or *rand.Rand (from either
// math/rand generation).
func isRandType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && isRandPkg(obj.Pkg().Path())
}
