package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags `==` and `!=` between floating-point operands in the
// geometry predicates. The geom package's contract is that every predicate
// tolerates float64 noise via the package Eps (see geom.Eps): a raw
// equality there either never fires (post-arithmetic values) or encodes a
// hidden exactness assumption that breaks under reordered parallel
// arithmetic. Files that intentionally implement exact-arithmetic
// comparisons declare it with a //simvet:exact file comment and are
// exempt. The NaN self-comparison idiom (x != x) is recognized and
// allowed.
var FloatEq = &Analyzer{
	Name:  "floateq",
	Doc:   "flags ==/!= between floating-point operands in geometry predicates outside //simvet:exact files",
	Scope: []string{"repro/internal/geom"},
	Run:   runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.FileExempt(file.Package, "exact") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, bin.X) || !isFloat(pass, bin.Y) {
				return true
			}
			// x != x is the portable NaN test; identical operands cannot
			// express a tolerance bug.
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos,
				"floating-point %s comparison in a geometry predicate; compare against geom.Eps (or mark the file //simvet:exact if it implements exact arithmetic)",
				bin.Op)
			return true
		})
	}
	return nil
}

func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
