package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe guards the serving layer's mutex discipline with two checks
// built on the cross-function summaries:
//
//  1. A mutex held across a blocking operation. Between a sync.Mutex /
//     sync.RWMutex Lock (or a defer'd Unlock, which holds to function end)
//     and its Unlock, the critical section must not perform a blocking
//     operation — net.Conn I/O, a channel send/receive/range, a select
//     with no default, sync.WaitGroup.Wait, io.ReadFull-style copies, or
//     time.Sleep — nor call a same-package function whose summary says it
//     may block. One wedged peer (a client that stops reading its TCP
//     socket, a channel nobody drains) then wedges every goroutine
//     contending for the lock: for a per-connection server that is a
//     cross-connection denial of service. Deliberate serialization locks
//     (a write mutex that exists precisely to serialize whole frames onto
//     a conn) are reviewed and annotated //simvet:lockio at the blocking
//     call.
//
//  2. A sync primitive copied by value: a parameter, assignment, or range
//     variable whose type embeds sync.Mutex, sync.RWMutex, sync.WaitGroup,
//     sync.Once, sync.Cond, sync.Map, sync.Pool, or a sync/atomic type. A
//     copied lock guards nothing — the copy and the original serialize
//     independently — so such types must be shared by pointer.
//
// The critical-section walk is a linear over-approximation: branch bodies
// are analyzed with a copy of the held set, so an Unlock inside an `if`
// releases for that branch only, and a Lock inside a branch does not leak
// out. Function literals and `go` statements execute on other goroutines
// (or later) and are excluded from the enclosing critical section.
var LockSafe = &Analyzer{
	Name:  "locksafe",
	Doc:   "flags mutexes held across blocking calls (net.Conn I/O, channel ops, Wait) and sync primitives copied by value in the serving packages",
	Scope: ServingPackages,
	Run:   runLockSafe,
}

func runLockSafe(pass *Pass) error {
	sums := Summarize(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkValueCopies(pass, fd)
			if fd.Body != nil {
				walkHeld(pass, sums, fd.Body.List, make(map[string]token.Pos))
			}
		}
	}
	return nil
}

// walkHeld scans statements in source order, tracking which mutexes are
// held, and reports blocking operations inside a critical section. held
// maps the lock's receiver expression (printed) to its Lock position.
func walkHeld(pass *Pass, sums *Summaries, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if lock, name, isLockOp := mutexOp(pass, call); isLockOp {
					if lock {
						held[name] = call.Pos()
					} else {
						delete(held, name)
					}
					continue
				}
			}
			checkBlocking(pass, sums, s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() holds to function end: keep it in held so
			// everything after the defer is still a critical section. Other
			// defers run at return, outside the linear walk.
			continue
		case *ast.GoStmt:
			continue // runs on another goroutine
		case *ast.BlockStmt:
			walkHeld(pass, sums, s.List, held)
		case *ast.IfStmt:
			if s.Init != nil {
				checkBlocking(pass, sums, s.Init, held)
			}
			checkBlocking(pass, sums, s.Cond, held)
			walkHeld(pass, sums, s.Body.List, copyHeld(held))
			if s.Else != nil {
				walkHeld(pass, sums, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				checkBlocking(pass, sums, s.Init, held)
			}
			if s.Cond != nil {
				checkBlocking(pass, sums, s.Cond, held)
			}
			walkHeld(pass, sums, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			checkBlocking(pass, sums, s, held) // a channel range blocks at the statement itself
			walkHeld(pass, sums, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Tag != nil {
				checkBlocking(pass, sums, s.Tag, held)
			}
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					walkHeld(pass, sums, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					walkHeld(pass, sums, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			checkBlocking(pass, sums, s, held) // blocking unless it has a default
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					walkHeld(pass, sums, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			walkHeld(pass, sums, []ast.Stmt{s.Stmt}, held)
		default:
			checkBlocking(pass, sums, stmt, held)
		}
	}
}

// checkBlocking reports the first blocking operation in n while any lock is
// held, honoring the //simvet:lockio review annotation at the blocking
// site.
func checkBlocking(pass *Pass, sums *Summaries, n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || n == nil {
		return
	}
	site, ok := sums.BlockingIn(n)
	if !ok || pass.Annotated(site.Pos, "lockio") {
		return
	}
	name, lockPos := firstHeld(pass, held)
	pass.Reportf(site.Pos,
		"mutex %s (locked at %s) is held across %s; a stalled peer wedges every goroutine contending for this lock — shrink the critical section or annotate //simvet:lockio after review",
		name, shortPos(pass.Fset.Position(lockPos)), site.What)
}

// firstHeld picks the earliest-locked mutex for the diagnostic, so the
// report is deterministic when several locks are held.
func firstHeld(pass *Pass, held map[string]token.Pos) (string, token.Pos) {
	var name string
	var pos token.Pos
	for n, p := range held {
		if pos == token.NoPos || p < pos || (p == pos && n < name) {
			name, pos = n, p
		}
	}
	return name, pos
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// mutexOp classifies a call as a sync mutex Lock/RLock (lock=true) or
// Unlock/RUnlock (lock=false), returning the printed receiver as the lock
// key.
func mutexOp(pass *Pass, call *ast.CallExpr) (lock bool, key string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return false, "", false
	}
	obj, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, "", false
	}
	switch obj.Name() {
	case "Lock", "RLock":
		return true, types.ExprString(sel.X), true
	case "Unlock", "RUnlock":
		return false, types.ExprString(sel.X), true
	}
	return false, "", false
}

// checkValueCopies reports sync primitives copied by value: value
// parameters and receivers, value assignments from existing values, and
// range value variables.
func checkValueCopies(pass *Pass, fd *ast.FuncDecl) {
	reportIfSync := func(pos token.Pos, t types.Type, what string) {
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if prim, ok := typeContainsSync(t); ok {
			pass.Reportf(pos,
				"%s copies %s, which contains %s; a copied lock no longer guards the original — share it by pointer",
				what, types.TypeString(t, types.RelativeTo(pass.Pkg)), prim)
		}
	}
	checkFields := func(fields *ast.FieldList, what string) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					reportIfSync(name.Pos(), v.Type(), what+" "+name.Name)
				}
			}
		}
	}
	checkFields(fd.Recv, "value receiver")
	checkFields(fd.Type.Params, "value parameter")
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isLvalueExpr(rhs) {
					continue // composite literals and call results are fresh values
				}
				if tv, ok := pass.TypesInfo.Types[rhs]; ok {
					reportIfSync(rhs.Pos(), tv.Type, "assignment")
				}
			}
		case *ast.RangeStmt:
			if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
				if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
					reportIfSync(id.Pos(), v.Type(), "range value "+id.Name)
				}
			}
		}
		return true
	})
}

// isLvalueExpr reports whether e denotes an existing addressable value
// (identifier, field, element, or dereference) rather than a fresh one.
func isLvalueExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return isLvalueExpr(e.X)
	}
	return false
}
