// Package goleak is the fixture for the goleak analyzer: goroutines that
// loop forever with no termination signal reaching them (directly or
// through same-package calls) must be flagged; bounded bodies, loops with
// exit paths, channel/context/WaitGroup-driven workers, unresolvable
// spawns, and //simvet:detached-reviewed goroutines stay silent.
package goleak

import (
	"context"
	"sync"
)

func work() {}

func leaky() {
	go func() { // want `goroutine spawned here loops forever and no termination signal reaches it`
		for {
			work()
		}
	}()
}

// spinForever is the named-function spawn case; the summary carries its
// loop shape to every `go` site.
func spinForever() {
	for {
		work()
	}
}

func spawnNamed() {
	go spinForever() // want `goroutine spawned here loops forever`
}

// runLoop only loops through a call — the fixpoint must see through it.
func runLoop() {
	work()
	spinForever()
}

func spawnIndirect() {
	go runLoop() // want `goroutine spawned here loops forever`
}

func straightLine() {
	go work() // no loop: terminates on its own, silent
}

func boundedLoop() {
	go func() {
		for {
			if done() {
				return // an exit path: silent
			}
		}
	}()
}

func done() bool { return true }

func channelDriven(in chan int) {
	go func() {
		for {
			v := <-in // a channel receive is the termination protocol: silent
			_ = v
		}
	}()
}

func poll(ctx context.Context) {}

func ctxReferenced(ctx context.Context) {
	go func() {
		for {
			poll(ctx) // the context value flows in: silent
		}
	}()
}

func wgTracked(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done() // a WaitGroup-tracked lifetime: silent
		for {
			work()
		}
	}()
}

func dynamic(f func()) {
	go f() // unresolvable spawn: skipped rather than guessed at, silent
}

func detached() {
	//simvet:detached — metrics pump that runs for the life of the process
	go spinForever()
}
