// Package errsink is the fixture for the errsink analyzer: discarded
// errors from conn-shaped I/O and from same-package wrappers the summaries
// mark as error sources must be flagged; handled errors, error-free calls,
// and //simvet:discard-reviewed sites stay silent.
package errsink

import "time"

// conn carries the net.Conn method-set shape the analyzer detects
// structurally.
type conn struct{}

func (conn) Read(p []byte) (int, error)    { return 0, nil }
func (conn) Write(p []byte) (int, error)   { return len(p), nil }
func (conn) Close() error                  { return nil }
func (conn) LocalAddr() string             { return "" }
func (conn) RemoteAddr() string            { return "" }
func (conn) SetDeadline(t time.Time) error { return nil }

func bareWrite(c conn, p []byte) {
	c.Write(p) // want `error from net\.Conn Write is silently discarded`
}

func blankClose(c conn) {
	_ = c.Close() // want `error from net\.Conn Close is silently discarded`
}

func deferClose(c conn) {
	defer c.Close() // want `error from net\.Conn Close`
}

func partialBlank(c conn, p []byte) int {
	n, _ := c.Write(p) // want `error from net\.Conn Write`
	return n
}

func handled(c conn, p []byte) error {
	if _, err := c.Write(p); err != nil { // checked: silent
		return err
	}
	return c.Close() // returned to the caller: silent
}

// sendFrame wraps the conn write; its error derives from the transport, so
// discarding it discards the transport's — the summary marks it a source.
func sendFrame(c conn, p []byte) error {
	_, err := c.Write(p)
	return err
}

func dropWrapped(c conn, p []byte) {
	sendFrame(c, p) // want `error from sendFrame is silently discarded`
}

func dropBlank(c conn, p []byte) {
	_ = sendFrame(c, p) // want `error from sendFrame`
}

func reviewed(c conn) {
	//simvet:discard — teardown of an already-failed conn; nothing new to report
	_ = c.Close()
}

func inlineReviewed(c conn, p []byte) {
	_ = sendFrame(c, p) //simvet:discard — best-effort notification on a dying path
}

func noError(c conn) {
	_ = c.LocalAddr() // no error in the result list: silent
}

func fire() {}

func bareCall() {
	fire() // error-free call: silent
}
