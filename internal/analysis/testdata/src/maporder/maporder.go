// Package maporder is the fixture for the maporder analyzer: map ranges
// whose effect depends on iteration order must be flagged; collect-then-sort
// loops and //simvet:ordered-reviewed loops must stay silent.
package maporder

import "sort"

type host struct{ id int64 }

func concatKeys(m map[string]int) string {
	out := ""
	for k := range m { // want `range over map`
		out += k
	}
	return out
}

func appendWithoutSort(m map[string]int) []string {
	keys := []string{}
	for k := range m { // want `range over map`
		keys = append(keys, k)
	}
	return keys
}

func collectThenSort(m map[int64]float64) []float64 {
	nds := make([]float64, 0, len(m))
	for _, nd := range m { // collect-then-sort: silent
		nds = append(nds, nd)
	}
	sort.Float64s(nds)
	return nds
}

func guardedCollectThenSort(m map[int64]host) []host {
	var out []host
	for _, h := range m { // if-guarded collect-then-sort: silent
		if h.id >= 0 {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func annotatedAbove(m map[int64]int) int {
	n := 0
	//simvet:ordered — counting entries is order-free
	for range m {
		n++
	}
	return n
}

func annotatedSameLine(m map[int64]int) int {
	best := 0
	for _, v := range m { //simvet:ordered — max is commutative
		if v > best {
			best = v
		}
	}
	return best
}

func sliceRange(xs []int) int {
	n := 0
	for _, v := range xs { // slices iterate in order: silent
		n += v
	}
	return n
}
