// Package walltime is the fixture for the walltime analyzer: wall-clock
// reads and sleeps must be flagged inside simulation code; virtual-time
// arithmetic on time.Duration values stays silent.
package walltime

import "time"

type metrics struct {
	elapsed time.Duration
	stamp   time.Time
}

func step(m *metrics) {
	m.stamp = time.Now()            // want `time\.Now`
	m.elapsed = time.Since(m.stamp) // want `time\.Since`
	time.Sleep(time.Millisecond)    // want `time\.Sleep`
}

func virtualClock(step int, dt time.Duration) time.Duration {
	return time.Duration(step) * dt // duration arithmetic: silent
}

func formatStep(d time.Duration) string {
	return d.Round(time.Millisecond).String() // time constants/methods: silent
}
