// Package floateq is the fixture for the floateq analyzer: raw float
// equality in predicates must be flagged; Eps-tolerant comparisons, the
// NaN self-test idiom, and integer equality stay silent.
package floateq

const eps = 1e-9

func coincide(x, y float64) bool {
	return x == y // want `floating-point == comparison`
}

func distinct(x, y float64) bool {
	return x != y // want `floating-point != comparison`
}

func degenerate(denom float64) bool {
	return denom == 0 // want `floating-point == comparison`
}

func isNaN(x float64) bool {
	return x != x // NaN self-comparison idiom: silent
}

func tolerant(x, y float64) bool {
	d := x - y
	if d < 0 {
		d = -d
	}
	return d <= eps // tolerance compare, not equality: silent
}

func intEq(a, b int) bool {
	return a == b // integers are exact: silent
}
