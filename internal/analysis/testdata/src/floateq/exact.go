// This file stands in for an exact-arithmetic comparison module: every
// operation below is exact in IEEE-754 (sign tests, comparisons of values
// produced without rounding), so raw equality is the correct tool and the
// file opts out of floateq.
//
//simvet:exact — implements exact-arithmetic comparisons
package floateq

func exactSign(x float64) int {
	if x == 0 { // exempt file: silent
		return 0
	}
	if x < 0 {
		return -1
	}
	return 1
}
