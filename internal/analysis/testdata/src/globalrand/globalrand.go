// Package globalrand is the fixture for the globalrand analyzer: draws
// from the process-global math/rand source and package-level rand.Rand
// values must be flagged; deterministic per-shard construction stays
// silent.
package globalrand

import "math/rand"

var sharedRNG = rand.New(rand.NewSource(1)) // want `package-level sharedRNG`

var sharedValue rand.Rand // want `package-level sharedValue`

var seedCounter int64 // a plain package var: silent

func drawGlobal() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global rand source`
}

func permGlobal(n int) []int {
	return rand.Perm(n) // want `rand\.Perm`
}

func reseed() {
	rand.Seed(42) // want `rand\.Seed`
}

func perShard(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors build per-shard state: silent
	return rng.Float64()                  // method on a local generator: silent
}

func fromParam(rng *rand.Rand) int {
	return rng.Intn(10) // method on an owned generator: silent
}
