// Package globalrand is the fixture for the globalrand analyzer: draws
// from the process-global math/rand source and package-level rand.Rand
// values must be flagged; deterministic per-shard construction stays
// silent.
package globalrand

import "math/rand"

var sharedRNG = rand.New(rand.NewSource(1)) // want `package-level sharedRNG`

var sharedValue rand.Rand // want `package-level sharedValue`

var seedCounter int64 // a plain package var: silent

func drawGlobal() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global rand source`
}

func permGlobal(n int) []int {
	return rand.Perm(n) // want `rand\.Perm`
}

func reseed() {
	rand.Seed(42) // want `rand\.Seed`
}

func perShard(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors build per-shard state: silent
	return rng.Float64()                  // method on a local generator: silent
}

func fromParam(rng *rand.Rand) int {
	return rng.Intn(10) // method on an owned generator: silent
}

// The flow-sensitive escape check (shape 3): one generator field reachable
// from two sibling worker closures of the same function.

type shardState struct {
	rng *rand.Rand
	id  int
}

func sharedAcrossClosures(s *shardState, run func(func())) {
	run(func() {
		_ = s.rng.Intn(10) // want `rand field rng \(via s\) is reachable from 2 worker closures`
	})
	run(func() {
		_ = s.rng.Float64() // want `rand field rng`
	})
}

func ownedPerClosure(run func(func())) {
	// Each closure constructs and owns its generator: silent.
	run(func() {
		rng := rand.New(rand.NewSource(1))
		_ = rng.Intn(10)
	})
	run(func() {
		rng := rand.New(rand.NewSource(2))
		_ = rng.Intn(10)
	})
}

func singleClosureFanOut(shards []shardState, spawn func(int, func(int))) {
	// The per-shard fan-out pattern: one literal invoked once per shard,
	// each invocation selecting its own element — silent.
	spawn(len(shards), func(i int) {
		_ = shards[i].rng.Intn(10)
		shards[i].id++
	})
}

func singleClosureUse(s *shardState, run func(func())) {
	// Only one closure reaches the field: silent (ownership transfer into a
	// single worker is the per-shard contract).
	run(func() {
		_ = s.rng.Intn(10)
	})
}

// The cross-function escape (shape 4): the closures never select the field
// themselves — they pass the captured state into a helper whose summary
// says it draws a rand field through that parameter.

func drawShared(s *shardState) int {
	return s.rng.Intn(10) // drawing through an owned parameter: silent here
}

func drawDeep(s *shardState) int {
	return drawShared(s) // one owner per call: silent here
}

func (s *shardState) draw() int {
	return s.rng.Intn(10) // method form of the same: silent here
}

func escapesThroughCall(s *shardState, run func(func())) {
	run(func() {
		_ = drawShared(s) // want `rand field rng \(via s, drawn in drawShared\) is reachable from 2 worker closures`
	})
	run(func() {
		_ = drawDeep(s) // want `rand field rng \(via s, drawn in drawShared\)`
	})
}

func escapesThroughMethod(s *shardState, run func(func())) {
	run(func() {
		_ = s.draw() // want `rand field rng \(via s, drawn in draw\)`
	})
	run(func() {
		_ = s.draw() // want `rand field rng \(via s, drawn in draw\)`
	})
}

func callWithOwnedState(run func(func())) {
	// Each closure builds and passes its own state: silent.
	run(func() {
		s := &shardState{rng: rand.New(rand.NewSource(3))}
		_ = drawShared(s)
	})
	run(func() {
		s := &shardState{rng: rand.New(rand.NewSource(4))}
		_ = drawShared(s)
	})
}
