// Package locksafe is the fixture for the locksafe analyzer: mutexes held
// across blocking operations (conn I/O, channel ops, Wait — directly or
// through a same-package call) and sync primitives copied by value must be
// flagged; released-before-blocking sections, goroutine hand-offs, pointer
// sharing, and //simvet:lockio-reviewed serialization locks stay silent.
package locksafe

import (
	"sync"
	"time"
)

// conn carries the net.Conn method-set shape the analyzer detects
// structurally, so the fixture needs no net import.
type conn struct{}

func (conn) Read(p []byte) (int, error)    { return 0, nil }
func (conn) Write(p []byte) (int, error)   { return len(p), nil }
func (conn) Close() error                  { return nil }
func (conn) LocalAddr() string             { return "" }
func (conn) RemoteAddr() string            { return "" }
func (conn) SetDeadline(t time.Time) error { return nil }

type server struct {
	mu sync.Mutex
	c  conn
	ch chan int
	wg sync.WaitGroup
}

func (s *server) writeHeld(p []byte) {
	s.mu.Lock()
	_, _ = s.c.Write(p) // want `mutex s\.mu \(locked at .*\) is held across net\.Conn Write`
	s.mu.Unlock()
}

func (s *server) deferredHold(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.c.Write(p) // want `is held across net\.Conn Write`
	return err
}

func (s *server) sendHeld(v int) {
	s.mu.Lock()
	s.ch <- v // want `is held across a channel send`
	s.mu.Unlock()
}

func (s *server) waitHeld() {
	s.mu.Lock()
	s.wg.Wait() // want `is held across sync\.WaitGroup\.Wait`
	s.mu.Unlock()
}

// flush blocks on the transport; callers holding a lock across it are the
// cross-function case the summaries exist for.
func (s *server) flush(p []byte) error {
	_, err := s.c.Write(p)
	return err
}

func (s *server) flushHeld(p []byte) {
	s.mu.Lock()
	_ = s.flush(p) // want `is held across a call to flush \(which blocks on net\.Conn Write\)`
	s.mu.Unlock()
}

func (s *server) unlockFirst(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v // lock already released: silent
}

func (s *server) branchRelease(v int, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		s.ch <- v // released on this branch: silent
		return
	}
	s.mu.Unlock()
}

func (s *server) spawnWhileHeld(v int) {
	s.mu.Lock()
	go func() { s.ch <- v }() // runs on another goroutine: silent
	s.mu.Unlock()
}

func (s *server) serialized(p []byte) {
	s.mu.Lock()
	//simvet:lockio — this lock exists precisely to serialize frames onto the conn
	_, _ = s.c.Write(p)
	s.mu.Unlock()
}

// guarded is the value-copy half of the fixture.
type guarded struct {
	mu sync.Mutex
	n  int
}

func copiesParam(g guarded) int { // want `value parameter g copies guarded, which contains sync\.Mutex`
	return g.n
}

func sharesPointer(g *guarded) int { // pointer: silent
	return g.n
}

func (g guarded) valueReceiver() int { // want `value receiver g copies guarded`
	return g.n
}

func copiesAssign(g *guarded) {
	snapshot := *g // want `assignment copies guarded`
	_ = snapshot.n
}

func copiesRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range value g copies guarded`
		total += g.n
	}
	return total
}

func freshValue() *guarded {
	g := guarded{} // a fresh composite literal copies nothing: silent
	return &g
}
