// Package annotation is the fixture for the annotation analyzer. It is
// checked with direct assertions rather than want comments, because a want
// clause cannot share a source line with the comment under test.
package annotation

import "sync"

var mu sync.Mutex

func good() {
	//simvet:ordered — a known key with trailing prose is the canonical form
	mu.Lock()
	mu.Unlock()
}

func typoKey() {
	//simvet:dicard — misspelled key: suppresses nothing
	mu.Lock()
	mu.Unlock()
}

func leadingSpace() {
	// simvet:ordered — space after the slashes makes this inert
	mu.Lock()
	mu.Unlock()
}

func colonSpace() {
	//simvet: ordered
	mu.Lock()
	mu.Unlock()
}
