// Package counteratomic is the fixture for the counteratomic analyzer:
// any plain access to a location that is elsewhere touched through
// sync/atomic must be flagged (the MemPager read-counter bug class);
// consistently-plain and consistently-atomic counters stay silent.
package counteratomic

import "sync/atomic"

type pager struct {
	reads int64
	hits  int64 // only ever touched single-threaded: silent
}

func (p *pager) read() {
	atomic.AddInt64(&p.reads, 1) // the atomic access itself: silent
	p.hits++
}

func (p *pager) stats() int64 {
	return p.reads // want `plain access to reads`
}

func (p *pager) reset() {
	p.reads = 0 // want `plain access to reads`
	p.hits = 0
}

var ops int64

func bump() {
	atomic.AddInt64(&ops, 1)
}

func total() int64 {
	return ops // want `plain access to ops`
}

func loadOps() int64 {
	return atomic.LoadInt64(&ops) // atomic read: silent
}
