package analysis

import (
	"go/ast"
)

// ErrSink flags discarded errors from the serving stack's fallible
// operations. An operation is in scope when it is one of the explicitly
// modeled externals — net.Conn Write/Close/Read, internal/pagestore I/O
// (AppendPage, ReadPage, Sync, Close), internal/wire decoding — or a
// same-package function whose summary marks it an error source: it returns
// an error and transitively performs one of those operations (WSConn.Close
// wraps net.Conn.Close three frames down; discarding its error discards
// the transport's). The wire encoders return plain []byte and are immune
// by construction; the decoders are the untrusted-input edge and their
// errors are the protocol gate.
//
// A discard is: the call as a bare expression statement, a `defer` or `go`
// of the call, or an assignment whose error position is blank. Errors
// assigned to a variable or field, or compared inline, are handled as far
// as this analyzer can see. A reviewed discard — a best-effort close frame
// on an already-failed connection, say — is annotated
//
//	//simvet:discard — <why the error is uninformative here>
//
// on or above the call.
var ErrSink = &Analyzer{
	Name:  "errsink",
	Doc:   "flags discarded errors from net.Conn Write/Close, wire decoding, pagestore I/O, and same-package wrappers of them (//simvet:discard suppresses after review)",
	Scope: ServingPackages,
	Run:   runErrSink,
}

func runErrSink(pass *Pass) error {
	sums := Summarize(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(pass, sums, call)
				}
			case *ast.DeferStmt:
				checkDiscard(pass, sums, n.Call)
			case *ast.GoStmt:
				checkDiscard(pass, sums, n.Call)
			case *ast.AssignStmt:
				checkBlankAssign(pass, sums, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscard reports a call whose entire result list — error included —
// is dropped.
func checkDiscard(pass *Pass, sums *Summaries, call *ast.CallExpr) {
	name, ok := errSourceName(pass, sums, call)
	if !ok || pass.Annotated(call.Pos(), "discard") {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s is silently discarded; handle it or annotate //simvet:discard with the reason it is uninformative here",
		name)
}

// checkBlankAssign reports x, _ := call() / _ = call() shapes where the
// error position lands in a blank identifier.
func checkBlankAssign(pass *Pass, sums *Summaries, assign *ast.AssignStmt) {
	// Only the single-call form can split results across the LHS.
	if len(assign.Rhs) == 1 {
		if call, ok := assign.Rhs[0].(*ast.CallExpr); ok && len(assign.Lhs) >= 1 {
			if isBlank(assign.Lhs[len(assign.Lhs)-1]) {
				checkDiscard(pass, sums, call)
			}
			return
		}
	}
	for i, rhs := range assign.Rhs {
		if i >= len(assign.Lhs) || !isBlank(assign.Lhs[i]) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			checkDiscard(pass, sums, call)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// errSourceName classifies a call as an error source: an explicitly
// modeled external, or a same-package function summarized as wrapping one.
// The call must actually return an error in its final result.
func errSourceName(pass *Pass, sums *Summaries, call *ast.CallExpr) (string, bool) {
	if name, ok := externalErrSource(pass, call); ok {
		return name, true
	}
	callee := staticCallee(pass, call)
	if callee == nil || !lastResultIsError(callee) {
		return "", false
	}
	if fs := sums.ForFunc(callee); fs != nil && fs.ErrSource {
		return callee.Name(), true
	}
	return "", false
}
