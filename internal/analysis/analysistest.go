package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// This file is a small reimplementation of the
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library: fixture packages live under testdata/, and every line that must
// produce a diagnostic carries a trailing comment of the form
//
//	// want "regexp"
//	// want `regexp`
//	// want "first" "second"      (two diagnostics expected on the line)
//
// RunWant loads the fixture, runs the analyzer, and fails the test when a
// diagnostic has no matching want clause on its line or a want clause goes
// unmatched. Lines without a want comment must stay silent, so fixtures
// double as negative tests — in particular the //simvet:ordered and
// //simvet:exact allowlist annotations are exercised by fixture lines that
// would be findings without them.

// TB is the subset of *testing.T the harness needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunWant runs a over the fixture package in dir (a directory of Go files
// under testdata) and checks its diagnostics against the fixture's want
// comments. It returns the diagnostics for additional assertions.
func RunWant(t TB, a *Analyzer, dir string) []Diagnostic {
	t.Helper()
	loader := NewLoader()
	pkg, err := loader.Load(dir, "testdata/"+filepath.Base(dir))
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s contains no Go files", dir)
	}
	diags, err := Run(a, pkg)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}

	wants, err := parseWants(loader.Fset, pkg)
	if err != nil {
		t.Fatalf("parse want comments in %s: %v", dir, err)
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: %s:%d: no diagnostic matched want %q",
				a.Name, w.file, w.line, w.re)
		}
	}
	return diags
}

type wantClause struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantPattern pulls the quoted regexps off a want comment.
var wantPattern = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseWants(fset *token.FileSet, pkg *Package) ([]wantClause, error) {
	var wants []wantClause
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantPattern.FindAllString(rest, -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s: want comment with no quoted pattern", pos)
				}
				for _, q := range quoted {
					pat := q[1 : len(q)-1]
					if q[0] == '"' {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, wantClause{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// Fixture returns the path of a named fixture directory under testdata,
// failing the test if it does not exist.
func Fixture(t TB, elems ...string) string {
	t.Helper()
	dir := filepath.Join(append([]string{"testdata", "src"}, elems...)...)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	return dir
}
