package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the cross-function core the v2 analyzers (locksafe, goleak,
// errsink, and globalrand's escape check) share: a per-package call graph
// plus a summary of each function's concurrency-relevant behavior, computed
// bottom-up over the same AST+types representation the single-function
// analyzers use. Summaries start from direct facts (blocking operations
// performed, loops with no exit, termination signals referenced, error
// sources called, rand fields drawn through parameters, static callees) and
// close over the call graph with a worklist fixpoint, so an analyzer asking
// "may this call block?" or "does this goroutine body ever terminate?" sees
// through any depth of same-package calls. Cross-package calls are opaque
// except for the explicitly modeled externals (net.Conn-shaped I/O, sync
// primitives, io copy helpers, time.Sleep) — a deliberate approximation:
// each package is audited with its own summaries, and the externals cover
// the boundaries that matter for the serving stack.

// A BlockSite is one potentially blocking operation, with a description
// suitable for diagnostics ("net.Conn Write", "a channel receive", ...).
type BlockSite struct {
	Pos  token.Pos
	What string
}

// A FuncSummary describes one function declaration of the package under
// analysis. Direct fields are filled by a single AST walk; the closed
// fields additionally account for everything reachable through
// same-package calls.
type FuncSummary struct {
	Obj  *types.Func
	Decl *ast.FuncDecl

	// Blocking lists the blocking operations the body performs directly
	// (outside nested function literals), in source order.
	Blocking []BlockSite

	// Calls lists the distinct same-package functions and methods the body
	// invokes (including inside function literals), in source order.
	Calls []*types.Func

	// MayBlock is the closed blocking fact: a direct blocking operation or
	// a call to a same-package function that may block. BlockDesc describes
	// the first blocking path found, for diagnostics.
	MayBlock  bool
	BlockDesc string

	// LoopsForever marks a body containing a `for` with no condition and no
	// reachable exit (no return, no break out of the loop, no panic), or a
	// call to a same-package function that loops forever.
	LoopsForever bool

	// TermSignal marks a body that references a termination mechanism — a
	// context.Context value, any channel operation (receive, send, close,
	// select, range), or sync.WaitGroup.Done — directly or through a
	// same-package call.
	TermSignal bool

	// ErrSource marks a function whose error result derives from an
	// explicitly modeled fallible operation (net.Conn Write/Close/Read,
	// pagestore I/O, wire decoding): it returns an error and performs, or
	// transitively calls something that performs, such an operation.
	// Discarding the error of an ErrSource call is what errsink reports.
	ErrSource    bool
	returnsError bool
	directSource bool

	// RandFields maps a parameter (or method receiver) to the math/rand
	// Rand-typed fields drawn through it, directly or via same-package
	// calls. randVia names the callee a field was first reached through,
	// for diagnostics ("drawn in drawShared").
	RandFields map[*types.Var]map[types.Object]bool
	randVia    map[*types.Var]map[types.Object]string

	// randEdges records call sites whose argument is rooted at one of this
	// function's parameters, for the bottom-up RandFields propagation.
	randEdges []randEdge
}

// A randEdge is one call site passing a caller parameter into a callee
// parameter: if the callee draws rand fields through its parameter, the
// caller does too.
type randEdge struct {
	callee    *types.Func
	calleeVar *types.Var
	callerVar *types.Var
}

// Summaries is the per-package summary table.
type Summaries struct {
	pass *Pass
	list []*FuncSummary // declaration order, for deterministic fixpoints
	byFn map[*types.Func]*FuncSummary
}

// Summarize builds and closes the summary table for the package under
// analysis.
func Summarize(pass *Pass) *Summaries {
	s := &Summaries{pass: pass, byFn: make(map[*types.Func]*FuncSummary)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fs := &FuncSummary{
				Obj:        obj,
				Decl:       fd,
				RandFields: make(map[*types.Var]map[types.Object]bool),
				randVia:    make(map[*types.Var]map[types.Object]string),
			}
			s.collectDirect(fs)
			s.list = append(s.list, fs)
			s.byFn[obj] = fs
		}
	}
	s.propagate()
	return s
}

// ForFunc returns the summary of a same-package function, or nil.
func (s *Summaries) ForFunc(obj *types.Func) *FuncSummary {
	if obj == nil {
		return nil
	}
	return s.byFn[obj]
}

// collectDirect fills fs's direct facts from its body.
func (s *Summaries) collectDirect(fs *FuncSummary) {
	pass := s.pass
	params := paramVars(pass, fs.Decl)
	seenCall := make(map[*types.Func]bool)

	// Blocking operations and loop shape are properties of the function's
	// own execution, so nested literals are excluded from them; calls,
	// termination signals, and rand flows are collected everywhere, since
	// they describe what the function's code can reach.
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			if lit, ok := m.(*ast.FuncLit); ok {
				walk(lit.Body, true)
				return false
			}
			if !inLit {
				if site, ok := directBlocking(pass, m); ok {
					fs.Blocking = append(fs.Blocking, site)
				}
				if loop, ok := m.(*ast.ForStmt); ok && loopsForever(loop) {
					fs.LoopsForever = true
				}
			}
			if isTermSignal(pass, m) {
				fs.TermSignal = true
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if callee := staticCallee(pass, call); callee != nil {
					if callee.Pkg() == pass.Pkg && !seenCall[callee] {
						seenCall[callee] = true
						fs.Calls = append(fs.Calls, callee)
					}
					s.recordRandEdges(fs, params, call, callee)
				}
				if _, ok := externalErrSource(pass, call); ok {
					fs.directSource = true
				}
			}
			if sel, ok := m.(*ast.SelectorExpr); ok {
				s.recordRandSelection(fs, params, sel)
			}
			return true
		})
	}
	walk(fs.Decl.Body, false)

	sig := fs.Obj.Type().(*types.Signature)
	if res := sig.Results(); res.Len() > 0 {
		fs.returnsError = isErrorType(res.At(res.Len() - 1).Type())
	}
	if fs.directSource && fs.returnsError {
		fs.ErrSource = true
	}
	if len(fs.Blocking) > 0 {
		fs.MayBlock = true
		fs.BlockDesc = fs.Blocking[0].What
	}
}

// recordRandSelection marks a rand-typed field selection rooted at one of
// the function's parameters.
func (s *Summaries) recordRandSelection(fs *FuncSummary, params map[types.Object]*types.Var, sel *ast.SelectorExpr) {
	info, ok := s.pass.TypesInfo.Selections[sel]
	if !ok || info.Kind() != types.FieldVal || !isRandType(info.Obj().Type()) {
		return
	}
	root := rootIdent(sel.X)
	if root == nil {
		return
	}
	if p, ok := params[s.pass.TypesInfo.Uses[root]]; ok {
		addRandField(fs, p, info.Obj(), "")
	}
}

// recordRandEdges records the parameter-to-parameter flows of one call site
// (receiver included), feeding the RandFields fixpoint.
func (s *Summaries) recordRandEdges(fs *FuncSummary, params map[types.Object]*types.Var, call *ast.CallExpr, callee *types.Func) {
	if callee.Pkg() != s.pass.Pkg {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	bind := func(arg ast.Expr, calleeVar *types.Var) {
		root := rootIdent(arg)
		if root == nil || calleeVar == nil {
			return
		}
		if p, ok := params[s.pass.TypesInfo.Uses[root]]; ok {
			fs.randEdges = append(fs.randEdges, randEdge{callee: callee, calleeVar: calleeVar, callerVar: p})
		}
	}
	if recv := sig.Recv(); recv != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			bind(sel.X, recv)
		}
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break // variadic tail beyond the declared slice parameter
		}
		bind(arg, sig.Params().At(i))
	}
}

func addRandField(fs *FuncSummary, p *types.Var, field types.Object, via string) bool {
	fields := fs.RandFields[p]
	if fields == nil {
		fields = make(map[types.Object]bool)
		fs.RandFields[p] = fields
		fs.randVia[p] = make(map[types.Object]string)
	}
	if fields[field] {
		return false
	}
	fields[field] = true
	fs.randVia[p][field] = via
	return true
}

// RandVia names the same-package callee through which fs first reaches
// field from p ("" when the draw is in fs's own body).
func (fs *FuncSummary) RandVia(p *types.Var, field types.Object) string {
	if via, ok := fs.randVia[p]; ok {
		return via[field]
	}
	return ""
}

// propagate closes the direct facts over the call graph with a worklist
// fixpoint. Iteration is over the declaration-ordered list so the
// diagnostics derived from BlockDesc/randVia are deterministic.
func (s *Summaries) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fs := range s.list {
			for _, callee := range fs.Calls {
				cs := s.byFn[callee]
				if cs == nil {
					continue
				}
				if cs.MayBlock && !fs.MayBlock {
					fs.MayBlock = true
					fs.BlockDesc = fmt.Sprintf("%s (which blocks on %s)", callee.Name(), cs.BlockDesc)
					changed = true
				}
				if cs.LoopsForever && !fs.LoopsForever {
					fs.LoopsForever = true
					changed = true
				}
				if cs.TermSignal && !fs.TermSignal {
					fs.TermSignal = true
					changed = true
				}
				if cs.ErrSource && fs.returnsError && !fs.ErrSource {
					fs.ErrSource = true
					changed = true
				}
			}
			for _, e := range fs.randEdges {
				cs := s.byFn[e.callee]
				if cs == nil {
					continue
				}
				for field := range cs.RandFields[e.calleeVar] {
					if addRandField(fs, e.callerVar, field, e.callee.Name()) {
						changed = true
					}
				}
			}
		}
	}
}

// SpawnFacts resolves the function a `go` statement spawns and returns its
// closed termination facts. known is false when the spawned function cannot
// be resolved (external call, method value, dynamic function).
func (s *Summaries) SpawnFacts(call *ast.CallExpr) (loopsForever, termSignal, known bool) {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return s.litFacts(fun), litTermSignal(s, fun), true
	default:
		_ = fun
	}
	if fs := s.ForFunc(staticCallee(s.pass, call)); fs != nil {
		return fs.LoopsForever, fs.TermSignal, true
	}
	return false, false, false
}

// litFacts reports whether a function literal's body loops forever, merging
// the closed summaries of the same-package functions it calls.
func (s *Summaries) litFacts(lit *ast.FuncLit) bool {
	loops := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if loop, ok := n.(*ast.ForStmt); ok && loopsForever(loop) {
			loops = true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fs := s.ForFunc(staticCallee(s.pass, call)); fs != nil && fs.LoopsForever {
				loops = true
			}
		}
		return !loops
	})
	return loops
}

// litTermSignal reports whether a termination signal reaches the literal's
// body, directly or through same-package calls.
func litTermSignal(s *Summaries, lit *ast.FuncLit) bool {
	term := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if isTermSignal(s.pass, n) {
			term = true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fs := s.ForFunc(staticCallee(s.pass, call)); fs != nil && fs.TermSignal {
				term = true
			}
		}
		return !term
	})
	return term
}

// BlockingIn scans a statement or expression subtree (excluding nested
// function literals and `go` statements, which execute elsewhere) for the
// first blocking operation — direct, or a call to a same-package function
// that may block.
func (s *Summaries) BlockingIn(n ast.Node) (BlockSite, bool) {
	var site BlockSite
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		if bs, ok := directBlocking(s.pass, m); ok {
			site, found = bs, true
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if fs := s.ForFunc(staticCallee(s.pass, call)); fs != nil && fs.MayBlock {
				site = BlockSite{Pos: call.Pos(), What: fmt.Sprintf("a call to %s (which blocks on %s)", fs.Obj.Name(), fs.BlockDesc)}
				found = true
				return false
			}
		}
		return true
	})
	return site, found
}

// directBlocking classifies one AST node as a directly blocking operation.
func directBlocking(pass *Pass, n ast.Node) (BlockSite, bool) {
	switch n := n.(type) {
	case *ast.SendStmt:
		return BlockSite{Pos: n.Pos(), What: "a channel send"}, true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return BlockSite{Pos: n.Pos(), What: "a channel receive"}, true
		}
	case *ast.RangeStmt:
		if tv, ok := pass.TypesInfo.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return BlockSite{Pos: n.Pos(), What: "a channel range"}, true
			}
		}
	case *ast.SelectStmt:
		for _, clause := range n.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				return BlockSite{}, false // a default clause makes the select non-blocking
			}
		}
		return BlockSite{Pos: n.Pos(), What: "a select with no default"}, true
	case *ast.CallExpr:
		sel, ok := n.Fun.(*ast.SelectorExpr)
		if !ok {
			return BlockSite{}, false
		}
		if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				if obj.Name() == "Wait" {
					return BlockSite{Pos: n.Pos(), What: "sync." + recvTypeName(obj) + ".Wait"}, true
				}
			case "time":
				if obj.Name() == "Sleep" {
					return BlockSite{Pos: n.Pos(), What: "time.Sleep"}, true
				}
			case "io":
				switch obj.Name() {
				case "ReadFull", "ReadAll", "Copy", "CopyN":
					return BlockSite{Pos: n.Pos(), What: "io." + obj.Name()}, true
				}
			}
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isConnLike(tv.Type) {
			switch sel.Sel.Name {
			case "Read", "Write":
				return BlockSite{Pos: n.Pos(), What: "net.Conn " + sel.Sel.Name}, true
			}
		}
	}
	return BlockSite{}, false
}

// isTermSignal reports whether n references a goroutine termination
// mechanism: a context.Context value, any channel operation, or
// sync.WaitGroup.Done.
func isTermSignal(pass *Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[n]; obj != nil && isContextType(obj.Type()) {
			return true
		}
	case *ast.SendStmt, *ast.SelectStmt:
		return true
	case *ast.UnaryExpr:
		return n.Op == token.ARROW
	case *ast.RangeStmt:
		if tv, ok := pass.TypesInfo.Types[n.X]; ok {
			_, isChan := tv.Type.Underlying().(*types.Chan)
			return isChan
		}
	case *ast.CallExpr:
		if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
			if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
				obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Done" {
				return true
			}
		}
	}
	return false
}

// loopsForever reports a `for` statement with no condition and no exit path
// in its body: no return, no break that targets it, no goto, no panic.
func loopsForever(loop *ast.ForStmt) bool {
	if loop.Cond != nil {
		return false
	}
	exit := false
	var walk func(n ast.Node, plainBreakExits bool)
	walk = func(n ast.Node, plainBreakExits bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if exit || m == nil || m == n {
				return !exit
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // its returns/breaks don't exit this loop
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				walk(m, false) // plain break now targets the inner statement
				return false
			case *ast.ReturnStmt:
				exit = true
			case *ast.BranchStmt:
				switch m.Tok {
				case token.GOTO:
					exit = true
				case token.BREAK:
					if m.Label != nil || plainBreakExits {
						exit = true
					}
				}
			case *ast.CallExpr:
				if isAbortCall(m) {
					exit = true
				}
			}
			return !exit
		})
	}
	walk(loop.Body, true)
	return !exit
}

// isAbortCall recognizes panic and os.Exit-style calls as loop exits.
func isAbortCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return (pkg.Name == "os" && fun.Sel.Name == "Exit") ||
				(pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"))
		}
	}
	return false
}

// externalErrSource classifies a call to an explicitly modeled fallible
// operation outside the package: net.Conn Write/Close/Read, pagestore I/O,
// and wire decoding. Returns a short name for diagnostics.
func externalErrSource(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
		path := obj.Pkg().Path()
		if isPkgPath(path, "internal/pagestore") && lastResultIsError(obj) {
			return "pagestore." + recvTypeName(obj) + "." + obj.Name(), true
		}
		if isPkgPath(path, "internal/wire") && lastResultIsError(obj) {
			return "wire." + obj.Name(), true
		}
	}
	if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isConnLike(tv.Type) {
		switch sel.Sel.Name {
		case "Read", "Write", "Close":
			return "net.Conn " + sel.Sel.Name, true
		}
	}
	return "", false
}

// isPkgPath matches an import path against a repo-internal package,
// accepting both the canonical module path and any module prefix.
func isPkgPath(path, internal string) bool {
	return path == "repro/"+internal || strings.HasSuffix(path, "/"+internal)
}

// staticCallee resolves the *types.Func a call statically invokes (package
// function or method), or nil for dynamic/builtin calls.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// paramVars collects the parameter and receiver objects of a declaration,
// keyed by themselves for capture checks.
func paramVars(pass *Pass, fd *ast.FuncDecl) map[types.Object]*types.Var {
	out := make(map[types.Object]*types.Var)
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					out[v] = v
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

// connMethodNames is the method-set shape identifying a net.Conn-like type.
// Matching is structural by name so analyzers (and their fixtures) need not
// import net: the six names below are the net.Conn interface minus the
// deadline setters' signatures, and exclude os.File (no Local/RemoteAddr).
var connMethodNames = []string{"Read", "Write", "Close", "LocalAddr", "RemoteAddr", "SetDeadline"}

// isConnLike reports whether t's method set carries the net.Conn shape.
func isConnLike(t types.Type) bool {
	if t == nil {
		return false
	}
	for _, name := range connMethodNames {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if _, ok := obj.(*types.Func); !ok {
			return false
		}
	}
	return true
}

// recvTypeName names a method's receiver type ("" for package functions).
func recvTypeName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// lastResultIsError reports whether obj's final result is of type error.
func lastResultIsError(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return isErrorType(sig.Results().At(sig.Results().Len() - 1).Type())
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// typeContainsSync reports whether a value of type t embeds (by value) a
// sync or sync/atomic primitive, and names the first one found. Pointers
// and interfaces are fine — sharing by pointer is the contract this check
// enforces.
func typeContainsSync(t types.Type) (string, bool) {
	return containsSync(t, make(map[types.Type]bool))
}

func containsSync(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				return obj.Pkg().Name() + "." + obj.Name(), true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := containsSync(u.Field(i).Type(), seen); ok {
				return name, ok
			}
		}
	case *types.Array:
		return containsSync(u.Elem(), seen)
	}
	return "", false
}
