package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map inside the deterministic packages. Go
// randomizes map iteration order per run, so any map range whose effect
// depends on visit order makes simulation output differ between otherwise
// identical runs — the exact class of bug the CI byte-diff gate exists to
// catch, surfaced here at lint time instead.
//
// Two shapes are recognized as safe and not reported:
//
//  1. Collect-then-sort: every statement in the loop body appends to local
//     slices (guards via if/continue are fine), and each such slice is
//     passed to a sort.* or slices.Sort* call later in the same function.
//     The sort erases the iteration order, provided its comparator is a
//     total order — ties broken nondeterministically are still a bug, which
//     is why comparators over map-derived slices must break ties on a
//     unique key.
//
//  2. An explicit `//simvet:ordered` annotation on the range statement (or
//     the line above it), declaring the iteration order-insensitive after
//     human review — e.g. independent per-entry mutation, or a
//     commutative integer reduction.
var MapOrder = &Analyzer{
	Name:  "maporder",
	Doc:   "flags range over a map in deterministic packages unless the iteration provably feeds a sort or carries a //simvet:ordered review annotation",
	Scope: DeterministicPackages,
	Run:   runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, _ := decl.(*ast.FuncDecl) // nil for non-func decls: no sort exemption there
			ast.Inspect(decl, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if pass.Annotated(rng.Pos(), "ordered") {
					return true
				}
				if feedsSort(pass, rng, fn) {
					return true
				}
				pass.Reportf(rng.Pos(),
					"range over map %s in a deterministic package: iteration order is randomized; sort the keys, use a slice-backed structure, or annotate //simvet:ordered after review",
					typeString(pass, rng.X))
				return true
			})
		}
	}
	return nil
}

func typeString(pass *Pass, e ast.Expr) string {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return types.TypeString(tv.Type, types.RelativeTo(pass.Pkg))
	}
	return "<unknown>"
}

// feedsSort reports whether rng is a collect-then-sort loop: its body only
// appends to local slices (possibly under if-guards), and every appended
// slice is sorted later in fn.
func feedsSort(pass *Pass, rng *ast.RangeStmt, fn *ast.FuncDecl) bool {
	if fn == nil || fn.Body == nil {
		return false
	}
	appended := make(map[types.Object]bool)
	if !collectOnlyAppends(pass, rng.Body.List, appended) || len(appended) == 0 {
		return false
	}
	for obj := range appended {
		if !sortedAfter(pass, fn, rng.End(), obj) {
			return false
		}
	}
	return true
}

// collectOnlyAppends walks loop-body statements and records the local slice
// variables they append to. It returns false if any statement could leak
// iteration order some other way.
func collectOnlyAppends(pass *Pass, stmts []ast.Stmt, appended map[types.Object]bool) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			// Only the canonical x = append(x, ...) form qualifies.
			if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || fun.Name != "append" || len(call.Args) < 2 || call.Ellipsis.IsValid() {
				return false
			}
			arg0, ok := call.Args[0].(*ast.Ident)
			if !ok || arg0.Name != lhs.Name {
				return false
			}
			obj := pass.TypesInfo.Uses[lhs]
			if obj == nil {
				obj = pass.TypesInfo.Defs[lhs]
			}
			if obj == nil {
				return false
			}
			appended[obj] = true
		case *ast.IfStmt:
			if s.Init != nil {
				if _, ok := s.Init.(*ast.AssignStmt); !ok {
					return false
				}
			}
			if !collectOnlyAppends(pass, s.Body.List, appended) {
				return false
			}
			if s.Else != nil {
				block, ok := s.Else.(*ast.BlockStmt)
				if !ok || !collectOnlyAppends(pass, block.List, appended) {
					return false
				}
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortedAfter reports whether obj is the subject of a sort.*/slices.Sort*
// call positioned after pos inside fn.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
