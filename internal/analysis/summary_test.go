package analysis

import (
	"go/types"
	"testing"
)

// The summary layer's correctness rests on two things the rest of the suite
// only assumes: that Signature parameter objects and Defs entries for the
// parameter identifiers are the same *types.Var (the RandFields maps and
// randEdges are keyed on that identity), and that the fixpoint actually
// closes blocking/loop/error facts over same-package calls. Both are pinned
// here against the analyzer fixtures.

func loadFixturePkg(t *testing.T, name string) *Package {
	t.Helper()
	loader := NewLoader()
	pkg, err := loader.Load("testdata/src/"+name, "testdata/"+name)
	if err != nil {
		t.Fatalf("load %s fixture: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("%s fixture has no Go files", name)
	}
	return pkg
}

func summaryOf(t *testing.T, sums *Summaries, name string) *FuncSummary {
	t.Helper()
	for _, fs := range sums.list {
		if fs.Obj.Name() == name {
			return fs
		}
	}
	t.Fatalf("no summary for %s", name)
	return nil
}

func TestParamIdentity(t *testing.T) {
	pkg := loadFixturePkg(t, "errsink")
	pass := NewPass(ErrSink, pkg)
	sums := Summarize(pass)
	fs := summaryOf(t, sums, "sendFrame")

	sig := fs.Obj.Type().(*types.Signature)
	params := paramVars(pass, fs.Decl)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if params[p] == nil {
			t.Errorf("Signature.Params().At(%d) = %v is not the Defs object of its identifier; summary keying is broken", i, p)
		}
	}
}

func TestSummaryErrAndBlockFacts(t *testing.T) {
	pkg := loadFixturePkg(t, "errsink")
	sums := Summarize(NewPass(ErrSink, pkg))

	send := summaryOf(t, sums, "sendFrame")
	if !send.ErrSource {
		t.Error("sendFrame wraps conn.Write and returns its error; want ErrSource")
	}
	if !send.MayBlock || send.BlockDesc != "net.Conn Write" {
		t.Errorf("sendFrame MayBlock=%v BlockDesc=%q, want true/net.Conn Write", send.MayBlock, send.BlockDesc)
	}
	if fire := summaryOf(t, sums, "fire"); fire.ErrSource || fire.MayBlock {
		t.Error("fire does nothing; want no ErrSource, no MayBlock")
	}
}

func TestSummaryLoopFixpoint(t *testing.T) {
	pkg := loadFixturePkg(t, "goleak")
	sums := Summarize(NewPass(GoLeak, pkg))

	if spin := summaryOf(t, sums, "spinForever"); !spin.LoopsForever {
		t.Error("spinForever: want LoopsForever")
	}
	// runLoop loops only through its call to spinForever — the closed fact.
	if run := summaryOf(t, sums, "runLoop"); !run.LoopsForever {
		t.Error("runLoop reaches spinForever; want LoopsForever via fixpoint")
	}
	if w := summaryOf(t, sums, "work"); w.LoopsForever {
		t.Error("work is straight-line; want !LoopsForever")
	}
}

func TestSummaryRandFlow(t *testing.T) {
	pkg := loadFixturePkg(t, "globalrand")
	pass := NewPass(GlobalRand, pkg)
	sums := Summarize(pass)

	draw := summaryOf(t, sums, "drawShared")
	p := draw.Obj.Type().(*types.Signature).Params().At(0)
	if len(draw.RandFields[p]) != 1 {
		t.Fatalf("drawShared: want exactly one rand field drawn through its parameter, got %v", draw.RandFields[p])
	}
	var field types.Object
	for f := range draw.RandFields[p] {
		field = f
	}
	if field.Name() != "rng" {
		t.Errorf("drawShared draws field %q, want rng", field.Name())
	}
	if via := draw.RandVia(p, field); via != "" {
		t.Errorf("drawShared draws directly; RandVia = %q, want empty", via)
	}

	// drawDeep reaches the field only through drawShared — the propagated
	// edge must carry both the field and the mediating callee's name.
	deep := summaryOf(t, sums, "drawDeep")
	dp := deep.Obj.Type().(*types.Signature).Params().At(0)
	if !deep.RandFields[dp][field] {
		t.Fatal("drawDeep: rand field must propagate through the call to drawShared")
	}
	if via := deep.RandVia(dp, field); via != "drawShared" {
		t.Errorf("drawDeep RandVia = %q, want drawShared", via)
	}
}
