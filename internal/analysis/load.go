package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one directory of non-test Go files, parsed and type-checked,
// ready for analyzers to consume.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// A Loader parses and type-checks package directories. It shares one
// FileSet and one source importer across loads, so the (expensive)
// from-source type-checking of the standard library happens once per
// process, not once per package.
type Loader struct {
	Fset     *token.FileSet
	importer types.Importer
}

// NewLoader returns a Loader backed by the standard library's from-source
// importer, which resolves std imports under GOROOT directly and module
// imports through the go command — no compiled export data or third-party
// packages-loading machinery required.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		importer: importer.ForCompiler(fset, "source", nil),
	}
}

// Load parses the non-test Go files of dir and type-checks them as the
// package importPath. Directories with no buildable Go files return
// (nil, nil).
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.importer}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", importPath, err)
	}
	return &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// ModulePackages walks the module rooted at root (the directory holding
// go.mod) and returns the directory and import path of every buildable
// package, in lexical order. testdata, vendor, hidden, and underscore
// directories are skipped, matching the go tool's ./... expansion.
func ModulePackages(root string) (dirs, importPaths []string, err error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		dirs = append(dirs, path)
		importPaths = append(importPaths, ip)
		return nil
	})
	return dirs, importPaths, err
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if e.Type().IsRegular() && strings.HasSuffix(e.Name(), ".go") &&
			!strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}
