// Package analysis is simvet's determinism-and-concurrency lint suite: a
// set of static analyzers that encode this repository's reproducibility
// invariants (ordered iteration, per-shard RNGs, virtual step time, exact
// float comparisons only where proven safe, atomic counter discipline) so
// violations are caught at lint time, before they ever reach the CI
// byte-diff determinism gate.
//
// The types here deliberately mirror golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, pass.Reportf) but are implemented on the
// standard library alone — this module has no third-party dependencies, and
// the build environment forbids adding any. If the x/tools dependency ever
// becomes available, each analyzer's Run function ports mechanically: the
// Pass surface used here is a strict subset of the x/tools one, plus the
// Scope field (x/tools drivers express package scoping outside the
// analyzer; our driver reads it from the Analyzer itself).
//
// The v2 layer (summary.go) adds a per-package call graph with bottom-up
// function summaries — blocking behavior, loop shape, termination signals,
// error sources, rand-field flows — shared by the cross-function analyzers:
// locksafe (mutex held across a blocking call; sync types copied by value),
// goleak (goroutine spawned with no reachable termination path), errsink
// (discarded errors from conn/wire/pagestore operations and their
// same-package wrappers), and globalrand's closure-escape check. The
// annotation analyzer audits the suppression comments themselves.
//
// Suppression annotations: a comment of the form
//
//	//simvet:ordered
//
// on the same line as a statement, or alone on the line immediately above
// it, marks that statement as reviewed-and-safe for the maporder analyzer
// (the iteration feeds an order-insensitive sink). A file whose comments
// contain
//
//	//simvet:exact
//
// declares that the file implements exact-arithmetic float comparisons and
// is exempt from floateq. The serving-layer analyzers add three more
// statement-level keys:
//
//	//simvet:discard  — errsink: this error is uninformative here (say why)
//	//simvet:lockio   — locksafe: this lock deliberately serializes this I/O
//	//simvet:detached — goleak: this goroutine intentionally runs to exit
//
// Annotations are deliberately narrow: each one names the analyzer class it
// silences, so a grep for "simvet:" enumerates every reviewed exception in
// the tree, and the annotation analyzer rejects any key outside
// KnownAnnotationKeys — a typo'd suppression fails the lint instead of
// silently suppressing nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one simvet check.
type Analyzer struct {
	// Name is the analyzer's short identifier, used in diagnostics and by
	// the -only driver flag.
	Name string

	// Doc describes what the analyzer reports and why it matters for the
	// simulation's determinism contract.
	Doc string

	// Scope lists import-path prefixes the driver restricts this analyzer
	// to. An empty Scope means every package. The analysistest harness
	// ignores Scope so fixtures exercise the analyzer directly.
	Scope []string

	// Run executes the check over one package and reports findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// AppliesTo reports whether the driver should run a on the package with the
// given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, prefix := range a.Scope {
		if pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/") {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass provides one analyzer run with a type-checked package and collects
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// annotations maps file name -> source line -> the set of //simvet:
	// annotation keys present on that line.
	annotations map[string]map[int][]string

	diagnostics []Diagnostic
}

// NewPass builds a Pass for a over the loaded package, indexing its
// //simvet: annotations.
func NewPass(a *Analyzer, pkg *Package) *Pass {
	p := &Pass{
		Analyzer:    a,
		Fset:        pkg.Fset,
		Files:       pkg.Files,
		Pkg:         pkg.Types,
		TypesInfo:   pkg.Info,
		annotations: make(map[string]map[int][]string),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				key, ok := annotationKey(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.annotations[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					p.annotations[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], key)
			}
		}
	}
	return p
}

// annotationKey extracts the key of a //simvet:<key> comment. Trailing
// prose after the key ("//simvet:ordered — summing is commutative") is
// allowed and encouraged.
func annotationKey(comment string) (string, bool) {
	text := strings.TrimPrefix(comment, "//")
	if !strings.HasPrefix(text, "simvet:") {
		return "", false
	}
	key := strings.TrimPrefix(text, "simvet:")
	if i := strings.IndexFunc(key, func(r rune) bool {
		return !('a' <= r && r <= 'z')
	}); i >= 0 {
		key = key[:i]
	}
	return key, key != ""
}

// Annotated reports whether the statement at pos carries the given
// //simvet:<key> annotation — either trailing on the same line or alone on
// the line directly above.
func (p *Pass) Annotated(pos token.Pos, key string) bool {
	position := p.Fset.Position(pos)
	lines := p.annotations[position.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, k := range lines[line] {
			if k == key {
				return true
			}
		}
	}
	return false
}

// FileExempt reports whether the file containing pos carries a
// //simvet:<key> annotation anywhere (file-level opt-out, used by floateq
// for exact-arithmetic files).
func (p *Pass) FileExempt(pos token.Pos, key string) bool {
	filename := p.Fset.Position(pos).Filename
	for _, keys := range p.annotations[filename] {
		for _, k := range keys {
			if k == key {
				return true
			}
		}
	}
	return false
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	ds := append([]Diagnostic(nil), p.diagnostics...)
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return ds
}

// Run executes a over the loaded package and returns its sorted findings.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := NewPass(a, pkg)
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	return pass.Diagnostics(), nil
}

// Analyzers lists the full simvet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		GlobalRand,
		WallTime,
		FloatEq,
		CounterAtomic,
		LockSafe,
		GoLeak,
		ErrSink,
		Annotation,
	}
}

// DeterministicPackages are the import-path prefixes whose execution must
// be bit-identical for any worker count: the simulator and everything on
// its query path. maporder and globalrand confine themselves to these;
// walltime uses the narrower simulation-and-metrics subset.
var DeterministicPackages = []string{
	"repro/internal/sim",
	"repro/internal/experiments",
	"repro/internal/core",
	"repro/internal/client",
	"repro/internal/rtree",
	"repro/internal/spatialnet",
	"repro/internal/pagestore",
}

// ServingPackages are the import-path prefixes the cross-function
// concurrency analyzers (locksafe, goleak, errsink) run over: the network
// serving stack, the simulator it drives, the wire protocol, and the
// command binaries that tie them together. These are the packages where a
// wedged peer or a leaked goroutine is a cross-connection outage rather
// than a local bug.
var ServingPackages = []string{
	"repro/internal/serve",
	"repro/internal/sim",
	"repro/internal/client",
	"repro/internal/wire",
	"repro/cmd",
}
