package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// Each analyzer is exercised against its fixture package: every want
// comment must be matched by a diagnostic and every diagnostic must match
// a want comment, so the fixtures' unannotated-safe lines (collect-then-
// sort loops, //simvet:ordered and //simvet:exact allowlist annotations,
// constructors, NaN idioms, plain counters) double as negative cases.

func TestMapOrderFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.MapOrder, analysis.Fixture(t, "maporder"))
	if len(diags) != 2 {
		t.Errorf("maporder: got %d diagnostics, want 2", len(diags))
	}
}

func TestGlobalRandFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.GlobalRand, analysis.Fixture(t, "globalrand"))
	if len(diags) != 7 {
		t.Errorf("globalrand: got %d diagnostics, want 7", len(diags))
	}
}

func TestWallTimeFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.WallTime, analysis.Fixture(t, "walltime"))
	if len(diags) != 3 {
		t.Errorf("walltime: got %d diagnostics, want 3", len(diags))
	}
}

func TestFloatEqFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.FloatEq, analysis.Fixture(t, "floateq"))
	if len(diags) != 3 {
		t.Errorf("floateq: got %d diagnostics, want 3", len(diags))
	}
}

func TestCounterAtomicFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.CounterAtomic, analysis.Fixture(t, "counteratomic"))
	if len(diags) != 3 {
		t.Errorf("counteratomic: got %d diagnostics, want 3", len(diags))
	}
}

func TestAnalyzerScopes(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		pkg      string
		want     bool
	}{
		{analysis.MapOrder, "repro/internal/sim", true},
		{analysis.MapOrder, "repro/internal/spatialnet", true},
		{analysis.MapOrder, "repro/internal/geom", false},
		{analysis.MapOrder, "repro/internal/simulator", false}, // prefix must respect path boundaries
		{analysis.WallTime, "repro/internal/sim", true},
		{analysis.WallTime, "repro/internal/rtree", false},
		{analysis.WallTime, "repro/cmd/experiments", false},
		{analysis.FloatEq, "repro/internal/geom", true},
		{analysis.FloatEq, "repro/internal/core", false},
		{analysis.CounterAtomic, "repro/internal/pagestore", true}, // empty scope: everywhere
		{analysis.CounterAtomic, "repro/cmd/benchjson", true},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.pkg); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}

// TestRepoClean runs the full suite over the whole module, mirroring the CI
// `go run ./cmd/simvet ./...` gate: the production tree must stay free of
// determinism-lint findings. Skipped under -short (it type-checks the whole
// module from source).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dirs, importPaths, err := analysis.ModulePackages(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("module walk found only %d packages; walker is broken", len(dirs))
	}
	loader := analysis.NewLoader()
	for i, dir := range dirs {
		pkg, err := loader.Load(dir, importPaths[i])
		if err != nil {
			t.Fatalf("load %s: %v", importPaths[i], err)
		}
		if pkg == nil {
			continue
		}
		for _, a := range analysis.Analyzers() {
			if !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		}
	}
}
