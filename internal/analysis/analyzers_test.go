package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Each analyzer is exercised against its fixture package: every want
// comment must be matched by a diagnostic and every diagnostic must match
// a want comment, so the fixtures' unannotated-safe lines (collect-then-
// sort loops, //simvet:ordered and //simvet:exact allowlist annotations,
// constructors, NaN idioms, plain counters) double as negative cases.

func TestMapOrderFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.MapOrder, analysis.Fixture(t, "maporder"))
	if len(diags) != 2 {
		t.Errorf("maporder: got %d diagnostics, want 2", len(diags))
	}
}

func TestGlobalRandFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.GlobalRand, analysis.Fixture(t, "globalrand"))
	if len(diags) != 11 {
		t.Errorf("globalrand: got %d diagnostics, want 11", len(diags))
	}
}

func TestLockSafeFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.LockSafe, analysis.Fixture(t, "locksafe"))
	if len(diags) != 9 {
		t.Errorf("locksafe: got %d diagnostics, want 9", len(diags))
	}
}

func TestGoLeakFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.GoLeak, analysis.Fixture(t, "goleak"))
	if len(diags) != 3 {
		t.Errorf("goleak: got %d diagnostics, want 3", len(diags))
	}
}

func TestErrSinkFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.ErrSink, analysis.Fixture(t, "errsink"))
	if len(diags) != 6 {
		t.Errorf("errsink: got %d diagnostics, want 6", len(diags))
	}
}

// TestAnnotationFixture asserts the annotation analyzer's findings directly:
// a want clause cannot share its line with the malformed comment under test,
// so the fixture is checked by message substring instead.
func TestAnnotationFixture(t *testing.T) {
	loader := analysis.NewLoader()
	dir := analysis.Fixture(t, "annotation")
	pkg, err := loader.Load(dir, "testdata/annotation")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := analysis.Run(analysis.Annotation, pkg)
	if err != nil {
		t.Fatal(err)
	}
	wantSubstr := []string{
		`unknown //simvet: key "dicard"`,
		`malformed simvet annotation "// simvet:ordered`,
		`malformed simvet annotation "//simvet: ordered"`,
	}
	if len(diags) != len(wantSubstr) {
		t.Fatalf("annotation: got %d diagnostics, want %d:\n%v", len(diags), len(wantSubstr), diags)
	}
	for i, want := range wantSubstr {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("annotation diagnostic %d = %q, want substring %q", i, diags[i].Message, want)
		}
	}
}

func TestWallTimeFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.WallTime, analysis.Fixture(t, "walltime"))
	if len(diags) != 3 {
		t.Errorf("walltime: got %d diagnostics, want 3", len(diags))
	}
}

func TestFloatEqFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.FloatEq, analysis.Fixture(t, "floateq"))
	if len(diags) != 3 {
		t.Errorf("floateq: got %d diagnostics, want 3", len(diags))
	}
}

func TestCounterAtomicFixture(t *testing.T) {
	diags := analysis.RunWant(t, analysis.CounterAtomic, analysis.Fixture(t, "counteratomic"))
	if len(diags) != 3 {
		t.Errorf("counteratomic: got %d diagnostics, want 3", len(diags))
	}
}

func TestAnalyzerScopes(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		pkg      string
		want     bool
	}{
		{analysis.MapOrder, "repro/internal/sim", true},
		{analysis.MapOrder, "repro/internal/spatialnet", true},
		{analysis.MapOrder, "repro/internal/geom", false},
		{analysis.MapOrder, "repro/internal/simulator", false}, // prefix must respect path boundaries
		{analysis.WallTime, "repro/internal/sim", true},
		{analysis.WallTime, "repro/internal/rtree", false},
		{analysis.WallTime, "repro/cmd/experiments", false},
		{analysis.FloatEq, "repro/internal/geom", true},
		{analysis.FloatEq, "repro/internal/core", false},
		{analysis.CounterAtomic, "repro/internal/pagestore", true}, // empty scope: everywhere
		{analysis.CounterAtomic, "repro/cmd/benchjson", true},
		{analysis.LockSafe, "repro/internal/serve", true},
		{analysis.LockSafe, "repro/internal/rtree", false},
		{analysis.GoLeak, "repro/internal/wire", true},
		{analysis.GoLeak, "repro/internal/servemesh", false}, // path boundary again
		{analysis.ErrSink, "repro/cmd/senn-load", true},
		{analysis.ErrSink, "repro/internal/experiments", false},
		{analysis.Annotation, "repro/internal/geom", true}, // empty scope: everywhere
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.pkg); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}

// TestSuiteComplete pins the suite roster: the five v1 analyzers, the three
// cross-function v2 analyzers, and the annotation audit — and checks that
// every suppression key names an analyzer that is actually registered, so a
// key cannot outlive its analyzer.
func TestSuiteComplete(t *testing.T) {
	want := []string{
		"maporder", "globalrand", "walltime", "floateq", "counteratomic",
		"locksafe", "goleak", "errsink", "annotation",
	}
	byName := map[string]bool{}
	for _, a := range analysis.Analyzers() {
		if byName[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		byName[a.Name] = true
	}
	for _, name := range want {
		if !byName[name] {
			t.Errorf("analyzer %q missing from Analyzers()", name)
		}
	}
	if len(byName) != len(want) {
		t.Errorf("suite has %d analyzers, want %d", len(byName), len(want))
	}
	for key, analyzer := range analysis.KnownAnnotationKeys {
		if !byName[analyzer] {
			t.Errorf("annotation key %q names unregistered analyzer %q", key, analyzer)
		}
	}
}

// TestRepoClean runs the full suite over the whole module, mirroring the CI
// `go run ./cmd/simvet ./...` gate: the production tree must stay free of
// determinism-lint findings. Skipped under -short (it type-checks the whole
// module from source).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dirs, importPaths, err := analysis.ModulePackages(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("module walk found only %d packages; walker is broken", len(dirs))
	}
	loader := analysis.NewLoader()
	for i, dir := range dirs {
		pkg, err := loader.Load(dir, importPaths[i])
		if err != nil {
			t.Fatalf("load %s: %v", importPaths[i], err)
		}
		if pkg == nil {
			continue
		}
		for _, a := range analysis.Analyzers() {
			if !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		}
	}
}
