package analysis

import "testing"

func TestAnnotationKey(t *testing.T) {
	cases := []struct {
		comment string
		key     string
		ok      bool
	}{
		{"//simvet:ordered", "ordered", true},
		{"//simvet:ordered — summation is commutative", "ordered", true},
		{"//simvet:exact impl notes", "exact", true},
		{"// simvet:ordered", "", false}, // a space disables, like //go: directives
		{"//simvet:", "", false},
		{"// plain comment", "", false},
		{"//simvet:ORDERED", "", false}, // keys are lowercase only
	}
	for _, c := range cases {
		key, ok := annotationKey(c.comment)
		if key != c.key || ok != c.ok {
			t.Errorf("annotationKey(%q) = (%q, %v), want (%q, %v)",
				c.comment, key, ok, c.key, c.ok)
		}
	}
}

func TestModulePath(t *testing.T) {
	if _, err := modulePath("testdata/no-such-go.mod"); err == nil {
		t.Error("modulePath on a missing file: want error, got nil")
	}
	p, err := modulePath("../../go.mod")
	if err != nil {
		t.Fatal(err)
	}
	if p != "repro" {
		t.Errorf("modulePath(go.mod) = %q, want %q", p, "repro")
	}
}
