// Package mobility implements the two movement generators of the paper's
// simulator (§4.1): the free movement mode — the random waypoint model of
// Broch et al. with a fixed velocity and random pauses — and the road
// network mode, where hosts travel along a spatialnet graph at the speed
// limit of the segment they are on (capped by the host's own target
// velocity).
//
// Models are deterministic given their random source, which the simulator
// exploits for reproducible experiments.
package mobility

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/spatialnet"
)

// Model advances a mobile host's position through simulated time.
type Model interface {
	// Pos returns the current position.
	Pos() geom.Point
	// Advance moves the host by dt seconds and returns the new position.
	Advance(dt float64) geom.Point
}

// Stationary is the trivial model for the non-moving share of hosts (the
// paper's M_Percentage parameter leaves 20 % of hosts parked).
type Stationary struct{ P geom.Point }

// Pos returns the fixed position.
func (s Stationary) Pos() geom.Point { return s.P }

// Advance returns the fixed position regardless of dt.
func (s Stationary) Advance(float64) geom.Point { return s.P }

// RandomWaypoint implements the free movement mode: the host picks a random
// destination in the area, travels there in a straight line at a fixed
// speed, pauses for a uniform random interval up to MaxPause, and repeats.
// An optional trip radius bounds destination choice, mirroring the road
// mode's bounded trips so the two modes stay comparable (DESIGN.md D6).
type RandomWaypoint struct {
	bounds     geom.Rect
	speed      float64 // m/s
	maxPause   float64 // seconds
	tripRadius float64 // 0 = anywhere in bounds
	rng        *rand.Rand

	pos   geom.Point
	dest  geom.Point
	pause float64 // remaining pause time
}

// NewRandomWaypoint creates a free-movement host starting at start. speed
// must be positive; maxPause may be zero for continuous movement.
func NewRandomWaypoint(bounds geom.Rect, start geom.Point, speed, maxPause float64, rng *rand.Rand) *RandomWaypoint {
	return NewRandomWaypointWith(bounds, start, speed, maxPause, rng, 0)
}

// NewRandomWaypointWith is NewRandomWaypoint with a trip radius bound
// (0 = unbounded).
func NewRandomWaypointWith(bounds geom.Rect, start geom.Point, speed, maxPause float64, rng *rand.Rand, tripRadius float64) *RandomWaypoint {
	if speed <= 0 {
		panic("mobility: speed must be positive")
	}
	m := &RandomWaypoint{
		bounds:     bounds,
		speed:      speed,
		maxPause:   maxPause,
		tripRadius: tripRadius,
		rng:        rng,
		pos:        start,
	}
	m.dest = m.randomPoint()
	return m
}

func (m *RandomWaypoint) randomPoint() geom.Point {
	if m.tripRadius > 0 {
		for attempt := 0; attempt < 16; attempt++ {
			angle := m.rng.Float64() * 2 * math.Pi
			r := m.tripRadius * math.Sqrt(m.rng.Float64())
			p := m.pos.Add(geom.Pt(r*math.Cos(angle), r*math.Sin(angle)))
			if m.bounds.Contains(p) {
				return p
			}
		}
		// Corner-trapped: fall through to an unbounded pick.
	}
	return geom.Pt(
		m.bounds.Min.X+m.rng.Float64()*m.bounds.Width(),
		m.bounds.Min.Y+m.rng.Float64()*m.bounds.Height(),
	)
}

// Pos returns the current position.
func (m *RandomWaypoint) Pos() geom.Point { return m.pos }

// Advance implements Model.
func (m *RandomWaypoint) Advance(dt float64) geom.Point {
	for dt > 0 {
		if m.pause > 0 {
			if m.pause >= dt {
				m.pause -= dt
				return m.pos
			}
			dt -= m.pause
			m.pause = 0
		}
		remaining := m.pos.Dist(m.dest)
		step := m.speed * dt
		if step < remaining {
			m.pos = m.pos.Lerp(m.dest, step/remaining)
			return m.pos
		}
		// Arrive, pause, and pick the next destination.
		m.pos = m.dest
		dt -= remaining / m.speed
		if m.maxPause > 0 {
			m.pause = m.rng.Float64() * m.maxPause
		}
		m.dest = m.randomPoint()
	}
	return m.pos
}

// RoadNetwork implements the road network mode: the host picks a random
// destination node, follows the shortest path to it, and travels each
// segment at min(target velocity, segment speed limit) — hosts monitor the
// speed limit of the road they are on and adjust (§4.1.2).
type RoadNetwork struct {
	graph    *spatialnet.Graph
	finder   *spatialnet.PathFinder
	target   float64 // host target velocity, m/s
	maxPause float64
	// tripRadius, when positive, bounds how far away destinations are
	// picked; large simulations use it to keep route planning local.
	tripRadius float64
	rng        *rand.Rand

	pos   geom.Point
	at    spatialnet.NodeID // node most recently departed from or arrived at
	path  []spatialnet.NodeID
	seg   int     // index into path: traveling path[seg] -> path[seg+1]
	along float64 // meters progressed on the current segment
	pause float64
	// Current segment properties, cached when the segment is entered.
	segLen, segSpeed float64
}

// RoadNetworkOptions configures NewRoadNetwork beyond the required
// parameters.
type RoadNetworkOptions struct {
	// Finder is a shared route planner; nil creates a private one. Sharing
	// one PathFinder across all (sequentially advanced) hosts avoids
	// per-host scratch memory.
	Finder *spatialnet.PathFinder
	// TripRadius bounds destination choice to nodes near the host's current
	// position (0 = anywhere in the graph).
	TripRadius float64
}

// NewRoadNetwork creates a road-bound host starting at the given node.
// target is the host's desired velocity in m/s (the M_Velocity parameter).
func NewRoadNetwork(g *spatialnet.Graph, start spatialnet.NodeID, target, maxPause float64, rng *rand.Rand) *RoadNetwork {
	return NewRoadNetworkWith(g, start, target, maxPause, rng, RoadNetworkOptions{})
}

// NewRoadNetworkWith is NewRoadNetwork with explicit options.
func NewRoadNetworkWith(g *spatialnet.Graph, start spatialnet.NodeID, target, maxPause float64, rng *rand.Rand, opts RoadNetworkOptions) *RoadNetwork {
	if target <= 0 {
		panic("mobility: target velocity must be positive")
	}
	finder := opts.Finder
	if finder == nil {
		finder = spatialnet.NewPathFinder(g)
	}
	m := &RoadNetwork{
		graph:      g,
		finder:     finder,
		target:     target,
		maxPause:   maxPause,
		tripRadius: opts.TripRadius,
		rng:        rng,
		at:         start,
		pos:        g.Loc(start),
	}
	m.pickDestination()
	return m
}

// pickDestination chooses a new random reachable destination and computes
// the path. Hosts on an isolated node stay put.
func (m *RoadNetwork) pickDestination() {
	m.path, m.seg, m.along = nil, 0, 0
	for attempt := 0; attempt < 8; attempt++ {
		var dest spatialnet.NodeID
		if m.tripRadius > 0 {
			// Aim at a random point within the trip radius and snap to the
			// nearest node.
			angle := m.rng.Float64() * 2 * math.Pi
			r := m.tripRadius * math.Sqrt(m.rng.Float64())
			target := m.pos.Add(geom.Pt(r*math.Cos(angle), r*math.Sin(angle)))
			d, ok := m.graph.NearestNodeIndexed(target)
			if !ok {
				return
			}
			dest = d
		} else {
			dest = spatialnet.NodeID(m.rng.Intn(m.graph.NumNodes()))
		}
		if dest == m.at {
			continue
		}
		_, path, ok := m.finder.ShortestPath(m.at, dest)
		if ok && len(path) > 1 {
			m.path = path
			m.enterSegment()
			return
		}
	}
}

// enterSegment caches the length and speed of the segment path[seg] ->
// path[seg+1].
func (m *RoadNetwork) enterSegment() {
	from, to := m.path[m.seg], m.path[m.seg+1]
	m.segLen = m.graph.Loc(from).Dist(m.graph.Loc(to))
	m.segSpeed = m.target
	m.graph.Neighbors(from, func(n spatialnet.NodeID, _ float64, c spatialnet.RoadClass) {
		if n == to {
			if lim := c.SpeedLimit(); lim < m.segSpeed {
				m.segSpeed = lim
			}
		}
	})
	if m.segSpeed <= 0 {
		m.segSpeed = m.target
	}
}

// Pos returns the current position.
func (m *RoadNetwork) Pos() geom.Point { return m.pos }

// SetFinder replaces the host's route planner. A PathFinder is per-query
// scratch state that is not safe for concurrent use, so a simulator that
// advances hosts on several goroutines assigns each shard its own finder.
// The shortest paths a finder returns are a pure function of the graph, so
// the host's trajectory does not depend on which finder it holds. A nil
// finder is ignored.
func (m *RoadNetwork) SetFinder(f *spatialnet.PathFinder) {
	if f != nil {
		m.finder = f
	}
}

// Advance implements Model.
func (m *RoadNetwork) Advance(dt float64) geom.Point {
	for dt > 0 {
		if m.pause > 0 {
			if m.pause >= dt {
				m.pause -= dt
				return m.pos
			}
			dt -= m.pause
			m.pause = 0
		}
		if len(m.path) < 2 {
			m.pickDestination()
			if len(m.path) < 2 {
				return m.pos // isolated node: nowhere to go
			}
		}
		remaining := m.segLen - m.along
		step := m.segSpeed * dt
		from, to := m.path[m.seg], m.path[m.seg+1]
		if step < remaining {
			m.along += step
			m.pos = m.graph.Loc(from).Lerp(m.graph.Loc(to), m.along/m.segLen)
			return m.pos
		}
		// Finish the segment.
		dt -= remaining / m.segSpeed
		m.pos = m.graph.Loc(to)
		m.at = to
		m.along = 0
		m.seg++
		if m.seg >= len(m.path)-1 {
			// Destination reached: pause, then replan.
			m.path = nil
			m.seg = 0
			if m.maxPause > 0 {
				m.pause = m.rng.Float64() * m.maxPause
			}
		} else {
			m.enterSegment()
		}
	}
	return m.pos
}
