package mobility

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/spatialnet"
)

func TestStationary(t *testing.T) {
	s := Stationary{P: geom.Pt(3, 4)}
	if !s.Pos().Eq(geom.Pt(3, 4)) {
		t.Error("Pos wrong")
	}
	if !s.Advance(1000).Eq(geom.Pt(3, 4)) {
		t.Error("stationary host moved")
	}
}

func TestRandomWaypointStaysInBounds(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	rng := rand.New(rand.NewSource(1))
	m := NewRandomWaypoint(bounds, geom.Pt(50, 50), 10, 5, rng)
	for i := 0; i < 5000; i++ {
		p := m.Advance(1)
		if !bounds.Contains(p) {
			t.Fatalf("step %d: position %v out of bounds", i, p)
		}
	}
}

func TestRandomWaypointSpeedRespected(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	rng := rand.New(rand.NewSource(2))
	speed := 13.4 // 30 mph
	m := NewRandomWaypoint(bounds, geom.Pt(500, 500), speed, 0, rng)
	prev := m.Pos()
	for i := 0; i < 2000; i++ {
		dt := 0.5 + rng.Float64()
		p := m.Advance(dt)
		if d := prev.Dist(p); d > speed*dt+1e-9 {
			t.Fatalf("step %d: moved %v m in %v s at speed %v", i, d, dt, speed)
		}
		prev = p
	}
}

func TestRandomWaypointPauses(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	rng := rand.New(rand.NewSource(3))
	m := NewRandomWaypoint(bounds, geom.Pt(5, 5), 100, 10, rng)
	// With a tiny area, high speed and long pauses the host is usually
	// paused: consecutive positions often coincide.
	same := 0
	prev := m.Pos()
	for i := 0; i < 1000; i++ {
		p := m.Advance(0.1)
		if p.Eq(prev) {
			same++
		}
		prev = p
	}
	if same == 0 {
		t.Error("host never paused despite maxPause=10")
	}
}

func TestRandomWaypointEventuallyCoversArea(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	rng := rand.New(rand.NewSource(4))
	m := NewRandomWaypoint(bounds, geom.Pt(0, 0), 20, 0, rng)
	visited := map[[2]int]bool{}
	for i := 0; i < 20000; i++ {
		p := m.Advance(1)
		visited[[2]int{int(p.X / 25), int(p.Y / 25)}] = true
	}
	if len(visited) < 12 {
		t.Errorf("visited only %d of 16 area cells", len(visited))
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero speed should panic")
		}
	}()
	NewRandomWaypoint(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)), geom.Pt(0, 0), 0, 0, rand.New(rand.NewSource(1)))
}

func testGrid(t *testing.T) *spatialnet.Graph {
	t.Helper()
	g, err := spatialnet.GenerateGrid(spatialnet.GridConfig{
		Width: 1000, Height: 1000, Spacing: 100,
		SecondaryEvery: 3, HighwayEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRoadNetworkStaysOnNetwork(t *testing.T) {
	g := testGrid(t)
	rng := rand.New(rand.NewSource(5))
	m := NewRoadNetwork(g, 0, 22.35, 5, rng)
	for i := 0; i < 3000; i++ {
		p := m.Advance(1)
		snap, ok := g.Snap(p)
		if !ok || snap.SnapDist > 1e-6 {
			t.Fatalf("step %d: host %v is %v m off the network", i, p, snap.SnapDist)
		}
	}
}

func TestRoadNetworkRespectsSpeedLimits(t *testing.T) {
	g := testGrid(t)
	rng := rand.New(rand.NewSource(6))
	target := 29.0 // ~65 mph: always capped by the segment limit
	m := NewRoadNetwork(g, 0, target, 0, rng)
	prev := m.Pos()
	maxLimit := spatialnet.ClassHighway.SpeedLimit()
	for i := 0; i < 3000; i++ {
		dt := 1.0
		p := m.Advance(dt)
		if d := prev.Dist(p); d > maxLimit*dt+1e-6 {
			t.Fatalf("step %d: moved %v m/s, above highway limit %v", i, d/dt, maxLimit)
		}
		prev = p
	}
}

func TestRoadNetworkSlowTargetIsCap(t *testing.T) {
	g := testGrid(t)
	rng := rand.New(rand.NewSource(7))
	target := 4.5 // 10 mph, below every class limit
	m := NewRoadNetwork(g, 0, target, 0, rng)
	prev := m.Pos()
	for i := 0; i < 1000; i++ {
		p := m.Advance(2)
		if d := prev.Dist(p); d > target*2+1e-6 {
			t.Fatalf("step %d: moved %v m in 2 s, target %v m/s", i, d, target)
		}
		prev = p
	}
}

func TestRoadNetworkTravels(t *testing.T) {
	g := testGrid(t)
	rng := rand.New(rand.NewSource(8))
	m := NewRoadNetwork(g, 0, 13.4, 0, rng)
	start := m.Pos()
	far := 0.0
	for i := 0; i < 2000; i++ {
		p := m.Advance(1)
		if d := start.Dist(p); d > far {
			far = d
		}
	}
	if far < 200 {
		t.Errorf("host wandered only %v m in 2000 s", far)
	}
}

func TestRoadNetworkIsolatedNode(t *testing.T) {
	g := spatialnet.NewGraph()
	id := g.AddNode(geom.Pt(5, 5))
	rng := rand.New(rand.NewSource(9))
	m := NewRoadNetwork(g, id, 10, 0, rng)
	p := m.Advance(100)
	if !p.Eq(geom.Pt(5, 5)) {
		t.Errorf("isolated host moved to %v", p)
	}
}

func TestRoadNetworkDeterminism(t *testing.T) {
	g := testGrid(t)
	run := func(seed int64) []geom.Point {
		rng := rand.New(rand.NewSource(seed))
		m := NewRoadNetwork(g, 3, 15, 2, rng)
		var out []geom.Point
		for i := 0; i < 500; i++ {
			out = append(out, m.Advance(1))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if !a[i].Eq(b[i]) {
			t.Fatalf("divergence at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	diverged := false
	for i := range a {
		if !a[i].Eq(c[i]) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds should yield different trajectories")
	}
}

func TestRoadNetworkValidation(t *testing.T) {
	g := testGrid(t)
	defer func() {
		if recover() == nil {
			t.Error("non-positive target should panic")
		}
	}()
	NewRoadNetwork(g, 0, -1, 0, rand.New(rand.NewSource(1)))
}

// Large dt values must be consumed fully (multi-segment, multi-destination
// progress within one Advance call).
func TestAdvanceLargeDt(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(50, 50))
	rng := rand.New(rand.NewSource(10))
	m := NewRandomWaypoint(bounds, geom.Pt(0, 0), 10, 0, rng)
	p1 := m.Advance(1e4)
	if math.IsNaN(p1.X) || !bounds.Contains(p1) {
		t.Errorf("large dt produced %v", p1)
	}
	g := testGrid(t)
	rm := NewRoadNetwork(g, 0, 20, 1, rng)
	p2 := rm.Advance(1e4)
	snap, ok := g.Snap(p2)
	if !ok || snap.SnapDist > 1e-6 {
		t.Errorf("large dt left road host off network at %v", p2)
	}
}
