package mobility

import (
	"math"

	"repro/internal/geom"
)

// SplitMix64 is a compact deterministic PRNG (Steele, Lea, Flood: "Fast
// splittable pseudorandom number generators", OOPSLA 2014). Its whole state
// is 8 bytes, versus the ~5 KB state vector a math/rand.Rand carries — the
// difference between 8 MB and 5 GB of generator state at a million hosts.
// The zero value is a valid (seed 0) generator.
type SplitMix64 uint64

// Uint64 returns the next pseudorandom value and advances the state.
func (s *SplitMix64) Uint64() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a pseudorandom number in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Waypoints is a structure-of-arrays random waypoint engine: one instance
// advances an entire free-movement population through parallel slices
// instead of one heap-allocated RandomWaypoint (with a private rand.Rand)
// per host. The trip semantics mirror RandomWaypoint — pick a destination
// (optionally within the trip radius), travel straight at fixed speed,
// arrive, pause uniformly in [0, maxPause), repeat — but the per-step state
// is laid out for streaming:
//
//   - dest/vel/left encode the current leg as an endpoint, a velocity vector
//     and the travel time remaining, so a steady-state step is a
//     multiply-add with no square root (distances are computed once per leg,
//     when it is picked);
//   - positions live with the caller (the simulator's own SoA column), so
//     the engine never duplicates them: Advance takes the current position
//     and returns the new one.
//
// Slots are independent: concurrent Advance calls on disjoint slots are
// safe, and each slot's trajectory depends only on its own seed.
type Waypoints struct {
	bounds     geom.Rect
	speed      float64 // m/s, shared by the whole population
	maxPause   float64 // seconds
	tripRadius float64 // 0 = anywhere in bounds

	dest  []geom.Point // current leg endpoint (exact arrival target)
	vel   []geom.Point // velocity vector of the current leg, m/s
	left  []float64    // travel time remaining on the leg, seconds
	pause []float64    // pause time remaining, seconds
	rng   []SplitMix64
}

// NewWaypoints builds an engine with n slots. speed must be positive. Slots
// start unseeded (parked at whatever position the caller holds); arm each
// moving host with Seed.
func NewWaypoints(bounds geom.Rect, speed, maxPause, tripRadius float64, n int) *Waypoints {
	if speed <= 0 {
		panic("mobility: speed must be positive")
	}
	return &Waypoints{
		bounds:     bounds,
		speed:      speed,
		maxPause:   maxPause,
		tripRadius: tripRadius,
		dest:       make([]geom.Point, n),
		vel:        make([]geom.Point, n),
		left:       make([]float64, n),
		pause:      make([]float64, n),
		rng:        make([]SplitMix64, n),
	}
}

// Seed arms slot i at start: installs its private RNG seed and picks the
// first destination, like NewRandomWaypointWith does.
func (w *Waypoints) Seed(i int, start geom.Point, seed uint64) {
	w.rng[i] = SplitMix64(seed)
	w.pause[i] = 0
	w.pickLeg(i, start)
}

// pickLeg draws the next destination from pos (RandomWaypoint.randomPoint's
// trip-radius rejection sampling) and caches the leg's velocity vector and
// duration — the one place a distance (and its square root) is computed.
func (w *Waypoints) pickLeg(i int, pos geom.Point) {
	rng := &w.rng[i]
	dest := geom.Point{}
	picked := false
	if w.tripRadius > 0 {
		for attempt := 0; attempt < 16; attempt++ {
			angle := rng.Float64() * 2 * math.Pi
			r := w.tripRadius * math.Sqrt(rng.Float64())
			p := pos.Add(geom.Pt(r*math.Cos(angle), r*math.Sin(angle)))
			if w.bounds.Contains(p) {
				dest = p
				picked = true
				break
			}
		}
		// Corner-trapped: fall through to an unbounded pick.
	}
	if !picked {
		dest = geom.Pt(
			w.bounds.Min.X+rng.Float64()*w.bounds.Width(),
			w.bounds.Min.Y+rng.Float64()*w.bounds.Height(),
		)
	}
	w.dest[i] = dest
	d := pos.Dist(dest)
	w.left[i] = d / w.speed
	if d > 0 {
		s := w.speed / d
		w.vel[i] = geom.Pt((dest.X-pos.X)*s, (dest.Y-pos.Y)*s)
	} else {
		w.vel[i] = geom.Pt(0, 0)
	}
}

// Advance moves slot i from pos by dt seconds and returns the new position.
func (w *Waypoints) Advance(i int, pos geom.Point, dt float64) geom.Point {
	for dt > 0 {
		if p := w.pause[i]; p > 0 {
			if p >= dt {
				w.pause[i] = p - dt
				return pos
			}
			dt -= p
			w.pause[i] = 0
		}
		left := w.left[i]
		if left > dt {
			w.left[i] = left - dt
			v := w.vel[i]
			return geom.Pt(pos.X+v.X*dt, pos.Y+v.Y*dt)
		}
		// Arrive exactly (no drift accumulation), pause, pick the next leg —
		// the same draw order as RandomWaypoint.Advance.
		pos = w.dest[i]
		dt -= left
		if w.maxPause > 0 {
			w.pause[i] = w.rng[i].Float64() * w.maxPause
		}
		w.pickLeg(i, pos)
	}
	return pos
}
