package mobility

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestWaypointsStaysInBounds(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	w := NewWaypoints(bounds, 10, 5, 0, 3)
	pos := []geom.Point{geom.Pt(50, 50), geom.Pt(1, 1), geom.Pt(99, 99)}
	for i := range pos {
		w.Seed(i, pos[i], uint64(i)*7+1)
	}
	for step := 0; step < 5000; step++ {
		for i := range pos {
			pos[i] = w.Advance(i, pos[i], 1)
			if !bounds.Contains(pos[i]) {
				t.Fatalf("slot %d step %d: position %v out of bounds", i, step, pos[i])
			}
		}
	}
}

func TestWaypointsSpeedRespected(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	speed := 13.4
	w := NewWaypoints(bounds, speed, 0, 0, 1)
	pos := geom.Pt(500, 500)
	w.Seed(0, pos, 99)
	var rng SplitMix64 = 5
	for i := 0; i < 2000; i++ {
		dt := 0.5 + rng.Float64()
		p := w.Advance(0, pos, dt)
		if d := pos.Dist(p); d > speed*dt+1e-9 {
			t.Fatalf("step %d: moved %v m in %v s at speed %v", i, d, dt, speed)
		}
		pos = p
	}
}

func TestWaypointsTripRadius(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10000, 10000))
	const radius = 500.0
	w := NewWaypoints(bounds, 10, 0, radius, 1)
	pos := geom.Pt(5000, 5000)
	w.Seed(0, pos, 1)
	// Every leg's destination must stay within the trip radius of the point
	// where it was picked (the population is far from the walls, so the
	// corner-trap fallback never fires here). With no pause, a new leg is
	// picked inside the arriving Advance call, so leg changes are observed
	// as dest changes; each new destination was drawn from the previous one.
	picked := pos
	legs := 0
	for step := 0; step < 100000 && legs < 200; step++ {
		prev := w.dest[0]
		if d := picked.Dist(prev); d > radius+1e-9 {
			t.Fatalf("leg %d: destination %v at %v m from %v, radius %v", legs, prev, d, picked, radius)
		}
		pos = w.Advance(0, pos, 1)
		if !w.dest[0].Eq(prev) {
			picked = prev // the new leg was picked at the old destination
			legs++
		}
	}
	if legs < 10 {
		t.Fatalf("only %d legs observed", legs)
	}
}

// TestWaypointsArrivesExactly pins the no-drift property the sqrt-free leg
// encoding relies on: when the remaining travel time is consumed, the
// position is the destination bit-for-bit, not an accumulation of
// multiply-add steps that lands nearby.
func TestWaypointsArrivesExactly(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	w := NewWaypoints(bounds, 7, 3, 0, 1)
	pos := geom.Pt(100, 100)
	w.Seed(0, pos, 1234)
	arrivals := 0
	for step := 0; step < 20000 && arrivals < 50; step++ {
		dest := w.dest[0]
		left := w.left[0]
		if w.pause[0] == 0 && left <= 1 {
			// This step arrives: Advance must pass through dest exactly. With
			// a pause pending afterwards the returned position IS dest; with
			// an instant re-pick it already moved on, so check via the pause.
			p := w.Advance(0, pos, 1)
			if w.pause[0] > 0 && !p.Eq(dest) {
				t.Fatalf("step %d: paused at %v, want exact arrival at %v", step, p, dest)
			}
			pos = p
			arrivals++
			continue
		}
		pos = w.Advance(0, pos, 1)
	}
	if arrivals == 0 {
		t.Fatal("no arrivals observed")
	}
}

// TestWaypointsDeterministicPerSlot: a slot's trajectory is a pure function
// of its seed and start — independent of how many other slots exist or in
// what order they advance.
func TestWaypointsDeterministicPerSlot(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(500, 500))
	solo := NewWaypoints(bounds, 5, 2, 0, 1)
	crowd := NewWaypoints(bounds, 5, 2, 0, 64)
	start := geom.Pt(250, 250)
	solo.Seed(0, start, 42)
	crowd.Seed(37, start, 42)
	for i := 0; i < 64; i++ {
		if i != 37 {
			crowd.Seed(i, geom.Pt(float64(i), float64(i)), uint64(i))
		}
	}
	a, b := start, start
	for step := 0; step < 3000; step++ {
		// Advance the crowd's other slots first, interleaved, to prove
		// isolation.
		for i := 0; i < 64; i++ {
			if i != 37 {
				crowd.Advance(i, geom.Pt(float64(i), float64(i)), 1)
			}
		}
		a = solo.Advance(0, a, 1)
		b = crowd.Advance(37, b, 1)
		if !a.Eq(b) {
			t.Fatalf("step %d: solo %v, crowd %v", step, a, b)
		}
	}
}

func TestSplitMix64Reference(t *testing.T) {
	var s SplitMix64 = 1234567
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	// The sequence must be reproducible and non-degenerate.
	if got[0] == got[1] || got[1] == got[2] {
		t.Fatalf("degenerate sequence %v", got)
	}
	var s2 SplitMix64 = 1234567
	for i, w := range got {
		if g := s2.Uint64(); g != w {
			t.Fatalf("replay %d: %x != %x", i, g, w)
		}
	}
	// Float64 stays in [0,1).
	for i := 0; i < 1000; i++ {
		if f := s.Float64(); f < 0 || f >= 1 || math.IsNaN(f) {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}
