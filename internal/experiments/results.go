package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// results.go persists experiment output as structured JSON next to the text
// tables in results/, one file per figure. Documents are built from structs
// only (no maps), so key order is fixed by field order and regenerated files
// are byte-diffable — the determinism CI job compares the JSON written by
// `cmd/experiments -parallel 1` against a run with both parallelism levels
// enabled.

// FigurePointJSON is one sweep point of a Figures 9–16 series: the three
// resolution shares plus the communication-overhead and server page-access
// series of the same runs. The std fields carry the sample standard
// deviation across Options.Repeats runs and are omitted for single-run
// sweeps.
type FigurePointJSON struct {
	X           float64 `json:"x"`
	ShareSingle float64 `json:"single_peer_pct"`
	ShareMulti  float64 `json:"multi_peer_pct"`
	ShareServer float64 `json:"server_pct"`
	CommBytes   float64 `json:"comm_bytes_per_query"`
	ServerPages float64 `json:"pages_per_server_query"`
	StdSingle   float64 `json:"single_peer_std,omitempty"`
	StdMulti    float64 `json:"multi_peer_std,omitempty"`
	StdServer   float64 `json:"server_std,omitempty"`
	StdComm     float64 `json:"comm_bytes_std,omitempty"`
	StdPages    float64 `json:"pages_std,omitempty"`
}

// FigureRegionJSON is one sub-figure (one region's series).
type FigureRegionJSON struct {
	Subfigure string            `json:"subfigure"`
	Region    string            `json:"region"`
	Points    []FigurePointJSON `json:"points"`
}

// FigureJSON groups the per-region sub-figures of one paper figure.
type FigureJSON struct {
	Figure  string             `json:"figure"`
	Area    string             `json:"area"`
	XLabel  string             `json:"x_label"`
	Regions []FigureRegionJSON `json:"regions"`
}

// WriteFigureJSON writes the sub-figures of one figure (usually the three
// regions) to dir/fig<N>.json.
func WriteFigureJSON(dir string, frs []FigureResult) error {
	if len(frs) == 0 {
		return fmt.Errorf("experiments: no sub-figures to persist")
	}
	num := strings.TrimRight(frs[0].Figure, "abc")
	doc := FigureJSON{
		Figure: num,
		Area:   frs[0].Area.String(),
		XLabel: frs[0].XLabel,
	}
	for _, fr := range frs {
		pts := make([]FigurePointJSON, len(fr.Points))
		for i, p := range fr.Points {
			pts[i] = FigurePointJSON{
				X:           p.X,
				ShareSingle: p.ShareSingle,
				ShareMulti:  p.ShareMulti,
				ShareServer: p.ShareServer,
				CommBytes:   p.CommBytes,
				ServerPages: p.ServerPages,
				StdSingle:   p.StdSingle,
				StdMulti:    p.StdMulti,
				StdServer:   p.StdServer,
				StdComm:     p.StdComm,
				StdPages:    p.StdPages,
			}
		}
		doc.Regions = append(doc.Regions, FigureRegionJSON{
			Subfigure: fr.Figure,
			Region:    fr.Region.String(),
			Points:    pts,
		})
	}
	return writeJSON(filepath.Join(dir, "fig"+num+".json"), doc)
}

// Fig17RegionJSON is one region's EINN-vs-INN series.
type Fig17RegionJSON struct {
	Region string       `json:"region"`
	Points []Fig17Point `json:"points"`
}

// Fig17JSON is the machine-readable Figure 17 document.
type Fig17JSON struct {
	Figure  string            `json:"figure"`
	Regions []Fig17RegionJSON `json:"regions"`
}

// WriteFig17JSON writes the EINN-vs-INN comparison to dir/fig17.json.
func WriteFig17JSON(dir string, frs []Fig17Result) error {
	doc := Fig17JSON{Figure: "17"}
	for _, fr := range frs {
		doc.Regions = append(doc.Regions, Fig17RegionJSON{
			Region: fr.Region.String(),
			Points: fr.Points,
		})
	}
	return writeJSON(filepath.Join(dir, "fig17.json"), doc)
}

// FreeComparisonRow is one region×area row of the §4.3 comparison.
type FreeComparisonRow struct {
	Region   string  `json:"region"`
	Area     string  `json:"area"`
	RoadSQRR float64 `json:"road_sqrr_pct"`
	FreeSQRR float64 `json:"free_sqrr_pct"`
	Delta    float64 `json:"delta_pct"`
}

// FreeComparisonJSON is the machine-readable §4.3 document.
type FreeComparisonJSON struct {
	Study string              `json:"study"`
	Rows  []FreeComparisonRow `json:"rows"`
}

// WriteFreeJSON writes the free-movement comparison to dir/free.json.
func WriteFreeJSON(dir string, rows []FreeComparisonRow) error {
	return writeJSON(filepath.Join(dir, "free.json"),
		FreeComparisonJSON{Study: "free-movement-vs-road-network", Rows: rows})
}

// UncertainRowJSON is one region of the uncertain-answer quality study.
// Precision and RankAccuracy are null when no uncertain answer occurred
// (they are NaN in UncertainQualityResult, which JSON cannot encode).
type UncertainRowJSON struct {
	Region         string   `json:"region"`
	Area           string   `json:"area"`
	UncertainShare float64  `json:"uncertain_pct"`
	ServerShare    float64  `json:"server_pct"`
	Precision      *float64 `json:"precision"`
	RankAccuracy   *float64 `json:"rank_accuracy"`
	Queries        int64    `json:"queries"`
}

// UncertainJSON is the machine-readable uncertain-quality document.
type UncertainJSON struct {
	Study string             `json:"study"`
	Rows  []UncertainRowJSON `json:"rows"`
}

// WriteUncertainJSON writes the uncertain-quality study to
// dir/uncertain.json.
func WriteUncertainJSON(dir string, rs []UncertainQualityResult) error {
	doc := UncertainJSON{Study: "uncertain-answer-quality"}
	finite := func(v float64) *float64 {
		if math.IsNaN(v) {
			return nil
		}
		return &v
	}
	for _, r := range rs {
		doc.Rows = append(doc.Rows, UncertainRowJSON{
			Region:         r.Region.String(),
			Area:           r.Area.String(),
			UncertainShare: r.UncertainShare,
			ServerShare:    r.ServerShare,
			Precision:      finite(r.Precision),
			RankAccuracy:   finite(r.RankAccuracy),
			Queries:        r.Queries,
		})
	}
	return writeJSON(filepath.Join(dir, "uncertain.json"), doc)
}

// DiskIOJSON is the machine-readable disk-I/O spectrum document.
type DiskIOJSON struct {
	Study      string        `json:"study"`
	Region     string        `json:"region"`
	TotalPages int           `json:"total_pages"`
	K          int           `json:"k"`
	Points     []DiskIOPoint `json:"points"`
}

// WriteDiskIOJSON writes the §4.4 I/O spectrum study to dir/diskio.json.
func WriteDiskIOJSON(dir string, r DiskIOResult) error {
	return writeJSON(filepath.Join(dir, "diskio.json"), DiskIOJSON{
		Study:      "disk-io-spectrum",
		Region:     r.Region.String(),
		TotalPages: r.TotalPages,
		K:          r.K,
		Points:     r.Points,
	})
}

// writeJSON marshals v with stable formatting (indented, trailing newline)
// and writes it to path, creating the directory if needed.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal %s: %w", path, err)
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
