package experiments

import (
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestRunParallelPreservesSlotOrder(t *testing.T) {
	const n = 100
	out := make([]int, n)
	tasks := make([]RunTask, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() error {
			out[i] = i * i
			return nil
		}
	}
	for _, workers := range []int{0, 1, 3, 8, n + 5} {
		for i := range out {
			out[i] = -1
		}
		if err := RunParallel(tasks, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunParallelFirstErrorByTaskOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	tasks := []RunTask{
		func() error { return nil },
		func() error { return errA },
		func() error { return errB },
	}
	for _, workers := range []int{1, 4} {
		if err := RunParallel(tasks, workers); !errors.Is(err, errA) {
			t.Errorf("workers=%d: err = %v, want %v (first in task order)", workers, err, errA)
		}
	}
}

func TestRunParallelRunsEveryTask(t *testing.T) {
	var ran atomic.Int64
	tasks := make([]RunTask, 37)
	for i := range tasks {
		tasks[i] = func() error {
			ran.Add(1)
			return nil
		}
	}
	if err := RunParallel(tasks, 5); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 37 {
		t.Errorf("ran %d tasks, want 37", got)
	}
	if err := RunParallel(nil, 4); err != nil {
		t.Errorf("empty task list: %v", err)
	}
}

func TestWorkerBudget(t *testing.T) {
	cases := []struct {
		budget, tasks        int
		wantOuter, wantInner int
	}{
		{8, 8, 8, 1},  // wide sweep: saturate with whole runs
		{8, 16, 8, 1}, // more tasks than cores
		{8, 3, 3, 2},  // spare cores go to the movement phase
		{8, 1, 1, 8},  // single run gets the whole budget
		{1, 5, 1, 1},  // fully sequential
		{7, 2, 2, 3},  // non-divisible budget rounds down
		{4, 0, 1, 4},  // degenerate task count clamps to 1
	}
	for _, c := range cases {
		outer, inner := WorkerBudget(c.budget, c.tasks)
		if outer != c.wantOuter || inner != c.wantInner {
			t.Errorf("WorkerBudget(%d, %d) = (%d, %d), want (%d, %d)",
				c.budget, c.tasks, outer, inner, c.wantOuter, c.wantInner)
		}
		if outer*inner > c.budget {
			t.Errorf("WorkerBudget(%d, %d) oversubscribes: %d×%d > budget",
				c.budget, c.tasks, outer, inner)
		}
	}
	if outer, inner := WorkerBudget(0, 4); outer < 1 || inner < 1 {
		t.Errorf("WorkerBudget(0, 4) = (%d, %d); zero budget must fall back to GOMAXPROCS", outer, inner)
	}
}

func TestSweepSeedDerivation(t *testing.T) {
	opts := Options{Seed: 5}
	s0 := sweepSeed(1, opts, 0)
	s1 := sweepSeed(1, opts, 1)
	if s0 == s1 {
		t.Error("independent sweep points share a seed")
	}
	if s0 != 6 {
		t.Errorf("point 0 seed = %d, want base+offset = 6", s0)
	}
	opts.CommonRandomNumbers = true
	if a, b := sweepSeed(1, opts, 0), sweepSeed(1, opts, 9); a != b {
		t.Errorf("common random numbers: seeds differ (%d vs %d)", a, b)
	}
}

// smokeOpts is a cheap configuration for the parallel-vs-sequential
// determinism properties: the contract is byte equality, not figure quality,
// so the smallest region at an aggressive scale suffices.
func smokeOpts(workers int) Options {
	return Options{DurationScale: 30, HostScale: 2, Workers: workers}
}

// TestParallelMatchesSequentialSweep is the determinism contract of the
// sweep engine: any worker count must produce a bit-identical series.
func TestParallelMatchesSequentialSweep(t *testing.T) {
	seq, err := VelocitySweep(Riverside, Area2mi, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		par, err := VelocitySweep(Riverside, Area2mi, smokeOpts(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d series diverged:\nseq: %+v\npar: %+v", workers, seq, par)
		}
		if got, want := FormatFigure(par), FormatFigure(seq); got != want {
			t.Errorf("workers=%d rendered output diverged:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

func TestParallelMatchesSequentialFreeMovement(t *testing.T) {
	roadSeq, freeSeq, err := FreeMovementComparison(Riverside, Area2mi, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	roadPar, freePar, err := FreeMovementComparison(Riverside, Area2mi, smokeOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	if roadSeq != roadPar || freeSeq != freePar {
		t.Errorf("free-movement comparison diverged: (%v, %v) vs (%v, %v)",
			roadSeq, freeSeq, roadPar, freePar)
	}
}

func TestParallelMatchesSequentialFig17(t *testing.T) {
	seq, err := EINNvsINN(Riverside, Area30mi, 40, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := EINNvsINN(Riverside, Area30mi, 40, smokeOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Fig17 diverged:\nseq: %+v\npar: %+v", seq, par)
	}
	if FormatFig17(seq) != FormatFig17(par) {
		t.Error("Fig17 rendered output diverged")
	}
}

func TestParallelMatchesSequentialDiskIO(t *testing.T) {
	seq, err := DiskIOStudy(Riverside, 30, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := DiskIOStudy(Riverside, 30, smokeOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("disk I/O study diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestParallelMatchesSequentialUncertain(t *testing.T) {
	seq, err := UncertainQualityAll(Area2mi, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := UncertainQualityAll(Area2mi, smokeOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	// Precision/RankAccuracy are NaN when no uncertain answer occurred at
	// this smoke scale; NaN != NaN would fail DeepEqual even on identical
	// runs, so map NaN to a sentinel first.
	norm := func(rs []UncertainQualityResult) []UncertainQualityResult {
		out := append([]UncertainQualityResult(nil), rs...)
		for i := range out {
			if math.IsNaN(out[i].Precision) {
				out[i].Precision = -1
			}
			if math.IsNaN(out[i].RankAccuracy) {
				out[i].RankAccuracy = -1
			}
		}
		return out
	}
	if !reflect.DeepEqual(norm(seq), norm(par)) {
		t.Errorf("uncertain-quality study diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}
