package experiments

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestRunParallelPreservesSlotOrder(t *testing.T) {
	const n = 100
	out := make([]int, n)
	tasks := make([]RunTask, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() error {
			out[i] = i * i
			return nil
		}
	}
	for _, workers := range []int{0, 1, 3, 8, n + 5} {
		for i := range out {
			out[i] = -1
		}
		if err := RunParallel(tasks, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunParallelFirstErrorByTaskOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	tasks := []RunTask{
		func() error { return nil },
		func() error { return errA },
		func() error { return errB },
	}
	for _, workers := range []int{1, 4} {
		if err := RunParallel(tasks, workers); !errors.Is(err, errA) {
			t.Errorf("workers=%d: err = %v, want %v (first in task order)", workers, err, errA)
		}
	}
}

func TestRunParallelRunsEveryTask(t *testing.T) {
	var ran atomic.Int64
	tasks := make([]RunTask, 37)
	for i := range tasks {
		tasks[i] = func() error {
			ran.Add(1)
			return nil
		}
	}
	if err := RunParallel(tasks, 5); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 37 {
		t.Errorf("ran %d tasks, want 37", got)
	}
	if err := RunParallel(nil, 4); err != nil {
		t.Errorf("empty task list: %v", err)
	}
}

func TestWorkerBudget(t *testing.T) {
	cases := []struct {
		budget, tasks        int
		wantOuter, wantInner int
	}{
		{8, 8, 8, 1},  // wide sweep: saturate with whole runs
		{8, 16, 8, 1}, // more tasks than cores
		{8, 3, 3, 2},  // spare cores go to each run's phases
		{8, 1, 1, 8},  // single run gets the whole budget
		{1, 5, 1, 1},  // fully sequential
		{7, 2, 2, 3},  // non-divisible budget rounds down
		{4, 0, 1, 4},  // degenerate task count clamps to 1
	}
	for _, c := range cases {
		outer, move, query := WorkerBudget(c.budget, c.tasks)
		if outer != c.wantOuter || move != c.wantInner || query != c.wantInner {
			t.Errorf("WorkerBudget(%d, %d) = (%d, %d, %d), want (%d, %d, %d)",
				c.budget, c.tasks, outer, move, query, c.wantOuter, c.wantInner, c.wantInner)
		}
		// Movement and query phases alternate, so the subscription bound is
		// outer × max(move, query), not outer × move × query.
		inner := move
		if query > inner {
			inner = query
		}
		if outer*inner > c.budget {
			t.Errorf("WorkerBudget(%d, %d) oversubscribes: %d×%d > budget",
				c.budget, c.tasks, outer, inner)
		}
	}
	if outer, move, query := WorkerBudget(0, 4); outer < 1 || move < 1 || query < 1 {
		t.Errorf("WorkerBudget(0, 4) = (%d, %d, %d); zero budget must fall back to GOMAXPROCS", outer, move, query)
	}
}

func TestSweepSeedDerivation(t *testing.T) {
	opts := Options{Seed: 5}
	s0 := sweepSeed(1, opts, 0, 0)
	s1 := sweepSeed(1, opts, 1, 0)
	if s0 == s1 {
		t.Error("independent sweep points share a seed")
	}
	if s0 != 6 {
		t.Errorf("point 0 seed = %d, want base+offset = 6", s0)
	}
	if r0, r1 := sweepSeed(1, opts, 0, 0), sweepSeed(1, opts, 0, 1); r0 == r1 {
		t.Error("repeats of the same point share a seed")
	}
	opts.CommonRandomNumbers = true
	if a, b := sweepSeed(1, opts, 0, 0), sweepSeed(1, opts, 9, 0); a != b {
		t.Errorf("common random numbers: seeds differ (%d vs %d)", a, b)
	}
	if a, b := sweepSeed(1, opts, 0, 1), sweepSeed(1, opts, 9, 1); a != b {
		t.Error("common random numbers must pair by repeat index too")
	}
}

// smokeOpts is a cheap configuration for the parallel-vs-sequential
// determinism properties: the contract is byte equality, not figure quality,
// so the smallest region at an aggressive scale suffices.
func smokeOpts(workers int) Options {
	return Options{DurationScale: 30, HostScale: 2, Workers: workers}
}

// TestParallelMatchesSequentialSweep is the determinism contract of the
// sweep engine: any worker count must produce a bit-identical series.
func TestParallelMatchesSequentialSweep(t *testing.T) {
	seq, err := VelocitySweep(Riverside, Area2mi, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		par, err := VelocitySweep(Riverside, Area2mi, smokeOpts(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d series diverged:\nseq: %+v\npar: %+v", workers, seq, par)
		}
		if got, want := FormatFigure(par), FormatFigure(seq); got != want {
			t.Errorf("workers=%d rendered output diverged:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestQueryWorkersMatchSequentialFigure pins the figure-level contract of
// the query pipeline at the outermost observable layer: the rendered text
// table and the persisted JSON document are byte-identical for query
// workers 1, 4 and 8.
func TestQueryWorkersMatchSequentialFigure(t *testing.T) {
	render := func(qworkers int) (string, []byte) {
		opts := smokeOpts(1)
		opts.QueryWorkers = qworkers
		fr, err := VelocitySweep(Riverside, Area2mi, opts)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := WriteFigureJSON(dir, []FigureResult{fr}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "fig13.json"))
		if err != nil {
			t.Fatal(err)
		}
		return FormatFigure(fr), data
	}
	wantText, wantJSON := render(1)
	for _, qworkers := range []int{4, 8} {
		gotText, gotJSON := render(qworkers)
		if gotText != wantText {
			t.Errorf("queryworkers=%d: figure text diverged:\n%s\nvs\n%s",
				qworkers, gotText, wantText)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("queryworkers=%d: figure JSON diverged:\n%s\nvs\n%s",
				qworkers, gotJSON, wantJSON)
		}
	}
}

// TestRepeatsReportStddev checks the Options.Repeats aggregation: repeated
// runs with distinct seeds produce a mean series with a non-degenerate
// sample standard deviation, while a single-run sweep leaves the Std fields
// zero (and therefore omitted from the JSON documents).
func TestRepeatsReportStddev(t *testing.T) {
	opts := smokeOpts(2)
	opts.Repeats = 2
	fr, err := VelocitySweep(Riverside, Area2mi, opts)
	if err != nil {
		t.Fatal(err)
	}
	anyStd := false
	for _, p := range fr.Points {
		if p.StdSingle < 0 || p.StdMulti < 0 || p.StdServer < 0 {
			t.Fatalf("negative stddev at x=%v: %+v", p.X, p)
		}
		for _, share := range []float64{p.ShareSingle, p.ShareMulti, p.ShareServer} {
			if share < 0 || share > 100 {
				t.Fatalf("mean share out of range at x=%v: %+v", p.X, p)
			}
		}
		anyStd = anyStd || p.StdSingle > 0 || p.StdMulti > 0 || p.StdServer > 0
	}
	if !anyStd {
		t.Error("two independent seeds produced zero variance at every point")
	}

	single, err := VelocitySweep(Riverside, Area2mi, smokeOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range single.Points {
		if p.StdSingle != 0 || p.StdMulti != 0 || p.StdServer != 0 {
			t.Fatalf("single-run sweep reported a stddev at x=%v: %+v", p.X, p)
		}
	}
}

func TestParallelMatchesSequentialFreeMovement(t *testing.T) {
	roadSeq, freeSeq, err := FreeMovementComparison(Riverside, Area2mi, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	roadPar, freePar, err := FreeMovementComparison(Riverside, Area2mi, smokeOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	if roadSeq != roadPar || freeSeq != freePar {
		t.Errorf("free-movement comparison diverged: (%v, %v) vs (%v, %v)",
			roadSeq, freeSeq, roadPar, freePar)
	}
}

func TestParallelMatchesSequentialFig17(t *testing.T) {
	seq, err := EINNvsINN(Riverside, Area30mi, 40, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := EINNvsINN(Riverside, Area30mi, 40, smokeOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Fig17 diverged:\nseq: %+v\npar: %+v", seq, par)
	}
	if FormatFig17(seq) != FormatFig17(par) {
		t.Error("Fig17 rendered output diverged")
	}
}

func TestParallelMatchesSequentialDiskIO(t *testing.T) {
	seq, err := DiskIOStudy(Riverside, 30, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := DiskIOStudy(Riverside, 30, smokeOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("disk I/O study diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestParallelMatchesSequentialUncertain(t *testing.T) {
	seq, err := UncertainQualityAll(Area2mi, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := UncertainQualityAll(Area2mi, smokeOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	// Precision/RankAccuracy are NaN when no uncertain answer occurred at
	// this smoke scale; NaN != NaN would fail DeepEqual even on identical
	// runs, so map NaN to a sentinel first.
	norm := func(rs []UncertainQualityResult) []UncertainQualityResult {
		out := append([]UncertainQualityResult(nil), rs...)
		for i := range out {
			if math.IsNaN(out[i].Precision) {
				out[i].Precision = -1
			}
			if math.IsNaN(out[i].RankAccuracy) {
				out[i].RankAccuracy = -1
			}
		}
		return out
	}
	if !reflect.DeepEqual(norm(seq), norm(par)) {
		t.Errorf("uncertain-quality study diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}
