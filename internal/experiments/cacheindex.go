package experiments

import (
	"slices"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
)

// newCacheIndex buckets a static synthetic peer-cache population into a
// uniform grid (sim.PointGrid — the same cell math as the simulator's host
// grid) and returns a range-lookup closure: every cache whose query
// location lies within radius of q, in ascending cache order. It replaces
// the O(#caches) per-query scans of the Figure 17 and disk-I/O workload
// generators (ROADMAP). The closure is safe for concurrent use: the grid is
// immutable and every call allocates its own result.
func newCacheIndex(caches []core.PeerCache, bounds geom.Rect, cell float64) func(q geom.Point, radius float64) []core.PeerCache {
	locs := make([]geom.Point, len(caches))
	for i, c := range caches {
		locs[i] = c.QueryLoc
	}
	grid := sim.NewPointGrid(locs, bounds, cell)
	return func(q geom.Point, radius float64) []core.PeerCache {
		var idx []int32
		grid.ForEachWithin(q, radius, func(i int32) { idx = append(idx, i) })
		slices.Sort(idx)
		out := make([]core.PeerCache, len(idx))
		for j, i := range idx {
			out[j] = caches[i]
		}
		return out
	}
}
