// Package experiments encodes the paper's evaluation (§4): the Los Angeles
// County, Riverside County, and Synthetic Suburbia parameter sets of Tables
// 3 and 4, and a sweep runner for every figure (9–17). Each figure function
// returns plain data series so the cmd/experiments binary, the benchmarks in
// bench_test.go, and the tests can all share one implementation.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Unit conversions.
const (
	// Mile in meters.
	Mile = 1609.344
	// MPH in m/s.
	MPH = 0.44704
)

// Region identifies one of the three parameter sets.
type Region int

const (
	// LosAngeles is the dense urban parameter set.
	LosAngeles Region = iota
	// Suburbia is the blended synthetic suburban parameter set.
	Suburbia
	// Riverside is the sparse rural parameter set.
	Riverside
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case LosAngeles:
		return "Los Angeles County"
	case Suburbia:
		return "Synthetic Suburbia"
	case Riverside:
		return "Riverside County"
	default:
		return "unknown"
	}
}

// Regions lists the three parameter sets in the order the paper's figures
// show them (a: LA, b: Suburbia, c: Riverside).
var Regions = []Region{LosAngeles, Suburbia, Riverside}

// ParseRegion resolves the command-line spellings of the three parameter
// sets.
func ParseRegion(s string) (Region, error) {
	switch strings.ToLower(s) {
	case "la", "losangeles", "los-angeles":
		return LosAngeles, nil
	case "suburbia", "synthetic", "syn":
		return Suburbia, nil
	case "riverside", "rv":
		return Riverside, nil
	}
	return 0, fmt.Errorf("unknown region %q (want la, suburbia, or riverside)", s)
}

// Area identifies one of the paper's two simulation region sizes.
type Area int

const (
	// Area2mi is the 2 miles by 2 miles region of Table 3.
	Area2mi Area = iota
	// Area30mi is the 30 miles by 30 miles region of Table 4.
	Area30mi
)

// String implements fmt.Stringer.
func (a Area) String() string {
	switch a {
	case Area2mi:
		return "2x2 mi"
	case Area30mi:
		return "30x30 mi"
	default:
		return "unknown"
	}
}

// Side returns the region side length in meters.
func (a Area) Side() float64 {
	if a == Area30mi {
		return 30 * Mile
	}
	return 2 * Mile
}

// BaseConfig returns the simulation configuration of Table 3 (2×2 mi) or
// Table 4 (30×30 mi) for the given region, in SI units. The paper draws k
// randomly around λ_kNN; the returned KMin/KMax spread uniformly over
// [1, 2λ−1] (2×2) and [λ−2, λ+2] clipped per the Figure 15/16 sweeps.
//
// Durations are the paper's (1 h and 5 h). Experiment runners scale them
// down (see ScaleDuration) so the full figure suite regenerates quickly; the
// cmd/experiments binary exposes a flag to restore the full length.
func BaseConfig(r Region, a Area) sim.Config {
	cfg := sim.Config{
		AreaWidth:      a.Side(),
		AreaHeight:     a.Side(),
		MovePercentage: 0.80,
		Velocity:       30 * MPH,
		TxRange:        200,
		Mode:           sim.ModeRoadNetwork,
		MaxPause:       30,
		RTreeFanout:    30,
		Seed:           1,
	}
	if a == Area2mi {
		cfg.CacheSize = 10
		cfg.Duration = 3600       // 1 hour
		cfg.KMin, cfg.KMax = 1, 5 // mean 3 = λ_kNN (Table 3)
		switch r {
		case LosAngeles:
			cfg.NumPOIs = 16
			cfg.NumHosts = 463
			cfg.QueriesPerMinute = 23
		case Riverside:
			cfg.NumPOIs = 5
			cfg.NumHosts = 50
			cfg.QueriesPerMinute = 2.5
		default: // Suburbia
			cfg.NumPOIs = 11
			cfg.NumHosts = 257
			cfg.QueriesPerMinute = 13
		}
		return cfg
	}
	cfg.CacheSize = 20
	cfg.Duration = 5 * 3600   // 5 hours
	cfg.KMin, cfg.KMax = 3, 7 // mean 5 = λ_kNN (Table 4)
	switch r {
	case LosAngeles:
		cfg.NumPOIs = 4050
		cfg.NumHosts = 121500
		cfg.QueriesPerMinute = 8100
	case Riverside:
		cfg.NumPOIs = 2160
		cfg.NumHosts = 11700
		cfg.QueriesPerMinute = 780
	default: // Suburbia
		cfg.NumPOIs = 3105
		cfg.NumHosts = 66600
		cfg.QueriesPerMinute = 4440
	}
	return cfg
}

// ScaleDuration shrinks a configuration's simulated time by the given factor
// (>= 1). The warm-up fraction is preserved, so steady-state measurement
// still applies; the query rate is unchanged, only the observation window
// shortens. Scale 1 reproduces the paper's full durations.
func ScaleDuration(cfg sim.Config, scale float64) sim.Config {
	if scale > 1 {
		cfg.Duration /= scale
		if cfg.Duration < 120 {
			cfg.Duration = 120
		}
	}
	return cfg
}

// ScaleHosts divides both the host count and the query rate by the given
// factor, preserving the per-host query rate but NOT the density. It exists
// for quick smoke runs only; figure runners keep densities faithful and
// scale duration instead.
func ScaleHosts(cfg sim.Config, scale float64) sim.Config {
	if scale > 1 {
		cfg.NumHosts = int(float64(cfg.NumHosts) / scale)
		if cfg.NumHosts < 1 {
			cfg.NumHosts = 1
		}
		cfg.QueriesPerMinute /= scale
		if cfg.QueriesPerMinute < 0.5 {
			cfg.QueriesPerMinute = 0.5
		}
	}
	return cfg
}
