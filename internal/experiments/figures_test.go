package experiments

import (
	"strings"
	"testing"
)

func TestBaseConfigTables(t *testing.T) {
	// Table 3 spot checks (converted to SI units).
	la := BaseConfig(LosAngeles, Area2mi)
	if la.NumPOIs != 16 || la.NumHosts != 463 || la.CacheSize != 10 {
		t.Errorf("LA 2mi config wrong: %+v", la)
	}
	if la.AreaWidth < 3218 || la.AreaWidth > 3219 {
		t.Errorf("2mi side = %v m", la.AreaWidth)
	}
	if la.QueriesPerMinute != 23 {
		t.Errorf("LA 2mi lambda = %v", la.QueriesPerMinute)
	}
	rv := BaseConfig(Riverside, Area2mi)
	if rv.NumPOIs != 5 || rv.NumHosts != 50 || rv.QueriesPerMinute != 2.5 {
		t.Errorf("Riverside 2mi config wrong: %+v", rv)
	}
	syn := BaseConfig(Suburbia, Area2mi)
	if syn.NumPOIs != 11 || syn.NumHosts != 257 || syn.QueriesPerMinute != 13 {
		t.Errorf("Suburbia 2mi config wrong: %+v", syn)
	}
	// Table 4 spot checks.
	la30 := BaseConfig(LosAngeles, Area30mi)
	if la30.NumPOIs != 4050 || la30.NumHosts != 121500 || la30.CacheSize != 20 {
		t.Errorf("LA 30mi config wrong: %+v", la30)
	}
	if la30.Duration != 5*3600 {
		t.Errorf("30mi duration = %v", la30.Duration)
	}
	rv30 := BaseConfig(Riverside, Area30mi)
	if rv30.NumPOIs != 2160 || rv30.NumHosts != 11700 || rv30.QueriesPerMinute != 780 {
		t.Errorf("Riverside 30mi config wrong: %+v", rv30)
	}
	syn30 := BaseConfig(Suburbia, Area30mi)
	if syn30.NumPOIs != 3105 || syn30.NumHosts != 66600 {
		t.Errorf("Suburbia 30mi config wrong: %+v", syn30)
	}
	// Velocity is 30 mph in every set.
	if la.Velocity < 13.4 || la.Velocity > 13.42 {
		t.Errorf("velocity = %v m/s, want ~13.41", la.Velocity)
	}
	// Every config must validate.
	for _, r := range Regions {
		for _, a := range []Area{Area2mi, Area30mi} {
			if _, err := BaseConfig(r, a).Validate(); err != nil {
				t.Errorf("config %v/%v invalid: %v", r, a, err)
			}
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	cfg := BaseConfig(LosAngeles, Area2mi)
	scaled := ScaleDuration(cfg, 30)
	if scaled.Duration != 120 {
		t.Errorf("scaled duration = %v, want 120", scaled.Duration)
	}
	if ScaleDuration(cfg, 1).Duration != 3600 {
		t.Error("scale 1 must preserve the paper duration")
	}
	hosts := ScaleHosts(cfg, 10)
	if hosts.NumHosts != 46 || hosts.QueriesPerMinute != 2.3 {
		t.Errorf("host scaling wrong: %+v", hosts)
	}
	tiny := ScaleHosts(BaseConfig(Riverside, Area2mi), 1000)
	if tiny.NumHosts < 1 || tiny.QueriesPerMinute < 0.5 {
		t.Errorf("scaling floors not applied: %+v", tiny)
	}
}

func TestParseRegion(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Region
	}{
		{"la", LosAngeles}, {"LosAngeles", LosAngeles}, {"los-angeles", LosAngeles},
		{"suburbia", Suburbia}, {"SYN", Suburbia}, {"synthetic", Suburbia},
		{"riverside", Riverside}, {"rv", Riverside},
	} {
		got, err := ParseRegion(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseRegion(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseRegion("gotham"); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestStrings(t *testing.T) {
	for _, r := range []Region{LosAngeles, Suburbia, Riverside, Region(9)} {
		if r.String() == "" {
			t.Errorf("empty region string for %d", int(r))
		}
	}
	for _, a := range []Area{Area2mi, Area30mi, Area(9)} {
		if a.String() == "" {
			t.Errorf("empty area string for %d", int(a))
		}
	}
	if subfig(LosAngeles) != "a" || subfig(Suburbia) != "b" || subfig(Riverside) != "c" {
		t.Error("subfig letters wrong")
	}
}

// A fast end-to-end sweep: the transmission-range trend of Figure 9 must
// hold on the 2x2 mi LA parameter set even at an aggressive duration scale.
func TestTransmissionRangeSweepTrend(t *testing.T) {
	opts := Options{DurationScale: 30}
	fr, err := TransmissionRangeSweep(LosAngeles, Area2mi, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Figure != "9a" || len(fr.Points) != 10 {
		t.Fatalf("unexpected figure result: %s with %d points", fr.Figure, len(fr.Points))
	}
	first, last := fr.Points[0], fr.Points[len(fr.Points)-1]
	if last.ShareServer >= first.ShareServer {
		t.Errorf("server share did not fall with range: %.1f%% -> %.1f%%",
			first.ShareServer, last.ShareServer)
	}
	// Shares must sum to ~100 at every point.
	for _, p := range fr.Points {
		sum := p.ShareSingle + p.ShareMulti + p.ShareServer
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("shares at x=%v sum to %v", p.X, sum)
		}
	}
	out := FormatFigure(fr)
	if !strings.Contains(out, "Figure 9a") || !strings.Contains(out, "Transmission Range") {
		t.Errorf("format output missing headers:\n%s", out)
	}
}

func TestCacheCapacitySweepRuns(t *testing.T) {
	fr, err := CacheCapacitySweep(Riverside, Area2mi, Options{DurationScale: 30})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Figure != "11c" || len(fr.Points) != 5 {
		t.Fatalf("figure = %s points = %d", fr.Figure, len(fr.Points))
	}
}

func TestKSweepTrend(t *testing.T) {
	fr, err := KSweep(LosAngeles, Area2mi, Options{DurationScale: 30})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Figure != "15a" {
		t.Fatalf("figure = %s", fr.Figure)
	}
	// Server share grows with k (Figure 15).
	if fr.Points[len(fr.Points)-1].ShareServer <= fr.Points[0].ShareServer {
		t.Errorf("server share did not grow with k: %.1f%% at k=%v vs %.1f%% at k=%v",
			fr.Points[0].ShareServer, fr.Points[0].X,
			fr.Points[len(fr.Points)-1].ShareServer, fr.Points[len(fr.Points)-1].X)
	}
}

func TestVelocitySweepRuns(t *testing.T) {
	fr, err := VelocitySweep(Suburbia, Area2mi, Options{DurationScale: 30})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Figure != "13b" || len(fr.Points) != 5 {
		t.Fatalf("figure = %s points = %d", fr.Figure, len(fr.Points))
	}
}

func TestFreeMovementComparisonRuns(t *testing.T) {
	road, free, err := FreeMovementComparison(LosAngeles, Area2mi, Options{DurationScale: 30})
	if err != nil {
		t.Fatal(err)
	}
	if road <= 0 && free <= 0 {
		t.Error("both modes report zero server share; implausible")
	}
}

func TestEINNvsINNReduction(t *testing.T) {
	fr, err := EINNvsINN(LosAngeles, Area30mi, 150, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range fr.Points {
		if p.EINNPages > p.INNPages {
			t.Errorf("k=%d: EINN pages %v exceed INN %v", p.K, p.EINNPages, p.INNPages)
		}
	}
	out := FormatFig17(fr)
	if !strings.Contains(out, "Figure 17") {
		t.Errorf("format output wrong:\n%s", out)
	}
}

func TestUncertainQuality(t *testing.T) {
	uq, err := UncertainQuality(LosAngeles, Area2mi, Options{DurationScale: 15})
	if err != nil {
		t.Fatal(err)
	}
	if uq.Queries == 0 {
		t.Fatal("no queries")
	}
	if uq.UncertainShare <= 0 {
		t.Skip("no uncertain answers at this scale")
	}
	if uq.Precision < 0.3 || uq.Precision > 1.0001 {
		t.Errorf("precision = %v, implausible", uq.Precision)
	}
	if uq.RankAccuracy > uq.Precision+1e-9 {
		t.Errorf("rank accuracy %v exceeds precision %v", uq.RankAccuracy, uq.Precision)
	}
}

func TestDiskIOStudy(t *testing.T) {
	fr, err := DiskIOStudy(Riverside, 60, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Points) == 0 || fr.TotalPages == 0 {
		t.Fatal("empty study")
	}
	for i, p := range fr.Points {
		if p.EINNFaults > p.INNFaults+1e-9 {
			t.Errorf("pool %.2f: EINN faults %v exceed INN %v",
				p.PoolFraction, p.EINNFaults, p.INNFaults)
		}
		if i > 0 && p.INNFaults > fr.Points[i-1].INNFaults+1e-9 {
			t.Errorf("faults grew with a larger pool: %v -> %v",
				fr.Points[i-1].INNFaults, p.INNFaults)
		}
	}
	last := fr.Points[len(fr.Points)-1]
	if last.PoolFraction == 1 && last.INNFaults != 0 {
		t.Errorf("full pool still faults: %v", last.INNFaults)
	}
	if !strings.Contains(FormatDiskIO(fr), "Disk I/O spectrum") {
		t.Error("format output missing header")
	}
}

func TestSortPointsByX(t *testing.T) {
	pts := []SeriesPoint{{X: 3}, {X: 1}, {X: 2}}
	SortPointsByX(pts)
	if pts[0].X != 1 || pts[2].X != 3 {
		t.Errorf("sort failed: %v", pts)
	}
}
