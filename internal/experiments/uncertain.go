package experiments

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
)

// UncertainQualityResult quantifies the accuracy a system trades away when
// hosts accept full-but-uncertain heaps without contacting the server
// (Algorithm 1 line 15 — an option the paper describes but does not
// evaluate). Precision is the fraction of returned POIs that belong to the
// true kNN set; RankAccuracy the fraction returned in the exactly correct
// rank position.
type UncertainQualityResult struct {
	Region Region
	Area   Area
	// UncertainShare is the % of queries answered uncertainly.
	UncertainShare float64
	// ServerShare is the remaining % that still reached the server.
	ServerShare float64
	// Precision over all uncertain answers, in [0,1].
	Precision float64
	// RankAccuracy over all uncertain answers, in [0,1].
	RankAccuracy float64
	// Queries audited.
	Queries int64
}

// UncertainQuality runs a simulation with AcceptUncertain enabled and audits
// every uncertain answer against brute-force ground truth.
func UncertainQuality(r Region, a Area, opts Options) (UncertainQualityResult, error) {
	opts = opts.normalize()
	cfg := ScaleHosts(ScaleDuration(BaseConfig(r, a), opts.DurationScale), opts.HostScale)
	cfg.AcceptUncertain = true
	cfg.Seed += opts.Seed
	_, cfg.Workers, cfg.QueryWorkers = opts.workerSplit(1)
	w, err := sim.New(cfg)
	if err != nil {
		return UncertainQualityResult{}, err
	}
	pois := w.Server().POIs()

	var hits, rankHits, returned int64
	w.SetAudit(func(q geom.Point, k int, answer []core.Candidate, src core.Source) {
		if src != core.SolvedUncertain {
			return
		}
		truth := kNearestIDs(q, pois, k)
		inTruth := make(map[int64]int, len(truth))
		for rank, id := range truth {
			inTruth[id] = rank
		}
		for i, c := range answer {
			returned++
			if rank, ok := inTruth[c.ID]; ok {
				hits++
				if rank == i {
					rankHits++
				}
			}
		}
	})
	m := w.Run()
	res := UncertainQualityResult{
		Region:         r,
		Area:           a,
		UncertainShare: m.ShareUncertain(),
		ServerShare:    m.SQRR(),
		Queries:        m.TotalQueries,
	}
	if returned > 0 {
		res.Precision = float64(hits) / float64(returned)
		res.RankAccuracy = float64(rankHits) / float64(returned)
	} else {
		res.Precision = math.NaN()
		res.RankAccuracy = math.NaN()
	}
	return res, nil
}

// UncertainQualityAll runs UncertainQuality for every region of the study
// area, fanning the independent simulations across opts.Workers. Results are
// returned in Regions order regardless of scheduling.
func UncertainQualityAll(a Area, opts Options) ([]UncertainQualityResult, error) {
	opts = opts.normalize()
	outer, move, query := opts.workerSplit(len(Regions))
	if opts.WorldWorkers == 0 {
		// Pin the derived split so each region's UncertainQuality call does
		// not re-derive a budget that assumes it runs alone.
		opts.WorldWorkers = move
	}
	if opts.QueryWorkers == 0 {
		opts.QueryWorkers = query
	}
	out := make([]UncertainQualityResult, len(Regions))
	tasks := make([]RunTask, len(Regions))
	for i, r := range Regions {
		i, r := i, r
		tasks[i] = func() error {
			res, err := UncertainQuality(r, a, opts)
			if err != nil {
				return err
			}
			out[i] = res
			return nil
		}
	}
	if err := RunParallel(tasks, outer); err != nil {
		return nil, err
	}
	return out, nil
}

// kNearestIDs returns the IDs of the k nearest POIs of q in rank order.
func kNearestIDs(q geom.Point, pois []core.POI, k int) []int64 {
	type hit struct {
		id int64
		d  float64
	}
	hits := make([]hit, len(pois))
	for i, p := range pois {
		hits[i] = hit{id: p.ID, d: q.Dist2(p.Loc)}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].d < hits[j].d })
	if len(hits) > k {
		hits = hits[:k]
	}
	ids := make([]int64, len(hits))
	for i, h := range hits {
		ids[i] = h.id
	}
	return ids
}

// AuditedUncertainSims documents the knob: uncertain answers are only
// produced when the host opts in, so the main figures are unaffected.
var _ = core.SolvedUncertain
