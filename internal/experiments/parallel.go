package experiments

import (
	"runtime"
	"sync"
)

// RunTask is one independent unit of an experiment: typically "build one
// sim.World and run it", writing its result into a caller-owned slot. Tasks
// must not share mutable state — each derives everything it needs (including
// its random stream) from the task index, so the outcome is identical
// whatever order or interleaving the pool executes them in.
type RunTask func() error

// RunParallel executes tasks across a fixed pool of workers and returns the
// first error in task order (not completion order). workers <= 0 means
// runtime.GOMAXPROCS(0); workers == 1 degenerates to a plain sequential
// loop. Because every task owns its result slot and its seed, the output is
// bit-identical for any worker count — the determinism contract the figure
// suite relies on (verified by TestParallelMatchesSequential*).
func RunParallel(tasks []RunTask, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			if err := t(); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(tasks))
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = tasks[i]()
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
