package experiments

import (
	"runtime"
	"sync"
)

// RunTask is one independent unit of an experiment: typically "build one
// sim.World and run it", writing its result into a caller-owned slot. Tasks
// must not share mutable state — each derives everything it needs (including
// its random stream) from the task index, so the outcome is identical
// whatever order or interleaving the pool executes them in.
type RunTask func() error

// RunParallel executes tasks across a fixed pool of workers and returns the
// first error in task order (not completion order). workers <= 0 means
// runtime.GOMAXPROCS(0); workers == 1 degenerates to a plain sequential
// loop. Because every task owns its result slot and its seed, the output is
// bit-identical for any worker count — the determinism contract the figure
// suite relies on (verified by TestParallelMatchesSequential*).
// WorkerBudget splits a core budget between the three levels of the
// parallelism model: the outer fan-out of independent simulation runs
// (RunParallel), the intra-world movement workers of each run
// (sim.Config.Workers), and the query-resolve workers of each run
// (sim.Config.QueryWorkers). The rule is outer × max(move, query) ≤ budget,
// so a sweep never oversubscribes the machine: a wide sweep saturates the
// budget with whole runs (move = query = 1), while a sweep with fewer
// points than cores gives the spare cores to each run. Movement and query
// resolution alternate within a step — they never run at the same time —
// so both inner levels share the same per-run budget rather than splitting
// it. budget <= 0 means runtime.GOMAXPROCS(0). All three levels are
// deterministic, so the split is purely a scheduling decision — any
// (outer, move, query) triple produces bit-identical results.
func WorkerBudget(budget, tasks int) (outer, move, query int) {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if tasks < 1 {
		tasks = 1
	}
	outer = budget
	if tasks < outer {
		outer = tasks
	}
	inner := budget / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner, inner
}

func RunParallel(tasks []RunTask, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			if err := t(); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(tasks))
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = tasks[i]()
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
