package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/sim"
)

// SeriesPoint is one x position of a sweep with the three query-resolution
// shares the paper's Figures 9–16 plot, plus the communication-overhead and
// server page-access series the same runs produce. When Options.Repeats > 1
// every value is a mean over the repeated runs and the Std fields carry their
// sample standard deviations (zero for a single run).
type SeriesPoint struct {
	X           float64 // swept parameter value
	ShareSingle float64 // % solved by a single peer
	ShareMulti  float64 // % solved by multiple peers
	ShareServer float64 // % solved by the server (SQRR)
	CommBytes   float64 // mean P2P wire bytes per query
	ServerPages float64 // mean R*-tree page accesses per server-resolved query

	StdSingle float64 // stddev of ShareSingle across repeats
	StdMulti  float64 // stddev of ShareMulti across repeats
	StdServer float64 // stddev of ShareServer across repeats
	StdComm   float64 // stddev of CommBytes across repeats
	StdPages  float64 // stddev of ServerPages across repeats
}

// FigureResult is one sub-figure: a sweep for one region.
type FigureResult struct {
	Figure string // e.g. "9a"
	Region Region
	Area   Area
	XLabel string
	Points []SeriesPoint
}

// Options tunes how the experiment runners execute.
type Options struct {
	// DurationScale divides the paper's simulated durations (default 30:
	// the 1 h runs become 2 min, the 5 h runs 10 min). Use 1 for the full
	// paper-length runs.
	DurationScale float64
	// HostScale optionally divides host counts and query rates for smoke
	// runs (default 1 = faithful densities).
	HostScale float64
	// Seed offsets the base seed of every run.
	Seed int64
	// Workers is the total core budget of a runner: it caps how many
	// independent simulation runs execute concurrently (0 = GOMAXPROCS,
	// 1 = sequential) and, through WorkerBudget, how many movement workers
	// each run gets (outer tasks × inner workers ≤ Workers). Any value
	// produces bit-identical results; see RunParallel and WorkerBudget.
	Workers int
	// WorldWorkers overrides the intra-world movement worker count
	// (sim.Config.Workers) of every simulation the runner launches. 0
	// derives it from the Workers budget via WorkerBudget. Results are
	// identical for any value.
	WorldWorkers int
	// QueryWorkers overrides the query-resolve worker count
	// (sim.Config.QueryWorkers) of every simulation the runner launches. 0
	// derives it from the Workers budget via WorkerBudget. Results are
	// identical for any value.
	QueryWorkers int
	// Repeats runs every sweep point with this many independent seeds and
	// reports the mean shares plus their sample standard deviation in the
	// SeriesPoint Std fields. 0 or 1 = a single run per point (the
	// FreeMovementComparison study defaults to 3 — its effect is below
	// single-run noise).
	Repeats int
	// CommonRandomNumbers gives every point of a sweep the identical base
	// seed, pairing the runs as a variance-reduction technique. Off by
	// default: each point then draws an independent seed, so the points are
	// independent samples. Repeated runs of the same point always draw
	// distinct seeds.
	CommonRandomNumbers bool
	// PerQueryGather forwards sim.Config.PerQueryGather to every launched
	// simulation: each query re-sweeps the host grid instead of reading the
	// batched per-cell snapshots. Output is bit-identical either way; the
	// determinism CI job diffs the two modes through this switch.
	PerQueryGather bool
	// FullRebuild forwards sim.Config.FullRebuild to every launched
	// simulation: the host grid is rebuilt from scratch after each movement
	// step instead of patched from the moved-host delta. Output is
	// bit-identical either way; the determinism CI job diffs the two modes
	// through this switch.
	FullRebuild bool
}

// normalize fills defaults.
func (o Options) normalize() Options {
	if o.DurationScale <= 0 {
		o.DurationScale = 30
	}
	if o.HostScale <= 0 {
		o.HostScale = 1
	}
	return o
}

// workerSplit resolves the three parallelism levels for a runner with the
// given task count: the outer RunParallel worker count and the
// sim.Config.Workers / sim.Config.QueryWorkers values of each launched
// simulation, honoring explicit WorldWorkers / QueryWorkers overrides.
func (o Options) workerSplit(tasks int) (outer, move, query int) {
	outer, move, query = WorkerBudget(o.Workers, tasks)
	if o.WorldWorkers > 0 {
		move = o.WorldWorkers
	}
	if o.QueryWorkers > 0 {
		query = o.QueryWorkers
	}
	return outer, move, query
}

// repeats resolves the effective per-point run count.
func (o Options) repeats() int {
	if o.Repeats < 1 {
		return 1
	}
	return o.Repeats
}

// sweepSeed derives the seed of repeat rep of sweep point i. By default
// every point gets its own seed so the points are independent samples; with
// CommonRandomNumbers all points share the base seed (paired runs). Repeats
// of the same point always get distinct seeds — the same 7919 stride the
// free-movement study has always used — so the per-point samples are
// independent under either policy.
func sweepSeed(baseSeed int64, opts Options, i, rep int) int64 {
	s := baseSeed + opts.Seed
	if !opts.CommonRandomNumbers {
		s += int64(i) * 1_000_000
	}
	return s + int64(rep)*7919
}

// shareSample is one run's contribution to a sweep point.
type shareSample struct {
	single, multi, server float64
	bytes, pages          float64
}

// aggregateShares folds the repeated samples of one x into its SeriesPoint:
// mean shares, communication overhead, and page accesses, plus their sample
// standard deviations (zero for n = 1).
func aggregateShares(x float64, samples []shareSample) SeriesPoint {
	n := float64(len(samples))
	var p SeriesPoint
	p.X = x
	for _, s := range samples {
		p.ShareSingle += s.single / n
		p.ShareMulti += s.multi / n
		p.ShareServer += s.server / n
		p.CommBytes += s.bytes / n
		p.ServerPages += s.pages / n
	}
	if len(samples) > 1 {
		var vs, vm, vv, vb, vp float64
		for _, s := range samples {
			vs += (s.single - p.ShareSingle) * (s.single - p.ShareSingle)
			vm += (s.multi - p.ShareMulti) * (s.multi - p.ShareMulti)
			vv += (s.server - p.ShareServer) * (s.server - p.ShareServer)
			vb += (s.bytes - p.CommBytes) * (s.bytes - p.CommBytes)
			vp += (s.pages - p.ServerPages) * (s.pages - p.ServerPages)
		}
		p.StdSingle = math.Sqrt(vs / (n - 1))
		p.StdMulti = math.Sqrt(vm / (n - 1))
		p.StdServer = math.Sqrt(vv / (n - 1))
		p.StdComm = math.Sqrt(vb / (n - 1))
		p.StdPages = math.Sqrt(vp / (n - 1))
	}
	return p
}

// runSweep executes opts.Repeats simulations per sweep value, mutating the
// base config through mut. The runs are independent and execute across
// opts.Workers goroutines; each task owns its result slot and derives its
// seed from its (point, repeat) index, so the series is identical for any
// worker count.
func runSweep(base sim.Config, xs []float64, opts Options, mut func(cfg *sim.Config, x float64)) ([]SeriesPoint, error) {
	opts = opts.normalize()
	repeats := opts.repeats()
	samples := make([]shareSample, len(xs)*repeats)
	outer, move, query := opts.workerSplit(len(samples))
	tasks := make([]RunTask, len(samples))
	for i, x := range xs {
		for rep := 0; rep < repeats; rep++ {
			slot, i, x, rep := i*repeats+rep, i, x, rep
			tasks[slot] = func() error {
				cfg := ScaleHosts(ScaleDuration(base, opts.DurationScale), opts.HostScale)
				cfg.Seed = sweepSeed(base.Seed, opts, i, rep)
				cfg.Workers = move
				cfg.QueryWorkers = query
				cfg.PerQueryGather = opts.PerQueryGather
				cfg.FullRebuild = opts.FullRebuild
				mut(&cfg, x)
				w, err := sim.New(cfg)
				if err != nil {
					return fmt.Errorf("sweep x=%v: %w", x, err)
				}
				m := w.Run()
				samples[slot] = shareSample{
					single: m.ShareSingle(),
					multi:  m.ShareMulti(),
					server: m.SQRR(),
					bytes:  m.PeerBytesPerQuery(),
					pages:  m.PagesPerServerQuery(),
				}
				return nil
			}
		}
	}
	if err := RunParallel(tasks, outer); err != nil {
		return nil, err
	}
	pts := make([]SeriesPoint, len(xs))
	for i, x := range xs {
		pts[i] = aggregateShares(x, samples[i*repeats:(i+1)*repeats])
	}
	return pts, nil
}

// TransmissionRangeSweep reproduces Figures 9 (2×2 mi) and 10 (30×30 mi):
// the wireless transmission range varies from 10/20 m to 200 m.
func TransmissionRangeSweep(r Region, a Area, opts Options) (FigureResult, error) {
	xs := []float64{20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
	pts, err := runSweep(BaseConfig(r, a), xs, opts, func(cfg *sim.Config, x float64) {
		cfg.TxRange = x
	})
	fig := "9"
	if a == Area30mi {
		fig = "10"
	}
	return FigureResult{
		Figure: fig + subfig(r), Region: r, Area: a,
		XLabel: "Transmission Range (m)", Points: pts,
	}, err
}

// CacheCapacitySweep reproduces Figures 11 and 12: the per-host cache
// capacity varies (1–9 in the small area, 4–20 in the large one).
func CacheCapacitySweep(r Region, a Area, opts Options) (FigureResult, error) {
	xs := []float64{1, 3, 5, 7, 9}
	if a == Area30mi {
		xs = []float64{4, 8, 12, 16, 20}
	}
	pts, err := runSweep(BaseConfig(r, a), xs, opts, func(cfg *sim.Config, x float64) {
		cfg.CacheSize = int(x)
	})
	fig := "11"
	if a == Area30mi {
		fig = "12"
	}
	return FigureResult{
		Figure: fig + subfig(r), Region: r, Area: a,
		XLabel: "Number of Cached Items", Points: pts,
	}, err
}

// VelocitySweep reproduces Figures 13 and 14: the host movement velocity
// varies from 10 to 50 mph.
func VelocitySweep(r Region, a Area, opts Options) (FigureResult, error) {
	xs := []float64{10, 20, 30, 40, 50}
	pts, err := runSweep(BaseConfig(r, a), xs, opts, func(cfg *sim.Config, x float64) {
		cfg.Velocity = x * MPH
	})
	fig := "13"
	if a == Area30mi {
		fig = "14"
	}
	return FigureResult{
		Figure: fig + subfig(r), Region: r, Area: a,
		XLabel: "Mobile Host Speed (mph)", Points: pts,
	}, err
}

// KSweep reproduces Figures 15 and 16: the requested neighbor count k is
// fixed per sweep point (1–9 in the small area, 3–15 in the large one).
func KSweep(r Region, a Area, opts Options) (FigureResult, error) {
	xs := []float64{1, 3, 5, 7, 9}
	if a == Area30mi {
		xs = []float64{3, 6, 9, 12, 15}
	}
	pts, err := runSweep(BaseConfig(r, a), xs, opts, func(cfg *sim.Config, x float64) {
		cfg.KMin, cfg.KMax = int(x), int(x)
	})
	fig := "15"
	if a == Area30mi {
		fig = "16"
	}
	return FigureResult{
		Figure: fig + subfig(r), Region: r, Area: a,
		XLabel: "Number of k", Points: pts,
	}, err
}

// FreeMovementComparison reproduces the §4.3 observation: the free movement
// mode lowers the server share slightly relative to the road network mode,
// most visibly in dense regions. The delta is a few percent — below
// single-run noise — so each mode is averaged over Options.Repeats seeds
// (defaulting to 3 here rather than 1: the study is meaningless unaveraged).
// It returns the averaged (roadSQRR, freeSQRR).
func FreeMovementComparison(r Region, a Area, opts Options) (road, free float64, err error) {
	opts = opts.normalize()
	if opts.Repeats < 1 {
		opts.Repeats = 3
	}
	repeats := opts.repeats()
	modes := []sim.Mode{sim.ModeRoadNetwork, sim.ModeFreeMovement}
	shares := make([]float64, len(modes)*repeats)
	outer, move, query := opts.workerSplit(len(shares))
	tasks := make([]RunTask, 0, len(shares))
	for mi, mode := range modes {
		for rep := 0; rep < repeats; rep++ {
			slot, mode, rep := mi*repeats+rep, mode, rep
			tasks = append(tasks, func() error {
				cfg := ScaleHosts(ScaleDuration(BaseConfig(r, a), opts.DurationScale), opts.HostScale)
				cfg.Mode = mode
				cfg.Seed += opts.Seed + int64(rep)*7919
				cfg.Workers = move
				cfg.QueryWorkers = query
				cfg.PerQueryGather = opts.PerQueryGather
				cfg.FullRebuild = opts.FullRebuild
				w, werr := sim.New(cfg)
				if werr != nil {
					return werr
				}
				shares[slot] = w.Run().SQRR()
				return nil
			})
		}
	}
	if err := RunParallel(tasks, outer); err != nil {
		return 0, 0, err
	}
	for rep := 0; rep < repeats; rep++ {
		road += shares[rep] / float64(repeats)
		free += shares[repeats+rep] / float64(repeats)
	}
	return road, free, nil
}

func subfig(r Region) string {
	switch r {
	case LosAngeles:
		return "a"
	case Suburbia:
		return "b"
	default:
		return "c"
	}
}

// ---------------------------------------------------------------------------
// Figure 17: EINN vs INN page accesses at the server.

// Fig17Point compares R*-tree page accesses of the extended (EINN) and the
// original (INN) incremental NN algorithm for one k.
type Fig17Point struct {
	K         int     `json:"k"`
	EINNPages float64 `json:"einn_pages"` // mean pages per query
	INNPages  float64 `json:"inn_pages"`
	Reduction float64 `json:"reduction_pct"` // % fewer pages with EINN
}

// Fig17Result is the Figure 17 series for one region.
type Fig17Result struct {
	Region Region
	Points []Fig17Point
}

// EINNvsINN reproduces Figure 17: for each k, queries are generated at
// uniformly random locations (as in §4.4); each query first runs peer
// verification against a synthetic population of cached results (giving the
// realistic mix of pruning bounds a running system produces), then the
// server executes the query with both INN (no bounds) and EINN (with the
// client's bounds), counting R*-tree node accesses.
//
// The POI set is clustered, not uniform: the paper indexes real gas-station
// locations, which concentrate along arterials, and the downward-pruning
// benefit of EINN depends on leaf MBRs small enough to hide inside the
// client's certain circle — exactly what clustering produces (DESIGN.md,
// substitution D3).
func EINNvsINN(r Region, a Area, queries int, opts Options) (Fig17Result, error) {
	opts = opts.normalize()
	base := BaseConfig(r, a)
	rng := rand.New(rand.NewSource(base.Seed + opts.Seed + 17))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(base.AreaWidth, base.AreaHeight))
	pois := sim.ClusteredPOIs(base.NumPOIs, bounds, base.NumPOIs/25, base.AreaWidth/250, rng)
	setupTree := sim.NewServerModule(pois, base.RTreeFanout).Tree()

	// Synthetic peer caches: hosts that previously queried at random
	// locations and hold their exact top-C_Size NN sets — what the running
	// simulator's steady state produces. Built once, read-only afterwards.
	nCaches := 2000
	caches := make([]core.PeerCache, nCaches)
	for i := range caches {
		loc := geom.Pt(rng.Float64()*base.AreaWidth, rng.Float64()*base.AreaHeight)
		res := nn.BestFirst(setupTree, loc, base.CacheSize)
		ns := make([]core.POI, len(res))
		for j, rr := range res {
			ns[j] = rr.Data.(core.POI)
		}
		caches[i] = core.NewPeerCache(loc, ns)
	}
	// Index cache locations in a uniform grid (the simulator's hostGrid
	// cell math) so each query scans only the cells within transmission
	// range instead of all nCaches locations. Indices are sorted back to
	// ascending cache order, so the gathered peer list is exactly what the
	// old O(#caches) scan produced.
	nearCaches := newCacheIndex(caches, bounds, base.TxRange)

	ks := []int{4, 6, 8, 10, 12, 14}
	points := make([]Fig17Point, len(ks))
	tasks := make([]RunTask, len(ks))
	for ki, k := range ks {
		ki, k := ki, k
		tasks[ki] = func() error {
			// Each k measures on its own tree — the page-access counter is
			// per-tree mutable state — and draws its workload from a seed
			// derived from (base seed, k), so the series is independent of
			// both the other ks and the execution order.
			tree := sim.NewServerModule(pois, base.RTreeFanout).Tree()
			rng := rand.New(rand.NewSource(base.Seed + opts.Seed + 17 + int64(k)*7919))
			var einnTotal, innTotal int64
			for qi := 0; qi < queries; qi++ {
				// A querying host always carries its own cached previous
				// result, so sample the query displaced from a cache location
				// by the travel since that query was cached.
				home := caches[rng.Intn(nCaches)]
				drift := rng.Float64() * base.TxRange
				angle := rng.Float64() * 2 * math.Pi
				q := home.QueryLoc.Add(geom.Pt(drift*math.Cos(angle), drift*math.Sin(angle)))
				peers := nearCaches(q, base.TxRange)
				heap := core.NewResultHeap(k)
				for _, p := range core.SortPeersByProximity(q, peers) {
					core.VerifySinglePeer(q, p, heap)
					if heap.Complete() {
						break
					}
				}
				if heap.Complete() {
					// Peer-resolved queries never reach the server; Figure 17
					// measures server-side behavior, so draw another query.
					qi--
					continue
				}
				b := heap.Bounds()
				// Cache policy 2 (§4.1): a query that reaches the server asks
				// for C_Size nearest neighbors to refill the host cache. The
				// k-NN answer itself only needs the top k, which the upper
				// bound guarantees; EINN therefore truncates the deep refill
				// search at the bound while the original INN pages all the way
				// to the C_Size-th neighbor.
				want := base.CacheSize
				if k > want {
					want = k
				}

				tree.ResetAccessCount()
				_ = nn.BestFirst(tree, q, want)
				innTotal += tree.AccessCount()

				tree.ResetAccessCount()
				_ = nn.EINN(tree, q, want-heap.NumCertain(), b)
				einnTotal += tree.AccessCount()
			}
			n := float64(queries)
			einn, inn := float64(einnTotal)/n, float64(innTotal)/n
			red := 0.0
			if inn > 0 {
				red = 100 * (inn - einn) / inn
			}
			points[ki] = Fig17Point{
				K: k, EINNPages: einn, INNPages: inn, Reduction: red,
			}
			return nil
		}
	}
	if err := RunParallel(tasks, opts.Workers); err != nil {
		return Fig17Result{}, err
	}
	return Fig17Result{Region: r, Points: points}, nil
}

// ---------------------------------------------------------------------------
// Text rendering.

// FormatFigure renders a figure result as an aligned text table. With
// repeated runs (any nonzero Std field) every value is shown as mean±std.
func FormatFigure(fr FigureResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s (%s)\n", fr.Figure, fr.Region, fr.Area)
	fmt.Fprintf(&b, "%-26s %14s %14s %14s %16s %14s\n",
		fr.XLabel, "single-peer %", "multi-peer %", "server %", "bytes/query", "pages/srv-query")
	withStd := false
	for _, p := range fr.Points {
		if p.StdSingle != 0 || p.StdMulti != 0 || p.StdServer != 0 || p.StdComm != 0 || p.StdPages != 0 {
			withStd = true
			break
		}
	}
	for _, p := range fr.Points {
		if withStd {
			fmt.Fprintf(&b, "%-26.0f %14s %14s %14s %16s %14s\n", p.X,
				fmt.Sprintf("%.1f±%.1f", p.ShareSingle, p.StdSingle),
				fmt.Sprintf("%.1f±%.1f", p.ShareMulti, p.StdMulti),
				fmt.Sprintf("%.1f±%.1f", p.ShareServer, p.StdServer),
				fmt.Sprintf("%.0f±%.0f", p.CommBytes, p.StdComm),
				fmt.Sprintf("%.1f±%.1f", p.ServerPages, p.StdPages))
		} else {
			fmt.Fprintf(&b, "%-26.0f %14.1f %14.1f %14.1f %16.0f %14.1f\n",
				p.X, p.ShareSingle, p.ShareMulti, p.ShareServer, p.CommBytes, p.ServerPages)
		}
	}
	return b.String()
}

// FormatFig17 renders the Figure 17 comparison as an aligned text table.
func FormatFig17(fr Fig17Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 17 — EINN vs INN page accesses (%s)\n", fr.Region)
	fmt.Fprintf(&b, "%-6s %14s %14s %12s\n", "k", "EINN pages", "INN pages", "reduction %")
	for _, p := range fr.Points {
		fmt.Fprintf(&b, "%-6d %14.2f %14.2f %12.1f\n", p.K, p.EINNPages, p.INNPages, p.Reduction)
	}
	return b.String()
}

// SortPointsByX orders sweep points ascending (sweeps already run in order,
// but external callers composing results may need it).
func SortPointsByX(pts []SeriesPoint) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
}
