package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/pagestore"
	"repro/internal/rtree"
	"repro/internal/sim"
)

// DiskIOPoint is one buffer-pool size of the §4.4 I/O spectrum study.
type DiskIOPoint struct {
	// PoolPages is the buffer pool capacity; PoolFraction the ratio to the
	// packed file size.
	PoolPages    int     `json:"pool_pages"`
	PoolFraction float64 `json:"pool_fraction"`
	// INNFaults and EINNFaults are mean disk faults (buffer misses) per
	// query for the two algorithms.
	INNFaults  float64 `json:"inn_faults_per_query"`
	EINNFaults float64 `json:"einn_faults_per_query"`
	// HitRate is the INN run's buffer hit rate.
	HitRate float64 `json:"hit_rate"`
}

// DiskIOResult is the full study for one region's POI set.
type DiskIOResult struct {
	Region     Region
	TotalPages int
	K          int
	Points     []DiskIOPoint
}

// DiskIOStudy reproduces the I/O spectrum discussion of §4.4: "all requested
// memory pages are found in main memory or every I/O leads to disk
// activity... Since the EINN usually requests fewer R*-tree nodes and
// objects than INN, we believe that the kNN search algorithm with query
// pruning bounds will have good scalability with large data sets."
//
// The study packs the region's clustered POI set into a page file, then runs
// the Figure 17 workload against buffer pools from nearly-nothing to
// everything-resident, measuring actual disk faults per query for INN and
// EINN. The paper's claim holds when EINN's fault count stays below INN's
// across the spectrum — most visibly at small pools where every avoided
// page access is a disk read avoided.
func DiskIOStudy(r Region, queries int, opts Options) (DiskIOResult, error) {
	opts = opts.normalize()
	base := BaseConfig(r, Area30mi)
	rng := rand.New(rand.NewSource(base.Seed + opts.Seed + 44))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(base.AreaWidth, base.AreaHeight))
	pois := sim.ClusteredPOIs(base.NumPOIs, bounds, base.NumPOIs/25, base.AreaWidth/250, rng)

	tree := rtree.New(base.RTreeFanout)
	for _, p := range pois {
		tree.InsertPoint(p.Loc, p)
	}
	pager := pagestore.NewMemPager()
	err := pagestore.Pack(tree, pager, func(data any) pagestore.LeafItem {
		p := data.(core.POI)
		return pagestore.LeafItem{ID: p.ID, Loc: p.Loc}
	})
	if err != nil {
		return DiskIOResult{}, err
	}

	// Peer caches for realistic bounds, as in EINNvsINN.
	caches := make([]core.PeerCache, 1200)
	for i := range caches {
		loc := geom.Pt(rng.Float64()*base.AreaWidth, rng.Float64()*base.AreaHeight)
		res := nn.BestFirst(tree, loc, base.CacheSize)
		ns := make([]core.POI, len(res))
		for j, rr := range res {
			ns[j] = rr.Data.(core.POI)
		}
		caches[i] = core.NewPeerCache(loc, ns)
	}

	const k = 6
	type workItem struct {
		q      geom.Point
		bounds nn.Bounds
		want   int
	}
	// Pre-generate the query workload once so every pool size sees the
	// identical sequence. Cache lookups go through the uniform-grid index
	// rather than a scan over all caches.
	nearCaches := newCacheIndex(caches, bounds, base.TxRange)
	var work []workItem
	for len(work) < queries {
		home := caches[rng.Intn(len(caches))]
		drift := rng.Float64() * base.TxRange
		angle := rng.Float64() * 2 * math.Pi
		q := home.QueryLoc.Add(geom.Pt(drift*math.Cos(angle), drift*math.Sin(angle)))
		peers := nearCaches(q, base.TxRange)
		heap := core.NewResultHeap(base.CacheSize)
		for _, p := range core.SortPeersByProximity(q, peers) {
			core.VerifySinglePeer(q, p, heap)
			if heap.NumCertain() >= k {
				break
			}
		}
		if heap.NumCertain() >= k {
			continue // peer-resolved
		}
		b := heap.Bounds()
		b.HasUpper = false
		if ub, ok := heap.UpperBoundFor(k); ok {
			b.Upper, b.HasUpper = ub, true
		}
		work = append(work, workItem{
			q:      q,
			bounds: b,
			want:   base.CacheSize - heap.NumCertain(),
		})
	}

	total := pager.NumPages()
	fractions := []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1.0}
	out := DiskIOResult{Region: r, TotalPages: total, K: k}
	out.Points = make([]DiskIOPoint, len(fractions))
	// The pool sizes are independent measurements over the same read-only
	// page file and workload: fan them across opts.Workers. Each task opens
	// its own DiskTree, so the buffer pool and its statistics are private;
	// the shared pager only serves concurrent page reads.
	tasks := make([]RunTask, len(fractions))
	for i, frac := range fractions {
		i, frac := i, frac
		tasks[i] = func() error {
			pool := int(frac * float64(total))
			if pool < 2 {
				pool = 2
			}
			run := func(useBounds bool) (faults float64, hitRate float64, err error) {
				dt, err := pagestore.OpenDiskTree(pager, pool)
				if err != nil {
					return 0, 0, err
				}
				// One pass to warm the pool, one measured pass.
				for pass := 0; pass < 2; pass++ {
					if pass == 1 {
						dt.Pool().ResetStats()
					}
					for _, wi := range work {
						if useBounds {
							nn.EINNOver(dt, wi.q, wi.want, wi.bounds)
						} else {
							nn.BestFirstOver(dt, wi.q, base.CacheSize)
						}
					}
				}
				_, misses := dt.Pool().Stats()
				return float64(misses) / float64(len(work)), dt.Pool().HitRate(), nil
			}
			innFaults, hitRate, err := run(false)
			if err != nil {
				return err
			}
			einnFaults, _, err := run(true)
			if err != nil {
				return err
			}
			out.Points[i] = DiskIOPoint{
				PoolPages:    pool,
				PoolFraction: frac,
				INNFaults:    innFaults,
				EINNFaults:   einnFaults,
				HitRate:      hitRate,
			}
			return nil
		}
	}
	if err := RunParallel(tasks, opts.Workers); err != nil {
		return out, err
	}
	return out, nil
}

// FormatDiskIO renders the study as an aligned text table.
func FormatDiskIO(r DiskIOResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Disk I/O spectrum (§4.4) — %s, %d pages packed, k=%d\n",
		r.Region, r.TotalPages, r.K)
	fmt.Fprintf(&b, "%-12s %10s %14s %14s %10s\n",
		"pool frac", "pages", "INN faults/q", "EINN faults/q", "hit rate")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12.2f %10d %14.2f %14.2f %9.1f%%\n",
			p.PoolFraction, p.PoolPages, p.INNFaults, p.EINNFaults, 100*p.HitRate)
	}
	return b.String()
}
