package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
)

// deltaTrace drives a hostGrid through steps of randomized relocation via
// applyDelta while a reference grid is fully rebuilt from the same cell
// assignment, and requires the raw CSR arrays to stay byte-identical. It
// also checks the affected-cells return: ascending, distinct, exactly the
// from/to cells of the delta.
func deltaTrace(t *testing.T, seed int64, n, steps, workers int, moveFrac float64) {
	t.Helper()
	const w, h = 3000.0, 2000.0
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(w, h))
	rng := rand.New(rand.NewSource(seed))
	g := newHostGrid(bounds, n, 250)
	ref := newHostGrid(bounds, n, 250)

	pos := make([]geom.Point, n)
	cells := make([]int32, n)
	randPt := func() geom.Point {
		// Overflow the bounds a little so border clamping is part of the
		// property, like FuzzHostGridNeighbors does.
		return geom.Pt(rng.Float64()*1.1*w-0.05*w, rng.Float64()*1.1*h-0.05*h)
	}
	for i := range pos {
		pos[i] = randPt()
		cells[i] = g.cellIndex(pos[i])
	}
	g.rebuild(cells)

	var movers []moverRec
	for step := 0; step < steps; step++ {
		movers = movers[:0]
		wantAffected := map[int32]bool{}
		for i := range pos {
			if rng.Float64() >= moveFrac {
				continue
			}
			pos[i] = randPt()
			if c := g.cellIndex(pos[i]); c != cells[i] {
				movers = append(movers, moverRec{host: int32(i), from: cells[i], to: c})
				wantAffected[cells[i]] = true
				wantAffected[c] = true
				cells[i] = c
			}
		}
		affected := g.applyDelta(cells, movers, workers)
		ref.rebuild(cells)
		if !reflect.DeepEqual(g.start, ref.start) {
			t.Fatalf("step %d (%d movers): start arrays diverged", step, len(movers))
		}
		if !reflect.DeepEqual(g.entries, ref.entries) {
			t.Fatalf("step %d (%d movers): entries arrays diverged", step, len(movers))
		}
		want := make([]int32, 0, len(wantAffected))
		for c := range wantAffected {
			want = append(want, c)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(want) == 0 {
			want = nil
		}
		got := affected
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: affected cells %v, want %v", step, got, want)
		}
	}
}

// TestIncrementalGridMatchesFullRebuild is the tentpole oracle at the data-
// structure level, swept over move fractions from nobody-moved to
// everybody-moved and over copy-phase worker counts.
func TestIncrementalGridMatchesFullRebuild(t *testing.T) {
	cases := []struct {
		name     string
		moveFrac float64
		workers  int
	}{
		{"none-moved", 0, 1},
		{"sparse", 0.01, 1},
		{"third", 0.33, 1},
		{"third-workers4", 0.33, 4},
		{"third-workers7", 0.33, 7},
		{"all-moved", 1, 1},
		{"all-moved-workers8", 1, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			deltaTrace(t, 11, 800, 40, tc.workers, tc.moveFrac)
		})
	}
}

// TestApplyDeltaSingleCellWorld exercises the degenerate geometry where every
// from and to collapses onto one cell: the delta is all self-moves filtered
// out by the movement phase, but a hand-built mover list must still be a
// no-op rather than corrupt the index. (The movement phase never emits
// from==to records; this pins applyDelta's behavior at the boundary anyway.)
func TestApplyDeltaSingleCellWorld(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	g := newHostGrid(bounds, 4, 500) // one cell covers everything
	cells := []int32{0, 0, 0, 0}
	g.rebuild(cells)
	if got := g.applyDelta(cells, nil, 1); got != nil {
		t.Fatalf("empty delta returned affected cells %v", got)
	}
	ref := newHostGrid(bounds, 4, 500)
	ref.rebuild(cells)
	if !reflect.DeepEqual(g.entries, ref.entries) || !reflect.DeepEqual(g.start, ref.start) {
		t.Fatal("empty delta changed the index")
	}
}

// FuzzApplyDelta fuzzes incremental maintenance against the counting rebuild
// over randomized populations, trace lengths, move fractions and worker
// counts.
func FuzzApplyDelta(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(5), uint8(30), uint8(1))
	f.Add(int64(7), uint16(1), uint8(8), uint8(100), uint8(4))
	f.Add(int64(42), uint16(900), uint8(3), uint8(0), uint8(8))
	f.Add(int64(-9), uint16(64), uint8(12), uint8(75), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, steps, movePct, workers uint8) {
		if n == 0 || n > 1500 {
			return
		}
		deltaTrace(t, seed, int(n), int(steps%16)+1, int(workers%9)+1, float64(movePct%101)/100)
	})
}

// TestRawCellFloorsNegativeCoordinates is the regression test for the
// truncation bug: int() truncates toward zero, folding the out-of-bounds
// band (-cell, 0) onto raw cell 0 and making points on either side of the
// origin share a raw cell. rawCell must floor.
func TestRawCellFloorsNegativeCoordinates(t *testing.T) {
	g := newCellGeom(geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000)), 100)
	cases := []struct {
		p      geom.Point
		cx, cy int
	}{
		{geom.Pt(-0.5, -0.5), -1, -1}, // the aliasing band itself
		{geom.Pt(0.5, 0.5), 0, 0},     // in-bounds side of the origin
		{geom.Pt(-150, 50), -2, 0},    // a full cell below the origin
		{geom.Pt(-100, -100), -1, -1}, // exact negative boundary floors up
		{geom.Pt(250, -0.001), 2, -1}, // barely below: still cell -1
		{geom.Pt(1050, 1150), 10, 11}, // beyond the far edge keeps counting
		{geom.Pt(100, 100), 1, 1},     // exact interior boundary
		{geom.Pt(999.999, 0), 9, 0},   // last interior cell
	}
	for _, c := range cases {
		cx, cy := g.rawCell(c.p)
		if cx != c.cx || cy != c.cy {
			t.Errorf("rawCell(%v) = (%d,%d), want (%d,%d)", c.p, cx, cy, c.cx, c.cy)
		}
	}
}

// TestRawCellGroupingContract pins the property the batched gather relies
// on: two points sharing a rawCell get the identical forCells neighborhood.
func TestRawCellGroupingContract(t *testing.T) {
	g := newCellGeom(geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 800)), 100)
	rng := rand.New(rand.NewSource(5))
	enum := func(p geom.Point) []int32 {
		var out []int32
		g.forCells(p, 250, func(c int32) { out = append(out, c) })
		return out
	}
	type key struct{ cx, cy int }
	seen := map[key][]int32{}
	for i := 0; i < 2000; i++ {
		p := geom.Pt(rng.Float64()*1400-200, rng.Float64()*1200-200)
		cx, cy := g.rawCell(p)
		cells := enum(p)
		if prev, ok := seen[key{cx, cy}]; ok {
			if !reflect.DeepEqual(prev, cells) {
				t.Fatalf("raw cell (%d,%d): neighborhoods diverged", cx, cy)
			}
			continue
		}
		seen[key{cx, cy}] = cells
	}
}

// TestNewCellGeomSizing pins the table dimensions: exact multiples must not
// allocate a dead extra row/column, fractional fits round up, and the
// boundary position files into the border cell.
func TestNewCellGeomSizing(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

	g := newCellGeom(bounds, 100) // exact multiple: 10, not 11
	if g.nx != 10 || g.ny != 10 {
		t.Errorf("1000/100: got %dx%d cells, want 10x10", g.nx, g.ny)
	}
	if c := g.cellIndex(geom.Pt(1000, 1000)); c != int32(g.numCells()-1) {
		t.Errorf("boundary corner lands in cell %d, want %d", c, g.numCells()-1)
	}
	if c := g.cellIndex(geom.Pt(0, 0)); c != 0 {
		t.Errorf("origin lands in cell %d, want 0", c)
	}

	g = newCellGeom(bounds, 300) // ceil(1000/300) = 4
	if g.nx != 4 || g.ny != 4 {
		t.Errorf("1000/300: got %dx%d cells, want 4x4", g.nx, g.ny)
	}

	wide := newCellGeom(geom.NewRect(geom.Pt(0, 0), geom.Pt(2500, 400)), 250)
	if wide.nx != 10 || wide.ny != 2 {
		t.Errorf("2500x400/250: got %dx%d cells, want 10x2", wide.nx, wide.ny)
	}

	// The 512-per-axis clamp bounds the table for tiny cell sizes.
	tiny := newCellGeom(bounds, 0.001)
	if tiny.nx > 512 || tiny.ny > 512 {
		t.Errorf("clamped geometry still %dx%d cells", tiny.nx, tiny.ny)
	}

	// hostGrid scratch must agree with the geometry.
	hg := newHostGrid(bounds, 7, 100)
	if len(hg.counts) != hg.numCells() {
		t.Errorf("counts scratch has %d cells, grid %d", len(hg.counts), hg.numCells())
	}
	if len(hg.start) != hg.numCells()+1 {
		t.Errorf("start has %d offsets, want %d", len(hg.start), hg.numCells()+1)
	}
	if len(hg.entries) != 7 {
		t.Errorf("entries sized %d, want 7", len(hg.entries))
	}
}

// TestFullRebuildMatchesIncrementalWorld is the end-to-end oracle of the
// Config.FullRebuild escape hatch: a complete World.Run under incremental
// grid maintenance (with dirty-cell snapshot reuse) and under per-step full
// rebuilds (reuse disabled) must produce byte-identical metrics and series,
// in both movement modes and across movement worker counts. The CI
// determinism job runs the same diff on the real figure pipeline.
func TestFullRebuildMatchesIncrementalWorld(t *testing.T) {
	for _, mode := range []Mode{ModeRoadNetwork, ModeFreeMovement} {
		capture := func(full bool, workers int) (Metrics, []WindowPoint) {
			cfg := smallConfig()
			cfg.Mode = mode
			cfg.SeriesWindow = 60
			cfg.FullRebuild = full
			cfg.Workers = workers
			w, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return w.Run(), w.Series()
		}
		wantM, wantS := capture(false, 1)
		for _, alt := range []struct {
			full    bool
			workers int
		}{{true, 1}, {true, 4}, {false, 4}} {
			gotM, gotS := capture(alt.full, alt.workers)
			if !reflect.DeepEqual(gotM, wantM) {
				t.Errorf("%v full=%v workers=%d: metrics diverged:\ngot:  %+v\nwant: %+v",
					mode, alt.full, alt.workers, gotM, wantM)
			}
			if !reflect.DeepEqual(gotS, wantS) {
				t.Errorf("%v full=%v workers=%d: series diverged", mode, alt.full, alt.workers)
			}
		}
	}
}
