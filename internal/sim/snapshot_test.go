package sim

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
)

// The pooled snapshot path must be observationally identical to the
// per-query KNNCounted path: same POIs, same order (including distance
// ties), same page counts.
func TestSnapshotQuerierMatchesKNNCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10000, 10000)}
	mod := NewServerModule(RandomPOIs(5000, bounds, rng), 30)
	sq := NewSnapshotQuerier(mod)

	var dst []core.POI
	for trial := 0; trial < 300; trial++ {
		q := geom.Pt(rng.Float64()*12000-1000, rng.Float64()*12000-1000)
		k := 1 + rng.Intn(20)
		var b nn.Bounds
		if rng.Float64() < 0.4 {
			b.HasLower, b.Lower = true, rng.Float64()*300
		}
		if rng.Float64() < 0.4 {
			b.HasUpper, b.Upper = true, 200+rng.Float64()*2000
		}
		want, wantPages := mod.KNNCounted(q, k, b)
		var pages int64
		dst, pages = sq.KNN(q, k, b, dst)
		if pages != wantPages {
			t.Fatalf("trial %d: pages %d, want %d", trial, pages, wantPages)
		}
		if len(dst) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(dst), len(want))
		}
		for i := range want {
			if dst[i].ID != want[i].ID ||
				math.Float64bits(dst[i].Loc.X) != math.Float64bits(want[i].Loc.X) ||
				math.Float64bits(dst[i].Loc.Y) != math.Float64bits(want[i].Loc.Y) {
				t.Fatalf("trial %d: result %d = %v, want %v", trial, i, dst[i], want[i])
			}
		}
	}
}

// Concurrent callers (the network server's connection goroutines) must each
// see exactly the answer a sequential caller computes, with no cross-talk
// through the pooled iterators.
func TestSnapshotQuerierConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(5000, 5000)}
	mod := NewServerModule(RandomPOIs(2000, bounds, rng), 30)
	sq := NewSnapshotQuerier(mod)

	type trial struct {
		q    geom.Point
		k    int
		want []core.POI
	}
	const perWorker, workers = 200, 8
	trials := make([]trial, perWorker*workers)
	for i := range trials {
		q := geom.Pt(rng.Float64()*5000, rng.Float64()*5000)
		k := 1 + rng.Intn(10)
		want, _ := mod.KNNCounted(q, k, nn.Bounds{})
		trials[i] = trial{q: q, k: k, want: want}
	}

	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var dst []core.POI
			for i := w * perWorker; i < (w+1)*perWorker; i++ {
				tr := trials[i]
				dst, _ = sq.KNN(tr.q, tr.k, nn.Bounds{}, dst)
				if len(dst) != len(tr.want) {
					errs <- "result length changed under concurrency"
					return
				}
				for j := range tr.want {
					if dst[j].ID != tr.want[j].ID {
						errs <- "result changed under concurrency"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
