package sim

// Incremental maintenance of the hostGrid CSR index.
//
// A full counting rebuild touches every host twice per step (count, place) no
// matter how many actually changed cell. At realistic velocities a host
// crosses a cell boundary only every few steps, so the per-step moved-host
// delta — every (host, fromCell, toCell) whose cellIndex changed — is a small
// fraction of the population and most buckets are untouched. applyDelta
// reshapes the index around that delta instead of rebuilding it:
//
//  1. the distinct affected cells (every from and to) are radix-sorted and
//     the movers are grouped by destination cell;
//  2. start offsets shift by the running membership delta, which is zero
//     outside the span of affected cells because the host count is constant;
//  3. the new entries array is assembled in a second buffer: the unchanged
//     runs between affected buckets are block-copied at their shifted
//     offsets, and each affected bucket is written as a sorted merge of its
//     stayers (old entries still assigned to the cell) and joiners (movers
//     arriving there, already in ascending host order);
//  4. the buffers swap.
//
// Double-buffering is what makes step 3 embarrassingly parallel: every copy
// reads the intact old array and writes a disjoint slice of the new one, so
// the copy units can be sharded across workers with no ordering constraints
// (an in-place variant would need a strict run-move schedule). The result is
// byte-identical to a full counting rebuild over the same cell assignment —
// buckets ascending by host index, cells dense in row-major order — which
// TestIncrementalGridMatchesFullRebuild and the CI determinism diff against
// Config.FullRebuild both pin. The output depends only on the movers list,
// which callers assemble in ascending host order whatever the movement
// worker count.

// moverRec records one host whose grid cell changed during a movement step.
type moverRec struct {
	host, from, to int32
}

// deltaScratch holds the reusable buffers of applyDelta. All slices are
// length-managed per call; steady-state applyDelta performs no allocations.
type deltaScratch struct {
	touch    []int32 // per cell: slot+1 into affected while a delta is applied
	affected []int32 // sorted distinct cells with membership changes
	radixBuf []int32 // radix sort ping-pong buffer
	alt      []int32 // entries ping-pong buffer

	joiners   []int32 // mover hosts grouped by destination slot, host-ascending
	joinStart []int32 // per slot: offset of its joiners (len nSlots+1)

	oldLo    []int32 // per slot: old bucket start
	oldHi    []int32 // per slot: old bucket end
	newLo    []int32 // per slot: new bucket start
	newCount []int32 // per slot: new bucket size
	runShift []int32 // per slot: shift of the unchanged run preceding the bucket
	delta    []int32 // per slot: joiners - leavers
}

// grow returns s resized to n, reallocating only when capacity is exceeded.
func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// radixSortInt32 sorts non-negative int32 keys ascending with a 4-pass LSB
// byte radix, using (and possibly replacing) scratch as the ping-pong buffer.
// It returns the sorted slice and the scratch buffer for reuse.
func radixSortInt32(keys, scratch []int32) (sorted, buf []int32) {
	scratch = grow(scratch, len(keys))
	var counts [256]int32
	for shift := uint(0); shift < 32; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range keys {
			counts[uint8(k>>shift)]++
		}
		if counts[uint8(keys[0]>>shift)] == int32(len(keys)) {
			continue // all keys share this byte: pass is a no-op
		}
		pos := int32(0)
		for i, n := range counts {
			counts[i] = pos
			pos += n
		}
		for _, k := range keys {
			b := uint8(k >> shift)
			scratch[counts[b]] = k
			counts[b]++
		}
		keys, scratch = scratch, keys
	}
	return keys, scratch
}

// applyDelta updates the CSR index for the given moved-host delta. cells must
// hold every host's new cell (as maintained by the movement phase); movers
// must list exactly the hosts whose cell changed, in ascending host order,
// with from/to matching the previous and current cells values. workers > 1
// shards the copy phase. The returned slice lists the affected cells in
// ascending order; it aliases internal scratch and is valid only until the
// next applyDelta call.
func (g *hostGrid) applyDelta(cells []int32, movers []moverRec, workers int) (affected []int32) {
	if len(movers) == 0 {
		return nil
	}
	sc := &g.delta
	if sc.touch == nil {
		sc.touch = make([]int32, g.numCells())
	}

	// Distinct affected cells, sorted. The touch table doubles as the
	// membership test here and the cell→slot map below; it is wiped at the
	// end so the next delta starts clean.
	sc.affected = sc.affected[:0]
	for _, m := range movers {
		if sc.touch[m.from] == 0 {
			sc.touch[m.from] = 1
			sc.affected = append(sc.affected, m.from)
		}
		if sc.touch[m.to] == 0 {
			sc.touch[m.to] = 1
			sc.affected = append(sc.affected, m.to)
		}
	}
	sc.affected, sc.radixBuf = radixSortInt32(sc.affected, sc.radixBuf)
	nSlots := len(sc.affected)
	for s, c := range sc.affected {
		sc.touch[c] = int32(s) + 1
	}

	// Group joiners by destination slot with a stable counting pass: movers
	// arrive in ascending host order, so each slot's joiners stay ascending.
	sc.joinStart = grow(sc.joinStart, nSlots+1)
	sc.delta = grow(sc.delta, nSlots)
	for s := 0; s < nSlots; s++ {
		sc.joinStart[s] = 0
		sc.delta[s] = 0
	}
	for _, m := range movers {
		sc.joinStart[sc.touch[m.to]-1]++
		sc.delta[sc.touch[m.to]-1]++
		sc.delta[sc.touch[m.from]-1]--
	}
	pos := int32(0)
	for s := 0; s < nSlots; s++ {
		n := sc.joinStart[s]
		sc.joinStart[s] = pos
		pos += n
	}
	sc.joinStart[nSlots] = pos
	sc.joiners = grow(sc.joiners, len(movers))
	cursor := grow(sc.newCount, nSlots) // borrow newCount as the placement cursor
	copy(cursor, sc.joinStart[:nSlots])
	for _, m := range movers {
		s := sc.touch[m.to] - 1
		sc.joiners[cursor[s]] = m.host
		cursor[s]++
	}

	// Walk the affected cells in index order: capture each bucket's old
	// interval, compute its new offset and size, record the shift of the
	// unchanged run preceding it, and rewrite the start offsets. The running
	// shift returns to zero past the last affected cell (the population size
	// is constant), so the tail run and every start offset after it are
	// untouched.
	sc.oldLo = grow(sc.oldLo, nSlots)
	sc.oldHi = grow(sc.oldHi, nSlots)
	sc.newLo = grow(sc.newLo, nSlots)
	sc.runShift = grow(sc.runShift, nSlots)
	shift := int32(0)
	prev := int32(-1)
	for s := 0; s < nSlots; s++ {
		c := sc.affected[s]
		lo, hi := g.start[c], g.start[c+1]
		sc.oldLo[s], sc.oldHi[s] = lo, hi
		sc.runShift[s] = shift
		sc.newLo[s] = lo + shift
		if shift != 0 {
			for cc := prev + 1; cc < c; cc++ {
				g.start[cc] += shift
			}
		}
		g.start[c] = lo + shift
		shift += sc.delta[s]
		prev = c
	}
	sc.newCount = cursor[:nSlots]
	for s := 0; s < nSlots; s++ {
		sc.newCount[s] = (sc.oldHi[s] - sc.oldLo[s]) + sc.delta[s]
	}

	// Assemble the new entries array in the ping-pong buffer. The work is cut
	// into 2*nSlots+1 units laid out in new-array order: run s (the unchanged
	// block before affected bucket s), bucket s, ..., tail run. Every unit
	// reads the old array and writes a disjoint interval of the new one, so
	// the units shard across workers freely.
	sc.alt = grow(sc.alt, len(g.entries))
	nUnits := 2*nSlots + 1
	copyUnit := func(u int) {
		if u == 2*nSlots { // tail run, never shifted
			lo := sc.oldHi[nSlots-1]
			copy(sc.alt[lo:], g.entries[lo:])
			return
		}
		s := u / 2
		if u%2 == 0 { // run before bucket s
			lo := int32(0)
			if s > 0 {
				lo = sc.oldHi[s-1]
			}
			hi := sc.oldLo[s]
			if lo < hi {
				d := sc.runShift[s]
				copy(sc.alt[lo+d:hi+d], g.entries[lo:hi])
			}
			return
		}
		// Bucket s: merge stayers with joiners, both ascending by host.
		c := sc.affected[s]
		dst := sc.alt[sc.newLo[s] : sc.newLo[s]+sc.newCount[s]]
		old := g.entries[sc.oldLo[s]:sc.oldHi[s]]
		jn := sc.joiners[sc.joinStart[s]:sc.joinStart[s+1]]
		k := 0
		j := 0
		for _, h := range old {
			if cells[h] != c {
				continue // leaver
			}
			for j < len(jn) && jn[j] < h {
				dst[k] = jn[j]
				k++
				j++
			}
			dst[k] = h
			k++
		}
		for j < len(jn) {
			dst[k] = jn[j]
			k++
			j++
		}
	}
	if workers > 1 && nUnits >= 4*workers {
		shards := splitRange(nUnits, workers)
		runWorkers(len(shards), func(s int) {
			for u := shards[s][0]; u < shards[s][1]; u++ {
				copyUnit(u)
			}
		})
	} else {
		for u := 0; u < nUnits; u++ {
			copyUnit(u)
		}
	}
	g.entries, sc.alt = sc.alt, g.entries

	// Wipe the touch table for the next delta.
	for _, c := range sc.affected {
		sc.touch[c] = 0
	}
	return sc.affected
}
