package sim

import "fmt"

// Metrics aggregates the measurements the paper's evaluation plots. Counts
// cover the post-warm-up (steady state) portion of a run.
type Metrics struct {
	// TotalQueries launched.
	TotalQueries int64
	// SolvedBySingle counts queries fully certified by kNN_single.
	SolvedBySingle int64
	// SolvedByMulti counts queries completed by kNN_multiple.
	SolvedByMulti int64
	// SolvedUncertain counts full-but-uncertain answers the host accepted
	// (zero unless Config.AcceptUncertain).
	SolvedUncertain int64
	// SolvedByServer counts queries that reached the database server.
	SolvedByServer int64
	// ServerPageAccesses is the total number of R*-tree node accesses the
	// server performed (the PAR metric's numerator).
	ServerPageAccesses int64
	// PeerMessages counts P2P messages exchanged (one broadcast request per
	// query plus one cache-share response per non-empty peer cache) — the
	// communication overhead the paper names as the approach's cost.
	PeerMessages int64
	// PeerBytes is the wire volume of those messages, using the
	// internal/wire codec sizes.
	PeerBytes int64
	// MeasuredSeconds is the simulated time covered by the counts.
	MeasuredSeconds float64
}

// pct returns 100*n/total, or 0 when nothing was counted.
func (m Metrics) pct(n int64) float64 {
	if m.TotalQueries == 0 {
		return 0
	}
	return 100 * float64(n) / float64(m.TotalQueries)
}

// SQRR is the spatial query request rate: the percentage of all client
// queries the database server had to process.
func (m Metrics) SQRR() float64 { return m.pct(m.SolvedByServer) }

// ShareSingle is the percentage of queries resolved by a single peer.
func (m Metrics) ShareSingle() float64 { return m.pct(m.SolvedBySingle) }

// ShareMulti is the percentage of queries resolved by multiple peers.
func (m Metrics) ShareMulti() float64 { return m.pct(m.SolvedByMulti) }

// ShareUncertain is the percentage of accepted uncertain answers.
func (m Metrics) ShareUncertain() float64 { return m.pct(m.SolvedUncertain) }

// PagesPerServerQuery is the average number of R*-tree node accesses per
// query that reached the server.
func (m Metrics) PagesPerServerQuery() float64 {
	if m.SolvedByServer == 0 {
		return 0
	}
	return float64(m.ServerPageAccesses) / float64(m.SolvedByServer)
}

// PeerBytesPerQuery is the average P2P wire volume per query.
func (m Metrics) PeerBytesPerQuery() float64 {
	if m.TotalQueries == 0 {
		return 0
	}
	return float64(m.PeerBytes) / float64(m.TotalQueries)
}

// String implements fmt.Stringer.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"queries=%d single=%.1f%% multi=%.1f%% server=%.1f%% uncertain=%.1f%% pages/serverquery=%.1f",
		m.TotalQueries, m.ShareSingle(), m.ShareMulti(), m.SQRR(),
		m.ShareUncertain(), m.PagesPerServerQuery())
}
