package sim

import (
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/rtree"
)

// ServerModule is the remote spatial database of the simulated system: an
// R*-tree over the POI set queried with the EINN algorithm (best-first
// incremental NN extended with the client's pruning bounds). It counts
// queries and R*-tree node (page) accesses — the PAR metric.
//
// KNN and KNNCounted are safe for concurrent use: the tree is read-only
// after construction and the stats are atomic, so the query-resolve phase
// of the simulator may call them from many workers at once. Mutating calls
// (ResetStats) must not overlap with queries.
type ServerModule struct {
	tree *rtree.Tree
	pois []core.POI

	// Stats.
	queries      atomic.Int64
	pageAccesses atomic.Int64
}

// NewServerModule indexes the POIs with the given R*-tree fan-out.
func NewServerModule(pois []core.POI, fanout int) *ServerModule {
	t := rtree.New(fanout)
	for _, p := range pois {
		t.InsertPoint(p.Loc, p)
	}
	t.ResetAccessCount()
	return &ServerModule{tree: t, pois: pois}
}

// RandomPOIs generates n POIs uniformly distributed over bounds.
func RandomPOIs(n int, bounds geom.Rect, rng *rand.Rand) []core.POI {
	out := make([]core.POI, n)
	for i := range out {
		out[i] = core.POI{
			ID: int64(i),
			Loc: geom.Pt(
				bounds.Min.X+rng.Float64()*bounds.Width(),
				bounds.Min.Y+rng.Float64()*bounds.Height(),
			),
		}
	}
	return out
}

// ClusteredPOIs generates n POIs in Gaussian clusters, modeling real-world
// interest objects such as gas stations, which concentrate along arterials
// and in commercial pockets rather than spreading uniformly (the paper draws
// its POI sets from real station locations — DESIGN.md substitution D3).
// clusters is the number of pockets; sigma their standard deviation in
// meters. A uniform 20 % background is mixed in so no area is empty.
func ClusteredPOIs(n int, bounds geom.Rect, clusters int, sigma float64, rng *rand.Rand) []core.POI {
	if clusters < 1 {
		clusters = 1
	}
	centers := make([]geom.Point, clusters)
	for i := range centers {
		centers[i] = geom.Pt(
			bounds.Min.X+rng.Float64()*bounds.Width(),
			bounds.Min.Y+rng.Float64()*bounds.Height(),
		)
	}
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	out := make([]core.POI, n)
	for i := range out {
		var p geom.Point
		if rng.Float64() < 0.2 {
			p = geom.Pt(
				bounds.Min.X+rng.Float64()*bounds.Width(),
				bounds.Min.Y+rng.Float64()*bounds.Height(),
			)
		} else {
			c := centers[rng.Intn(clusters)]
			p = geom.Pt(
				clamp(c.X+rng.NormFloat64()*sigma, bounds.Min.X, bounds.Max.X),
				clamp(c.Y+rng.NormFloat64()*sigma, bounds.Min.Y, bounds.Max.Y),
			)
		}
		out[i] = core.POI{ID: int64(i), Loc: p}
	}
	return out
}

// KNN implements core.Server: the k nearest POIs beyond the lower bound in
// ascending order, searched with EINN under the provided bounds.
func (s *ServerModule) KNN(q geom.Point, k int, b nn.Bounds) []core.POI {
	out, _ := s.KNNCounted(q, k, b)
	return out
}

// KNNCounted is KNN plus the exact number of R*-tree node (page) accesses
// this one query performed. The count comes from a per-traversal wrapper,
// not from differencing the shared counter, so it stays exact when many
// queries run concurrently — the resolve phase of the simulator commits
// these per-query counts in event order to keep metrics bit-identical for
// any worker count.
func (s *ServerModule) KNNCounted(q geom.Point, k int, b nn.Bounds) ([]core.POI, int64) {
	s.queries.Add(1)
	src := nn.NewCountedSource(nn.Source(s.tree))
	results := nn.EINNOver(src, q, k, b)
	pages := src.Accesses()
	s.pageAccesses.Add(pages)
	out := make([]core.POI, len(results))
	for i, r := range results {
		out[i] = r.Data.(core.POI)
	}
	return out, pages
}

// KNNInto is KNNCounted with caller-owned scratch: the EINN traversal runs
// through it (a reusable concrete-tree iterator) and the results are
// appended to dst[:0], whose backing array is reused. In steady state the
// call performs no heap allocations, which is what keeps the simulator's
// server-resolved query path allocation-free alongside the peer-solved one
// (TestResolveAllocsServerSolved pins it). Results and page counts are
// identical to KNNCounted's — TreeIterator replicates the generic
// iterator's pruning, heap discipline, and access accounting exactly.
func (s *ServerModule) KNNInto(q geom.Point, k int, b nn.Bounds, it *nn.TreeIterator, dst []core.POI) ([]core.POI, int64) {
	s.queries.Add(1)
	dst = dst[:0]
	if k <= 0 {
		// EINN performs no traversal at all for k <= 0 (not even the root
		// fetch), so no pages are counted — matching KNNCounted.
		return dst, 0
	}
	it.Reset(s.tree, q, b)
	for len(dst) < k {
		r, ok := it.Next()
		if !ok {
			break
		}
		dst = append(dst, r.Data.(core.POI))
	}
	pages := it.Pages()
	s.pageAccesses.Add(pages)
	return dst, pages
}

// Range implements core.RangeServer: every POI within Euclidean distance r
// of q in ascending distance order, found with an R*-tree window search over
// the disc's bounding box followed by an exact distance filter. Node reads
// count as page accesses.
// Range is not on the concurrent resolve path, so the page delta may
// difference the shared counter.
func (s *ServerModule) Range(q geom.Point, r float64) []core.POI {
	s.queries.Add(1)
	before := s.tree.AccessCount()
	window := geom.NewCircle(q, r).Bounds()
	type hit struct {
		poi  core.POI
		dist float64
	}
	var hits []hit
	s.tree.Search(window, func(rect geom.Rect, data any) bool {
		p := data.(core.POI)
		if d := q.Dist(p.Loc); d <= r+geom.Eps {
			hits = append(hits, hit{poi: p, dist: d})
		}
		return true
	})
	s.pageAccesses.Add(s.tree.AccessCount() - before)
	// Equal distances are a real occurrence on gridded data; break the tie
	// by POI ID so the hit order is a total order independent of the
	// R*-tree's internal layout (the same rule the INE path uses).
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].dist != hits[j].dist {
			return hits[i].dist < hits[j].dist
		}
		return hits[i].poi.ID < hits[j].poi.ID
	})
	out := make([]core.POI, len(hits))
	for i, h := range hits {
		out[i] = h.poi
	}
	return out
}

// POIs returns the indexed POI set.
func (s *ServerModule) POIs() []core.POI { return s.pois }

// Tree exposes the underlying index for benchmark harnesses that compare
// INN against EINN on the same data.
func (s *ServerModule) Tree() *rtree.Tree { return s.tree }

// Queries returns the number of KNN calls since the last reset.
func (s *ServerModule) Queries() int64 { return s.queries.Load() }

// PageAccesses returns the R*-tree node accesses accumulated by KNN calls
// since the last reset.
func (s *ServerModule) PageAccesses() int64 { return s.pageAccesses.Load() }

// ResetStats zeroes the query and page-access counters. Must not run
// concurrently with queries.
func (s *ServerModule) ResetStats() {
	s.queries.Store(0)
	s.pageAccesses.Store(0)
	s.tree.ResetAccessCount()
}
