package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
)

// serverSolvedPlans scans the warmed world for up to want queries that fall
// through to the server, so the fallback path can be measured in isolation.
func serverSolvedPlans(tb testing.TB, w *World, want int) []queryPlan {
	e := w.qengine
	sc := e.scratch[0]
	var plans []queryPlan
	for hi := 0; hi < len(w.pos) && len(plans) < want; hi++ {
		p := queryPlan{host: int32(hi), k: w.cfg.KMax}
		e.plans = append(e.plans[:0], p)
		e.gatherCells()
		sc.r.ResetArena()
		if res := e.resolve(&p, 0, sc); res.src == core.SolvedByServer {
			plans = append(plans, p)
		}
	}
	if len(plans) == 0 {
		tb.Fatal("warmed world produced no server-solved queries")
	}
	return plans
}

// TestKNNIntoMatchesKNNCounted pins the pooled EINN traversal against the
// generic one: over many random queries and bound combinations, results and
// page counts must be identical — TreeIterator replicates Iterator's heap
// discipline and pruning exactly, it is not merely equivalent.
func TestKNNIntoMatchesKNNCounted(t *testing.T) {
	cfg := smallConfig()
	cfg.NumPOIs = 500
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := w.Server()
	rng := rand.New(rand.NewSource(8))
	var it nn.TreeIterator
	var dst []core.POI
	for trial := 0; trial < 400; trial++ {
		q := geom.Pt(rng.Float64()*cfg.AreaWidth, rng.Float64()*cfg.AreaHeight)
		k := rng.Intn(12) // includes k=0
		var b nn.Bounds
		if rng.Intn(2) == 0 {
			b.HasLower = true
			b.Lower = rng.Float64() * 300
		}
		if rng.Intn(2) == 0 {
			b.HasUpper = true
			b.Upper = b.Lower + rng.Float64()*1000
		}
		wantPOIs, wantPages := s.KNNCounted(q, k, b)
		gotPOIs, gotPages := s.KNNInto(q, k, b, &it, dst)
		dst = gotPOIs
		if len(wantPOIs) == 0 {
			wantPOIs = nil
		}
		var got []core.POI
		if len(gotPOIs) > 0 {
			got = append([]core.POI(nil), gotPOIs...)
		}
		if !reflect.DeepEqual(got, wantPOIs) {
			t.Fatalf("trial %d (k=%d, bounds %+v): results diverged\ngot:  %v\nwant: %v",
				trial, k, b, got, wantPOIs)
		}
		if gotPages != wantPages {
			t.Fatalf("trial %d (k=%d, bounds %+v): %d pages, want %d", trial, k, b, gotPages, wantPages)
		}
	}
}

// TestResolveAllocsServerSolved extends the zero-allocation gate to the
// server fallback: with the worker's pooled iterator and fetched-POI scratch
// warm, resolving a server-solved batch must not touch the allocator —
// previously every fallback built a fresh counted source, boxed tree nodes,
// and allocated a result slice per query.
func TestResolveAllocsServerSolved(t *testing.T) {
	w := warmResolveWorld(t)
	plans := serverSolvedPlans(t, w, 32)
	e := w.qengine
	sc := e.scratch[0]
	e.plans = append(e.plans[:0], plans...)
	e.gatherCells()
	resolveAll := func() {
		sc.r.ResetArena() // the batch-start reset runBatch performs
		for i := range plans {
			e.resolve(&plans[i], i, sc)
		}
	}
	resolveAll() // warm the scratch capacities
	if allocs := testing.AllocsPerRun(50, resolveAll); allocs != 0 {
		t.Errorf("server-solved resolve path allocates %v objects per batch, want 0", allocs)
	}
}

// TestGatherSnapshotReuse checks the dirty-cell machinery actually fires: in
// a world whose hosts are parked, only cache commits dirty cells, so the
// gather phase must reuse snapshots across steps. Under Config.FullRebuild
// reuse is disabled by design and the hit counter must stay at zero.
func TestGatherSnapshotReuse(t *testing.T) {
	run := func(fullRebuild bool) (hits, fills uint64) {
		cfg := smallConfig()
		cfg.MovePercentage = 0
		cfg.FullRebuild = fullRebuild
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Run()
		return w.GatherReuse()
	}
	hits, fills := run(false)
	if fills == 0 {
		t.Fatal("no snapshot fills recorded; gather phase did not run")
	}
	if hits == 0 {
		t.Error("parked world produced no snapshot reuse; dirty-cell tracking broken")
	}
	if fullHits, fullFills := run(true); fullHits != 0 || fullFills == 0 {
		t.Errorf("FullRebuild run: %d hits / %d fills, want 0 hits and some fills", fullHits, fullFills)
	}
}
