package sim

import (
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
)

// SnapshotQuerier is the read-only query facade a network server (or any
// caller outside the world loop) mounts over a ServerModule. Inside the
// simulator the resolve phase hands each query worker its own
// nn.TreeIterator as scratch; outside it there is no fixed worker set, so
// the querier pools iterators instead. Answers and page counts are
// bit-identical to ServerModule.KNNCounted for the same tree (KNNInto
// replicates the generic traversal exactly — TestSnapshotQuerierMatchesKNNCounted
// pins it), and in steady state a KNN call allocates nothing beyond what the
// caller's dst slice needs.
//
// The querier is safe for unbounded concurrent use: the tree is read-only,
// the module's stats are atomic, and every traversal runs on a pooled
// iterator owned by exactly one call at a time.
type SnapshotQuerier struct {
	mod   *ServerModule
	iters sync.Pool
}

// NewSnapshotQuerier wraps mod with a pooled, concurrency-safe query path.
func NewSnapshotQuerier(mod *ServerModule) *SnapshotQuerier {
	return &SnapshotQuerier{
		mod: mod,
		iters: sync.Pool{
			New: func() any { return new(nn.TreeIterator) },
		},
	}
}

// KNN answers a kNN query under the §3.3 pruning bounds, appending the
// results to dst[:0] (whose backing array is reused) and returning the exact
// page accesses the traversal performed. Results are identical to
// ServerModule.KNNCounted's, including tie order.
func (sq *SnapshotQuerier) KNN(q geom.Point, k int, b nn.Bounds, dst []core.POI) ([]core.POI, int64) {
	it := sq.iters.Get().(*nn.TreeIterator)
	out, pages := sq.mod.KNNInto(q, k, b, it, dst)
	sq.iters.Put(it)
	return out, pages
}

// Range answers a range query: every POI within Euclidean distance r of q in
// ascending distance order, ties broken by POI ID. It delegates to
// ServerModule.Range, which is safe for concurrent use with KNN traffic
// (read-only tree, atomic counters).
func (sq *SnapshotQuerier) Range(q geom.Point, r float64) []core.POI {
	return sq.mod.Range(q, r)
}

// Module exposes the wrapped ServerModule for statistics.
func (sq *SnapshotQuerier) Module() *ServerModule { return sq.mod }
