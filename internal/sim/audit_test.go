package sim

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// The decisive end-to-end soundness test: every single query answered during
// a full simulation — by one peer, by several, or by the server — must be
// the exact k nearest neighbors of the query point, byte-for-byte equal to a
// brute-force scan.
func TestEveryQueryAnswerIsExact(t *testing.T) {
	for _, mode := range []Mode{ModeRoadNetwork, ModeFreeMovement} {
		cfg := smallConfig()
		cfg.Mode = mode
		cfg.Duration = 300
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pois := w.Server().POIs()
		audited, peerSolved := 0, 0
		w.SetAudit(func(q geom.Point, k int, answer []core.Candidate, src core.Source) {
			audited++
			if src != core.SolvedByServer {
				peerSolved++
			}
			// Brute-force ground truth.
			type hit struct {
				id int64
				d  float64
			}
			hits := make([]hit, len(pois))
			for i, p := range pois {
				hits[i] = hit{id: p.ID, d: q.Dist(p.Loc)}
			}
			sort.Slice(hits, func(i, j int) bool { return hits[i].d < hits[j].d })
			want := k
			if want > len(hits) {
				want = len(hits)
			}
			if len(answer) != want {
				t.Fatalf("mode %v: query at %v k=%d returned %d results, want %d (src %v)",
					mode, q, k, len(answer), want, src)
			}
			for i, a := range answer {
				if math.Abs(a.Dist-hits[i].d) > 1e-9 {
					t.Fatalf("mode %v: query at %v k=%d rank %d got dist %v want %v (src %v)",
						mode, q, k, i+1, a.Dist, hits[i].d, src)
				}
			}
		})
		m := w.Run()
		if audited == 0 {
			t.Fatalf("mode %v: audit never invoked", mode)
		}
		// The audit also fires during warm-up, so it sees at least the
		// recorded query count.
		if int64(audited) < m.TotalQueries {
			t.Fatalf("mode %v: audited %d < recorded %d", mode, audited, m.TotalQueries)
		}
		if peerSolved == 0 {
			t.Errorf("mode %v: no peer-solved queries audited; scenario too weak", mode)
		}
	}
}

// TestConcurrentResolutionMatchesSequentialOracle replays the identical
// simulation once with a sequential resolve phase and once with 8 query
// workers, recording every audited answer (in commit order), and requires
// the two answer streams to be identical — then checks each answer of the
// shared stream against a brute-force scan of the POI set. Together the two
// halves say: concurrency changes nothing, and what it doesn't change is
// correct.
func TestConcurrentResolutionMatchesSequentialOracle(t *testing.T) {
	type answer struct {
		q     geom.Point
		k     int
		src   core.Source
		ids   []int64
		dists []float64
	}
	capture := func(qworkers int) ([]answer, []core.POI) {
		cfg := smallConfig()
		cfg.Duration = 300
		cfg.QueryWorkers = qworkers
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []answer
		w.SetAudit(func(q geom.Point, k int, ans []core.Candidate, src core.Source) {
			a := answer{q: q, k: k, src: src}
			for _, c := range ans {
				a.ids = append(a.ids, c.ID)
				a.dists = append(a.dists, c.Dist)
			}
			out = append(out, a)
		})
		w.Run()
		return out, w.Server().POIs()
	}
	seq, pois := capture(1)
	if len(seq) == 0 {
		t.Fatal("sequential run audited no queries")
	}
	conc, _ := capture(8)
	if !reflect.DeepEqual(seq, conc) {
		t.Fatalf("concurrent resolution diverged from sequential:\nseq:  %d answers\nconc: %d answers",
			len(seq), len(conc))
	}
	for _, a := range seq {
		dists := make([]float64, len(pois))
		for i, p := range pois {
			dists[i] = a.q.Dist(p.Loc)
		}
		sort.Float64s(dists)
		for i, d := range a.dists {
			if math.Abs(d-dists[i]) > 1e-9 {
				t.Fatalf("query at %v k=%d rank %d: answer dist %v, oracle %v (src %v)",
					a.q, a.k, i+1, d, dists[i], a.src)
			}
		}
	}
}

// Cache policy 1 with the "all certified" reading must keep caches healthy:
// after a steady-state run at k=1 the average cache size stays well above 1.
func TestCachesDoNotCollapseAtLowK(t *testing.T) {
	cfg := smallConfig()
	cfg.KMin, cfg.KMax = 1, 1
	cfg.Duration = 600
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Run()
	withCache, total := 0, 0.0
	for i := range w.caches {
		if e, ok := w.caches[i].Entry(); ok {
			withCache++
			total += float64(len(e.Neighbors))
		}
	}
	if withCache == 0 {
		t.Fatal("no host holds a cache after the run")
	}
	avg := total / float64(withCache)
	if avg < 2 {
		t.Errorf("average cache size %.2f at k=1: caches collapsed", avg)
	}
}

// The §3.3 bounds forwarded to the server must never exclude a true result:
// implied by TestEveryQueryAnswerIsExact, but this checks the accounting
// side — server-solved queries must actually consume bounds when peers
// supplied data.
func TestServerQueriesCarryBounds(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 300
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serverQueries := 0
	w.SetAudit(func(q geom.Point, k int, answer []core.Candidate, src core.Source) {
		if src == core.SolvedByServer {
			serverQueries++
		}
	})
	m := w.Run()
	if serverQueries == 0 || m.SolvedByServer == 0 {
		t.Skip("no server queries in this configuration")
	}
	if m.ServerPageAccesses <= 0 {
		t.Error("server queries recorded without page accesses")
	}
}
