package sim

import "testing"

// TestConfigWarmupDefaults pins the WarmupFraction/NoWarmup contract: zero
// WarmupFraction without NoWarmup means "unset" and defaults to 0.25, an
// explicit value sticks, NoWarmup yields a true zero warm-up, and combining
// NoWarmup with a non-zero fraction is rejected (the old behavior silently
// replaced an intended zero with the default).
func TestConfigWarmupDefaults(t *testing.T) {
	cfg := smallConfig()
	v, err := cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.WarmupFraction != 0.25 {
		t.Errorf("unset WarmupFraction validated to %v, want default 0.25", v.WarmupFraction)
	}

	cfg = smallConfig()
	cfg.WarmupFraction = 0.5
	if v, err = cfg.Validate(); err != nil || v.WarmupFraction != 0.5 {
		t.Errorf("explicit WarmupFraction=0.5 validated to (%v, %v)", v.WarmupFraction, err)
	}

	cfg = smallConfig()
	cfg.NoWarmup = true
	if v, err = cfg.Validate(); err != nil || v.WarmupFraction != 0 {
		t.Errorf("NoWarmup validated to (WarmupFraction=%v, %v), want (0, nil)", v.WarmupFraction, err)
	}

	cfg = smallConfig()
	cfg.NoWarmup = true
	cfg.WarmupFraction = 0.25
	if _, err = cfg.Validate(); err == nil {
		t.Error("NoWarmup + WarmupFraction=0.25 validated, want error")
	}
}

// TestNoWarmupMeasuresFromStart runs the same world with and without
// warm-up: the NoWarmup run must cover the full duration (MeasuredSeconds ==
// Duration) and therefore tally at least as many queries as the warmed run,
// including the cold-start transient the warmed run excludes.
func TestNoWarmupMeasuresFromStart(t *testing.T) {
	run := func(noWarmup bool) Metrics {
		cfg := smallConfig()
		cfg.NoWarmup = noWarmup
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return w.Run()
	}
	warmed := run(false)
	cold := run(true)
	if cold.MeasuredSeconds != smallConfig().Duration {
		t.Errorf("NoWarmup measured %v s, want the full %v s", cold.MeasuredSeconds, smallConfig().Duration)
	}
	if warmed.MeasuredSeconds >= cold.MeasuredSeconds {
		t.Errorf("warmed run measured %v s, expected less than the full %v s",
			warmed.MeasuredSeconds, cold.MeasuredSeconds)
	}
	if cold.TotalQueries < warmed.TotalQueries {
		t.Errorf("NoWarmup tallied %d queries, warmed %d — full window must cover at least as many",
			cold.TotalQueries, warmed.TotalQueries)
	}
	if cold.TotalQueries == 0 {
		t.Error("NoWarmup run tallied no queries")
	}
}
