package sim

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/geom"
)

func TestSplitRange(t *testing.T) {
	cases := []struct{ n, k int }{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {5, 4}, {100, 7}, {121500, 8}, {10, 1}, {10, 0},
	}
	for _, c := range cases {
		shards := splitRange(c.n, c.k)
		lo := 0
		for _, sh := range shards {
			if sh[0] != lo {
				t.Fatalf("splitRange(%d,%d): shard starts at %d, want %d", c.n, c.k, sh[0], lo)
			}
			if sh[1] < sh[0] {
				t.Fatalf("splitRange(%d,%d): negative shard %v", c.n, c.k, sh)
			}
			lo = sh[1]
		}
		if lo != c.n {
			t.Fatalf("splitRange(%d,%d): covers [0,%d), want [0,%d)", c.n, c.k, lo, c.n)
		}
		if want := min(max(c.k, 1), max(c.n, 0)); c.n > 0 && len(shards) != want {
			t.Fatalf("splitRange(%d,%d): %d shards, want %d", c.n, c.k, len(shards), want)
		}
		// Near-equal: sizes differ by at most one.
		minSz, maxSz := c.n, 0
		for _, sh := range shards {
			sz := sh[1] - sh[0]
			minSz, maxSz = min(minSz, sz), max(maxSz, sz)
		}
		if c.n > 0 && maxSz-minSz > 1 {
			t.Fatalf("splitRange(%d,%d): shard sizes range %d..%d", c.n, c.k, minSz, maxSz)
		}
	}
}

// workerCounts is the sweep the determinism properties run over: sequential,
// even, prime (so shards straddle cell boundaries unevenly), and whatever the
// machine would default to.
func workerCounts() []int {
	counts := []int{1, 2, 7}
	if gm := runtime.GOMAXPROCS(0); gm > 1 {
		counts = append(counts, gm)
	}
	return counts
}

// TestWorldParallelDeterminism is the tentpole contract: a full World.Run
// produces bit-identical metrics and time series for every worker count, in
// both movement modes.
func TestWorldParallelDeterminism(t *testing.T) {
	for _, mode := range []Mode{ModeRoadNetwork, ModeFreeMovement} {
		base := smallConfig()
		base.Mode = mode
		base.SeriesWindow = 60

		run := func(workers int) (Metrics, []WindowPoint) {
			cfg := base
			cfg.Workers = workers
			w, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return w.Run(), w.Series()
		}
		wantM, wantS := run(1)
		for _, workers := range workerCounts()[1:] {
			gotM, gotS := run(workers)
			if !reflect.DeepEqual(gotM, wantM) {
				t.Errorf("%v workers=%d: metrics diverged:\ngot:  %+v\nwant: %+v",
					mode, workers, gotM, wantM)
			}
			if !reflect.DeepEqual(gotS, wantS) {
				t.Errorf("%v workers=%d: series diverged", mode, workers)
			}
		}
	}
}

// TestWorldQueryParallelDeterminism is the query-pipeline counterpart of
// TestWorldParallelDeterminism: a full World.Run produces byte-identical
// metrics and time series for query workers 1, 4 and 8, in both movement
// modes. The comparison is on marshaled JSON bytes — the representation
// every figure writer ultimately derives from these numbers — so "bit
// identical" is checked literally, not through float equality semantics.
func TestWorldQueryParallelDeterminism(t *testing.T) {
	for _, mode := range []Mode{ModeRoadNetwork, ModeFreeMovement} {
		base := smallConfig()
		base.Mode = mode
		base.SeriesWindow = 60

		run := func(qworkers int) []byte {
			cfg := base
			cfg.QueryWorkers = qworkers
			w, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m := w.Run()
			data, err := json.Marshal(struct {
				Metrics Metrics
				Series  []WindowPoint
			}{m, w.Series()})
			if err != nil {
				t.Fatal(err)
			}
			return data
		}
		want := run(1)
		for _, qworkers := range []int{4, 8} {
			if got := run(qworkers); !bytes.Equal(got, want) {
				t.Errorf("%v queryworkers=%d: output diverged:\ngot:  %s\nwant: %s",
					mode, qworkers, got, want)
			}
		}
	}
}

// TestForNeighborsOrderAcrossWorkers pins the stronger property underneath
// the metrics contract: after identical movement histories, forNeighbors
// enumerates the exact same host-index sequence whatever worker count built
// the grid — not merely the same set.
func TestForNeighborsOrderAcrossWorkers(t *testing.T) {
	const steps = 25
	base := smallConfig()

	type probe struct {
		q geom.Point
		r float64
	}
	rng := rand.New(rand.NewSource(99))
	probes := make([]probe, 40)
	for i := range probes {
		probes[i] = probe{
			q: geom.Pt(rng.Float64()*base.AreaWidth, rng.Float64()*base.AreaHeight),
			r: base.TxRange * (0.2 + 2*rng.Float64()),
		}
	}

	enumerate := func(workers int) [][]int32 {
		cfg := base
		cfg.Workers = workers
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			w.advanceMovement(cfg.StepSeconds)
		}
		out := make([][]int32, len(probes))
		for i, p := range probes {
			w.grid.forNeighbors(p.q, p.r, func(h int32) {
				out[i] = append(out[i], h)
			})
		}
		// While here, assert the CSR invariant directly: every bucket holds
		// ascending host indices.
		g := w.grid
		for c := 0; c < g.numCells(); c++ {
			bucket := g.entries[g.start[c]:g.start[c+1]]
			for j := 1; j < len(bucket); j++ {
				if bucket[j] <= bucket[j-1] {
					t.Fatalf("workers=%d: cell %d bucket not ascending: %v", workers, c, bucket)
				}
			}
		}
		return out
	}

	want := enumerate(1)
	for _, workers := range workerCounts()[1:] {
		got := enumerate(workers)
		for i := range probes {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("workers=%d probe %d: enumeration order diverged:\ngot:  %v\nwant: %v",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestEngineGridMatchesSequentialRebuild drives the sharded counting rebuild
// and the sequential one over the same relocation history and requires the
// raw CSR arrays to come out identical.
func TestEngineGridMatchesSequentialRebuild(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 5
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.engine == nil {
		t.Fatal("engine not armed for Workers=5")
	}
	ref := newHostGrid(cfg.Bounds(), cfg.NumHosts, cfg.TxRange)
	cells := make([]int32, cfg.NumHosts)
	for step := 0; step < 30; step++ {
		w.engine.step(cfg.StepSeconds)
		for i, p := range w.pos {
			cells[i] = ref.cellIndex(p)
		}
		ref.rebuild(cells)
		if !reflect.DeepEqual(w.grid.start, ref.start) {
			t.Fatalf("step %d: start arrays diverged", step)
		}
		if !reflect.DeepEqual(w.grid.entries, ref.entries) {
			t.Fatalf("step %d: entries arrays diverged", step)
		}
	}
}

// FuzzHostGridNeighbors fuzzes grid relocation against a brute-force O(n)
// scan: after two rebuilds (initial placement, then a partial relocation),
// forNeighbors must enumerate exactly the hosts whose cells fall in range —
// every host within r included, nobody enumerated twice, buckets ascending.
func FuzzHostGridNeighbors(f *testing.F) {
	f.Add(int64(1), uint16(100), float64(150))
	f.Add(int64(7), uint16(1), float64(0))
	f.Add(int64(42), uint16(500), float64(999))
	f.Add(int64(-3), uint16(64), float64(25))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, r float64) {
		if n == 0 || n > 2000 {
			return
		}
		if r < 0 || r > 5000 {
			return
		}
		const side = 1000.0
		bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(side, side))
		rng := rand.New(rand.NewSource(seed))
		g := newHostGrid(bounds, int(n), 100)

		pos := make([]geom.Point, n)
		cells := make([]int32, n)
		reindex := func() {
			for i, p := range pos {
				cells[i] = g.cellIndex(p)
			}
			g.rebuild(cells)
		}
		// Positions deliberately overflow the bounds a little so the clamp
		// path is part of the property.
		randPt := func() geom.Point {
			return geom.Pt(rng.Float64()*1.2*side-0.1*side, rng.Float64()*1.2*side-0.1*side)
		}
		for i := range pos {
			pos[i] = randPt()
		}
		reindex()
		for i := range pos { // relocate a random subset, as movement steps do
			if rng.Intn(2) == 0 {
				pos[i] = randPt()
			}
		}
		reindex()

		q := randPt()
		seen := make(map[int32]bool)
		var enum []int32
		g.forNeighbors(q, r, func(i int32) {
			if seen[i] {
				t.Fatalf("host %d enumerated twice", i)
			}
			seen[i] = true
			enum = append(enum, i)
		})
		// Brute force: every host within r of q must be enumerated (the grid
		// over-approximates, so enum may contain more).
		r2 := r * r
		for i, p := range pos {
			if q.Dist2(p) <= r2 && !seen[int32(i)] {
				t.Fatalf("host %d at dist2 %.1f <= %.1f missed", i, q.Dist2(p), r2)
			}
		}
		// And nothing outside the cell over-approximation: every enumerated
		// host's cell must be one forCells visits.
		inRange := make(map[int32]bool)
		g.forCells(q, r, func(c int32) { inRange[c] = true })
		for _, i := range enum {
			if !inRange[cells[i]] {
				t.Fatalf("host %d enumerated from out-of-range cell %d", i, cells[i])
			}
		}
	})
}
