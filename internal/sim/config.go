// Package sim implements the paper's simulator (§4): a mobile host module
// that generates movement and query launch patterns for a population of
// hosts, and a server module that processes the spatial queries reaching the
// remote database and accounts for its I/O load.
//
// Each query runs the full SENN pipeline: the querying host gathers the
// cached results of every peer within its wireless transmission range
// (including its own cache), verifies them with kNN_single and kNN_multiple,
// and only contacts the R*-tree-backed server for the uncertified remainder,
// forwarding the §3.3 pruning bounds. The metrics the paper's figures plot —
// the share of queries resolved by a single peer, by multiple peers, and by
// the server (SQRR), plus the server page access counts (PAR) — are
// collected after a configurable warm-up so measurements reflect steady
// state.
package sim

import (
	"fmt"

	"repro/internal/geom"
)

// Mode selects the movement generator (§4.1).
type Mode int

const (
	// ModeRoadNetwork moves hosts along a generated road network at
	// class-limited speeds.
	ModeRoadNetwork Mode = iota
	// ModeFreeMovement moves hosts obstacle-free with the random waypoint
	// model at a fixed velocity.
	ModeFreeMovement
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeRoadNetwork:
		return "road-network"
	case ModeFreeMovement:
		return "free-movement"
	default:
		return "unknown"
	}
}

// Config holds every simulation parameter of Table 2.
type Config struct {
	// AreaWidth and AreaHeight of the simulated region in meters.
	AreaWidth, AreaHeight float64
	// NumPOIs is the number of points of interest (POI Number).
	NumPOIs int
	// NumHosts is the number of mobile hosts (MH Number).
	NumHosts int
	// CacheSize is the per-host NN cache capacity (C Size).
	CacheSize int
	// MovePercentage is the fraction of hosts that move (M Percentage),
	// in [0,1].
	MovePercentage float64
	// Velocity is the host target velocity in m/s (M Velocity).
	Velocity float64
	// QueriesPerMinute is the mean query arrival rate (λ Query).
	QueriesPerMinute float64
	// TxRange is the wireless transmission range in meters (Tx Range).
	TxRange float64
	// KMin and KMax bound the per-query neighbor count; k is drawn
	// uniformly from [KMin, KMax] (the paper randomizes k around λ kNN).
	KMin, KMax int
	// Duration is the simulated time in seconds (T execution).
	Duration float64
	// WarmupFraction is the share of Duration excluded from metrics so the
	// system reaches steady state (the paper records results only after
	// steady state). Default 0.25 when zero; a literal zero warm-up is
	// requested with NoWarmup (a float field cannot distinguish an explicit
	// 0 from unset).
	WarmupFraction float64
	// NoWarmup records metrics from t=0. It exists because WarmupFraction=0
	// used to silently mean "default to 0.25": callers who want the warm-up
	// transient measured set this instead. Combining it with a non-zero
	// WarmupFraction is a validation error.
	NoWarmup bool
	// Mode selects road-network or free movement.
	Mode Mode
	// MaxPause is the random waypoint pause ceiling in seconds.
	MaxPause float64
	// StepSeconds is the movement update granularity. Default 1 s.
	StepSeconds float64
	// RoadSpacing is the grid spacing of the generated road network in
	// meters. Default: area width / 20, clamped to [100, 500].
	RoadSpacing float64
	// TripRadius bounds destination choice for road hosts (0 = automatic:
	// a quarter of the area diagonal).
	TripRadius float64
	// RTreeFanout is the server index branching factor. Default 30 (§4.4).
	RTreeFanout int
	// AcceptUncertain lets hosts accept full-but-uncertain heaps without
	// querying the server (Algorithm 1 line 15). The paper's experiments
	// keep this off.
	AcceptUncertain bool
	// SeriesWindow, when positive, records a query-resolution time series
	// with the given window length in seconds (including the warm-up
	// phase), retrievable via World.Series after Run.
	SeriesWindow float64
	// Workers is the number of goroutines the movement phase of World.Run
	// shards the host population across — the middle level of the
	// three-level parallelism model (EXPERIMENTS.md); the outer level fans
	// whole simulations via experiments.RunParallel. 0 or 1 advances hosts
	// on the coordinating goroutine. Every worker count produces
	// bit-identical simulation output; only wall-clock time changes.
	Workers int
	// QueryWorkers is the number of goroutines the resolve phase of each
	// step's query batch fans across — the innermost level of the worker
	// budget (sweep × movement × query). 0 inherits Workers. Every worker
	// count produces bit-identical simulation output; only wall-clock time
	// changes (see the plan/resolve/commit pipeline in queryengine.go).
	QueryWorkers int
	// PerQueryGather disables the batched per-step spatial join of the query
	// pipeline's gather phase: instead of snapshotting each distinct grid
	// cell's peer-cache neighborhood once per batch, every query re-sweeps
	// the host grid on its own. Both gather modes produce bit-identical
	// simulation output (the snapshot is a pure read of step-start state);
	// the flag exists so the determinism CI job can diff them and as an
	// escape hatch for memory-constrained runs.
	PerQueryGather bool
	// FullRebuild disables incremental grid maintenance: every movement step
	// recomputes the host grid with the full counting rebuild instead of
	// applying the moved-host delta, and the gather phase's dirty-cell
	// snapshot reuse is off (a full rebuild reports no per-cell change
	// information). Both modes produce bit-identical simulation output; the
	// flag exists so the determinism CI job can diff them, mirroring
	// PerQueryGather.
	FullRebuild bool
	// Seed makes runs reproducible.
	Seed int64
}

// Validate checks the configuration and fills defaults, returning the
// effective config.
func (c Config) Validate() (Config, error) {
	if c.AreaWidth <= 0 || c.AreaHeight <= 0 {
		return c, fmt.Errorf("sim: area must be positive, got %v x %v", c.AreaWidth, c.AreaHeight)
	}
	if c.NumPOIs <= 0 {
		return c, fmt.Errorf("sim: NumPOIs must be positive")
	}
	if c.NumHosts <= 0 {
		return c, fmt.Errorf("sim: NumHosts must be positive")
	}
	if c.CacheSize <= 0 {
		return c, fmt.Errorf("sim: CacheSize must be positive")
	}
	if c.MovePercentage < 0 || c.MovePercentage > 1 {
		return c, fmt.Errorf("sim: MovePercentage must be in [0,1]")
	}
	if c.Velocity <= 0 {
		return c, fmt.Errorf("sim: Velocity must be positive")
	}
	if c.QueriesPerMinute <= 0 {
		return c, fmt.Errorf("sim: QueriesPerMinute must be positive")
	}
	if c.TxRange < 0 {
		return c, fmt.Errorf("sim: TxRange must be non-negative")
	}
	if c.KMin <= 0 || c.KMax < c.KMin {
		return c, fmt.Errorf("sim: need 0 < KMin <= KMax, got [%d, %d]", c.KMin, c.KMax)
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("sim: Duration must be positive")
	}
	if c.WarmupFraction < 0 || c.WarmupFraction >= 1 {
		return c, fmt.Errorf("sim: WarmupFraction must be in [0,1)")
	}
	if c.NoWarmup && c.WarmupFraction != 0 {
		return c, fmt.Errorf("sim: NoWarmup conflicts with WarmupFraction %v", c.WarmupFraction)
	}
	if c.WarmupFraction == 0 && !c.NoWarmup {
		c.WarmupFraction = 0.25
	}
	if c.StepSeconds <= 0 {
		c.StepSeconds = 1
	}
	if c.RoadSpacing <= 0 {
		c.RoadSpacing = c.AreaWidth / 20
		if c.RoadSpacing < 100 {
			c.RoadSpacing = 100
		}
		if c.RoadSpacing > 500 {
			c.RoadSpacing = 500
		}
	}
	if c.TripRadius <= 0 {
		// Bound trips so route planning stays local: unbounded waypoint
		// destinations make every plan a near-whole-graph Dijkstra in the
		// 30x30 mi region. Local trips keep per-host planning O(trip area)
		// without changing the encounter statistics the queries depend on.
		c.TripRadius = geom.Pt(c.AreaWidth, c.AreaHeight).Norm() / 4
		if c.TripRadius > 2500 {
			c.TripRadius = 2500
		}
		if min := 4 * c.RoadSpacing; c.TripRadius < min {
			c.TripRadius = min
		}
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("sim: Workers must be >= 0, got %d", c.Workers)
	}
	if c.QueryWorkers < 0 {
		return c, fmt.Errorf("sim: QueryWorkers must be >= 0, got %d", c.QueryWorkers)
	}
	if c.QueryWorkers == 0 {
		c.QueryWorkers = c.Workers
	}
	if c.RTreeFanout == 0 {
		c.RTreeFanout = 30
	}
	if c.RTreeFanout < 4 {
		return c, fmt.Errorf("sim: RTreeFanout must be >= 4")
	}
	return c, nil
}

// Bounds returns the simulated area rectangle.
func (c Config) Bounds() geom.Rect {
	return geom.NewRect(geom.Pt(0, 0), geom.Pt(c.AreaWidth, c.AreaHeight))
}
