package sim

// series.go adds windowed time-series instrumentation to the simulator. The
// paper records results "after the system reached steady state"; the series
// makes that observable: it reports the query-resolution mix per time window
// from t=0, so the warm-up transient (caches filling up, SQRR falling) and
// the steady-state plateau are visible and testable.

// WindowPoint is the query-resolution mix of one time window.
type WindowPoint struct {
	// Start and End bound the window in simulated seconds.
	Start, End float64
	// Queries launched within the window.
	Queries int64
	// Single, Multi, Uncertain and Server partition Queries.
	Single, Multi, Uncertain, Server int64
}

// SQRR is the window's server share in percent.
func (p WindowPoint) SQRR() float64 {
	if p.Queries == 0 {
		return 0
	}
	return 100 * float64(p.Server) / float64(p.Queries)
}

// seriesRecorder accumulates WindowPoints during a run.
type seriesRecorder struct {
	window float64
	cur    WindowPoint
	points []WindowPoint
}

func newSeriesRecorder(window float64) *seriesRecorder {
	return &seriesRecorder{
		window: window,
		cur:    WindowPoint{Start: 0, End: window},
	}
}

// observe records one query outcome at simulated time now.
func (s *seriesRecorder) observe(now float64, src querySource) {
	for now >= s.cur.End {
		s.flush()
	}
	s.cur.Queries++
	switch src {
	case srcSingle:
		s.cur.Single++
	case srcMulti:
		s.cur.Multi++
	case srcUncertain:
		s.cur.Uncertain++
	case srcServer:
		s.cur.Server++
	}
}

func (s *seriesRecorder) flush() {
	s.points = append(s.points, s.cur)
	s.cur = WindowPoint{Start: s.cur.End, End: s.cur.End + s.window}
}

// finish closes the current window and returns all points.
func (s *seriesRecorder) finish() []WindowPoint {
	if s.cur.Queries > 0 {
		s.flush()
	}
	return s.points
}

// querySource is a compact outcome tag for the series recorder.
type querySource int

const (
	srcSingle querySource = iota
	srcMulti
	srcUncertain
	srcServer
)
