package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
)

func smokeConfig() Config {
	return Config{
		AreaWidth:        1000,
		AreaHeight:       1000,
		NumHosts:         40,
		NumPOIs:          12,
		CacheSize:        6,
		KMin:             1,
		KMax:             4,
		TxRange:          200,
		Velocity:         13,
		MovePercentage:   0.8,
		MaxPause:         10,
		QueriesPerMinute: 60,
		Duration:         120,
		Mode:             ModeFreeMovement,
		RTreeFanout:      8,
		Seed:             42,
	}
}

func TestRunTwicePanics(t *testing.T) {
	w, err := New(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The guard exists precisely because the query engine stays armed after
	// the first run: its batch buffers look ready, but the event clock and
	// host caches are consumed.
	if w.qengine == nil {
		t.Fatal("world built without a live query engine")
	}
	w.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	w.Run()
}

func TestHostGridClampsBothDimensions(t *testing.T) {
	// A tall, narrow area with a tiny cell: the width-only clamp used to
	// leave the row count unbounded (height/cell rows).
	tall := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 1_000_000))
	g := newHostGrid(tall, 4, 1)
	if cells := g.nx * g.ny; cells > 514*514 {
		t.Errorf("tall area allocated %d cells (%dx%d); clamp failed", cells, g.nx, g.ny)
	}
	wide := geom.NewRect(geom.Pt(0, 0), geom.Pt(1_000_000, 100))
	g = newHostGrid(wide, 4, 1)
	if cells := g.nx * g.ny; cells > 514*514 {
		t.Errorf("wide area allocated %d cells (%dx%d); clamp failed", cells, g.nx, g.ny)
	}
	// The grid must still index and find hosts after clamping.
	g.rebuild([]int32{g.cellIndex(geom.Pt(10, 50)), g.cellIndex(geom.Pt(20, 60)),
		g.cellIndex(geom.Pt(30, 70)), g.cellIndex(geom.Pt(40, 80))})
	found := false
	g.forNeighbors(geom.Pt(11, 51), 5, func(i int32) { found = found || i == 0 })
	if !found {
		t.Error("clamped grid lost a host")
	}
}

// TestServerKNNExcludesLowerBoundPOI pins the boundary behavior the
// server-fallback merge in executeQuery depends on: the EINN lower bound is
// inclusive, so the POI whose distance equals the last certain distance is
// never re-fetched and the certified prefix cannot gain a duplicate.
func TestServerKNNExcludesLowerBoundPOI(t *testing.T) {
	q := geom.Pt(0, 0)
	pois := []core.POI{
		{ID: 0, Loc: geom.Pt(1, 0)},
		{ID: 1, Loc: geom.Pt(2, 0)},
		{ID: 2, Loc: geom.Pt(3, 0)},
		{ID: 3, Loc: geom.Pt(4, 0)},
	}
	srv := NewServerModule(pois, 4)
	// The client is certain of POI 0 at distance 1; the merge appends the
	// server's answer to that prefix.
	b := nn.Bounds{Lower: q.Dist(pois[0].Loc), HasLower: true}
	fetched := srv.KNN(q, 2, b)
	if len(fetched) != 2 {
		t.Fatalf("fetched %d POIs, want 2", len(fetched))
	}
	for _, p := range fetched {
		if p.ID == 0 {
			t.Fatalf("server re-fetched the certain POI at the lower bound: %v", fetched)
		}
	}
	if fetched[0].ID != 1 || fetched[1].ID != 2 {
		t.Errorf("fetched = %v, want POIs 1 and 2 in distance order", fetched)
	}
}

// TestRangeBreaksDistanceTiesByID pins the Range determinism rule: hits at
// exactly equal distance come back in ascending POI ID order, independent of
// the R*-tree's internal layout (the same tie-break the INE path uses).
func TestRangeBreaksDistanceTiesByID(t *testing.T) {
	q := geom.Pt(0, 0)
	// Four POIs at identical distance 5, IDs deliberately scrambled relative
	// to insertion order, plus a nearer POI and one just out of range.
	pois := []core.POI{
		{ID: 7, Loc: geom.Pt(5, 0)},
		{ID: 1, Loc: geom.Pt(-5, 0)},
		{ID: 5, Loc: geom.Pt(0, 5)},
		{ID: 3, Loc: geom.Pt(0, -5)},
		{ID: 9, Loc: geom.Pt(1, 0)},
		{ID: 0, Loc: geom.Pt(6, 0)},
	}
	srv := NewServerModule(pois, 4)
	got := srv.Range(q, 5.5)
	want := []int64{9, 1, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Range returned %d POIs, want %d: %v", len(got), len(want), got)
	}
	for i, p := range got {
		if p.ID != want[i] {
			t.Fatalf("Range order = %v, want IDs %v (ties broken by ID)", got, want)
		}
	}
}

// TestNoDuplicatePOIsInAnswersOrCaches audits a full simulation run: no
// query answer and no stored peer cache may contain the same POI twice, and
// every cache must stay an exact distance prefix (ascending distances).
func TestNoDuplicatePOIsInAnswersOrCaches(t *testing.T) {
	cfg := smokeConfig()
	cfg.Seed = 7
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	w.SetAudit(func(q geom.Point, k int, answer []core.Candidate, src core.Source) {
		seen := make(map[int64]bool, len(answer))
		for _, c := range answer {
			if seen[c.ID] {
				t.Errorf("duplicate POI %d in %v answer at %v", c.ID, src, q)
			}
			seen[c.ID] = true
		}
		checked++
	})
	w.Run()
	if checked == 0 {
		t.Fatal("audit saw no queries")
	}
	for _, pc := range w.PeerCachesSnapshot() {
		seen := make(map[int64]bool, len(pc.Neighbors))
		prev := -1.0
		for _, p := range pc.Neighbors {
			if seen[p.ID] {
				t.Errorf("duplicate POI %d in cached result at %v", p.ID, pc.QueryLoc)
			}
			seen[p.ID] = true
			if d := pc.QueryLoc.Dist(p.Loc); d < prev-geom.Eps {
				t.Errorf("cache at %v not in distance order: %v after %v", pc.QueryLoc, d, prev)
			} else {
				prev = d
			}
		}
	}
}
