package sim

import (
	"sync"

	"repro/internal/spatialnet"
)

// stepEngine shards the per-step movement phase of World.Run across
// Config.Workers goroutines. Query planning stays on the coordinating
// goroutine between steps, so the Poisson event stream is untouched; the
// query batch itself resolves through the queryEngine (queryengine.go).
//
// Determinism: each host's trajectory depends only on its own movement state
// (every mover owns a private RNG), so advancing hosts concurrently cannot
// change where anyone ends up. Grid maintenance consumes the per-shard
// cell-crossing deltas concatenated in shard order — ascending host index
// for ANY shard layout, since shards are contiguous ranges of the ascending
// moving-host list — so hostGrid.applyDelta sees the identical mover
// sequence whatever the worker count, and forNeighbors enumeration (and
// with it the peer list every query gathers) is bit-identical. The
// Config.FullRebuild escape hatch runs the old three-phase counting rebuild
// instead; both produce byte-identical start/entries arrays.
type stepEngine struct {
	world    *World
	workers  int
	shards   [][2]int     // per-worker [lo,hi) ranges over the moving-host list
	movers   []moverRec   // per-step delta, concatenated in shard order
	moverBuf [][]moverRec // per-shard crossing records

	// Full-rebuild scratch (Config.FullRebuild only; allocated on first
	// use): per-worker cell counts plus the two-level prefix buffers.
	hostShards [][2]int // per-worker [lo,hi) host ranges for count/placement
	cellRanges [][2]int // per-worker [lo,hi) cell ranges for the offset pass
	counts     [][]int32
	rangeTotal []int32
	rangeStart []int32
}

// splitRange cuts [0,n) into k near-equal contiguous pieces (fewer when
// n < k; never empty).
func splitRange(n, k int) [][2]int {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	out := make([][2]int, 0, k)
	lo := 0
	for s := 0; s < k; s++ {
		hi := lo + (n-lo)/(k-s)
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

func newStepEngine(w *World, workers int) *stepEngine {
	e := &stepEngine{
		world:   w,
		workers: workers,
		shards:  splitRange(len(w.moving), workers),
	}
	e.moverBuf = make([][]moverRec, len(e.shards))
	return e
}

// runWorkers runs fn(s) for s in [0,n) concurrently and waits. It is the
// fan-out primitive shared by the movement stepEngine and the query
// engine's resolve phase; callers guarantee the fn invocations touch
// disjoint state.
func runWorkers(n int, fn func(s int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for s := 0; s < n; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
}

// step advances every moving host by dt and maintains the host grid —
// incrementally from the cell-crossing delta, or by a full counting rebuild
// under Config.FullRebuild.
func (e *stepEngine) step(dt float64) {
	w := e.world
	g := w.grid

	// Phase A — advance each shard of the moving list, recording every
	// cell crossing. Stationary hosts are never visited.
	runWorkers(len(e.shards), func(s int) {
		buf := e.moverBuf[s][:0]
		lo, hi := e.shards[s][0], e.shards[s][1]
		if w.wp != nil {
			for j := lo; j < hi; j++ {
				i := w.moving[j]
				p := w.wp.Advance(int(i), w.pos[i], dt)
				w.pos[i] = p
				if c := g.cellIndex(p); c != w.cells[i] {
					buf = append(buf, moverRec{host: i, from: w.cells[i], to: c})
					w.cells[i] = c
				}
			}
		} else {
			for j := lo; j < hi; j++ {
				i := w.moving[j]
				p := w.road[j].Advance(dt)
				w.pos[i] = p
				if c := g.cellIndex(p); c != w.cells[i] {
					buf = append(buf, moverRec{host: i, from: w.cells[i], to: c})
					w.cells[i] = c
				}
			}
		}
		e.moverBuf[s] = buf
	})

	if w.cfg.FullRebuild {
		e.fullRebuild()
		w.noteFullRebuild()
		return
	}

	// Concatenate the shard deltas in shard order: contiguous shards of the
	// ascending moving list keep the movers in ascending host order, which
	// applyDelta requires.
	e.movers = e.movers[:0]
	for s := range e.moverBuf {
		e.movers = append(e.movers, e.moverBuf[s]...)
	}
	w.noteCellChanges(g.applyDelta(w.cells, e.movers, e.workers))
}

// fullRebuild recomputes the whole index from w.cells with the sharded
// three-phase counting rebuild (count per host shard, two-level prefix,
// placement at per-shard cursors). Bucket c holds shard 0's block, then
// shard 1's, and so on; each shard places its hosts in ascending index
// order, so buckets come out sorted by host index for ANY shard layout.
func (e *stepEngine) fullRebuild() {
	w := e.world
	g := w.grid
	if e.counts == nil {
		e.hostShards = splitRange(len(w.pos), e.workers)
		e.cellRanges = splitRange(g.numCells(), e.workers)
		e.counts = make([][]int32, len(e.hostShards))
		for s := range e.counts {
			e.counts[s] = make([]int32, g.numCells())
		}
		e.rangeTotal = make([]int32, len(e.cellRanges))
		e.rangeStart = make([]int32, len(e.cellRanges))
	}

	// Phase B0 — count cell occupancy per host shard.
	runWorkers(len(e.hostShards), func(s int) {
		counts := e.counts[s]
		for c := range counts {
			counts[c] = 0
		}
		lo, hi := e.hostShards[s][0], e.hostShards[s][1]
		for i := lo; i < hi; i++ {
			counts[w.cells[i]]++
		}
	})

	// Phase B — turn counts into bucket starts and per-shard placement
	// cursors. B1 totals each worker's cell range; a tiny sequential prefix
	// over the O(workers) totals seeds B2, which lays out the cells of each
	// range.
	runWorkers(len(e.cellRanges), func(s int) {
		lo, hi := e.cellRanges[s][0], e.cellRanges[s][1]
		var tot int32
		for c := lo; c < hi; c++ {
			for _, counts := range e.counts {
				tot += counts[c]
			}
		}
		e.rangeTotal[s] = tot
	})
	pos := int32(0)
	for s := range e.rangeTotal {
		e.rangeStart[s] = pos
		pos += e.rangeTotal[s]
	}
	runWorkers(len(e.cellRanges), func(s int) {
		lo, hi := e.cellRanges[s][0], e.cellRanges[s][1]
		pos := e.rangeStart[s]
		for c := lo; c < hi; c++ {
			g.start[c] = pos
			for _, counts := range e.counts {
				n := counts[c]
				counts[c] = pos
				pos += n
			}
		}
	})
	g.start[len(g.start)-1] = int32(len(w.pos))

	// Phase C — place each shard's hosts at its cursors, in index order.
	runWorkers(len(e.hostShards), func(s int) {
		counts := e.counts[s]
		lo, hi := e.hostShards[s][0], e.hostShards[s][1]
		for i := lo; i < hi; i++ {
			c := w.cells[i]
			g.entries[counts[c]] = int32(i)
			counts[c]++
		}
	})
}

// initEngine arms (or disarms) the parallel movement engine for the given
// worker count and, in road mode, gives every shard a private route planner:
// a PathFinder is scratch state that is not safe for concurrent use, but the
// paths it returns are a pure function of the graph, so trajectories do not
// depend on which finder a host holds.
func (w *World) initEngine(workers int) {
	if workers > len(w.moving) {
		workers = len(w.moving)
	}
	if workers <= 1 {
		w.engine = nil
		return
	}
	w.engine = newStepEngine(w, workers)
	if w.roads == nil {
		return
	}
	for _, sh := range w.engine.shards {
		finder := spatialnet.NewPathFinder(w.roads)
		for j := sh[0]; j < sh[1]; j++ {
			w.road[j].SetFinder(finder)
		}
	}
}

// noteCellChanges advances the dirty-cell clock and stamps the cells whose
// membership changed this step; snapshots whose neighborhood includes a
// stamped cell are refilled by the next gather.
func (w *World) noteCellChanges(affected []int32) {
	w.clock++
	for _, c := range affected {
		w.cellStamp[c] = w.clock
	}
}

// noteFullRebuild advances the clock and invalidates every cached snapshot:
// a counting rebuild reports no per-cell change information.
func (w *World) noteFullRebuild() {
	w.clock++
	w.fullStamp = w.clock
}

// advanceMovement runs one movement step: every moving host's trajectory,
// then deterministic grid maintenance.
func (w *World) advanceMovement(dt float64) {
	if w.engine != nil {
		w.engine.step(dt)
		return
	}
	g := w.grid
	w.movers = w.movers[:0]
	if w.wp != nil {
		for _, i := range w.moving {
			p := w.wp.Advance(int(i), w.pos[i], dt)
			w.pos[i] = p
			if c := g.cellIndex(p); c != w.cells[i] {
				w.movers = append(w.movers, moverRec{host: i, from: w.cells[i], to: c})
				w.cells[i] = c
			}
		}
	} else {
		for j, i := range w.moving {
			p := w.road[j].Advance(dt)
			w.pos[i] = p
			if c := g.cellIndex(p); c != w.cells[i] {
				w.movers = append(w.movers, moverRec{host: i, from: w.cells[i], to: c})
				w.cells[i] = c
			}
		}
	}
	if w.cfg.FullRebuild {
		g.rebuild(w.cells)
		w.noteFullRebuild()
		return
	}
	w.noteCellChanges(g.applyDelta(w.cells, w.movers, 1))
}
