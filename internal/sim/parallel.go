package sim

import (
	"sync"

	"repro/internal/mobility"
	"repro/internal/spatialnet"
)

// stepEngine shards the per-step movement phase of World.Run across
// Config.Workers goroutines. Query planning stays on the coordinating
// goroutine between steps, so the Poisson event stream is untouched; the
// query batch itself resolves through the queryEngine (queryengine.go).
//
// Determinism: each host's trajectory depends only on its own model state
// (every model owns a private RNG), so advancing hosts concurrently cannot
// change where anyone ends up. Grid maintenance is a two-phase counting
// rebuild: shard s's block inside every cell bucket starts where shard
// s-1's ends, and each shard places its hosts in ascending index order, so
// buckets come out sorted by host index for ANY shard layout. forNeighbors
// enumeration — and with it the peer list every query gathers — is
// therefore bit-identical whatever the worker count.
type stepEngine struct {
	world   *World
	workers int
	shards  [][2]int // per-worker [lo,hi) host-index ranges
	ranges  [][2]int // per-worker [lo,hi) cell ranges for the offset pass
	newCell []int32  // cell of host i after the advance
	counts  [][]int32
	// rangeTotal / rangeStart carry the per-cell-range entry counts through
	// the tiny sequential prefix between the parallel passes.
	rangeTotal []int32
	rangeStart []int32
}

// splitRange cuts [0,n) into k near-equal contiguous pieces (fewer when
// n < k; never empty).
func splitRange(n, k int) [][2]int {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	out := make([][2]int, 0, k)
	lo := 0
	for s := 0; s < k; s++ {
		hi := lo + (n-lo)/(k-s)
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

func newStepEngine(w *World, workers int) *stepEngine {
	n := len(w.hosts)
	if workers > n {
		workers = n
	}
	e := &stepEngine{
		world:   w,
		workers: workers,
		shards:  splitRange(n, workers),
		ranges:  splitRange(w.grid.numCells(), workers),
		newCell: make([]int32, n),
		counts:  make([][]int32, workers),
	}
	for s := range e.counts {
		e.counts[s] = make([]int32, w.grid.numCells())
	}
	e.rangeTotal = make([]int32, len(e.ranges))
	e.rangeStart = make([]int32, len(e.ranges))
	return e
}

// runWorkers runs fn(s) for s in [0,n) concurrently and waits. It is the
// fan-out primitive shared by the movement stepEngine and the query
// engine's resolve phase; callers guarantee the fn invocations touch
// disjoint state.
func runWorkers(n int, fn func(s int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for s := 0; s < n; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
}

// step advances every host by dt and rebuilds the host grid.
func (e *stepEngine) step(dt float64) {
	w := e.world
	g := w.grid

	// Phase A — advance each shard's hosts and count cell occupancy.
	runWorkers(len(e.shards), func(s int) {
		counts := e.counts[s]
		for c := range counts {
			counts[c] = 0
		}
		lo, hi := e.shards[s][0], e.shards[s][1]
		for i := lo; i < hi; i++ {
			h := w.hosts[i]
			h.pos = h.model.Advance(dt)
			c := g.cellIndex(h.pos)
			e.newCell[i] = c
			counts[c]++
		}
	})

	// Phase B — turn counts into bucket starts and per-shard placement
	// cursors. B1 totals each worker's cell range; a tiny sequential prefix
	// over the O(workers) totals seeds B2, which lays out the cells of each
	// range: bucket c holds shard 0's block, then shard 1's, and so on.
	runWorkers(len(e.ranges), func(s int) {
		lo, hi := e.ranges[s][0], e.ranges[s][1]
		var tot int32
		for c := lo; c < hi; c++ {
			for _, counts := range e.counts {
				tot += counts[c]
			}
		}
		e.rangeTotal[s] = tot
	})
	pos := int32(0)
	for s := range e.rangeTotal {
		e.rangeStart[s] = pos
		pos += e.rangeTotal[s]
	}
	runWorkers(len(e.ranges), func(s int) {
		lo, hi := e.ranges[s][0], e.ranges[s][1]
		pos := e.rangeStart[s]
		for c := lo; c < hi; c++ {
			g.start[c] = pos
			for _, counts := range e.counts {
				n := counts[c]
				counts[c] = pos
				pos += n
			}
		}
	})
	g.start[len(g.start)-1] = int32(len(w.hosts))

	// Phase C — place each shard's hosts at its cursors, in index order.
	runWorkers(len(e.shards), func(s int) {
		counts := e.counts[s]
		lo, hi := e.shards[s][0], e.shards[s][1]
		for i := lo; i < hi; i++ {
			c := e.newCell[i]
			g.entries[counts[c]] = int32(i)
			counts[c]++
		}
	})
}

// initEngine arms (or disarms) the parallel movement engine for the given
// worker count and, in road mode, gives every shard a private route planner:
// a PathFinder is scratch state that is not safe for concurrent use, but the
// paths it returns are a pure function of the graph, so trajectories do not
// depend on which finder a host holds.
func (w *World) initEngine(workers int) {
	if workers > len(w.hosts) {
		workers = len(w.hosts)
	}
	if workers <= 1 {
		w.engine = nil
		return
	}
	w.engine = newStepEngine(w, workers)
	if w.roads == nil {
		return
	}
	for _, sh := range w.engine.shards {
		finder := spatialnet.NewPathFinder(w.roads)
		for i := sh[0]; i < sh[1]; i++ {
			if rm, ok := w.hosts[i].model.(*mobility.RoadNetwork); ok {
				rm.SetFinder(finder)
			}
		}
	}
}

// advanceMovement runs one movement step: every host's mobility model, then
// the deterministic index-ordered grid rebuild.
func (w *World) advanceMovement(dt float64) {
	if w.engine != nil {
		w.engine.step(dt)
		return
	}
	for i, h := range w.hosts {
		h.pos = h.model.Advance(dt)
		w.cellBuf[i] = w.grid.cellIndex(h.pos)
	}
	w.grid.rebuild(w.cellBuf)
}
