package sim

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// warmResolveWorld builds a dense world and pushes query batches through it
// until the peer caches are widely populated, so peer-solved resolutions are
// common and every scratch buffer has reached its steady-state capacity.
func warmResolveWorld(tb testing.TB) *World {
	cfg := smallConfig()
	cfg.NumHosts = 600
	w, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	e := w.qengine
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 6; round++ {
		e.plans = e.plans[:0]
		for i := 0; i < 400; i++ {
			e.plans = append(e.plans, queryPlan{
				at:   float64(i),
				host: int32(rng.Intn(len(w.pos))),
				k:    w.cfg.KMin + rng.Intn(w.cfg.KMax-w.cfg.KMin+1),
			})
		}
		e.runBatch()
		w.advanceMovement(30)
	}
	return w
}

// peerSolvedPlans scans the warmed world for up to want queries that resolve
// without the server, covering both the single-peer and (when the population
// produces one) the multi-peer verification path.
func peerSolvedPlans(tb testing.TB, w *World, want int) []queryPlan {
	e := w.qengine
	sc := e.scratch[0]
	var plans []queryPlan
	for hi := 0; hi < len(w.pos) && len(plans) < want; hi++ {
		for _, k := range []int{w.cfg.KMin, w.cfg.KMax} {
			p := queryPlan{host: int32(hi), k: k}
			e.plans = append(e.plans[:0], p)
			e.gatherCells()
			sc.r.ResetArena()
			res := e.resolve(&p, 0, sc)
			if res.src == core.SolvedBySinglePeer || res.src == core.SolvedByMultiPeer {
				plans = append(plans, p)
				break
			}
		}
	}
	if len(plans) == 0 {
		tb.Fatal("warmed world produced no peer-solved queries; warm-up broken")
	}
	return plans
}

// TestResolveAllocsPeerSolved is the zero-allocation regression gate for the
// resolve hot path: once the per-worker scratch (peer slice, heap, verifier
// region, POI arena) is warm, resolving a peer-solved batch must not touch
// the allocator at all.
func TestResolveAllocsPeerSolved(t *testing.T) {
	w := warmResolveWorld(t)
	plans := peerSolvedPlans(t, w, 32)
	e := w.qengine
	sc := e.scratch[0]
	e.plans = append(e.plans[:0], plans...)
	e.gatherCells()
	resolveAll := func() {
		sc.r.ResetArena() // the batch-start reset runBatch performs
		for i := range plans {
			e.resolve(&plans[i], i, sc)
		}
	}
	resolveAll() // warm the scratch capacities
	if allocs := testing.AllocsPerRun(50, resolveAll); allocs != 0 {
		t.Errorf("peer-solved resolve path allocates %v objects per batch, want 0", allocs)
	}
}

// TestBatchedGatherMatchesPerQuery is the spatial-join oracle: the batched
// per-cell snapshot gather and the per-query grid sweep must produce
// bit-identical simulations — metrics, time series, and every audited
// per-query answer included.
func TestBatchedGatherMatchesPerQuery(t *testing.T) {
	type answer struct {
		Q     geom.Point
		K     int
		Src   core.Source
		IDs   []int64
		Dists []float64
	}
	capture := func(perQuery bool) []byte {
		cfg := smallConfig()
		cfg.Duration = 300
		cfg.SeriesWindow = 60
		cfg.QueryWorkers = 4
		cfg.PerQueryGather = perQuery
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var answers []answer
		w.SetAudit(func(q geom.Point, k int, ans []core.Candidate, src core.Source) {
			a := answer{Q: q, K: k, Src: src}
			for _, c := range ans {
				a.IDs = append(a.IDs, c.ID)
				a.Dists = append(a.Dists, c.Dist)
			}
			answers = append(answers, a)
		})
		m := w.Run()
		data, err := json.Marshal(struct {
			Metrics Metrics
			Series  []WindowPoint
			Answers []answer
		}{m, w.Series(), answers})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	batched := capture(false)
	perQuery := capture(true)
	if len(batched) == 0 || !bytes.Equal(batched, perQuery) {
		t.Errorf("batched gather diverged from per-query gather:\nbatched:  %.200s\nperquery: %.200s",
			batched, perQuery)
	}
}

// BenchmarkResolve measures the resolve hot path in isolation (no commit):
// a peer-solved batch and a server-solved batch (the EINN fallback through
// the pooled tree iterator). The CI bench job runs it with -benchmem and
// gates allocs/op at zero on both paths.
func BenchmarkResolve(b *testing.B) {
	w := warmResolveWorld(b)
	e := w.qengine
	sc := e.scratch[0]
	run := func(plans []queryPlan) func(b *testing.B) {
		return func(b *testing.B) {
			e.plans = append(e.plans[:0], plans...)
			e.gatherCells()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.r.ResetArena()
				for j := range plans {
					e.resolve(&plans[j], j, sc)
				}
			}
		}
	}
	b.Run("peersolved", run(peerSolvedPlans(b, w, 64)))
	b.Run("serversolved", run(serverSolvedPlans(b, w, 64)))
}
