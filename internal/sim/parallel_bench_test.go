package sim

import (
	"fmt"
	"sync"
	"testing"
)

// benchWorld is the Table 4 Los Angeles population (121,500 hosts over
// 30×30 mi) — the heaviest movement phase in the figure suite and the
// configuration the ISSUE's speedup target is stated against. The world is
// built once and shared: advanceMovement mutates only host positions and the
// grid, so successive measurements stay representative, and initEngine can
// re-shard the same population between sub-benchmarks.
var benchWorld = struct {
	once sync.Once
	w    *World
	err  error
}{}

func benchStepWorld(b *testing.B) *World {
	benchWorld.once.Do(func() {
		const mile = 1609.344
		cfg := Config{
			AreaWidth: 30 * mile, AreaHeight: 30 * mile,
			NumPOIs:          4050,
			NumHosts:         121500,
			CacheSize:        20,
			MovePercentage:   0.80,
			Velocity:         13.4112, // 30 mph
			QueriesPerMinute: 8100,
			TxRange:          200,
			KMin:             3, KMax: 7,
			Duration: 5 * 3600,
			Mode:     ModeRoadNetwork,
			MaxPause: 30,
			Seed:     1,
		}
		benchWorld.w, benchWorld.err = New(cfg)
	})
	if benchWorld.err != nil {
		b.Fatal(benchWorld.err)
	}
	return benchWorld.w
}

// BenchmarkWorldStep measures one movement step (advance every mobility
// model + rebuild the host grid) at several intra-world worker counts. The
// output is bit-identical across counts (TestWorldParallelDeterminism); the
// CI bench job gates the workers=1 vs workers=8 ratio.
func BenchmarkWorldStep(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := benchStepWorld(b)
			w.initEngine(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.advanceMovement(w.cfg.StepSeconds)
			}
		})
	}
}
