package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// benchWorld is the Table 4 Los Angeles population (121,500 hosts over
// 30×30 mi) — the heaviest movement phase in the figure suite and the
// configuration the ISSUE's speedup target is stated against. The world is
// built once and shared: advanceMovement mutates only host positions and the
// grid, so successive measurements stay representative, and initEngine can
// re-shard the same population between sub-benchmarks.
var benchWorld = struct {
	once sync.Once
	w    *World
	err  error
}{}

func benchStepWorld(b *testing.B) *World {
	benchWorld.once.Do(func() {
		const mile = 1609.344
		cfg := Config{
			AreaWidth: 30 * mile, AreaHeight: 30 * mile,
			NumPOIs:          4050,
			NumHosts:         121500,
			CacheSize:        20,
			MovePercentage:   0.80,
			Velocity:         13.4112, // 30 mph
			QueriesPerMinute: 8100,
			TxRange:          200,
			KMin:             3, KMax: 7,
			Duration: 5 * 3600,
			Mode:     ModeRoadNetwork,
			MaxPause: 30,
			Seed:     1,
		}
		benchWorld.w, benchWorld.err = New(cfg)
	})
	if benchWorld.err != nil {
		b.Fatal(benchWorld.err)
	}
	return benchWorld.w
}

// BenchmarkWorldStep measures one movement step (advance every mobility
// model + rebuild the host grid) at several intra-world worker counts, and
// — under the queries/ sub-benchmarks — the query pipeline's
// resolve+commit phase on a query-heavy batch at several
// Config.QueryWorkers counts. Output is bit-identical across all counts
// (TestWorldParallelDeterminism, TestWorldQueryParallelDeterminism); the
// CI bench job gates both the movement workers=1 vs workers=8 ratio and
// the query qworkers=1 vs qworkers=8 ratio.
func BenchmarkWorldStep(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := benchStepWorld(b)
			w.initEngine(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.advanceMovement(w.cfg.StepSeconds)
			}
		})
	}
	// Million-host movement step, incremental grid maintenance versus the
	// per-step counting rebuild. The CI bench job gates the ratio: the
	// incremental path must hold a >=2x whole-step win at this scale.
	for _, full := range []bool{false, true} {
		name := "hosts=1M"
		if full {
			name += "-full"
		}
		b.Run(name, func(b *testing.B) {
			w := bigStepWorld(b, full)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.advanceMovement(w.cfg.StepSeconds)
			}
		})
	}
	for _, qworkers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("queries/qworkers=%d", qworkers), func(b *testing.B) {
			w := benchStepWorld(b)
			w.initQueryEngine(qworkers)
			plans := benchQueryBatch(w, 2048)
			// Warm the caches once outside the timer: the first batch on a
			// cold world is all server fallbacks, which would bias whichever
			// sub-benchmark runs first.
			w.qengine.plans = append(w.qengine.plans[:0], plans...)
			w.qengine.runBatch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Advance the hosts (untimed) so the cached results go stale
				// the way a live run's do: without movement every query is an
				// own-cache hit and the batch measures nothing but commit
				// overhead.
				b.StopTimer()
				w.advanceMovement(60)
				b.StartTimer()
				w.qengine.plans = append(w.qengine.plans[:0], plans...)
				w.qengine.runBatch()
			}
		})
	}
}

// bigWorlds caches the million-host benchmark worlds (one per grid
// maintenance mode): free movement at the Table 4 Los Angeles host density,
// the area scaled by sqrt(1e6/121500) so hosts-per-cell stays the paper's,
// with a 10% movement duty cycle. The duty cycle is the point of the
// comparison: a counting rebuild pays for all million hosts every step no
// matter how few moved, while the incremental path pays for the moved-host
// delta. At Table 4's 80% moving x 30 mph roughly a tenth of the population
// crosses a cell boundary every second, nearly every cell is touched, and
// the rebuild's clean linear passes win — the regime the FullRebuild escape
// hatch keeps available (EXPERIMENTS.md documents the crossover). Building
// a world this size takes seconds; the movement phase is what the benchmark
// times.
var bigWorlds = struct {
	once [2]sync.Once
	w    [2]*World
	err  [2]error
}{}

func bigStepWorld(b *testing.B, full bool) *World {
	idx := 0
	if full {
		idx = 1
	}
	bigWorlds.once[idx].Do(func() {
		const side = 138470 // 30 mi * sqrt(1e6 / 121500), in meters
		cfg := Config{
			AreaWidth: side, AreaHeight: side,
			NumPOIs:          4050,
			NumHosts:         1_000_000,
			CacheSize:        20,
			MovePercentage:   0.10,
			Velocity:         13.4112, // 30 mph
			QueriesPerMinute: 8100,
			TxRange:          200,
			KMin:             3, KMax: 7,
			Duration: 5 * 3600,
			Mode:     ModeFreeMovement,
			MaxPause: 30,
			// workers=1 keeps the comparison honest for the CI gate: the
			// incremental path's win is largest on the coordinating
			// goroutine, while the counting rebuild regains ground at high
			// worker counts (its phases parallelize perfectly; see
			// EXPERIMENTS.md). The workers=1/8 sub-benchmarks above cover
			// the parallel scaling story.
			Workers:     1,
			FullRebuild: full,
			Seed:        1,
		}
		w, err := New(cfg)
		if err == nil {
			// Warm the world before it is ever timed: the first steps fault
			// in the grid-delta scratch and the movement engine's buffers
			// (tens of ms of one-off cost). CI runs -benchtime 1x, where a
			// single cold step would be the entire sample.
			for i := 0; i < 5; i++ {
				w.advanceMovement(w.cfg.StepSeconds)
			}
		}
		bigWorlds.w[idx], bigWorlds.err[idx] = w, err
	})
	if bigWorlds.err[idx] != nil {
		b.Fatal(bigWorlds.err[idx])
	}
	return bigWorlds.w[idx]
}

// benchQueryBatch plans a fixed query-heavy batch — far larger than the
// Poisson stream would put into one step — from a private RNG, so the
// shared bench world's event clock and random stream stay untouched. The
// commit phase's cache writes persist across iterations exactly as a live
// run's would; resolution work is identical for every worker count because
// commits land in event order.
func benchQueryBatch(w *World, n int) []queryPlan {
	rng := rand.New(rand.NewSource(7))
	plans := make([]queryPlan, n)
	for i := range plans {
		plans[i] = queryPlan{
			at:   float64(i),
			host: int32(rng.Intn(len(w.pos))),
			k:    w.cfg.KMin + rng.Intn(w.cfg.KMax-w.cfg.KMin+1),
		}
	}
	return plans
}
