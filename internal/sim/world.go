package sim

import (
	"math/rand"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/spatialnet"
)

// World is a fully constructed simulation ready to run.
//
// Host state is stored structure-of-arrays: positions, grid cells, and
// caches live in parallel slices indexed by host, so the movement shards and
// the gather phase stream through contiguous memory instead of chasing one
// heap object per host. The layout is what lets a single machine hold
// million-host worlds — see DESIGN.md §10 for the per-host memory budget.
type World struct {
	cfg    Config
	rng    *rand.Rand
	server *ServerModule
	roads  *spatialnet.Graph // nil in free-movement mode

	// Per-host parallel slices (the SoA columns). pos is the step-start
	// position the query pipeline reads; cells mirrors grid.cellIndex(pos)
	// and is the movement phase's crossing detector.
	pos    []geom.Point
	cells  []int32
	caches []cache.Cache

	// moving lists the non-stationary hosts in ascending index order — the
	// movement phase iterates it instead of skipping parked hosts one by
	// one. In free-movement mode wp (slot = host index) drives them; in road
	// mode road[j] drives host moving[j].
	moving []int32
	wp     *mobility.Waypoints
	road   []*mobility.RoadNetwork

	grid *hostGrid
	// engine shards the movement phase across Config.Workers goroutines;
	// nil when the movement phase runs on the coordinating goroutine.
	// movers is the sequential path's per-step cell-crossing delta.
	engine *stepEngine
	movers []moverRec

	// Dirty-cell clock for the gather phase's snapshot reuse (DESIGN.md
	// §10): clock advances before every batch of world mutations, and
	// cellStamp[c] records the clock at which cell c's membership or a
	// resident host's cache last changed. fullStamp invalidates everything
	// at once (full rebuilds report no per-cell information).
	clock     uint64
	cellStamp []uint64
	fullStamp uint64

	// qengine runs each step's query batch through the plan/resolve/commit
	// pipeline (queryengine.go), fanning the resolve phase across
	// Config.QueryWorkers goroutines.
	qengine *queryEngine

	now         float64
	nextQueryAt float64
	ran         bool
	metrics     Metrics

	// audit, when set, receives every query's final answer (the exact part
	// the host would act on). Tests use it to cross-check the full pipeline
	// against brute force.
	audit func(q geom.Point, k int, answer []core.Candidate, src core.Source)

	series       *seriesRecorder
	seriesPoints []WindowPoint
}

// Series returns the query-resolution time series recorded during Run (nil
// unless Config.SeriesWindow was set).
func (w *World) Series() []WindowPoint { return w.seriesPoints }

// SetAudit installs a callback receiving every executed query's answer.
// Intended for tests; pass nil to disable.
func (w *World) SetAudit(fn func(q geom.Point, k int, answer []core.Candidate, src core.Source)) {
	w.audit = fn
}

// PeerCachesSnapshot returns a copy of every host's current cache entry.
// Tests use it to validate that the sharing infrastructure only ever holds
// sound (exact-prefix) caches.
func (w *World) PeerCachesSnapshot() []core.PeerCache {
	var out []core.PeerCache
	for i := range w.caches {
		if e, ok := w.caches[i].Entry(); ok {
			out = append(out, e)
		}
	}
	return out
}

// New builds a world from cfg: the road network (road mode), the POI set,
// the server module, and the host population with its movement state.
func New(cfg Config) (*World, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{cfg: cfg, rng: rng}

	if cfg.Mode == ModeRoadNetwork {
		g, err := spatialnet.GenerateGrid(spatialnet.GridConfig{
			Width:          cfg.AreaWidth,
			Height:         cfg.AreaHeight,
			Spacing:        cfg.RoadSpacing,
			SecondaryEvery: 5,
			HighwayEvery:   20,
		})
		if err != nil {
			return nil, err
		}
		g.BuildNodeIndex()
		w.roads = g
	}

	pois := RandomPOIs(cfg.NumPOIs, cfg.Bounds(), rng)
	w.server = NewServerModule(pois, cfg.RTreeFanout)

	n := cfg.NumHosts
	w.grid = newHostGrid(cfg.Bounds(), n, cfg.TxRange)
	w.pos = make([]geom.Point, n)
	w.cells = make([]int32, n)
	w.caches = make([]cache.Cache, n)
	for i := range w.caches {
		w.caches[i] = cache.Make(cfg.CacheSize)
	}
	if cfg.Mode == ModeFreeMovement {
		w.wp = mobility.NewWaypoints(cfg.Bounds(), cfg.Velocity, cfg.MaxPause, cfg.TripRadius, n)
	}
	var finder *spatialnet.PathFinder
	if w.roads != nil {
		finder = spatialnet.NewPathFinder(w.roads)
	}
	for i := 0; i < n; i++ {
		start := geom.Pt(
			rng.Float64()*cfg.AreaWidth,
			rng.Float64()*cfg.AreaHeight,
		)
		moving := rng.Float64() < cfg.MovePercentage
		switch {
		case !moving:
			if w.roads != nil {
				// Parked hosts in road mode still sit on the network.
				node, _ := w.roads.NearestNodeIndexed(start)
				w.pos[i] = w.roads.Loc(node)
			} else {
				w.pos[i] = start
			}
		case cfg.Mode == ModeFreeMovement:
			w.pos[i] = start
			w.wp.Seed(i, start, rng.Uint64())
			w.moving = append(w.moving, int32(i))
		default:
			node, _ := w.roads.NearestNodeIndexed(start)
			m := mobility.NewRoadNetworkWith(w.roads, node, cfg.Velocity, cfg.MaxPause,
				rand.New(rand.NewSource(rng.Int63())),
				mobility.RoadNetworkOptions{Finder: finder, TripRadius: cfg.TripRadius})
			w.pos[i] = m.Pos()
			w.road = append(w.road, m)
			w.moving = append(w.moving, int32(i))
		}
		w.cells[i] = w.grid.cellIndex(w.pos[i])
	}
	w.grid.rebuild(w.cells)
	w.clock = 1
	w.fullStamp = 1
	w.cellStamp = make([]uint64, w.grid.numCells())
	w.initEngine(cfg.Workers)
	w.initQueryEngine(cfg.QueryWorkers)
	if cfg.SeriesWindow > 0 {
		w.series = newSeriesRecorder(cfg.SeriesWindow)
	}
	w.scheduleNextQuery()
	return w, nil
}

// Config returns the validated configuration in effect.
func (w *World) Config() Config { return w.cfg }

// Server exposes the server module (for benchmark harnesses).
func (w *World) Server() *ServerModule { return w.server }

// Roads returns the generated road network, nil in free-movement mode.
func (w *World) Roads() *spatialnet.Graph { return w.roads }

// scheduleNextQuery advances the query-event clock by one exponential
// inter-arrival gap of the λ_Query Poisson process. The gap is added to the
// previous event time (not the current step time), which is what makes the
// arrivals a proper Poisson stream.
func (w *World) scheduleNextQuery() {
	mean := 60.0 / w.cfg.QueriesPerMinute // seconds between queries
	w.nextQueryAt += w.rng.ExpFloat64() * mean
}

// Run advances the simulation to the configured duration and returns the
// steady-state metrics. It can be called once per World: the event clock,
// warm-up bookkeeping, and host caches are consumed by the run, so a second
// call would silently report wrong metrics — it panics instead.
//
// Each step runs the query pipeline of queryengine.go: plan every query
// event falling inside the step (all RNG draws, in event order), resolve
// the batch concurrently against the step-start snapshot, and commit the
// effects in event order. Metrics — including ServerPageAccesses, summed
// from per-query counts — cover exactly the events past warm-up.
func (w *World) Run() Metrics {
	if w.ran {
		panic("sim: World.Run called twice; build a new World per run")
	}
	w.ran = true
	warmupEnd := w.cfg.Duration * w.cfg.WarmupFraction
	dt := w.cfg.StepSeconds
	for w.now < w.cfg.Duration {
		stepEnd := w.now + dt
		if stepEnd > w.cfg.Duration {
			stepEnd = w.cfg.Duration
		}
		// Plan every query event that falls inside this step. Draw order
		// per event — host, k, inter-arrival gap — matches the serial
		// implementation, so the random stream is unchanged and independent
		// of how the resolve phase is scheduled.
		for w.nextQueryAt <= stepEnd {
			w.qengine.plans = append(w.qengine.plans, queryPlan{
				at:        w.nextQueryAt,
				host:      int32(w.rng.Intn(len(w.pos))),
				k:         w.cfg.KMin + w.rng.Intn(w.cfg.KMax-w.cfg.KMin+1),
				recording: w.nextQueryAt >= warmupEnd,
			})
			w.scheduleNextQuery()
		}
		// Resolve concurrently, commit in event order (bit-identical output
		// for any Config.QueryWorkers).
		w.qengine.runBatch()
		// Advance movement (sharded across Config.Workers goroutines when
		// configured; output is bit-identical for any worker count).
		w.advanceMovement(stepEnd - w.now)
		w.now = stepEnd
	}
	w.metrics.MeasuredSeconds = w.cfg.Duration - warmupEnd
	if w.series != nil {
		w.seriesPoints = w.series.finish()
	}
	return w.metrics
}
