package sim

import (
	"math/rand"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/spatialnet"
)

// host is one mobile host: its movement model, its NN result cache, and its
// last known position (mirrored here to avoid interface calls in the hot
// peer-lookup path).
type host struct {
	model mobility.Model
	cache *cache.Cache
	pos   geom.Point
}

// World is a fully constructed simulation ready to run.
type World struct {
	cfg    Config
	rng    *rand.Rand
	server *ServerModule
	hosts  []*host
	grid   *hostGrid
	roads  *spatialnet.Graph // nil in free-movement mode

	// engine shards the movement phase across Config.Workers goroutines;
	// nil when the movement phase runs on the coordinating goroutine.
	// cellBuf is the sequential path's per-host cell scratch.
	engine  *stepEngine
	cellBuf []int32

	// qengine runs each step's query batch through the plan/resolve/commit
	// pipeline (queryengine.go), fanning the resolve phase across
	// Config.QueryWorkers goroutines.
	qengine *queryEngine

	now         float64
	nextQueryAt float64
	ran         bool
	metrics     Metrics

	// audit, when set, receives every query's final answer (the exact part
	// the host would act on). Tests use it to cross-check the full pipeline
	// against brute force.
	audit func(q geom.Point, k int, answer []core.Candidate, src core.Source)

	series       *seriesRecorder
	seriesPoints []WindowPoint
}

// Series returns the query-resolution time series recorded during Run (nil
// unless Config.SeriesWindow was set).
func (w *World) Series() []WindowPoint { return w.seriesPoints }

// SetAudit installs a callback receiving every executed query's answer.
// Intended for tests; pass nil to disable.
func (w *World) SetAudit(fn func(q geom.Point, k int, answer []core.Candidate, src core.Source)) {
	w.audit = fn
}

// PeerCachesSnapshot returns a copy of every host's current cache entry.
// Tests use it to validate that the sharing infrastructure only ever holds
// sound (exact-prefix) caches.
func (w *World) PeerCachesSnapshot() []core.PeerCache {
	var out []core.PeerCache
	for _, h := range w.hosts {
		if e, ok := h.cache.Entry(); ok {
			out = append(out, e)
		}
	}
	return out
}

// New builds a world from cfg: the road network (road mode), the POI set,
// the server module, and the host population with its movement models.
func New(cfg Config) (*World, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{cfg: cfg, rng: rng}

	if cfg.Mode == ModeRoadNetwork {
		g, err := spatialnet.GenerateGrid(spatialnet.GridConfig{
			Width:          cfg.AreaWidth,
			Height:         cfg.AreaHeight,
			Spacing:        cfg.RoadSpacing,
			SecondaryEvery: 5,
			HighwayEvery:   20,
		})
		if err != nil {
			return nil, err
		}
		g.BuildNodeIndex()
		w.roads = g
	}

	pois := RandomPOIs(cfg.NumPOIs, cfg.Bounds(), rng)
	w.server = NewServerModule(pois, cfg.RTreeFanout)

	w.grid = newHostGrid(cfg.Bounds(), cfg.NumHosts, cfg.TxRange)
	w.hosts = make([]*host, cfg.NumHosts)
	var finder *spatialnet.PathFinder
	if w.roads != nil {
		finder = spatialnet.NewPathFinder(w.roads)
	}
	for i := range w.hosts {
		start := geom.Pt(
			rng.Float64()*cfg.AreaWidth,
			rng.Float64()*cfg.AreaHeight,
		)
		moving := rng.Float64() < cfg.MovePercentage
		var model mobility.Model
		switch {
		case !moving:
			if w.roads != nil {
				// Parked hosts in road mode still sit on the network.
				node, _ := w.roads.NearestNodeIndexed(start)
				model = mobility.Stationary{P: w.roads.Loc(node)}
			} else {
				model = mobility.Stationary{P: start}
			}
		case cfg.Mode == ModeFreeMovement:
			model = mobility.NewRandomWaypointWith(cfg.Bounds(), start, cfg.Velocity, cfg.MaxPause,
				rand.New(rand.NewSource(rng.Int63())), cfg.TripRadius)
		default:
			node, _ := w.roads.NearestNodeIndexed(start)
			model = mobility.NewRoadNetworkWith(w.roads, node, cfg.Velocity, cfg.MaxPause,
				rand.New(rand.NewSource(rng.Int63())),
				mobility.RoadNetworkOptions{Finder: finder, TripRadius: cfg.TripRadius})
		}
		h := &host{model: model, cache: cache.New(cfg.CacheSize), pos: model.Pos()}
		w.hosts[i] = h
	}
	w.cellBuf = make([]int32, cfg.NumHosts)
	for i, h := range w.hosts {
		w.cellBuf[i] = w.grid.cellIndex(h.pos)
	}
	w.grid.rebuild(w.cellBuf)
	w.initEngine(cfg.Workers)
	w.initQueryEngine(cfg.QueryWorkers)
	if cfg.SeriesWindow > 0 {
		w.series = newSeriesRecorder(cfg.SeriesWindow)
	}
	w.scheduleNextQuery()
	return w, nil
}

// Config returns the validated configuration in effect.
func (w *World) Config() Config { return w.cfg }

// Server exposes the server module (for benchmark harnesses).
func (w *World) Server() *ServerModule { return w.server }

// Roads returns the generated road network, nil in free-movement mode.
func (w *World) Roads() *spatialnet.Graph { return w.roads }

// scheduleNextQuery advances the query-event clock by one exponential
// inter-arrival gap of the λ_Query Poisson process. The gap is added to the
// previous event time (not the current step time), which is what makes the
// arrivals a proper Poisson stream.
func (w *World) scheduleNextQuery() {
	mean := 60.0 / w.cfg.QueriesPerMinute // seconds between queries
	w.nextQueryAt += w.rng.ExpFloat64() * mean
}

// Run advances the simulation to the configured duration and returns the
// steady-state metrics. It can be called once per World: the event clock,
// warm-up bookkeeping, and host caches are consumed by the run, so a second
// call would silently report wrong metrics — it panics instead.
//
// Each step runs the query pipeline of queryengine.go: plan every query
// event falling inside the step (all RNG draws, in event order), resolve
// the batch concurrently against the step-start snapshot, and commit the
// effects in event order. Metrics — including ServerPageAccesses, summed
// from per-query counts — cover exactly the events past warm-up.
func (w *World) Run() Metrics {
	if w.ran {
		panic("sim: World.Run called twice; build a new World per run")
	}
	w.ran = true
	warmupEnd := w.cfg.Duration * w.cfg.WarmupFraction
	dt := w.cfg.StepSeconds
	for w.now < w.cfg.Duration {
		stepEnd := w.now + dt
		if stepEnd > w.cfg.Duration {
			stepEnd = w.cfg.Duration
		}
		// Plan every query event that falls inside this step. Draw order
		// per event — host, k, inter-arrival gap — matches the serial
		// implementation, so the random stream is unchanged and independent
		// of how the resolve phase is scheduled.
		for w.nextQueryAt <= stepEnd {
			w.qengine.plans = append(w.qengine.plans, queryPlan{
				at:        w.nextQueryAt,
				host:      int32(w.rng.Intn(len(w.hosts))),
				k:         w.cfg.KMin + w.rng.Intn(w.cfg.KMax-w.cfg.KMin+1),
				recording: w.nextQueryAt >= warmupEnd,
			})
			w.scheduleNextQuery()
		}
		// Resolve concurrently, commit in event order (bit-identical output
		// for any Config.QueryWorkers).
		w.qengine.runBatch()
		// Advance movement (sharded across Config.Workers goroutines when
		// configured; output is bit-identical for any worker count).
		w.advanceMovement(stepEnd - w.now)
		w.now = stepEnd
	}
	w.metrics.MeasuredSeconds = w.cfg.Duration - warmupEnd
	if w.series != nil {
		w.seriesPoints = w.series.finish()
	}
	return w.metrics
}
