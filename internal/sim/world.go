package sim

import (
	"math/rand"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/spatialnet"
	"repro/internal/wire"
)

// host is one mobile host: its movement model, its NN result cache, and its
// last known position (mirrored here to avoid interface calls in the hot
// peer-lookup path).
type host struct {
	model mobility.Model
	cache *cache.Cache
	pos   geom.Point
}

// World is a fully constructed simulation ready to run.
type World struct {
	cfg    Config
	rng    *rand.Rand
	server *ServerModule
	hosts  []*host
	grid   *hostGrid
	roads  *spatialnet.Graph // nil in free-movement mode

	// engine shards the movement phase across Config.Workers goroutines;
	// nil when the movement phase runs on the coordinating goroutine.
	// cellBuf is the sequential path's per-host cell scratch.
	engine  *stepEngine
	cellBuf []int32

	now         float64
	nextQueryAt float64
	recording   bool
	ran         bool
	metrics     Metrics

	peersBuf []core.PeerCache // scratch for query execution

	// audit, when set, receives every query's final answer (the exact part
	// the host would act on). Tests use it to cross-check the full pipeline
	// against brute force.
	audit func(q geom.Point, k int, answer []core.Candidate, src core.Source)

	series       *seriesRecorder
	seriesPoints []WindowPoint
}

// Series returns the query-resolution time series recorded during Run (nil
// unless Config.SeriesWindow was set).
func (w *World) Series() []WindowPoint { return w.seriesPoints }

// SetAudit installs a callback receiving every executed query's answer.
// Intended for tests; pass nil to disable.
func (w *World) SetAudit(fn func(q geom.Point, k int, answer []core.Candidate, src core.Source)) {
	w.audit = fn
}

// PeerCachesSnapshot returns a copy of every host's current cache entry.
// Tests use it to validate that the sharing infrastructure only ever holds
// sound (exact-prefix) caches.
func (w *World) PeerCachesSnapshot() []core.PeerCache {
	var out []core.PeerCache
	for _, h := range w.hosts {
		if e, ok := h.cache.Entry(); ok {
			out = append(out, e)
		}
	}
	return out
}

// New builds a world from cfg: the road network (road mode), the POI set,
// the server module, and the host population with its movement models.
func New(cfg Config) (*World, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{cfg: cfg, rng: rng}

	if cfg.Mode == ModeRoadNetwork {
		g, err := spatialnet.GenerateGrid(spatialnet.GridConfig{
			Width:          cfg.AreaWidth,
			Height:         cfg.AreaHeight,
			Spacing:        cfg.RoadSpacing,
			SecondaryEvery: 5,
			HighwayEvery:   20,
		})
		if err != nil {
			return nil, err
		}
		g.BuildNodeIndex()
		w.roads = g
	}

	pois := RandomPOIs(cfg.NumPOIs, cfg.Bounds(), rng)
	w.server = NewServerModule(pois, cfg.RTreeFanout)

	w.grid = newHostGrid(cfg.Bounds(), cfg.NumHosts, cfg.TxRange)
	w.hosts = make([]*host, cfg.NumHosts)
	var finder *spatialnet.PathFinder
	if w.roads != nil {
		finder = spatialnet.NewPathFinder(w.roads)
	}
	for i := range w.hosts {
		start := geom.Pt(
			rng.Float64()*cfg.AreaWidth,
			rng.Float64()*cfg.AreaHeight,
		)
		moving := rng.Float64() < cfg.MovePercentage
		var model mobility.Model
		switch {
		case !moving:
			if w.roads != nil {
				// Parked hosts in road mode still sit on the network.
				node, _ := w.roads.NearestNodeIndexed(start)
				model = mobility.Stationary{P: w.roads.Loc(node)}
			} else {
				model = mobility.Stationary{P: start}
			}
		case cfg.Mode == ModeFreeMovement:
			model = mobility.NewRandomWaypointWith(cfg.Bounds(), start, cfg.Velocity, cfg.MaxPause,
				rand.New(rand.NewSource(rng.Int63())), cfg.TripRadius)
		default:
			node, _ := w.roads.NearestNodeIndexed(start)
			model = mobility.NewRoadNetworkWith(w.roads, node, cfg.Velocity, cfg.MaxPause,
				rand.New(rand.NewSource(rng.Int63())),
				mobility.RoadNetworkOptions{Finder: finder, TripRadius: cfg.TripRadius})
		}
		h := &host{model: model, cache: cache.New(cfg.CacheSize), pos: model.Pos()}
		w.hosts[i] = h
	}
	w.cellBuf = make([]int32, cfg.NumHosts)
	for i, h := range w.hosts {
		w.cellBuf[i] = w.grid.cellIndex(h.pos)
	}
	w.grid.rebuild(w.cellBuf)
	w.initEngine(cfg.Workers)
	if cfg.SeriesWindow > 0 {
		w.series = newSeriesRecorder(cfg.SeriesWindow)
	}
	w.scheduleNextQuery()
	return w, nil
}

// Config returns the validated configuration in effect.
func (w *World) Config() Config { return w.cfg }

// Server exposes the server module (for benchmark harnesses).
func (w *World) Server() *ServerModule { return w.server }

// Roads returns the generated road network, nil in free-movement mode.
func (w *World) Roads() *spatialnet.Graph { return w.roads }

// scheduleNextQuery advances the query-event clock by one exponential
// inter-arrival gap of the λ_Query Poisson process. The gap is added to the
// previous event time (not the current step time), which is what makes the
// arrivals a proper Poisson stream.
func (w *World) scheduleNextQuery() {
	mean := 60.0 / w.cfg.QueriesPerMinute // seconds between queries
	w.nextQueryAt += w.rng.ExpFloat64() * mean
}

// Run advances the simulation to the configured duration and returns the
// steady-state metrics. It can be called once per World: the event clock,
// warm-up bookkeeping, and host caches are consumed by the run, so a second
// call would silently report wrong metrics — it panics instead.
func (w *World) Run() Metrics {
	if w.ran {
		panic("sim: World.Run called twice; build a new World per run")
	}
	w.ran = true
	warmupEnd := w.cfg.Duration * w.cfg.WarmupFraction
	dt := w.cfg.StepSeconds
	for w.now < w.cfg.Duration {
		stepEnd := w.now + dt
		if stepEnd > w.cfg.Duration {
			stepEnd = w.cfg.Duration
		}
		// Fire every query event that falls inside this step.
		for w.nextQueryAt <= stepEnd {
			if !w.recording && w.nextQueryAt >= warmupEnd {
				w.recording = true
				w.server.ResetStats()
			}
			w.executeQuery()
			w.scheduleNextQuery()
		}
		// Advance movement (sharded across Config.Workers goroutines when
		// configured; output is bit-identical for any worker count).
		w.advanceMovement(stepEnd - w.now)
		w.now = stepEnd
	}
	w.metrics.MeasuredSeconds = w.cfg.Duration - warmupEnd
	w.metrics.ServerPageAccesses = w.server.PageAccesses()
	if w.series != nil {
		w.seriesPoints = w.series.finish()
	}
	return w.metrics
}

// executeQuery picks a random host and runs one complete SENN query
// (Algorithm 1) with the simulator's cache policies.
func (w *World) executeQuery() {
	h := w.hosts[w.rng.Intn(len(w.hosts))]
	k := w.cfg.KMin + w.rng.Intn(w.cfg.KMax-w.cfg.KMin+1)
	q := h.pos

	// Gather shareable cached results: the host's own cache first (the
	// local-cache check of §4.1), then every peer within transmission
	// range. The P2P exchange is one broadcast request plus one cache-share
	// response per peer holding data; its wire cost (internal/wire codec
	// sizes) is the communication overhead metric.
	peers := w.peersBuf[:0]
	if e, ok := h.cache.Entry(); ok {
		peers = append(peers, e)
	}
	msgs, wireBytes := int64(1), int64(wire.CacheRequestSize)
	tx2 := w.cfg.TxRange * w.cfg.TxRange
	w.grid.forNeighbors(q, w.cfg.TxRange, func(i int32) {
		other := w.hosts[i]
		if other == h {
			return
		}
		if q.Dist2(other.pos) > tx2 {
			return
		}
		if e, ok := other.cache.Entry(); ok {
			peers = append(peers, e)
			msgs++
			wireBytes += int64(wire.CacheShareSize(len(e.Neighbors)))
		}
	})
	w.peersBuf = peers[:0]
	if w.recording {
		w.metrics.PeerMessages += msgs
		w.metrics.PeerBytes += wireBytes
	}

	// Algorithm 1 over the gathered peer data. The heap is sized at
	// max(k, C_Size) rather than k: the query itself needs k certain
	// objects, but cache policy 1 stores *all* the certain nearest
	// neighbors of the most recent query — the full certified set is still
	// an exact distance prefix (every POI closer than a certified one is
	// itself certified), so it is a valid PeerCache and keeps the shared
	// caches from degrading to the last query's k.
	heapK := k
	if c := h.cache.Capacity(); c > heapK {
		heapK = c
	}
	heap := core.NewResultHeap(heapK)
	answered := func() bool { return heap.NumCertain() >= k }

	sorted := core.SortPeersByProximity(q, peers)
	solvedSingle := false
	for _, p := range sorted {
		core.VerifySinglePeer(q, p, heap)
		if answered() {
			solvedSingle = true
			break
		}
	}
	if !solvedSingle && len(sorted) > 0 {
		core.VerifyMultiPeer(q, sorted, heap)
	}
	if answered() {
		src := core.SolvedByMultiPeer
		if solvedSingle {
			src = core.SolvedBySinglePeer
		}
		w.record(src)
		certain := heap.CertainEntries()
		w.storeResult(h, q, certain)
		if w.audit != nil {
			w.audit(q, k, certain[:k], src)
		}
		return
	}
	if w.cfg.AcceptUncertain && heap.Len() >= k {
		w.record(core.SolvedUncertain)
		// Uncertain results are not exact prefixes: only the certain prefix
		// may enter the cache.
		w.storeResult(h, q, heap.CertainEntries())
		if w.audit != nil {
			entries := heap.Entries()
			if len(entries) > k {
				entries = entries[:k]
			}
			w.audit(q, k, entries, core.SolvedUncertain)
		}
		return
	}

	// Server fallback with the §3.3 pruning bounds. Per cache policy 2 the
	// host tops the request up to its cache capacity. The upper bound — the
	// k-th smallest distance in H — stays in force: it guarantees the top-k
	// answer is complete, while letting the EINN search truncate the
	// opportunistic cache refill early; the refill then holds every POI out
	// to the bound, which is still an exact prefix and therefore a valid
	// PeerCache.
	bounds := heap.Bounds()
	bounds.HasUpper = false
	if ub, ok := heap.UpperBoundFor(k); ok {
		bounds.Upper = ub
		bounds.HasUpper = true
	}
	certain := heap.CertainEntries()
	fetchCount := heapK - len(certain)
	fetched := w.server.KNN(q, fetchCount, bounds)
	w.record(core.SolvedByServer)

	full := make([]core.Candidate, 0, len(certain)+len(fetched))
	full = append(full, certain...)
	for _, p := range fetched {
		full = append(full, core.Candidate{POI: p, Dist: q.Dist(p.Loc), Certain: true})
	}
	w.storeResult(h, q, full)
	if w.audit != nil {
		n := k
		if n > len(full) {
			n = len(full)
		}
		w.audit(q, k, full[:n], core.SolvedByServer)
	}
}

// record tallies one query outcome when past warm-up; the time series (when
// enabled) observes every outcome including the warm-up transient.
func (w *World) record(src core.Source) {
	if w.series != nil {
		var s querySource
		switch src {
		case core.SolvedBySinglePeer:
			s = srcSingle
		case core.SolvedByMultiPeer:
			s = srcMulti
		case core.SolvedUncertain:
			s = srcUncertain
		default:
			s = srcServer
		}
		w.series.observe(w.nextQueryAt, s)
	}
	if !w.recording {
		return
	}
	w.metrics.TotalQueries++
	switch src {
	case core.SolvedBySinglePeer:
		w.metrics.SolvedBySingle++
	case core.SolvedByMultiPeer:
		w.metrics.SolvedByMulti++
	case core.SolvedUncertain:
		w.metrics.SolvedUncertain++
	case core.SolvedByServer:
		w.metrics.SolvedByServer++
	}
}

// storeResult applies cache policy 1: keep the query location and the
// certain NNs of the most recent query.
func (w *World) storeResult(h *host, q geom.Point, certain []core.Candidate) {
	if len(certain) == 0 {
		return // keep the previous entry rather than caching nothing
	}
	pois := make([]core.POI, len(certain))
	for i, c := range certain {
		pois[i] = c.POI
	}
	h.cache.Store(q, pois)
}
