package sim

import "testing"

func TestSeriesRecorderWindows(t *testing.T) {
	s := newSeriesRecorder(10)
	s.observe(1, srcServer)
	s.observe(2, srcSingle)
	s.observe(12, srcServer) // second window
	s.observe(35, srcMulti)  // fourth window (skipping the third)
	pts := s.finish()
	if len(pts) != 4 {
		t.Fatalf("got %d windows, want 4", len(pts))
	}
	if pts[0].Queries != 2 || pts[0].Server != 1 || pts[0].Single != 1 {
		t.Errorf("window 0 = %+v", pts[0])
	}
	if pts[1].Queries != 1 || pts[1].Server != 1 {
		t.Errorf("window 1 = %+v", pts[1])
	}
	if pts[2].Queries != 0 {
		t.Errorf("empty window 2 = %+v", pts[2])
	}
	if pts[3].Multi != 1 {
		t.Errorf("window 3 = %+v", pts[3])
	}
	if pts[0].SQRR() != 50 {
		t.Errorf("window 0 SQRR = %v", pts[0].SQRR())
	}
	if (WindowPoint{}).SQRR() != 0 {
		t.Error("empty window SQRR should be 0")
	}
	// Window boundaries contiguous.
	for i := 1; i < len(pts); i++ {
		if pts[i].Start != pts[i-1].End {
			t.Errorf("window %d not contiguous: %v after %v", i, pts[i].Start, pts[i-1].End)
		}
	}
}

// A full simulation with the series enabled must show the warm-up transient:
// the server share of the first window exceeds the last window's (caches
// fill up over time), and the total query count matches the series sum.
func TestSeriesShowsSteadyStateConvergence(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 600
	cfg.SeriesWindow = 60
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := w.Run()
	series := w.Series()
	if len(series) < 5 {
		t.Fatalf("series has %d windows", len(series))
	}
	var total, recorded int64
	for _, p := range series {
		total += p.Queries
	}
	recorded = m.TotalQueries
	if total < recorded {
		t.Errorf("series total %d below recorded %d", total, recorded)
	}
	first, last := series[0], series[len(series)-1]
	if last.Queries == 0 {
		last = series[len(series)-2]
	}
	if first.SQRR() <= last.SQRR() {
		t.Errorf("no warm-up transient visible: first window SQRR %.1f <= last %.1f",
			first.SQRR(), last.SQRR())
	}
}

func TestSeriesDisabledByDefault(t *testing.T) {
	w, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Run()
	if w.Series() != nil {
		t.Error("series recorded without SeriesWindow")
	}
}
