package sim

import (
	"repro/internal/cache"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/wire"
)

// The query pipeline decomposes what used to be a serial executeQuery loop
// into three explicit layers so a step's query batch can resolve
// concurrently without perturbing a single bit of output:
//
//   - plan — World.Run draws every random decision (querying host, k,
//     exponential inter-arrival gap) up-front in event order, so the RNG
//     stream never depends on how resolution is scheduled;
//   - resolve — each planned query gathers peer caches, runs the §3.2
//     verification lemmas, and falls back to the server EINN search. These
//     are pure reads against the step-start snapshot of host positions and
//     caches, fanned across Config.QueryWorkers goroutines with per-worker
//     scratch;
//   - commit — cache-policy writes, Metrics, series, and audit callbacks
//     are applied strictly in event order on the coordinating goroutine.
//
// Because resolvers share no mutable state (server counters are atomic,
// page accounting is per-traversal) and the commit order is the event
// order, the simulation output is bit-identical for any worker count.
//
// The snapshot semantics are part of the model, not an implementation
// accident: the paper's hosts resolve against the peer caches that exist
// when the query is issued (Algorithm 1, §4.1), so two queries arriving
// within the same one-second step do not observe each other's results.

// queryPlan is one planned query event: everything the plan phase drew from
// the world RNG, plus whether the event falls inside the measured
// (post-warm-up) window.
type queryPlan struct {
	at        float64 // event time on the Poisson clock
	host      int32   // querying host index
	k         int     // requested neighbor count
	recording bool    // event is past warm-up: commit tallies Metrics
}

// queryResult is the effect of resolving one plan, carried from the
// resolve phase to the commit phase.
type queryResult struct {
	q     geom.Point // query point (the host's step-start position)
	src   core.Source
	msgs  int64 // P2P messages the peer exchange cost
	bytes int64 // wire volume of those messages
	pages int64 // server page accesses (0 unless the server was contacted)
	write cache.StagedWrite
	// answer is the exact part the host acts on, recorded only when an
	// audit callback is installed.
	answer []core.Candidate
}

// resolverScratch is one worker's private resolve state: the shared
// transport-agnostic client core (internal/client owns the Algorithm-1
// orchestration and all its buffers) plus the simulator's two transport
// adapters, embedded by value so taking their address costs nothing.
// Everything is reused across the queries of a worker's shard; together
// with the engine-level snapshot buffers the steady-state resolve path —
// peer-solved and server-solved alike — is allocation-free
// (TestResolveAllocsPeerSolved and TestResolveAllocsServerSolved pin both
// at zero).
type resolverScratch struct {
	r       *client.Resolver
	peerSrc simPeerSource
	srv     simServerSource
}

// simPeerSource adapts the simulator's in-memory peer sweep to
// client.PeerSource. host and idx are set per query before Resolve runs:
// the querying host is excluded from its own broadcast, and idx keys the
// plan's cell snapshot under batched gather.
type simPeerSource struct {
	e    *queryEngine
	host int32
	idx  int
}

// Gather appends every in-range peer's shareable cache entry to dst and
// accounts the P2P exchange: one broadcast request plus one cache-share
// response per peer holding data, costed at internal/wire codec sizes.
// Under batched gather the sweep reads the query cell's shared snapshot;
// both modes visit the identical peer sequence (see cellSnap).
func (s *simPeerSource) Gather(q geom.Point, dst []core.PeerCache) ([]core.PeerCache, int64, int64) {
	e := s.e
	w := e.w
	msgs, bytes := int64(1), int64(wire.CacheRequestSize)
	tx2 := w.cfg.TxRange * w.cfg.TxRange
	if w.cfg.PerQueryGather {
		w.grid.forNeighbors(q, w.cfg.TxRange, func(i int32) {
			if i == s.host {
				return
			}
			if q.Dist2(w.pos[i]) > tx2 {
				return
			}
			if ent, ok := w.caches[i].Entry(); ok {
				dst = append(dst, ent)
				msgs++
				bytes += int64(wire.CacheShareSize(len(ent.Neighbors)))
			}
		})
	} else {
		snap := &e.snaps[e.snapOf[s.idx]]
		for j := range snap.peers {
			sp := &snap.peers[j]
			if sp.host == s.host {
				continue
			}
			if q.Dist2(w.pos[sp.host]) > tx2 {
				continue
			}
			dst = append(dst, sp.entry)
			msgs++
			bytes += sp.share
		}
	}
	return dst, msgs, bytes
}

// simServerSource adapts the in-process ServerModule to client.Server. The
// EINN iterator's priority queue lives here so the traversal runs through
// pooled scratch (no allocations); the in-process module cannot fail, so
// the error is always nil.
type simServerSource struct {
	mod *ServerModule
	it  nn.TreeIterator
}

func (s *simServerSource) KNNInto(q geom.Point, k int, b nn.Bounds, dst []core.POI) ([]core.POI, int64, error) {
	out, pages := s.mod.KNNInto(q, k, b, &s.it, dst)
	return out, pages, nil
}

// snapPeer is one shareable peer cache inside a cell-neighborhood snapshot:
// the owning host, the cache entry, and the precomputed wire size of sharing
// it. The host's position is deliberately NOT captured: resolvers read it
// live from the world's SoA column (step-start positions are stable for the
// whole batch), which is what lets a snapshot survive steps where hosts
// moved without changing cell.
type snapPeer struct {
	host  int32
	entry core.PeerCache
	share int64
}

// cellSnap is the peer-cache snapshot of one grid-cell neighborhood,
// gathered once and shared by every query whose point falls in that cell
// (the per-step spatial join). peers holds the hosts of the cell's forCells
// neighborhood that have a cache entry, in the exact order forNeighbors
// would enumerate them, so a resolver filtering it by host index and
// TxRange sees the identical peer sequence a per-query grid sweep would
// produce.
//
// Snapshots persist across batches: fillStamp records the world's
// dirty-cell clock at fill time, and the snapshot is reused as long as no
// cell of its neighborhood has been stamped since (no membership change, no
// resident cache write, no full rebuild — see World.noteCellChanges). A
// reused snapshot is byte-identical to what a fresh fill would produce,
// which the batched-vs-per-query CI diff exercises end to end.
type cellSnap struct {
	cx, cy    int
	fillStamp uint64 // world clock at fill; 0 = never filled
	seen      uint64 // batch counter: validity already checked this batch
	peers     []snapPeer
}

// maxCachedSnaps bounds the persistent snapshot cache; a long run over a
// huge area could otherwise accumulate one entry per ever-queried cell.
const maxCachedSnaps = 8192

// queryEngine owns the batch buffers and worker scratch of the
// plan/resolve/commit pipeline.
type queryEngine struct {
	w       *World
	workers int
	scratch []*resolverScratch
	plans   []queryPlan
	results []queryResult
	// Batched-gather state (unused when Config.PerQueryGather is set):
	// snapOf[i] is the index into snaps of plan i's cell snapshot. snaps and
	// cellIdx persist across batches; fills lists the snaps this batch must
	// (re)fill.
	snapOf  []int32
	cellIdx map[[2]int]int32 // raw cell coords -> snaps index
	snaps   []cellSnap
	fills   []int32
	batch   uint64
	// Reuse accounting (World.GatherReuse).
	snapHits  uint64
	snapFills uint64
}

func newQueryEngine(w *World, workers int) *queryEngine {
	if workers < 1 {
		workers = 1
	}
	e := &queryEngine{w: w, workers: workers, scratch: make([]*resolverScratch, workers)}
	for i := range e.scratch {
		e.scratch[i] = &resolverScratch{r: client.NewResolver()}
		e.scratch[i].peerSrc.e = e
	}
	return e
}

// initQueryEngine arms the query pipeline with the given resolve worker
// count (minimum 1). Split out of New so benchmarks can re-arm the same
// world at different counts.
func (w *World) initQueryEngine(workers int) {
	w.qengine = newQueryEngine(w, workers)
}

// GatherReuse reports how many cell snapshots the batched gather phase
// reused versus filled since the world was built — diagnostic output for
// the dirty-cell reuse machinery (zero hits under Config.FullRebuild or
// Config.PerQueryGather).
func (w *World) GatherReuse() (hits, fills uint64) {
	return w.qengine.snapHits, w.qengine.snapFills
}

// runBatch resolves the planned queries concurrently and commits their
// effects in event order, leaving the plan buffer empty for the next step.
func (e *queryEngine) runBatch() {
	n := len(e.plans)
	if n == 0 {
		return
	}
	if cap(e.results) < n {
		e.results = make([]queryResult, n)
	}
	e.results = e.results[:n]
	for _, sc := range e.scratch {
		sc.r.ResetArena()
	}
	if !e.w.cfg.PerQueryGather {
		e.gatherCells()
	}

	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := e.scratch[0]
		for i := range e.plans {
			e.results[i] = e.resolve(&e.plans[i], i, sc)
		}
	} else {
		shards := splitRange(n, workers)
		runWorkers(len(shards), func(s int) {
			sc := e.scratch[s]
			for i := shards[s][0]; i < shards[s][1]; i++ {
				e.results[i] = e.resolve(&e.plans[i], i, sc)
			}
		})
	}

	// Advance the dirty-cell clock past every fill of this batch, so the
	// cache writes committed below stamp strictly later than the snapshots
	// gathered above.
	e.w.clock++
	for i := range e.plans {
		e.commit(&e.plans[i], &e.results[i])
	}
	e.plans = e.plans[:0]
}

// gatherCells is the batched per-step spatial join: it groups the batch's
// queries by the raw grid cell of their query point and snapshots each
// distinct cell neighborhood's shareable peer caches once, instead of
// re-sweeping the host grid per query. The snapshot is sound because the
// resolve phase is a pure read of step-start state — host positions and
// caches cannot change until every resolve has finished (commits run after
// the fan-out), so a cache entry captured here is exactly what a per-query
// sweep would read mid-batch.
//
// Snapshots persist across batches and are only refilled when the
// dirty-cell clock says something in their neighborhood changed; quiescent
// regions of the world answer repeated queries from the same snapshot.
func (e *queryEngine) gatherCells() {
	w := e.w
	if e.cellIdx == nil {
		e.cellIdx = make(map[[2]int]int32)
	}
	if len(e.snaps) > maxCachedSnaps {
		clear(e.cellIdx)
		e.snaps = e.snaps[:0]
	}
	e.batch++
	if cap(e.snapOf) < len(e.plans) {
		e.snapOf = make([]int32, len(e.plans))
	}
	e.snapOf = e.snapOf[:len(e.plans)]
	e.fills = e.fills[:0]
	for i := range e.plans {
		q := w.pos[e.plans[i].host]
		cx, cy := w.grid.rawCell(q)
		key := [2]int{cx, cy}
		idx, ok := e.cellIdx[key]
		if !ok {
			idx = int32(len(e.snaps))
			e.cellIdx[key] = idx
			// Extend without clobbering: reslicing into spare capacity keeps
			// the retired element's peers buffer for reuse.
			if len(e.snaps) < cap(e.snaps) {
				e.snaps = e.snaps[:len(e.snaps)+1]
			} else {
				e.snaps = append(e.snaps, cellSnap{})
			}
			s := &e.snaps[idx]
			s.cx, s.cy = cx, cy
			s.fillStamp = 0
			s.seen = 0
			s.peers = s.peers[:0]
		}
		e.snapOf[i] = idx
		s := &e.snaps[idx]
		if s.seen == e.batch {
			continue // validity already decided this batch
		}
		s.seen = e.batch
		if s.fillStamp != 0 && e.snapValid(s) {
			e.snapHits++
			continue
		}
		e.fills = append(e.fills, idx)
	}
	e.snapFills += uint64(len(e.fills))

	// Distinct cells are independent, so the snapshot fill fans out across
	// the resolve workers; each worker writes only its own snaps slots.
	if e.workers <= 1 || len(e.fills) == 1 {
		for _, idx := range e.fills {
			e.fillSnap(&e.snaps[idx])
		}
	} else if len(e.fills) > 1 {
		workers := e.workers
		if workers > len(e.fills) {
			workers = len(e.fills)
		}
		shards := splitRange(len(e.fills), workers)
		runWorkers(len(shards), func(s int) {
			for i := shards[s][0]; i < shards[s][1]; i++ {
				e.fillSnap(&e.snaps[e.fills[i]])
			}
		})
	}
}

// snapValid reports whether s still reflects its neighborhood: no cell of
// the forCells sweep may have been stamped after the snapshot was filled
// (membership change or resident cache write), and no full rebuild may have
// occurred since.
func (e *queryEngine) snapValid(s *cellSnap) bool {
	w := e.w
	if s.fillStamp < w.fullStamp {
		return false
	}
	valid := true
	w.grid.forCellsAt(s.cx, s.cy, w.cfg.TxRange, func(c int32) {
		if w.cellStamp[c] > s.fillStamp {
			valid = false
		}
	})
	return valid
}

// fillSnap captures one cell neighborhood's shareable caches in forNeighbors
// enumeration order (cells row-major, hosts ascending within a cell).
func (e *queryEngine) fillSnap(s *cellSnap) {
	w := e.w
	s.peers = s.peers[:0]
	s.fillStamp = w.clock
	w.grid.forCellsAt(s.cx, s.cy, w.cfg.TxRange, func(c int32) {
		for _, hi := range w.grid.entries[w.grid.start[c]:w.grid.start[c+1]] {
			if ent, ok := w.caches[hi].Entry(); ok {
				s.peers = append(s.peers, snapPeer{
					host:  hi,
					entry: ent,
					share: int64(wire.CacheShareSize(len(ent.Neighbors))),
				})
			}
		}
	})
}

// resolve runs one complete SENN query against the step-start snapshot by
// handing the plan to the shared client core (internal/client owns
// Algorithm 1: peer verification, the uncertain shortcut, the server
// fallback with the §3.3 pruning bounds) wired to the simulator's two
// transports. It only reads world state — every effect is returned in the
// queryResult for the commit phase. idx is the plan's batch position (it
// keys the cell snapshot under batched gather). Both the peer-solved and
// the server-solved path perform no heap allocations in steady state.
func (e *queryEngine) resolve(p *queryPlan, idx int, sc *resolverScratch) queryResult {
	w := e.w
	q := w.pos[p.host]
	sc.peerSrc.host, sc.peerSrc.idx = p.host, idx
	sc.srv.mod = w.server
	out := sc.r.Resolve(client.Request{
		Q:               q,
		K:               p.k,
		Cache:           &w.caches[p.host],
		AcceptUncertain: w.cfg.AcceptUncertain,
		// The audit callback retains the answer past this worker's next
		// query, so it needs the private copy NeedAnswer provides
		// (test-only path; that allocation is fine).
		NeedAnswer: w.audit != nil,
	}, &sc.peerSrc, &sc.srv)
	return queryResult{
		q:      q,
		src:    out.Src,
		msgs:   out.Msgs,
		bytes:  out.Bytes,
		pages:  out.Pages,
		write:  out.Write,
		answer: out.Answer,
	}
}

// commit applies one resolved query's effects: the time series observes
// every outcome (including the warm-up transient), Metrics tally only past
// warm-up, and cache policy 1 writes land in event order. A write that
// lands also stamps the host's cell on the dirty-cell clock, so snapshots
// whose neighborhood saw the new cache refill before their next reuse.
func (e *queryEngine) commit(p *queryPlan, r *queryResult) {
	w := e.w
	if w.series != nil {
		var s querySource
		switch r.src {
		case core.SolvedBySinglePeer:
			s = srcSingle
		case core.SolvedByMultiPeer:
			s = srcMulti
		case core.SolvedUncertain:
			s = srcUncertain
		default:
			s = srcServer
		}
		w.series.observe(p.at, s)
	}
	if p.recording {
		w.metrics.TotalQueries++
		switch r.src {
		case core.SolvedBySinglePeer:
			w.metrics.SolvedBySingle++
		case core.SolvedByMultiPeer:
			w.metrics.SolvedByMulti++
		case core.SolvedUncertain:
			w.metrics.SolvedUncertain++
		case core.SolvedByServer:
			w.metrics.SolvedByServer++
		}
		w.metrics.PeerMessages += r.msgs
		w.metrics.PeerBytes += r.bytes
		w.metrics.ServerPageAccesses += r.pages
	}
	if r.write.Staged() {
		old, hadOld := w.caches[p.host].Entry()
		r.write.Apply(&w.caches[p.host])
		// Stamp only when the stored entry actually changed: a parked host
		// re-answering from its own cache rewrites an identical entry, and
		// stamping it would invalidate its whole neighborhood's snapshots
		// every time the cell is queried — self-defeating for reuse. An
		// unchanged entry leaves every snapshot byte-identical to a fresh
		// fill, so skipping the stamp is sound. (Store copies on Apply, so
		// old still references the pre-write slice here.)
		if now, ok := w.caches[p.host].Entry(); !ok || !hadOld || !peerCacheEqual(old, now) {
			w.cellStamp[w.cells[p.host]] = w.clock
		}
	}
	if w.audit != nil {
		w.audit(r.q, p.k, r.answer, r.src)
	}
}

// peerCacheEqual reports whether two cache entries are identical as the
// gather phase captures them: same query location, same neighbor sequence
// (the share size is a function of the neighbor count).
func peerCacheEqual(a, b core.PeerCache) bool {
	if a.QueryLoc != b.QueryLoc || len(a.Neighbors) != len(b.Neighbors) {
		return false
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			return false
		}
	}
	return true
}
