package sim

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/wire"
)

// The query pipeline decomposes what used to be a serial executeQuery loop
// into three explicit layers so a step's query batch can resolve
// concurrently without perturbing a single bit of output:
//
//   - plan — World.Run draws every random decision (querying host, k,
//     exponential inter-arrival gap) up-front in event order, so the RNG
//     stream never depends on how resolution is scheduled;
//   - resolve — each planned query gathers peer caches, runs the §3.2
//     verification lemmas, and falls back to the server EINN search. These
//     are pure reads against the step-start snapshot of host positions and
//     caches, fanned across Config.QueryWorkers goroutines with per-worker
//     scratch;
//   - commit — cache-policy writes, Metrics, series, and audit callbacks
//     are applied strictly in event order on the coordinating goroutine.
//
// Because resolvers share no mutable state (server counters are atomic,
// page accounting is per-traversal) and the commit order is the event
// order, the simulation output is bit-identical for any worker count.
//
// The snapshot semantics are part of the model, not an implementation
// accident: the paper's hosts resolve against the peer caches that exist
// when the query is issued (Algorithm 1, §4.1), so two queries arriving
// within the same one-second step do not observe each other's results.

// queryPlan is one planned query event: everything the plan phase drew from
// the world RNG, plus whether the event falls inside the measured
// (post-warm-up) window.
type queryPlan struct {
	at        float64 // event time on the Poisson clock
	host      int32   // querying host index
	k         int     // requested neighbor count
	recording bool    // event is past warm-up: commit tallies Metrics
}

// queryResult is the effect of resolving one plan, carried from the
// resolve phase to the commit phase.
type queryResult struct {
	q     geom.Point // query point (the host's step-start position)
	src   core.Source
	msgs  int64 // P2P messages the peer exchange cost
	bytes int64 // wire volume of those messages
	pages int64 // server page accesses (0 unless the server was contacted)
	write cache.StagedWrite
	// answer is the exact part the host acts on, recorded only when an
	// audit callback is installed.
	answer []core.Candidate
}

// resolverScratch is one worker's private buffers, reused across the
// queries of its shard. Together with the engine-level snapshot buffers it
// makes the steady-state resolve path — peer-solved and server-solved alike
// — allocation-free (TestResolveAllocsPeerSolved and
// TestResolveAllocsServerSolved pin both at zero).
type resolverScratch struct {
	peers  []core.PeerCache
	heap   *core.ResultHeap
	verify core.VerifierScratch
	sorter core.PeerProximitySorter
	// poiArena backs the POI slices handed to cache.Stage. It is reset at
	// batch start, not per query: staged slices must stay intact until the
	// commit phase reads them (cache.Store copies on Apply, so nothing
	// references arena memory across batches).
	poiArena []core.POI
	// full merges certified heap entries with server-fetched POIs on the
	// fallback path.
	full []core.Candidate
	// it and fetched are the server path's traversal scratch: the EINN
	// iterator's priority queue and the fetched-POI destination both
	// survive across queries.
	it      nn.TreeIterator
	fetched []core.POI
}

// snapPeer is one shareable peer cache inside a cell-neighborhood snapshot:
// the owning host, the cache entry, and the precomputed wire size of sharing
// it. The host's position is deliberately NOT captured: resolvers read it
// live from the world's SoA column (step-start positions are stable for the
// whole batch), which is what lets a snapshot survive steps where hosts
// moved without changing cell.
type snapPeer struct {
	host  int32
	entry core.PeerCache
	share int64
}

// cellSnap is the peer-cache snapshot of one grid-cell neighborhood,
// gathered once and shared by every query whose point falls in that cell
// (the per-step spatial join). peers holds the hosts of the cell's forCells
// neighborhood that have a cache entry, in the exact order forNeighbors
// would enumerate them, so a resolver filtering it by host index and
// TxRange sees the identical peer sequence a per-query grid sweep would
// produce.
//
// Snapshots persist across batches: fillStamp records the world's
// dirty-cell clock at fill time, and the snapshot is reused as long as no
// cell of its neighborhood has been stamped since (no membership change, no
// resident cache write, no full rebuild — see World.noteCellChanges). A
// reused snapshot is byte-identical to what a fresh fill would produce,
// which the batched-vs-per-query CI diff exercises end to end.
type cellSnap struct {
	cx, cy    int
	fillStamp uint64 // world clock at fill; 0 = never filled
	seen      uint64 // batch counter: validity already checked this batch
	peers     []snapPeer
}

// maxCachedSnaps bounds the persistent snapshot cache; a long run over a
// huge area could otherwise accumulate one entry per ever-queried cell.
const maxCachedSnaps = 8192

// queryEngine owns the batch buffers and worker scratch of the
// plan/resolve/commit pipeline.
type queryEngine struct {
	w       *World
	workers int
	scratch []*resolverScratch
	plans   []queryPlan
	results []queryResult
	// Batched-gather state (unused when Config.PerQueryGather is set):
	// snapOf[i] is the index into snaps of plan i's cell snapshot. snaps and
	// cellIdx persist across batches; fills lists the snaps this batch must
	// (re)fill.
	snapOf  []int32
	cellIdx map[[2]int]int32 // raw cell coords -> snaps index
	snaps   []cellSnap
	fills   []int32
	batch   uint64
	// Reuse accounting (World.GatherReuse).
	snapHits  uint64
	snapFills uint64
}

func newQueryEngine(w *World, workers int) *queryEngine {
	if workers < 1 {
		workers = 1
	}
	e := &queryEngine{w: w, workers: workers, scratch: make([]*resolverScratch, workers)}
	for i := range e.scratch {
		e.scratch[i] = &resolverScratch{heap: core.NewResultHeap(1)}
	}
	return e
}

// initQueryEngine arms the query pipeline with the given resolve worker
// count (minimum 1). Split out of New so benchmarks can re-arm the same
// world at different counts.
func (w *World) initQueryEngine(workers int) {
	w.qengine = newQueryEngine(w, workers)
}

// GatherReuse reports how many cell snapshots the batched gather phase
// reused versus filled since the world was built — diagnostic output for
// the dirty-cell reuse machinery (zero hits under Config.FullRebuild or
// Config.PerQueryGather).
func (w *World) GatherReuse() (hits, fills uint64) {
	return w.qengine.snapHits, w.qengine.snapFills
}

// runBatch resolves the planned queries concurrently and commits their
// effects in event order, leaving the plan buffer empty for the next step.
func (e *queryEngine) runBatch() {
	n := len(e.plans)
	if n == 0 {
		return
	}
	if cap(e.results) < n {
		e.results = make([]queryResult, n)
	}
	e.results = e.results[:n]
	for _, sc := range e.scratch {
		sc.poiArena = sc.poiArena[:0]
	}
	if !e.w.cfg.PerQueryGather {
		e.gatherCells()
	}

	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := e.scratch[0]
		for i := range e.plans {
			e.results[i] = e.resolve(&e.plans[i], i, sc)
		}
	} else {
		shards := splitRange(n, workers)
		runWorkers(len(shards), func(s int) {
			sc := e.scratch[s]
			for i := shards[s][0]; i < shards[s][1]; i++ {
				e.results[i] = e.resolve(&e.plans[i], i, sc)
			}
		})
	}

	// Advance the dirty-cell clock past every fill of this batch, so the
	// cache writes committed below stamp strictly later than the snapshots
	// gathered above.
	e.w.clock++
	for i := range e.plans {
		e.commit(&e.plans[i], &e.results[i])
	}
	e.plans = e.plans[:0]
}

// gatherCells is the batched per-step spatial join: it groups the batch's
// queries by the raw grid cell of their query point and snapshots each
// distinct cell neighborhood's shareable peer caches once, instead of
// re-sweeping the host grid per query. The snapshot is sound because the
// resolve phase is a pure read of step-start state — host positions and
// caches cannot change until every resolve has finished (commits run after
// the fan-out), so a cache entry captured here is exactly what a per-query
// sweep would read mid-batch.
//
// Snapshots persist across batches and are only refilled when the
// dirty-cell clock says something in their neighborhood changed; quiescent
// regions of the world answer repeated queries from the same snapshot.
func (e *queryEngine) gatherCells() {
	w := e.w
	if e.cellIdx == nil {
		e.cellIdx = make(map[[2]int]int32)
	}
	if len(e.snaps) > maxCachedSnaps {
		clear(e.cellIdx)
		e.snaps = e.snaps[:0]
	}
	e.batch++
	if cap(e.snapOf) < len(e.plans) {
		e.snapOf = make([]int32, len(e.plans))
	}
	e.snapOf = e.snapOf[:len(e.plans)]
	e.fills = e.fills[:0]
	for i := range e.plans {
		q := w.pos[e.plans[i].host]
		cx, cy := w.grid.rawCell(q)
		key := [2]int{cx, cy}
		idx, ok := e.cellIdx[key]
		if !ok {
			idx = int32(len(e.snaps))
			e.cellIdx[key] = idx
			// Extend without clobbering: reslicing into spare capacity keeps
			// the retired element's peers buffer for reuse.
			if len(e.snaps) < cap(e.snaps) {
				e.snaps = e.snaps[:len(e.snaps)+1]
			} else {
				e.snaps = append(e.snaps, cellSnap{})
			}
			s := &e.snaps[idx]
			s.cx, s.cy = cx, cy
			s.fillStamp = 0
			s.seen = 0
			s.peers = s.peers[:0]
		}
		e.snapOf[i] = idx
		s := &e.snaps[idx]
		if s.seen == e.batch {
			continue // validity already decided this batch
		}
		s.seen = e.batch
		if s.fillStamp != 0 && e.snapValid(s) {
			e.snapHits++
			continue
		}
		e.fills = append(e.fills, idx)
	}
	e.snapFills += uint64(len(e.fills))

	// Distinct cells are independent, so the snapshot fill fans out across
	// the resolve workers; each worker writes only its own snaps slots.
	if e.workers <= 1 || len(e.fills) == 1 {
		for _, idx := range e.fills {
			e.fillSnap(&e.snaps[idx])
		}
	} else if len(e.fills) > 1 {
		workers := e.workers
		if workers > len(e.fills) {
			workers = len(e.fills)
		}
		shards := splitRange(len(e.fills), workers)
		runWorkers(len(shards), func(s int) {
			for i := shards[s][0]; i < shards[s][1]; i++ {
				e.fillSnap(&e.snaps[e.fills[i]])
			}
		})
	}
}

// snapValid reports whether s still reflects its neighborhood: no cell of
// the forCells sweep may have been stamped after the snapshot was filled
// (membership change or resident cache write), and no full rebuild may have
// occurred since.
func (e *queryEngine) snapValid(s *cellSnap) bool {
	w := e.w
	if s.fillStamp < w.fullStamp {
		return false
	}
	valid := true
	w.grid.forCellsAt(s.cx, s.cy, w.cfg.TxRange, func(c int32) {
		if w.cellStamp[c] > s.fillStamp {
			valid = false
		}
	})
	return valid
}

// fillSnap captures one cell neighborhood's shareable caches in forNeighbors
// enumeration order (cells row-major, hosts ascending within a cell).
func (e *queryEngine) fillSnap(s *cellSnap) {
	w := e.w
	s.peers = s.peers[:0]
	s.fillStamp = w.clock
	w.grid.forCellsAt(s.cx, s.cy, w.cfg.TxRange, func(c int32) {
		for _, hi := range w.grid.entries[w.grid.start[c]:w.grid.start[c+1]] {
			if ent, ok := w.caches[hi].Entry(); ok {
				s.peers = append(s.peers, snapPeer{
					host:  hi,
					entry: ent,
					share: int64(wire.CacheShareSize(len(ent.Neighbors))),
				})
			}
		}
	})
}

// resolve runs one complete SENN query (Algorithm 1) against the step-start
// snapshot: peer gather, kNN_single/kNN_multiple verification, then the
// server fallback with the §3.3 pruning bounds. It only reads world state —
// every effect is returned in the queryResult for the commit phase. idx is
// the plan's batch position (it keys the cell snapshot under batched
// gather). Both the peer-solved and the server-solved path perform no heap
// allocations in steady state.
func (e *queryEngine) resolve(p *queryPlan, idx int, sc *resolverScratch) queryResult {
	w := e.w
	own := &w.caches[p.host]
	k := p.k
	q := w.pos[p.host]
	res := queryResult{q: q}

	// Gather shareable cached results: the host's own cache first (the
	// local-cache check of §4.1), then every peer within transmission
	// range. The P2P exchange is one broadcast request plus one cache-share
	// response per peer holding data; its wire cost (internal/wire codec
	// sizes) is the communication overhead metric. Under batched gather the
	// peer sweep reads the query cell's shared snapshot; both modes visit
	// the identical peer sequence (see cellSnap).
	peers := sc.peers[:0]
	if ent, ok := own.Entry(); ok {
		peers = append(peers, ent)
	}
	res.msgs, res.bytes = 1, int64(wire.CacheRequestSize)
	tx2 := w.cfg.TxRange * w.cfg.TxRange
	if w.cfg.PerQueryGather {
		w.grid.forNeighbors(q, w.cfg.TxRange, func(i int32) {
			if i == p.host {
				return
			}
			if q.Dist2(w.pos[i]) > tx2 {
				return
			}
			if ent, ok := w.caches[i].Entry(); ok {
				peers = append(peers, ent)
				res.msgs++
				res.bytes += int64(wire.CacheShareSize(len(ent.Neighbors)))
			}
		})
	} else {
		snap := &e.snaps[e.snapOf[idx]]
		for j := range snap.peers {
			sp := &snap.peers[j]
			if sp.host == p.host {
				continue
			}
			if q.Dist2(w.pos[sp.host]) > tx2 {
				continue
			}
			peers = append(peers, sp.entry)
			res.msgs++
			res.bytes += sp.share
		}
	}
	sc.peers = peers[:0]

	// Algorithm 1 over the gathered peer data. The heap is sized at
	// max(k, C_Size) rather than k: the query itself needs k certain
	// objects, but cache policy 1 stores *all* the certain nearest
	// neighbors of the most recent query — the full certified set is still
	// an exact distance prefix (every POI closer than a certified one is
	// itself certified), so it is a valid PeerCache and keeps the shared
	// caches from degrading to the last query's k.
	heapK := k
	if c := own.Capacity(); c > heapK {
		heapK = c
	}
	heap := sc.heap
	heap.Reset(heapK)
	answered := func() bool { return heap.NumCertain() >= k }

	// Heuristic 3.3 ordering, in place: the resolver owns the peers slice,
	// so the copying SortPeersByProximity would only add garbage.
	sc.sorter.Q = q
	sc.sorter.Peers = peers
	sc.sorter.Sort()
	solvedSingle := false
	for _, pc := range peers {
		core.VerifySinglePeer(q, pc, heap)
		if answered() {
			solvedSingle = true
			break
		}
	}
	if !solvedSingle && len(peers) > 0 {
		sc.verify.VerifyMultiPeer(q, peers, heap)
	}
	if answered() {
		res.src = core.SolvedByMultiPeer
		if solvedSingle {
			res.src = core.SolvedBySinglePeer
		}
		// CertainView aliases the heap scratch; the arena copy made for the
		// staged write is what outlives this call.
		certain := heap.CertainView()
		res.write = sc.stageResult(q, certain)
		if w.audit != nil {
			// The audit callback retains the answer past this worker's next
			// query, so it gets a private copy (test-only path; allocation
			// is fine here).
			res.answer = append([]core.Candidate(nil), certain[:k]...)
		}
		return res
	}
	if w.cfg.AcceptUncertain && heap.Len() >= k {
		res.src = core.SolvedUncertain
		// Uncertain results are not exact prefixes: only the certain prefix
		// may enter the cache.
		res.write = sc.stageResult(q, heap.CertainView())
		if w.audit != nil {
			entries := heap.Entries()
			if len(entries) > k {
				entries = entries[:k]
			}
			res.answer = entries
		}
		return res
	}

	// Server fallback with the §3.3 pruning bounds. Per cache policy 2 the
	// host tops the request up to its cache capacity. The upper bound — the
	// k-th smallest distance in H — stays in force: it guarantees the top-k
	// answer is complete, while letting the EINN search truncate the
	// opportunistic cache refill early; the refill then holds every POI out
	// to the bound, which is still an exact prefix and therefore a valid
	// PeerCache. The traversal runs through the worker's pooled iterator
	// and fetched-POI scratch (no allocations).
	bounds := heap.Bounds()
	bounds.HasUpper = false
	if ub, ok := heap.UpperBoundFor(k); ok {
		bounds.Upper = ub
		bounds.HasUpper = true
	}
	certain := heap.CertainView()
	fetchCount := heapK - len(certain)
	fetched, pages := w.server.KNNInto(q, fetchCount, bounds, &sc.it, sc.fetched)
	sc.fetched = fetched
	res.src = core.SolvedByServer
	res.pages = pages

	full := sc.full[:0]
	full = append(full, certain...)
	for _, poi := range fetched {
		full = append(full, core.Candidate{POI: poi, Dist: q.Dist(poi.Loc), Certain: true})
	}
	sc.full = full
	res.write = sc.stageResult(q, full)
	if w.audit != nil {
		nk := k
		if nk > len(full) {
			nk = len(full)
		}
		res.answer = append([]core.Candidate(nil), full[:nk]...)
	}
	return res
}

// commit applies one resolved query's effects: the time series observes
// every outcome (including the warm-up transient), Metrics tally only past
// warm-up, and cache policy 1 writes land in event order. A write that
// lands also stamps the host's cell on the dirty-cell clock, so snapshots
// whose neighborhood saw the new cache refill before their next reuse.
func (e *queryEngine) commit(p *queryPlan, r *queryResult) {
	w := e.w
	if w.series != nil {
		var s querySource
		switch r.src {
		case core.SolvedBySinglePeer:
			s = srcSingle
		case core.SolvedByMultiPeer:
			s = srcMulti
		case core.SolvedUncertain:
			s = srcUncertain
		default:
			s = srcServer
		}
		w.series.observe(p.at, s)
	}
	if p.recording {
		w.metrics.TotalQueries++
		switch r.src {
		case core.SolvedBySinglePeer:
			w.metrics.SolvedBySingle++
		case core.SolvedByMultiPeer:
			w.metrics.SolvedByMulti++
		case core.SolvedUncertain:
			w.metrics.SolvedUncertain++
		case core.SolvedByServer:
			w.metrics.SolvedByServer++
		}
		w.metrics.PeerMessages += r.msgs
		w.metrics.PeerBytes += r.bytes
		w.metrics.ServerPageAccesses += r.pages
	}
	if r.write.Staged() {
		old, hadOld := w.caches[p.host].Entry()
		r.write.Apply(&w.caches[p.host])
		// Stamp only when the stored entry actually changed: a parked host
		// re-answering from its own cache rewrites an identical entry, and
		// stamping it would invalidate its whole neighborhood's snapshots
		// every time the cell is queried — self-defeating for reuse. An
		// unchanged entry leaves every snapshot byte-identical to a fresh
		// fill, so skipping the stamp is sound. (Store copies on Apply, so
		// old still references the pre-write slice here.)
		if now, ok := w.caches[p.host].Entry(); !ok || !hadOld || !peerCacheEqual(old, now) {
			w.cellStamp[w.cells[p.host]] = w.clock
		}
	}
	if w.audit != nil {
		w.audit(r.q, p.k, r.answer, r.src)
	}
}

// peerCacheEqual reports whether two cache entries are identical as the
// gather phase captures them: same query location, same neighbor sequence
// (the share size is a function of the neighbor count).
func peerCacheEqual(a, b core.PeerCache) bool {
	if a.QueryLoc != b.QueryLoc || len(a.Neighbors) != len(b.Neighbors) {
		return false
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			return false
		}
	}
	return true
}

// stageResult prepares cache policy 1 as a deferred write: keep the query
// location and the certain NNs of the most recent query. An empty certain
// set stages nothing — the previous entry is kept rather than caching
// nothing.
//
// The POI copy lives in the worker's arena, which runBatch resets at batch
// start: the staged slice only needs to survive until the commit phase,
// where cache.Store copies it into the host cache. A mid-batch arena growth
// leaves earlier slices pointing at the retired backing array, which stays
// valid (and unreused) until the next batch.
func (sc *resolverScratch) stageResult(q geom.Point, certain []core.Candidate) cache.StagedWrite {
	if len(certain) == 0 {
		return cache.StagedWrite{}
	}
	base := len(sc.poiArena)
	for _, c := range certain {
		sc.poiArena = append(sc.poiArena, c.POI)
	}
	return cache.Stage(q, sc.poiArena[base:len(sc.poiArena):len(sc.poiArena)])
}
