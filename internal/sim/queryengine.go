package sim

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wire"
)

// The query pipeline decomposes what used to be a serial executeQuery loop
// into three explicit layers so a step's query batch can resolve
// concurrently without perturbing a single bit of output:
//
//   - plan — World.Run draws every random decision (querying host, k,
//     exponential inter-arrival gap) up-front in event order, so the RNG
//     stream never depends on how resolution is scheduled;
//   - resolve — each planned query gathers peer caches, runs the §3.2
//     verification lemmas, and falls back to the server EINN search. These
//     are pure reads against the step-start snapshot of host positions and
//     caches, fanned across Config.QueryWorkers goroutines with per-worker
//     scratch;
//   - commit — cache-policy writes, Metrics, series, and audit callbacks
//     are applied strictly in event order on the coordinating goroutine.
//
// Because resolvers share no mutable state (server counters are atomic,
// page accounting is per-traversal) and the commit order is the event
// order, the simulation output is bit-identical for any worker count.
//
// The snapshot semantics are part of the model, not an implementation
// accident: the paper's hosts resolve against the peer caches that exist
// when the query is issued (Algorithm 1, §4.1), so two queries arriving
// within the same one-second step do not observe each other's results.

// queryPlan is one planned query event: everything the plan phase drew from
// the world RNG, plus whether the event falls inside the measured
// (post-warm-up) window.
type queryPlan struct {
	at        float64 // event time on the Poisson clock
	host      int32   // querying host index
	k         int     // requested neighbor count
	recording bool    // event is past warm-up: commit tallies Metrics
}

// queryResult is the effect of resolving one plan, carried from the
// resolve phase to the commit phase.
type queryResult struct {
	q     geom.Point // query point (the host's step-start position)
	src   core.Source
	msgs  int64 // P2P messages the peer exchange cost
	bytes int64 // wire volume of those messages
	pages int64 // server page accesses (0 unless the server was contacted)
	write cache.StagedWrite
	// answer is the exact part the host acts on, recorded only when an
	// audit callback is installed.
	answer []core.Candidate
}

// resolverScratch is one worker's private buffers, reused across the
// queries of its shard.
type resolverScratch struct {
	peers []core.PeerCache
	heap  *core.ResultHeap
}

// queryEngine owns the batch buffers and worker scratch of the
// plan/resolve/commit pipeline.
type queryEngine struct {
	w       *World
	workers int
	scratch []*resolverScratch
	plans   []queryPlan
	results []queryResult
}

func newQueryEngine(w *World, workers int) *queryEngine {
	if workers < 1 {
		workers = 1
	}
	e := &queryEngine{w: w, workers: workers, scratch: make([]*resolverScratch, workers)}
	for i := range e.scratch {
		e.scratch[i] = &resolverScratch{heap: core.NewResultHeap(1)}
	}
	return e
}

// initQueryEngine arms the query pipeline with the given resolve worker
// count (minimum 1). Split out of New so benchmarks can re-arm the same
// world at different counts.
func (w *World) initQueryEngine(workers int) {
	w.qengine = newQueryEngine(w, workers)
}

// runBatch resolves the planned queries concurrently and commits their
// effects in event order, leaving the plan buffer empty for the next step.
func (e *queryEngine) runBatch() {
	n := len(e.plans)
	if n == 0 {
		return
	}
	if cap(e.results) < n {
		e.results = make([]queryResult, n)
	}
	e.results = e.results[:n]

	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := e.scratch[0]
		for i := range e.plans {
			e.results[i] = e.resolve(&e.plans[i], sc)
		}
	} else {
		shards := splitRange(n, workers)
		runWorkers(len(shards), func(s int) {
			sc := e.scratch[s]
			for i := shards[s][0]; i < shards[s][1]; i++ {
				e.results[i] = e.resolve(&e.plans[i], sc)
			}
		})
	}

	for i := range e.plans {
		e.commit(&e.plans[i], &e.results[i])
	}
	e.plans = e.plans[:0]
}

// resolve runs one complete SENN query (Algorithm 1) against the step-start
// snapshot: peer gather, kNN_single/kNN_multiple verification, then the
// server fallback with the §3.3 pruning bounds. It only reads world state —
// every effect is returned in the queryResult for the commit phase.
func (e *queryEngine) resolve(p *queryPlan, sc *resolverScratch) queryResult {
	w := e.w
	h := w.hosts[p.host]
	k := p.k
	q := h.pos
	res := queryResult{q: q}

	// Gather shareable cached results: the host's own cache first (the
	// local-cache check of §4.1), then every peer within transmission
	// range. The P2P exchange is one broadcast request plus one cache-share
	// response per peer holding data; its wire cost (internal/wire codec
	// sizes) is the communication overhead metric.
	peers := sc.peers[:0]
	if ent, ok := h.cache.Entry(); ok {
		peers = append(peers, ent)
	}
	res.msgs, res.bytes = 1, int64(wire.CacheRequestSize)
	tx2 := w.cfg.TxRange * w.cfg.TxRange
	w.grid.forNeighbors(q, w.cfg.TxRange, func(i int32) {
		other := w.hosts[i]
		if other == h {
			return
		}
		if q.Dist2(other.pos) > tx2 {
			return
		}
		if ent, ok := other.cache.Entry(); ok {
			peers = append(peers, ent)
			res.msgs++
			res.bytes += int64(wire.CacheShareSize(len(ent.Neighbors)))
		}
	})
	sc.peers = peers[:0]

	// Algorithm 1 over the gathered peer data. The heap is sized at
	// max(k, C_Size) rather than k: the query itself needs k certain
	// objects, but cache policy 1 stores *all* the certain nearest
	// neighbors of the most recent query — the full certified set is still
	// an exact distance prefix (every POI closer than a certified one is
	// itself certified), so it is a valid PeerCache and keeps the shared
	// caches from degrading to the last query's k.
	heapK := k
	if c := h.cache.Capacity(); c > heapK {
		heapK = c
	}
	heap := sc.heap
	heap.Reset(heapK)
	answered := func() bool { return heap.NumCertain() >= k }

	sorted := core.SortPeersByProximity(q, peers)
	solvedSingle := false
	for _, pc := range sorted {
		core.VerifySinglePeer(q, pc, heap)
		if answered() {
			solvedSingle = true
			break
		}
	}
	if !solvedSingle && len(sorted) > 0 {
		core.VerifyMultiPeer(q, sorted, heap)
	}
	if answered() {
		res.src = core.SolvedByMultiPeer
		if solvedSingle {
			res.src = core.SolvedBySinglePeer
		}
		certain := heap.CertainEntries()
		res.write = stageResult(q, certain)
		if w.audit != nil {
			res.answer = certain[:k]
		}
		return res
	}
	if w.cfg.AcceptUncertain && heap.Len() >= k {
		res.src = core.SolvedUncertain
		// Uncertain results are not exact prefixes: only the certain prefix
		// may enter the cache.
		res.write = stageResult(q, heap.CertainEntries())
		if w.audit != nil {
			entries := heap.Entries()
			if len(entries) > k {
				entries = entries[:k]
			}
			res.answer = entries
		}
		return res
	}

	// Server fallback with the §3.3 pruning bounds. Per cache policy 2 the
	// host tops the request up to its cache capacity. The upper bound — the
	// k-th smallest distance in H — stays in force: it guarantees the top-k
	// answer is complete, while letting the EINN search truncate the
	// opportunistic cache refill early; the refill then holds every POI out
	// to the bound, which is still an exact prefix and therefore a valid
	// PeerCache.
	bounds := heap.Bounds()
	bounds.HasUpper = false
	if ub, ok := heap.UpperBoundFor(k); ok {
		bounds.Upper = ub
		bounds.HasUpper = true
	}
	certain := heap.CertainEntries()
	fetchCount := heapK - len(certain)
	fetched, pages := w.server.KNNCounted(q, fetchCount, bounds)
	res.src = core.SolvedByServer
	res.pages = pages

	full := make([]core.Candidate, 0, len(certain)+len(fetched))
	full = append(full, certain...)
	for _, poi := range fetched {
		full = append(full, core.Candidate{POI: poi, Dist: q.Dist(poi.Loc), Certain: true})
	}
	res.write = stageResult(q, full)
	if w.audit != nil {
		nk := k
		if nk > len(full) {
			nk = len(full)
		}
		res.answer = full[:nk]
	}
	return res
}

// commit applies one resolved query's effects: the time series observes
// every outcome (including the warm-up transient), Metrics tally only past
// warm-up, and cache policy 1 writes land in event order.
func (e *queryEngine) commit(p *queryPlan, r *queryResult) {
	w := e.w
	if w.series != nil {
		var s querySource
		switch r.src {
		case core.SolvedBySinglePeer:
			s = srcSingle
		case core.SolvedByMultiPeer:
			s = srcMulti
		case core.SolvedUncertain:
			s = srcUncertain
		default:
			s = srcServer
		}
		w.series.observe(p.at, s)
	}
	if p.recording {
		w.metrics.TotalQueries++
		switch r.src {
		case core.SolvedBySinglePeer:
			w.metrics.SolvedBySingle++
		case core.SolvedByMultiPeer:
			w.metrics.SolvedByMulti++
		case core.SolvedUncertain:
			w.metrics.SolvedUncertain++
		case core.SolvedByServer:
			w.metrics.SolvedByServer++
		}
		w.metrics.PeerMessages += r.msgs
		w.metrics.PeerBytes += r.bytes
		w.metrics.ServerPageAccesses += r.pages
	}
	r.write.Apply(w.hosts[p.host].cache)
	if w.audit != nil {
		w.audit(r.q, p.k, r.answer, r.src)
	}
}

// stageResult prepares cache policy 1 as a deferred write: keep the query
// location and the certain NNs of the most recent query. An empty certain
// set stages nothing — the previous entry is kept rather than caching
// nothing.
func stageResult(q geom.Point, certain []core.Candidate) cache.StagedWrite {
	if len(certain) == 0 {
		return cache.StagedWrite{}
	}
	pois := make([]core.POI, len(certain))
	for i, c := range certain {
		pois[i] = c.POI
	}
	return cache.Stage(q, pois)
}
