package sim

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/nn"
)

// smallConfig is a fast, dense configuration that exercises every query
// resolution path.
func smallConfig() Config {
	return Config{
		AreaWidth: 2000, AreaHeight: 2000,
		NumPOIs:          30,
		NumHosts:         150,
		CacheSize:        10,
		MovePercentage:   0.8,
		Velocity:         13.4,
		QueriesPerMinute: 300,
		TxRange:          250,
		KMin:             1, KMax: 5,
		Duration: 240,
		Mode:     ModeRoadNetwork,
		MaxPause: 10,
		Seed:     1,
	}
}

func TestConfigValidate(t *testing.T) {
	valid := smallConfig()
	if _, err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	breakers := []func(*Config){
		func(c *Config) { c.AreaWidth = 0 },
		func(c *Config) { c.NumPOIs = 0 },
		func(c *Config) { c.NumHosts = 0 },
		func(c *Config) { c.CacheSize = 0 },
		func(c *Config) { c.MovePercentage = 1.5 },
		func(c *Config) { c.Velocity = 0 },
		func(c *Config) { c.QueriesPerMinute = 0 },
		func(c *Config) { c.TxRange = -1 },
		func(c *Config) { c.KMin = 0 },
		func(c *Config) { c.KMax = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.WarmupFraction = 1 },
		func(c *Config) { c.RTreeFanout = 2 },
	}
	for i, brk := range breakers {
		c := smallConfig()
		brk(&c)
		if _, err := c.Validate(); err == nil {
			t.Errorf("breaker %d: invalid config accepted", i)
		}
	}
	// Defaults fill in.
	c, _ := smallConfig().Validate()
	if c.WarmupFraction == 0 || c.StepSeconds == 0 || c.RTreeFanout != 30 ||
		c.RoadSpacing == 0 || c.TripRadius == 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{ModeRoadNetwork, ModeFreeMovement, Mode(7)} {
		if m.String() == "" {
			t.Errorf("empty string for mode %d", int(m))
		}
	}
}

func TestServerModuleCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pois := RandomPOIs(500, geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000)), rng)
	srv := NewServerModule(pois, 30)
	if srv.Queries() != 0 || srv.PageAccesses() != 0 {
		t.Fatal("fresh server has non-zero stats")
	}
	got := srv.KNN(geom.Pt(500, 500), 5, nn.NoBounds)
	if len(got) != 5 {
		t.Fatalf("KNN returned %d", len(got))
	}
	if srv.Queries() != 1 || srv.PageAccesses() < 1 {
		t.Errorf("stats not counted: q=%d p=%d", srv.Queries(), srv.PageAccesses())
	}
	srv.ResetStats()
	if srv.Queries() != 0 || srv.PageAccesses() != 0 {
		t.Error("reset failed")
	}
	if len(srv.POIs()) != 500 {
		t.Errorf("POIs len = %d", len(srv.POIs()))
	}
}

func TestHostGrid(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	g := newHostGrid(bounds, 100, 100)
	rng := rand.New(rand.NewSource(2))
	pos := make([]geom.Point, 100)
	cells := make([]int32, 100)
	reindex := func() {
		for i, p := range pos {
			cells[i] = g.cellIndex(p)
		}
		g.rebuild(cells)
	}
	for i := range pos {
		pos[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	reindex()
	// Move half of them and rebuild, as a movement step does.
	for i := 0; i < 50; i++ {
		pos[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	reindex()
	// Range query vs brute force from several centers.
	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		r := 150.0
		want := map[int32]bool{}
		for i, p := range pos {
			if q.Dist(p) <= r {
				want[int32(i)] = true
			}
		}
		got := map[int32]bool{}
		g.forNeighbors(q, r, func(i int32) {
			if q.Dist(pos[i]) <= r {
				got[i] = true
			}
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if !got[i] {
				t.Fatalf("trial %d: missing host %d", trial, i)
			}
		}
	}
}

func TestRunAccountingConservation(t *testing.T) {
	w, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := w.Run()
	if m.TotalQueries == 0 {
		t.Fatal("no queries recorded")
	}
	sum := m.SolvedBySingle + m.SolvedByMulti + m.SolvedByServer + m.SolvedUncertain
	if sum != m.TotalQueries {
		t.Fatalf("outcome counts %d do not sum to total %d", sum, m.TotalQueries)
	}
	if m.SolvedUncertain != 0 {
		t.Errorf("uncertain answers recorded without AcceptUncertain: %d", m.SolvedUncertain)
	}
	// With a dense population and generous range, peers must solve a
	// meaningful share.
	if m.SolvedBySingle+m.SolvedByMulti == 0 {
		t.Error("peer sharing never resolved a query in a dense scenario")
	}
	if m.SolvedByServer == 0 {
		t.Error("server never queried; scenario implausibly easy")
	}
	if m.SolvedByServer > 0 && m.ServerPageAccesses == 0 {
		t.Error("server queries recorded but no page accesses")
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() Metrics {
		w, err := New(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		return w.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different metrics:\n%+v\n%+v", a, b)
	}
	cfg := smallConfig()
	cfg.Seed = 99
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := w.Run()
	if a == c {
		t.Error("different seeds produced identical metrics")
	}
}

func TestFreeMovementMode(t *testing.T) {
	cfg := smallConfig()
	cfg.Mode = ModeFreeMovement
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Roads() != nil {
		t.Error("free movement mode should not build a road network")
	}
	m := w.Run()
	if m.TotalQueries == 0 {
		t.Fatal("no queries in free mode")
	}
	sum := m.SolvedBySingle + m.SolvedByMulti + m.SolvedByServer + m.SolvedUncertain
	if sum != m.TotalQueries {
		t.Fatalf("conservation violated in free mode")
	}
}

func TestAcceptUncertainMode(t *testing.T) {
	cfg := smallConfig()
	cfg.AcceptUncertain = true
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := w.Run()
	sum := m.SolvedBySingle + m.SolvedByMulti + m.SolvedByServer + m.SolvedUncertain
	if sum != m.TotalQueries {
		t.Fatal("conservation violated with AcceptUncertain")
	}
}

// Zero transmission range means no peer contact: after warm-up each query is
// answerable only by the host's own cache or the server.
func TestZeroTxRange(t *testing.T) {
	cfg := smallConfig()
	cfg.TxRange = 0
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := w.Run()
	if m.SolvedByMulti > m.TotalQueries/10 {
		t.Errorf("multi-peer solved %d of %d with zero range", m.SolvedByMulti, m.TotalQueries)
	}
}

// The paper's central scalability claim: a larger transmission range lets
// peers resolve more queries, shrinking the server share (Figures 9/10).
func TestTxRangeTrend(t *testing.T) {
	sqrrAt := func(txRange float64) float64 {
		cfg := smallConfig()
		cfg.TxRange = txRange
		cfg.Seed = 7
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return w.Run().SQRR()
	}
	small, large := sqrrAt(20), sqrrAt(400)
	if large >= small {
		t.Errorf("SQRR did not drop with range: %v%% at 20 m vs %v%% at 400 m", small, large)
	}
}

// Higher host density means more peers in range and a lower server share —
// the scalability headline of the paper.
func TestDensityTrend(t *testing.T) {
	sqrrAt := func(hosts int) float64 {
		cfg := smallConfig()
		cfg.NumHosts = hosts
		cfg.Seed = 11
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return w.Run().SQRR()
	}
	sparse, dense := sqrrAt(25), sqrrAt(300)
	if dense >= sparse {
		t.Errorf("SQRR did not drop with density: %v%% at 25 hosts vs %v%% at 300", sparse, dense)
	}
}

// P2P communication accounting: every recorded query issues at least its
// broadcast request; bytes scale with peers and cache sizes.
func TestPeerCommunicationAccounting(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 300
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := w.Run()
	if m.PeerMessages < m.TotalQueries {
		t.Errorf("messages %d below one request per query (%d queries)",
			m.PeerMessages, m.TotalQueries)
	}
	if m.PeerBytes <= m.PeerMessages {
		t.Errorf("bytes %d implausibly low for %d messages", m.PeerBytes, m.PeerMessages)
	}
	if m.PeerBytesPerQuery() <= 0 {
		t.Error("PeerBytesPerQuery not positive")
	}
	// Zero transmission range in free movement (continuous positions, so no
	// two hosts coincide exactly): exactly one broadcast per query and no
	// responses — the host's own cache is local, not a message.
	cfg2 := smallConfig()
	cfg2.TxRange = 0
	cfg2.Duration = 300
	cfg2.Mode = ModeFreeMovement
	w2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := w2.Run()
	if m2.PeerMessages != m2.TotalQueries {
		t.Errorf("zero-range messages %d, want exactly %d (one request per query)",
			m2.PeerMessages, m2.TotalQueries)
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := Metrics{
		TotalQueries:       100,
		SolvedBySingle:     50,
		SolvedByMulti:      10,
		SolvedByServer:     40,
		ServerPageAccesses: 400,
	}
	if m.SQRR() != 40 || m.ShareSingle() != 50 || m.ShareMulti() != 10 {
		t.Errorf("percentages wrong: %v %v %v", m.SQRR(), m.ShareSingle(), m.ShareMulti())
	}
	if m.PagesPerServerQuery() != 10 {
		t.Errorf("PagesPerServerQuery = %v", m.PagesPerServerQuery())
	}
	var zero Metrics
	if zero.SQRR() != 0 || zero.PagesPerServerQuery() != 0 {
		t.Error("zero metrics should not divide by zero")
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}
