package sim

import (
	"repro/internal/geom"
)

// hostGrid is a uniform-grid spatial index over mobile host positions,
// giving O(neighborhood) lookups of every host within the wireless
// transmission range. Cells are sized to the transmission range so a range
// query touches at most 9 cells.
type hostGrid struct {
	origin geom.Point
	cell   float64
	nx, ny int
	cells  [][]int32 // host indices per cell
	cellOf []int32   // current cell of each host
}

// newHostGrid builds an index over bounds for n hosts with the given cell
// size (normally the transmission range; clamped to keep the table small).
func newHostGrid(bounds geom.Rect, n int, cell float64) *hostGrid {
	// Clamp on both dimensions: either a wide or a tall area could
	// otherwise blow up its axis's cell count (the table is nx*ny).
	minCell := bounds.Width() / 512
	if m := bounds.Height() / 512; m > minCell {
		minCell = m
	}
	if cell < minCell {
		cell = minCell
	}
	if cell <= 0 {
		cell = 1
	}
	nx := int(bounds.Width()/cell) + 1
	ny := int(bounds.Height()/cell) + 1
	g := &hostGrid{
		origin: bounds.Min,
		cell:   cell,
		nx:     nx,
		ny:     ny,
		cells:  make([][]int32, nx*ny),
		cellOf: make([]int32, n),
	}
	for i := range g.cellOf {
		g.cellOf[i] = -1
	}
	return g
}

func (g *hostGrid) cellIndex(p geom.Point) int32 {
	cx := int((p.X - g.origin.X) / g.cell)
	cy := int((p.Y - g.origin.Y) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return int32(cy*g.nx + cx)
}

// update moves host i to position p, relocating it between cells if needed.
func (g *hostGrid) update(i int32, p geom.Point) {
	c := g.cellIndex(p)
	old := g.cellOf[i]
	if old == c {
		return
	}
	if old >= 0 {
		bucket := g.cells[old]
		for j, h := range bucket {
			if h == i {
				bucket[j] = bucket[len(bucket)-1]
				g.cells[old] = bucket[:len(bucket)-1]
				break
			}
		}
	}
	g.cells[c] = append(g.cells[c], i)
	g.cellOf[i] = c
}

// forNeighbors invokes fn for every host index whose cell is within range r
// of p (callers must still distance-filter; the grid over-approximates).
func (g *hostGrid) forNeighbors(p geom.Point, r float64, fn func(i int32)) {
	reach := int(r/g.cell) + 1
	cx := int((p.X - g.origin.X) / g.cell)
	cy := int((p.Y - g.origin.Y) / g.cell)
	for dy := -reach; dy <= reach; dy++ {
		y := cy + dy
		if y < 0 || y >= g.ny {
			continue
		}
		for dx := -reach; dx <= reach; dx++ {
			x := cx + dx
			if x < 0 || x >= g.nx {
				continue
			}
			for _, i := range g.cells[y*g.nx+x] {
				fn(i)
			}
		}
	}
}
