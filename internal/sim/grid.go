package sim

import (
	"math"

	"repro/internal/geom"
)

// cellGeom is the cell math shared by the uniform grids in this package
// (hostGrid over the mobile hosts, PointGrid over static point sets): a
// rectangular area cut into nx×ny square cells of the given side length,
// with positions clamped into the border cells.
type cellGeom struct {
	origin geom.Point
	cell   float64
	inv    float64 // 1/cell: cell assignment is a multiply, not a divide
	nx, ny int
}

// newCellGeom builds the cell layout for bounds with the requested cell side
// (normally the transmission range; clamped to keep the table small).
func newCellGeom(bounds geom.Rect, cell float64) cellGeom {
	// Clamp on both dimensions: either a wide or a tall area could
	// otherwise blow up its axis's cell count (the table is nx*ny).
	minCell := bounds.Width() / 512
	if m := bounds.Height() / 512; m > minCell {
		minCell = m
	}
	if cell < minCell {
		cell = minCell
	}
	if cell <= 0 {
		cell = 1
	}
	// Ceil, not trunc+1: when the area is an exact multiple of the cell size
	// the old int(dim/cell)+1 allocated a dead extra row and column (a 1M-host
	// grid carried a whole empty rim). Boundary positions at exactly dim land
	// in raw cell nx and are clamped into the border cells, same as any other
	// out-of-range position.
	nx := int(math.Ceil(bounds.Width() / cell))
	if nx < 1 {
		nx = 1
	}
	ny := int(math.Ceil(bounds.Height() / cell))
	if ny < 1 {
		ny = 1
	}
	return cellGeom{
		origin: bounds.Min,
		cell:   cell,
		inv:    1 / cell,
		nx:     nx,
		ny:     ny,
	}
}

func (g cellGeom) numCells() int { return g.nx * g.ny }

func (g cellGeom) cellIndex(p geom.Point) int32 {
	cx := int((p.X - g.origin.X) * g.inv)
	cy := int((p.Y - g.origin.Y) * g.inv)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return int32(cy*g.nx + cx)
}

// floorCell is floor(v) as an int. Plain int(v) truncates toward zero, which
// would fold v in (-1, 0) onto cell 0 — see rawCell.
func floorCell(v float64) int {
	return int(math.Floor(v))
}

// rawCell returns the unclamped cell coordinates of p — the anchor forCells
// derives its neighborhood from. Unlike cellIndex it does not clamp
// out-of-bounds positions into the border cells, so two points share a
// rawCell exactly when forCells enumerates the same cell set for both (the
// property the batched gather's per-cell snapshots rely on). The division
// floors: a point just left of or below the origin must land in raw cell -1,
// not alias the in-bounds points of cell 0 (truncation toward zero used to
// merge the two, handing both groups one neighborhood and violating the
// contract above).
func (g cellGeom) rawCell(p geom.Point) (cx, cy int) {
	return floorCell((p.X - g.origin.X) * g.inv), floorCell((p.Y - g.origin.Y) * g.inv)
}

// forCells invokes fn for every cell whose square could intersect the disc of
// radius r around p, in row-major order.
func (g cellGeom) forCells(p geom.Point, r float64, fn func(c int32)) {
	cx, cy := g.rawCell(p)
	g.forCellsAt(cx, cy, r, fn)
}

// forCellsAt is forCells anchored at explicit raw cell coordinates, so a
// caller that groups points by rawCell can enumerate one shared neighborhood
// for all of them. Out-of-range anchors are clamped onto the border cells
// first: cellIndex files out-of-bounds hosts into the border cells, so an
// out-of-bounds query point must derive its neighborhood from there too (the
// clamped anchor is still a pure function of the raw cell, preserving the
// rawCell grouping contract).
func (g cellGeom) forCellsAt(cx, cy int, r float64, fn func(c int32)) {
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	reach := int(r/g.cell) + 1
	for dy := -reach; dy <= reach; dy++ {
		y := cy + dy
		if y < 0 || y >= g.ny {
			continue
		}
		for dx := -reach; dx <= reach; dx++ {
			x := cx + dx
			if x < 0 || x >= g.nx {
				continue
			}
			fn(int32(y*g.nx + x))
		}
	}
}

// hostGrid is a uniform-grid spatial index over mobile host positions,
// giving O(neighborhood) lookups of every host within the wireless
// transmission range. Cells are sized to the transmission range so a range
// query touches at most 9 cells.
//
// The index is stored in CSR form — cell c owns entries[start[c]:start[c+1]]
// — and is recomputed each movement step by a deterministic counting
// rebuild: every bucket lists its hosts in ascending host index, whatever
// execution order produced the positions. forNeighbors therefore enumerates
// a bit-identical sequence for any Config.Workers value, which is what keeps
// the peer list fed to SortPeersByProximity (and with it every simulation
// metric) independent of the movement phase's parallelism.
type hostGrid struct {
	cellGeom
	start   []int32      // bucket boundaries, len numCells+1
	entries []int32      // host indices, ascending within each bucket
	counts  []int32      // scratch for sequential rebuilds
	delta   deltaScratch // scratch for incremental maintenance (gridinc.go)
}

// newHostGrid builds an index over bounds for n hosts with the given cell
// size.
func newHostGrid(bounds geom.Rect, n int, cell float64) *hostGrid {
	cg := newCellGeom(bounds, cell)
	return &hostGrid{
		cellGeom: cg,
		start:    make([]int32, cg.numCells()+1),
		entries:  make([]int32, n),
		counts:   make([]int32, cg.numCells()),
	}
}

// rebuild recomputes the whole index from cells[i] = current cell of host i
// (as returned by cellIndex) with a two-pass counting sort. The parallel
// movement engine performs the same passes sharded across workers
// (stepEngine); both produce identical start/entries arrays.
func (g *hostGrid) rebuild(cells []int32) {
	for c := range g.counts {
		g.counts[c] = 0
	}
	for _, c := range cells {
		g.counts[c]++
	}
	pos := int32(0)
	for c, n := range g.counts {
		g.start[c] = pos
		g.counts[c] = pos // becomes the placement cursor
		pos += n
	}
	g.start[len(g.start)-1] = pos
	for i, c := range cells {
		g.entries[g.counts[c]] = int32(i)
		g.counts[c]++
	}
}

// forNeighbors invokes fn for every host index whose cell is within range r
// of p (callers must still distance-filter; the grid over-approximates).
// Enumeration order is deterministic: cells in row-major order, hosts within
// a cell in ascending index.
func (g *hostGrid) forNeighbors(p geom.Point, r float64, fn func(i int32)) {
	g.forCells(p, r, func(c int32) {
		for _, i := range g.entries[g.start[c]:g.start[c+1]] {
			fn(i)
		}
	})
}

// PointGrid is an immutable uniform-grid index over a fixed point set, built
// once with the same cell math and counting layout as the simulator's host
// grid. The experiments package uses it to bucket the Figure 17 / disk-I/O
// synthetic peer caches, replacing their O(#caches) per-query scans.
type PointGrid struct {
	cellGeom
	pts     []geom.Point
	start   []int32
	entries []int32
}

// NewPointGrid indexes pts over bounds with the given cell size. The slice
// is retained; callers must not mutate it afterwards.
func NewPointGrid(pts []geom.Point, bounds geom.Rect, cell float64) *PointGrid {
	cg := newCellGeom(bounds, cell)
	g := &PointGrid{
		cellGeom: cg,
		pts:      pts,
		start:    make([]int32, cg.numCells()+1),
		entries:  make([]int32, len(pts)),
	}
	counts := make([]int32, cg.numCells())
	cells := make([]int32, len(pts))
	for i, p := range pts {
		cells[i] = cg.cellIndex(p)
		counts[cells[i]]++
	}
	pos := int32(0)
	for c, n := range counts {
		g.start[c] = pos
		counts[c] = pos
		pos += n
	}
	g.start[len(g.start)-1] = pos
	for i, c := range cells {
		g.entries[counts[c]] = int32(i)
		counts[c]++
	}
	return g
}

// ForEachWithin invokes fn with the index of every point at distance <= r of
// p (exact filter, not the grid over-approximation). Enumeration is
// cell-major with ascending indices inside each cell; callers needing global
// index order must sort.
func (g *PointGrid) ForEachWithin(p geom.Point, r float64, fn func(i int32)) {
	r2 := r * r
	g.forCells(p, r, func(c int32) {
		for _, i := range g.entries[g.start[c]:g.start[c+1]] {
			if p.Dist2(g.pts[i]) <= r2 {
				fn(i)
			}
		}
	})
}
