package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// FuzzDecode drives the decoder with arbitrary bytes; it must never panic
// and must round-trip every message it accepts. For the client-server
// messages the encoding is canonical, so acceptance implies byte-identical
// re-encoding; the peer-channel CacheShare re-sorts on decode and is held to
// the weaker semantic equivalence instead.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	f.Add(EncodeCacheRequest())
	f.Add(EncodeCacheShare(samplePC(0, rng)))
	f.Add(EncodeCacheShare(samplePC(3, rng)))
	f.Add(EncodeCacheShare(samplePC(40, rng)))
	f.Add(EncodePosition(geom.Pt(12.5, -7.75)))
	f.Add(EncodeQuery(Query{ReqID: 1, K: 5, Loc: geom.Pt(100, 200)}))
	f.Add(EncodeQuery(Query{ReqID: 2, K: 1, Loc: geom.Pt(-1, 1),
		HasLower: true, Lower: 10, HasUpper: true, Upper: 90}))
	f.Add(EncodeRange(RangeQuery{ReqID: 3, Loc: geom.Pt(0, 0), Radius: 500}))
	f.Add(EncodeAnswer(sampleAnswer(4, 0, rng)))
	f.Add(EncodeAnswer(sampleAnswer(5, 7, rng)))
	f.Add(EncodeError(ErrorMsg{ReqID: 6, Code: ErrCodeBadRequest}))
	f.Add(EncodePeerRequest(PeerRequest{ReqID: 7, Loc: geom.Pt(5, 6), Radius: 400}))
	f.Add(EncodePeerProbe(8))
	f.Add(EncodeShareReply(9, false, samplePC(0, rng)))
	f.Add(EncodeShareReply(10, true, samplePC(4, rng)))
	f.Add(EncodePeerShares(PeerShares{ReqID: 11, PeersInRange: 2,
		Shares: []core.PeerCache{samplePC(2, rng), samplePC(3, rng)}}))
	f.Add([]byte("SENN"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		var re []byte
		switch msg.Type {
		case TypeCacheRequest:
			re = EncodeCacheRequest()
		case TypeCacheShare:
			// Accepted cache-shares must re-encode to a decodable message
			// describing the same cache (the decoder may have re-sorted).
			re := EncodeCacheShare(msg.Cache)
			msg2, err := Decode(re)
			if err != nil {
				t.Fatalf("re-encode not decodable: %v", err)
			}
			if len(msg2.Cache.Neighbors) != len(msg.Cache.Neighbors) {
				t.Fatalf("re-encode changed neighbor count")
			}
			if msg2.Cache.Radius() != msg.Cache.Radius() {
				t.Fatalf("re-encode changed radius")
			}
			return
		case TypePosition:
			re = EncodePosition(msg.Pos)
		case TypeQuery:
			re = EncodeQuery(msg.Query)
		case TypeRange:
			re = EncodeRange(msg.Range)
		case TypeAnswer:
			re = EncodeAnswer(msg.Answer)
		case TypeError:
			re = EncodeError(msg.Err)
		case TypePeerRequest:
			re = EncodePeerRequest(msg.PeerReq)
		case TypePeerProbe:
			re = EncodePeerProbe(msg.ProbeID)
		case TypeShareReply:
			re = EncodeShareReply(msg.Share.ProbeID, msg.Share.Has, msg.Share.Cache)
		case TypePeerShares:
			re = EncodePeerShares(msg.Shares)
		default:
			t.Fatalf("decoder accepted unknown type %d", msg.Type)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("type %d: accepted message is not canonical: % x != % x", msg.Type, re, data)
		}
	})
}

// FuzzQueryRoundTrip exercises the Query codec from the field side: every
// well-formed Query must survive encode/decode unchanged.
func FuzzQueryRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint32(5), 100.0, 200.0, false, 0.0, false, 0.0)
	f.Add(uint32(9), uint32(1), -1e6, 1e6, true, 25.0, true, 250.0)
	f.Add(^uint32(0), uint32(MaxQueryK), 0.0, 0.0, true, 0.0, false, 0.0)
	f.Fuzz(func(t *testing.T, reqID, k uint32, x, y float64, hasLo bool, lo float64, hasHi bool, hi float64) {
		// Constrain the inputs to the codec's declared domain; everything
		// else is the malformed-input fuzzer's job.
		if k < 1 || k > MaxQueryK {
			k = 1 + k%MaxQueryK
		}
		if !finite(geom.Pt(x, y)) {
			return
		}
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
			return
		}
		q := Query{ReqID: reqID, K: int(k), Loc: geom.Pt(x, y)}
		if hasLo {
			q.HasLower, q.Lower = true, lo
		}
		if hasHi {
			q.HasUpper, q.Upper = true, hi
		}
		msg, err := Decode(EncodeQuery(q))
		if err != nil {
			t.Fatalf("well-formed query rejected: %v (%+v)", err, q)
		}
		if msg.Query != q {
			t.Fatalf("round trip changed query: %+v != %+v", msg.Query, q)
		}
	})
}

// FuzzAnswerRoundTrip builds valid answers from fuzzed seeds and checks the
// decoder preserves them exactly: count, neighbor order (including distance
// ties), page cost, and bytes.
func FuzzAnswerRoundTrip(f *testing.F) {
	f.Add(uint32(1), int64(17), int64(42), uint8(0))
	f.Add(uint32(2), int64(0), int64(7), uint8(3))
	f.Add(uint32(3), int64(9999), int64(1), uint8(64))
	f.Fuzz(func(t *testing.T, reqID uint32, pages, seed int64, n uint8) {
		if pages < 0 {
			pages = -pages
		}
		rng := rand.New(rand.NewSource(seed))
		a := Answer{ReqID: reqID, Pages: pages, Cache: samplePC(int(n)%128, rng)}
		buf := EncodeAnswer(a)
		msg, err := Decode(buf)
		if err != nil {
			t.Fatalf("well-formed answer rejected: %v", err)
		}
		if msg.Answer.ReqID != a.ReqID || msg.Answer.Pages != a.Pages {
			t.Fatalf("round trip changed answer header")
		}
		if len(msg.Answer.Cache.Neighbors) != len(a.Cache.Neighbors) {
			t.Fatalf("round trip changed neighbor count")
		}
		for i := range a.Cache.Neighbors {
			if msg.Answer.Cache.Neighbors[i] != a.Cache.Neighbors[i] {
				t.Fatalf("round trip changed neighbor %d", i)
			}
		}
		if !bytes.Equal(EncodeAnswer(msg.Answer), buf) {
			t.Fatalf("re-encode differs")
		}
	})
}
