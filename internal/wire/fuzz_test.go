package wire

import (
	"math/rand"
	"testing"
)

// FuzzDecode drives the decoder with arbitrary bytes; it must never panic
// and must round-trip every message it accepts.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	f.Add(EncodeCacheRequest())
	f.Add(EncodeCacheShare(samplePC(0, rng)))
	f.Add(EncodeCacheShare(samplePC(3, rng)))
	f.Add(EncodeCacheShare(samplePC(40, rng)))
	f.Add([]byte("SENN"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		switch msg.Type {
		case TypeCacheRequest:
			// Nothing further to check.
		case TypeCacheShare:
			// Accepted cache-shares must re-encode to a decodable message
			// describing the same cache.
			re := EncodeCacheShare(msg.Cache)
			msg2, err := Decode(re)
			if err != nil {
				t.Fatalf("re-encode not decodable: %v", err)
			}
			if len(msg2.Cache.Neighbors) != len(msg.Cache.Neighbors) {
				t.Fatalf("re-encode changed neighbor count")
			}
			if msg2.Cache.Radius() != msg.Cache.Radius() {
				t.Fatalf("re-encode changed radius")
			}
		default:
			t.Fatalf("decoder accepted unknown type %d", msg.Type)
		}
	})
}
