package wire

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
)

func samplePC(n int, rng *rand.Rand) core.PeerCache {
	pois := make([]core.POI, n)
	for i := range pois {
		pois[i] = core.POI{
			ID:  rng.Int63(),
			Loc: geom.Pt(rng.Float64()*1e5-5e4, rng.Float64()*1e5-5e4),
		}
	}
	return core.NewPeerCache(geom.Pt(rng.Float64()*1e4, rng.Float64()*1e4), pois)
}

func TestCacheShareRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 10, 100} {
		pc := samplePC(n, rng)
		buf := EncodeCacheShare(pc)
		if len(buf) != CacheShareSize(n) {
			t.Fatalf("n=%d: size %d, want %d", n, len(buf), CacheShareSize(n))
		}
		msg, err := Decode(buf)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if msg.Type != TypeCacheShare {
			t.Fatalf("type = %d", msg.Type)
		}
		if !msg.Cache.QueryLoc.Eq(pc.QueryLoc) {
			t.Errorf("query loc %v != %v", msg.Cache.QueryLoc, pc.QueryLoc)
		}
		if len(msg.Cache.Neighbors) != n {
			t.Fatalf("neighbors %d, want %d", len(msg.Cache.Neighbors), n)
		}
		for i := range pc.Neighbors {
			if msg.Cache.Neighbors[i].ID != pc.Neighbors[i].ID ||
				!msg.Cache.Neighbors[i].Loc.Eq(pc.Neighbors[i].Loc) {
				t.Fatalf("neighbor %d mismatch", i)
			}
		}
	}
}

func TestCacheRequestRoundTrip(t *testing.T) {
	buf := EncodeCacheRequest()
	if len(buf) != CacheRequestSize {
		t.Fatalf("size %d", len(buf))
	}
	msg, err := Decode(buf)
	if err != nil || msg.Type != TypeCacheRequest {
		t.Fatalf("decode: %v type %d", err, msg.Type)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	valid := EncodeCacheShare(samplePC(3, rng))
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTooShort},
		{"short", valid[:4], ErrTooShort},
		{"bad magic", append([]byte("XXXX"), valid[4:]...), ErrBadMagic},
		{"bad version", func() []byte {
			b := bytes.Clone(valid)
			b[4] = 99
			return b
		}(), ErrBadVersion},
		{"bad type", func() []byte {
			b := bytes.Clone(valid)
			b[5] = 77
			return b
		}(), ErrBadType},
		{"truncated payload", valid[:len(valid)-5], ErrTruncated},
		{"extended payload", append(bytes.Clone(valid), 0), ErrTruncated},
		{"count lies", func() []byte {
			b := bytes.Clone(valid)
			b[22] = 200 // count field far beyond actual data
			return b
		}(), ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.buf)
			if !errors.Is(err, tc.want) {
				t.Errorf("Decode = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsNonFinite(t *testing.T) {
	pc := core.PeerCache{
		QueryLoc:  geom.Pt(math.NaN(), 0),
		Neighbors: []core.POI{{ID: 1, Loc: geom.Pt(1, 1)}},
	}
	if _, err := Decode(EncodeCacheShare(pc)); !errors.Is(err, ErrBadFloat) {
		t.Errorf("NaN location accepted: %v", err)
	}
	pc2 := core.NewPeerCache(geom.Pt(0, 0), []core.POI{{ID: 1, Loc: geom.Pt(math.Inf(1), 0)}})
	if _, err := Decode(EncodeCacheShare(pc2)); !errors.Is(err, ErrBadFloat) {
		t.Errorf("Inf neighbor accepted: %v", err)
	}
}

// Decoding must restore the PeerCache sorting invariant even if a peer sent
// neighbors out of order (e.g. a buggy or adversarial implementation).
func TestDecodeRestoresSortInvariant(t *testing.T) {
	// Hand-craft an out-of-order message by encoding a cache whose struct
	// was assembled without NewPeerCache.
	pc := core.PeerCache{
		QueryLoc: geom.Pt(0, 0),
		Neighbors: []core.POI{
			{ID: 1, Loc: geom.Pt(9, 0)},
			{ID: 2, Loc: geom.Pt(1, 0)},
		},
	}
	msg, err := Decode(EncodeCacheShare(pc))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Cache.Neighbors[0].ID != 2 {
		t.Error("decoded cache not re-sorted by distance")
	}
	if msg.Cache.Radius() != 9 {
		t.Errorf("radius = %v", msg.Cache.Radius())
	}
}

// Round-trip property over arbitrary finite caches.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pc := samplePC(int(n%64), rng)
		msg, err := Decode(EncodeCacheShare(pc))
		if err != nil {
			return false
		}
		if len(msg.Cache.Neighbors) != len(pc.Neighbors) {
			return false
		}
		if msg.Cache.Radius() != pc.Radius() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Decode must never panic on arbitrary byte soup.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		if rng.Float64() < 0.5 && len(buf) >= 6 {
			// Often plant a plausible header so the payload parser runs.
			copy(buf[:4], "SENN")
			buf[4] = 1
			buf[5] = byte(1 + rng.Intn(2))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %v: %v", buf, r)
				}
			}()
			Decode(buf)
		}()
	}
}

func BenchmarkEncodeCacheShare(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pc := samplePC(20, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeCacheShare(pc)
	}
}

func BenchmarkDecodeCacheShare(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	buf := EncodeCacheShare(samplePC(20, rng))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
