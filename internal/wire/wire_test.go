package wire

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
)

func samplePC(n int, rng *rand.Rand) core.PeerCache {
	pois := make([]core.POI, n)
	for i := range pois {
		pois[i] = core.POI{
			ID:  rng.Int63(),
			Loc: geom.Pt(rng.Float64()*1e5-5e4, rng.Float64()*1e5-5e4),
		}
	}
	return core.NewPeerCache(geom.Pt(rng.Float64()*1e4, rng.Float64()*1e4), pois)
}

func TestCacheShareRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 10, 100} {
		pc := samplePC(n, rng)
		buf := EncodeCacheShare(pc)
		if len(buf) != CacheShareSize(n) {
			t.Fatalf("n=%d: size %d, want %d", n, len(buf), CacheShareSize(n))
		}
		msg, err := Decode(buf)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if msg.Type != TypeCacheShare {
			t.Fatalf("type = %d", msg.Type)
		}
		if !msg.Cache.QueryLoc.Eq(pc.QueryLoc) {
			t.Errorf("query loc %v != %v", msg.Cache.QueryLoc, pc.QueryLoc)
		}
		if len(msg.Cache.Neighbors) != n {
			t.Fatalf("neighbors %d, want %d", len(msg.Cache.Neighbors), n)
		}
		for i := range pc.Neighbors {
			if msg.Cache.Neighbors[i].ID != pc.Neighbors[i].ID ||
				!msg.Cache.Neighbors[i].Loc.Eq(pc.Neighbors[i].Loc) {
				t.Fatalf("neighbor %d mismatch", i)
			}
		}
	}
}

func TestCacheRequestRoundTrip(t *testing.T) {
	buf := EncodeCacheRequest()
	if len(buf) != CacheRequestSize {
		t.Fatalf("size %d", len(buf))
	}
	msg, err := Decode(buf)
	if err != nil || msg.Type != TypeCacheRequest {
		t.Fatalf("decode: %v type %d", err, msg.Type)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	valid := EncodeCacheShare(samplePC(3, rng))
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTooShort},
		{"short", valid[:4], ErrTooShort},
		{"bad magic", append([]byte("XXXX"), valid[4:]...), ErrBadMagic},
		{"bad version", func() []byte {
			b := bytes.Clone(valid)
			b[4] = 99
			return b
		}(), ErrBadVersion},
		{"bad type", func() []byte {
			b := bytes.Clone(valid)
			b[5] = 77
			return b
		}(), ErrBadType},
		{"truncated payload", valid[:len(valid)-5], ErrTruncated},
		{"extended payload", append(bytes.Clone(valid), 0), ErrTruncated},
		{"count lies", func() []byte {
			b := bytes.Clone(valid)
			b[22] = 200 // count field far beyond actual data
			return b
		}(), ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.buf)
			if !errors.Is(err, tc.want) {
				t.Errorf("Decode = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsNonFinite(t *testing.T) {
	pc := core.PeerCache{
		QueryLoc:  geom.Pt(math.NaN(), 0),
		Neighbors: []core.POI{{ID: 1, Loc: geom.Pt(1, 1)}},
	}
	if _, err := Decode(EncodeCacheShare(pc)); !errors.Is(err, ErrBadFloat) {
		t.Errorf("NaN location accepted: %v", err)
	}
	pc2 := core.NewPeerCache(geom.Pt(0, 0), []core.POI{{ID: 1, Loc: geom.Pt(math.Inf(1), 0)}})
	if _, err := Decode(EncodeCacheShare(pc2)); !errors.Is(err, ErrBadFloat) {
		t.Errorf("Inf neighbor accepted: %v", err)
	}
}

// Decoding must restore the PeerCache sorting invariant even if a peer sent
// neighbors out of order (e.g. a buggy or adversarial implementation).
func TestDecodeRestoresSortInvariant(t *testing.T) {
	// Hand-craft an out-of-order message by encoding a cache whose struct
	// was assembled without NewPeerCache.
	pc := core.PeerCache{
		QueryLoc: geom.Pt(0, 0),
		Neighbors: []core.POI{
			{ID: 1, Loc: geom.Pt(9, 0)},
			{ID: 2, Loc: geom.Pt(1, 0)},
		},
	}
	msg, err := Decode(EncodeCacheShare(pc))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Cache.Neighbors[0].ID != 2 {
		t.Error("decoded cache not re-sorted by distance")
	}
	if msg.Cache.Radius() != 9 {
		t.Errorf("radius = %v", msg.Cache.Radius())
	}
}

// Round-trip property over arbitrary finite caches.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pc := samplePC(int(n%64), rng)
		msg, err := Decode(EncodeCacheShare(pc))
		if err != nil {
			return false
		}
		if len(msg.Cache.Neighbors) != len(pc.Neighbors) {
			return false
		}
		if msg.Cache.Radius() != pc.Radius() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Decode must never panic on arbitrary byte soup.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		if rng.Float64() < 0.5 && len(buf) >= 6 {
			// Often plant a plausible header so the payload parser runs.
			copy(buf[:4], "SENN")
			buf[4] = 1
			buf[5] = byte(1 + rng.Intn(7))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %v: %v", buf, r)
				}
			}()
			Decode(buf)
		}()
	}
}

// ---------------------------------------------------------------------------
// Client-server channel messages.

// sampleAnswer builds a valid served answer: neighbors ascending by distance
// (NewPeerCache establishes the order), non-negative page count.
func sampleAnswer(reqID uint32, n int, rng *rand.Rand) Answer {
	return Answer{
		ReqID: reqID,
		Pages: rng.Int63n(1000),
		Cache: samplePC(n, rng),
	}
}

func TestPositionRoundTrip(t *testing.T) {
	p := geom.Pt(123.5, -77.25)
	buf := EncodePosition(p)
	if len(buf) != PositionSize {
		t.Fatalf("size %d, want %d", len(buf), PositionSize)
	}
	msg, err := Decode(buf)
	if err != nil || msg.Type != TypePosition {
		t.Fatalf("decode: %v type %d", err, msg.Type)
	}
	if !msg.Pos.Eq(p) {
		t.Errorf("pos %v != %v", msg.Pos, p)
	}
	if !bytes.Equal(EncodePosition(msg.Pos), buf) {
		t.Error("re-encode differs")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	cases := []Query{
		{ReqID: 1, K: 1, Loc: geom.Pt(10, 20)},
		{ReqID: 7, K: 5, Loc: geom.Pt(-3, 4), HasLower: true, Lower: 12.5},
		{ReqID: 9, K: MaxQueryK, Loc: geom.Pt(0, 0), HasUpper: true, Upper: 99},
		{ReqID: ^uint32(0), K: 64, Loc: geom.Pt(1e6, -1e6),
			HasLower: true, Lower: 3, HasUpper: true, Upper: 30},
	}
	for i, q := range cases {
		buf := EncodeQuery(q)
		if len(buf) != QuerySize {
			t.Fatalf("case %d: size %d, want %d", i, len(buf), QuerySize)
		}
		msg, err := Decode(buf)
		if err != nil || msg.Type != TypeQuery {
			t.Fatalf("case %d: decode: %v type %d", i, err, msg.Type)
		}
		if msg.Query != q {
			t.Errorf("case %d: decoded %+v, want %+v", i, msg.Query, q)
		}
		if !bytes.Equal(EncodeQuery(msg.Query), buf) {
			t.Errorf("case %d: re-encode differs", i)
		}
	}
}

func TestRangeRoundTrip(t *testing.T) {
	r := RangeQuery{ReqID: 3, Loc: geom.Pt(5, 6), Radius: 250}
	buf := EncodeRange(r)
	if len(buf) != RangeSize {
		t.Fatalf("size %d, want %d", len(buf), RangeSize)
	}
	msg, err := Decode(buf)
	if err != nil || msg.Type != TypeRange {
		t.Fatalf("decode: %v type %d", err, msg.Type)
	}
	if msg.Range != r {
		t.Errorf("decoded %+v, want %+v", msg.Range, r)
	}
	if !bytes.Equal(EncodeRange(msg.Range), buf) {
		t.Error("re-encode differs")
	}
}

func TestAnswerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 3, 50, 500} {
		a := sampleAnswer(uint32(n)+1, n, rng)
		buf := EncodeAnswer(a)
		if len(buf) != AnswerSize(n) {
			t.Fatalf("n=%d: size %d, want %d", n, len(buf), AnswerSize(n))
		}
		msg, err := Decode(buf)
		if err != nil || msg.Type != TypeAnswer {
			t.Fatalf("n=%d: decode: %v type %d", n, err, msg.Type)
		}
		if msg.Answer.ReqID != a.ReqID || msg.Answer.Pages != a.Pages {
			t.Fatalf("n=%d: header mismatch: %+v", n, msg.Answer)
		}
		// The decoder must preserve the server's exact neighbor order (no
		// re-sort): byte-for-byte re-encode equality is the oracle property
		// the serve tests rely on.
		if !bytes.Equal(EncodeAnswer(msg.Answer), buf) {
			t.Fatalf("n=%d: re-encode differs", n)
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := ErrorMsg{ReqID: 42, Code: ErrCodeBadRequest}
	buf := EncodeError(e)
	if len(buf) != ErrorSize {
		t.Fatalf("size %d, want %d", len(buf), ErrorSize)
	}
	msg, err := Decode(buf)
	if err != nil || msg.Type != TypeError {
		t.Fatalf("decode: %v type %d", err, msg.Type)
	}
	if msg.Err != e {
		t.Errorf("decoded %+v, want %+v", msg.Err, e)
	}
	if !bytes.Equal(EncodeError(msg.Err), buf) {
		t.Error("re-encode differs")
	}
}

func TestDecodeRejectsBadClientServerMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"query k=0", func() []byte {
			b := EncodeQuery(Query{ReqID: 1, K: 1, Loc: geom.Pt(1, 1)})
			b[10] = 0 // k field
			return b
		}(), ErrBadValue},
		{"query k over cap", EncodeQuery(Query{ReqID: 1, K: MaxQueryK + 1, Loc: geom.Pt(1, 1)}), ErrBadValue},
		{"query unknown flag", func() []byte {
			b := EncodeQuery(Query{ReqID: 1, K: 1, Loc: geom.Pt(1, 1)})
			b[30] = 0x80
			return b
		}(), ErrBadValue},
		{"query lower without flag", func() []byte {
			b := EncodeQuery(Query{ReqID: 1, K: 1, Loc: geom.Pt(1, 1), HasLower: true, Lower: 5})
			b[30] = 0 // clear flags, leave the bound bits behind
			return b
		}(), ErrBadValue},
		{"query NaN bound", EncodeQuery(Query{ReqID: 1, K: 1, Loc: geom.Pt(1, 1),
			HasUpper: true, Upper: math.NaN()}), ErrBadFloat},
		{"query NaN location", EncodeQuery(Query{ReqID: 1, K: 1, Loc: geom.Pt(math.NaN(), 0)}), ErrBadFloat},
		{"query truncated", EncodeQuery(Query{ReqID: 1, K: 1, Loc: geom.Pt(1, 1)})[:20], ErrTruncated},
		{"position Inf", EncodePosition(geom.Pt(math.Inf(1), 0)), ErrBadFloat},
		{"range negative radius", EncodeRange(RangeQuery{ReqID: 1, Loc: geom.Pt(1, 1), Radius: -5}), ErrBadValue},
		{"range negative zero radius", EncodeRange(RangeQuery{ReqID: 1, Loc: geom.Pt(1, 1),
			Radius: math.Copysign(0, -1)}), ErrBadValue},
		{"range Inf radius", EncodeRange(RangeQuery{ReqID: 1, Loc: geom.Pt(1, 1), Radius: math.Inf(1)}), ErrBadFloat},
		{"answer negative pages", EncodeAnswer(Answer{ReqID: 1, Pages: -1, Cache: samplePC(2, rng)}), ErrBadValue},
		{"answer unsorted", EncodeAnswer(Answer{ReqID: 1, Cache: core.PeerCache{
			QueryLoc: geom.Pt(0, 0),
			Neighbors: []core.POI{
				{ID: 1, Loc: geom.Pt(9, 0)},
				{ID: 2, Loc: geom.Pt(1, 0)},
			},
		}}), ErrUnsorted},
		{"answer count lies", func() []byte {
			b := EncodeAnswer(sampleAnswer(1, 3, rng))
			b[34] = 200
			return b
		}(), ErrTruncated},
		{"answer NaN neighbor", EncodeAnswer(Answer{ReqID: 1, Cache: core.PeerCache{
			QueryLoc:  geom.Pt(0, 0),
			Neighbors: []core.POI{{ID: 1, Loc: geom.Pt(math.NaN(), 0)}},
		}}), ErrBadFloat},
		{"error truncated", EncodeError(ErrorMsg{ReqID: 1, Code: 2})[:12], ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.buf)
			if !errors.Is(err, tc.want) {
				t.Errorf("Decode = %v, want %v", err, tc.want)
			}
		})
	}
}

// An answer with equal-distance neighbors (ties broken by ID on the server)
// must decode in the transmitted order — non-decreasing, not strictly
// increasing.
func TestAnswerKeepsEqualDistanceOrder(t *testing.T) {
	a := Answer{ReqID: 1, Cache: core.PeerCache{
		QueryLoc: geom.Pt(0, 0),
		Neighbors: []core.POI{
			{ID: 3, Loc: geom.Pt(5, 0)},
			{ID: 8, Loc: geom.Pt(0, 5)},
			{ID: 9, Loc: geom.Pt(-5, 0)},
		},
	}}
	msg, err := Decode(EncodeAnswer(a))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{3, 8, 9} {
		if msg.Answer.Cache.Neighbors[i].ID != want {
			t.Fatalf("neighbor %d = %d, want %d (tie order not preserved)", i, msg.Answer.Cache.Neighbors[i].ID, want)
		}
	}
}

func BenchmarkEncodeCacheShare(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pc := samplePC(20, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeCacheShare(pc)
	}
}

func BenchmarkDecodeCacheShare(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	buf := EncodeCacheShare(samplePC(20, rng))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
