// Package wire provides the binary message codec for the peer-to-peer
// channel. The paper's hosts exchange cached NN results over short-range
// ad-hoc links (IEEE 802.11x); the codec makes that exchange concrete so the
// simulator can account for the communication overhead the paper names as
// the technique's main cost ("it may increase the communication overheads
// among mobile hosts", §2).
//
// The format is a fixed little-endian layout with a versioned header:
//
//	offset  size  field
//	0       4     magic "SENN"
//	4       1     version (1)
//	5       1     message type
//	6       ...   type-specific payload
//
// A CacheShare payload carries the peer's cached query location and its
// certain nearest neighbors:
//
//	6       8+8   query location x, y (float64)
//	22      4     neighbor count n (uint32)
//	26      n*24  neighbors: id (int64), x, y (float64)
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// Message types.
const (
	// TypeCacheShare carries a PeerCache from a peer to the querying host.
	TypeCacheShare byte = 1
	// TypeCacheRequest asks peers in range to share their caches. Its
	// payload is empty; the type exists so request traffic can be accounted.
	TypeCacheRequest byte = 2
)

const (
	version    byte = 1
	headerSize      = 6
	pointSize       = 16
	poiSize         = 24
)

var magic = [4]byte{'S', 'E', 'N', 'N'}

// Errors returned by Decode.
var (
	ErrTooShort   = errors.New("wire: message too short")
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unknown message type")
	ErrTruncated  = errors.New("wire: truncated payload")
	ErrBadFloat   = errors.New("wire: non-finite coordinate")
)

// CacheRequestSize is the encoded size of a cache request.
const CacheRequestSize = headerSize

// CacheShareSize returns the encoded size of a cache-share message carrying
// n neighbors.
func CacheShareSize(n int) int { return headerSize + pointSize + 4 + n*poiSize }

// EncodeCacheRequest emits a cache request message.
func EncodeCacheRequest() []byte {
	buf := make([]byte, headerSize)
	writeHeader(buf, TypeCacheRequest)
	return buf
}

// EncodeCacheShare emits a cache-share message for pc.
func EncodeCacheShare(pc core.PeerCache) []byte {
	buf := make([]byte, CacheShareSize(len(pc.Neighbors)))
	writeHeader(buf, TypeCacheShare)
	off := headerSize
	off = putPoint(buf, off, pc.QueryLoc)
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(pc.Neighbors)))
	off += 4
	for _, n := range pc.Neighbors {
		binary.LittleEndian.PutUint64(buf[off:], uint64(n.ID))
		off += 8
		off = putPoint(buf, off, n.Loc)
	}
	return buf
}

func writeHeader(buf []byte, typ byte) {
	copy(buf[:4], magic[:])
	buf[4] = version
	buf[5] = typ
}

func putPoint(buf []byte, off int, p geom.Point) int {
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(p.X))
	binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(p.Y))
	return off + pointSize
}

func getPoint(buf []byte, off int) geom.Point {
	return geom.Point{
		X: math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
	}
}

// Message is a decoded wire message.
type Message struct {
	Type  byte
	Cache core.PeerCache // valid when Type == TypeCacheShare
}

// Decode parses a wire message, validating structure and coordinates.
func Decode(buf []byte) (Message, error) {
	if len(buf) < headerSize {
		return Message{}, ErrTooShort
	}
	if [4]byte(buf[:4]) != magic {
		return Message{}, ErrBadMagic
	}
	if buf[4] != version {
		return Message{}, fmt.Errorf("%w: %d", ErrBadVersion, buf[4])
	}
	switch buf[5] {
	case TypeCacheRequest:
		return Message{Type: TypeCacheRequest}, nil
	case TypeCacheShare:
		return decodeCacheShare(buf)
	default:
		return Message{}, fmt.Errorf("%w: %d", ErrBadType, buf[5])
	}
}

func decodeCacheShare(buf []byte) (Message, error) {
	if len(buf) < headerSize+pointSize+4 {
		return Message{}, ErrTruncated
	}
	loc := getPoint(buf, headerSize)
	if !finite(loc) {
		return Message{}, ErrBadFloat
	}
	n := int(binary.LittleEndian.Uint32(buf[headerSize+pointSize:]))
	if len(buf) != CacheShareSize(n) {
		return Message{}, ErrTruncated
	}
	neighbors := make([]core.POI, n)
	off := headerSize + pointSize + 4
	for i := 0; i < n; i++ {
		id := int64(binary.LittleEndian.Uint64(buf[off:]))
		p := getPoint(buf, off+8)
		if !finite(p) {
			return Message{}, ErrBadFloat
		}
		neighbors[i] = core.POI{ID: id, Loc: p}
		off += poiSize
	}
	// Re-sorting on decode keeps the PeerCache invariant even against a
	// peer that serialized out of order.
	return Message{
		Type:  TypeCacheShare,
		Cache: core.NewPeerCache(loc, neighbors),
	}, nil
}

func finite(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}
