// Package wire provides the binary message codec for the system's two
// channels. The peer-to-peer channel carries cached NN results over
// short-range ad-hoc links (IEEE 802.11x); the codec makes that exchange
// concrete so the simulator can account for the communication overhead the
// paper names as the technique's main cost ("it may increase the
// communication overheads among mobile hosts", §2). The client-server
// channel (internal/serve) carries position updates, kNN/range queries, and
// served answers between a mobile client and the remote spatial database
// over WebSocket binary frames.
//
// The format is a fixed little-endian layout with a versioned header:
//
//	offset  size  field
//	0       4     magic "SENN"
//	4       1     version (1)
//	5       1     message type
//	6       ...   type-specific payload
//
// A CacheShare payload carries the peer's cached query location and its
// certain nearest neighbors:
//
//	6       8+8   query location x, y (float64)
//	22      4     neighbor count n (uint32)
//	26      n*24  neighbors: id (int64), x, y (float64)
//
// The client-server payloads are documented on their message types below.
// Encoding is canonical: for every message Decode accepts (except
// CacheShare, whose decoder re-sorts neighbors), re-encoding the decoded
// message reproduces the input bytes exactly — the property the round-trip
// fuzz targets pin.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// Message types.
const (
	// TypeCacheShare carries a PeerCache from a peer to the querying host.
	TypeCacheShare byte = 1
	// TypeCacheRequest asks peers in range to share their caches. Its
	// payload is empty; the type exists so request traffic can be accounted.
	TypeCacheRequest byte = 2

	// Client-server channel (internal/serve).

	// TypePosition is a client position update:
	//
	//	6       8+8   position x, y (float64)
	TypePosition byte = 3
	// TypeQuery is a kNN request shipped with the paper's §3.3 pruning
	// bounds (the part of the query the client could not certify from
	// peers):
	//
	//	6       4     request id (uint32)
	//	10      4     k (uint32, 1..MaxQueryK)
	//	14      8+8   query location x, y (float64)
	//	30      1     bound flags (bit 0: lower, bit 1: upper)
	//	31      8     lower bound (float64; zero bits when unset)
	//	39      8     upper bound (float64; zero bits when unset)
	TypeQuery byte = 4
	// TypeRange is a range request: every POI within the radius.
	//
	//	6       4     request id (uint32)
	//	10      8+8   query location x, y (float64)
	//	26      8     radius (float64, finite, >= 0)
	TypeRange byte = 5
	// TypeAnswer is the server's reply to a Query or Range request. Its
	// body is the certain-region metadata a client caches and later shares
	// and verifies exactly like a simulated host: the echoed query location
	// plus the complete ascending-by-distance neighbor set (for a kNN
	// answer the certain radius is the distance to the last neighbor; for a
	// range answer it is the requested radius).
	//
	//	6       4     request id (uint32)
	//	10      8     page accesses this query cost the server (int64, >= 0)
	//	18      8+8   query location x, y (float64)
	//	34      4     neighbor count n (uint32)
	//	38      n*24  neighbors: id (int64), x, y (float64), ascending dist
	TypeAnswer byte = 6
	// TypeError is the server's per-request failure reply.
	//
	//	6       4     request id (uint32; 0 when no request is attributable)
	//	10      4     error code (uint32)
	TypeError byte = 7
)

// Error codes carried by TypeError messages.
const (
	// ErrCodeBadRequest: malformed or out-of-range request parameters.
	ErrCodeBadRequest uint32 = 1
	// ErrCodeUnsupported: a message type this channel does not serve
	// (e.g. a peer-channel CacheShare sent to the server).
	ErrCodeUnsupported uint32 = 2
	// ErrCodeTooLarge: the answer would exceed the channel's message cap.
	ErrCodeTooLarge uint32 = 3
)

// MaxQueryK caps the k a Query message may carry, bounding the answer a
// well-formed request can demand (AnswerSize(MaxQueryK) ≈ 96 KiB, well under
// the transport's message cap).
const MaxQueryK = 4096

const (
	version    byte = 1
	headerSize      = 6
	pointSize       = 16
	poiSize         = 24
)

var magic = [4]byte{'S', 'E', 'N', 'N'}

// Errors returned by Decode.
var (
	ErrTooShort   = errors.New("wire: message too short")
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unknown message type")
	ErrTruncated  = errors.New("wire: truncated payload")
	ErrBadFloat   = errors.New("wire: non-finite coordinate")
	ErrBadValue   = errors.New("wire: invalid field value")
	ErrUnsorted   = errors.New("wire: answer neighbors not in ascending distance order")
)

// CacheRequestSize is the encoded size of a cache request.
const CacheRequestSize = headerSize

// CacheShareSize returns the encoded size of a cache-share message carrying
// n neighbors.
func CacheShareSize(n int) int { return headerSize + pointSize + 4 + n*poiSize }

// EncodeCacheRequest emits a cache request message.
func EncodeCacheRequest() []byte {
	buf := make([]byte, headerSize)
	writeHeader(buf, TypeCacheRequest)
	return buf
}

// EncodeCacheShare emits a cache-share message for pc.
func EncodeCacheShare(pc core.PeerCache) []byte {
	buf := make([]byte, CacheShareSize(len(pc.Neighbors)))
	writeHeader(buf, TypeCacheShare)
	off := headerSize
	off = putPoint(buf, off, pc.QueryLoc)
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(pc.Neighbors)))
	off += 4
	for _, n := range pc.Neighbors {
		binary.LittleEndian.PutUint64(buf[off:], uint64(n.ID))
		off += 8
		off = putPoint(buf, off, n.Loc)
	}
	return buf
}

// Query is a decoded TypeQuery payload: a kNN request under the §3.3
// pruning bounds. The bound fields mirror nn.Bounds without importing it, so
// the codec stays free of algorithm dependencies.
type Query struct {
	ReqID    uint32
	K        int
	Loc      geom.Point
	HasLower bool
	Lower    float64
	HasUpper bool
	Upper    float64
}

// RangeQuery is a decoded TypeRange payload.
type RangeQuery struct {
	ReqID  uint32
	Loc    geom.Point
	Radius float64
}

// Answer is a decoded TypeAnswer payload. Cache carries the certain-region
// metadata (query location + ascending neighbor set); Pages is the server's
// page-access cost for this one query (the PAR metric over the wire).
//
// Unlike a CacheShare, an Answer's neighbor order is authoritative — the
// server emits ascending distance with ties in index order, and the decoder
// validates rather than re-sorts, so a decode/encode round trip preserves
// the server's exact bytes (what the served-vs-in-process oracle test
// compares).
type Answer struct {
	ReqID uint32
	Pages int64
	Cache core.PeerCache
}

// ErrorMsg is a decoded TypeError payload.
type ErrorMsg struct {
	ReqID uint32
	Code  uint32
}

// Encoded sizes of the fixed-layout client-server messages.
const (
	PositionSize = headerSize + pointSize
	QuerySize    = headerSize + 4 + 4 + pointSize + 1 + 8 + 8
	RangeSize    = headerSize + 4 + pointSize + 8
	ErrorSize    = headerSize + 4 + 4
)

// AnswerSize returns the encoded size of an answer carrying n neighbors.
func AnswerSize(n int) int { return headerSize + 4 + 8 + pointSize + 4 + n*poiSize }

// EncodePosition emits a position update.
func EncodePosition(p geom.Point) []byte {
	buf := make([]byte, PositionSize)
	writeHeader(buf, TypePosition)
	putPoint(buf, headerSize, p)
	return buf
}

// Bound flags of the Query layout.
const (
	queryFlagLower byte = 1 << 0
	queryFlagUpper byte = 1 << 1
)

// EncodeQuery emits a kNN request. Unset bounds are encoded as zero bits so
// the encoding is canonical.
func EncodeQuery(q Query) []byte {
	buf := make([]byte, QuerySize)
	writeHeader(buf, TypeQuery)
	off := headerSize
	binary.LittleEndian.PutUint32(buf[off:], q.ReqID)
	binary.LittleEndian.PutUint32(buf[off+4:], uint32(q.K))
	off = putPoint(buf, off+8, q.Loc)
	var flags byte
	var lower, upper float64
	if q.HasLower {
		flags |= queryFlagLower
		lower = q.Lower
	}
	if q.HasUpper {
		flags |= queryFlagUpper
		upper = q.Upper
	}
	buf[off] = flags
	binary.LittleEndian.PutUint64(buf[off+1:], math.Float64bits(lower))
	binary.LittleEndian.PutUint64(buf[off+9:], math.Float64bits(upper))
	return buf
}

// EncodeRange emits a range request.
func EncodeRange(r RangeQuery) []byte {
	buf := make([]byte, RangeSize)
	writeHeader(buf, TypeRange)
	binary.LittleEndian.PutUint32(buf[headerSize:], r.ReqID)
	off := putPoint(buf, headerSize+4, r.Loc)
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(r.Radius))
	return buf
}

// EncodeAnswer emits a served answer. The cache's neighbors must already be
// in ascending distance order from the cache's query location (which is how
// every server path produces them); Decode rejects anything else.
func EncodeAnswer(a Answer) []byte {
	buf := make([]byte, AnswerSize(len(a.Cache.Neighbors)))
	writeHeader(buf, TypeAnswer)
	off := headerSize
	binary.LittleEndian.PutUint32(buf[off:], a.ReqID)
	binary.LittleEndian.PutUint64(buf[off+4:], uint64(a.Pages))
	off = putPoint(buf, off+12, a.Cache.QueryLoc)
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(a.Cache.Neighbors)))
	off += 4
	for _, n := range a.Cache.Neighbors {
		binary.LittleEndian.PutUint64(buf[off:], uint64(n.ID))
		off = putPoint(buf, off+8, n.Loc)
	}
	return buf
}

// EncodeError emits a per-request failure reply.
func EncodeError(e ErrorMsg) []byte {
	buf := make([]byte, ErrorSize)
	writeHeader(buf, TypeError)
	binary.LittleEndian.PutUint32(buf[headerSize:], e.ReqID)
	binary.LittleEndian.PutUint32(buf[headerSize+4:], e.Code)
	return buf
}

func writeHeader(buf []byte, typ byte) {
	copy(buf[:4], magic[:])
	buf[4] = version
	buf[5] = typ
}

func putPoint(buf []byte, off int, p geom.Point) int {
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(p.X))
	binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(p.Y))
	return off + pointSize
}

func getPoint(buf []byte, off int) geom.Point {
	return geom.Point{
		X: math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
	}
}

// Message is a decoded wire message.
type Message struct {
	Type   byte
	Cache  core.PeerCache // valid when Type == TypeCacheShare
	Pos    geom.Point     // valid when Type == TypePosition
	Query  Query          // valid when Type == TypeQuery
	Range  RangeQuery     // valid when Type == TypeRange
	Answer Answer         // valid when Type == TypeAnswer
	Err    ErrorMsg       // valid when Type == TypeError
}

// Decode parses a wire message, validating structure and coordinates.
func Decode(buf []byte) (Message, error) {
	if len(buf) < headerSize {
		return Message{}, ErrTooShort
	}
	if [4]byte(buf[:4]) != magic {
		return Message{}, ErrBadMagic
	}
	if buf[4] != version {
		return Message{}, fmt.Errorf("%w: %d", ErrBadVersion, buf[4])
	}
	switch buf[5] {
	case TypeCacheRequest:
		return Message{Type: TypeCacheRequest}, nil
	case TypeCacheShare:
		return decodeCacheShare(buf)
	case TypePosition:
		return decodePosition(buf)
	case TypeQuery:
		return decodeQuery(buf)
	case TypeRange:
		return decodeRange(buf)
	case TypeAnswer:
		return decodeAnswer(buf)
	case TypeError:
		return decodeError(buf)
	default:
		return Message{}, fmt.Errorf("%w: %d", ErrBadType, buf[5])
	}
}

func decodePosition(buf []byte) (Message, error) {
	if len(buf) != PositionSize {
		return Message{}, ErrTruncated
	}
	p := getPoint(buf, headerSize)
	if !finite(p) {
		return Message{}, ErrBadFloat
	}
	return Message{Type: TypePosition, Pos: p}, nil
}

func decodeQuery(buf []byte) (Message, error) {
	if len(buf) != QuerySize {
		return Message{}, ErrTruncated
	}
	off := headerSize
	q := Query{ReqID: binary.LittleEndian.Uint32(buf[off:])}
	k := binary.LittleEndian.Uint32(buf[off+4:])
	if k < 1 || k > MaxQueryK {
		return Message{}, fmt.Errorf("%w: k=%d", ErrBadValue, k)
	}
	q.K = int(k)
	q.Loc = getPoint(buf, off+8)
	if !finite(q.Loc) {
		return Message{}, ErrBadFloat
	}
	off += 8 + pointSize
	flags := buf[off]
	if flags&^(queryFlagLower|queryFlagUpper) != 0 {
		return Message{}, fmt.Errorf("%w: bound flags %#x", ErrBadValue, flags)
	}
	lowerBits := binary.LittleEndian.Uint64(buf[off+1:])
	upperBits := binary.LittleEndian.Uint64(buf[off+9:])
	if flags&queryFlagLower != 0 {
		q.HasLower = true
		q.Lower = math.Float64frombits(lowerBits)
		if math.IsNaN(q.Lower) || math.IsInf(q.Lower, 0) {
			return Message{}, ErrBadFloat
		}
	} else if lowerBits != 0 {
		// Canonical encoding: an unset bound must be zero bits.
		return Message{}, fmt.Errorf("%w: lower bound set without flag", ErrBadValue)
	}
	if flags&queryFlagUpper != 0 {
		q.HasUpper = true
		q.Upper = math.Float64frombits(upperBits)
		if math.IsNaN(q.Upper) || math.IsInf(q.Upper, 0) {
			return Message{}, ErrBadFloat
		}
	} else if upperBits != 0 {
		return Message{}, fmt.Errorf("%w: upper bound set without flag", ErrBadValue)
	}
	return Message{Type: TypeQuery, Query: q}, nil
}

func decodeRange(buf []byte) (Message, error) {
	if len(buf) != RangeSize {
		return Message{}, ErrTruncated
	}
	r := RangeQuery{ReqID: binary.LittleEndian.Uint32(buf[headerSize:])}
	r.Loc = getPoint(buf, headerSize+4)
	if !finite(r.Loc) {
		return Message{}, ErrBadFloat
	}
	r.Radius = math.Float64frombits(binary.LittleEndian.Uint64(buf[headerSize+4+pointSize:]))
	if math.IsNaN(r.Radius) || math.IsInf(r.Radius, 0) {
		return Message{}, ErrBadFloat
	}
	if r.Radius < 0 || math.Signbit(r.Radius) {
		// Negative zero is excluded too: encoding must be canonical.
		return Message{}, fmt.Errorf("%w: radius %g", ErrBadValue, r.Radius)
	}
	return Message{Type: TypeRange, Range: r}, nil
}

func decodeAnswer(buf []byte) (Message, error) {
	if len(buf) < AnswerSize(0) {
		return Message{}, ErrTruncated
	}
	off := headerSize
	a := Answer{ReqID: binary.LittleEndian.Uint32(buf[off:])}
	a.Pages = int64(binary.LittleEndian.Uint64(buf[off+4:]))
	if a.Pages < 0 {
		return Message{}, fmt.Errorf("%w: negative page count", ErrBadValue)
	}
	loc := getPoint(buf, off+12)
	if !finite(loc) {
		return Message{}, ErrBadFloat
	}
	off += 12 + pointSize
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	if len(buf) != AnswerSize(n) {
		return Message{}, ErrTruncated
	}
	neighbors := make([]core.POI, n)
	off += 4
	prev := -1.0
	for i := 0; i < n; i++ {
		id := int64(binary.LittleEndian.Uint64(buf[off:]))
		p := getPoint(buf, off+8)
		if !finite(p) {
			return Message{}, ErrBadFloat
		}
		// The answer's order is part of the protocol: neighbors arrive in
		// non-decreasing distance from the query location, so the decoded
		// PeerCache satisfies the certain-region invariant without a
		// re-sort that could reorder the server's tie-breaking.
		d2 := loc.Dist2(p)
		if d2 < prev {
			return Message{}, ErrUnsorted
		}
		prev = d2
		neighbors[i] = core.POI{ID: id, Loc: p}
		off += poiSize
	}
	a.Cache = core.PeerCache{QueryLoc: loc, Neighbors: neighbors}
	return Message{Type: TypeAnswer, Answer: a}, nil
}

func decodeError(buf []byte) (Message, error) {
	if len(buf) != ErrorSize {
		return Message{}, ErrTruncated
	}
	return Message{Type: TypeError, Err: ErrorMsg{
		ReqID: binary.LittleEndian.Uint32(buf[headerSize:]),
		Code:  binary.LittleEndian.Uint32(buf[headerSize+4:]),
	}}, nil
}

func decodeCacheShare(buf []byte) (Message, error) {
	if len(buf) < headerSize+pointSize+4 {
		return Message{}, ErrTruncated
	}
	loc := getPoint(buf, headerSize)
	if !finite(loc) {
		return Message{}, ErrBadFloat
	}
	n := int(binary.LittleEndian.Uint32(buf[headerSize+pointSize:]))
	if len(buf) != CacheShareSize(n) {
		return Message{}, ErrTruncated
	}
	neighbors := make([]core.POI, n)
	off := headerSize + pointSize + 4
	for i := 0; i < n; i++ {
		id := int64(binary.LittleEndian.Uint64(buf[off:]))
		p := getPoint(buf, off+8)
		if !finite(p) {
			return Message{}, ErrBadFloat
		}
		neighbors[i] = core.POI{ID: id, Loc: p}
		off += poiSize
	}
	// Re-sorting on decode keeps the PeerCache invariant even against a
	// peer that serialized out of order.
	return Message{
		Type:  TypeCacheShare,
		Cache: core.NewPeerCache(loc, neighbors),
	}, nil
}

func finite(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}
