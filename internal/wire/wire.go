// Package wire provides the binary message codec for the system's two
// channels. The peer-to-peer channel carries cached NN results over
// short-range ad-hoc links (IEEE 802.11x); the codec makes that exchange
// concrete so the simulator can account for the communication overhead the
// paper names as the technique's main cost ("it may increase the
// communication overheads among mobile hosts", §2). The client-server
// channel (internal/serve) carries position updates, kNN/range queries, and
// served answers between a mobile client and the remote spatial database
// over WebSocket binary frames.
//
// The format is a fixed little-endian layout with a versioned header:
//
//	offset  size  field
//	0       4     magic "SENN"
//	4       1     version (1)
//	5       1     message type
//	6       ...   type-specific payload
//
// A CacheShare payload carries the peer's cached query location and its
// certain nearest neighbors:
//
//	6       8+8   query location x, y (float64)
//	22      4     neighbor count n (uint32)
//	26      n*24  neighbors: id (int64), x, y (float64)
//
// The client-server payloads are documented on their message types below.
// Encoding is canonical: for every message Decode accepts (except
// CacheShare, whose decoder re-sorts neighbors), re-encoding the decoded
// message reproduces the input bytes exactly — the property the round-trip
// fuzz targets pin.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/geom"
)

// Message types.
const (
	// TypeCacheShare carries a PeerCache from a peer to the querying host.
	TypeCacheShare byte = 1
	// TypeCacheRequest asks peers in range to share their caches. Its
	// payload is empty; the type exists so request traffic can be accounted.
	TypeCacheRequest byte = 2

	// Client-server channel (internal/serve).

	// TypePosition is a client position update:
	//
	//	6       8+8   position x, y (float64)
	TypePosition byte = 3
	// TypeQuery is a kNN request shipped with the paper's §3.3 pruning
	// bounds (the part of the query the client could not certify from
	// peers):
	//
	//	6       4     request id (uint32)
	//	10      4     k (uint32, 1..MaxQueryK)
	//	14      8+8   query location x, y (float64)
	//	30      1     bound flags (bit 0: lower, bit 1: upper)
	//	31      8     lower bound (float64; zero bits when unset)
	//	39      8     upper bound (float64; zero bits when unset)
	TypeQuery byte = 4
	// TypeRange is a range request: every POI within the radius.
	//
	//	6       4     request id (uint32)
	//	10      8+8   query location x, y (float64)
	//	26      8     radius (float64, finite, >= 0)
	TypeRange byte = 5
	// TypeAnswer is the server's reply to a Query or Range request. Its
	// body is the certain-region metadata a client caches and later shares
	// and verifies exactly like a simulated host: the echoed query location
	// plus the complete ascending-by-distance neighbor set (for a kNN
	// answer the certain radius is the distance to the last neighbor; for a
	// range answer it is the requested radius).
	//
	//	6       4     request id (uint32)
	//	10      8     page accesses this query cost the server (int64, >= 0)
	//	18      8+8   query location x, y (float64)
	//	34      4     neighbor count n (uint32)
	//	38      n*24  neighbors: id (int64), x, y (float64), ascending dist
	TypeAnswer byte = 6
	// TypeError is the server's per-request failure reply.
	//
	//	6       4     request id (uint32; 0 when no request is attributable)
	//	10      4     error code (uint32)
	TypeError byte = 7

	// Daemon-relayed peer channel (internal/serve). On real connections
	// mobile hosts have no ad-hoc radio, so the P2P exchange of §4.1 runs
	// through the daemon: the requester asks the server to relay a cache
	// request to every session within transmission range of its position,
	// probed peers answer with their cached result, and the server forwards
	// the collected shares back in one aggregated reply.

	// TypePeerRequest asks the server to relay a cache request to sessions
	// in range (client → server):
	//
	//	6       4     request id (uint32)
	//	10      8+8   requester location x, y (float64)
	//	26      8     requested transmission range (float64, finite, >= 0;
	//	              the server clamps it to its configured maximum)
	TypePeerRequest byte = 8
	// TypePeerProbe is the relayed cache request (server → probed peer). A
	// probed peer must answer with a ShareReply echoing the probe id —
	// including when its cache is empty, so the relay can complete without
	// waiting out its deadline:
	//
	//	6       4     probe id (uint32)
	TypePeerProbe byte = 9
	// TypeShareReply is a probed peer's cache share (peer → server):
	//
	//	6       4     probe id (uint32)
	//	10      1     has-cache flag (0 or 1)
	//	11      8+8   cached query location x, y (zero bits when empty)
	//	27      4     neighbor count n (uint32; 0 when empty, >= 1 when not)
	//	31      n*24  neighbors: id (int64), x, y (float64), ascending dist
	//
	// Unlike the ad-hoc CacheShare, a ShareReply's neighbor order is part of
	// the protocol (ascending distance from the cached query location, the
	// order every cache entry already has); the decoder validates instead of
	// re-sorting, keeping the encoding canonical.
	TypeShareReply byte = 10
	// TypePeerShares is the aggregated relay result (server → requester):
	//
	//	6       4     request id (uint32)
	//	10      4     peers in range (uint32: sessions probed)
	//	14      4     share count m (uint32)
	//	18      ...   m shares, each: query location x, y (float64),
	//	              neighbor count n (uint32, >= 1), then n*24 neighbors
	//	              (id, x, y) in ascending distance order
	TypePeerShares byte = 11
)

// Error codes carried by TypeError messages.
const (
	// ErrCodeBadRequest: malformed or out-of-range request parameters.
	ErrCodeBadRequest uint32 = 1
	// ErrCodeUnsupported: a message type this channel does not serve
	// (e.g. a peer-channel CacheShare sent to the server).
	ErrCodeUnsupported uint32 = 2
	// ErrCodeTooLarge: the answer would exceed the channel's message cap.
	ErrCodeTooLarge uint32 = 3
)

// MaxQueryK caps the k a Query message may carry, bounding the answer a
// well-formed request can demand (AnswerSize(MaxQueryK) ≈ 96 KiB, well under
// the transport's message cap).
const MaxQueryK = 4096

// MaxShareNeighbors caps the neighbors one relayed share (ShareReply, or a
// share inside PeerShares) may carry. A cache entry is at most the peer's
// cache capacity deep, which is always far below this; anything larger is a
// forged or corrupt share, rejected at decode before it can bloat a relay
// fan-out.
const MaxShareNeighbors = MaxQueryK

const (
	version    byte = 1
	headerSize      = 6
	pointSize       = 16
	poiSize         = 24
)

var magic = [4]byte{'S', 'E', 'N', 'N'}

// Errors returned by Decode.
var (
	ErrTooShort   = errors.New("wire: message too short")
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unknown message type")
	ErrTruncated  = errors.New("wire: truncated payload")
	ErrBadFloat   = errors.New("wire: non-finite coordinate")
	ErrBadValue   = errors.New("wire: invalid field value")
	ErrUnsorted   = errors.New("wire: answer neighbors not in ascending distance order")
)

// CacheRequestSize is the encoded size of a cache request.
const CacheRequestSize = headerSize

// CacheShareSize returns the encoded size of a cache-share message carrying
// n neighbors.
func CacheShareSize(n int) int { return headerSize + pointSize + 4 + n*poiSize }

// EncodeCacheRequest emits a cache request message.
func EncodeCacheRequest() []byte {
	return appendHeader(nil, TypeCacheRequest)
}

// AppendCacheShare appends an encoded cache-share message for pc to dst and
// returns the extended slice. The append-style encoders exist so hot serving
// paths can reuse one encode buffer per connection instead of allocating a
// fresh message each time.
func AppendCacheShare(dst []byte, pc core.PeerCache) []byte {
	dst = appendHeader(dst, TypeCacheShare)
	dst = appendPoint(dst, pc.QueryLoc)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pc.Neighbors)))
	return appendNeighbors(dst, pc.Neighbors)
}

// EncodeCacheShare emits a cache-share message for pc.
func EncodeCacheShare(pc core.PeerCache) []byte {
	return AppendCacheShare(make([]byte, 0, CacheShareSize(len(pc.Neighbors))), pc)
}

func appendNeighbors(dst []byte, neighbors []core.POI) []byte {
	for _, n := range neighbors {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(n.ID))
		dst = appendPoint(dst, n.Loc)
	}
	return dst
}

// Query is a decoded TypeQuery payload: a kNN request under the §3.3
// pruning bounds. The bound fields mirror nn.Bounds without importing it, so
// the codec stays free of algorithm dependencies.
type Query struct {
	ReqID    uint32
	K        int
	Loc      geom.Point
	HasLower bool
	Lower    float64
	HasUpper bool
	Upper    float64
}

// RangeQuery is a decoded TypeRange payload.
type RangeQuery struct {
	ReqID  uint32
	Loc    geom.Point
	Radius float64
}

// Answer is a decoded TypeAnswer payload. Cache carries the certain-region
// metadata (query location + ascending neighbor set); Pages is the server's
// page-access cost for this one query (the PAR metric over the wire).
//
// Unlike a CacheShare, an Answer's neighbor order is authoritative — the
// server emits ascending distance with ties in index order, and the decoder
// validates rather than re-sorts, so a decode/encode round trip preserves
// the server's exact bytes (what the served-vs-in-process oracle test
// compares).
type Answer struct {
	ReqID uint32
	Pages int64
	Cache core.PeerCache
}

// ErrorMsg is a decoded TypeError payload.
type ErrorMsg struct {
	ReqID uint32
	Code  uint32
}

// PeerRequest is a decoded TypePeerRequest payload: a request to relay a
// cache request to every session within Radius of Loc.
type PeerRequest struct {
	ReqID  uint32
	Loc    geom.Point
	Radius float64
}

// ShareReply is a decoded TypeShareReply payload: a probed peer's cache (or
// the explicit statement that it has none).
type ShareReply struct {
	ProbeID uint32
	Has     bool
	Cache   core.PeerCache // zero value when !Has
}

// PeerShares is a decoded TypePeerShares payload: the aggregated result of
// one relay fan-out. PeersInRange counts the sessions probed; Shares holds
// the non-empty caches that came back in time (at most one per peer, already
// validated to be ascending-distance PeerCaches).
type PeerShares struct {
	ReqID        uint32
	PeersInRange int
	Shares       []core.PeerCache
}

// Encoded sizes of the fixed-layout client-server messages.
const (
	PositionSize    = headerSize + pointSize
	QuerySize       = headerSize + 4 + 4 + pointSize + 1 + 8 + 8
	RangeSize       = headerSize + 4 + pointSize + 8
	ErrorSize       = headerSize + 4 + 4
	PeerRequestSize = headerSize + 4 + pointSize + 8
	PeerProbeSize   = headerSize + 4
)

// AnswerSize returns the encoded size of an answer carrying n neighbors.
func AnswerSize(n int) int { return headerSize + 4 + 8 + pointSize + 4 + n*poiSize }

// ShareReplySize returns the encoded size of a share reply carrying n
// neighbors (n = 0 for the empty-cache reply).
func ShareReplySize(n int) int { return headerSize + 4 + 1 + pointSize + 4 + n*poiSize }

// PeerSharesSize returns the encoded size of an aggregated relay reply whose
// shares carry the given neighbor counts.
func PeerSharesSize(neighborCounts []int) int {
	size := headerSize + 4 + 4 + 4
	for _, n := range neighborCounts {
		size += pointSize + 4 + n*poiSize
	}
	return size
}

// AppendPosition appends an encoded position update to dst.
func AppendPosition(dst []byte, p geom.Point) []byte {
	return appendPoint(appendHeader(dst, TypePosition), p)
}

// EncodePosition emits a position update.
func EncodePosition(p geom.Point) []byte {
	return AppendPosition(make([]byte, 0, PositionSize), p)
}

// Bound flags of the Query layout.
const (
	queryFlagLower byte = 1 << 0
	queryFlagUpper byte = 1 << 1
)

// AppendQuery appends an encoded kNN request to dst. Unset bounds are
// encoded as zero bits so the encoding is canonical.
func AppendQuery(dst []byte, q Query) []byte {
	buf := appendHeader(dst, TypeQuery)
	buf = binary.LittleEndian.AppendUint32(buf, q.ReqID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.K))
	buf = appendPoint(buf, q.Loc)
	var flags byte
	var lower, upper float64
	if q.HasLower {
		flags |= queryFlagLower
		lower = q.Lower
	}
	if q.HasUpper {
		flags |= queryFlagUpper
		upper = q.Upper
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(lower))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(upper))
	return buf
}

// EncodeQuery emits a kNN request (see AppendQuery).
func EncodeQuery(q Query) []byte {
	return AppendQuery(make([]byte, 0, QuerySize), q)
}

// EncodeRange emits a range request.
func EncodeRange(r RangeQuery) []byte {
	buf := appendHeader(make([]byte, 0, RangeSize), TypeRange)
	buf = binary.LittleEndian.AppendUint32(buf, r.ReqID)
	buf = appendPoint(buf, r.Loc)
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Radius))
}

// AppendAnswer appends an encoded served answer to dst and returns the
// extended slice. The cache's neighbors must already be in ascending
// distance order from the cache's query location (which is how every server
// path produces them); Decode rejects anything else.
func AppendAnswer(dst []byte, a Answer) []byte {
	dst = appendHeader(dst, TypeAnswer)
	dst = binary.LittleEndian.AppendUint32(dst, a.ReqID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.Pages))
	dst = appendPoint(dst, a.Cache.QueryLoc)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(a.Cache.Neighbors)))
	return appendNeighbors(dst, a.Cache.Neighbors)
}

// EncodeAnswer emits a served answer (see AppendAnswer).
func EncodeAnswer(a Answer) []byte {
	return AppendAnswer(make([]byte, 0, AnswerSize(len(a.Cache.Neighbors))), a)
}

// AppendError appends an encoded per-request failure reply to dst.
func AppendError(dst []byte, e ErrorMsg) []byte {
	dst = appendHeader(dst, TypeError)
	dst = binary.LittleEndian.AppendUint32(dst, e.ReqID)
	return binary.LittleEndian.AppendUint32(dst, e.Code)
}

// EncodeError emits a per-request failure reply.
func EncodeError(e ErrorMsg) []byte {
	return AppendError(make([]byte, 0, ErrorSize), e)
}

// AppendPeerRequest appends an encoded relay request to dst.
func AppendPeerRequest(dst []byte, r PeerRequest) []byte {
	buf := appendHeader(dst, TypePeerRequest)
	buf = binary.LittleEndian.AppendUint32(buf, r.ReqID)
	buf = appendPoint(buf, r.Loc)
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Radius))
}

// EncodePeerRequest emits a relay request (see AppendPeerRequest).
func EncodePeerRequest(r PeerRequest) []byte {
	return AppendPeerRequest(make([]byte, 0, PeerRequestSize), r)
}

// AppendPeerProbe appends a relayed cache request carrying the probe id the
// peer must echo in its ShareReply.
func AppendPeerProbe(dst []byte, probeID uint32) []byte {
	return binary.LittleEndian.AppendUint32(appendHeader(dst, TypePeerProbe), probeID)
}

// EncodePeerProbe emits a relayed cache request (see AppendPeerProbe).
func EncodePeerProbe(probeID uint32) []byte {
	return AppendPeerProbe(make([]byte, 0, PeerProbeSize), probeID)
}

// AppendShareReply appends an encoded probe reply to dst. When has is false
// the cache is ignored and the canonical empty reply is emitted.
func AppendShareReply(dst []byte, probeID uint32, has bool, pc core.PeerCache) []byte {
	dst = appendHeader(dst, TypeShareReply)
	dst = binary.LittleEndian.AppendUint32(dst, probeID)
	if !has || len(pc.Neighbors) == 0 {
		dst = append(dst, 0)
		dst = appendPoint(dst, geom.Point{})
		return binary.LittleEndian.AppendUint32(dst, 0)
	}
	dst = append(dst, 1)
	dst = appendPoint(dst, pc.QueryLoc)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pc.Neighbors)))
	return appendNeighbors(dst, pc.Neighbors)
}

// EncodeShareReply emits a probe reply (see AppendShareReply).
func EncodeShareReply(probeID uint32, has bool, pc core.PeerCache) []byte {
	return AppendShareReply(make([]byte, 0, ShareReplySize(len(pc.Neighbors))), probeID, has, pc)
}

// AppendPeerShares appends an encoded aggregated relay reply to dst. Every
// share must be a non-empty ascending-distance PeerCache (which is the only
// kind the relay collects); Decode rejects anything else.
func AppendPeerShares(dst []byte, ps PeerShares) []byte {
	dst = appendHeader(dst, TypePeerShares)
	dst = binary.LittleEndian.AppendUint32(dst, ps.ReqID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ps.PeersInRange))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ps.Shares)))
	for _, pc := range ps.Shares {
		dst = appendPoint(dst, pc.QueryLoc)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pc.Neighbors)))
		dst = appendNeighbors(dst, pc.Neighbors)
	}
	return dst
}

// EncodePeerShares emits an aggregated relay reply (see AppendPeerShares).
func EncodePeerShares(ps PeerShares) []byte {
	return AppendPeerShares(nil, ps)
}

func appendHeader(dst []byte, typ byte) []byte {
	return append(dst, magic[0], magic[1], magic[2], magic[3], version, typ)
}

func appendPoint(dst []byte, p geom.Point) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.X))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Y))
}

func getPoint(buf []byte, off int) geom.Point {
	return geom.Point{
		X: math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
	}
}

// Message is a decoded wire message.
type Message struct {
	Type    byte
	Cache   core.PeerCache // valid when Type == TypeCacheShare
	Pos     geom.Point     // valid when Type == TypePosition
	Query   Query          // valid when Type == TypeQuery
	Range   RangeQuery     // valid when Type == TypeRange
	Answer  Answer         // valid when Type == TypeAnswer
	Err     ErrorMsg       // valid when Type == TypeError
	PeerReq PeerRequest    // valid when Type == TypePeerRequest
	ProbeID uint32         // valid when Type == TypePeerProbe
	Share   ShareReply     // valid when Type == TypeShareReply
	Shares  PeerShares     // valid when Type == TypePeerShares
}

// PeekType validates the message header and returns the message type
// without decoding the payload. It lets a receiver that wants scratch-based
// decoding for one hot type (see DecodePeerSharesInto) dispatch before
// paying for a generic Decode.
func PeekType(buf []byte) (byte, error) {
	if len(buf) < headerSize {
		return 0, ErrTooShort
	}
	if [4]byte(buf[:4]) != magic {
		return 0, ErrBadMagic
	}
	if buf[4] != version {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, buf[4])
	}
	return buf[5], nil
}

// Decode parses a wire message, validating structure and coordinates.
func Decode(buf []byte) (Message, error) {
	typ, err := PeekType(buf)
	if err != nil {
		return Message{}, err
	}
	switch typ {
	case TypeCacheRequest:
		return Message{Type: TypeCacheRequest}, nil
	case TypeCacheShare:
		return decodeCacheShare(buf)
	case TypePosition:
		return decodePosition(buf)
	case TypeQuery:
		return decodeQuery(buf)
	case TypeRange:
		return decodeRange(buf)
	case TypeAnswer:
		return decodeAnswer(buf)
	case TypeError:
		return decodeError(buf)
	case TypePeerRequest:
		return decodePeerRequest(buf)
	case TypePeerProbe:
		return decodePeerProbe(buf)
	case TypeShareReply:
		return decodeShareReply(buf)
	case TypePeerShares:
		return decodePeerShares(buf)
	default:
		return Message{}, fmt.Errorf("%w: %d", ErrBadType, buf[5])
	}
}

func decodePosition(buf []byte) (Message, error) {
	if len(buf) != PositionSize {
		return Message{}, ErrTruncated
	}
	p := getPoint(buf, headerSize)
	if !finite(p) {
		return Message{}, ErrBadFloat
	}
	return Message{Type: TypePosition, Pos: p}, nil
}

func decodeQuery(buf []byte) (Message, error) {
	if len(buf) != QuerySize {
		return Message{}, ErrTruncated
	}
	off := headerSize
	q := Query{ReqID: binary.LittleEndian.Uint32(buf[off:])}
	k := binary.LittleEndian.Uint32(buf[off+4:])
	if k < 1 || k > MaxQueryK {
		return Message{}, fmt.Errorf("%w: k=%d", ErrBadValue, k)
	}
	q.K = int(k)
	q.Loc = getPoint(buf, off+8)
	if !finite(q.Loc) {
		return Message{}, ErrBadFloat
	}
	off += 8 + pointSize
	flags := buf[off]
	if flags&^(queryFlagLower|queryFlagUpper) != 0 {
		return Message{}, fmt.Errorf("%w: bound flags %#x", ErrBadValue, flags)
	}
	lowerBits := binary.LittleEndian.Uint64(buf[off+1:])
	upperBits := binary.LittleEndian.Uint64(buf[off+9:])
	if flags&queryFlagLower != 0 {
		q.HasLower = true
		q.Lower = math.Float64frombits(lowerBits)
		if math.IsNaN(q.Lower) || math.IsInf(q.Lower, 0) {
			return Message{}, ErrBadFloat
		}
	} else if lowerBits != 0 {
		// Canonical encoding: an unset bound must be zero bits.
		return Message{}, fmt.Errorf("%w: lower bound set without flag", ErrBadValue)
	}
	if flags&queryFlagUpper != 0 {
		q.HasUpper = true
		q.Upper = math.Float64frombits(upperBits)
		if math.IsNaN(q.Upper) || math.IsInf(q.Upper, 0) {
			return Message{}, ErrBadFloat
		}
	} else if upperBits != 0 {
		return Message{}, fmt.Errorf("%w: upper bound set without flag", ErrBadValue)
	}
	return Message{Type: TypeQuery, Query: q}, nil
}

func decodeRange(buf []byte) (Message, error) {
	if len(buf) != RangeSize {
		return Message{}, ErrTruncated
	}
	r := RangeQuery{ReqID: binary.LittleEndian.Uint32(buf[headerSize:])}
	r.Loc = getPoint(buf, headerSize+4)
	if !finite(r.Loc) {
		return Message{}, ErrBadFloat
	}
	r.Radius = math.Float64frombits(binary.LittleEndian.Uint64(buf[headerSize+4+pointSize:]))
	if math.IsNaN(r.Radius) || math.IsInf(r.Radius, 0) {
		return Message{}, ErrBadFloat
	}
	if r.Radius < 0 || math.Signbit(r.Radius) {
		// Negative zero is excluded too: encoding must be canonical.
		return Message{}, fmt.Errorf("%w: radius %g", ErrBadValue, r.Radius)
	}
	return Message{Type: TypeRange, Range: r}, nil
}

func decodeAnswer(buf []byte) (Message, error) {
	if len(buf) < AnswerSize(0) {
		return Message{}, ErrTruncated
	}
	off := headerSize
	a := Answer{ReqID: binary.LittleEndian.Uint32(buf[off:])}
	a.Pages = int64(binary.LittleEndian.Uint64(buf[off+4:]))
	if a.Pages < 0 {
		return Message{}, fmt.Errorf("%w: negative page count", ErrBadValue)
	}
	loc := getPoint(buf, off+12)
	if !finite(loc) {
		return Message{}, ErrBadFloat
	}
	off += 12 + pointSize
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	if len(buf) != AnswerSize(n) {
		return Message{}, ErrTruncated
	}
	neighbors := make([]core.POI, n)
	off += 4
	prev := -1.0
	for i := 0; i < n; i++ {
		id := int64(binary.LittleEndian.Uint64(buf[off:]))
		p := getPoint(buf, off+8)
		if !finite(p) {
			return Message{}, ErrBadFloat
		}
		// The answer's order is part of the protocol: neighbors arrive in
		// non-decreasing distance from the query location, so the decoded
		// PeerCache satisfies the certain-region invariant without a
		// re-sort that could reorder the server's tie-breaking.
		d2 := loc.Dist2(p)
		if d2 < prev {
			return Message{}, ErrUnsorted
		}
		prev = d2
		neighbors[i] = core.POI{ID: id, Loc: p}
		off += poiSize
	}
	a.Cache = core.PeerCache{QueryLoc: loc, Neighbors: neighbors}
	return Message{Type: TypeAnswer, Answer: a}, nil
}

func decodeError(buf []byte) (Message, error) {
	if len(buf) != ErrorSize {
		return Message{}, ErrTruncated
	}
	return Message{Type: TypeError, Err: ErrorMsg{
		ReqID: binary.LittleEndian.Uint32(buf[headerSize:]),
		Code:  binary.LittleEndian.Uint32(buf[headerSize+4:]),
	}}, nil
}

func decodePeerRequest(buf []byte) (Message, error) {
	if len(buf) != PeerRequestSize {
		return Message{}, ErrTruncated
	}
	r := PeerRequest{ReqID: binary.LittleEndian.Uint32(buf[headerSize:])}
	r.Loc = getPoint(buf, headerSize+4)
	if !finite(r.Loc) {
		return Message{}, ErrBadFloat
	}
	r.Radius = math.Float64frombits(binary.LittleEndian.Uint64(buf[headerSize+4+pointSize:]))
	if math.IsNaN(r.Radius) || math.IsInf(r.Radius, 0) {
		return Message{}, ErrBadFloat
	}
	if r.Radius < 0 || math.Signbit(r.Radius) {
		// Negative zero is excluded too: encoding must be canonical.
		return Message{}, fmt.Errorf("%w: relay radius %g", ErrBadValue, r.Radius)
	}
	return Message{Type: TypePeerRequest, PeerReq: r}, nil
}

func decodePeerProbe(buf []byte) (Message, error) {
	if len(buf) != PeerProbeSize {
		return Message{}, ErrTruncated
	}
	return Message{Type: TypePeerProbe, ProbeID: binary.LittleEndian.Uint32(buf[headerSize:])}, nil
}

// decodeShareInto parses one loc + count + neighbors share block at off,
// validating finiteness, the neighbor cap, and the ascending-distance
// invariant. Neighbors are appended to arena; the returned cache's Neighbors
// alias the appended region (capped, so appending to the arena later cannot
// write through them). It returns the cache, the offset past the block, and
// the grown arena. Single validation path for every relayed-share decoder.
func decodeShareInto(buf []byte, off int, arena []core.POI) (core.PeerCache, int, []core.POI, error) {
	if len(buf) < off+pointSize+4 {
		return core.PeerCache{}, 0, arena, ErrTruncated
	}
	loc := getPoint(buf, off)
	if !finite(loc) {
		return core.PeerCache{}, 0, arena, ErrBadFloat
	}
	n := int(binary.LittleEndian.Uint32(buf[off+pointSize:]))
	if n > MaxShareNeighbors {
		return core.PeerCache{}, 0, arena, fmt.Errorf("%w: share carries %d neighbors", ErrBadValue, n)
	}
	off += pointSize + 4
	if len(buf) < off+n*poiSize {
		return core.PeerCache{}, 0, arena, ErrTruncated
	}
	arena = slices.Grow(arena, n)
	start := len(arena)
	prev := -1.0
	for i := 0; i < n; i++ {
		id := int64(binary.LittleEndian.Uint64(buf[off:]))
		p := getPoint(buf, off+8)
		if !finite(p) {
			return core.PeerCache{}, 0, arena, ErrBadFloat
		}
		// Relayed shares descend from served answers, whose ascending order
		// is authoritative; validating instead of re-sorting keeps the
		// encoding canonical and the PeerCache invariant intact.
		d2 := loc.Dist2(p)
		if d2 < prev {
			return core.PeerCache{}, 0, arena, ErrUnsorted
		}
		prev = d2
		arena = append(arena, core.POI{ID: id, Loc: p})
		off += poiSize
	}
	end := len(arena)
	return core.PeerCache{QueryLoc: loc, Neighbors: arena[start:end:end]}, off, arena, nil
}

// decodeShare is decodeShareInto with fresh storage per share.
func decodeShare(buf []byte, off int) (core.PeerCache, int, error) {
	pc, next, _, err := decodeShareInto(buf, off, nil)
	return pc, next, err
}

func decodeShareReply(buf []byte) (Message, error) {
	if len(buf) < headerSize+4+1+pointSize+4 {
		return Message{}, ErrTruncated
	}
	r := ShareReply{ProbeID: binary.LittleEndian.Uint32(buf[headerSize:])}
	switch buf[headerSize+4] {
	case 0:
		// Canonical empty reply: zero location bits, zero neighbors.
		if len(buf) != ShareReplySize(0) {
			return Message{}, ErrTruncated
		}
		for _, b := range buf[headerSize+5:] {
			if b != 0 {
				return Message{}, fmt.Errorf("%w: empty share reply carries data", ErrBadValue)
			}
		}
		return Message{Type: TypeShareReply, Share: r}, nil
	case 1:
		pc, off, err := decodeShare(buf, headerSize+5)
		if err != nil {
			return Message{}, err
		}
		if off != len(buf) {
			return Message{}, ErrTruncated
		}
		if len(pc.Neighbors) == 0 {
			return Message{}, fmt.Errorf("%w: share reply flagged non-empty with 0 neighbors", ErrBadValue)
		}
		r.Has, r.Cache = true, pc
		return Message{Type: TypeShareReply, Share: r}, nil
	default:
		return Message{}, fmt.Errorf("%w: share flag %d", ErrBadValue, buf[headerSize+4])
	}
}

func decodePeerShares(buf []byte) (Message, error) {
	if len(buf) < headerSize+4+4+4 {
		return Message{}, ErrTruncated
	}
	ps := PeerShares{
		ReqID:        binary.LittleEndian.Uint32(buf[headerSize:]),
		PeersInRange: int(binary.LittleEndian.Uint32(buf[headerSize+4:])),
	}
	m := int(binary.LittleEndian.Uint32(buf[headerSize+8:]))
	// Each share block is at least pointSize+4 bytes, so m is bounded by the
	// message length before anything is allocated.
	if m > (len(buf)-headerSize-12)/(pointSize+4) {
		return Message{}, ErrTruncated
	}
	off := headerSize + 12
	if m > 0 {
		ps.Shares = make([]core.PeerCache, 0, m)
	}
	for i := 0; i < m; i++ {
		pc, next, err := decodeShare(buf, off)
		if err != nil {
			return Message{}, err
		}
		if len(pc.Neighbors) == 0 {
			return Message{}, fmt.Errorf("%w: relayed share with 0 neighbors", ErrBadValue)
		}
		ps.Shares = append(ps.Shares, pc)
		off = next
	}
	if off != len(buf) {
		return Message{}, ErrTruncated
	}
	return Message{Type: TypePeerShares, Shares: ps}, nil
}

// SharesScratch is reusable storage for DecodePeerSharesInto: the share
// slice and one POI arena backing every share's Neighbors. A receiver that
// decodes PeerShares in a loop keeps one scratch and stops allocating once
// it has grown to the working-set size.
type SharesScratch struct {
	shares []core.PeerCache
	arena  []core.POI
}

// DecodePeerSharesInto parses a TypePeerShares message like Decode, but
// decodes into sc's reusable storage instead of fresh allocations. The
// returned PeerShares (its Shares slice and every Neighbors slice) aliases
// sc and is valid only until the next call with the same scratch — callers
// that retain shares must copy them (which every cache-storing path in this
// repo already does). Validation is byte-for-byte the same as Decode's:
// both run the single decodeShareInto path.
func DecodePeerSharesInto(buf []byte, sc *SharesScratch) (PeerShares, error) {
	typ, err := PeekType(buf)
	if err != nil {
		return PeerShares{}, err
	}
	if typ != TypePeerShares {
		return PeerShares{}, fmt.Errorf("%w: %d (want PeerShares)", ErrBadType, typ)
	}
	if len(buf) < headerSize+4+4+4 {
		return PeerShares{}, ErrTruncated
	}
	ps := PeerShares{
		ReqID:        binary.LittleEndian.Uint32(buf[headerSize:]),
		PeersInRange: int(binary.LittleEndian.Uint32(buf[headerSize+4:])),
	}
	m := int(binary.LittleEndian.Uint32(buf[headerSize+8:]))
	if m > (len(buf)-headerSize-12)/(pointSize+4) {
		return PeerShares{}, ErrTruncated
	}
	shares := sc.shares[:0]
	arena := sc.arena[:0]
	off := headerSize + 12
	for i := 0; i < m; i++ {
		var pc core.PeerCache
		pc, off, arena, err = decodeShareInto(buf, off, arena)
		if err != nil {
			sc.arena = arena
			return PeerShares{}, err
		}
		if len(pc.Neighbors) == 0 {
			sc.arena = arena
			return PeerShares{}, fmt.Errorf("%w: relayed share with 0 neighbors", ErrBadValue)
		}
		shares = append(shares, pc)
	}
	sc.shares, sc.arena = shares, arena
	if off != len(buf) {
		return PeerShares{}, ErrTruncated
	}
	if m > 0 {
		ps.Shares = shares
	}
	return ps, nil
}

func decodeCacheShare(buf []byte) (Message, error) {
	if len(buf) < headerSize+pointSize+4 {
		return Message{}, ErrTruncated
	}
	loc := getPoint(buf, headerSize)
	if !finite(loc) {
		return Message{}, ErrBadFloat
	}
	n := int(binary.LittleEndian.Uint32(buf[headerSize+pointSize:]))
	if len(buf) != CacheShareSize(n) {
		return Message{}, ErrTruncated
	}
	neighbors := make([]core.POI, n)
	off := headerSize + pointSize + 4
	for i := 0; i < n; i++ {
		id := int64(binary.LittleEndian.Uint64(buf[off:]))
		p := getPoint(buf, off+8)
		if !finite(p) {
			return Message{}, ErrBadFloat
		}
		neighbors[i] = core.POI{ID: id, Loc: p}
		off += poiSize
	}
	// Re-sorting on decode keeps the PeerCache invariant even against a
	// peer that serialized out of order.
	return Message{
		Type:  TypeCacheShare,
		Cache: core.NewPeerCache(loc, neighbors),
	}, nil
}

func finite(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}
