package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func TestPeerRequestRoundTrip(t *testing.T) {
	for _, r := range []PeerRequest{
		{ReqID: 1, Loc: geom.Pt(10, 20), Radius: 500},
		{ReqID: ^uint32(0), Loc: geom.Pt(-1e6, 1e6), Radius: 0},
		{ReqID: 0, Loc: geom.Pt(0, 0), Radius: 1e9},
	} {
		buf := EncodePeerRequest(r)
		if len(buf) != PeerRequestSize {
			t.Fatalf("size %d, want %d", len(buf), PeerRequestSize)
		}
		msg, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if msg.Type != TypePeerRequest || msg.PeerReq != r {
			t.Fatalf("round trip changed request: %+v != %+v", msg.PeerReq, r)
		}
		if !bytes.Equal(EncodePeerRequest(msg.PeerReq), buf) {
			t.Fatal("re-encode not canonical")
		}
	}
}

func TestPeerRequestRejectsBadRadius(t *testing.T) {
	for _, radius := range []float64{-1, math.Inf(1), math.NaN(), math.Copysign(0, -1)} {
		buf := appendHeader(nil, TypePeerRequest)
		buf = binary.LittleEndian.AppendUint32(buf, 1)
		buf = appendPoint(buf, geom.Pt(1, 2))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(radius))
		if _, err := Decode(buf); err == nil {
			t.Fatalf("radius %g accepted", radius)
		}
	}
}

func TestPeerProbeRoundTrip(t *testing.T) {
	for _, id := range []uint32{0, 7, ^uint32(0)} {
		buf := EncodePeerProbe(id)
		if len(buf) != PeerProbeSize {
			t.Fatalf("size %d, want %d", len(buf), PeerProbeSize)
		}
		msg, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if msg.Type != TypePeerProbe || msg.ProbeID != id {
			t.Fatalf("round trip changed probe id: %d != %d", msg.ProbeID, id)
		}
	}
}

func TestShareReplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 10, 100} {
		pc := samplePC(n, rng)
		buf := EncodeShareReply(42, true, pc)
		if len(buf) != ShareReplySize(n) {
			t.Fatalf("n=%d: size %d, want %d", n, len(buf), ShareReplySize(n))
		}
		msg, err := Decode(buf)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if msg.Type != TypeShareReply || msg.Share.ProbeID != 42 || !msg.Share.Has {
			t.Fatalf("n=%d: got %+v", n, msg.Share)
		}
		if len(msg.Share.Cache.Neighbors) != n || !msg.Share.Cache.QueryLoc.Eq(pc.QueryLoc) {
			t.Fatalf("n=%d: cache mismatch", n)
		}
		for i := range pc.Neighbors {
			if msg.Share.Cache.Neighbors[i] != pc.Neighbors[i] {
				t.Fatalf("n=%d: neighbor %d mismatch", n, i)
			}
		}
		if !bytes.Equal(AppendShareReply(nil, 42, true, msg.Share.Cache), buf) {
			t.Fatalf("n=%d: re-encode not canonical", n)
		}
	}
}

func TestShareReplyEmpty(t *testing.T) {
	// An empty reply is canonical regardless of the cache handed in.
	rng := rand.New(rand.NewSource(8))
	buf := EncodeShareReply(9, false, samplePC(3, rng))
	if len(buf) != ShareReplySize(0) {
		t.Fatalf("size %d, want %d", len(buf), ShareReplySize(0))
	}
	msg, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if msg.Share.ProbeID != 9 || msg.Share.Has || len(msg.Share.Cache.Neighbors) != 0 {
		t.Fatalf("got %+v", msg.Share)
	}
	if !bytes.Equal(EncodeShareReply(9, false, core.PeerCache{}), buf) {
		t.Fatal("re-encode not canonical")
	}
	// A cache with zero neighbors encodes as the canonical empty reply even
	// when flagged has=true.
	if !bytes.Equal(EncodeShareReply(9, true, core.PeerCache{QueryLoc: geom.Pt(1, 2)}), buf) {
		t.Fatal("empty cache with has=true not normalized")
	}
}

func TestShareReplyRejectsMalformed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pc := samplePC(3, rng)
	valid := EncodeShareReply(1, true, pc)

	// Unsorted neighbors.
	unsorted := append([]byte(nil), valid...)
	// Swap the first and last neighbor blocks (distinct distances with
	// probability 1 under the random sample).
	first := headerSize + 4 + 1 + pointSize + 4
	last := first + 2*poiSize
	tmp := make([]byte, poiSize)
	copy(tmp, unsorted[first:first+poiSize])
	copy(unsorted[first:first+poiSize], unsorted[last:last+poiSize])
	copy(unsorted[last:last+poiSize], tmp)
	if _, err := Decode(unsorted); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("unsorted share reply: err = %v, want ErrUnsorted", err)
	}

	// Non-canonical empty reply: flag 0 but stale location bits.
	dirty := EncodeShareReply(1, false, core.PeerCache{})
	dirty[headerSize+5] = 0xFF
	if _, err := Decode(dirty); !errors.Is(err, ErrBadValue) {
		t.Fatalf("dirty empty reply: err = %v, want ErrBadValue", err)
	}

	// has=1 with zero neighbors.
	zero := appendHeader(nil, TypeShareReply)
	zero = binary.LittleEndian.AppendUint32(zero, 1)
	zero = append(zero, 1)
	zero = appendPoint(zero, geom.Pt(1, 2))
	zero = binary.LittleEndian.AppendUint32(zero, 0)
	if _, err := Decode(zero); !errors.Is(err, ErrBadValue) {
		t.Fatalf("has=1 n=0 reply: err = %v, want ErrBadValue", err)
	}

	// Bad flag byte.
	badFlag := append([]byte(nil), valid...)
	badFlag[headerSize+4] = 2
	if _, err := Decode(badFlag); !errors.Is(err, ErrBadValue) {
		t.Fatalf("flag=2 reply: err = %v, want ErrBadValue", err)
	}

	// Oversized neighbor count (beyond MaxShareNeighbors) with a length
	// that matches, so only the cap can reject it. Build the count field
	// oversized but truncate the payload: the cap check runs first.
	big := appendHeader(nil, TypeShareReply)
	big = binary.LittleEndian.AppendUint32(big, 1)
	big = append(big, 1)
	big = appendPoint(big, geom.Pt(1, 2))
	big = binary.LittleEndian.AppendUint32(big, uint32(MaxShareNeighbors+1))
	if _, err := Decode(big); !errors.Is(err, ErrBadValue) {
		t.Fatalf("oversized share: err = %v, want ErrBadValue", err)
	}
}

func TestPeerSharesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, counts := range [][]int{nil, {3}, {1, 2, 5}, {4, 4, 4, 4}} {
		shares := make([]core.PeerCache, len(counts))
		for i, n := range counts {
			shares[i] = samplePC(n, rng)
		}
		ps := PeerShares{ReqID: 77, PeersInRange: len(counts) + 2, Shares: shares}
		buf := EncodePeerShares(ps)
		if len(buf) != PeerSharesSize(counts) {
			t.Fatalf("counts %v: size %d, want %d", counts, len(buf), PeerSharesSize(counts))
		}
		msg, err := Decode(buf)
		if err != nil {
			t.Fatalf("counts %v: decode: %v", counts, err)
		}
		if msg.Type != TypePeerShares || msg.Shares.ReqID != 77 ||
			msg.Shares.PeersInRange != len(counts)+2 || len(msg.Shares.Shares) != len(counts) {
			t.Fatalf("counts %v: got %+v", counts, msg.Shares)
		}
		for i := range shares {
			got := msg.Shares.Shares[i]
			if !got.QueryLoc.Eq(shares[i].QueryLoc) || len(got.Neighbors) != len(shares[i].Neighbors) {
				t.Fatalf("counts %v: share %d mismatch", counts, i)
			}
			for j := range shares[i].Neighbors {
				if got.Neighbors[j] != shares[i].Neighbors[j] {
					t.Fatalf("counts %v: share %d neighbor %d mismatch", counts, i, j)
				}
			}
		}
		if !bytes.Equal(AppendPeerShares(nil, msg.Shares), buf) {
			t.Fatalf("counts %v: re-encode not canonical", counts)
		}
	}
}

func TestPeerSharesRejectsMalformed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := PeerShares{ReqID: 1, PeersInRange: 1, Shares: []core.PeerCache{samplePC(2, rng)}}
	valid := EncodePeerShares(ps)

	// Share count larger than the bytes can hold.
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[headerSize+8:], 1<<30)
	if _, err := Decode(huge); !errors.Is(err, ErrTruncated) {
		t.Fatalf("huge count: err = %v, want ErrTruncated", err)
	}

	// Trailing garbage after the last share.
	trailing := append(append([]byte(nil), valid...), 0)
	if _, err := Decode(trailing); !errors.Is(err, ErrTruncated) {
		t.Fatalf("trailing byte: err = %v, want ErrTruncated", err)
	}

	// Empty share inside the aggregate.
	empty := appendHeader(nil, TypePeerShares)
	empty = binary.LittleEndian.AppendUint32(empty, 1)
	empty = binary.LittleEndian.AppendUint32(empty, 1)
	empty = binary.LittleEndian.AppendUint32(empty, 1)
	empty = appendPoint(empty, geom.Pt(1, 2))
	empty = binary.LittleEndian.AppendUint32(empty, 0)
	if _, err := Decode(empty); !errors.Is(err, ErrBadValue) {
		t.Fatalf("empty inner share: err = %v, want ErrBadValue", err)
	}
}

// The append-style encoders must produce the same bytes as the allocating
// ones and compose onto a shared buffer without interfering.
func TestAppendEncodersMatchEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pc := samplePC(5, rng)
	ans := sampleAnswer(3, 4, rng)
	buf := make([]byte, 0, 64)

	buf = AppendAnswer(buf[:0], ans)
	if !bytes.Equal(buf, EncodeAnswer(ans)) {
		t.Fatal("AppendAnswer differs from EncodeAnswer")
	}
	buf = AppendError(buf[:0], ErrorMsg{ReqID: 9, Code: ErrCodeTooLarge})
	if !bytes.Equal(buf, EncodeError(ErrorMsg{ReqID: 9, Code: ErrCodeTooLarge})) {
		t.Fatal("AppendError differs from EncodeError")
	}
	buf = AppendCacheShare(buf[:0], pc)
	if !bytes.Equal(buf, EncodeCacheShare(pc)) {
		t.Fatal("AppendCacheShare differs from EncodeCacheShare")
	}
	buf = AppendShareReply(buf[:0], 2, true, pc)
	if !bytes.Equal(buf, EncodeShareReply(2, true, pc)) {
		t.Fatal("AppendShareReply differs from EncodeShareReply")
	}
	ps := PeerShares{ReqID: 1, PeersInRange: 3, Shares: []core.PeerCache{pc}}
	buf = AppendPeerShares(buf[:0], ps)
	if !bytes.Equal(buf, EncodePeerShares(ps)) {
		t.Fatal("AppendPeerShares differs from EncodePeerShares")
	}
	buf = AppendPeerProbe(buf[:0], 99)
	if !bytes.Equal(buf, EncodePeerProbe(99)) {
		t.Fatal("AppendPeerProbe differs from EncodePeerProbe")
	}
	buf = AppendPosition(buf[:0], geom.Pt(3, 4))
	if !bytes.Equal(buf, EncodePosition(geom.Pt(3, 4))) {
		t.Fatal("AppendPosition differs from EncodePosition")
	}
}

// PeekType must agree with Decode on both the type of every valid message
// and the rejection of every broken header.
func TestPeekType(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, buf := range [][]byte{
		EncodeCacheRequest(),
		EncodePosition(geom.Pt(1, 2)),
		EncodePeerProbe(7),
		EncodePeerShares(PeerShares{ReqID: 1, Shares: []core.PeerCache{samplePC(2, rng)}}),
	} {
		typ, err := PeekType(buf)
		if err != nil {
			t.Fatalf("PeekType: %v", err)
		}
		msg, err := Decode(buf)
		if err != nil || msg.Type != typ {
			t.Fatalf("PeekType %d disagrees with Decode %d (%v)", typ, msg.Type, err)
		}
	}
	for _, bad := range [][]byte{nil, []byte("SEN"), []byte("XENN\x01\x03"), []byte("SENN\x09\x03")} {
		if _, err := PeekType(bad); err == nil {
			t.Fatalf("PeekType accepted %q", bad)
		}
	}
}

// DecodePeerSharesInto must be observably identical to the generic Decode —
// same accepted messages, same decoded values, same rejections — while
// reusing one scratch across calls. This pins the scratch path to the
// canonical validation the fuzz targets exercise through Decode.
func TestDecodePeerSharesIntoMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var sc SharesScratch
	// Several decode rounds through the SAME scratch, with shrinking and
	// growing share counts, so reuse (not just first use) is what's tested.
	for round, counts := range [][]int{{3}, {1, 2, 5}, nil, {4, 4, 4, 4}, {2}} {
		shares := make([]core.PeerCache, len(counts))
		for i, n := range counts {
			shares[i] = samplePC(n, rng)
		}
		ps := PeerShares{ReqID: uint32(round), PeersInRange: len(counts) + 1, Shares: shares}
		buf := EncodePeerShares(ps)

		want, err := Decode(buf)
		if err != nil {
			t.Fatalf("round %d: Decode: %v", round, err)
		}
		got, err := DecodePeerSharesInto(buf, &sc)
		if err != nil {
			t.Fatalf("round %d: DecodePeerSharesInto: %v", round, err)
		}
		if got.ReqID != want.Shares.ReqID || got.PeersInRange != want.Shares.PeersInRange ||
			len(got.Shares) != len(want.Shares.Shares) {
			t.Fatalf("round %d: got %+v, want %+v", round, got, want.Shares)
		}
		for i := range got.Shares {
			w := want.Shares.Shares[i]
			g := got.Shares[i]
			if !g.QueryLoc.Eq(w.QueryLoc) || len(g.Neighbors) != len(w.Neighbors) {
				t.Fatalf("round %d: share %d mismatch", round, i)
			}
			for j := range w.Neighbors {
				if g.Neighbors[j] != w.Neighbors[j] {
					t.Fatalf("round %d: share %d neighbor %d mismatch", round, i, j)
				}
			}
		}
		// The decoded result must re-encode to the input bytes, same as the
		// canonical-encoding invariant Decode carries.
		if !bytes.Equal(AppendPeerShares(nil, got), buf) {
			t.Fatalf("round %d: scratch decode not canonical", round)
		}
	}

	// Rejections must match Decode's rejections exactly.
	valid := EncodePeerShares(PeerShares{ReqID: 1, PeersInRange: 1, Shares: []core.PeerCache{samplePC(2, rng)}})
	for name, corrupt := range map[string][]byte{
		"wrong type":     EncodePosition(geom.Pt(1, 2)),
		"short":          valid[:headerSize+4],
		"trailing":       append(append([]byte(nil), valid...), 0),
		"bad magic":      append([]byte("XENN"), valid[4:]...),
		"unsorted share": nil, // built below
	} {
		if name == "unsorted share" {
			corrupt = appendHeader(nil, TypePeerShares)
			corrupt = binary.LittleEndian.AppendUint32(corrupt, 1)
			corrupt = binary.LittleEndian.AppendUint32(corrupt, 1)
			corrupt = binary.LittleEndian.AppendUint32(corrupt, 1)
			corrupt = appendPoint(corrupt, geom.Pt(0, 0))
			corrupt = binary.LittleEndian.AppendUint32(corrupt, 2)
			corrupt = binary.LittleEndian.AppendUint64(corrupt, 1)
			corrupt = appendPoint(corrupt, geom.Pt(5, 0))
			corrupt = binary.LittleEndian.AppendUint64(corrupt, 2)
			corrupt = appendPoint(corrupt, geom.Pt(1, 0))
		}
		_, decErr := Decode(corrupt)
		_, scErr := DecodePeerSharesInto(corrupt, &sc)
		wrongType := false
		if _, err := PeekType(corrupt); err == nil {
			wrongType = corrupt[5] != TypePeerShares
		}
		switch {
		case wrongType:
			if scErr == nil {
				t.Fatalf("%s: scratch decode accepted a non-PeerShares message", name)
			}
		case (decErr == nil) != (scErr == nil):
			t.Fatalf("%s: Decode err=%v, scratch err=%v", name, decErr, scErr)
		}
	}

	// The scratch must still work after error paths.
	if _, err := DecodePeerSharesInto(valid, &sc); err != nil {
		t.Fatalf("scratch poisoned by error path: %v", err)
	}
}
