package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// sanitize maps arbitrary floats into a bounded coordinate.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e5)
}

// Any batch of points must be fully retrievable through a covering search,
// and the tree invariants must hold afterwards.
func TestInsertRetrieveQuick(t *testing.T) {
	f := func(coords []float64) bool {
		tr := New(6)
		n := len(coords) / 2
		for i := 0; i < n; i++ {
			tr.InsertPoint(geom.Pt(sanitize(coords[2*i]), sanitize(coords[2*i+1])), i)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		found := map[int]bool{}
		tr.Search(geom.NewRect(geom.Pt(-1e6, -1e6), geom.Pt(1e6, 1e6)), func(_ geom.Rect, d any) bool {
			found[d.(int)] = true
			return true
		})
		return len(found) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Inserting then deleting any subset must leave exactly the complement, with
// invariants intact at every step.
func TestInsertDeleteComplementQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%100) + 1
		tr := New(5)
		pts := make([]geom.Point, count)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			tr.InsertPoint(pts[i], i)
		}
		removed := map[int]bool{}
		for i := 0; i < count; i++ {
			if rng.Float64() < 0.5 {
				if !tr.DeletePoint(pts[i], i) {
					t.Logf("delete %d failed", i)
					return false
				}
				removed[i] = true
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		if tr.Len() != count-len(removed) {
			return false
		}
		left := map[int]bool{}
		tr.All(func(_ geom.Rect, d any) bool { left[d.(int)] = true; return true })
		for i := 0; i < count; i++ {
			if removed[i] == left[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
