package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(nil, 30)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty bulk load: len %d height %d", tr.Len(), tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadInvariantsAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Sizes chosen to hit the awkward remainders: just above one node, a
	// perfect square of nodes, one item over, etc.
	for _, n := range []int{1, 2, 4, 5, 29, 30, 31, 60, 61, 899, 900, 901, 4000, 30*30*30 + 1} {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		}
		tr := BulkLoadPoints(pts, nil, 30)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Everything retrievable.
		found := map[int]bool{}
		tr.All(func(_ geom.Rect, d any) bool { found[d.(int)] = true; return true })
		if len(found) != n {
			t.Fatalf("n=%d: retrieved %d", n, len(found))
		}
	}
}

func TestBulkLoadSearchMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 3000
	pts := make([]geom.Point, n)
	inc := New(30)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		inc.InsertPoint(pts[i], i)
	}
	bulk := BulkLoadPoints(pts, nil, 30)
	for trial := 0; trial < 40; trial++ {
		q := geom.NewRect(
			geom.Pt(rng.Float64()*1000, rng.Float64()*1000),
			geom.Pt(rng.Float64()*1000, rng.Float64()*1000),
		)
		a, b := map[int]bool{}, map[int]bool{}
		inc.Search(q, func(_ geom.Rect, d any) bool { a[d.(int)] = true; return true })
		bulk.Search(q, func(_ geom.Rect, d any) bool { b[d.(int)] = true; return true })
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(a), len(b))
		}
		for i := range a {
			if !b[i] {
				t.Fatalf("trial %d: item %d missing from bulk tree", trial, i)
			}
		}
	}
}

// Packed trees should be shallower or equal in height and never taller than
// incrementally built ones, thanks to full nodes.
func TestBulkLoadUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	pts := make([]geom.Point, n)
	inc := New(30)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*48280, rng.Float64()*48280)
		inc.InsertPoint(pts[i], i)
	}
	bulk := BulkLoadPoints(pts, nil, 30)
	if bulk.Height() > inc.Height() {
		t.Errorf("bulk height %d exceeds incremental %d", bulk.Height(), inc.Height())
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Bulk delete and reinsert must keep working on a packed tree.
	for i := 0; i < 500; i++ {
		if !bulk.DeletePoint(pts[i], i) {
			t.Fatalf("delete %d failed on packed tree", i)
		}
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatalf("after deletes: %v", err)
	}
	bulk.InsertPoint(geom.Pt(1, 1), 999999)
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatalf("after insert: %v", err)
	}
}

func TestBulkLoadWithData(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)}
	tr := BulkLoadPoints(pts, []any{"a", "b"}, 4)
	seen := map[string]bool{}
	tr.All(func(_ geom.Rect, d any) bool { seen[d.(string)] = true; return true })
	if !seen["a"] || !seen["b"] {
		t.Errorf("data lost: %v", seen)
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	items := make([]BulkItem, n)
	for i := range items {
		items[i] = BulkItem{
			Rect: geom.RectFromPoint(geom.Pt(rng.Float64()*1e5, rng.Float64()*1e5)),
			Data: i,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoad(items, 30)
	}
}
