// Package rtree implements the R*-tree of Beckmann, Kriegel, Schneider and
// Seeger (SIGMOD 1990), the disk-based spatial index the paper's database
// server uses to store points of interest. It provides insertion with forced
// reinsertion, the R* topological split, deletion with tree condensation,
// rectangle range search, and a node traversal API with page-access
// accounting that the kNN algorithms in internal/nn build on.
//
// The paper configures the branching factor of both index and leaf nodes to
// 30 (§4.4); DefaultMaxEntries matches that.
package rtree

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/geom"
)

const (
	// DefaultMaxEntries is the paper's branching factor for index and leaf
	// nodes.
	DefaultMaxEntries = 30
	// reinsertFraction is the share of entries evicted by forced reinsertion
	// on the first overflow of a level, p = 30% of M as recommended by the
	// R*-tree authors.
	reinsertFraction = 0.3
)

// entry is a slot in a node: a bounding rectangle plus either a child node
// (inner levels) or user data (leaf level).
type entry struct {
	rect  geom.Rect
	child *node // nil at leaf level
	data  any   // nil at inner levels
}

type node struct {
	leaf    bool
	level   int // 0 = leaf
	entries []entry
}

func (n *node) bounds() geom.Rect {
	r := geom.EmptyRect()
	for i := range n.entries {
		r = r.Union(n.entries[i].rect)
	}
	return r
}

// Tree is an R*-tree mapping rectangles (usually degenerate point rectangles)
// to opaque values. The zero value is not usable; construct with New.
// Tree is not safe for concurrent mutation; concurrent read-only use —
// including the access counter, which is atomic — is safe. Callers that need
// a per-query access delta under concurrent readers should count through
// their own traversal wrapper (nn.CountedSource) instead of differencing
// AccessCount, which observes every concurrent reader at once.
type Tree struct {
	root       *node
	minEntries int
	maxEntries int
	size       int
	accesses   atomic.Int64
}

// New returns an empty tree with the given maximum node fan-out. The minimum
// fill is set to 40 % of max, the R*-tree authors' recommendation. maxEntries
// must be at least 4.
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		panic(fmt.Sprintf("rtree: maxEntries must be >= 4, got %d", maxEntries))
	}
	minEntries := maxEntries * 2 / 5
	if minEntries < 2 {
		minEntries = 2
	}
	return &Tree{
		root:       &node{leaf: true, level: 0},
		minEntries: minEntries,
		maxEntries: maxEntries,
	}
}

// NewDefault returns an empty tree with the paper's branching factor of 30.
func NewDefault() *Tree { return New(DefaultMaxEntries) }

// Len returns the number of stored values.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels in the tree (1 for a tree that is a
// single leaf).
func (t *Tree) Height() int { return t.root.level + 1 }

// Bounds returns the MBR of all stored values.
func (t *Tree) Bounds() geom.Rect { return t.root.bounds() }

// AccessCount returns the number of node (page) reads performed through the
// query APIs — Search and the Node traversal — since the last reset. Insert
// and Delete do not contribute: the paper's PAR metric counts query-time
// accesses only.
func (t *Tree) AccessCount() int64 { return t.accesses.Load() }

// ResetAccessCount zeroes the page-access counter.
func (t *Tree) ResetAccessCount() { t.accesses.Store(0) }

// InsertPoint stores data under the degenerate rectangle at p.
func (t *Tree) InsertPoint(p geom.Point, data any) {
	t.Insert(geom.RectFromPoint(p), data)
}

// Insert stores data under rect.
func (t *Tree) Insert(rect geom.Rect, data any) {
	t.insertEntry(entry{rect: rect, data: data}, 0, make(map[int]bool))
	t.size++
}

// insertEntry inserts e at the given level. reinserted tracks which levels
// already performed a forced reinsertion during the current outer insert so
// each level reinserts at most once (the R* rule).
func (t *Tree) insertEntry(e entry, level int, reinserted map[int]bool) {
	path := t.choosePath(e.rect, level)
	target := path[len(path)-1]
	target.entries = append(target.entries, e)
	// Walk back up, handling overflow and tightening parent rectangles.
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.entries) > t.maxEntries {
			t.overflow(path, i, reinserted)
		}
	}
}

// choosePath descends from the root to the node at the target level whose
// entry chain should receive a rectangle, returning the nodes along the way.
// Subtree choice follows R*: minimum overlap enlargement when the children
// are leaves, minimum area enlargement otherwise, with area and size
// tie-breaks.
func (t *Tree) choosePath(r geom.Rect, level int) []*node {
	path := []*node{t.root}
	n := t.root
	for n.level > level {
		best := t.chooseSubtree(n, r)
		n.entries[best].rect = n.entries[best].rect.Union(r)
		n = n.entries[best].child
		path = append(path, n)
	}
	return path
}

func (t *Tree) chooseSubtree(n *node, r geom.Rect) int {
	if n.level == 1 {
		// Children are leaves: minimize overlap enlargement.
		best, bestOverlap, bestEnl, bestArea := -1, math.Inf(1), math.Inf(1), math.Inf(1)
		for i := range n.entries {
			enlarged := n.entries[i].rect.Union(r)
			var overlap, overlapNew float64
			for j := range n.entries {
				if j == i {
					continue
				}
				overlap += n.entries[i].rect.OverlapArea(n.entries[j].rect)
				overlapNew += enlarged.OverlapArea(n.entries[j].rect)
			}
			dOverlap := overlapNew - overlap
			enl := n.entries[i].rect.Enlargement(r)
			area := n.entries[i].rect.Area()
			if dOverlap < bestOverlap-1e-12 ||
				(almostEq(dOverlap, bestOverlap) && enl < bestEnl-1e-12) ||
				(almostEq(dOverlap, bestOverlap) && almostEq(enl, bestEnl) && area < bestArea) {
				best, bestOverlap, bestEnl, bestArea = i, dOverlap, enl, area
			}
		}
		return best
	}
	// Inner levels: minimize area enlargement, then area.
	best, bestEnl, bestArea := -1, math.Inf(1), math.Inf(1)
	for i := range n.entries {
		enl := n.entries[i].rect.Enlargement(r)
		area := n.entries[i].rect.Area()
		if enl < bestEnl-1e-12 || (almostEq(enl, bestEnl) && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }

// overflow resolves an overfull node at path[idx], either by forced
// reinsertion (first overflow at this level for the current insert, non-root)
// or by splitting.
func (t *Tree) overflow(path []*node, idx int, reinserted map[int]bool) {
	n := path[idx]
	isRoot := idx == 0
	if !isRoot && !reinserted[n.level] {
		reinserted[n.level] = true
		t.reinsert(path, idx, reinserted)
		return
	}
	t.split(path, idx, reinserted)
}

// reinsert removes the p entries of n farthest from its center and inserts
// them again from the top, which tends to rebalance hot regions without a
// split.
func (t *Tree) reinsert(path []*node, idx int, reinserted map[int]bool) {
	n := path[idx]
	center := n.bounds().Center()
	order := make([]int, len(n.entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da := n.entries[order[a]].rect.Center().Dist2(center)
		db := n.entries[order[b]].rect.Center().Dist2(center)
		return da > db // farthest first
	})
	p := int(reinsertFraction * float64(t.maxEntries))
	if p < 1 {
		p = 1
	}
	evictIdx := make(map[int]bool, p)
	for _, i := range order[:p] {
		evictIdx[i] = true
	}
	var evicted []entry
	kept := n.entries[:0]
	for i, e := range n.entries {
		if evictIdx[i] {
			evicted = append(evicted, e)
		} else {
			kept = append(kept, e)
		}
	}
	n.entries = kept
	t.tightenPath(path, idx)
	// Close reinsert: nearest evicted entries first.
	for i := len(evicted) - 1; i >= 0; i-- {
		t.insertEntry(evicted[i], n.level, reinserted)
	}
}

// tightenPath recomputes the parent rectangles covering path[idx] up to the
// root.
func (t *Tree) tightenPath(path []*node, idx int) {
	for i := idx - 1; i >= 0; i-- {
		parent, child := path[i], path[i+1]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].rect = child.bounds()
				break
			}
		}
	}
}

// split performs the R* topological split of path[idx] and pushes the new
// sibling into the parent, growing the tree at the root if needed.
func (t *Tree) split(path []*node, idx int, reinserted map[int]bool) {
	n := path[idx]
	left, right := t.chooseSplit(n)
	n.entries = left
	sibling := &node{leaf: n.leaf, level: n.level, entries: right}

	if idx == 0 {
		// Root split: grow the tree.
		newRoot := &node{
			leaf:  false,
			level: n.level + 1,
			entries: []entry{
				{rect: n.bounds(), child: n},
				{rect: sibling.bounds(), child: sibling},
			},
		}
		t.root = newRoot
		return
	}
	parent := path[idx-1]
	for j := range parent.entries {
		if parent.entries[j].child == n {
			parent.entries[j].rect = n.bounds()
			break
		}
	}
	parent.entries = append(parent.entries, entry{rect: sibling.bounds(), child: sibling})
	t.tightenPath(path, idx-1)
	if len(parent.entries) > t.maxEntries {
		t.overflow(path[:idx], idx-1, reinserted)
	}
}

// chooseSplit implements the R* split: pick the axis with the minimum sum of
// margins over all candidate distributions, then the distribution with the
// minimum overlap (area tie-break).
func (t *Tree) chooseSplit(n *node) (left, right []entry) {
	entries := n.entries
	m := t.minEntries
	M := len(entries) - 1 // entries holds M+1 items during overflow

	type distribution struct {
		left, right []entry
		margin      float64
		overlap     float64
		area        float64
	}
	axisDistributions := func(less func(a, b entry) bool) ([]distribution, float64) {
		sorted := make([]entry, len(entries))
		copy(sorted, entries)
		sort.SliceStable(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
		var dists []distribution
		var marginSum float64
		for k := m; k <= M+1-m; k++ {
			l, r := sorted[:k], sorted[k:]
			lb, rb := boundsOf(l), boundsOf(r)
			d := distribution{
				left:    l,
				right:   r,
				margin:  lb.Margin() + rb.Margin(),
				overlap: lb.OverlapArea(rb),
				area:    lb.Area() + rb.Area(),
			}
			dists = append(dists, d)
			marginSum += d.margin
		}
		return dists, marginSum
	}

	// Candidate sorts per axis: by lower then by upper coordinate. Summing
	// the margins of both sorts selects the split axis.
	xDists, xMargin := axisDistributions(func(a, b entry) bool {
		if a.rect.Min.X != b.rect.Min.X {
			return a.rect.Min.X < b.rect.Min.X
		}
		return a.rect.Max.X < b.rect.Max.X
	})
	xDists2, xMargin2 := axisDistributions(func(a, b entry) bool {
		if a.rect.Max.X != b.rect.Max.X {
			return a.rect.Max.X < b.rect.Max.X
		}
		return a.rect.Min.X < b.rect.Min.X
	})
	yDists, yMargin := axisDistributions(func(a, b entry) bool {
		if a.rect.Min.Y != b.rect.Min.Y {
			return a.rect.Min.Y < b.rect.Min.Y
		}
		return a.rect.Max.Y < b.rect.Max.Y
	})
	yDists2, yMargin2 := axisDistributions(func(a, b entry) bool {
		if a.rect.Max.Y != b.rect.Max.Y {
			return a.rect.Max.Y < b.rect.Max.Y
		}
		return a.rect.Min.Y < b.rect.Min.Y
	})

	var candidates []distribution
	if xMargin+xMargin2 <= yMargin+yMargin2 {
		candidates = append(xDists, xDists2...)
	} else {
		candidates = append(yDists, yDists2...)
	}
	best := candidates[0]
	for _, d := range candidates[1:] {
		if d.overlap < best.overlap-1e-12 ||
			(almostEq(d.overlap, best.overlap) && d.area < best.area) {
			best = d
		}
	}
	// Copy out: the slices alias sort buffers.
	left = append([]entry(nil), best.left...)
	right = append([]entry(nil), best.right...)
	return left, right
}

func boundsOf(es []entry) geom.Rect {
	r := geom.EmptyRect()
	for i := range es {
		r = r.Union(es[i].rect)
	}
	return r
}

// Delete removes one value equal to data stored under rect (comparison with
// ==). It reports whether a matching entry was found.
func (t *Tree) Delete(rect geom.Rect, data any) bool {
	path, entryIdx := t.findLeaf(t.root, nil, rect, data)
	if path == nil {
		return false
	}
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries[:entryIdx], leaf.entries[entryIdx+1:]...)
	t.size--
	t.condense(path)
	return true
}

// DeletePoint removes one value stored at point p.
func (t *Tree) DeletePoint(p geom.Point, data any) bool {
	return t.Delete(geom.RectFromPoint(p), data)
}

func (t *Tree) findLeaf(n *node, path []*node, rect geom.Rect, data any) ([]*node, int) {
	path = append(path, n)
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].data == data && n.entries[i].rect == rect {
				return path, i
			}
		}
		return nil, -1
	}
	for i := range n.entries {
		if n.entries[i].rect.ContainsRect(rect) {
			if p, idx := t.findLeaf(n.entries[i].child, path, rect, data); p != nil {
				return p, idx
			}
		}
	}
	return nil, -1
}

// condense removes underfull nodes along the path and reinserts their
// orphaned entries, then shrinks the root if it has a single child.
func (t *Tree) condense(path []*node) {
	var orphans []entry
	var orphanLevels []int
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		parent := path[i-1]
		if len(n.entries) < t.minEntries {
			// Remove n from its parent and queue its entries.
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, e)
				orphanLevels = append(orphanLevels, n.level)
			}
		} else {
			// Tighten the parent rectangle.
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries[j].rect = n.bounds()
					break
				}
			}
		}
	}
	for i, e := range orphans {
		t.insertEntry(e, orphanLevels[i], make(map[int]bool))
	}
	// Shrink a non-leaf root with a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if t.root.leaf {
		t.root.level = 0
	}
}

// Search invokes fn for every stored value whose rectangle intersects query,
// stopping early if fn returns false. Visited nodes count as page accesses.
func (t *Tree) Search(query geom.Rect, fn func(rect geom.Rect, data any) bool) {
	t.searchNode(t.root, query, fn)
}

func (t *Tree) searchNode(n *node, query geom.Rect, fn func(geom.Rect, any) bool) bool {
	t.accesses.Add(1)
	for i := range n.entries {
		if !n.entries[i].rect.Intersects(query) {
			continue
		}
		if n.leaf {
			if !fn(n.entries[i].rect, n.entries[i].data) {
				return false
			}
		} else if !t.searchNode(n.entries[i].child, query, fn) {
			return false
		}
	}
	return true
}

// All invokes fn for every stored value without counting page accesses. It is
// intended for tests and bulk export, not query processing.
func (t *Tree) All(fn func(rect geom.Rect, data any) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		for i := range n.entries {
			if n.leaf {
				if !fn(n.entries[i].rect, n.entries[i].data) {
					return false
				}
			} else if !walk(n.entries[i].child) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// Node is a read-only view of a tree node for query algorithms that manage
// their own traversal order (best-first kNN and friends). Obtaining a Node —
// via Root or Child — counts as one page access.
type Node struct {
	t *Tree
	n *node
}

// Root returns the root node, counting one page access. ok is false only for
// a tree with no entries at all (the empty root is still returned).
func (t *Tree) Root() (nd Node, ok bool) {
	t.accesses.Add(1)
	return Node{t: t, n: t.root}, len(t.root.entries) > 0
}

// IsLeaf reports whether the node's entries carry data rather than children.
func (nd Node) IsLeaf() bool { return nd.n.leaf }

// Len returns the number of entries in the node.
func (nd Node) Len() int { return len(nd.n.entries) }

// Rect returns the bounding rectangle of entry i.
func (nd Node) Rect(i int) geom.Rect { return nd.n.entries[i].rect }

// Data returns the value of leaf entry i.
func (nd Node) Data(i int) any { return nd.n.entries[i].data }

// Child fetches the child node of inner entry i, counting one page access.
func (nd Node) Child(i int) Node {
	nd.t.accesses.Add(1)
	return Node{t: nd.t, n: nd.n.entries[i].child}
}

// CheckInvariants validates the structural invariants of the tree and
// returns a descriptive error on the first violation. It is exported for use
// by tests and fuzzing harnesses.
func (t *Tree) CheckInvariants() error {
	count := 0
	var walk func(n *node, isRoot bool, wantLevel int) error
	walk = func(n *node, isRoot bool, wantLevel int) error {
		if n.level != wantLevel {
			return fmt.Errorf("node level %d, want %d", n.level, wantLevel)
		}
		if n.leaf != (n.level == 0) {
			return fmt.Errorf("leaf flag %v inconsistent with level %d", n.leaf, n.level)
		}
		if len(n.entries) > t.maxEntries {
			return fmt.Errorf("node has %d entries, max %d", len(n.entries), t.maxEntries)
		}
		if !isRoot && len(n.entries) < t.minEntries {
			return fmt.Errorf("non-root node has %d entries, min %d", len(n.entries), t.minEntries)
		}
		if isRoot && !n.leaf && len(n.entries) < 2 {
			return fmt.Errorf("inner root has %d entries, want >= 2", len(n.entries))
		}
		for i := range n.entries {
			e := n.entries[i]
			if n.leaf {
				count++
				if e.child != nil {
					return fmt.Errorf("leaf entry has child")
				}
				continue
			}
			if e.child == nil {
				return fmt.Errorf("inner entry missing child")
			}
			cb := e.child.bounds()
			if !e.rect.ContainsRect(cb) {
				return fmt.Errorf("entry rect %v does not contain child bounds %v", e.rect, cb)
			}
			if err := walk(e.child, false, wantLevel-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, true, t.root.level); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("tree size %d, counted %d leaf entries", t.size, count)
	}
	return nil
}
