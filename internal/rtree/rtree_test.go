package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randPoint(rng *rand.Rand, span float64) geom.Point {
	return geom.Pt(rng.Float64()*span, rng.Float64()*span)
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(3) should panic")
		}
	}()
	New(3)
}

func TestEmptyTree(t *testing.T) {
	tr := NewDefault()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("Height = %d", tr.Height())
	}
	if !tr.Bounds().IsEmpty() {
		t.Error("empty tree should have empty bounds")
	}
	found := 0
	tr.Search(geom.NewRect(geom.Pt(-1e9, -1e9), geom.Pt(1e9, 1e9)), func(geom.Rect, any) bool {
		found++
		return true
	})
	if found != 0 {
		t.Errorf("search on empty tree found %d", found)
	}
	if _, ok := tr.Root(); ok {
		t.Error("Root ok should be false for empty tree")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New(4)
	pts := []geom.Point{
		geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(3, 3), geom.Pt(10, 10),
		geom.Pt(11, 11), geom.Pt(12, 12), geom.Pt(20, 1), geom.Pt(21, 2),
	}
	for i, p := range pts {
		tr.InsertPoint(p, i)
	}
	if tr.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(pts))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	var got []int
	tr.Search(geom.NewRect(geom.Pt(0, 0), geom.Pt(5, 5)), func(_ geom.Rect, d any) bool {
		got = append(got, d.(int))
		return true
	})
	sort.Ints(got)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("search got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("search got %v, want %v", got, want)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.InsertPoint(geom.Pt(float64(i), 0), i)
	}
	count := 0
	tr.Search(geom.NewRect(geom.Pt(-1, -1), geom.Pt(200, 1)), func(geom.Rect, any) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d, want 5", count)
	}
}

// Randomized search correctness against a brute-force reference, across
// several branching factors to exercise splits at every level.
func TestSearchMatchesBruteForce(t *testing.T) {
	for _, maxEntries := range []int{4, 8, 30} {
		rng := rand.New(rand.NewSource(int64(maxEntries)))
		tr := New(maxEntries)
		const n = 2000
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = randPoint(rng, 1000)
			tr.InsertPoint(pts[i], i)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("maxEntries=%d invariants: %v", maxEntries, err)
		}
		for q := 0; q < 50; q++ {
			query := geom.NewRect(randPoint(rng, 1000), randPoint(rng, 1000))
			want := map[int]bool{}
			for i, p := range pts {
				if query.Contains(p) {
					want[i] = true
				}
			}
			got := map[int]bool{}
			tr.Search(query, func(_ geom.Rect, d any) bool {
				got[d.(int)] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("maxEntries=%d query %v: got %d results, want %d",
					maxEntries, query, len(got), len(want))
			}
			for i := range want {
				if !got[i] {
					t.Fatalf("maxEntries=%d query %v: missing %d", maxEntries, query, i)
				}
			}
		}
	}
}

func TestInsertRects(t *testing.T) {
	tr := New(5)
	rng := rand.New(rand.NewSource(77))
	type item struct{ r geom.Rect }
	var items []geom.Rect
	for i := 0; i < 500; i++ {
		r := geom.NewRect(randPoint(rng, 500), randPoint(rng, 500))
		items = append(items, r)
		tr.Insert(r, i)
	}
	_ = item{}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	for q := 0; q < 30; q++ {
		query := geom.NewRect(randPoint(rng, 500), randPoint(rng, 500))
		want := 0
		for _, r := range items {
			if r.Intersects(query) {
				want++
			}
		}
		got := 0
		tr.Search(query, func(geom.Rect, any) bool { got++; return true })
		if got != want {
			t.Fatalf("rect search got %d, want %d", got, want)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New(4)
	rng := rand.New(rand.NewSource(42))
	const n = 800
	pts := make([]geom.Point, n)
	alive := make(map[int]bool, n)
	for i := range pts {
		pts[i] = randPoint(rng, 300)
		tr.InsertPoint(pts[i], i)
		alive[i] = true
	}
	// Delete a random 60 % interleaved with invariant checks.
	order := rng.Perm(n)
	for k, i := range order[:n*6/10] {
		if !tr.DeletePoint(pts[i], i) {
			t.Fatalf("delete %d failed", i)
		}
		delete(alive, i)
		if k%50 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("invariants after %d deletes: %v", k+1, err)
			}
		}
	}
	if tr.Len() != len(alive) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(alive))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	got := map[int]bool{}
	tr.All(func(_ geom.Rect, d any) bool { got[d.(int)] = true; return true })
	if len(got) != len(alive) {
		t.Fatalf("All found %d, want %d", len(got), len(alive))
	}
	for i := range alive {
		if !got[i] {
			t.Fatalf("surviving item %d missing", i)
		}
	}
	// Deleting something absent must fail without corrupting the tree.
	if tr.DeletePoint(geom.Pt(-1, -1), 12345) {
		t.Error("delete of absent item reported success")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after failed delete: %v", err)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New(4)
	rng := rand.New(rand.NewSource(9))
	const n = 300
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = randPoint(rng, 100)
		tr.InsertPoint(pts[i], i)
	}
	for i := range pts {
		if !tr.DeletePoint(pts[i], i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after deleting all = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("Height after deleting all = %d, want 1", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Tree remains usable.
	tr.InsertPoint(geom.Pt(5, 5), "again")
	found := false
	tr.Search(geom.RectFromPoint(geom.Pt(5, 5)), func(_ geom.Rect, d any) bool {
		found = d.(string) == "again"
		return true
	})
	if !found {
		t.Error("reuse after full deletion failed")
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	tr := New(6)
	rng := rand.New(rand.NewSource(1234))
	type rec struct {
		p  geom.Point
		id int
	}
	var live []rec
	nextID := 0
	for step := 0; step < 4000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			r := rec{p: randPoint(rng, 200), id: nextID}
			nextID++
			tr.InsertPoint(r.p, r.id)
			live = append(live, r)
		} else {
			i := rng.Intn(len(live))
			r := live[i]
			if !tr.DeletePoint(r.p, r.id) {
				t.Fatalf("step %d: delete %d failed", step, r.id)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d invariants: %v", step, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("step %d: Len %d, want %d", step, tr.Len(), len(live))
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New(4)
	p := geom.Pt(7, 7)
	for i := 0; i < 50; i++ {
		tr.InsertPoint(p, i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants with duplicates: %v", err)
	}
	count := 0
	tr.Search(geom.RectFromPoint(p), func(geom.Rect, any) bool { count++; return true })
	if count != 50 {
		t.Fatalf("found %d duplicates, want 50", count)
	}
	// Delete a specific duplicate by value.
	if !tr.DeletePoint(p, 25) {
		t.Fatal("delete of specific duplicate failed")
	}
	count = 0
	seen25 := false
	tr.Search(geom.RectFromPoint(p), func(_ geom.Rect, d any) bool {
		count++
		if d.(int) == 25 {
			seen25 = true
		}
		return true
	})
	if count != 49 || seen25 {
		t.Fatalf("after delete: count=%d seen25=%v", count, seen25)
	}
}

func TestAccessCounting(t *testing.T) {
	tr := New(4)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		tr.InsertPoint(randPoint(rng, 100), i)
	}
	if tr.AccessCount() != 0 {
		t.Fatalf("inserts should not count accesses, got %d", tr.AccessCount())
	}
	tr.Search(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)), func(geom.Rect, any) bool { return true })
	small := tr.AccessCount()
	if small < 1 {
		t.Fatal("search should count at least the root access")
	}
	tr.ResetAccessCount()
	tr.Search(geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)), func(geom.Rect, any) bool { return true })
	full := tr.AccessCount()
	if full <= small {
		t.Errorf("full-area search accesses (%d) should exceed small search (%d)", full, small)
	}
	tr.ResetAccessCount()
	nd, ok := tr.Root()
	if !ok {
		t.Fatal("Root not ok")
	}
	if tr.AccessCount() != 1 {
		t.Fatalf("Root should count 1 access, got %d", tr.AccessCount())
	}
	if !nd.IsLeaf() {
		_ = nd.Child(0)
		if tr.AccessCount() != 2 {
			t.Fatalf("Child should count 1 more access, got %d", tr.AccessCount())
		}
	}
}

func TestNodeTraversalSeesEverything(t *testing.T) {
	tr := New(5)
	rng := rand.New(rand.NewSource(8))
	want := map[int]bool{}
	for i := 0; i < 700; i++ {
		tr.InsertPoint(randPoint(rng, 50), i)
		want[i] = true
	}
	got := map[int]bool{}
	var walk func(nd Node)
	walk = func(nd Node) {
		for i := 0; i < nd.Len(); i++ {
			if nd.IsLeaf() {
				got[nd.Data(i).(int)] = true
				if !nd.Rect(i).ContainsRect(nd.Rect(i)) {
					t.Fatal("self containment must hold")
				}
			} else {
				child := nd.Child(i)
				cb := geom.EmptyRect()
				for j := 0; j < child.Len(); j++ {
					cb = cb.Union(child.Rect(j))
				}
				if !nd.Rect(i).ContainsRect(cb) {
					t.Fatalf("entry rect %v does not contain child bounds %v", nd.Rect(i), cb)
				}
				walk(child)
			}
		}
	}
	root, ok := tr.Root()
	if !ok {
		t.Fatal("Root not ok")
	}
	walk(root)
	if len(got) != len(want) {
		t.Fatalf("traversal saw %d items, want %d", len(got), len(want))
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := New(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		tr.InsertPoint(randPoint(rng, 10000), i)
	}
	h := tr.Height()
	// With fan-out 8 and min fill 3, height of 5000 items stays modest.
	if h < 3 || h > 7 {
		t.Errorf("height = %d, expected between 3 and 7", h)
	}
}

func TestClusteredInsertionKeepsInvariants(t *testing.T) {
	// Highly clustered data exercises forced reinsertion heavily.
	tr := New(10)
	rng := rand.New(rand.NewSource(13))
	for c := 0; c < 20; c++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		for i := 0; i < 200; i++ {
			p := geom.Pt(cx+rng.NormFloat64(), cy+rng.NormFloat64())
			tr.InsertPoint(p, c*200+i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if tr.Len() != 4000 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, b.N)
	for i := range pts {
		pts[i] = randPoint(rng, 1e5)
	}
	tr := NewDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.InsertPoint(pts[i], i)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := NewDefault()
	for i := 0; i < 100000; i++ {
		tr.InsertPoint(randPoint(rng, 1e5), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := randPoint(rng, 1e5)
		query := geom.NewRect(q, q.Add(geom.Pt(1000, 1000)))
		tr.Search(query, func(geom.Rect, any) bool { return true })
	}
}
