package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// BulkItem is one item for bulk loading.
type BulkItem struct {
	Rect geom.Rect
	Data any
}

// BulkLoad builds a tree over the items with the Sort-Tile-Recursive (STR)
// packing algorithm of Leutenegger, López and Edgington: items are sorted by
// x, cut into vertical slabs of √(n/M) tiles, each slab sorted by y and cut
// into full leaves. Packed trees have near-100 % node utilization, which
// makes index construction for large POI sets (the simulator's server
// start-up) far cheaper than one-by-one insertion and gives slightly better
// query page counts. maxEntries must be at least 4.
func BulkLoad(items []BulkItem, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(items) == 0 {
		return t
	}
	// Build the leaf level.
	leaves := strPack(items, maxEntries, func(its []BulkItem) *node {
		n := &node{leaf: true, level: 0}
		for _, it := range its {
			n.entries = append(n.entries, entry{rect: it.Rect, data: it.Data})
		}
		return n
	})
	t.size = len(items)
	// Pack upper levels until a single root remains.
	level := 1
	nodes := leaves
	for len(nodes) > 1 {
		parents := strPackNodes(nodes, maxEntries, level)
		nodes = parents
		level++
	}
	t.root = nodes[0]
	return t
}

// BulkLoadPoints is BulkLoad for point data.
func BulkLoadPoints(pts []geom.Point, data []any, maxEntries int) *Tree {
	items := make([]BulkItem, len(pts))
	for i, p := range pts {
		var d any
		if data != nil {
			d = data[i]
		} else {
			d = i
		}
		items[i] = BulkItem{Rect: geom.RectFromPoint(p), Data: d}
	}
	return BulkLoad(items, maxEntries)
}

// strPack tiles items into groups of up to M and materializes each group
// with mk. Both the slab cut and the within-slab cut distribute items as
// evenly as possible, so every produced node holds at least ⌊size/groups⌋
// entries — comfortably above the tree's minimum fill for every n > M
// (single-group inputs become the root, which is exempt).
func strPack(items []BulkItem, M int, mk func([]BulkItem) *node) []*node {
	its := make([]BulkItem, len(items))
	copy(its, items)
	sort.Slice(its, func(i, j int) bool {
		return its[i].Rect.Center().X < its[j].Rect.Center().X
	})
	groups := (len(its) + M - 1) / M
	slabCount := int(math.Ceil(math.Sqrt(float64(groups))))

	var out []*node
	for _, slab := range evenSplit(its, slabCount) {
		sort.Slice(slab, func(i, j int) bool {
			return slab[i].Rect.Center().Y < slab[j].Rect.Center().Y
		})
		slabGroups := (len(slab) + M - 1) / M
		for _, g := range evenSplit(slab, slabGroups) {
			out = append(out, mk(g))
		}
	}
	return out
}

// evenSplit cuts items into parts contiguous slices whose sizes differ by at
// most one.
func evenSplit(items []BulkItem, parts int) [][]BulkItem {
	if parts < 1 {
		parts = 1
	}
	if parts > len(items) {
		parts = len(items)
	}
	out := make([][]BulkItem, 0, parts)
	base, rem := len(items)/parts, len(items)%parts
	start := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, items[start:start+size])
		start += size
	}
	return out
}

// strPackNodes groups child nodes into parent nodes with the same tiling.
func strPackNodes(children []*node, M, level int) []*node {
	items := make([]BulkItem, len(children))
	for i, c := range children {
		items[i] = BulkItem{Rect: c.bounds(), Data: c}
	}
	return strPack(items, M, func(its []BulkItem) *node {
		n := &node{leaf: false, level: level}
		for _, it := range its {
			child := it.Data.(*node)
			n.entries = append(n.entries, entry{rect: child.bounds(), child: child})
		}
		return n
	})
}
