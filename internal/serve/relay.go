package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wire"
)

// The daemon-side peer relay gives networked clients the P2P channel the
// paper's hosts have over the air (§4.1): a client that wants peer caches
// sends PeerRequest with its position and transmission radius; the daemon —
// which already tracks every session's last streamed Position — plays the
// broadcast medium. It probes each connected session within the radius
// (PeerProbe), collects their ShareReply frames, and returns the aggregate
// to the requester as one PeerShares message. The requester then runs the
// exact same verification core (internal/client) a simulated host runs on
// its grid-swept peers.
//
// Every probed peer replies even when its cache is empty — that is what
// lets the relay complete on a countdown instead of always riding the
// timeout. The timeout (Options.RelayTimeout) and the disconnect path cover
// peers that die or stall mid-probe; late replies after either look like
// forged probe IDs and are counted, not forwarded.
//
// Concurrency: in-flight relays are striped across relayShards pending
// maps keyed by probe ID, so concurrent relays touch different locks; each
// relay's state transitions are ordered by its shard's mutex, the terminal
// transition (countdown reaching zero, timeout, or requester disconnect)
// flips done exactly once, and the PeerShares write to the requester always
// happens after the lock is released — no mutex is ever held across a
// transport write. The in-range sweep reads the sharded session directory
// (directory.go), scanning only the covered grid cells — it never takes the
// global Server.mu, so relay fan-out stays sublinear in the session count
// and free of global contention. The per-request scratch (target slice,
// pending state with its share slice, encode buffer) is pooled, keeping
// steady-state fan-out allocation-flat.

// defaultRelayTimeout bounds how long a relay waits for probed peers.
const defaultRelayTimeout = 2 * time.Second

// defaultMaxTxRange caps the transmission radius a client may request, so
// one session cannot conscript the whole service area as its neighborhood.
const defaultMaxTxRange = 10_000.0

// relayShards stripes the pending-relay table. Power of two; probe IDs are
// dealt round-robin, so consecutive relays land on distinct locks.
const relayShards = 16

// pendingRelay is one in-flight fan-out. Instances are pooled: the waiting
// map and shares slice survive recycling, so a steady relay load stops
// allocating once the pool is warm.
type pendingRelay struct {
	reqConn *WSConn
	reqID   uint32
	probeID uint32
	// waiting holds the probed sessions that have not replied yet; the
	// relay completes when it drains (or the timer / a disconnect ends it).
	waiting      map[*session]bool
	shares       []core.PeerCache
	peersInRange int
	timer        *time.Timer
	done         bool
}

// relayShard is one stripe of the pending table.
type relayShard struct {
	mu      sync.Mutex
	pending map[uint32]*pendingRelay
}

// relayTable is the daemon's in-flight relay state.
type relayTable struct {
	nextProbe atomic.Uint32
	shards    [relayShards]relayShard
}

// shard returns the stripe owning a probe ID.
func (t *relayTable) shard(probeID uint32) *relayShard {
	return &t.shards[probeID&(relayShards-1)]
}

// relayTargetPool recycles the per-request target snapshot slices.
var relayTargetPool = sync.Pool{
	New: func() any { s := make([]relayTarget, 0, 64); return &s },
}

// relayPendingPool recycles pendingRelay state (including the waiting map
// and the aggregated share slice's backing array).
var relayPendingPool = sync.Pool{
	New: func() any { return &pendingRelay{waiting: make(map[*session]bool)} },
}

// relayBufPool recycles relay encode buffers (probe frames and PeerShares
// deliveries). The batched and immediate writers both copy the payload into
// the connection's own buffer before returning, so recycling is safe.
var relayBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 256); return &b },
}

// recycleRelay returns a terminal pendingRelay to the pool. The caller owns
// pr exclusively: it has been removed from its shard's pending map, so no
// concurrent reply, drop, or timer path can find it anymore.
func recycleRelay(pr *pendingRelay) {
	clear(pr.waiting)
	for i := range pr.shares {
		pr.shares[i] = core.PeerCache{} // drop decoded-cache references
	}
	pr.reqConn = nil
	pr.shares = pr.shares[:0]
	pr.timer = nil
	pr.done = false
	relayPendingPool.Put(pr)
}

// peersInRangeBucket maps a peer count to its histogram bucket:
// 0, 1, 2-3, 4-7, 8-15, 16-31, 32+.
func peersInRangeBucket(n int) int {
	b := 0
	for n > 0 && b < peersInRangeBuckets-1 {
		b++
		n >>= 1
	}
	return b
}

// startRelay services one PeerRequest on the requester's connection
// goroutine. Zero peers in range short-circuits to an immediate empty
// PeerShares on the requester's own connection; otherwise the relay is
// registered and every target probed. The returned error is a requester
// write failure (the caller tears the connection down); probe failures to
// other sessions only shrink the countdown.
func (s *Server) startRelay(reqSess *session, ws *WSConn, req wire.PeerRequest) error {
	radius := req.Radius
	if radius > s.maxTxRange {
		radius = s.maxTxRange
	}
	s.stat.relayRequests.Add(1)

	// Snapshot the in-range targets from the spatial directory: connected
	// sessions (other than the requester) whose last streamed position lies
	// within the radius. Only the covered grid cells are scanned.
	tp := relayTargetPool.Get().(*[]relayTarget)
	targets := s.dir.collectTargets(reqSess, req.Loc, radius, (*tp)[:0])
	s.stat.peersInRange[peersInRangeBucket(len(targets))].Add(1)

	if len(targets) == 0 {
		*tp = targets
		relayTargetPool.Put(tp)
		bp := relayBufPool.Get().(*[]byte)
		buf := wire.AppendPeerShares((*bp)[:0], wire.PeerShares{ReqID: req.ReqID})
		err := ws.WriteBinaryBatched(buf)
		*bp = buf
		relayBufPool.Put(bp)
		return err
	}

	pr := relayPendingPool.Get().(*pendingRelay)
	pr.reqConn = ws
	pr.reqID = req.ReqID
	pr.peersInRange = len(targets)
	for _, t := range targets {
		pr.waiting[t.sess] = true
	}
	probeID := s.relay.nextProbe.Add(1)
	pr.probeID = probeID
	sh := s.relay.shard(probeID)
	sh.mu.Lock()
	if sh.pending == nil {
		sh.pending = make(map[uint32]*pendingRelay)
	}
	sh.pending[probeID] = pr
	// Arm the timer inside the registration critical section: any path that
	// finds pr in the pending map — including a reply racing in before this
	// goroutine proceeds — is then guaranteed to observe a non-nil timer at
	// its terminal transition.
	pr.timer = time.AfterFunc(s.relayTimeout, func() { s.relayExpired(probeID) })
	sh.mu.Unlock()

	// Probe outside every lock. A dead target's failed write just removes
	// it from the countdown, exactly like a disconnect. pr itself is never
	// touched from here on: the relay may complete — and pr be recycled —
	// while this loop is still probing, so it works off the local snapshot
	// and the probe ID alone.
	bp := relayBufPool.Get().(*[]byte)
	probe := wire.AppendPeerProbe((*bp)[:0], probeID)
	for _, t := range targets {
		if t.conn.WriteBinary(probe) != nil {
			s.relayDropPeer(probeID, t.sess)
		}
	}
	*bp = probe
	relayBufPool.Put(bp)
	clear(targets) // drop session references before pooling
	*tp = targets[:0]
	relayTargetPool.Put(tp)
	return nil
}

// handleShareReply services one ShareReply on the replying peer's
// connection goroutine. Unknown probe IDs — forged, duplicate, or simply
// late after a timeout — are counted and dropped without penalizing the
// connection: the race against the timer is legitimate, so it cannot be a
// protocol error.
func (s *Server) handleShareReply(from *session, sh wire.ShareReply) {
	st := s.relay.shard(sh.ProbeID)
	st.mu.Lock()
	pr := st.pending[sh.ProbeID]
	if pr == nil || !pr.waiting[from] {
		st.mu.Unlock()
		s.stat.relayUnknown.Add(1)
		return
	}
	delete(pr.waiting, from)
	if sh.Has {
		if len(sh.Cache.Neighbors) > s.maxAnswer {
			// An oversized share would be refused as an answer too; it does
			// not reach the requester.
			s.stat.relayRejected.Add(1)
		} else {
			pr.shares = append(pr.shares, sh.Cache)
		}
	}
	fire := len(pr.waiting) == 0 && !pr.done
	if fire {
		pr.done = true
		delete(st.pending, pr.probeID)
	}
	st.mu.Unlock()
	if fire {
		pr.timer.Stop()
		s.deliverRelay(pr)
		recycleRelay(pr)
	}
}

// relayDropPeer removes one probed session from a relay's countdown (failed
// probe write or disconnect), delivering the aggregate if it was the last.
func (s *Server) relayDropPeer(probeID uint32, sess *session) {
	st := s.relay.shard(probeID)
	st.mu.Lock()
	pr := st.pending[probeID]
	if pr == nil || !pr.waiting[sess] {
		st.mu.Unlock()
		return
	}
	delete(pr.waiting, sess)
	fire := len(pr.waiting) == 0 && !pr.done
	if fire {
		pr.done = true
		delete(st.pending, pr.probeID)
	}
	st.mu.Unlock()
	if fire {
		pr.timer.Stop()
		s.deliverRelay(pr)
		recycleRelay(pr)
	}
}

// relayExpired is the timer path: deliver whatever arrived in time. The
// probe ID (not the pendingRelay) names the relay, so a stale timer whose
// relay already completed — and whose state may have been recycled into a
// different relay — finds nothing in the map and leaves.
func (s *Server) relayExpired(probeID uint32) {
	st := s.relay.shard(probeID)
	st.mu.Lock()
	pr := st.pending[probeID]
	if pr == nil || pr.done {
		st.mu.Unlock()
		return
	}
	pr.done = true
	delete(st.pending, probeID)
	st.mu.Unlock()
	s.stat.relayTimeouts.Add(1)
	s.deliverRelay(pr)
	recycleRelay(pr)
}

// deliverRelay sends the aggregated PeerShares to the requester. Callers
// hold no locks and have already made the relay's terminal transition, so
// this runs exactly once per relay and owns pr exclusively.
func (s *Server) deliverRelay(pr *pendingRelay) {
	s.stat.relayShares.Add(int64(len(pr.shares)))
	bp := relayBufPool.Get().(*[]byte)
	buf := wire.AppendPeerShares((*bp)[:0], wire.PeerShares{
		ReqID:        pr.reqID,
		PeersInRange: pr.peersInRange,
		Shares:       pr.shares,
	})
	// An immediate write, not a batched one: delivery often runs on a peer's
	// connection goroutine, and the requester's own reader is blocked
	// waiting for exactly this message — it cannot flush its own batch.
	//simvet:discard — a failed delivery means the requester's transport died; its serveConn observes and accounts that on its next read
	_ = pr.reqConn.WriteBinary(buf)
	*bp = buf
	relayBufPool.Put(bp)
}

// dropConn detaches a finished connection from its session and settles
// every relay it touches: relays waiting on this session lose one countdown
// slot (completing if it was the last), and relays this connection
// requested are cancelled outright — there is nobody left to deliver to.
// Walks every shard of the pending table; disconnects are rare enough that
// the sweep is fine.
func (s *Server) dropConn(sess *session, ws *WSConn) {
	sess.mu.Lock()
	if sess.conn == ws {
		sess.conn = nil
	}
	sess.mu.Unlock()

	var fire []*pendingRelay
	var cancelled []*pendingRelay
	for i := range s.relay.shards {
		st := &s.relay.shards[i]
		st.mu.Lock()
		for id, pr := range st.pending {
			if pr.reqConn == ws {
				pr.done = true
				delete(st.pending, id)
				cancelled = append(cancelled, pr)
				continue
			}
			if pr.waiting[sess] {
				delete(pr.waiting, sess)
				if len(pr.waiting) == 0 && !pr.done {
					pr.done = true
					delete(st.pending, id)
					fire = append(fire, pr)
				}
			}
		}
		st.mu.Unlock()
	}
	for _, pr := range cancelled {
		pr.timer.Stop()
		recycleRelay(pr)
	}
	for _, pr := range fire {
		pr.timer.Stop()
		s.deliverRelay(pr)
		recycleRelay(pr)
	}
}

// position returns the session's last streamed position (used by tests).
func (sess *session) position() (geom.Point, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.pos, sess.hasPos
}
