package serve

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wire"
)

// The daemon-side peer relay gives networked clients the P2P channel the
// paper's hosts have over the air (§4.1): a client that wants peer caches
// sends PeerRequest with its position and transmission radius; the daemon —
// which already tracks every session's last streamed Position — plays the
// broadcast medium. It probes each connected session within the radius
// (PeerProbe), collects their ShareReply frames, and returns the aggregate
// to the requester as one PeerShares message. The requester then runs the
// exact same verification core (internal/client) a simulated host runs on
// its grid-swept peers.
//
// Every probed peer replies even when its cache is empty — that is what
// lets the relay complete on a countdown instead of always riding the
// timeout. The timeout (Options.RelayTimeout) and the disconnect path cover
// peers that die or stall mid-probe; late replies after either look like
// forged probe IDs and are counted, not forwarded.
//
// Concurrency: relayTable.mu orders all state transitions; the terminal
// transition (countdown reaching zero, timeout, or requester disconnect)
// flips done exactly once, and the PeerShares write to the requester always
// happens after the lock is released — no mutex is ever held across a
// transport write. The position scan is a linear sweep of the session
// table; at daemon scale (hundreds of sessions) that is cheaper than
// maintaining a spatial index under churn.

// defaultRelayTimeout bounds how long a relay waits for probed peers.
const defaultRelayTimeout = 2 * time.Second

// defaultMaxTxRange caps the transmission radius a client may request, so
// one session cannot conscript the whole service area as its neighborhood.
const defaultMaxTxRange = 10_000.0

// pendingRelay is one in-flight fan-out.
type pendingRelay struct {
	reqConn *WSConn
	reqID   uint32
	probeID uint32
	// waiting holds the probed sessions that have not replied yet; the
	// relay completes when it drains (or the timer / a disconnect ends it).
	waiting      map[*session]bool
	shares       []core.PeerCache
	peersInRange int
	timer        *time.Timer
	done         bool
}

// relayTable is the daemon's in-flight relay state.
type relayTable struct {
	mu        sync.Mutex
	nextProbe uint32
	pending   map[uint32]*pendingRelay
}

// peersInRangeBucket maps a peer count to its histogram bucket:
// 0, 1, 2-3, 4-7, 8-15, 16-31, 32+.
func peersInRangeBucket(n int) int {
	b := 0
	for n > 0 && b < peersInRangeBuckets-1 {
		b++
		n >>= 1
	}
	return b
}

// startRelay services one PeerRequest on the requester's connection
// goroutine. Zero peers in range short-circuits to an immediate empty
// PeerShares on the requester's own connection; otherwise the relay is
// registered and every target probed. The returned error is a requester
// write failure (the caller tears the connection down); probe failures to
// other sessions only shrink the countdown.
func (s *Server) startRelay(reqSess *session, ws *WSConn, req wire.PeerRequest) error {
	radius := req.Radius
	if radius > s.maxTxRange {
		radius = s.maxTxRange
	}
	s.stat.relayRequests.Add(1)

	// Snapshot the in-range targets: connected sessions (other than the
	// requester) whose last streamed position lies within the radius.
	type target struct {
		sess *session
		conn *WSConn
	}
	var targets []target
	r2 := radius * radius
	s.mu.Lock()
	for _, sess := range s.sessions {
		if sess == reqSess {
			continue
		}
		sess.mu.Lock()
		conn, pos, hasPos := sess.conn, sess.pos, sess.hasPos
		sess.mu.Unlock()
		if conn == nil || !hasPos {
			continue
		}
		if req.Loc.Dist2(pos) > r2 {
			continue
		}
		targets = append(targets, target{sess: sess, conn: conn})
	}
	s.mu.Unlock()
	s.stat.peersInRange[peersInRangeBucket(len(targets))].Add(1)

	if len(targets) == 0 {
		return ws.WriteBinaryBatched(wire.EncodePeerShares(wire.PeerShares{ReqID: req.ReqID}))
	}

	pr := &pendingRelay{
		reqConn:      ws,
		reqID:        req.ReqID,
		waiting:      make(map[*session]bool, len(targets)),
		peersInRange: len(targets),
	}
	for _, t := range targets {
		pr.waiting[t.sess] = true
	}
	s.relay.mu.Lock()
	s.relay.nextProbe++
	pr.probeID = s.relay.nextProbe
	if s.relay.pending == nil {
		s.relay.pending = make(map[uint32]*pendingRelay)
	}
	s.relay.pending[pr.probeID] = pr
	s.relay.mu.Unlock()
	pr.timer = time.AfterFunc(s.relayTimeout, func() { s.relayExpired(pr.probeID) })

	// Probe outside every lock. A dead target's failed write just removes
	// it from the countdown, exactly like a disconnect.
	probe := wire.EncodePeerProbe(pr.probeID)
	for _, t := range targets {
		if t.conn.WriteBinary(probe) != nil {
			s.relayDropPeer(pr.probeID, t.sess)
		}
	}
	return nil
}

// handleShareReply services one ShareReply on the replying peer's
// connection goroutine. Unknown probe IDs — forged, duplicate, or simply
// late after a timeout — are counted and dropped without penalizing the
// connection: the race against the timer is legitimate, so it cannot be a
// protocol error.
func (s *Server) handleShareReply(from *session, sh wire.ShareReply) {
	s.relay.mu.Lock()
	pr := s.relay.pending[sh.ProbeID]
	if pr == nil || !pr.waiting[from] {
		s.relay.mu.Unlock()
		s.stat.relayUnknown.Add(1)
		return
	}
	delete(pr.waiting, from)
	if sh.Has {
		if len(sh.Cache.Neighbors) > s.maxAnswer {
			// An oversized share would be refused as an answer too; it does
			// not reach the requester.
			s.stat.relayRejected.Add(1)
		} else {
			pr.shares = append(pr.shares, sh.Cache)
		}
	}
	fire := len(pr.waiting) == 0 && !pr.done
	if fire {
		pr.done = true
		delete(s.relay.pending, pr.probeID)
	}
	s.relay.mu.Unlock()
	if fire {
		pr.timer.Stop()
		s.deliverRelay(pr)
	}
}

// relayDropPeer removes one probed session from a relay's countdown (failed
// probe write or disconnect), delivering the aggregate if it was the last.
func (s *Server) relayDropPeer(probeID uint32, sess *session) {
	s.relay.mu.Lock()
	pr := s.relay.pending[probeID]
	if pr == nil || !pr.waiting[sess] {
		s.relay.mu.Unlock()
		return
	}
	delete(pr.waiting, sess)
	fire := len(pr.waiting) == 0 && !pr.done
	if fire {
		pr.done = true
		delete(s.relay.pending, pr.probeID)
	}
	s.relay.mu.Unlock()
	if fire {
		pr.timer.Stop()
		s.deliverRelay(pr)
	}
}

// relayExpired is the timer path: deliver whatever arrived in time.
func (s *Server) relayExpired(probeID uint32) {
	s.relay.mu.Lock()
	pr := s.relay.pending[probeID]
	if pr == nil || pr.done {
		s.relay.mu.Unlock()
		return
	}
	pr.done = true
	delete(s.relay.pending, probeID)
	s.relay.mu.Unlock()
	s.stat.relayTimeouts.Add(1)
	s.deliverRelay(pr)
}

// deliverRelay sends the aggregated PeerShares to the requester. Callers
// hold no locks and have already made the relay's terminal transition, so
// this runs exactly once per relay.
func (s *Server) deliverRelay(pr *pendingRelay) {
	s.stat.relayShares.Add(int64(len(pr.shares)))
	buf := wire.EncodePeerShares(wire.PeerShares{
		ReqID:        pr.reqID,
		PeersInRange: pr.peersInRange,
		Shares:       pr.shares,
	})
	// An immediate write, not a batched one: delivery often runs on a peer's
	// connection goroutine, and the requester's own reader is blocked
	// waiting for exactly this message — it cannot flush its own batch.
	//simvet:discard — a failed delivery means the requester's transport died; its serveConn observes and accounts that on its next read
	_ = pr.reqConn.WriteBinary(buf)
}

// dropConn detaches a finished connection from its session and settles
// every relay it touches: relays waiting on this session lose one countdown
// slot (completing if it was the last), and relays this connection
// requested are cancelled outright — there is nobody left to deliver to.
func (s *Server) dropConn(sess *session, ws *WSConn) {
	sess.mu.Lock()
	if sess.conn == ws {
		sess.conn = nil
	}
	sess.mu.Unlock()

	var fire []*pendingRelay
	var cancelled []*pendingRelay
	s.relay.mu.Lock()
	for id, pr := range s.relay.pending {
		if pr.reqConn == ws {
			pr.done = true
			delete(s.relay.pending, id)
			cancelled = append(cancelled, pr)
			continue
		}
		if pr.waiting[sess] {
			delete(pr.waiting, sess)
			if len(pr.waiting) == 0 && !pr.done {
				pr.done = true
				delete(s.relay.pending, id)
				fire = append(fire, pr)
			}
		}
	}
	s.relay.mu.Unlock()
	for _, pr := range cancelled {
		pr.timer.Stop()
	}
	for _, pr := range fire {
		pr.timer.Stop()
		s.deliverRelay(pr)
	}
}

// position returns the session's last streamed position (used by tests).
func (sess *session) position() (geom.Point, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.pos, sess.hasPos
}
