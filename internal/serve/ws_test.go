package serve

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// RFC 6455 §1.3's worked example pins the accept-key derivation.
func TestAcceptKeyRFCVector(t *testing.T) {
	got := acceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("acceptKey = %q, want %q", got, want)
	}
}

// echoServer upgrades and echoes every binary message back.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer ws.Close()
		for {
			data, err := ws.ReadMessage()
			if err != nil {
				return
			}
			if err := ws.WriteBinary(data); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func wsURL(srv *httptest.Server) string {
	return "ws" + strings.TrimPrefix(srv.URL, "http")
}

// Echo payloads sized to exercise all three frame length encodings (7-bit,
// 16-bit, 64-bit) and fragment-free round-tripping of masked client frames.
func TestEchoAcrossLengthEncodings(t *testing.T) {
	srv := echoServer(t)
	ws, err := DialWS(wsURL(srv))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer ws.Close()

	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 125, 126, 127, 4096, 65535, 65536, 70000} {
		msg := make([]byte, n)
		rng.Read(msg)
		if err := ws.WriteBinary(msg); err != nil {
			t.Fatalf("write %d bytes: %v", n, err)
		}
		got, err := ws.ReadMessage()
		if err != nil {
			t.Fatalf("read %d bytes: %v", n, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("echo of %d bytes corrupted", n)
		}
	}
}

// Closing the client side must complete the close handshake: the server's
// reader sees ErrConnClosed, not a protocol or transport error.
func TestCloseHandshake(t *testing.T) {
	gotErr := make(chan error, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer ws.Close()
		_, err = ws.ReadMessage()
		gotErr <- err
	}))
	t.Cleanup(srv.Close)

	ws, err := DialWS(wsURL(srv))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := ws.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-gotErr; err != ErrConnClosed {
		t.Fatalf("server read error = %v, want ErrConnClosed", err)
	}
}

// A server must reject upgrade attempts that are not proper WebSocket
// handshakes, with the HTTP status the RFC prescribes.
func TestUpgradeRejections(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		Upgrade(w, r)
	}))
	t.Cleanup(srv.Close)

	cases := []struct {
		name   string
		mangle func(*http.Request)
		want   int
	}{
		{"plain GET", func(r *http.Request) {
			r.Header.Del("Upgrade")
			r.Header.Del("Connection")
		}, http.StatusBadRequest},
		{"wrong version", func(r *http.Request) {
			r.Header.Set("Sec-WebSocket-Version", "8")
		}, http.StatusUpgradeRequired},
		{"missing key", func(r *http.Request) {
			r.Header.Del("Sec-WebSocket-Key")
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Upgrade", "websocket")
			req.Header.Set("Connection", "Upgrade")
			req.Header.Set("Sec-WebSocket-Version", "13")
			req.Header.Set("Sec-WebSocket-Key", "dGhlIHNhbXBsZSBub25jZQ==")
			tc.mangle(req)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("request: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}

	t.Run("POST", func(t *testing.T) {
		resp, err := http.Post(srv.URL, "application/octet-stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusMethodNotAllowed)
		}
	})
}

// Concurrent writers on one connection must not interleave frame bytes; the
// reader must get every message back intact.
func TestConcurrentWritersDoNotInterleave(t *testing.T) {
	srv := echoServer(t)
	ws, err := DialWS(wsURL(srv))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer ws.Close()

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			msg := bytes.Repeat([]byte{byte('a' + w)}, 100+w)
			for i := 0; i < perWriter; i++ {
				if err := ws.WriteBinary(msg); err != nil {
					return
				}
			}
		}(w)
	}

	for i := 0; i < writers*perWriter; i++ {
		got, err := ws.ReadMessage()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if len(got) < 100 || len(got) > 100+writers {
			t.Fatalf("read %d: %d bytes, outside writer sizes", i, len(got))
		}
		for _, b := range got[1:] {
			if b != got[0] {
				t.Fatalf("read %d: interleaved frame payload", i)
			}
		}
	}
	wg.Wait()
}
