package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pagestore"
)

// The POI store is the server's on-disk data set: the POIs in their
// canonical insertion order plus the R*-tree fan-out they are meant to be
// indexed with, laid out on pagestore's fixed 4 KiB pages. Storing the
// insertion order and fan-out (rather than a serialized tree) makes the
// boot-time index bit-identical to the in-process sim.NewServerModule tree
// built from the same inputs — which is what lets the serve-vs-in-process
// oracle test demand byte equality of answers and page counts.
//
// Layout (little-endian):
//
//	page 0          header: magic "SENP" (u32), version (u32), fanout (u32),
//	                count (u64), bounds MinX MinY MaxX MaxY (4 × f64)
//	pages 1..N      POI records, 24 bytes each (id i64, x f64, y f64),
//	                poisPerPage per page, zero-padded tail
const (
	storeMagic    = uint32(0x504E4553) // "SENP"
	storeVersion  = uint32(1)
	poiRecordSize = 24
	poisPerPage   = pagestore.PageSize / poiRecordSize
)

// maxStorePOIs caps what ReadStore will load (a format sanity bound, far
// above any store this repo generates).
const maxStorePOIs = 1 << 28

// StoreInfo describes an opened POI store.
type StoreInfo struct {
	Count  int
	Fanout int
	Bounds geom.Rect
}

// WriteStore writes the POI set to path as a page-aligned store file.
// fanout is the R*-tree branching factor servers must index with; bounds is
// the area the POIs were drawn from (served to clients for movement and
// query generation).
func WriteStore(path string, pois []core.POI, fanout int, bounds geom.Rect) (err error) {
	if fanout < 4 {
		return fmt.Errorf("serve: store fanout %d, want >= 4", fanout)
	}
	pf, err := pagestore.CreatePageFile(path)
	if err != nil {
		return err
	}
	defer func() {
		// A close failure after a clean write is still a failed write: the
		// pages may never have reached the device.
		if cerr := pf.Close(); err == nil {
			err = cerr
		}
	}()

	header := make([]byte, pagestore.PageSize)
	binary.LittleEndian.PutUint32(header[0:], storeMagic)
	binary.LittleEndian.PutUint32(header[4:], storeVersion)
	binary.LittleEndian.PutUint32(header[8:], uint32(fanout))
	binary.LittleEndian.PutUint64(header[12:], uint64(len(pois)))
	for i, v := range []float64{bounds.Min.X, bounds.Min.Y, bounds.Max.X, bounds.Max.Y} {
		binary.LittleEndian.PutUint64(header[20+8*i:], math.Float64bits(v))
	}
	if _, err := pf.AppendPage(header); err != nil {
		return err
	}

	page := make([]byte, pagestore.PageSize)
	for start := 0; start < len(pois); start += poisPerPage {
		clear(page)
		end := start + poisPerPage
		if end > len(pois) {
			end = len(pois)
		}
		off := 0
		for _, p := range pois[start:end] {
			binary.LittleEndian.PutUint64(page[off:], uint64(p.ID))
			binary.LittleEndian.PutUint64(page[off+8:], math.Float64bits(p.Loc.X))
			binary.LittleEndian.PutUint64(page[off+16:], math.Float64bits(p.Loc.Y))
			off += poiRecordSize
		}
		if _, err := pf.AppendPage(page); err != nil {
			return err
		}
	}
	return pf.Sync()
}

// ReadStore opens a store file and returns its metadata and POIs in stored
// order.
func ReadStore(path string) (StoreInfo, []core.POI, error) {
	pf, err := pagestore.OpenPageFile(path)
	if err != nil {
		return StoreInfo{}, nil, err
	}
	//simvet:discard — read-only open; there is nothing to flush and the pages are already copied out
	defer pf.Close()
	if pf.NumPages() == 0 {
		return StoreInfo{}, nil, fmt.Errorf("serve: %s: empty store file", path)
	}

	buf := make([]byte, pagestore.PageSize)
	if err := pf.ReadPage(0, buf); err != nil {
		return StoreInfo{}, nil, err
	}
	if got := binary.LittleEndian.Uint32(buf[0:]); got != storeMagic {
		return StoreInfo{}, nil, fmt.Errorf("serve: %s: bad store magic %#x", path, got)
	}
	if got := binary.LittleEndian.Uint32(buf[4:]); got != storeVersion {
		return StoreInfo{}, nil, fmt.Errorf("serve: %s: unsupported store version %d", path, got)
	}
	info := StoreInfo{
		Fanout: int(binary.LittleEndian.Uint32(buf[8:])),
		Count:  int(binary.LittleEndian.Uint64(buf[12:])),
	}
	if info.Fanout < 4 {
		return StoreInfo{}, nil, fmt.Errorf("serve: %s: corrupt fanout %d", path, info.Fanout)
	}
	if info.Count < 0 || info.Count > maxStorePOIs {
		return StoreInfo{}, nil, fmt.Errorf("serve: %s: corrupt POI count %d", path, info.Count)
	}
	coords := make([]float64, 4)
	for i := range coords {
		coords[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[20+8*i:]))
		if math.IsNaN(coords[i]) || math.IsInf(coords[i], 0) {
			return StoreInfo{}, nil, fmt.Errorf("serve: %s: non-finite bounds", path)
		}
	}
	info.Bounds = geom.Rect{Min: geom.Pt(coords[0], coords[1]), Max: geom.Pt(coords[2], coords[3])}
	if info.Bounds.Max.X < info.Bounds.Min.X || info.Bounds.Max.Y < info.Bounds.Min.Y {
		return StoreInfo{}, nil, fmt.Errorf("serve: %s: inverted bounds", path)
	}

	wantPages := 1 + (info.Count+poisPerPage-1)/poisPerPage
	if pf.NumPages() != wantPages {
		return StoreInfo{}, nil, fmt.Errorf("serve: %s: %d pages, want %d for %d POIs",
			path, pf.NumPages(), wantPages, info.Count)
	}

	pois := make([]core.POI, 0, info.Count)
	for pageIdx := 1; pageIdx < wantPages; pageIdx++ {
		if err := pf.ReadPage(pagestore.PageID(pageIdx), buf); err != nil {
			return StoreInfo{}, nil, err
		}
		n := poisPerPage
		if remaining := info.Count - len(pois); remaining < n {
			n = remaining
		}
		off := 0
		for i := 0; i < n; i++ {
			p := core.POI{
				ID: int64(binary.LittleEndian.Uint64(buf[off:])),
				Loc: geom.Point{
					X: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
					Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:])),
				},
			}
			if math.IsNaN(p.Loc.X) || math.IsInf(p.Loc.X, 0) ||
				math.IsNaN(p.Loc.Y) || math.IsInf(p.Loc.Y, 0) {
				return StoreInfo{}, nil, fmt.Errorf("serve: %s: non-finite POI at index %d", path, len(pois))
			}
			pois = append(pois, p)
			off += poiRecordSize
		}
	}
	return info, pois, nil
}
