package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
)

// newBareServer builds a Server skeleton with just the state the directory
// and the two target-collection paths read — no HTTP, no store — so the
// oracle property tests can churn sessions directly.
func newBareServer(bounds geom.Rect, cell float64, shards int) *Server {
	return &Server{
		sessions: make(map[string]*session),
		dir:      newSessionDirectory(bounds, cell, shards),
	}
}

// targetSet reduces a target slice to a comparable set. The directory
// enumerates cell-major and the linear sweep in map order, so equivalence
// is set equality — the relay's countdown is order-insensitive (pinned by
// TestRelayCountdownOrderInsensitive).
func targetSet(ts []relayTarget) map[*session]*WSConn {
	m := make(map[*session]*WSConn, len(ts))
	for _, t := range ts {
		m[t.sess] = t.conn
	}
	return m
}

// The directory's target selection must be exactly the linear sweep's under
// randomized join/leave/move churn: same sessions, same captured conns, for
// query points and radii inside, on, and far outside the service area.
func TestDirectoryMatchesLinearOracle(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10000, 10000)}
	// Exercise several cell layouts, including a deliberately tiny grid
	// where every query covers many cells and a coarse one-cell-ish grid.
	for _, cell := range []float64{0, 100, 3000, 20000} {
		cell := cell
		t.Run(fmt.Sprintf("cell=%g", cell), func(t *testing.T) {
			s := newBareServer(bounds, cell, 8)
			rng := rand.New(rand.NewSource(7))
			var all []*session
			randPos := func() geom.Point {
				// Mostly in bounds, sometimes well outside (clamped into
				// border cells — the directory must still find them).
				return geom.Pt(rng.Float64()*14000-2000, rng.Float64()*14000-2000)
			}
			for round := 0; round < 300; round++ {
				switch op := rng.Intn(10); {
				case op < 3 || len(all) == 0: // join
					sess := &session{}
					if rng.Intn(2) == 0 {
						sess.conn = &WSConn{}
					}
					s.sessions[fmt.Sprintf("s%d", len(all))] = sess
					all = append(all, sess)
					if rng.Intn(4) > 0 { // most sessions stream a position
						p := randPos()
						sess.setPos(p)
						s.dir.update(sess, p)
					}
				case op < 5: // disconnect / reconnect
					sess := all[rng.Intn(len(all))]
					sess.mu.Lock()
					if sess.conn == nil {
						sess.conn = &WSConn{}
					} else {
						sess.conn = nil
					}
					sess.mu.Unlock()
				default: // move
					sess := all[rng.Intn(len(all))]
					p := randPos()
					sess.setPos(p)
					s.dir.update(sess, p)
				}

				for q := 0; q < 4; q++ {
					loc := randPos()
					radius := []float64{0, 150, 2500, 50000}[rng.Intn(4)]
					var exclude *session
					if rng.Intn(2) == 0 {
						exclude = all[rng.Intn(len(all))]
					}
					grid := s.dir.collectTargets(exclude, loc, radius, nil)
					linear := s.collectTargetsLinear(exclude, loc, radius, nil)
					gs, ls := targetSet(grid), targetSet(linear)
					if len(grid) != len(gs) {
						t.Fatalf("round %d: directory returned %d targets with duplicates (%d unique)",
							round, len(grid), len(gs))
					}
					if len(gs) != len(ls) {
						t.Fatalf("round %d q=%v r=%g: directory found %d targets, linear oracle %d",
							round, loc, radius, len(gs), len(ls))
					}
					for sess, conn := range ls {
						if gs[sess] != conn {
							t.Fatalf("round %d q=%v r=%g: target/conn mismatch vs oracle", round, loc, radius)
						}
					}
				}
			}
			if s.dir.patchOps.Load() == 0 || s.dir.cellsScanned.Load() == 0 {
				t.Fatalf("directory counters never advanced: patch=%d scanned=%d",
					s.dir.patchOps.Load(), s.dir.cellsScanned.Load())
			}
		})
	}
}

// Degenerate geometry must not break cell assignment: zero-area bounds
// collapse to one cell, and oversized cell requests clamp rather than
// produce a 0xN grid.
func TestDirectoryDegenerateBounds(t *testing.T) {
	for _, bounds := range []geom.Rect{
		{},
		{Min: geom.Pt(5, 5), Max: geom.Pt(5, 5)},
		{Min: geom.Pt(0, 0), Max: geom.Pt(1, 0)},
	} {
		d := newSessionDirectory(bounds, 0, 0)
		if d.geo.nx < 1 || d.geo.ny < 1 {
			t.Fatalf("bounds %+v: grid %dx%d", bounds, d.geo.nx, d.geo.ny)
		}
		sess := &session{conn: &WSConn{}}
		p := geom.Pt(1e9, -1e9)
		sess.setPos(p)
		d.update(sess, p)
		got := d.collectTargets(nil, p, 1, nil)
		if len(got) != 1 || got[0].sess != sess {
			t.Fatalf("bounds %+v: far-out session not found via clamped cell", bounds)
		}
	}
}

// A session that streams positions from two goroutines (a superseded
// connection racing its replacement) and range scans running throughout
// must stay race-free and keep the directory's slot bookkeeping intact.
// Run under -race in CI's test job.
func TestDirectoryConcurrentChurn(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10000, 10000)}
	s := newBareServer(bounds, 200, 16)
	const nSessions = 64
	sessions := make([]*session, nSessions)
	for i := range sessions {
		sessions[i] = &session{conn: &WSConn{}}
		s.sessions[fmt.Sprintf("s%d", i)] = sessions[i]
	}
	const iters = 400
	var wg sync.WaitGroup
	// Two writers per session stripe plus scanners: every combination of
	// update/update and update/scan interleavings gets exercised.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				sess := sessions[rng.Intn(nSessions)]
				p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
				sess.setPos(p)
				s.dir.update(sess, p)
			}
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			var scratch []relayTarget
			for i := 0; i < iters; i++ {
				loc := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
				scratch = s.dir.collectTargets(nil, loc, 1000, scratch[:0])
				for _, tg := range scratch {
					if tg.conn == nil {
						t.Error("collected target with nil conn")
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// The index must still agree with the oracle once the dust settles.
	grid := targetSet(s.dir.collectTargets(nil, geom.Pt(5000, 5000), 50000, nil))
	linear := targetSet(s.collectTargetsLinear(nil, geom.Pt(5000, 5000), 50000, nil))
	if len(grid) != len(linear) {
		t.Fatalf("post-churn mismatch: directory %d targets, oracle %d", len(grid), len(linear))
	}
	for sess, conn := range linear {
		if grid[sess] != conn {
			t.Fatal("post-churn target/conn mismatch vs oracle")
		}
	}
}
