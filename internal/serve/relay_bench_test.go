package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// BenchmarkRelayFanout measures the relay's in-range target selection —
// the per-PeerRequest hot path — with the grid directory against the
// retained linear sweep, at 1k and 100k registered sessions. The radius is
// sized so a query finds a realistic neighborhood (a few dozen peers at
// 100k sessions); CI gates grid ≥5× linear at 100k and zero steady-state
// allocations on the grid path.
func BenchmarkRelayFanout(b *testing.B) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(20000, 20000)}
	const radius = 200.0
	for _, bc := range []struct {
		name string
		n    int
	}{
		{"1k", 1000},
		{"100k", 100000},
	} {
		s := newBareServer(bounds, 0, 0)
		rng := rand.New(rand.NewSource(11))
		sessions := make([]*session, bc.n)
		for i := range sessions {
			sess := &session{conn: &WSConn{}}
			p := geom.Pt(rng.Float64()*20000, rng.Float64()*20000)
			sess.setPos(p)
			s.dir.update(sess, p)
			s.sessions[fmt.Sprintf("s%d", i)] = sess
			sessions[i] = sess
		}
		queries := make([]geom.Point, 256)
		for i := range queries {
			queries[i] = geom.Pt(rng.Float64()*20000, rng.Float64()*20000)
		}
		exclude := sessions[0]

		b.Run("grid/sessions="+bc.name, func(b *testing.B) {
			var targets []relayTarget
			// Warm the scratch to the worst-case neighborhood before the
			// measured window so steady state reports zero allocations even
			// at -benchtime 1x.
			for _, q := range queries {
				targets = s.dir.collectTargets(exclude, q, radius, targets[:0])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				targets = s.dir.collectTargets(exclude, queries[i%len(queries)], radius, targets[:0])
			}
			_ = targets
		})
		b.Run("linear/sessions="+bc.name, func(b *testing.B) {
			var targets []relayTarget
			for _, q := range queries {
				targets = s.collectTargetsLinear(exclude, q, radius, targets[:0])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				targets = s.collectTargetsLinear(exclude, queries[i%len(queries)], radius, targets[:0])
			}
			_ = targets
		})
	}
}
