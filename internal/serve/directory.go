package serve

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// sessionDirectory is the daemon's spatial index over live session
// positions: the structure that makes relay fan-out sublinear in the
// session count. It is a sharded uniform grid — the same cell math as the
// simulator's hostGrid / sim.PointGrid (floor-based raw cells, ceil sizing,
// out-of-range positions clamped into the border cells) — but mutable under
// churn: every streamed Position patches the index incrementally (move the
// session between cell buckets, or rewrite its stored position in place
// when the cell did not change), the way hostGrid.applyDelta patches the
// CSR grid from the moved-host delta.
//
// Sharding and locking. Cells are striped across a power-of-two number of
// shards by low cell-index bits, so the cells of one geographic
// neighborhood land on *different* shards and a hot region does not
// serialize behind one lock. Each shard owns a map from cell index to its
// bucket; a relay's range scan locks each covered cell's shard briefly and
// independently — it never touches the global Server.mu, and two relays in
// different neighborhoods proceed without contending at all.
//
// Lock ordering. A session's transitions between cells are serialized by
// its own session.dirMu; inside it the directory takes the affected shard
// locks one at a time (old cell, then new cell — never nested). The range
// scan takes shard.mu and, per in-range candidate, session.mu (to read the
// live conn). The global order is therefore
//
//	session.dirMu  >  dirShard.mu  >  session.mu
//
// and no path acquires them in the other direction (serveConn calls setPos
// and update as siblings, not nested). Nothing blocking ever runs under any
// of these locks.
//
// Membership mirrors the old linear sweep exactly: a session joins the
// directory with its first streamed Position and stays in it for the
// session's whole lifetime — a disconnect detaches the conn but keeps the
// position, because a reconnect resumes relaying from the last streamed
// position (the behavior the linear sweep had, pinned by the oracle
// property test). Whether a candidate is probed is decided at scan time by
// the exact distance filter and a non-nil conn.
type sessionDirectory struct {
	geo    dirGeom
	shards []dirShard
	mask   uint32

	// Directory counters, exported on /v1/stats: cells scanned by relay
	// range scans, candidates rejected by the exact distance filter, and
	// index patch ops (sessions moved between cell buckets, first
	// insertions included).
	cellsScanned atomic.Int64
	candRejected atomic.Int64
	patchOps     atomic.Int64
}

// dirShard is one lock stripe of the directory.
type dirShard struct {
	mu    sync.Mutex
	cells map[int32]*dirCell
}

// dirCell is one grid cell's bucket: parallel slices of the member sessions
// and the positions they were filed under. Storing the position next to the
// session keeps the range scan's distance filter inside the shard lock,
// with no per-candidate session.mu traffic for out-of-range members.
type dirCell struct {
	sessions []*session
	pos      []geom.Point
}

// dirGeom is the directory's cell layout: the cellGeom math of
// internal/sim/grid.go (clamped cell assignment, floor-based raw cells for
// neighborhood anchoring, ceil sizing with no dead border row).
type dirGeom struct {
	origin geom.Point
	cell   float64
	inv    float64
	nx, ny int
}

const (
	// defaultDirShards is the default lock-stripe count. 64 shards keep the
	// probability of two concurrent relays colliding on a stripe low at any
	// realistic core count, for a few hundred bytes of mutexes.
	defaultDirShards = 64
	// dirCellDivisor sizes the default cell: 1/64 of the service area's
	// larger side, so a typical transmission radius covers a handful of
	// cells while a million uniformly spread sessions still keep bucket
	// sizes in the hundreds.
	dirCellDivisor = 64
	// dirMaxCellsPerAxis bounds the table size whatever cell size a flag
	// asks for (the table is nx*ny cells).
	dirMaxCellsPerAxis = 512
)

// newDirGeom builds the cell layout over bounds. A non-positive cell picks
// the default; either way the cell is clamped so the table stays at most
// dirMaxCellsPerAxis cells per axis, and degenerate bounds collapse to a
// single cell.
func newDirGeom(bounds geom.Rect, cell float64) dirGeom {
	w, h := bounds.Width(), bounds.Height()
	maxDim := w
	if h > maxDim {
		maxDim = h
	}
	if cell <= 0 {
		cell = maxDim / dirCellDivisor
	}
	minCell := w / dirMaxCellsPerAxis
	if m := h / dirMaxCellsPerAxis; m > minCell {
		minCell = m
	}
	if cell < minCell {
		cell = minCell
	}
	if cell <= 0 {
		cell = 1
	}
	nx := int(math.Ceil(w / cell))
	if nx < 1 {
		nx = 1
	}
	ny := int(math.Ceil(h / cell))
	if ny < 1 {
		ny = 1
	}
	return dirGeom{origin: bounds.Min, cell: cell, inv: 1 / cell, nx: nx, ny: ny}
}

// cellIndex files p into a cell, clamping out-of-bounds positions into the
// border cells (same contract as the simulator grids: the covered-cell
// enumeration below always reaches the clamped cell of any point within the
// query radius, so clamping never loses a candidate).
func (g dirGeom) cellIndex(p geom.Point) int32 {
	cx := int((p.X - g.origin.X) * g.inv)
	cy := int((p.Y - g.origin.Y) * g.inv)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return int32(cy*g.nx + cx)
}

// cellRange returns the clamped row-major cell rectangle that covers the
// disc of radius r around p: the cells a range scan must visit. The anchor
// floors (a query just left of the origin anchors at raw cell -1, not 0)
// and is then clamped onto the grid, exactly as forCellsAt does in the
// simulator.
func (g dirGeom) cellRange(p geom.Point, r float64) (x0, y0, x1, y1 int) {
	cx := int(math.Floor((p.X - g.origin.X) * g.inv))
	cy := int(math.Floor((p.Y - g.origin.Y) * g.inv))
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	reach := int(r*g.inv) + 1
	x0, x1 = cx-reach, cx+reach
	y0, y1 = cy-reach, cy+reach
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= g.nx {
		x1 = g.nx - 1
	}
	if y1 >= g.ny {
		y1 = g.ny - 1
	}
	return x0, y0, x1, y1
}

// newSessionDirectory builds an empty directory over the service area.
// cell <= 0 and shards <= 0 pick the defaults; shards is rounded up to a
// power of two so the stripe of a cell is a mask, not a modulo.
func newSessionDirectory(bounds geom.Rect, cell float64, shards int) *sessionDirectory {
	if shards <= 0 {
		shards = defaultDirShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	d := &sessionDirectory{
		geo:    newDirGeom(bounds, cell),
		shards: make([]dirShard, n),
		mask:   uint32(n - 1),
	}
	return d
}

func (d *sessionDirectory) shard(cell int32) *dirShard {
	return &d.shards[uint32(cell)&d.mask]
}

// update files sess under pos, patching the index incrementally: the
// same-cell case rewrites the stored position in place under one shard
// lock; a cell change removes the session from its old bucket (swap-remove,
// fixing the swapped session's slot) and appends it to the new one. Safe
// against concurrent updates of the same session (a superseded connection
// racing its replacement): sess.dirMu serializes the transitions.
func (d *sessionDirectory) update(sess *session, pos geom.Point) {
	c := d.geo.cellIndex(pos)
	sess.dirMu.Lock()
	if sess.dirIn && sess.dirCell == c {
		sh := d.shard(c)
		sh.mu.Lock()
		sh.cells[c].pos[sess.dirSlot] = pos
		sh.mu.Unlock()
		sess.dirMu.Unlock()
		return
	}
	if sess.dirIn {
		old := sess.dirCell
		sh := d.shard(old)
		sh.mu.Lock()
		cell := sh.cells[old]
		i, last := sess.dirSlot, int32(len(cell.sessions)-1)
		if i != last {
			cell.sessions[i] = cell.sessions[last]
			cell.pos[i] = cell.pos[last]
			cell.sessions[i].dirSlot = i
		}
		cell.sessions[last] = nil // drop the reference; the bucket is reused
		cell.sessions = cell.sessions[:last]
		cell.pos = cell.pos[:last]
		sh.mu.Unlock()
	}
	sh := d.shard(c)
	sh.mu.Lock()
	if sh.cells == nil {
		sh.cells = make(map[int32]*dirCell)
	}
	cell := sh.cells[c]
	if cell == nil {
		// An emptied bucket is kept in the map (buckets are not freed on
		// churn), so steady-state movement allocates only when a session
		// reaches a cell nothing has ever occupied.
		cell = &dirCell{}
		sh.cells[c] = cell
	}
	sess.dirSlot = int32(len(cell.sessions))
	cell.sessions = append(cell.sessions, sess)
	cell.pos = append(cell.pos, pos)
	sh.mu.Unlock()
	sess.dirIn, sess.dirCell = true, c
	sess.dirMu.Unlock()
	d.patchOps.Add(1)
}

// relayTarget pairs a probed session with the connection captured at
// snapshot time (probes go to the conn that was attached when the sweep
// ran, exactly as the linear sweep did).
type relayTarget struct {
	sess *session
	conn *WSConn
}

// collectTargets appends every relay target within radius of q to dst: a
// connected session, other than exclude, whose last filed position passes
// the exact distance filter. It scans only the covered cells — O(r²/cell²)
// map lookups and shard locks — instead of the whole session table, and
// holds each shard lock only across its own cells' buckets. Enumeration
// order is cell-major (insertion order within a bucket); relay countdown
// semantics are order-insensitive, which the order property test pins.
func (d *sessionDirectory) collectTargets(exclude *session, q geom.Point, radius float64, dst []relayTarget) []relayTarget {
	r2 := radius * radius
	x0, y0, x1, y1 := d.geo.cellRange(q, radius)
	var scanned, rejected int64
	for y := y0; y <= y1; y++ {
		row := int32(y * d.geo.nx)
		for x := x0; x <= x1; x++ {
			c := row + int32(x)
			scanned++
			sh := d.shard(c)
			sh.mu.Lock()
			cell := sh.cells[c]
			if cell != nil {
				for i, sess := range cell.sessions {
					if sess == exclude {
						continue
					}
					if q.Dist2(cell.pos[i]) > r2 {
						rejected++
						continue
					}
					sess.mu.Lock()
					conn := sess.conn
					sess.mu.Unlock()
					if conn == nil {
						continue
					}
					dst = append(dst, relayTarget{sess: sess, conn: conn})
				}
			}
			sh.mu.Unlock()
		}
	}
	d.cellsScanned.Add(scanned)
	d.candRejected.Add(rejected)
	return dst
}

// collectTargetsLinear is the pre-directory implementation — a linear sweep
// of the whole session table under Server.mu — retained verbatim as the
// oracle the property tests pin the grid directory against and as the
// baseline BenchmarkRelayFanout measures the speedup from. It must keep
// selecting exactly the target set collectTargets selects.
func (s *Server) collectTargetsLinear(exclude *session, q geom.Point, radius float64, dst []relayTarget) []relayTarget {
	r2 := radius * radius
	s.mu.Lock()
	for _, sess := range s.sessions {
		if sess == exclude {
			continue
		}
		sess.mu.Lock()
		conn, pos, hasPos := sess.conn, sess.pos, sess.hasPos
		sess.mu.Unlock()
		if conn == nil || !hasPos {
			continue
		}
		if q.Dist2(pos) > r2 {
			continue
		}
		dst = append(dst, relayTarget{sess: sess, conn: conn})
	}
	s.mu.Unlock()
	return dst
}
