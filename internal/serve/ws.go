// Package serve lifts the SENN query engine out of the closed-loop
// simulator into a long-running network service: the paper's architecture
// (§3) made literal, with a remote spatial database answering kNN/range
// queries from mobile clients that cache, share, and verify results. A
// client opens a session over HTTP, upgrades to a WebSocket, streams
// position updates, and issues queries as internal/wire binary messages;
// answers carry the certain-region metadata (query location + complete
// ascending neighbor set) that the simulator's hosts exchange, so a network
// client can run exactly the verification lemmas a simulated host does.
//
// Everything is stdlib: the WebSocket layer below is a minimal RFC 6455
// implementation (handshake, masking, fragmentation, control frames), the
// HTTP layer is net/http, and the on-disk POI store rides on
// internal/pagestore's fixed-size pages.
package serve

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/mobility"
)

// RFC 6455 opcodes.
const (
	opContinuation byte = 0x0
	opText         byte = 0x1
	opBinary       byte = 0x2
	opClose        byte = 0x8
	opPing         byte = 0x9
	opPong         byte = 0xA
)

// wsGUID is the fixed handshake GUID of RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// DefaultMaxMessage bounds a reassembled message (1 MiB — comfortably above
// the largest well-formed wire answer, AnswerSize(MaxQueryK) ≈ 96 KiB).
const DefaultMaxMessage = 1 << 20

// closeGrace bounds the transport writes of the closing handshake. Without
// it, a writer wedged in conn.Write behind a peer that stopped reading
// holds wmu indefinitely, and every Close/fail caller queues behind that
// lock forever — shutdown could never interrupt a stuck write.
const closeGrace = 5 * time.Second

// Errors surfaced by the WebSocket layer.
var (
	// ErrConnClosed reports an orderly close handshake from the peer.
	ErrConnClosed = errors.New("serve: websocket closed by peer")
	// ErrProtocol reports a framing violation; the connection is torn down.
	ErrProtocol = errors.New("serve: websocket protocol error")
	// ErrTooLarge reports a frame or message beyond the size cap.
	ErrTooLarge = errors.New("serve: websocket message too large")
)

// acceptKey computes the Sec-WebSocket-Accept value for a handshake key.
func acceptKey(key string) string {
	h := sha1.New() // mandated by RFC 6455 §4.2.2; not used for security
	io.WriteString(h, key)
	io.WriteString(h, wsGUID)
	return base64.StdEncoding.EncodeToString(h.Sum(nil))
}

// WSConn is one WebSocket connection carrying binary messages. Reads must
// come from a single goroutine; writes are internally serialized, so the
// reader's automatic pong replies never interleave with application frames.
//
// Writes can be coalesced: WriteBinaryBatched appends the frame to a
// pending buffer and only hits the transport once the buffer passes the
// flush threshold (or an immediate write / explicit Flush drains it). A
// fan-out workload — one answer or relayed share per peer — then costs one
// syscall per few frames instead of one per frame. ReadMessage flushes the
// pending buffer before it can block on an idle transport, so a batched
// reply never waits on traffic that will not come.
type WSConn struct {
	conn net.Conn
	br   *bufio.Reader
	// client marks which masking role this side plays: per RFC 6455 §5.1 a
	// client masks every frame it sends and requires unmasked frames from
	// the server; a server does the reverse.
	client bool
	maxMsg int

	wmu sync.Mutex
	// pending accumulates encoded frames between flushes. Immediate writes
	// append and flush in one step, so frame order on the transport is
	// always the order the write calls acquired wmu.
	pending []byte
	// flushThreshold is the batched-write coalescing limit in bytes; 0
	// means every write flushes immediately (the default).
	flushThreshold int
	// maskRNG generates frame mask keys on the client side. Masking exists
	// to defeat proxy cache poisoning, not cryptanalysis, so a fast stream
	// seeded once from crypto/rand is appropriate.
	maskRNG mobility.SplitMix64

	closeOnce sync.Once
	closeErr  error
}

func newWSConn(conn net.Conn, br *bufio.Reader, client bool) *WSConn {
	c := &WSConn{conn: conn, br: br, client: client, maxMsg: DefaultMaxMessage}
	if client {
		var seed [8]byte
		if _, err := rand.Read(seed[:]); err == nil {
			c.maskRNG = mobility.SplitMix64(binary.LittleEndian.Uint64(seed[:]))
		}
	}
	return c
}

// SetReadDeadline bounds how long ReadMessage may block.
func (c *WSConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// SetFlushThreshold arms write batching: WriteBinaryBatched coalesces
// frames until the pending buffer reaches n bytes. Call before the
// connection is shared between goroutines; n <= 0 disables batching.
func (c *WSConn) SetFlushThreshold(n int) {
	if n < 0 {
		n = 0
	}
	c.flushThreshold = n
}

// ReadMessage returns the next complete binary message, transparently
// answering pings and skipping pongs. It returns ErrConnClosed after an
// orderly close from the peer.
func (c *WSConn) ReadMessage() ([]byte, error) {
	var msg []byte
	assembling := false
	for {
		// About to (possibly) block on the transport: anything batched for
		// this connection must go out first, or a coalesced reply would wait
		// on the peer's next request.
		if c.flushThreshold > 0 && c.br.Buffered() == 0 {
			if err := c.Flush(); err != nil {
				return nil, err
			}
		}
		fin, op, payload, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch op {
		case opPing:
			if err := c.writeFrame(opPong, payload); err != nil {
				return nil, err
			}
		case opPong:
			// Unsolicited pongs are legal and ignored (§5.5.3).
		case opClose:
			// Echo the close (§5.5.1), then tear down the transport.
			code := payload
			if len(code) > 2 {
				code = code[:2]
			}
			c.shutdown(code)
			return nil, ErrConnClosed
		case opBinary:
			if assembling {
				return nil, c.fail("binary frame inside a fragmented message")
			}
			if fin {
				return payload, nil
			}
			msg, assembling = payload, true
		case opContinuation:
			if !assembling {
				return nil, c.fail("continuation without a started message")
			}
			if len(msg)+len(payload) > c.maxMsg {
				return nil, c.close1009()
			}
			msg = append(msg, payload...)
			if fin {
				return msg, nil
			}
		case opText:
			return nil, c.fail("text frames are not part of this protocol")
		default:
			return nil, c.fail(fmt.Sprintf("reserved opcode %#x", op))
		}
	}
}

// WriteBinary sends one binary message as a single frame, flushing any
// batched frames ahead of it so transport order matches write order.
func (c *WSConn) WriteBinary(p []byte) error { return c.writeFrame(opBinary, p) }

// WriteBinaryBatched queues one binary message, deferring the transport
// write until the pending buffer reaches the flush threshold (or the next
// immediate write / Flush / pre-block flush in ReadMessage). The payload is
// copied into the pending buffer before return, so the caller may reuse p.
// With no threshold armed it is identical to WriteBinary.
func (c *WSConn) WriteBinaryBatched(p []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.pending = c.appendFrame(c.pending, opBinary, p)
	if c.flushThreshold > 0 && len(c.pending) < c.flushThreshold {
		return nil
	}
	//simvet:lockio — wmu serializes whole frames onto the transport; shutdown bounds a wedged write with a deadline before contending for it
	return c.flushLocked()
}

// Flush writes any batched frames to the transport.
func (c *WSConn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	//simvet:lockio — wmu serializes whole frames onto the transport; shutdown bounds a wedged write with a deadline before contending for it
	return c.flushLocked()
}

// Close performs the closing handshake (best effort) and closes the
// transport. Safe to call multiple times and concurrently with a reader.
func (c *WSConn) Close() error {
	c.shutdown([]byte{0x03, 0xE8}) // 1000: normal closure
	return c.closeErr
}

// fail sends a 1002 (protocol error) close and returns ErrProtocol.
func (c *WSConn) fail(reason string) error {
	c.shutdown([]byte{0x03, 0xEA}) // 1002
	return fmt.Errorf("%w: %s", ErrProtocol, reason)
}

// close1009 sends a 1009 (message too big) close and returns ErrTooLarge.
func (c *WSConn) close1009() error {
	c.shutdown([]byte{0x03, 0xF1}) // 1009
	return ErrTooLarge
}

// shutdown runs the closing handshake exactly once: bound every transport
// write with a deadline first — interrupting any writer currently wedged in
// conn.Write, which would otherwise hold wmu and block the close frame (and
// every other Close caller) forever — then send the close frame best-effort
// and tear the transport down. closeErr carries the teardown error for
// Close to return.
func (c *WSConn) shutdown(code []byte) {
	c.closeOnce.Do(func() {
		//simvet:discard — a deadline refusal means the transport is already dead; conn.Close below reports that
		_ = c.conn.SetWriteDeadline(time.Now().Add(closeGrace))
		//simvet:discard — the close frame is a best-effort courtesy (§5.5.1); the teardown error from conn.Close is the one surfaced
		_ = c.writeFrame(opClose, code)
		c.closeErr = c.conn.Close()
	})
}

// readFrame reads and unmasks one frame.
func (c *WSConn) readFrame() (fin bool, op byte, payload []byte, err error) {
	var h [2]byte
	if _, err := io.ReadFull(c.br, h[:]); err != nil {
		return false, 0, nil, err
	}
	fin = h[0]&0x80 != 0
	if h[0]&0x70 != 0 {
		return false, 0, nil, c.fail("nonzero RSV bits without a negotiated extension")
	}
	op = h[0] & 0x0F
	masked := h[1]&0x80 != 0
	n := uint64(h[1] & 0x7F)
	if op >= opClose { // control frame constraints (§5.5)
		if !fin || n > 125 {
			return false, 0, nil, c.fail("fragmented or oversized control frame")
		}
	}
	switch n {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		n = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		n = binary.BigEndian.Uint64(ext[:])
	}
	if n > uint64(c.maxMsg) {
		return false, 0, nil, c.close1009()
	}
	// §5.1: exactly one side masks. A client expects unmasked server
	// frames; a server expects masked client frames.
	if masked == c.client {
		return false, 0, nil, c.fail("frame masking violates RFC 6455 §5.1")
	}
	var key [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, key[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= key[i&3]
		}
	}
	return fin, op, payload, nil
}

// writeFrame emits one complete frame, flushing it (and any batched frames
// queued before it) in a single transport write.
func (c *WSConn) writeFrame(op byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.pending = c.appendFrame(c.pending, op, payload)
	//simvet:lockio — wmu serializes whole frames onto the transport; shutdown bounds a wedged write with a deadline before contending for it
	return c.flushLocked()
}

// appendFrame encodes one frame (header, optional mask, payload) onto dst.
// Callers hold wmu: the mask RNG advances per frame.
func (c *WSConn) appendFrame(dst []byte, op byte, payload []byte) []byte {
	buf := append(dst, 0x80|op)
	maskBit := byte(0)
	if c.client {
		maskBit = 0x80
	}
	n := len(payload)
	switch {
	case n < 126:
		buf = append(buf, maskBit|byte(n))
	case n < 1<<16:
		buf = append(buf, maskBit|126, byte(n>>8), byte(n))
	default:
		buf = append(buf, maskBit|127)
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(n))
		buf = append(buf, ext[:]...)
	}
	if c.client {
		var key [4]byte
		binary.LittleEndian.PutUint32(key[:], uint32(c.maskRNG.Uint64()))
		buf = append(buf, key[:]...)
		start := len(buf)
		buf = append(buf, payload...)
		for i := start; i < len(buf); i++ {
			buf[i] ^= key[(i-start)&3]
		}
	} else {
		buf = append(buf, payload...)
	}
	return buf
}

// flushLocked writes the pending buffer in one transport write. Callers
// hold wmu. The buffer is recycled even on error: a failed transport write
// kills the connection, so the unsent frames are moot.
func (c *WSConn) flushLocked() error {
	if len(c.pending) == 0 {
		return nil
	}
	//simvet:lockio — wmu exists precisely to serialize whole frames onto the transport; shutdown bounds a wedged write with a deadline before contending for it
	_, err := c.conn.Write(c.pending)
	c.pending = c.pending[:0]
	return err
}

// abortConn tears down a half-made connection on a handshake failure path,
// where the handshake error already in flight is the informative one.
func abortConn(conn net.Conn) {
	//simvet:discard — failure-path teardown; the handshake error being returned supersedes the close error
	_ = conn.Close()
}

// headerHasToken reports whether a comma-separated header contains the token
// (case-insensitive), as required for Connection/Upgrade parsing.
func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Upgrade performs the server side of the RFC 6455 opening handshake,
// hijacking the HTTP connection. On failure it writes the HTTP error
// response itself and returns a non-nil error.
func Upgrade(w http.ResponseWriter, r *http.Request) (*WSConn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: handshake requires GET", http.StatusMethodNotAllowed)
		return nil, fmt.Errorf("serve: handshake method %s", r.Method)
	}
	if !headerHasToken(r.Header, "Connection", "upgrade") ||
		!headerHasToken(r.Header, "Upgrade", "websocket") {
		http.Error(w, "websocket: upgrade required", http.StatusBadRequest)
		return nil, errors.New("serve: missing upgrade headers")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "websocket: unsupported version", http.StatusUpgradeRequired)
		return nil, fmt.Errorf("serve: websocket version %q", v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "websocket: missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("serve: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: hijacking unsupported", http.StatusInternalServerError)
		return nil, errors.New("serve: response writer cannot hijack")
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("serve: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := conn.Write([]byte(resp)); err != nil {
		abortConn(conn)
		return nil, fmt.Errorf("serve: handshake write: %w", err)
	}
	// brw.Reader may already hold frames the client pipelined behind the
	// handshake; keep reading through it.
	return newWSConn(conn, brw.Reader, false), nil
}

// DialWS performs the client side of the opening handshake against a ws://
// (or http://) URL and returns the connection.
func DialWS(rawURL string) (*WSConn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("serve: dial: %w", err)
	}
	switch u.Scheme {
	case "ws", "http":
	default:
		return nil, fmt.Errorf("serve: dial: unsupported scheme %q (TLS is not implemented)", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, fmt.Errorf("serve: dial: %w", err)
	}
	var keyRaw [16]byte
	if _, err := rand.Read(keyRaw[:]); err != nil {
		abortConn(conn)
		return nil, fmt.Errorf("serve: dial: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(keyRaw[:])
	req := "GET " + u.RequestURI() + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		abortConn(conn)
		return nil, fmt.Errorf("serve: dial: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		abortConn(conn)
		return nil, fmt.Errorf("serve: dial: read handshake: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		resp.Body.Close()
		abortConn(conn)
		return nil, fmt.Errorf("serve: dial: handshake refused: %s: %s",
			resp.Status, strings.TrimSpace(string(body)))
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != acceptKey(key) {
		abortConn(conn)
		return nil, fmt.Errorf("serve: dial: bad Sec-WebSocket-Accept %q", got)
	}
	return newWSConn(conn, br, true), nil
}
