package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/wire"
)

// testServer boots a Server over a fresh random POI set and returns both so
// oracle tests can query the module directly.
func testServer(t *testing.T, nPOIs int, opts Options) (*httptest.Server, *sim.ServerModule) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10000, 10000)}
	mod := sim.NewServerModule(sim.RandomPOIs(nPOIs, bounds, rng), 30)
	srv := httptest.NewServer(NewServer(mod, opts).Handler())
	t.Cleanup(srv.Close)
	return srv, mod
}

// openSession POSTs /v1/session and dials the query WebSocket.
func openSession(t *testing.T, srv *httptest.Server) *WSConn {
	t.Helper()
	ws, err := tryOpenSession(srv)
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

func tryOpenSession(srv *httptest.Server) (*WSConn, error) {
	resp, err := http.Post(srv.URL+"/v1/session", "application/json", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("session: status %d", resp.StatusCode)
	}
	var doc struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("session: %v", err)
	}
	return DialWS(wsURL(srv) + "/v1/ws?session=" + doc.Session)
}

// The acceptance bar for the whole server: a served kNN answer must be the
// byte-for-byte encoding of what the in-process ServerModule computes —
// same neighbors, same tie order, same page count.
func TestServedKNNMatchesOracle(t *testing.T) {
	srv, mod := testServer(t, 5000, Options{})
	ws := openSession(t, srv)
	defer ws.Close()

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		q := wire.Query{
			ReqID: uint32(trial),
			K:     1 + rng.Intn(20),
			Loc:   geom.Pt(rng.Float64()*10000, rng.Float64()*10000),
		}
		if rng.Float64() < 0.3 {
			q.HasLower, q.Lower = true, rng.Float64()*200
		}
		if rng.Float64() < 0.3 {
			q.HasUpper, q.Upper = true, 300+rng.Float64()*2000
		}
		if err := ws.WriteBinary(wire.EncodeQuery(q)); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ws.ReadMessage()
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}

		b := nn.Bounds{Lower: q.Lower, HasLower: q.HasLower, Upper: q.Upper, HasUpper: q.HasUpper}
		// The served query already bumped the module's counters; KNNCounted
		// here bumps them again, which is fine — counters are stats, not
		// answer content.
		neighbors, pages := mod.KNNCounted(q.Loc, q.K, b)
		want := wire.EncodeAnswer(wire.Answer{
			ReqID: q.ReqID,
			Pages: pages,
			Cache: core.PeerCache{QueryLoc: q.Loc, Neighbors: neighbors},
		})
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (k=%d): served answer differs from in-process oracle", trial, q.K)
		}
	}
}

// Same bar for range queries.
func TestServedRangeMatchesOracle(t *testing.T) {
	srv, mod := testServer(t, 5000, Options{})
	ws := openSession(t, srv)
	defer ws.Close()

	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		rq := wire.RangeQuery{
			ReqID:  uint32(1000 + trial),
			Loc:    geom.Pt(rng.Float64()*10000, rng.Float64()*10000),
			Radius: 50 + rng.Float64()*400,
		}
		if err := ws.WriteBinary(wire.EncodeRange(rq)); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ws.ReadMessage()
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		want := wire.EncodeAnswer(wire.Answer{
			ReqID: rq.ReqID,
			Cache: core.PeerCache{QueryLoc: rq.Loc, Neighbors: mod.Range(rq.Loc, rq.Radius)},
		})
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: served range answer differs from in-process oracle", trial)
		}
	}
}

// The query channel requires a registered session.
func TestWSAuthRequired(t *testing.T) {
	srv, _ := testServer(t, 100, Options{})
	for _, path := range []string{"/v1/ws", "/v1/ws?session=deadbeef"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s: status %d, want 403", path, resp.StatusCode)
		}
	}
}

// Over-limit k gets an error reply, and the connection stays usable.
func TestOverLimitKKeepsConnUsable(t *testing.T) {
	srv, _ := testServer(t, 500, Options{MaxK: 8})
	ws := openSession(t, srv)
	defer ws.Close()

	if err := ws.WriteBinary(wire.EncodeQuery(wire.Query{ReqID: 7, K: 9, Loc: geom.Pt(1, 1)})); err != nil {
		t.Fatal(err)
	}
	data, err := ws.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != wire.TypeError || msg.Err.ReqID != 7 || msg.Err.Code != wire.ErrCodeBadRequest {
		t.Fatalf("got %+v, want bad-request error for req 7", msg)
	}

	// Connection must survive the rejection.
	if err := ws.WriteBinary(wire.EncodeQuery(wire.Query{ReqID: 8, K: 3, Loc: geom.Pt(1, 1)})); err != nil {
		t.Fatal(err)
	}
	data, err = ws.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	msg, err = wire.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != wire.TypeAnswer || msg.Answer.ReqID != 8 || len(msg.Answer.Cache.Neighbors) != 3 {
		t.Fatalf("follow-up query got %+v", msg)
	}
}

// Peer-channel message types are meaningless client-to-server.
func TestPeerMessagesUnsupported(t *testing.T) {
	srv, _ := testServer(t, 100, Options{})
	ws := openSession(t, srv)
	defer ws.Close()

	if err := ws.WriteBinary(wire.EncodeCacheRequest()); err != nil {
		t.Fatal(err)
	}
	data, err := ws.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != wire.TypeError || msg.Err.Code != wire.ErrCodeUnsupported {
		t.Fatalf("got %+v, want unsupported error", msg)
	}
}

// Malformed wire bytes inside a valid WebSocket frame tear the connection
// down after an error reply.
func TestGarbagePayloadClosesConn(t *testing.T) {
	srv, _ := testServer(t, 100, Options{})
	ws := openSession(t, srv)
	defer ws.Close()

	if err := ws.WriteBinary([]byte{0xff, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	data, err := ws.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Decode(data)
	if err != nil || msg.Type != wire.TypeError {
		t.Fatalf("got %+v (%v), want error message", msg, err)
	}
	if _, err := ws.ReadMessage(); err == nil {
		t.Fatal("connection still open after protocol garbage")
	}
}

// Many sessions connecting, moving, querying, and disconnecting at once:
// every answer must match the oracle, with zero server-side protocol errors.
// Run under -race this also proves the shared query path is data-race free.
func TestSessionLifecycleConcurrent(t *testing.T) {
	srv, mod := testServer(t, 2000, Options{})

	const workers, queriesPerWorker = 16, 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws, err := tryOpenSession(srv)
			if err != nil {
				errs <- err
				return
			}
			defer ws.Close()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < queriesPerWorker; i++ {
				pos := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
				if err := ws.WriteBinary(wire.EncodePosition(pos)); err != nil {
					errs <- fmt.Errorf("worker %d: position: %v", w, err)
					return
				}
				q := wire.Query{ReqID: uint32(w<<16 | i), K: 1 + rng.Intn(10), Loc: pos}
				if err := ws.WriteBinary(wire.EncodeQuery(q)); err != nil {
					errs <- fmt.Errorf("worker %d: query: %v", w, err)
					return
				}
				got, err := ws.ReadMessage()
				if err != nil {
					errs <- fmt.Errorf("worker %d: read: %v", w, err)
					return
				}
				neighbors, _ := mod.KNNCounted(q.Loc, q.K, nn.Bounds{})
				msg, err := wire.Decode(got)
				if err != nil {
					errs <- fmt.Errorf("worker %d: decode: %v", w, err)
					return
				}
				if msg.Type != wire.TypeAnswer || msg.Answer.ReqID != q.ReqID {
					errs <- fmt.Errorf("worker %d: wrong reply %+v", w, msg)
					return
				}
				if len(msg.Answer.Cache.Neighbors) != len(neighbors) {
					errs <- fmt.Errorf("worker %d: %d neighbors, want %d",
						w, len(msg.Answer.Cache.Neighbors), len(neighbors))
					return
				}
				for j := range neighbors {
					if msg.Answer.Cache.Neighbors[j].ID != neighbors[j].ID {
						errs <- fmt.Errorf("worker %d: neighbor %d mismatch", w, j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ProtoErrors != 0 {
		t.Fatalf("protocol_errors = %d, want 0", st.ProtoErrors)
	}
	if st.Sessions != workers || st.Queries != workers*queriesPerWorker ||
		st.Positions != workers*queriesPerWorker {
		t.Fatalf("stats = %+v, want %d sessions / %d queries", st, workers, workers*queriesPerWorker)
	}
}

// Boot path: a store written to disk and served must answer exactly like a
// module built directly from the same POIs — the store preserves insertion
// order and fanout, so the trees are identical.
func TestServeFromStoreMatchesDirectModule(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(6000, 6000)}
	pois := sim.ClusteredPOIs(3000, bounds, 12, 250, rng)

	path := t.TempDir() + "/pois.senp"
	if err := WriteStore(path, pois, 24, bounds); err != nil {
		t.Fatal(err)
	}
	info, loaded, err := ReadStore(path)
	if err != nil {
		t.Fatal(err)
	}

	direct := sim.NewServerModule(pois, 24)
	fromStore := sim.NewServerModule(loaded, info.Fanout)

	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64()*6000, rng.Float64()*6000)
		k := 1 + rng.Intn(15)
		wantN, wantP := direct.KNNCounted(q, k, nn.Bounds{})
		gotN, gotP := fromStore.KNNCounted(q, k, nn.Bounds{})
		if gotP != wantP || len(gotN) != len(wantN) {
			t.Fatalf("trial %d: pages %d/%d, n %d/%d", trial, gotP, wantP, len(gotN), len(wantN))
		}
		for i := range wantN {
			if gotN[i].ID != wantN[i].ID {
				t.Fatalf("trial %d: neighbor %d differs", trial, i)
			}
		}
	}
}
