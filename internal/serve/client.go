package serve

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/wire"
)

// SENNClient is a networked mobile host: the same Algorithm-1 client core
// the simulator runs (internal/client), wired to the daemon instead of a
// grid snapshot. Peer caches arrive through the daemon's relay
// (PeerRequest → PeerShares) and the server fallback travels as a bounded
// wire Query, so a peer-certified answer here is produced by the identical
// verification code path a simulated host uses — which is what keeps the
// served system oracle-exact against the in-process one.
//
// The client is synchronous and single-goroutine: every Query drives the
// connection itself, answering any PeerProbe that arrives while it waits
// for its own PeerShares or Answer. That inline servicing is not a
// convenience — a probed client that refused to reply until its own query
// finished would force every neighbor's relay onto the timeout path.
type SENNClient struct {
	ws       *WSConn
	cache    *cache.Cache
	resolver *client.Resolver
	txRange  float64
	sharing  bool

	pos     geom.Point
	nextReq uint32
	// shares holds the caches relayed for the current query (their Neighbors
	// alias decScratch, reused per exchange — the resolver copies anything it
	// keeps); peerSrc and srv are the resolver's transport adapters, embedded
	// so taking their address allocates nothing. encBuf and decScratch make
	// the steady-state exchange allocation-free on both directions of the
	// relay channel, mirroring serveConn's pooled AppendAnswer buffer.
	shares     []core.PeerCache
	peerSrc    relayPeerSource
	srv        wireServer
	encBuf     []byte
	decScratch wire.SharesScratch

	// relayObs, when set, observes each completed relay exchange's latency
	// (PeerRequest written → PeerShares decoded).
	relayObs func(time.Duration)

	stats ClientStats
}

// ClientStats are one client's cumulative counters.
type ClientStats struct {
	// Queries issued, split by how they resolved. PeerSolved counts every
	// query certified without the server (single-peer, multi-peer);
	// OwnCacheSolved is the subset certified with zero relayed shares —
	// the host's own cache entry sufficed.
	Queries        int64
	PeerSolved     int64
	OwnCacheSolved int64
	ServerSolved   int64
	// SharesReceived counts peer caches delivered by the relay;
	// ProbesAnswered counts PeerProbes this client replied to.
	SharesReceived int64
	ProbesAnswered int64
	// PeerMsgs and PeerBytes are the P2P exchange cost at air-interface
	// (CacheRequest/CacheShare) codec sizes — the same accounting the
	// simulator reports, so the two are comparable.
	PeerMsgs  int64
	PeerBytes int64
	// Pages is the server-side page-access cost of this client's fallback
	// queries.
	Pages int64
}

// NewSENNClient wraps an established session connection. capacity is the
// local cache size C_Size (minimum 1); txRange is the transmission radius
// sent with every PeerRequest; sharing=false skips the relay exchange
// entirely (a host with its radio off — the server-only baseline).
func NewSENNClient(ws *WSConn, capacity int, txRange float64, sharing bool) *SENNClient {
	if capacity < 1 {
		capacity = 1
	}
	c := &SENNClient{
		ws:       ws,
		cache:    cache.New(capacity),
		resolver: client.NewResolver(),
		txRange:  txRange,
		sharing:  sharing,
	}
	c.peerSrc.c = c
	c.srv.c = c
	return c
}

// Stats returns the cumulative counters.
func (c *SENNClient) Stats() ClientStats { return c.stats }

// SetRelayObserver installs fn to be called with the wall-clock latency of
// each completed relay exchange (load harnesses feed these into their
// percentile digests). nil removes the observer.
func (c *SENNClient) SetRelayObserver(fn func(time.Duration)) { c.relayObs = fn }

// Cache exposes the client's local cache (tests prime and inspect it).
func (c *SENNClient) Cache() *cache.Cache { return c.cache }

// Move streams the client's new position to the daemon. The position is
// what the relay's range sweep reads (and what keeps the server's spatial
// directory current), so it must precede any Query that expects neighbors
// to see this host.
func (c *SENNClient) Move(p geom.Point) error {
	c.pos = p
	c.encBuf = wire.AppendPosition(c.encBuf[:0], p)
	return c.ws.WriteBinary(c.encBuf)
}

// Query resolves a k-nearest-neighbor query at the client's current
// position: relay exchange, local verification via the shared client core,
// bounded server fallback only for the uncertified remainder. The returned
// candidates are a private copy in ascending distance order.
func (c *SENNClient) Query(k int) ([]core.Candidate, core.Source, error) {
	c.resolver.ResetArena()
	var ps client.PeerSource
	if c.sharing {
		if err := c.gatherShares(); err != nil {
			return nil, 0, err
		}
		ps = &c.peerSrc
	}
	out := c.resolver.Resolve(client.Request{
		Q:          c.pos,
		K:          k,
		Cache:      c.cache,
		NeedAnswer: true,
	}, ps, &c.srv)
	if out.Err != nil {
		return nil, out.Src, out.Err
	}
	if out.Write.Staged() {
		out.Write.Apply(c.cache)
	}
	c.stats.Queries++
	c.stats.PeerMsgs += out.Msgs
	c.stats.PeerBytes += out.Bytes
	c.stats.Pages += out.Pages
	if out.PeerSolved() {
		c.stats.PeerSolved++
		if len(c.shares) == 0 {
			c.stats.OwnCacheSolved++
		}
	} else {
		c.stats.ServerSolved++
	}
	return out.Answer, out.Src, nil
}

// Range issues a range query at the client's current position, servicing
// relay probes while it waits. It returns the number of POIs within the
// radius. Range answers are certain regions, but they are not distance
// prefixes, so they never enter the NN cache.
func (c *SENNClient) Range(radius float64) (int, error) {
	c.nextReq++
	reqID := c.nextReq
	if err := c.ws.WriteBinary(wire.EncodeRange(wire.RangeQuery{
		ReqID:  reqID,
		Loc:    c.pos,
		Radius: radius,
	})); err != nil {
		return 0, err
	}
	for {
		msg, err := c.readMsg()
		if err != nil {
			return 0, err
		}
		switch msg.Type {
		case wire.TypePeerProbe:
			if err := c.answerProbe(msg.ProbeID); err != nil {
				return 0, err
			}
		case wire.TypeAnswer:
			if msg.Answer.ReqID != reqID {
				return 0, fmt.Errorf("serve: client: answer for request %d, want %d",
					msg.Answer.ReqID, reqID)
			}
			return len(msg.Answer.Cache.Neighbors), nil
		case wire.TypeError:
			return 0, fmt.Errorf("serve: client: server error code %d for range request %d",
				msg.Err.Code, reqID)
		default:
			return 0, fmt.Errorf("serve: client: unexpected %d frame while awaiting range answer", msg.Type)
		}
	}
}

// gatherShares runs the relay exchange: send PeerRequest, service probes,
// collect the PeerShares aggregate into c.shares. The aggregate is decoded
// into the client's reusable scratch (wire.DecodePeerSharesInto), so a
// steady stream of exchanges allocates nothing once the scratch has grown
// to the neighborhood's working-set size — the decode-side mirror of the
// pooled encode buffer.
func (c *SENNClient) gatherShares() error {
	c.shares = c.shares[:0]
	c.nextReq++
	reqID := c.nextReq
	c.encBuf = wire.AppendPeerRequest(c.encBuf[:0], wire.PeerRequest{
		ReqID:  reqID,
		Loc:    c.pos,
		Radius: c.txRange,
	})
	var start time.Time
	if c.relayObs != nil {
		start = time.Now()
	}
	if err := c.ws.WriteBinary(c.encBuf); err != nil {
		return err
	}
	for {
		data, err := c.ws.ReadMessage()
		if err != nil {
			return err
		}
		typ, err := wire.PeekType(data)
		if err != nil {
			return err
		}
		if typ == wire.TypePeerShares {
			ps, err := wire.DecodePeerSharesInto(data, &c.decScratch)
			if err != nil {
				return err
			}
			if ps.ReqID != reqID {
				return fmt.Errorf("serve: client: peer shares for request %d, want %d",
					ps.ReqID, reqID)
			}
			if c.relayObs != nil {
				c.relayObs(time.Since(start))
			}
			// The decoder has already enforced ascending neighbor order on
			// every share, so they feed the resolver directly — no re-sort.
			c.shares = append(c.shares, ps.Shares...)
			c.stats.SharesReceived += int64(len(ps.Shares))
			return nil
		}
		msg, err := wire.Decode(data)
		if err != nil {
			return err
		}
		switch msg.Type {
		case wire.TypePeerProbe:
			if err := c.answerProbe(msg.ProbeID); err != nil {
				return err
			}
		case wire.TypeError:
			return fmt.Errorf("serve: client: server error code %d during relay", msg.Err.Code)
		default:
			return fmt.Errorf("serve: client: unexpected %d frame while awaiting peer shares", msg.Type)
		}
	}
}

// answerProbe replies to a relay probe with this host's cache entry (or an
// empty reply — mandatory either way, so the relay's countdown completes).
func (c *SENNClient) answerProbe(probeID uint32) error {
	c.stats.ProbesAnswered++
	ent, ok := c.cache.Entry()
	if !ok {
		ent = core.PeerCache{}
	}
	c.encBuf = wire.AppendShareReply(c.encBuf[:0], probeID, ok, ent)
	return c.ws.WriteBinary(c.encBuf)
}

// readMsg reads and decodes one wire message.
func (c *SENNClient) readMsg() (wire.Message, error) {
	data, err := c.ws.ReadMessage()
	if err != nil {
		return wire.Message{}, err
	}
	return wire.Decode(data)
}

// relayPeerSource adapts the relayed shares to client.PeerSource. The cost
// accounting uses air-interface (CacheRequest/CacheShare) codec sizes, not
// relay-frame sizes: PeerBytes then measures the paper's P2P channel and
// stays directly comparable with the simulator's metric.
type relayPeerSource struct{ c *SENNClient }

func (r *relayPeerSource) Gather(q geom.Point, dst []core.PeerCache) ([]core.PeerCache, int64, int64) {
	msgs, bytes := int64(1), int64(wire.CacheRequestSize)
	for _, sh := range r.c.shares {
		msgs++
		bytes += int64(wire.CacheShareSize(len(sh.Neighbors)))
	}
	return append(dst, r.c.shares...), msgs, bytes
}

// wireServer adapts the daemon's query channel to client.Server: the §3.3
// pruning bounds ride inside the wire Query, so the EINN search runs
// bounded server-side exactly as the in-process fallback does.
type wireServer struct{ c *SENNClient }

func (w *wireServer) KNNInto(q geom.Point, k int, b nn.Bounds, dst []core.POI) ([]core.POI, int64, error) {
	c := w.c
	c.nextReq++
	reqID := c.nextReq
	c.encBuf = wire.AppendQuery(c.encBuf[:0], wire.Query{
		ReqID:    reqID,
		K:        k,
		Loc:      q,
		HasLower: b.HasLower,
		Lower:    b.Lower,
		HasUpper: b.HasUpper,
		Upper:    b.Upper,
	})
	if err := c.ws.WriteBinary(c.encBuf); err != nil {
		return nil, 0, err
	}
	for {
		msg, err := c.readMsg()
		if err != nil {
			return nil, 0, err
		}
		switch msg.Type {
		case wire.TypePeerProbe:
			if err := c.answerProbe(msg.ProbeID); err != nil {
				return nil, 0, err
			}
		case wire.TypeAnswer:
			if msg.Answer.ReqID != reqID {
				return nil, 0, fmt.Errorf("serve: client: answer for request %d, want %d",
					msg.Answer.ReqID, reqID)
			}
			return append(dst[:0], msg.Answer.Cache.Neighbors...), msg.Answer.Pages, nil
		case wire.TypeError:
			return nil, 0, fmt.Errorf("serve: client: server error code %d for request %d",
				msg.Err.Code, reqID)
		default:
			return nil, 0, fmt.Errorf("serve: client: unexpected %d frame while awaiting answer", msg.Type)
		}
	}
}
