package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Options configures a Server.
type Options struct {
	// MaxK caps the k served per query (default 512, never above
	// wire.MaxQueryK — the codec rejects larger requests before the server
	// sees them).
	MaxK int
	// MaxAnswer caps the neighbors a single answer may carry; range
	// queries whose result exceeds it get a wire.ErrCodeTooLarge error
	// reply instead of a truncated (and therefore uncertifiable) region.
	// Default 4096.
	MaxAnswer int
	// Bounds is the service area reported to clients (default: the store's
	// or the POI set's bounding box).
	Bounds geom.Rect
	// MaxTxRange caps the transmission radius a PeerRequest may ask the
	// relay to sweep (default 10000). Larger requested radii are clamped,
	// not refused — the paper's hosts cannot grow their antennas either.
	MaxTxRange float64
	// RelayTimeout bounds how long a peer-cache relay waits for probed
	// sessions before delivering what arrived (default 2s).
	RelayTimeout time.Duration
	// FlushThreshold is the per-connection write-batching limit in bytes
	// (default 2048; negative disables batching).
	FlushThreshold int
	// DirCell is the session directory's grid cell size in world units
	// (default: 1/64 of the service area's larger side; clamped so the grid
	// stays at most 512 cells per axis).
	DirCell float64
	// DirShards is the directory's lock-stripe count, rounded up to a power
	// of two (default 64).
	DirShards int
}

// Server is the network face of the remote spatial database: HTTP for
// session setup and statistics, WebSocket + internal/wire binary messages
// for the query channel. All query traffic funnels into a
// sim.SnapshotQuerier over the shared read-only R*-tree, so any number of
// connection goroutines serve concurrently.
type Server struct {
	querier      *sim.SnapshotQuerier
	maxK         int
	maxAnswer    int
	maxTxRange   float64
	relayTimeout time.Duration
	flushBytes   int
	bounds       geom.Rect
	mux          *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*session

	// dir is the sharded spatial index over session positions: the relay's
	// range sweep reads it instead of walking s.sessions under s.mu.
	dir *sessionDirectory

	relay relayTable

	stat struct {
		sessions    atomic.Int64
		activeConns atomic.Int64
		positions   atomic.Int64
		queries     atomic.Int64
		ranges      atomic.Int64
		protoErrors atomic.Int64
		// Relay counters: requests received, shares delivered to
		// requesters, oversized shares refused, replies with unknown
		// (forged, duplicate, or post-timeout) probe IDs, relays that rode
		// the timeout, and the peers-in-range histogram (see
		// peersInRangeBucket for the bucket boundaries).
		relayRequests atomic.Int64
		relayShares   atomic.Int64
		relayRejected atomic.Int64
		relayUnknown  atomic.Int64
		relayTimeouts atomic.Int64
		peersInRange  [peersInRangeBuckets]atomic.Int64
	}
}

// peersInRangeBuckets is the peers-in-range histogram size: 0, 1, 2-3,
// 4-7, 8-15, 16-31, 32+.
const peersInRangeBuckets = 7

// session is one registered client. The server keeps its last reported
// position — the state the peer relay's range sweep reads — its live
// connection for relay probes, and its traffic counts.
type session struct {
	mu      sync.Mutex
	conn    *WSConn
	pos     geom.Point
	hasPos  bool
	queries int64

	// Spatial-directory bookkeeping. dirMu serializes this session's cell
	// transitions; dirIn/dirCell are read and written only under dirMu, and
	// dirSlot only under the owning cell's shard lock (see directory.go for
	// the full lock-ordering story).
	dirMu   sync.Mutex
	dirIn   bool
	dirCell int32
	dirSlot int32
}

func (s *session) setPos(p geom.Point) {
	s.mu.Lock()
	s.pos, s.hasPos = p, true
	s.mu.Unlock()
}

// NewServer wraps mod with the network service.
func NewServer(mod *sim.ServerModule, opts Options) *Server {
	if opts.MaxK <= 0 {
		opts.MaxK = 512
	}
	if opts.MaxK > wire.MaxQueryK {
		opts.MaxK = wire.MaxQueryK
	}
	if opts.MaxAnswer <= 0 {
		opts.MaxAnswer = 4096
	}
	if opts.MaxTxRange <= 0 {
		opts.MaxTxRange = defaultMaxTxRange
	}
	if opts.RelayTimeout <= 0 {
		opts.RelayTimeout = defaultRelayTimeout
	}
	switch {
	case opts.FlushThreshold == 0:
		opts.FlushThreshold = 2048
	case opts.FlushThreshold < 0:
		opts.FlushThreshold = 0
	}
	bounds := opts.Bounds
	if bounds.Max.X <= bounds.Min.X || bounds.Max.Y <= bounds.Min.Y {
		bounds = poiBounds(mod.POIs())
	}
	s := &Server{
		querier:      sim.NewSnapshotQuerier(mod),
		maxK:         opts.MaxK,
		maxAnswer:    opts.MaxAnswer,
		maxTxRange:   opts.MaxTxRange,
		relayTimeout: opts.RelayTimeout,
		flushBytes:   opts.FlushThreshold,
		bounds:       bounds,
		sessions:     make(map[string]*session),
		dir:          newSessionDirectory(bounds, opts.DirCell, opts.DirShards),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/session", s.handleNewSession)
	mux.HandleFunc("GET /v1/ws", s.handleWS)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// poiBounds computes the bounding box of the data set (zero rect when
// empty).
func poiBounds(pois []core.POI) geom.Rect {
	if len(pois) == 0 {
		return geom.Rect{}
	}
	b := geom.Rect{Min: pois[0].Loc, Max: pois[0].Loc}
	for _, p := range pois[1:] {
		if p.Loc.X < b.Min.X {
			b.Min.X = p.Loc.X
		}
		if p.Loc.Y < b.Min.Y {
			b.Min.Y = p.Loc.Y
		}
		if p.Loc.X > b.Max.X {
			b.Max.X = p.Loc.X
		}
		if p.Loc.Y > b.Max.Y {
			b.Max.Y = p.Loc.Y
		}
	}
	return b
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// newToken mints a 128-bit random session token.
func newToken() (string, error) {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(raw[:]), nil
}

func (s *Server) handleNewSession(w http.ResponseWriter, r *http.Request) {
	token, err := newToken()
	if err != nil {
		http.Error(w, "session: entropy unavailable", http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	s.sessions[token] = &session{}
	s.mu.Unlock()
	s.stat.sessions.Add(1)
	writeJSON(w, map[string]string{"session": token})
}

func (s *Server) lookup(token string) *session {
	if token == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[token]
}

func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.URL.Query().Get("session"))
	if sess == nil {
		http.Error(w, "unknown session (POST /v1/session first)", http.StatusForbidden)
		return
	}
	ws, err := Upgrade(w, r)
	if err != nil {
		return // Upgrade wrote the HTTP error
	}
	ws.SetFlushThreshold(s.flushBytes)
	// Attach the connection to the session so the peer relay can probe it;
	// a reconnect simply supersedes the previous attachment.
	sess.mu.Lock()
	sess.conn = ws
	sess.mu.Unlock()
	s.stat.activeConns.Add(1)
	defer s.stat.activeConns.Add(-1)
	defer s.dropConn(sess, ws)
	//simvet:discard — teardown of a finished connection; serveConn already accounted the session-ending error
	defer ws.Close()
	s.serveConn(sess, ws)
}

// serveConn runs one connection's read-dispatch-answer loop. The scratch
// slice and the pooled encode buffer keep steady-state kNN serving
// allocation-free: answers are encoded append-style into encBuf and handed
// to the batched writer, which copies into the connection's pending buffer
// before returning.
func (s *Server) serveConn(sess *session, ws *WSConn) {
	var scratch []core.POI
	var encBuf []byte
	for {
		data, err := ws.ReadMessage()
		if err != nil {
			// Orderly close, peer protocol violation, or transport death:
			// the connection is done either way. Protocol violations are
			// accounted so the load harness can gate on zero.
			if err != ErrConnClosed {
				s.stat.protoErrors.Add(1)
			}
			return
		}
		msg, err := wire.Decode(data)
		if err != nil {
			// Garbage framing inside a valid WebSocket message: strict
			// tear-down, like a WebSocket protocol violation.
			s.stat.protoErrors.Add(1)
			//simvet:discard — best-effort error report on a connection being torn down; the write failing changes nothing
			_ = ws.WriteBinary(wire.EncodeError(wire.ErrorMsg{Code: wire.ErrCodeBadRequest}))
			return
		}
		switch msg.Type {
		case wire.TypePosition:
			sess.setPos(msg.Pos)
			s.dir.update(sess, msg.Pos)
			s.stat.positions.Add(1)
		case wire.TypeQuery:
			q := msg.Query
			if q.K > s.maxK {
				s.stat.protoErrors.Add(1)
				if ws.WriteBinary(wire.EncodeError(wire.ErrorMsg{ReqID: q.ReqID, Code: wire.ErrCodeBadRequest})) != nil {
					return
				}
				continue
			}
			b := nn.Bounds{Lower: q.Lower, HasLower: q.HasLower, Upper: q.Upper, HasUpper: q.HasUpper}
			var pages int64
			scratch, pages = s.querier.KNN(q.Loc, q.K, b, scratch)
			s.stat.queries.Add(1)
			sess.mu.Lock()
			sess.queries++
			sess.mu.Unlock()
			ans := wire.Answer{
				ReqID: q.ReqID,
				Pages: pages,
				Cache: core.PeerCache{QueryLoc: q.Loc, Neighbors: scratch},
			}
			encBuf = wire.AppendAnswer(encBuf[:0], ans)
			if ws.WriteBinaryBatched(encBuf) != nil {
				return
			}
		case wire.TypeRange:
			rq := msg.Range
			hits := s.querier.Range(rq.Loc, rq.Radius)
			s.stat.ranges.Add(1)
			sess.mu.Lock()
			sess.queries++
			sess.mu.Unlock()
			if len(hits) > s.maxAnswer {
				// A truncated range answer would claim a certain region it
				// does not cover; refuse instead.
				if ws.WriteBinary(wire.EncodeError(wire.ErrorMsg{ReqID: rq.ReqID, Code: wire.ErrCodeTooLarge})) != nil {
					return
				}
				continue
			}
			ans := wire.Answer{
				ReqID: rq.ReqID,
				Cache: core.PeerCache{QueryLoc: rq.Loc, Neighbors: hits},
			}
			encBuf = wire.AppendAnswer(encBuf[:0], ans)
			if ws.WriteBinaryBatched(encBuf) != nil {
				return
			}
		case wire.TypePeerRequest:
			if s.startRelay(sess, ws, msg.PeerReq) != nil {
				return
			}
		case wire.TypeShareReply:
			s.handleShareReply(sess, msg.Share)
		default:
			// Raw air-interface messages (CacheShare, CacheRequest) and
			// server-to-client messages have no meaning client-to-server;
			// the relayed forms (PeerRequest, ShareReply) are handled above.
			s.stat.protoErrors.Add(1)
			if ws.WriteBinary(wire.EncodeError(wire.ErrorMsg{Code: wire.ErrCodeUnsupported})) != nil {
				return
			}
		}
	}
}

// Stats is the /v1/stats document.
type Stats struct {
	POIs         int     `json:"pois"`
	BoundsMinX   float64 `json:"bounds_min_x"`
	BoundsMinY   float64 `json:"bounds_min_y"`
	BoundsMaxX   float64 `json:"bounds_max_x"`
	BoundsMaxY   float64 `json:"bounds_max_y"`
	Sessions     int     `json:"sessions"`
	ActiveConns  int64   `json:"active_conns"`
	Positions    int64   `json:"positions"`
	Queries      int64   `json:"queries"`
	RangeQueries int64   `json:"range_queries"`
	ProtoErrors  int64   `json:"protocol_errors"`
	// ServerQueries and PageAccesses are the wrapped module's own counters
	// — the PAR metric, aggregated across every connection.
	ServerQueries int64 `json:"server_queries"`
	PageAccesses  int64 `json:"page_accesses"`
	// Relay counters: see the relay documentation in relay.go. The
	// histogram buckets are peers-in-range counts 0, 1, 2-3, 4-7, 8-15,
	// 16-31, 32+.
	RelayRequests       int64   `json:"relay_requests"`
	RelaySharesFwd      int64   `json:"relay_shares_forwarded"`
	RelayRejected       int64   `json:"relay_rejected"`
	RelayUnknownReplies int64   `json:"relay_unknown_replies"`
	RelayTimeouts       int64   `json:"relay_timeouts"`
	PeersInRangeHist    []int64 `json:"peers_in_range_hist"`
	// Session-directory counters: grid cells visited by relay range scans,
	// candidates rejected by the exact distance filter, and incremental
	// index patch ops (cell moves, first insertions included).
	DirCellsScanned int64 `json:"dir_cells_scanned"`
	DirCandRejected int64 `json:"dir_candidates_rejected"`
	DirPatchOps     int64 `json:"dir_patch_ops"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	nSessions := len(s.sessions)
	s.mu.Unlock()
	mod := s.querier.Module()
	hist := make([]int64, peersInRangeBuckets)
	for i := range hist {
		hist[i] = s.stat.peersInRange[i].Load()
	}
	writeJSON(w, Stats{
		POIs:                len(mod.POIs()),
		BoundsMinX:          s.bounds.Min.X,
		BoundsMinY:          s.bounds.Min.Y,
		BoundsMaxX:          s.bounds.Max.X,
		BoundsMaxY:          s.bounds.Max.Y,
		Sessions:            nSessions,
		ActiveConns:         s.stat.activeConns.Load(),
		Positions:           s.stat.positions.Load(),
		Queries:             s.stat.queries.Load(),
		RangeQueries:        s.stat.ranges.Load(),
		ProtoErrors:         s.stat.protoErrors.Load(),
		ServerQueries:       mod.Queries(),
		PageAccesses:        mod.PageAccesses(),
		RelayRequests:       s.stat.relayRequests.Load(),
		RelaySharesFwd:      s.stat.relayShares.Load(),
		RelayRejected:       s.stat.relayRejected.Load(),
		RelayUnknownReplies: s.stat.relayUnknown.Load(),
		RelayTimeouts:       s.stat.relayTimeouts.Load(),
		PeersInRangeHist:    hist,
		DirCellsScanned:     s.dir.cellsScanned.Load(),
		DirCandRejected:     s.dir.candRejected.Load(),
		DirPatchOps:         s.dir.patchOps.Load(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
