package serve

import (
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/pagestore"
	"repro/internal/sim"
)

func TestStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(8000, 8000)}
	// 1000 POIs straddles several pages; also try counts at exact page
	// boundaries and an empty store.
	for _, n := range []int{0, 1, poisPerPage, poisPerPage + 1, 1000} {
		pois := sim.RandomPOIs(n, bounds, rng)
		path := filepath.Join(t.TempDir(), "pois.senp")
		if err := WriteStore(path, pois, 30, bounds); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		info, got, err := ReadStore(path)
		if err != nil {
			t.Fatalf("n=%d: read: %v", n, err)
		}
		if info.Count != n || info.Fanout != 30 || info.Bounds != bounds {
			t.Fatalf("n=%d: info = %+v", n, info)
		}
		if len(got) != len(pois) {
			t.Fatalf("n=%d: %d POIs back, want %d", n, len(got), len(pois))
		}
		for i := range pois {
			if got[i].ID != pois[i].ID ||
				math.Float64bits(got[i].Loc.X) != math.Float64bits(pois[i].Loc.X) ||
				math.Float64bits(got[i].Loc.Y) != math.Float64bits(pois[i].Loc.Y) {
				t.Fatalf("n=%d: POI %d = %+v, want %+v", n, i, got[i], pois[i])
			}
		}
	}
}

func TestWriteStoreRejectsBadFanout(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pois.senp")
	if err := WriteStore(path, nil, 3, geom.Rect{}); err == nil {
		t.Fatal("fanout 3 accepted")
	}
}

// Every corruption mode must be detected at open, not surface later as a
// wrong answer.
func TestReadStoreRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}
	pois := sim.RandomPOIs(10, bounds, rng)

	write := func(t *testing.T) string {
		path := filepath.Join(t.TempDir(), "pois.senp")
		if err := WriteStore(path, pois, 16, bounds); err != nil {
			t.Fatal(err)
		}
		return path
	}
	patch := func(t *testing.T, path string, off int64, b []byte) {
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.WriteAt(b, off); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
		wantSub string
	}{
		{"bad magic", func(t *testing.T, p string) { patch(t, p, 0, []byte{0xde, 0xad}) }, "magic"},
		{"bad version", func(t *testing.T, p string) { patch(t, p, 4, []byte{9}) }, "version"},
		{"tiny fanout", func(t *testing.T, p string) { patch(t, p, 8, []byte{1, 0, 0, 0}) }, "fanout"},
		{"count lies", func(t *testing.T, p string) {
			var cnt [8]byte
			binary.LittleEndian.PutUint64(cnt[:], 5000)
			patch(t, p, 12, cnt[:])
		}, "pages"},
		{"nan bounds", func(t *testing.T, p string) {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(math.NaN()))
			patch(t, p, 20, b[:])
		}, "bounds"},
		{"truncated", func(t *testing.T, p string) {
			if err := os.Truncate(p, pagestore.PageSize); err != nil {
				t.Fatal(err)
			}
		}, "pages"},
		{"nan poi", func(t *testing.T, p string) {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(math.NaN()))
			patch(t, p, pagestore.PageSize+8, b[:])
		}, "POI"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := write(t)
			tc.corrupt(t, path)
			_, _, err := ReadStore(path)
			if err == nil {
				t.Fatal("corrupt store accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
