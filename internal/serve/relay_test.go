package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/wire"
)

func fetchStats(t *testing.T, srv *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func readDecoded(t *testing.T, ws *WSConn) wire.Message {
	t.Helper()
	data, err := ws.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

// syncPosition streams a position and proves the server consumed it by
// round-tripping a query behind it — position frames carry no ack of their
// own, and relay tests need the sweep to see the peer.
func syncPosition(t *testing.T, ws *WSConn, pos geom.Point) {
	t.Helper()
	if err := ws.WriteBinary(wire.EncodePosition(pos)); err != nil {
		t.Fatal(err)
	}
	if err := ws.WriteBinary(wire.EncodeQuery(wire.Query{ReqID: 0xfff0, K: 1, Loc: pos})); err != nil {
		t.Fatal(err)
	}
	if msg := readDecoded(t, ws); msg.Type != wire.TypeAnswer || msg.Answer.ReqID != 0xfff0 {
		t.Fatalf("position sync got %+v", msg)
	}
}

// A relay with nobody in range must complete immediately and empty — no
// timer, no waiting.
func TestRelayZeroPeersInRange(t *testing.T) {
	srv, _ := testServer(t, 200, Options{})
	ws := openSession(t, srv)
	defer ws.Close()

	if err := ws.WriteBinary(wire.EncodePeerRequest(wire.PeerRequest{
		ReqID: 7, Loc: geom.Pt(100, 100), Radius: 500,
	})); err != nil {
		t.Fatal(err)
	}
	msg := readDecoded(t, ws)
	if msg.Type != wire.TypePeerShares || msg.Shares.ReqID != 7 ||
		msg.Shares.PeersInRange != 0 || len(msg.Shares.Shares) != 0 {
		t.Fatalf("got %+v, want empty peer shares for req 7", msg)
	}
	st := fetchStats(t, srv)
	if st.RelayRequests != 1 || st.RelayTimeouts != 0 {
		t.Fatalf("stats %+v, want 1 relay request, 0 timeouts", st)
	}
	if len(st.PeersInRangeHist) != peersInRangeBuckets || st.PeersInRangeHist[0] != 1 {
		t.Fatalf("peers-in-range hist %v, want bucket 0 == 1", st.PeersInRangeHist)
	}
}

// A probed peer that disconnects between request and reply must complete the
// relay through the countdown, not the timer: with the timeout set to an
// hour, the requester still gets its (empty) aggregate promptly.
func TestRelaySessionChurnCompletesByDisconnect(t *testing.T) {
	srv, _ := testServer(t, 200, Options{RelayTimeout: time.Hour})
	a := openSession(t, srv)
	defer a.Close()
	b := openSession(t, srv)
	syncPosition(t, b, geom.Pt(5000, 5000))

	if err := a.WriteBinary(wire.EncodePeerRequest(wire.PeerRequest{
		ReqID: 9, Loc: geom.Pt(5000, 5010), Radius: 100,
	})); err != nil {
		t.Fatal(err)
	}
	// B receives the probe — so the relay is registered and counting on it —
	// then vanishes without replying.
	if msg := readDecoded(t, b); msg.Type != wire.TypePeerProbe {
		t.Fatalf("peer got %+v, want probe", msg)
	}
	b.Close()

	msg := readDecoded(t, a)
	if msg.Type != wire.TypePeerShares || msg.Shares.ReqID != 9 ||
		msg.Shares.PeersInRange != 1 || len(msg.Shares.Shares) != 0 {
		t.Fatalf("got %+v, want empty shares from a 1-peer relay", msg)
	}
	st := fetchStats(t, srv)
	if st.RelayTimeouts != 0 {
		t.Fatalf("relay rode the timer (%d timeouts), want disconnect countdown", st.RelayTimeouts)
	}
}

// A ShareReply with a probe ID the server never issued is counted and
// dropped; the connection is not penalized.
func TestRelayForgedReplyIgnored(t *testing.T) {
	srv, _ := testServer(t, 200, Options{})
	ws := openSession(t, srv)
	defer ws.Close()

	if err := ws.WriteBinary(wire.EncodeShareReply(12345, false, core.PeerCache{})); err != nil {
		t.Fatal(err)
	}
	// No reply is owed; the next query must still be served.
	if err := ws.WriteBinary(wire.EncodeQuery(wire.Query{ReqID: 8, K: 3, Loc: geom.Pt(1, 1)})); err != nil {
		t.Fatal(err)
	}
	msg := readDecoded(t, ws)
	if msg.Type != wire.TypeAnswer || msg.Answer.ReqID != 8 || len(msg.Answer.Cache.Neighbors) != 3 {
		t.Fatalf("follow-up query got %+v", msg)
	}
	st := fetchStats(t, srv)
	if st.RelayUnknownReplies != 1 {
		t.Fatalf("relay_unknown_replies = %d, want 1", st.RelayUnknownReplies)
	}
	if st.ProtoErrors != 0 {
		t.Fatalf("protocol_errors = %d, want 0 — a forged reply races the timer legitimately", st.ProtoErrors)
	}
}

// A share larger than the server's answer cap is refused — counted, never
// forwarded — but still completes the peer's countdown slot.
func TestRelayOversizedShareRejected(t *testing.T) {
	srv, _ := testServer(t, 200, Options{MaxAnswer: 2, RelayTimeout: time.Hour})
	a := openSession(t, srv)
	defer a.Close()
	b := openSession(t, srv)
	defer b.Close()
	pos := geom.Pt(5000, 5000)
	syncPosition(t, b, pos)

	if err := a.WriteBinary(wire.EncodePeerRequest(wire.PeerRequest{
		ReqID: 11, Loc: pos, Radius: 50,
	})); err != nil {
		t.Fatal(err)
	}
	msg := readDecoded(t, b)
	if msg.Type != wire.TypePeerProbe {
		t.Fatalf("peer got %+v, want probe", msg)
	}
	big := core.NewPeerCache(pos, []core.POI{
		{ID: 1, Loc: geom.Pt(5001, 5000)},
		{ID: 2, Loc: geom.Pt(5002, 5000)},
		{ID: 3, Loc: geom.Pt(5003, 5000)},
	})
	if err := b.WriteBinary(wire.EncodeShareReply(msg.ProbeID, true, big)); err != nil {
		t.Fatal(err)
	}

	msg = readDecoded(t, a)
	if msg.Type != wire.TypePeerShares || msg.Shares.ReqID != 11 ||
		msg.Shares.PeersInRange != 1 || len(msg.Shares.Shares) != 0 {
		t.Fatalf("got %+v, want 1 peer in range and 0 forwarded shares", msg)
	}
	st := fetchStats(t, srv)
	if st.RelayRejected != 1 || st.RelaySharesFwd != 0 {
		t.Fatalf("stats rejected=%d forwarded=%d, want 1/0", st.RelayRejected, st.RelaySharesFwd)
	}
}

// TestNetworkedSENNMatchesOracle is the over-the-socket conformance gate:
// a SENNClient resolving through the daemon — relay exchange, shared client
// core, wire server fallback — must produce the same source and the same
// answer, ID for ID and distance for distance, as the reference core.SENN
// run in-process on the same peer caches against the same module. Peer
// sessions are raw connections with fixed primed caches (the true NNs at
// their streamed positions, exactly what a host that just asked the server
// there would hold), so the oracle knows precisely which caches the relay
// will deliver.
func TestNetworkedSENNMatchesOracle(t *testing.T) {
	srv, mod := testServer(t, 4000, Options{})
	const (
		k       = 4
		txRange = 1500.0
		nPeers  = 4
		trials  = 60
	)
	rng := rand.New(rand.NewSource(51))
	center := geom.Pt(5000, 5000)

	var wg sync.WaitGroup
	defer wg.Wait() // after the deferred closes below, so every pump exits

	type fixedPeer struct {
		pos   geom.Point
		cache core.PeerCache
	}
	peers := make([]fixedPeer, nPeers)
	for i := range peers {
		pos := geom.Pt(center.X+rng.NormFloat64()*400, center.Y+rng.NormFloat64()*400)
		csize := 2 + rng.Intn(10)
		nbrs, _ := mod.KNNCounted(pos, csize, nn.Bounds{})
		pc := core.NewPeerCache(pos, append([]core.POI(nil), nbrs...))
		peers[i] = fixedPeer{pos: pos, cache: pc}

		ws := openSession(t, srv)
		defer ws.Close()
		syncPosition(t, ws, pos)
		wg.Add(1)
		go func(ws *WSConn, pc core.PeerCache) {
			defer wg.Done()
			for {
				data, err := ws.ReadMessage()
				if err != nil {
					return
				}
				msg, err := wire.Decode(data)
				if err != nil || msg.Type != wire.TypePeerProbe {
					return
				}
				if ws.WriteBinary(wire.EncodeShareReply(msg.ProbeID, true, pc)) != nil {
					return
				}
			}
		}(ws, pc)
	}

	ws := openSession(t, srv)
	defer ws.Close()
	// Capacity == k keeps the client core in the exact configuration the
	// reference implementation runs (no policy-2 top-up past k), so the
	// comparison is answer-for-answer strict.
	cl := NewSENNClient(ws, k, txRange, true)

	srcCounts := map[core.Source]int{}
	for trial := 0; trial < trials; trial++ {
		q := geom.Pt(center.X+rng.NormFloat64()*600, center.Y+rng.NormFloat64()*600)

		// The caches the relay will deliver: the requester's own entry plus
		// every fixed peer whose streamed position lies within the radius —
		// the same inclusive sweep the daemon runs.
		var oracle []core.PeerCache
		if ent, ok := cl.Cache().Entry(); ok {
			oracle = append(oracle, core.PeerCache{
				QueryLoc:  ent.QueryLoc,
				Neighbors: append([]core.POI(nil), ent.Neighbors...),
			})
		}
		for _, p := range peers {
			if q.Dist2(p.pos) <= txRange*txRange {
				oracle = append(oracle, p.cache)
			}
		}
		want := core.SENN(q, k, oracle, mod, core.Options{})

		if err := cl.Move(q); err != nil {
			t.Fatalf("trial %d: move: %v", trial, err)
		}
		ans, src, err := cl.Query(k)
		if err != nil {
			t.Fatalf("trial %d: query: %v", trial, err)
		}
		srcCounts[src]++
		if src != want.Source {
			t.Fatalf("trial %d: source %v, oracle %v", trial, src, want.Source)
		}
		if len(ans) != len(want.Neighbors) {
			t.Fatalf("trial %d (%v): %d answers, oracle %d", trial, src, len(ans), len(want.Neighbors))
		}
		for i, c := range ans {
			if c.ID != want.Neighbors[i].ID || c.Dist != want.Neighbors[i].Dist {
				t.Fatalf("trial %d (%v): answer %d = (%d, %g), oracle (%d, %g)",
					trial, src, i, c.ID, c.Dist, want.Neighbors[i].ID, want.Neighbors[i].Dist)
			}
		}
	}
	// The fixture must exercise both a peer-certified and a server-resolved
	// networked answer, or the oracle proves nothing about the relay path.
	peerSolved := srcCounts[core.SolvedBySinglePeer] + srcCounts[core.SolvedByMultiPeer]
	if peerSolved == 0 || srcCounts[core.SolvedByServer] == 0 {
		t.Fatalf("fixture too weak: sources %v", srcCounts)
	}

	cs := cl.Stats()
	if cs.Queries != trials || cs.PeerSolved != int64(peerSolved) ||
		cs.ServerSolved != int64(srcCounts[core.SolvedByServer]) {
		t.Fatalf("client stats %+v disagree with sources %v", cs, srcCounts)
	}
	if cs.SharesReceived == 0 {
		t.Fatal("no shares delivered through the relay")
	}
	st := fetchStats(t, srv)
	if st.RelayRequests != trials {
		t.Fatalf("relay_requests = %d, want %d", st.RelayRequests, trials)
	}
	if st.RelayTimeouts != 0 || st.ProtoErrors != 0 {
		t.Fatalf("stats %+v: relay rode timeouts or errored", st)
	}
	if st.RelaySharesFwd != cs.SharesReceived {
		t.Fatalf("server forwarded %d shares, client received %d", st.RelaySharesFwd, cs.SharesReceived)
	}
}

// The relay's countdown must be insensitive to reply order: whichever
// in-range peer answers first, the aggregate completes by countdown (never
// the timer) and carries both shares. This is what licenses the directory's
// cell-major target enumeration replacing the linear sweep's map order.
func TestRelayCountdownOrderInsensitive(t *testing.T) {
	pos1, pos2 := geom.Pt(5000, 5000), geom.Pt(5050, 5000)
	cache1 := core.NewPeerCache(pos1, []core.POI{{ID: 101, Loc: geom.Pt(5001, 5000)}})
	cache2 := core.NewPeerCache(pos2, []core.POI{{ID: 202, Loc: geom.Pt(5051, 5000)}})

	for _, firstIsPeer1 := range []bool{true, false} {
		srv, _ := testServer(t, 200, Options{RelayTimeout: time.Hour})
		a := openSession(t, srv)
		b1 := openSession(t, srv)
		b2 := openSession(t, srv)
		syncPosition(t, b1, pos1)
		syncPosition(t, b2, pos2)

		if err := a.WriteBinary(wire.EncodePeerRequest(wire.PeerRequest{
			ReqID: 21, Loc: geom.Pt(5025, 5000), Radius: 200,
		})); err != nil {
			t.Fatal(err)
		}
		m1, m2 := readDecoded(t, b1), readDecoded(t, b2)
		if m1.Type != wire.TypePeerProbe || m2.Type != wire.TypePeerProbe {
			t.Fatalf("probes got %+v / %+v", m1, m2)
		}
		reply := func(ws *WSConn, probeID uint32, pc core.PeerCache) {
			if err := ws.WriteBinary(wire.EncodeShareReply(probeID, true, pc)); err != nil {
				t.Fatal(err)
			}
		}
		if firstIsPeer1 {
			reply(b1, m1.ProbeID, cache1)
			reply(b2, m2.ProbeID, cache2)
		} else {
			reply(b2, m2.ProbeID, cache2)
			reply(b1, m1.ProbeID, cache1)
		}

		msg := readDecoded(t, a)
		if msg.Type != wire.TypePeerShares || msg.Shares.ReqID != 21 ||
			msg.Shares.PeersInRange != 2 || len(msg.Shares.Shares) != 2 {
			t.Fatalf("order %v: got %+v, want 2 shares from 2 peers", firstIsPeer1, msg)
		}
		ids := map[int64]bool{}
		for _, sh := range msg.Shares.Shares {
			ids[sh.Neighbors[0].ID] = true
		}
		if !ids[101] || !ids[202] {
			t.Fatalf("order %v: delivered share set %v, want both caches", firstIsPeer1, ids)
		}
		if st := fetchStats(t, srv); st.RelayTimeouts != 0 {
			t.Fatalf("order %v: relay rode the timer", firstIsPeer1)
		}
		a.Close()
		b1.Close()
		b2.Close()
	}
}

// End-to-end churn stress for the directory and the sharded relay table:
// several SENN clients move and query concurrently, so Position-driven
// index patches race relay range scans, probe servicing, and pending-table
// transitions. The nightly -race run is the real referee; here we gate on
// every query completing and the server seeing zero protocol errors.
func TestRelayUnderConcurrentMoves(t *testing.T) {
	srv, _ := testServer(t, 1000, Options{})
	const (
		nClients = 8
		iters    = 25
		txRange  = 2000.0
	)
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		ws := openSession(t, srv)
		defer ws.Close()
		wg.Add(1)
		go func(ws *WSConn, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			cl := NewSENNClient(ws, 4, txRange, true)
			for j := 0; j < iters; j++ {
				p := geom.Pt(4000+rng.Float64()*2000, 4000+rng.Float64()*2000)
				if err := cl.Move(p); err != nil {
					errs <- err
					return
				}
				if _, _, err := cl.Query(1 + rng.Intn(4)); err != nil {
					errs <- err
					return
				}
			}
		}(ws, int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := fetchStats(t, srv)
	if st.ProtoErrors != 0 {
		t.Fatalf("protocol_errors = %d, want 0", st.ProtoErrors)
	}
	if st.RelayRequests != nClients*iters {
		t.Fatalf("relay_requests = %d, want %d", st.RelayRequests, nClients*iters)
	}
	if st.DirPatchOps == 0 || st.DirCellsScanned == 0 {
		t.Fatalf("directory counters flat: %+v", st)
	}
}
