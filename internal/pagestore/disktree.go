package pagestore

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/rtree"
)

// This file implements a packed, read-only, page-per-node R-tree layout and
// its traversal through the nn.TreeSource interface. Pack serializes an
// in-memory R*-tree (preserving its exact structure, so fan-out and node
// boundaries — and therefore page-access counts — are identical); an opened
// DiskTree then serves queries through a BufferPool, turning the paper's
// abstract "page accesses" into concrete buffer hits and disk faults.

const (
	diskMagic     = uint32(0x53525452) // "SRTR"
	diskVersion   = uint32(1)
	innerEntrySz  = 4*8 + 4 // rect + child page id
	leafEntrySz   = 8 + 2*8 // item id + location
	nodeHeaderSz  = 8       // leaf flag + entry count
	pageHeaderCap = PageSize - nodeHeaderSz
)

// MaxInnerFanout and MaxLeafFanout are the largest node sizes one page can
// hold.
const (
	MaxInnerFanout = pageHeaderCap / innerEntrySz
	MaxLeafFanout  = pageHeaderCap / leafEntrySz
)

// LeafItem is the value a DiskTree returns for leaf entries: the stored
// item's identifier and location. Callers map IDs back to their domain
// objects (e.g. core.POI).
type LeafItem struct {
	ID  int64
	Loc geom.Point
}

// Appender is a Pager that can also be written, used by Pack.
type Appender interface {
	Pager
	AppendPage(buf []byte) (PageID, error)
	WritePage(id PageID, buf []byte) error
}

// WritePage overwrites an existing page of a PageFile.
func (pf *PageFile) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("pagestore: write of %d bytes, want %d", len(buf), PageSize)
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if int(id) >= pf.pages {
		return fmt.Errorf("pagestore: page %d out of range", id)
	}
	_, err := pf.f.WriteAt(buf, int64(id)*PageSize)
	return err
}

// WritePage overwrites an existing page of a MemPager.
func (m *MemPager) WritePage(id PageID, buf []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("pagestore: page %d out of range", id)
	}
	copy(m.pages[id], buf)
	return nil
}

// ItemEncoder maps a leaf value from the source tree to its packed
// representation. It must be total over the values stored in the tree.
type ItemEncoder func(data any) LeafItem

// Pack serializes t into dst: one node per page, children before parents,
// with a header on page 0. The encoder converts leaf values. Packing an
// empty tree is an error.
func Pack(t *rtree.Tree, dst Appender, encode ItemEncoder) error {
	root, ok := t.Root()
	if !ok {
		return errors.New("pagestore: cannot pack an empty tree")
	}
	// Reserve the header page.
	header := make([]byte, PageSize)
	if _, err := dst.AppendPage(header); err != nil {
		return err
	}
	rootID, err := packNode(root, dst, encode)
	if err != nil {
		return err
	}
	off := 0
	off = putU32(header, off, diskMagic)
	off = putU32(header, off, diskVersion)
	off = putU32(header, off, uint32(rootID))
	off = putU32(header, off, uint32(t.Height()))
	_ = putU64(header, off, uint64(t.Len()))
	return dst.WritePage(0, header)
}

// packNode serializes the subtree under nd and returns its page ID.
func packNode(nd rtree.Node, dst Appender, encode ItemEncoder) (PageID, error) {
	n := nd.Len()
	buf := make([]byte, PageSize)
	var leafFlag uint32
	if nd.IsLeaf() {
		leafFlag = 1
		if n > MaxLeafFanout {
			return InvalidPage, fmt.Errorf("pagestore: leaf fan-out %d exceeds page capacity %d", n, MaxLeafFanout)
		}
	} else if n > MaxInnerFanout {
		return InvalidPage, fmt.Errorf("pagestore: inner fan-out %d exceeds page capacity %d", n, MaxInnerFanout)
	}
	off := 0
	off = putU32(buf, off, leafFlag)
	off = putU32(buf, off, uint32(n))
	if nd.IsLeaf() {
		for i := 0; i < n; i++ {
			item := encode(nd.Data(i))
			off = putU64(buf, off, uint64(item.ID))
			off = putU64(buf, off, math.Float64bits(item.Loc.X))
			off = putU64(buf, off, math.Float64bits(item.Loc.Y))
		}
		return dst.AppendPage(buf)
	}
	for i := 0; i < n; i++ {
		childID, err := packNode(nd.Child(i), dst, encode)
		if err != nil {
			return InvalidPage, err
		}
		r := nd.Rect(i)
		off = putU64(buf, off, math.Float64bits(r.Min.X))
		off = putU64(buf, off, math.Float64bits(r.Min.Y))
		off = putU64(buf, off, math.Float64bits(r.Max.X))
		off = putU64(buf, off, math.Float64bits(r.Max.Y))
		off = putU32(buf, off, uint32(childID))
	}
	return dst.AppendPage(buf)
}

// DiskTree is a packed R-tree served through a buffer pool. It implements
// nn.TreeSource, so the INN/EINN algorithms run over it unchanged.
type DiskTree struct {
	pool   *BufferPool
	root   PageID
	height int
	count  int
}

// OpenDiskTree validates the header of the packed file and wraps it with a
// buffer pool of poolPages frames.
func OpenDiskTree(pager Pager, poolPages int) (*DiskTree, error) {
	pool := NewBufferPool(pager, poolPages)
	hdr, err := pool.Get(0)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(0)
	off := 0
	var magic, ver, root, height uint32
	magic, off = getU32(hdr, off)
	ver, off = getU32(hdr, off)
	root, off = getU32(hdr, off)
	height, off = getU32(hdr, off)
	count, _ := getU64(hdr, off)
	if magic != diskMagic {
		return nil, errors.New("pagestore: bad tree magic")
	}
	if ver != diskVersion {
		return nil, fmt.Errorf("pagestore: unsupported tree version %d", ver)
	}
	if int(root) >= pager.NumPages() {
		return nil, fmt.Errorf("pagestore: root page %d out of range", root)
	}
	return &DiskTree{pool: pool, root: PageID(root), height: int(height), count: int(count)}, nil
}

// Len returns the number of stored items.
func (dt *DiskTree) Len() int { return dt.count }

// Height returns the tree height recorded at pack time.
func (dt *DiskTree) Height() int { return dt.height }

// Pool exposes the buffer pool for statistics.
func (dt *DiskTree) Pool() *BufferPool { return dt.pool }

// Root implements nn.TreeSource.
func (dt *DiskTree) Root() (nn.TreeNode, bool) {
	nd, err := dt.fetch(dt.root)
	if err != nil {
		return nil, false
	}
	return nd, dt.count > 0
}

// diskNode is a fully decoded node. Decoding copies everything out of the
// buffer frame, which is unpinned before fetch returns.
type diskNode struct {
	dt    *DiskTree
	leaf  bool
	rects []geom.Rect
	kids  []PageID
	items []LeafItem
}

// fetch reads and decodes one node page, counting one buffer access.
func (dt *DiskTree) fetch(id PageID) (*diskNode, error) {
	buf, err := dt.pool.Get(id)
	if err != nil {
		return nil, err
	}
	defer dt.pool.Unpin(id)
	off := 0
	var leafFlag, n uint32
	leafFlag, off = getU32(buf, off)
	n, off = getU32(buf, off)
	nd := &diskNode{dt: dt, leaf: leafFlag == 1}
	if nd.leaf {
		if int(n) > MaxLeafFanout {
			return nil, fmt.Errorf("pagestore: corrupt leaf count %d", n)
		}
		nd.items = make([]LeafItem, n)
		for i := range nd.items {
			var idBits, xb, yb uint64
			idBits, off = getU64(buf, off)
			xb, off = getU64(buf, off)
			yb, off = getU64(buf, off)
			nd.items[i] = LeafItem{
				ID:  int64(idBits),
				Loc: geom.Point{X: math.Float64frombits(xb), Y: math.Float64frombits(yb)},
			}
		}
		return nd, nil
	}
	if int(n) > MaxInnerFanout {
		return nil, fmt.Errorf("pagestore: corrupt inner count %d", n)
	}
	nd.rects = make([]geom.Rect, n)
	nd.kids = make([]PageID, n)
	for i := range nd.rects {
		var a, b, c, d uint64
		a, off = getU64(buf, off)
		b, off = getU64(buf, off)
		c, off = getU64(buf, off)
		d, off = getU64(buf, off)
		var child uint32
		child, off = getU32(buf, off)
		nd.rects[i] = geom.Rect{
			Min: geom.Point{X: math.Float64frombits(a), Y: math.Float64frombits(b)},
			Max: geom.Point{X: math.Float64frombits(c), Y: math.Float64frombits(d)},
		}
		nd.kids[i] = PageID(child)
	}
	return nd, nil
}

// IsLeaf implements nn.TreeNode.
func (nd *diskNode) IsLeaf() bool { return nd.leaf }

// Len implements nn.TreeNode.
func (nd *diskNode) Len() int {
	if nd.leaf {
		return len(nd.items)
	}
	return len(nd.rects)
}

// Rect implements nn.TreeNode.
func (nd *diskNode) Rect(i int) geom.Rect {
	if nd.leaf {
		return geom.RectFromPoint(nd.items[i].Loc)
	}
	return nd.rects[i]
}

// Data implements nn.TreeNode.
func (nd *diskNode) Data(i int) any { return nd.items[i] }

// Child implements nn.TreeNode. Fetch failures surface as an empty node —
// the packed file is validated at open time, so this only happens on
// truncated files mid-read.
func (nd *diskNode) Child(i int) nn.TreeNode {
	child, err := nd.dt.fetch(nd.kids[i])
	if err != nil {
		return &diskNode{dt: nd.dt, leaf: true}
	}
	return child
}
