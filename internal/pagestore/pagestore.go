// Package pagestore provides the disk-resident storage substrate behind the
// paper's I/O discussion (§4.4): "at the end of a spectrum there are two
// extreme I/O behaviors of the spatial database server: all requested memory
// pages are found in main memory or every I/O leads to disk activity."
//
// It implements a fixed-size page file and an LRU buffer pool with pin
// counting and hit/miss statistics, plus a packed, read-only R-tree layout
// (one node per page) that the kNN algorithms in internal/nn traverse
// through the nn.TreeSource interface. Running INN/EINN over a DiskTree
// reports true buffer hits versus disk faults, locating a configuration
// anywhere between the paper's two extremes by sizing the pool.
package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// PageSize is the fixed page size in bytes. 4 KiB matches common disk and
// OS page granularity.
const PageSize = 4096

// PageID identifies a page within a file, starting at 0.
type PageID uint32

// InvalidPage is the sentinel for "no page".
const InvalidPage = PageID(^uint32(0))

// Pager reads fixed-size pages by ID.
type Pager interface {
	// ReadPage fills buf (len PageSize) with page id's content.
	ReadPage(id PageID, buf []byte) error
	// NumPages returns the page count.
	NumPages() int
}

// ---------------------------------------------------------------------------
// File-backed pager.

// PageFile is a page-granular file. It supports appending pages during
// construction and random reads afterwards. Writes are not buffered — the
// packed-tree builder writes each page once.
type PageFile struct {
	f     *os.File
	pages int
	// reads counts physical page reads (the "disk I/O" statistic).
	reads int64
	mu    sync.Mutex
}

// CreatePageFile creates (or truncates) a page file at path.
func CreatePageFile(path string) (*PageFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("pagestore: create: %w", err)
	}
	return &PageFile{f: f}, nil
}

// OpenPageFile opens an existing page file read-only.
func OpenPageFile(path string) (*PageFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagestore: stat: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pagestore: file size %d not page aligned", st.Size())
	}
	return &PageFile{f: f, pages: int(st.Size() / PageSize)}, nil
}

// AppendPage writes buf (len PageSize) as the next page, returning its ID.
func (pf *PageFile) AppendPage(buf []byte) (PageID, error) {
	if len(buf) != PageSize {
		return InvalidPage, fmt.Errorf("pagestore: append of %d bytes, want %d", len(buf), PageSize)
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	off := int64(pf.pages) * PageSize
	if _, err := pf.f.WriteAt(buf, off); err != nil {
		return InvalidPage, fmt.Errorf("pagestore: write page %d: %w", pf.pages, err)
	}
	id := PageID(pf.pages)
	pf.pages++
	return id, nil
}

// ReadPage implements Pager.
func (pf *PageFile) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("pagestore: read into %d bytes, want %d", len(buf), PageSize)
	}
	if int(id) >= pf.pages {
		return fmt.Errorf("pagestore: page %d out of range (%d pages)", id, pf.pages)
	}
	pf.mu.Lock()
	pf.reads++
	pf.mu.Unlock()
	_, err := pf.f.ReadAt(buf, int64(id)*PageSize)
	if err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("pagestore: read page %d: %w", id, err)
	}
	return nil
}

// NumPages implements Pager.
func (pf *PageFile) NumPages() int {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.pages
}

// Reads returns the physical page reads performed so far.
func (pf *PageFile) Reads() int64 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.reads
}

// ResetReads zeroes the physical read counter.
func (pf *PageFile) ResetReads() {
	pf.mu.Lock()
	pf.reads = 0
	pf.mu.Unlock()
}

// Sync flushes the file.
func (pf *PageFile) Sync() error { return pf.f.Sync() }

// Close closes the underlying file.
func (pf *PageFile) Close() error { return pf.f.Close() }

// ---------------------------------------------------------------------------
// In-memory pager (for tests and small data sets).

// MemPager keeps all pages in memory; "disk" reads are still counted so the
// statistics remain meaningful. Once construction (AppendPage) is done, the
// pager is safe for concurrent readers — experiment runners fan independent
// buffer pools over one shared pager.
type MemPager struct {
	pages [][]byte
	reads atomic.Int64
}

// NewMemPager returns an empty in-memory pager.
func NewMemPager() *MemPager { return &MemPager{} }

// AppendPage stores a copy of buf as the next page.
func (m *MemPager) AppendPage(buf []byte) (PageID, error) {
	if len(buf) != PageSize {
		return InvalidPage, fmt.Errorf("pagestore: append of %d bytes, want %d", len(buf), PageSize)
	}
	cp := make([]byte, PageSize)
	copy(cp, buf)
	m.pages = append(m.pages, cp)
	return PageID(len(m.pages) - 1), nil
}

// ReadPage implements Pager.
func (m *MemPager) ReadPage(id PageID, buf []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("pagestore: page %d out of range (%d pages)", id, len(m.pages))
	}
	m.reads.Add(1)
	copy(buf, m.pages[id])
	return nil
}

// NumPages implements Pager.
func (m *MemPager) NumPages() int { return len(m.pages) }

// Reads returns the backing reads performed so far.
func (m *MemPager) Reads() int64 { return m.reads.Load() }

// ResetReads zeroes the read counter.
func (m *MemPager) ResetReads() { m.reads.Store(0) }

// ---------------------------------------------------------------------------
// LRU buffer pool.

// frame is one resident page.
type frame struct {
	id   PageID
	data []byte
	pins int
	prev *frame
	next *frame
}

// BufferPool caches pages with LRU replacement and pin counting. It is safe
// for single-goroutine use — concurrent experiment runners give every task
// its own pool; the underlying pagers are independently synchronized and may
// be shared.
type BufferPool struct {
	pager    Pager
	capacity int
	frames   map[PageID]*frame
	// LRU list: head = most recently used.
	head, tail *frame

	hits, misses int64
}

// NewBufferPool wraps pager with an LRU cache of capacity pages. capacity
// must be at least 1.
func NewBufferPool(pager Pager, capacity int) *BufferPool {
	if capacity < 1 {
		panic("pagestore: buffer pool capacity must be >= 1")
	}
	return &BufferPool{
		pager:    pager,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
	}
}

// Get returns the content of page id, pinning it. The returned slice aliases
// the buffer frame: callers must not retain it past Unpin and must not
// write to it.
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	if fr, ok := bp.frames[id]; ok {
		bp.hits++
		fr.pins++
		bp.touch(fr)
		return fr.data, nil
	}
	bp.misses++
	// Evict if full.
	for len(bp.frames) >= bp.capacity {
		victim := bp.lruVictim()
		if victim == nil {
			return nil, errors.New("pagestore: buffer pool exhausted (all pages pinned)")
		}
		bp.remove(victim)
	}
	fr := &frame{id: id, data: make([]byte, PageSize), pins: 1}
	if err := bp.pager.ReadPage(id, fr.data); err != nil {
		return nil, err
	}
	bp.frames[id] = fr
	bp.pushFront(fr)
	return fr.data, nil
}

// Unpin releases one pin on page id. Unpinned pages become eviction
// candidates.
func (bp *BufferPool) Unpin(id PageID) {
	if fr, ok := bp.frames[id]; ok && fr.pins > 0 {
		fr.pins--
	}
}

// Stats returns buffer hits and misses since the last reset.
func (bp *BufferPool) Stats() (hits, misses int64) { return bp.hits, bp.misses }

// HitRate returns the fraction of Get calls served from memory.
func (bp *BufferPool) HitRate() float64 {
	total := bp.hits + bp.misses
	if total == 0 {
		return 0
	}
	return float64(bp.hits) / float64(total)
}

// ResetStats zeroes the hit/miss counters.
func (bp *BufferPool) ResetStats() { bp.hits, bp.misses = 0, 0 }

// Resident returns the number of cached pages.
func (bp *BufferPool) Resident() int { return len(bp.frames) }

func (bp *BufferPool) pushFront(fr *frame) {
	fr.prev = nil
	fr.next = bp.head
	if bp.head != nil {
		bp.head.prev = fr
	}
	bp.head = fr
	if bp.tail == nil {
		bp.tail = fr
	}
}

func (bp *BufferPool) unlink(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		bp.head = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		bp.tail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

func (bp *BufferPool) touch(fr *frame) {
	bp.unlink(fr)
	bp.pushFront(fr)
}

// lruVictim returns the least recently used unpinned frame, or nil.
func (bp *BufferPool) lruVictim() *frame {
	for fr := bp.tail; fr != nil; fr = fr.prev {
		if fr.pins == 0 {
			return fr
		}
	}
	return nil
}

func (bp *BufferPool) remove(fr *frame) {
	bp.unlink(fr)
	delete(bp.frames, fr.id)
}

// ---------------------------------------------------------------------------
// Small binary helpers shared by the packed tree layout.

func putU32(buf []byte, off int, v uint32) int {
	binary.LittleEndian.PutUint32(buf[off:], v)
	return off + 4
}

func getU32(buf []byte, off int) (uint32, int) {
	return binary.LittleEndian.Uint32(buf[off:]), off + 4
}

func putU64(buf []byte, off int, v uint64) int {
	binary.LittleEndian.PutUint64(buf[off:], v)
	return off + 8
}

func getU64(buf []byte, off int) (uint64, int) {
	return binary.LittleEndian.Uint64(buf[off:]), off + 8
}
