package pagestore

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/rtree"
)

// buildSource creates an in-memory R*-tree over n random points; leaf data
// is the point index as int.
func buildSource(seed int64, n int, span float64) (*rtree.Tree, []geom.Point) {
	rng := rand.New(rand.NewSource(seed))
	t := rtree.New(30)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*span, rng.Float64()*span)
		t.InsertPoint(pts[i], i)
	}
	return t, pts
}

// encodeInt maps the test tree's int data to LeafItems. The location must
// come from the tree's own rect, so tests carry a closure over the points.
func encoder(pts []geom.Point) ItemEncoder {
	return func(data any) LeafItem {
		i := data.(int)
		return LeafItem{ID: int64(i), Loc: pts[i]}
	}
}

func packToMem(t *testing.T, tree *rtree.Tree, pts []geom.Point) *MemPager {
	t.Helper()
	m := NewMemPager()
	if err := Pack(tree, m, encoder(pts)); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPackEmptyTreeFails(t *testing.T) {
	if err := Pack(rtree.NewDefault(), NewMemPager(), nil); err == nil {
		t.Error("packing an empty tree should fail")
	}
}

func TestOpenDiskTreeValidation(t *testing.T) {
	m := NewMemPager()
	m.AppendPage(make([]byte, PageSize)) // zero header: bad magic
	if _, err := OpenDiskTree(m, 4); err == nil {
		t.Error("bad magic accepted")
	}
}

// The packed tree must return exactly the same kNN results as the source
// tree, for both INN and EINN, with identical page access counts (the
// structure is preserved node-for-node).
func TestDiskTreeEquivalence(t *testing.T) {
	tree, pts := buildSource(1, 5000, 10000)
	m := packToMem(t, tree, pts)
	dt, err := OpenDiskTree(m, m.NumPages()) // pool holds everything
	if err != nil {
		t.Fatal(err)
	}
	if dt.Len() != 5000 || dt.Height() != tree.Height() {
		t.Fatalf("metadata: len %d height %d, want %d/%d",
			dt.Len(), dt.Height(), tree.Len(), tree.Height())
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		q := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		k := 1 + rng.Intn(12)

		tree.ResetAccessCount()
		memRes := nn.BestFirst(tree, q, k)
		memAcc := tree.AccessCount()

		dt.Pool().ResetStats()
		diskRes := nn.BestFirstOver(dt, q, k)
		h, ms := dt.Pool().Stats()
		diskAcc := h + ms

		if len(memRes) != len(diskRes) {
			t.Fatalf("trial %d: result counts differ", trial)
		}
		for i := range memRes {
			if math.Abs(memRes[i].Dist-diskRes[i].Dist) > 1e-9 {
				t.Fatalf("trial %d rank %d: dist %v vs %v", trial, i, memRes[i].Dist, diskRes[i].Dist)
			}
			if int64(memRes[i].Data.(int)) != diskRes[i].Data.(LeafItem).ID {
				t.Fatalf("trial %d rank %d: id mismatch", trial, i)
			}
		}
		if diskAcc != memAcc {
			t.Fatalf("trial %d: disk accesses %d != memory accesses %d", trial, diskAcc, memAcc)
		}
		// EINN with bounds agrees too.
		full := nn.BruteForce(tree, q, k+5)
		if len(full) > 2 {
			b := nn.Bounds{Lower: full[0].Dist, HasLower: true, Upper: full[len(full)-1].Dist, HasUpper: true}
			memE := nn.EINN(tree, q, k, b)
			diskE := nn.EINNOver(dt, q, k, b)
			if len(memE) != len(diskE) {
				t.Fatalf("trial %d: EINN result counts differ", trial)
			}
			for i := range memE {
				if math.Abs(memE[i].Dist-diskE[i].Dist) > 1e-9 {
					t.Fatalf("trial %d: EINN dist mismatch", trial)
				}
			}
		}
	}
}

// A tiny pool forces disk faults; a big pool after warm-up serves from
// memory — the two I/O extremes of §4.4.
func TestBufferPoolExtremes(t *testing.T) {
	tree, pts := buildSource(3, 20000, 48000)
	m := packToMem(t, tree, pts)

	queries := func(dt *DiskTree) {
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 200; i++ {
			q := geom.Pt(rng.Float64()*48000, rng.Float64()*48000)
			nn.BestFirstOver(dt, q, 5)
		}
	}

	// Tiny pool: almost every access faults.
	small, err := OpenDiskTree(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	small.Pool().ResetStats()
	queries(small)
	smallRate := small.Pool().HitRate()

	// Pool sized for the whole file: after warm-up everything hits.
	big, err := OpenDiskTree(m, m.NumPages())
	if err != nil {
		t.Fatal(err)
	}
	queries(big) // warm up
	big.Pool().ResetStats()
	queries(big)
	bigRate := big.Pool().HitRate()

	if smallRate > 0.6 {
		t.Errorf("tiny pool hit rate %.2f implausibly high", smallRate)
	}
	if bigRate < 0.999 {
		t.Errorf("warm full pool hit rate %.3f, want ~1", bigRate)
	}
}

// Packing to a real file and reopening it must preserve everything.
func TestDiskTreeFileRoundTrip(t *testing.T) {
	tree, pts := buildSource(5, 2000, 5000)
	path := filepath.Join(t.TempDir(), "tree.db")
	pf, err := CreatePageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Pack(tree, pf, encoder(pts)); err != nil {
		t.Fatal(err)
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	dt, err := OpenDiskTree(ro, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		q := geom.Pt(rng.Float64()*5000, rng.Float64()*5000)
		want := nn.BruteForce(tree, q, 5)
		got := nn.BestFirstOver(dt, q, 5)
		if len(got) != len(want) {
			t.Fatalf("trial %d: count mismatch", trial)
		}
		for i := range want {
			if math.Abs(want[i].Dist-got[i].Dist) > 1e-9 {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, want[i].Dist, got[i].Dist)
			}
		}
	}
	// Physical reads must be bounded by pool misses.
	if ro.Reads() == 0 {
		t.Error("no physical reads recorded")
	}
}

func BenchmarkDiskTreeKNNColdPool(b *testing.B) {
	tree, pts := buildSource(7, 50000, 48280)
	m := NewMemPager()
	if err := Pack(tree, m, encoder(pts)); err != nil {
		b.Fatal(err)
	}
	dt, err := OpenDiskTree(m, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*48280, rng.Float64()*48280)
		nn.BestFirstOver(dt, q, 5)
	}
	b.ReportMetric(dt.Pool().HitRate()*100, "hit%")
}

func BenchmarkDiskTreeKNNWarmPool(b *testing.B) {
	tree, pts := buildSource(7, 50000, 48280)
	m := NewMemPager()
	if err := Pack(tree, m, encoder(pts)); err != nil {
		b.Fatal(err)
	}
	dt, err := OpenDiskTree(m, m.NumPages())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*48280, rng.Float64()*48280)
		nn.BestFirstOver(dt, q, 5)
	}
	b.ReportMetric(dt.Pool().HitRate()*100, "hit%")
}
