package pagestore

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

func TestPageFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	pf, err := CreatePageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var want [][]byte
	for i := 0; i < 10; i++ {
		buf := make([]byte, PageSize)
		rng.Read(buf)
		id, err := pf.AppendPage(buf)
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != i {
			t.Fatalf("page id %d, want %d", id, i)
		}
		want = append(want, buf)
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if ro.NumPages() != 10 {
		t.Fatalf("NumPages = %d", ro.NumPages())
	}
	buf := make([]byte, PageSize)
	for i, w := range want {
		if err := ro.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			if buf[j] != w[j] {
				t.Fatalf("page %d differs at byte %d", i, j)
			}
		}
	}
	if ro.Reads() != 10 {
		t.Errorf("Reads = %d", ro.Reads())
	}
	if err := ro.ReadPage(99, buf); err == nil {
		t.Error("out-of-range read accepted")
	}
	if _, err := ro.AppendPage(make([]byte, 5)); err == nil {
		t.Error("short append accepted")
	}
}

func TestOpenPageFileValidation(t *testing.T) {
	if _, err := OpenPageFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file opened")
	}
}

func TestMemPager(t *testing.T) {
	m := NewMemPager()
	buf := make([]byte, PageSize)
	buf[0] = 42
	id, err := m.AppendPage(buf)
	if err != nil || id != 0 {
		t.Fatalf("append: %v %v", id, err)
	}
	// The pager must copy: mutating the source buffer later is invisible.
	buf[0] = 7
	out := make([]byte, PageSize)
	if err := m.ReadPage(0, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 42 {
		t.Error("MemPager did not copy the page")
	}
	if m.Reads() != 1 {
		t.Errorf("Reads = %d", m.Reads())
	}
	if err := m.ReadPage(3, out); err == nil {
		t.Error("out-of-range read accepted")
	}
}

func TestBufferPoolLRUAndStats(t *testing.T) {
	m := NewMemPager()
	for i := 0; i < 5; i++ {
		buf := make([]byte, PageSize)
		buf[0] = byte(i)
		m.AppendPage(buf)
	}
	bp := NewBufferPool(m, 2)
	get := func(id PageID) byte {
		t.Helper()
		data, err := bp.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		v := data[0]
		bp.Unpin(id)
		return v
	}
	if get(0) != 0 || get(1) != 1 {
		t.Fatal("wrong content")
	}
	hits, misses := bp.Stats()
	if hits != 0 || misses != 2 {
		t.Fatalf("stats after cold reads: %d/%d", hits, misses)
	}
	_ = get(0) // hit
	hits, _ = bp.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d", hits)
	}
	// Page 1 is now LRU; reading page 2 evicts it.
	_ = get(2)
	if bp.Resident() != 2 {
		t.Fatalf("resident = %d", bp.Resident())
	}
	_ = get(1) // must be a miss again
	_, misses = bp.Stats()
	if misses != 4 {
		t.Fatalf("misses = %d, want 4 (page 1 was evicted)", misses)
	}
	if bp.HitRate() <= 0 || bp.HitRate() >= 1 {
		t.Errorf("hit rate = %v", bp.HitRate())
	}
	bp.ResetStats()
	if h, ms := bp.Stats(); h != 0 || ms != 0 {
		t.Error("reset failed")
	}
}

func TestBufferPoolPinPreventsEviction(t *testing.T) {
	m := NewMemPager()
	for i := 0; i < 3; i++ {
		m.AppendPage(make([]byte, PageSize))
	}
	bp := NewBufferPool(m, 1)
	if _, err := bp.Get(0); err != nil { // pinned
		t.Fatal(err)
	}
	if _, err := bp.Get(1); err == nil {
		t.Error("pool should refuse when every frame is pinned")
	}
	bp.Unpin(0)
	if _, err := bp.Get(1); err != nil {
		t.Errorf("after unpin: %v", err)
	}
	bp.Unpin(1)
}

func TestBufferPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 should panic")
		}
	}()
	NewBufferPool(NewMemPager(), 0)
}

func TestWritePage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	pf, err := CreatePageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	buf := make([]byte, PageSize)
	if _, err := pf.AppendPage(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	if err := pf.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	if err := pf.ReadPage(0, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 99 {
		t.Error("WritePage content lost")
	}
	if err := pf.WritePage(5, buf); err == nil {
		t.Error("out-of-range write accepted")
	}
	_ = geom.Point{}
}
