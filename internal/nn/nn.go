// Package nn implements the nearest-neighbor search algorithms the paper
// builds on and extends:
//
//   - DepthFirst: the branch-and-bound kNN search of Roussopoulos, Kelley and
//     Vincent (SIGMOD 1995), descending the R-tree depth-first ordered by
//     MINDIST.
//   - BestFirst / Iterator: the optimal incremental nearest-neighbor
//     algorithm of Hjaltason and Samet (TODS 1999), called INN by the paper.
//     It reports neighbors in ascending distance order and visits only the
//     minimally necessary nodes.
//   - EINN: the paper's extension of INN (§3.3) that accepts the branch
//     expanding lower and upper bounds derived from the SENN heap H and adds
//     the MAXDIST metric for downward pruning.
//
// All algorithms traverse any TreeSource — the in-memory R*-tree
// (internal/rtree, counted by tree.AccessCount) or the disk-backed packed
// tree (internal/pagestore, counted by its buffer pool) — so page-access
// statistics always reflect the work each query did.
package nn

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Result is one nearest neighbor: the indexed rectangle's representative
// point (its center — for the point data used throughout this system the
// point itself), the stored value, and the Euclidean distance to the query
// point.
type Result struct {
	Point geom.Point
	Data  any
	Dist  float64
}

// Bounds carries the branch-expanding bounds of §3.3, extracted from the
// SENN heap H after peer verification.
//
// When HasLower is set, every point of interest at distance <= Lower from
// the query point is already known (certain) at the client, so the server
// skips leaf entries at distance <= Lower and prunes every MBR whose MAXDIST
// is <= Lower (the MBR lies entirely inside the certain circle C_r —
// downward pruning).
//
// When HasUpper is set, the client already holds k candidates within Upper,
// so every MBR with MINDIST > Upper is discarded (upward pruning).
type Bounds struct {
	Lower    float64
	HasLower bool
	Upper    float64
	HasUpper bool
}

// NoBounds is the neutral Bounds value: no pruning beyond plain best-first.
var NoBounds = Bounds{}

// lower returns the effective lower bound (-inf when absent).
func (b Bounds) lower() float64 {
	if b.HasLower {
		return b.Lower
	}
	return math.Inf(-1)
}

// upper returns the effective upper bound (+inf when absent).
func (b Bounds) upper() float64 {
	if b.HasUpper {
		return b.Upper
	}
	return math.Inf(1)
}

// ---------------------------------------------------------------------------
// Best-first incremental search (INN) and its bounded extension (EINN).

// queueItem is an entry of the best-first priority queue: either a reference
// to a tree node awaiting expansion or an object (leaf entry) awaiting
// reporting. Node references hold the parent and the entry index so the child
// page is fetched — and counted as an access — only if and when the item is
// actually popped and expanded.
type queueItem struct {
	dist     float64
	isNode   bool
	parent   TreeNode // valid when isNode && !isRoot
	childIdx int
	isRoot   bool
	root     TreeNode // valid when isRoot
	rect     geom.Rect
	data     any
}

// fetch resolves a node item to its tree node, performing the page read.
func (qi queueItem) fetch() TreeNode {
	if qi.isRoot {
		return qi.root
	}
	return qi.parent.Child(qi.childIdx)
}

type priorityQueue []queueItem

func (pq priorityQueue) Len() int           { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool { return pq[i].dist < pq[j].dist }
func (pq priorityQueue) Swap(i, j int)      { pq[i], pq[j] = pq[j], pq[i] }
func (pq *priorityQueue) Push(x any)        { *pq = append(*pq, x.(queueItem)) }
func (pq *priorityQueue) Pop() any {
	old := *pq
	n := len(old)
	it := old[n-1]
	*pq = old[:n-1]
	return it
}

// Iterator performs incremental best-first nearest-neighbor search. Next
// returns neighbors in non-decreasing distance order until the tree is
// exhausted or the configured upper bound cuts the search off. The iterator
// implements both INN (zero Bounds) and EINN (client-derived Bounds).
type Iterator struct {
	query  geom.Point
	bounds Bounds
	pq     priorityQueue
	done   bool
}

// NewIterator starts an incremental NN search from q over t, honoring b.
func NewIterator(t *rtree.Tree, q geom.Point, b Bounds) *Iterator {
	return NewIteratorOver(Source(t), q, b)
}

// NewIteratorOver starts an incremental NN search over any TreeSource —
// the in-memory R*-tree or the disk-backed packed tree.
func NewIteratorOver(src TreeSource, q geom.Point, b Bounds) *Iterator {
	it := &Iterator{query: q, bounds: b}
	root, ok := src.Root()
	if ok {
		it.pq = priorityQueue{{dist: 0, isNode: true, isRoot: true, root: root}}
		heap.Init(&it.pq)
	} else {
		it.done = true
	}
	return it
}

// Next returns the next nearest neighbor beyond the lower bound, or ok=false
// when the search is exhausted (no more objects, or all remaining search
// paths exceed the upper bound).
func (it *Iterator) Next() (Result, bool) {
	lo, hi := it.bounds.lower(), it.bounds.upper()
	for !it.done && it.pq.Len() > 0 {
		item := heap.Pop(&it.pq).(queueItem)
		if item.dist > hi {
			// Everything still queued is at least this far: stop for good.
			it.done = true
			return Result{}, false
		}
		if !item.isNode {
			return Result{Point: item.rect.Center(), Data: item.data, Dist: item.dist}, true
		}
		nd := item.fetch()
		for i := 0; i < nd.Len(); i++ {
			r := nd.Rect(i)
			mind := r.MinDist(it.query)
			if mind > hi {
				continue // upward pruning
			}
			if nd.IsLeaf() {
				if mind <= lo {
					continue // object already certain at the client
				}
				heap.Push(&it.pq, queueItem{dist: mind, rect: r, data: nd.Data(i)})
				continue
			}
			if it.bounds.HasLower && r.MaxDist(it.query) <= lo {
				continue // downward pruning: MBR inside the certain circle
			}
			heap.Push(&it.pq, queueItem{dist: mind, isNode: true, parent: nd, childIdx: i})
		}
	}
	it.done = true
	return Result{}, false
}

// TightenUpper lowers the iterator's upper bound; subsequent Next calls prune
// with the new value. Raising the bound is ignored: pruned state cannot be
// recovered.
func (it *Iterator) TightenUpper(u float64) {
	if !it.bounds.HasUpper || u < it.bounds.Upper {
		it.bounds.Upper = u
		it.bounds.HasUpper = true
	}
}

// BestFirst returns the k nearest neighbors of q in ascending distance order
// using the optimal incremental algorithm (INN). Fewer than k results are
// returned when the tree holds fewer objects.
func BestFirst(t *rtree.Tree, q geom.Point, k int) []Result {
	return EINN(t, q, k, NoBounds)
}

// BestFirstOver is BestFirst over any TreeSource.
func BestFirstOver(src TreeSource, q geom.Point, k int) []Result {
	return EINNOver(src, q, k, NoBounds)
}

// EINN returns the k nearest neighbors of q at distance greater than the
// lower bound, using best-first search with the paper's pruning rules. The
// search dynamically tightens the upper bound as results accumulate.
func EINN(t *rtree.Tree, q geom.Point, k int, b Bounds) []Result {
	return EINNOver(Source(t), q, k, b)
}

// EINNOver is EINN over any TreeSource.
func EINNOver(src TreeSource, q geom.Point, k int, b Bounds) []Result {
	if k <= 0 {
		return nil
	}
	it := NewIteratorOver(src, q, b)
	out := make([]Result, 0, k)
	for len(out) < k {
		r, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// ---------------------------------------------------------------------------
// Depth-first branch-and-bound (Roussopoulos et al. 1995).

// DepthFirst returns the k nearest neighbors of q in ascending distance
// order by depth-first branch-and-bound over the R-tree, visiting subtrees in
// MINDIST order and pruning those that cannot beat the current k-th best.
func DepthFirst(t *rtree.Tree, q geom.Point, k int) []Result {
	return DepthFirstOver(Source(t), q, k)
}

// DepthFirstOver is DepthFirst over any TreeSource.
func DepthFirstOver(src TreeSource, q geom.Point, k int) []Result {
	if k <= 0 {
		return nil
	}
	root, ok := src.Root()
	if !ok {
		return nil
	}
	best := &resultHeap{k: k}
	dfVisit(root, q, best)
	return best.sorted()
}

func dfVisit(nd TreeNode, q geom.Point, best *resultHeap) {
	if nd.IsLeaf() {
		for i := 0; i < nd.Len(); i++ {
			d := nd.Rect(i).MinDist(q)
			if best.accepts(d) {
				best.push(Result{Point: nd.Rect(i).Center(), Data: nd.Data(i), Dist: d})
			}
		}
		return
	}
	// Order children by MINDIST; prune those beyond the current k-th best.
	// For 1NN queries the classic MINMAXDIST rule applies additionally:
	// some object is guaranteed within the smallest sibling MINMAXDIST, so
	// branches whose MINDIST exceeds it can never contain the winner.
	type branch struct {
		idx  int
		dist float64
	}
	branches := make([]branch, 0, nd.Len())
	minMaxBound := math.Inf(1)
	for i := 0; i < nd.Len(); i++ {
		r := nd.Rect(i)
		branches = append(branches, branch{i, r.MinDist(q)})
		if best.k == 1 {
			if mm := r.MinMaxDist(q); mm < minMaxBound {
				minMaxBound = mm
			}
		}
	}
	sort.Slice(branches, func(a, b int) bool { return branches[a].dist < branches[b].dist })
	for _, br := range branches {
		if !best.accepts(br.dist) {
			return // remaining branches are even farther
		}
		if br.dist > minMaxBound+geom.Eps {
			return // MINMAXDIST downward pruning (1NN only)
		}
		dfVisit(nd.Child(br.idx), q, best)
	}
}

// resultHeap keeps the k best results seen so far as a max-heap on distance.
type resultHeap struct {
	k     int
	items []Result
}

func (h *resultHeap) accepts(d float64) bool {
	return len(h.items) < h.k || d < h.items[0].Dist
}

func (h *resultHeap) push(r Result) {
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		h.up(len(h.items) - 1)
		return
	}
	if r.Dist >= h.items[0].Dist {
		return
	}
	h.items[0] = r
	h.down(0)
}

func (h *resultHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Dist >= h.items[i].Dist {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *resultHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.items[l].Dist > h.items[largest].Dist {
			largest = l
		}
		if r < n && h.items[r].Dist > h.items[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

func (h *resultHeap) sorted() []Result {
	out := append([]Result(nil), h.items...)
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out
}

// ---------------------------------------------------------------------------
// Brute-force reference.

// BruteForce scans every stored object and returns the k nearest neighbors
// of q in ascending distance order. It exists as the correctness oracle for
// tests and small workloads; it does not touch the page-access counter.
func BruteForce(t *rtree.Tree, q geom.Point, k int) []Result {
	if k <= 0 {
		return nil
	}
	var all []Result
	t.All(func(r geom.Rect, data any) bool {
		p := r.Center()
		all = append(all, Result{Point: p, Data: data, Dist: q.Dist(p)})
		return true
	})
	sort.Slice(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
	if len(all) > k {
		all = all[:k]
	}
	return all
}
