package nn

import (
	"repro/internal/geom"
	"repro/internal/rtree"
)

// treeItem is the concrete-typed twin of queueItem for traversals of the
// in-memory R*-tree. Holding rtree.Node by value (a two-pointer struct)
// instead of the TreeNode interface is what keeps TreeIterator free of
// allocations: the generic path boxes a wrapper node per page fetch and a
// queueItem per heap.Push.
type treeItem struct {
	dist     float64
	isNode   bool
	parent   rtree.Node // the node itself when isRoot; the owner of childIdx otherwise
	childIdx int
	isRoot   bool
	rect     geom.Rect
	data     any
}

// TreeIterator is Iterator specialized to *rtree.Tree with caller-owned,
// reusable state: the priority queue lives in the iterator and survives
// Reset, so a steady-state incremental NN search performs no heap
// allocations. It implements the same INN/EINN semantics as Iterator —
// identical pruning rules, identical heap discipline (the sift routines
// mirror container/heap), and identical page accounting (one access for the
// root fetch plus one per child fetch, like CountedSource) — so the two
// produce the same result sequence and the same access counts over the same
// tree. The query engine's resolve workers each own one as per-worker
// scratch for the server-resolved path.
type TreeIterator struct {
	query  geom.Point
	bounds Bounds
	pq     []treeItem
	pages  int64
	done   bool
}

// Reset starts a new incremental NN search from q over t, honoring b. The
// page counter restarts at 1 (the root fetch — counted even for an empty
// tree, exactly as CountedSource.Root does).
func (it *TreeIterator) Reset(t *rtree.Tree, q geom.Point, b Bounds) {
	it.query = q
	it.bounds = b
	it.pq = it.pq[:0]
	it.pages = 1
	it.done = false
	root, ok := t.Root()
	if !ok {
		it.done = true
		return
	}
	it.pq = append(it.pq, treeItem{dist: 0, isNode: true, isRoot: true, parent: root})
}

// Pages returns the page accesses performed since the last Reset.
func (it *TreeIterator) Pages() int64 { return it.pages }

// Next returns the next nearest neighbor beyond the lower bound, or ok=false
// when the search is exhausted (no more objects, or all remaining search
// paths exceed the upper bound).
func (it *TreeIterator) Next() (Result, bool) {
	lo, hi := it.bounds.lower(), it.bounds.upper()
	for !it.done && len(it.pq) > 0 {
		item := it.pop()
		if item.dist > hi {
			// Everything still queued is at least this far: stop for good.
			it.done = true
			return Result{}, false
		}
		if !item.isNode {
			return Result{Point: item.rect.Center(), Data: item.data, Dist: item.dist}, true
		}
		nd := item.parent
		if !item.isRoot {
			nd = item.parent.Child(item.childIdx)
			it.pages++
		}
		for i := 0; i < nd.Len(); i++ {
			r := nd.Rect(i)
			mind := r.MinDist(it.query)
			if mind > hi {
				continue // upward pruning
			}
			if nd.IsLeaf() {
				if mind <= lo {
					continue // object already certain at the client
				}
				it.push(treeItem{dist: mind, rect: r, data: nd.Data(i)})
				continue
			}
			if it.bounds.HasLower && r.MaxDist(it.query) <= lo {
				continue // downward pruning: MBR inside the certain circle
			}
			it.push(treeItem{dist: mind, isNode: true, parent: nd, childIdx: i})
		}
	}
	it.done = true
	return Result{}, false
}

// push, pop, up, down replicate container/heap's sift discipline exactly
// (including tie behavior), so the visit order matches Iterator's
// bit-for-bit.
func (it *TreeIterator) push(x treeItem) {
	it.pq = append(it.pq, x)
	it.up(len(it.pq) - 1)
}

func (it *TreeIterator) pop() treeItem {
	n := len(it.pq) - 1
	it.pq[0], it.pq[n] = it.pq[n], it.pq[0]
	it.down(0, n)
	x := it.pq[n]
	it.pq = it.pq[:n]
	return x
}

func (it *TreeIterator) up(j int) {
	pq := it.pq
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(pq[j].dist < pq[i].dist) {
			break
		}
		pq[i], pq[j] = pq[j], pq[i]
		j = i
	}
}

func (it *TreeIterator) down(i0, n int) {
	pq := it.pq
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && pq[j2].dist < pq[j1].dist {
			j = j2
		}
		if !(pq[j].dist < pq[i].dist) {
			break
		}
		pq[i], pq[j] = pq[j], pq[i]
		i = j
	}
}
