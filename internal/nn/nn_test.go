package nn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// buildTree returns a tree over n uniform random points and the point slice.
func buildTree(seed int64, n int, span float64, maxEntries int) (*rtree.Tree, []geom.Point) {
	rng := rand.New(rand.NewSource(seed))
	t := rtree.New(maxEntries)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*span, rng.Float64()*span)
		t.InsertPoint(pts[i], i)
	}
	return t, pts
}

func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		// Distances must agree; with random points ties are measure-zero but
		// we still compare by distance, not identity, to be safe.
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("%s: result %d dist %v, want %v", label, i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	for _, cfg := range []struct {
		seed      int64
		n, fanout int
	}{
		{1, 500, 4}, {2, 500, 30}, {3, 5000, 8}, {4, 37, 30}, {5, 1, 4},
	} {
		tree, _ := buildTree(cfg.seed, cfg.n, 1000, cfg.fanout)
		rng := rand.New(rand.NewSource(cfg.seed + 100))
		for trial := 0; trial < 40; trial++ {
			q := geom.Pt(rng.Float64()*1200-100, rng.Float64()*1200-100)
			k := 1 + rng.Intn(20)
			want := BruteForce(tree, q, k)
			sameResults(t, "BestFirst", BestFirst(tree, q, k), want)
			sameResults(t, "DepthFirst", DepthFirst(tree, q, k), want)
		}
	}
}

func TestBestFirstAscendingOrder(t *testing.T) {
	tree, _ := buildTree(7, 2000, 500, 16)
	it := NewIterator(tree, geom.Pt(250, 250), NoBounds)
	prev := -1.0
	count := 0
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if r.Dist < prev-1e-12 {
			t.Fatalf("distances not non-decreasing: %v after %v", r.Dist, prev)
		}
		prev = r.Dist
		count++
	}
	if count != 2000 {
		t.Fatalf("iterator yielded %d, want 2000", count)
	}
	// Exhausted iterator stays exhausted.
	if _, ok := it.Next(); ok {
		t.Fatal("Next after exhaustion returned a result")
	}
}

func TestKZeroAndEmptyTree(t *testing.T) {
	tree, _ := buildTree(1, 100, 100, 4)
	if got := BestFirst(tree, geom.Pt(0, 0), 0); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
	if got := DepthFirst(tree, geom.Pt(0, 0), -1); got != nil {
		t.Errorf("negative k should return nil, got %v", got)
	}
	empty := rtree.NewDefault()
	if got := BestFirst(empty, geom.Pt(0, 0), 5); len(got) != 0 {
		t.Errorf("empty tree should return no results, got %v", got)
	}
	if got := DepthFirst(empty, geom.Pt(0, 0), 5); len(got) != 0 {
		t.Errorf("empty tree should return no results, got %v", got)
	}
	if got := BruteForce(empty, geom.Pt(0, 0), 5); len(got) != 0 {
		t.Errorf("empty tree brute force returned %v", got)
	}
}

func TestKLargerThanTree(t *testing.T) {
	tree, _ := buildTree(2, 10, 100, 4)
	for _, algo := range []struct {
		name string
		fn   func() []Result
	}{
		{"BestFirst", func() []Result { return BestFirst(tree, geom.Pt(50, 50), 25) }},
		{"DepthFirst", func() []Result { return DepthFirst(tree, geom.Pt(50, 50), 25) }},
	} {
		got := algo.fn()
		if len(got) != 10 {
			t.Errorf("%s: got %d results, want all 10", algo.name, len(got))
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
			t.Errorf("%s: results not sorted", algo.name)
		}
	}
}

// EINN with a lower bound must return exactly the brute-force results whose
// distance exceeds the bound — the contract the SENN client relies on when
// merging certain entries with server results.
func TestEINNLowerBound(t *testing.T) {
	tree, pts := buildTree(11, 3000, 1000, 30)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(10)
		full := BruteForce(tree, q, k+30)
		lowerIdx := rng.Intn(20)
		lower := full[lowerIdx].Dist
		got := EINN(tree, q, k, Bounds{Lower: lower, HasLower: true})
		var want []Result
		for _, r := range full {
			if r.Dist > lower && len(want) < k {
				want = append(want, r)
			}
		}
		sameResults(t, "EINN lower", got, want)
	}
	_ = pts
}

// A valid upper bound (at least the true k-th NN distance) must not change
// the result set.
func TestEINNValidUpperBoundPreservesResults(t *testing.T) {
	tree, _ := buildTree(13, 3000, 1000, 30)
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(10)
		want := BruteForce(tree, q, k)
		upper := want[len(want)-1].Dist * (1 + rng.Float64())
		got := EINN(tree, q, k, Bounds{Upper: upper, HasUpper: true})
		sameResults(t, "EINN upper", got, want)
	}
}

// A tight upper bound must cut the search off: results farther than the
// bound are never reported.
func TestEINNUpperBoundCutsOff(t *testing.T) {
	tree, _ := buildTree(17, 1000, 1000, 8)
	q := geom.Pt(500, 500)
	full := BruteForce(tree, q, 50)
	upper := full[9].Dist
	got := EINN(tree, q, 50, Bounds{Upper: upper, HasUpper: true})
	if len(got) > 11 {
		t.Fatalf("upper bound ignored: got %d results", len(got))
	}
	for _, r := range got {
		if r.Dist > upper+1e-9 {
			t.Fatalf("result at %v beyond upper bound %v", r.Dist, upper)
		}
	}
}

// Both bounds combined: the EINN contract used by Algorithm 1 line 19.
func TestEINNBothBounds(t *testing.T) {
	tree, _ := buildTree(19, 4000, 2000, 30)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		q := geom.Pt(rng.Float64()*2000, rng.Float64()*2000)
		k := 2 + rng.Intn(8)
		full := BruteForce(tree, q, 60)
		nCertain := rng.Intn(k)
		lower := 0.0
		if nCertain > 0 {
			lower = full[nCertain-1].Dist
		}
		upper := full[k-1].Dist // true kth NN distance: always valid
		got := EINN(tree, q, k-nCertain, Bounds{
			Lower: lower, HasLower: nCertain > 0,
			Upper: upper, HasUpper: true,
		})
		want := full[nCertain:k]
		sameResults(t, "EINN both", got, want)
	}
}

// EINN with valid bounds must never access more pages than plain INN on the
// same query — the claim Figure 17 quantifies.
func TestEINNAccessesAtMostINN(t *testing.T) {
	tree, _ := buildTree(23, 20000, 10000, 30)
	rng := rand.New(rand.NewSource(31))
	totalINN, totalEINN := int64(0), int64(0)
	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		k := 5 + rng.Intn(10)
		full := BruteForce(tree, q, k)
		nCertain := 1 + rng.Intn(k-1)
		b := Bounds{
			Lower: full[nCertain-1].Dist, HasLower: true,
			Upper: full[k-1].Dist, HasUpper: true,
		}
		tree.ResetAccessCount()
		_ = BestFirst(tree, q, k)
		inn := tree.AccessCount()
		tree.ResetAccessCount()
		_ = EINN(tree, q, k-nCertain, b)
		einn := tree.AccessCount()
		if einn > inn {
			t.Fatalf("EINN accessed %d pages, INN %d", einn, inn)
		}
		totalINN += inn
		totalEINN += einn
	}
	if totalEINN > totalINN {
		t.Errorf("EINN total accesses %d exceed INN %d", totalEINN, totalINN)
	}
}

// Downward pruning must deliver a strict page-access win when the certain
// circle C_r covers entire leaf MBRs: a dense cluster of already-known POIs
// near the query point is skipped wholesale by the MAXDIST rule while plain
// INN pages through it.
func TestEINNDownwardPruningStrictWin(t *testing.T) {
	tree := rtree.New(8)
	rng := rand.New(rand.NewSource(55))
	q := geom.Pt(0, 0)
	// 2000 points packed within 100 m of the query point, all of which the
	// client already knows (they fall inside the lower bound).
	for i := 0; i < 2000; i++ {
		th := rng.Float64() * 2 * math.Pi
		rad := 100 * math.Sqrt(rng.Float64())
		tree.InsertPoint(geom.Pt(rad*math.Cos(th), rad*math.Sin(th)), i)
	}
	// A handful of points farther out: the part the server must produce.
	for i := 0; i < 20; i++ {
		th := rng.Float64() * 2 * math.Pi
		tree.InsertPoint(geom.Pt(300*math.Cos(th), 300*math.Sin(th)), 2000+i)
	}
	k := 2005
	full := BruteForce(tree, q, k)
	lower := full[1999].Dist
	tree.ResetAccessCount()
	inn := BestFirst(tree, q, k)
	innAcc := tree.AccessCount()
	tree.ResetAccessCount()
	einn := EINN(tree, q, 5, Bounds{Lower: lower, HasLower: true, Upper: full[k-1].Dist, HasUpper: true})
	einnAcc := tree.AccessCount()
	sameResults(t, "strict win results", einn, full[2000:])
	if einnAcc*2 >= innAcc {
		t.Errorf("expected EINN (%d accesses) to beat INN (%d) by more than 2x", einnAcc, innAcc)
	}
	_ = inn
}

func TestIteratorTightenUpper(t *testing.T) {
	tree, _ := buildTree(29, 2000, 1000, 16)
	q := geom.Pt(500, 500)
	full := BruteForce(tree, q, 20)
	it := NewIterator(tree, q, NoBounds)
	// Read 5 results, then clamp the bound below result 10.
	for i := 0; i < 5; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatal("premature exhaustion")
		}
	}
	it.TightenUpper(full[9].Dist)
	count := 5
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if r.Dist > full[9].Dist+1e-9 {
			t.Fatalf("result %v beyond tightened bound %v", r.Dist, full[9].Dist)
		}
		count++
	}
	if count < 9 || count > 11 {
		t.Errorf("got %d results with tightened bound, expected about 10", count)
	}
	// Attempting to raise the bound must be a no-op.
	it2 := NewIterator(tree, q, Bounds{Upper: full[4].Dist, HasUpper: true})
	it2.TightenUpper(full[15].Dist)
	n := 0
	for {
		if _, ok := it2.Next(); !ok {
			break
		}
		n++
	}
	if n > 6 {
		t.Errorf("raising bound should be ignored; got %d results", n)
	}
}

// Best-first must be optimal: never more page accesses than depth-first.
func TestBestFirstOptimality(t *testing.T) {
	tree, _ := buildTree(37, 10000, 5000, 30)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		q := geom.Pt(rng.Float64()*5000, rng.Float64()*5000)
		k := 1 + rng.Intn(15)
		tree.ResetAccessCount()
		bf := BestFirst(tree, q, k)
		bfAcc := tree.AccessCount()
		tree.ResetAccessCount()
		df := DepthFirst(tree, q, k)
		dfAcc := tree.AccessCount()
		sameResults(t, "BF vs DF", bf, df)
		if bfAcc > dfAcc {
			t.Errorf("best-first accessed %d > depth-first %d (k=%d)", bfAcc, dfAcc, k)
		}
	}
}

func TestDuplicateDistances(t *testing.T) {
	// Points arranged on a circle: all equidistant from the center.
	tree := rtree.New(4)
	center := geom.Pt(100, 100)
	for i := 0; i < 16; i++ {
		th := 2 * math.Pi * float64(i) / 16
		tree.InsertPoint(geom.Pt(center.X+50*math.Cos(th), center.Y+50*math.Sin(th)), i)
	}
	got := BestFirst(tree, center, 7)
	if len(got) != 7 {
		t.Fatalf("got %d results", len(got))
	}
	for _, r := range got {
		if math.Abs(r.Dist-50) > 1e-9 {
			t.Errorf("distance %v, want 50", r.Dist)
		}
	}
}

func BenchmarkBestFirstK5(b *testing.B) {
	tree, _ := buildTree(1, 50000, 48280, 30)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*48280, rng.Float64()*48280)
		BestFirst(tree, q, 5)
	}
}

func BenchmarkDepthFirstK5(b *testing.B) {
	tree, _ := buildTree(1, 50000, 48280, 30)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*48280, rng.Float64()*48280)
		DepthFirst(tree, q, 5)
	}
}

func BenchmarkEINNWithBounds(b *testing.B) {
	tree, _ := buildTree(1, 50000, 48280, 30)
	rng := rand.New(rand.NewSource(2))
	// Precompute a pool of queries with realistic bounds so the measured
	// loop contains only the EINN search itself.
	type qb struct {
		q geom.Point
		b Bounds
	}
	pool := make([]qb, 256)
	for i := range pool {
		q := geom.Pt(rng.Float64()*48280, rng.Float64()*48280)
		full := BestFirst(tree, q, 5)
		pool[i] = qb{q: q, b: Bounds{
			Lower: full[1].Dist, HasLower: true,
			Upper: full[4].Dist, HasUpper: true,
		}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pool[i%len(pool)]
		EINN(tree, p.q, 3, p.b)
	}
}
