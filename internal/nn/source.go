package nn

import (
	"repro/internal/geom"
	"repro/internal/rtree"
)

// TreeSource abstracts the spatial index the NN algorithms traverse. The
// in-memory R*-tree (internal/rtree) and the disk-backed packed tree
// (internal/pagestore) both satisfy it, so INN/EINN run unchanged over
// either — with page accesses counted by the source's own accounting
// (node fetches for the in-memory tree, buffer-pool lookups for the disk
// tree).
type TreeSource interface {
	// Root fetches the root node, counting one page access. ok is false
	// for an empty index.
	Root() (TreeNode, bool)
}

// TreeNode is a read-only view of one index node.
type TreeNode interface {
	// IsLeaf reports whether entries carry data rather than children.
	IsLeaf() bool
	// Len returns the entry count.
	Len() int
	// Rect returns the bounding rectangle of entry i.
	Rect(i int) geom.Rect
	// Data returns the value of leaf entry i.
	Data(i int) any
	// Child fetches the child node of inner entry i, counting one page
	// access.
	Child(i int) TreeNode
}

// memTree adapts *rtree.Tree to TreeSource.
type memTree struct{ t *rtree.Tree }

func (m memTree) Root() (TreeNode, bool) {
	nd, ok := m.t.Root()
	return memNode{nd}, ok
}

type memNode struct{ n rtree.Node }

func (m memNode) IsLeaf() bool         { return m.n.IsLeaf() }
func (m memNode) Len() int             { return m.n.Len() }
func (m memNode) Rect(i int) geom.Rect { return m.n.Rect(i) }
func (m memNode) Data(i int) any       { return m.n.Data(i) }
func (m memNode) Child(i int) TreeNode { return memNode{m.n.Child(i)} }

// Source wraps an in-memory R*-tree as a TreeSource.
func Source(t *rtree.Tree) TreeSource { return memTree{t} }

// CountedSource wraps a TreeSource and counts the page accesses performed
// through this wrapper alone. The underlying source's own accounting (the
// tree's global counter, a buffer pool's hit/miss stats) still runs; the
// wrapper adds the per-traversal view a concurrent query path needs, where
// differencing a shared counter would observe every other in-flight query.
// A CountedSource is owned by one traversal and is not safe for concurrent
// use itself.
type CountedSource struct {
	src TreeSource
	n   int64
}

// NewCountedSource wraps src with per-traversal access counting.
func NewCountedSource(src TreeSource) *CountedSource { return &CountedSource{src: src} }

// Root fetches the root through the underlying source, counting one access.
func (c *CountedSource) Root() (TreeNode, bool) {
	c.n++
	nd, ok := c.src.Root()
	return countedNode{n: nd, c: c}, ok
}

// Accesses returns the page accesses counted so far.
func (c *CountedSource) Accesses() int64 { return c.n }

type countedNode struct {
	n TreeNode
	c *CountedSource
}

func (cn countedNode) IsLeaf() bool         { return cn.n.IsLeaf() }
func (cn countedNode) Len() int             { return cn.n.Len() }
func (cn countedNode) Rect(i int) geom.Rect { return cn.n.Rect(i) }
func (cn countedNode) Data(i int) any       { return cn.n.Data(i) }
func (cn countedNode) Child(i int) TreeNode {
	cn.c.n++
	return countedNode{n: cn.n.Child(i), c: cn.c}
}
