package plot

import (
	"strings"
	"testing"
)

func TestRenderBasicChart(t *testing.T) {
	c := Chart{
		Title:   "server share",
		XLabels: []string{"20", "60", "100", "140", "180"},
		Series: []Series{
			{Name: "server", Points: []float64{60, 50, 40, 30, 20}, Marker: 's'},
			{Name: "single", Points: []float64{35, 45, 55, 65, 75}, Marker: '1'},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "server share") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "s=server") || !strings.Contains(out, "1=single") {
		t.Errorf("legend missing:\n%s", out)
	}
	if strings.Count(out, "s") < 5 {
		t.Errorf("series markers missing:\n%s", out)
	}
	// The first series descends: its first marker must be above its last.
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, l := range lines {
		if idx := strings.IndexByte(l, 's'); idx >= 0 && strings.Contains(l, "|") {
			if firstRow == -1 && idx < 15 {
				firstRow = i
			}
			if idx > 10 {
				lastRow = i
			}
		}
	}
	if firstRow == -1 || lastRow == -1 || firstRow >= lastRow {
		t.Errorf("descending series not rendered top-left to bottom-right:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := (Chart{}).Render(); !strings.Contains(out, "empty") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestRenderSinglePointAndFlatSeries(t *testing.T) {
	c := Chart{
		XLabels: []string{"a"},
		Series:  []Series{{Name: "one", Points: []float64{5}}},
	}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("default marker missing:\n%s", out)
	}
	flat := Chart{
		XLabels: []string{"a", "b", "c"},
		Series:  []Series{{Name: "flat", Points: []float64{7, 7, 7}}},
	}
	if out := flat.Render(); !strings.Contains(out, "*") {
		t.Errorf("flat series not rendered:\n%s", out)
	}
}

func TestRenderFixedYRange(t *testing.T) {
	c := Chart{
		XLabels: []string{"a", "b"},
		YMin:    0, YMax: 100,
		Height: 10,
		Series: []Series{{Name: "x", Points: []float64{0, 100}}},
	}
	out := c.Render()
	if !strings.Contains(out, "100 |") && !strings.Contains(out, "  100 |") {
		t.Errorf("y max label missing:\n%s", out)
	}
	if !strings.Contains(out, "0 |") {
		t.Errorf("y min label missing:\n%s", out)
	}
}

func TestRenderClampsOutliers(t *testing.T) {
	c := Chart{
		XLabels: []string{"a", "b"},
		YMin:    0, YMax: 10,
		Series: []Series{{Name: "x", Points: []float64{-50, 500}}},
	}
	// Must not panic and must render both markers.
	out := c.Render()
	if strings.Count(out, "*") != 2 {
		t.Errorf("clamped outliers not rendered:\n%s", out)
	}
}

func TestRenderNaNSkipped(t *testing.T) {
	nan := 0.0
	nan = nan / nan
	c := Chart{
		XLabels: []string{"a", "b", "c"},
		Series:  []Series{{Name: "x", Points: []float64{1, nan, 3}}},
	}
	out := c.Render()
	if strings.Count(out, "*") != 2 {
		t.Errorf("NaN point should be skipped:\n%s", out)
	}
}
