// Package plot renders small ASCII line charts for the command-line tools:
// the figure runners can show the reproduced curves directly in the
// terminal next to their numeric tables. Pure text, no dependencies.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Points []float64 // y values; x positions come from the chart's labels
	Marker byte      // glyph used for this line, e.g. 's', 'm', '*'
}

// Chart is a fixed-size ASCII chart.
type Chart struct {
	Title   string
	XLabels []string // one per x position
	YMin    float64  // lower bound of the y axis
	YMax    float64  // upper bound (0,0 = auto)
	Height  int      // plot rows (default 12)
	Series  []Series
}

// Render draws the chart. Series with fewer points than labels are drawn for
// the points they have. Overlapping points show the marker of the last
// series drawn.
func (c Chart) Render() string {
	height := c.Height
	if height <= 0 {
		height = 12
	}
	n := len(c.XLabels)
	if n == 0 {
		for _, s := range c.Series {
			if len(s.Points) > n {
				n = len(s.Points)
			}
		}
	}
	if n == 0 {
		return "(empty chart)\n"
	}
	ymin, ymax := c.YMin, c.YMax
	if ymin == 0 && ymax == 0 {
		ymin, ymax = math.Inf(1), math.Inf(-1)
		for _, s := range c.Series {
			for _, v := range s.Points {
				ymin = math.Min(ymin, v)
				ymax = math.Max(ymax, v)
			}
		}
		if math.IsInf(ymin, 1) {
			ymin, ymax = 0, 1
		}
		if ymax == ymin {
			ymax = ymin + 1
		}
		// A little headroom.
		pad := (ymax - ymin) * 0.05
		ymin -= pad
		ymax += pad
	}

	// Each x position gets a fixed column width.
	colWidth := 3
	width := n * colWidth
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(v float64) int {
		frac := (v - ymin) / (ymax - ymin)
		r := int(math.Round(frac * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return height - 1 - r // row 0 is the top
	}
	for _, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i, v := range s.Points {
			if i >= n || math.IsNaN(v) {
				continue
			}
			grid[rowOf(v)][i*colWidth+1] = marker
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, row := range grid {
		// y-axis label on the first, middle and last rows.
		label := "      "
		switch i {
		case 0:
			label = fmt.Sprintf("%5.0f ", ymax)
		case height / 2:
			label = fmt.Sprintf("%5.0f ", (ymax+ymin)/2)
		case height - 1:
			label = fmt.Sprintf("%5.0f ", ymin)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, row)
	}
	fmt.Fprintf(&b, "      +%s\n", strings.Repeat("-", width))
	// X labels, truncated to the column width.
	var xl strings.Builder
	for _, l := range c.XLabels {
		if len(l) > colWidth {
			l = l[:colWidth]
		}
		xl.WriteString(fmt.Sprintf("%-*s", colWidth, l))
	}
	fmt.Fprintf(&b, "       %s\n", strings.TrimRight(xl.String(), " "))
	// Legend.
	if len(c.Series) > 1 {
		var parts []string
		for _, s := range c.Series {
			marker := s.Marker
			if marker == 0 {
				marker = '*'
			}
			parts = append(parts, fmt.Sprintf("%c=%s", marker, s.Name))
		}
		fmt.Fprintf(&b, "       %s\n", strings.Join(parts, "  "))
	}
	return b.String()
}
