package client_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cache"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
)

// bruteServer answers kNN by exhaustive scan with the exact EINN bound
// semantics (strictly beyond the lower bound, within the upper bound). It
// implements both core.Server and client.Server so the same fixture backs
// the reference core.SENN and the Resolver under test.
type bruteServer struct {
	pois  []core.POI
	calls int
}

func (s *bruteServer) knn(q geom.Point, k int, b nn.Bounds) []core.POI {
	var out []core.POI
	for _, p := range s.pois {
		d := q.Dist(p.Loc)
		if b.HasLower && d <= b.Lower {
			continue
		}
		if b.HasUpper && d > b.Upper {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return q.Dist(out[i].Loc) < q.Dist(out[j].Loc) })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func (s *bruteServer) KNN(q geom.Point, k int, b nn.Bounds) []core.POI {
	s.calls++
	return s.knn(q, k, b)
}

func (s *bruteServer) KNNInto(q geom.Point, k int, b nn.Bounds, dst []core.POI) ([]core.POI, int64, error) {
	s.calls++
	return append(dst[:0], s.knn(q, k, b)...), 1, nil
}

// slicePeers is a fixed-peer PeerSource with unit accounting.
type slicePeers struct {
	peers []core.PeerCache
}

func (s *slicePeers) Gather(q geom.Point, dst []core.PeerCache) ([]core.PeerCache, int64, int64) {
	return append(dst, s.peers...), int64(1 + len(s.peers)), 0
}

// randomWorld draws n POIs with distinct coordinates (ties would make the
// answer comparison order-dependent).
func randomWorld(rng *rand.Rand, n int) []core.POI {
	pois := make([]core.POI, n)
	for i := range pois {
		pois[i] = core.POI{
			ID:  int64(i + 1),
			Loc: geom.Pt(rng.Float64()*1000, rng.Float64()*1000),
		}
	}
	return pois
}

// peerAt builds a peer cache holding the true c nearest neighbors of loc —
// exactly what a host that just asked the server at loc would cache.
func peerAt(srv *bruteServer, loc geom.Point, c int) core.PeerCache {
	return core.NewPeerCache(loc, srv.knn(loc, c, nn.Bounds{}))
}

// TestResolveMatchesSENNOracle is the package's conformance gate: over many
// random worlds the Resolver must agree with the reference core.SENN —
// same resolution source, same answer IDs and distances — on every path
// (single-peer, multi-peer, uncertain, server fallback). A cacheless
// request sizes the heap at exactly k, which is the configuration the
// reference implementation runs.
func TestResolveMatchesSENNOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	r := client.NewResolver()
	srcCounts := map[core.Source]int{}
	for trial := 0; trial < 400; trial++ {
		srv := &bruteServer{pois: randomWorld(rng, 60+rng.Intn(100))}
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(8)
		accept := rng.Intn(2) == 0
		numPeers := rng.Intn(6)
		peers := make([]core.PeerCache, 0, numPeers)
		for i := 0; i < numPeers; i++ {
			loc := geom.Pt(q.X+rng.NormFloat64()*120, q.Y+rng.NormFloat64()*120)
			peers = append(peers, peerAt(srv, loc, 1+rng.Intn(12)))
		}

		want := core.SENN(q, k, peers, srv, core.Options{AcceptUncertain: accept})

		r.ResetArena()
		got := r.Resolve(client.Request{
			Q: q, K: k, AcceptUncertain: accept, NeedAnswer: true,
		}, &slicePeers{peers: peers}, srv)
		srcCounts[got.Src]++

		if got.Src != want.Source {
			t.Fatalf("trial %d: source %v, oracle %v", trial, got.Src, want.Source)
		}
		if got.Err != nil {
			t.Fatalf("trial %d: unexpected error %v", trial, got.Err)
		}
		if len(got.Answer) != len(want.Neighbors) {
			t.Fatalf("trial %d (%v): %d answers, oracle %d",
				trial, got.Src, len(got.Answer), len(want.Neighbors))
		}
		for i, c := range got.Answer {
			if c.ID != want.Neighbors[i].ID || c.Dist != want.Neighbors[i].Dist {
				t.Fatalf("trial %d (%v): answer %d = (%d, %g), oracle (%d, %g)",
					trial, got.Src, i, c.ID, c.Dist, want.Neighbors[i].ID, want.Neighbors[i].Dist)
			}
		}
		if got.PeerSolved() != (want.Source != core.SolvedByServer) {
			t.Fatalf("trial %d: PeerSolved %v for source %v", trial, got.PeerSolved(), got.Src)
		}
	}
	// The fixture must actually exercise every path, or the oracle proves
	// nothing.
	for _, src := range []core.Source{
		core.SolvedBySinglePeer, core.SolvedByMultiPeer,
		core.SolvedUncertain, core.SolvedByServer,
	} {
		if srcCounts[src] == 0 {
			t.Errorf("no trial resolved via %v; fixture too weak", src)
		}
	}
}

// TestResolveCachePolicy pins both cache policies end to end: the server
// fallback tops the fetch up to cache capacity (policy 2) and the staged
// write holds the true capacity-sized NN prefix of the query point
// (policy 1) — so applying it and re-asking from the same spot peer-solves
// from the local cache alone.
func TestResolveCachePolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	srv := &bruteServer{pois: randomWorld(rng, 200)}
	q := geom.Pt(500, 500)
	const k, capacity = 3, 10
	c := cache.New(capacity)
	r := client.NewResolver()

	out := r.Resolve(client.Request{Q: q, K: k, Cache: c, NeedAnswer: true}, nil, srv)
	if out.Src != core.SolvedByServer || out.Err != nil {
		t.Fatalf("cold query: src %v err %v, want server-solved", out.Src, out.Err)
	}
	if !out.Write.Staged() {
		t.Fatal("cold query staged no cache write")
	}
	out.Write.Apply(c)
	ent, ok := c.Entry()
	if !ok {
		t.Fatal("cache empty after Apply")
	}
	truth := srv.knn(q, capacity, nn.Bounds{})
	if len(ent.Neighbors) != capacity {
		t.Fatalf("cached %d POIs, want capacity %d (policy 2 top-up)", len(ent.Neighbors), capacity)
	}
	for i, p := range truth {
		if ent.Neighbors[i].ID != p.ID {
			t.Fatalf("cached neighbor %d = POI %d, want %d", i, ent.Neighbors[i].ID, p.ID)
		}
	}

	// Same location, k ≤ capacity: the own-cache entry alone certifies the
	// answer with no peer source and no server contact.
	calls := srv.calls
	r.ResetArena()
	out = r.Resolve(client.Request{Q: q, K: k, Cache: c, NeedAnswer: true}, nil, srv)
	if out.Src != core.SolvedBySinglePeer {
		t.Fatalf("warm query: src %v, want single-peer (own cache)", out.Src)
	}
	if srv.calls != calls {
		t.Fatal("warm query contacted the server")
	}
	if out.Msgs != 0 || out.PeersUsed != 1 {
		t.Fatalf("warm query: msgs %d peers %d, want 0 msgs from nil source, 1 peer", out.Msgs, out.PeersUsed)
	}
	for i, p := range truth[:k] {
		if out.Answer[i].ID != p.ID {
			t.Fatalf("warm answer %d = POI %d, want %d", i, out.Answer[i].ID, p.ID)
		}
	}
}

// TestResolveNilServer models a host with no connectivity: the best
// available answer comes back as SolvedUncertain, mirroring core.SENN.
func TestResolveNilServer(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	srv := &bruteServer{pois: randomWorld(rng, 50)}
	q := geom.Pt(500, 500)
	peers := []core.PeerCache{peerAt(srv, geom.Pt(480, 510), 2)}
	r := client.NewResolver()
	out := r.Resolve(client.Request{Q: q, K: 10, NeedAnswer: true}, &slicePeers{peers: peers}, nil)
	if out.Src != core.SolvedUncertain || out.Err != nil {
		t.Fatalf("src %v err %v, want uncertain best effort", out.Src, out.Err)
	}
	if len(out.Answer) >= 10 {
		t.Fatalf("disconnected host certified %d answers from a 2-POI peer", len(out.Answer))
	}
}

// errServer always fails; the outcome must surface the transport error.
type errServer struct{ err error }

func (s errServer) KNNInto(geom.Point, int, nn.Bounds, []core.POI) ([]core.POI, int64, error) {
	return nil, 0, s.err
}

type sentinelErr struct{}

func (sentinelErr) Error() string { return "server unreachable" }

func TestResolveServerError(t *testing.T) {
	r := client.NewResolver()
	out := r.Resolve(client.Request{Q: geom.Pt(0, 0), K: 3, NeedAnswer: true}, nil, errServer{err: sentinelErr{}})
	if out.Err == nil || out.Src != core.SolvedByServer {
		t.Fatalf("got src %v err %v, want server-path error", out.Src, out.Err)
	}
	if out.Write.Staged() || out.Answer != nil {
		t.Fatal("failed query staged a write or returned an answer")
	}
}
