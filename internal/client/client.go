// Package client is the transport-agnostic SENN client core: the one
// implementation of Algorithm 1 every mobile host in this repository runs,
// whether it is a simulated host resolving against an in-process grid
// snapshot (internal/sim) or a networked client gathering peer caches
// through the daemon relay and falling back to the wire query channel
// (internal/serve).
//
// The core owns the client-side pipeline of §4.1:
//
//   - consult the local cache (policy 1's stored entry is just the nearest
//     peer),
//   - gather shareable peer caches from the pluggable PeerSource,
//   - verify them with the §3.2 lemmas (kNN_single per peer in Heuristic 3.3
//     order, then kNN_multiple over the merged certain region),
//   - optionally accept a full-but-uncertain answer (Algorithm 1 line 15),
//   - otherwise fall back to the pluggable Server with the §3.3 pruning
//     bounds, topping the request up to cache capacity (policy 2),
//   - and stage the cache policy 1 write for the caller to apply.
//
// What varies by transport — where peer caches come from, and how the
// server is reached — is behind the two small interfaces. Everything else
// (ordering, verification, bound extraction, cache policy) is shared, so
// the simulator and the network client cannot drift apart: the served
// system answers exactly like the simulated one, which the over-the-socket
// oracle tests in internal/serve pin.
//
// A Resolver is single-goroutine scratch. Its steady-state resolve path
// performs no heap allocations (the simulator's TestResolveAllocs* tests
// pin both the peer-solved and the server-solved path at zero), which is
// why buffers — peer slice, result heap, verifier scratch, POI arena —
// live on the Resolver and are recycled across queries.
package client

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
)

// PeerSource supplies the shareable peer caches within transmission range
// of a query point — the P2P exchange of §4.1 behind whatever transport
// carries it (grid sweep, cell snapshot, daemon relay). Gather appends the
// peers to dst and returns the extended slice together with the exchange's
// accounted cost: message count (the broadcast request plus one share per
// responding peer) and wire volume (internal/wire codec sizes).
//
// The enumeration order must be deterministic for a deterministic caller:
// the resolver's proximity sort is stable, so peers at equal distance keep
// their gather order.
type PeerSource interface {
	Gather(q geom.Point, dst []core.PeerCache) (peers []core.PeerCache, msgs, bytes int64)
}

// Server is the remote spatial database fallback. KNNInto appends up to k
// POIs to dst[:0] — in ascending distance order, all strictly beyond the
// lower bound when one is set — and returns the extended slice plus the
// page-access cost the traversal charged (EINN under the §3.3 bounds).
// Implementations reuse dst's backing array across calls.
type Server interface {
	KNNInto(q geom.Point, k int, b nn.Bounds, dst []core.POI) ([]core.POI, int64, error)
}

// Request is one SENN query.
type Request struct {
	// Q is the query point (the host's current position).
	Q geom.Point
	// K is the requested neighbor count.
	K int
	// Cache is the host's local NN cache. Its entry (when valid) joins the
	// peer set first — the local-cache check of §4.1 — and its capacity
	// sizes the server top-up of policy 2. May be nil for a cacheless host.
	Cache *cache.Cache
	// AcceptUncertain allows a full heap with uncertain entries to stand as
	// the answer without contacting the server (Algorithm 1 line 15).
	AcceptUncertain bool
	// NeedAnswer asks the resolver to return a private copy of the answer
	// candidates in Outcome.Answer. Callers that only need the effects
	// (cache write, counters) leave it false and keep the path
	// allocation-free.
	NeedAnswer bool
}

// Outcome is the effect of resolving one request. The cache write is staged,
// not applied: the simulator commits writes in event order, the networked
// client applies immediately.
type Outcome struct {
	// Src records which mechanism resolved the query.
	Src core.Source
	// Msgs and Bytes are the P2P exchange cost reported by the PeerSource.
	Msgs, Bytes int64
	// Pages is the server page-access cost (0 unless the server was
	// contacted).
	Pages int64
	// PeersUsed is the number of peer caches examined (the local cache
	// counts when it held an entry).
	PeersUsed int
	// Write is the pending cache policy 1 update. Its POI slice lives in
	// the Resolver's arena: it stays valid until the next ResetArena, and
	// cache.Store copies on Apply.
	Write cache.StagedWrite
	// Answer holds the up-to-k answer candidates in ascending distance
	// order when Request.NeedAnswer was set (a private copy, safe to
	// retain).
	Answer []core.Candidate
	// Err is the server transport failure, if any; when set, Src is
	// SolvedByServer and the rest of the outcome is not meaningful.
	Err error
}

// PeerSolved reports whether the query completed without the server.
func (o *Outcome) PeerSolved() bool {
	return o.Err == nil && o.Src != core.SolvedByServer
}

// Resolver is the reusable scratch of one SENN client. One resolver serves
// one goroutine; a parallel caller keeps one per worker. The zero value is
// not ready — construct with NewResolver.
type Resolver struct {
	peers  []core.PeerCache
	heap   *core.ResultHeap
	verify core.VerifierScratch
	sorter core.PeerProximitySorter
	// poiArena backs the POI slices handed to cache.Stage. It is reset by
	// ResetArena, not per query: staged slices must stay intact until the
	// caller applies them (cache.Store copies on Apply, so nothing
	// references arena memory past that).
	poiArena []core.POI
	// full merges certified heap entries with server-fetched POIs on the
	// fallback path.
	full []core.Candidate
	// fetched is the server fallback's destination buffer, reused across
	// queries.
	fetched []core.POI
}

// NewResolver returns a resolver with empty scratch.
func NewResolver() *Resolver {
	return &Resolver{heap: core.NewResultHeap(1)}
}

// ResetArena recycles the arena backing staged cache writes. Call it only
// once every Write staged since the previous reset has been applied (or
// abandoned): batch start in the simulator, after the cache update in the
// networked client.
func (r *Resolver) ResetArena() {
	r.poiArena = r.poiArena[:0]
}

// Resolve runs one complete SENN query (Algorithm 1): local cache, peer
// gather, kNN_single/kNN_multiple verification, then the server fallback
// with the §3.3 pruning bounds. It mutates nothing but its own scratch —
// every effect is returned in the Outcome. peers may be nil (no P2P
// channel); srv may be nil (no server connectivity — the best available
// answer is returned with Source SolvedUncertain, mirroring core.SENN).
func (r *Resolver) Resolve(req Request, ps PeerSource, srv Server) Outcome {
	q, k := req.Q, req.K
	res := Outcome{}

	// Gather shareable cached results: the host's own cache first (the
	// local-cache check of §4.1), then every peer within transmission
	// range.
	peers := r.peers[:0]
	if req.Cache != nil {
		if ent, ok := req.Cache.Entry(); ok {
			peers = append(peers, ent)
		}
	}
	if ps != nil {
		peers, res.Msgs, res.Bytes = ps.Gather(q, peers)
	}
	r.peers = peers[:0]
	res.PeersUsed = len(peers)

	// Algorithm 1 over the gathered peer data. The heap is sized at
	// max(k, C_Size) rather than k: the query itself needs k certain
	// objects, but cache policy 1 stores *all* the certain nearest
	// neighbors of the most recent query — the full certified set is still
	// an exact distance prefix (every POI closer than a certified one is
	// itself certified), so it is a valid PeerCache and keeps the shared
	// caches from degrading to the last query's k.
	heapK := k
	if req.Cache != nil {
		if c := req.Cache.Capacity(); c > heapK {
			heapK = c
		}
	}
	h := r.heap
	h.Reset(heapK)
	answered := func() bool { return h.NumCertain() >= k }

	// Heuristic 3.3 ordering, in place: the resolver owns the peers slice,
	// so the copying SortPeersByProximity would only add garbage.
	r.sorter.Q = q
	r.sorter.Peers = peers
	r.sorter.Sort()
	solvedSingle := false
	for _, pc := range peers {
		core.VerifySinglePeer(q, pc, h)
		if answered() {
			solvedSingle = true
			break
		}
	}
	if !solvedSingle && len(peers) > 0 {
		r.verify.VerifyMultiPeer(q, peers, h)
	}
	if answered() {
		res.Src = core.SolvedByMultiPeer
		if solvedSingle {
			res.Src = core.SolvedBySinglePeer
		}
		// CertainView aliases the heap scratch; the arena copy made for the
		// staged write is what outlives this call.
		certain := h.CertainView()
		res.Write = r.stageResult(q, certain)
		if req.NeedAnswer {
			res.Answer = append([]core.Candidate(nil), certain[:k]...)
		}
		return res
	}
	if req.AcceptUncertain && h.Len() >= k || srv == nil {
		res.Src = core.SolvedUncertain
		// Uncertain results are not exact prefixes: only the certain prefix
		// may enter the cache.
		res.Write = r.stageResult(q, h.CertainView())
		if req.NeedAnswer {
			entries := h.Entries()
			if len(entries) > k {
				entries = entries[:k]
			}
			res.Answer = entries
		}
		return res
	}

	// Server fallback with the §3.3 pruning bounds. Per cache policy 2 the
	// host tops the request up to its cache capacity. The upper bound — the
	// k-th smallest distance in H — stays in force: it guarantees the top-k
	// answer is complete, while letting the EINN search truncate the
	// opportunistic cache refill early; the refill then holds every POI out
	// to the bound, which is still an exact prefix and therefore a valid
	// PeerCache.
	bounds := h.Bounds()
	bounds.HasUpper = false
	if ub, ok := h.UpperBoundFor(k); ok {
		bounds.Upper = ub
		bounds.HasUpper = true
	}
	certain := h.CertainView()
	fetchCount := heapK - len(certain)
	fetched, pages, err := srv.KNNInto(q, fetchCount, bounds, r.fetched)
	r.fetched = fetched
	res.Src = core.SolvedByServer
	res.Pages = pages
	if err != nil {
		res.Err = err
		return res
	}

	full := r.full[:0]
	full = append(full, certain...)
	for _, poi := range fetched {
		full = append(full, core.Candidate{POI: poi, Dist: q.Dist(poi.Loc), Certain: true})
	}
	r.full = full
	res.Write = r.stageResult(q, full)
	if req.NeedAnswer {
		nk := k
		if nk > len(full) {
			nk = len(full)
		}
		res.Answer = append([]core.Candidate(nil), full[:nk]...)
	}
	return res
}

// stageResult prepares cache policy 1 as a deferred write: keep the query
// location and the certain NNs of the most recent query. An empty certain
// set stages nothing — the previous entry is kept rather than caching
// nothing.
//
// The POI copy lives in the resolver's arena, which the caller recycles via
// ResetArena once the staged writes have been applied. A mid-batch arena
// growth leaves earlier slices pointing at the retired backing array, which
// stays valid (and unreused) until the reset.
func (r *Resolver) stageResult(q geom.Point, certain []core.Candidate) cache.StagedWrite {
	if len(certain) == 0 {
		return cache.StagedWrite{}
	}
	base := len(r.poiArena)
	for _, c := range certain {
		r.poiArena = append(r.poiArena, c.POI)
	}
	return cache.Stage(q, r.poiArena[base:len(r.poiArena):len(r.poiArena)])
}
