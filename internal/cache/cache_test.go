package cache

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func pois(locs ...geom.Point) []core.POI {
	out := make([]core.POI, len(locs))
	for i, l := range locs {
		out[i] = core.POI{ID: int64(i + 1), Loc: l}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestEmptyCache(t *testing.T) {
	c := New(5)
	if _, ok := c.Entry(); ok {
		t.Error("fresh cache should be empty")
	}
	if c.Capacity() != 5 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
}

func TestStoreAndEntry(t *testing.T) {
	c := New(5)
	q := geom.Pt(0, 0)
	c.Store(q, pois(geom.Pt(1, 0), geom.Pt(3, 0), geom.Pt(2, 0)))
	e, ok := c.Entry()
	if !ok {
		t.Fatal("entry missing after store")
	}
	if !e.QueryLoc.Eq(q) {
		t.Errorf("query loc = %v", e.QueryLoc)
	}
	if len(e.Neighbors) != 3 {
		t.Fatalf("stored %d neighbors", len(e.Neighbors))
	}
	// Must be distance-sorted regardless of input order.
	if e.Neighbors[0].Loc.X != 1 || e.Neighbors[1].Loc.X != 2 || e.Neighbors[2].Loc.X != 3 {
		t.Errorf("neighbors not sorted: %v", e.Neighbors)
	}
}

// Policy 1: only the most recent query is kept.
func TestStoreReplacesPrevious(t *testing.T) {
	c := New(5)
	c.Store(geom.Pt(0, 0), pois(geom.Pt(1, 0)))
	c.Store(geom.Pt(10, 10), pois(geom.Pt(11, 10), geom.Pt(12, 10)))
	e, ok := c.Entry()
	if !ok || !e.QueryLoc.Eq(geom.Pt(10, 10)) || len(e.Neighbors) != 2 {
		t.Errorf("cache did not replace previous entry: %+v ok=%v", e, ok)
	}
}

// Capacity bounds the stored set, keeping the nearest POIs.
func TestStoreTrimsToCapacity(t *testing.T) {
	c := New(2)
	c.Store(geom.Pt(0, 0), pois(geom.Pt(3, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(4, 0)))
	e, _ := c.Entry()
	if len(e.Neighbors) != 2 {
		t.Fatalf("stored %d neighbors, capacity 2", len(e.Neighbors))
	}
	if e.Neighbors[0].Loc.X != 1 || e.Neighbors[1].Loc.X != 2 {
		t.Errorf("kept wrong neighbors: %v", e.Neighbors)
	}
	if e.Radius() != 2 {
		t.Errorf("radius = %v after trim, want 2", e.Radius())
	}
}

func TestStoreEmptyInvalidates(t *testing.T) {
	c := New(3)
	c.Store(geom.Pt(0, 0), pois(geom.Pt(1, 0)))
	c.Store(geom.Pt(5, 5), nil)
	if _, ok := c.Entry(); ok {
		t.Error("empty store should invalidate")
	}
}

// StagedWrite defers a cache-policy write so the simulator's resolve phase
// can stay read-only; Apply in commit order must behave exactly like an
// immediate Store.
func TestStagedWriteApply(t *testing.T) {
	c := New(5)
	w := Stage(geom.Pt(1, 1), pois(geom.Pt(3, 1), geom.Pt(2, 1)))
	if !w.Staged() {
		t.Error("Stage returned an unstaged write")
	}
	if _, ok := c.Entry(); ok {
		t.Error("staging alone must not touch the cache")
	}
	w.Apply(c)
	e, ok := c.Entry()
	if !ok || !e.QueryLoc.Eq(geom.Pt(1, 1)) {
		t.Fatalf("Apply did not store the entry: %+v ok=%v", e, ok)
	}
	if len(e.Neighbors) != 2 || e.Neighbors[0].Loc.X != 2 {
		t.Errorf("Apply bypassed Store's sorting: %v", e.Neighbors)
	}
}

// The zero StagedWrite is the "keep the previous entry" decision.
func TestStagedWriteZeroValueIsNoOp(t *testing.T) {
	c := New(3)
	c.Store(geom.Pt(0, 0), pois(geom.Pt(1, 0)))
	var w StagedWrite
	if w.Staged() {
		t.Error("zero StagedWrite reports staged")
	}
	w.Apply(c)
	e, ok := c.Entry()
	if !ok || !e.QueryLoc.Eq(geom.Pt(0, 0)) || len(e.Neighbors) != 1 {
		t.Errorf("zero-value Apply disturbed the cache: %+v ok=%v", e, ok)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(3)
	c.Store(geom.Pt(0, 0), pois(geom.Pt(1, 0)))
	c.Invalidate()
	if _, ok := c.Entry(); ok {
		t.Error("Invalidate did not clear the cache")
	}
	// Cache is reusable afterwards.
	c.Store(geom.Pt(1, 1), pois(geom.Pt(2, 1)))
	if _, ok := c.Entry(); !ok {
		t.Error("store after invalidate failed")
	}
}
