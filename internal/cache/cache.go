// Package cache implements the mobile-host NN result cache of the paper's
// simulator (§4.1), with its two management policies:
//
//  1. a host stores only the query location and the certain nearest
//     neighbors of its most recent query, and
//  2. when a kNN query must be sent to the server, the host queries for as
//     many NNs as its cache capacity allows, so the cache refills to
//     capacity on every server round trip.
//
// The cached entry is exactly what the host shares with peers as a
// core.PeerCache.
package cache

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// Cache is one mobile host's NN result cache. The zero value is unusable;
// construct with New.
type Cache struct {
	capacity int
	entry    core.PeerCache
	valid    bool
}

// New returns an empty cache holding up to capacity POIs (the C_Size
// simulation parameter). capacity must be positive.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	return &Cache{capacity: capacity}
}

// Make is New as a value: simulators that keep one cache per host store
// them in a single contiguous slice instead of a million heap objects.
func Make(capacity int) Cache {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	return Cache{capacity: capacity}
}

// Capacity returns C_Size. Per policy 2 it is also the result count a host
// requests when it must contact the server.
func (c *Cache) Capacity() int { return c.capacity }

// Store replaces the cache content with the result of the host's most
// recent query (policy 1). Only certain POIs may be stored — the
// verification lemmas require peers to share exact top-k sets — and at most
// Capacity of the nearest ones are kept. Storing an empty set invalidates
// the cache.
func (c *Cache) Store(queryLoc geom.Point, certain []core.POI) {
	if len(certain) == 0 {
		c.valid = false
		c.entry = core.PeerCache{}
		return
	}
	pc := core.NewPeerCache(queryLoc, certain)
	if len(pc.Neighbors) > c.capacity {
		pc.Neighbors = pc.Neighbors[:c.capacity]
	}
	c.entry = pc
	c.valid = true
}

// Entry returns the shareable cached result. ok is false when the cache is
// empty.
func (c *Cache) Entry() (core.PeerCache, bool) {
	if !c.valid {
		return core.PeerCache{}, false
	}
	return c.entry, true
}

// Invalidate clears the cache.
func (c *Cache) Invalidate() {
	c.valid = false
	c.entry = core.PeerCache{}
}

// StagedWrite is a deferred cache update: the resolve phase of a concurrent
// query batch records what Store call each query *would* make, and the
// commit phase applies the writes strictly in event order. Splitting the
// write off from resolution guarantees every resolver observes the caches
// exactly as they were at the start of the step — a snapshot — no matter
// how the batch is scheduled across workers.
//
// The zero value is a no-op: Apply on it does nothing, so resolvers that
// never produce a result need no special casing.
type StagedWrite struct {
	queryLoc geom.Point
	certain  []core.POI
	staged   bool
}

// Stage records a pending Store(queryLoc, certain). The slice is retained;
// callers must not mutate it afterwards.
func Stage(queryLoc geom.Point, certain []core.POI) StagedWrite {
	return StagedWrite{queryLoc: queryLoc, certain: certain, staged: true}
}

// Apply performs the recorded Store on c. A zero StagedWrite does nothing.
func (w StagedWrite) Apply(c *Cache) {
	if !w.staged {
		return
	}
	c.Store(w.queryLoc, w.certain)
}

// Staged reports whether Apply will write anything.
func (w StagedWrite) Staged() bool { return w.staged }
