package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// heapInvariants checks every structural invariant of the result heap H.
func heapInvariants(h *ResultHeap) error {
	entries := h.Entries()
	if len(entries) > h.K() {
		return errorf("heap holds %d > k=%d entries", len(entries), h.K())
	}
	seen := map[int64]bool{}
	certainEnded := false
	prevCertain, prevUncertain := math.Inf(-1), math.Inf(-1)
	for _, e := range entries {
		if seen[e.ID] {
			return errorf("duplicate POI %d", e.ID)
		}
		seen[e.ID] = true
		if e.Certain {
			if certainEnded {
				return errorf("certain entry after uncertain section")
			}
			if e.Dist < prevCertain-1e-12 {
				return errorf("certain entries not ascending")
			}
			prevCertain = e.Dist
		} else {
			certainEnded = true
			if e.Dist < prevUncertain-1e-12 {
				return errorf("uncertain entries not ascending")
			}
			prevUncertain = e.Dist
		}
	}
	if h.NumCertain() < h.K() && h.Len() > h.K() {
		return errorf("len exceeds k")
	}
	return nil
}

func errorf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// quickCandidate is a generator-friendly candidate description.
type quickCandidate struct {
	ID      uint8
	Dist    float64
	Certain bool
}

// The heap must maintain its invariants under any insertion sequence, and
// certified IDs must never lose certainty.
func TestHeapInvariantsQuick(t *testing.T) {
	f := func(k uint8, stream []quickCandidate) bool {
		kk := int(k%9) + 1
		h := NewResultHeap(kk)
		certified := map[int64]bool{}
		for _, qc := range stream {
			d := math.Abs(qc.Dist)
			if math.IsNaN(d) || math.IsInf(d, 0) {
				d = 1
			}
			c := Candidate{
				POI:     POI{ID: int64(qc.ID), Loc: geom.Pt(d, 0)},
				Dist:    d,
				Certain: qc.Certain,
			}
			h.Add(c)
			if err := heapInvariants(h); err != nil {
				t.Logf("invariant violated after adding %+v: %v", c, err)
				return false
			}
			if qc.Certain {
				certified[c.ID] = true
			}
			// Certified IDs still present must remain certain.
			for _, e := range h.Entries() {
				if certified[e.ID] && !e.Certain {
					t.Logf("POI %d lost certainty", e.ID)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Bounds derived from any heap state must be internally consistent: upper >=
// lower whenever both exist, and both non-negative.
func TestHeapBoundsConsistencyQuick(t *testing.T) {
	f := func(k uint8, stream []quickCandidate) bool {
		kk := int(k%9) + 1
		h := NewResultHeap(kk)
		for _, qc := range stream {
			d := math.Abs(qc.Dist)
			if math.IsNaN(d) || math.IsInf(d, 0) {
				d = 1
			}
			h.Add(Candidate{
				POI:     POI{ID: int64(qc.ID), Loc: geom.Pt(d, 0)},
				Dist:    d,
				Certain: qc.Certain,
			})
			b := h.Bounds()
			if b.HasLower && b.Lower < 0 {
				return false
			}
			if b.HasUpper && b.HasLower && b.Upper < b.Lower-1e-12 {
				return false
			}
			if b.HasUpper && !h.Full() {
				return false // upper bound requires a full heap
			}
			if b.HasLower && h.NumCertain() == 0 {
				return false // lower bound requires a certain entry
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Peer cache construction must sort neighbors and report a radius equal to
// the farthest one, for any input order.
func TestPeerCacheQuick(t *testing.T) {
	f := func(seed int64, xs []float64) bool {
		loc := geom.Pt(0, 0)
		var pois []POI
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			pois = append(pois, POI{ID: int64(i), Loc: geom.Pt(math.Mod(x, 1e6), 0)})
		}
		pc := NewPeerCache(loc, pois)
		var prev float64 = -1
		for _, n := range pc.Neighbors {
			d := loc.Dist(n.Loc)
			if d < prev-1e-12 {
				return false
			}
			prev = d
		}
		if len(pc.Neighbors) > 0 && math.Abs(pc.Radius()-prev) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
