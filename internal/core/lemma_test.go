package core

// lemma_test.go checks the paper's lemmas one by one on constructed
// geometric scenarios, complementing the randomized oracles in
// verify_test.go.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// Lemma 3.1: if Dist(Q,n_i) + δ > Dist(P,n_k), n_i cannot be verified — an
// unknown POI may hide in the uncovered part of the disc. Construct exactly
// such a hidden POI and confirm the uncertain classification is necessary.
func TestLemma31UncertainIsNecessary(t *testing.T) {
	q := geom.Pt(0, 0)
	// Peer P at (3,0) with certain radius 4: knows everything within 4 of P.
	// Its cached NNs: n1 at (2,0) (dist to Q: 2), n2 at (7,0) (farthest).
	n1 := POI{ID: 1, Loc: geom.Pt(2, 0)}
	n2 := POI{ID: 2, Loc: geom.Pt(7, 0)}
	// The hidden POI: outside P's certain circle but closer to Q than n1.
	hidden := POI{ID: 3, Loc: geom.Pt(-1.5, 0)} // dist to P = 4.5 > 4
	peer := NewPeerCache(geom.Pt(3, 0), []POI{n1, n2})

	h := NewResultHeap(1)
	VerifySinglePeer(q, peer, h)
	entries := h.Entries()
	if len(entries) == 0 {
		t.Fatal("no candidates")
	}
	// n1: Dist(Q,n1)+δ = 2+3 = 5 > 4 = Dist(P,n2): must be uncertain.
	if entries[0].Certain {
		t.Fatal("Lemma 3.1 violated: n1 certified despite uncovered area")
	}
	// And rightly so: the hidden POI is the true 1NN of Q.
	if q.Dist(hidden.Loc) >= q.Dist(n1.Loc) {
		t.Fatal("test construction broken")
	}
}

// Lemma 3.2 certifies through strict inequality and equality alike; just
// beyond equality it must not certify.
func TestLemma32Threshold(t *testing.T) {
	q := geom.Pt(0, 0)
	peerLoc := geom.Pt(1, 0)
	farthest := POI{ID: 9, Loc: geom.Pt(4, 0)} // Dist(P, n_k) = 3
	// Candidates sit off the P-Q axis so that they stay strictly inside the
	// peer's certain circle (never becoming its farthest neighbor) while
	// their distance to Q crosses the Lemma 3.2 threshold.
	for _, tc := range []struct {
		name    string
		loc     geom.Point
		certain bool
	}{
		{"well inside", geom.Pt(0, 1), true},      // 1 + 1 = 2 <= 3
		{"exactly at bound", geom.Pt(0, 2), true}, // 2 + 1 = 3 <= 3
		{"just beyond", geom.Pt(0, 2.01), false},  // 3.01 > 3
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := POI{ID: 1, Loc: tc.loc}
			peer := NewPeerCache(peerLoc, []POI{n, farthest})
			h := NewResultHeap(2)
			VerifySinglePeer(q, peer, h)
			for _, e := range h.Entries() {
				if e.ID == 1 && e.Certain != tc.certain {
					t.Errorf("certainty = %v, want %v", e.Certain, tc.certain)
				}
			}
		})
	}
}

// Lemma 3.6/3.7: certified objects carry exact ranks — build a line of POIs
// where the peer certifies a strict prefix and check each rank.
func TestLemma37ExactRanks(t *testing.T) {
	q := geom.Pt(0, 0)
	// POIs on the x axis at 1, 2, 3, ..., 8.
	var pois []POI
	for i := 1; i <= 8; i++ {
		pois = append(pois, POI{ID: int64(i), Loc: geom.Pt(float64(i), 0)})
	}
	// Peer at (1,0) caching its 6 nearest: POIs 1..6 (dist to P: 0..5);
	// certain radius = 5. Certified for Q: dist + 1 <= 5 → dist <= 4 →
	// POIs 1..4 with ranks 1..4.
	peer := honestCache(geom.Pt(1, 0), pois, 6)
	h := NewResultHeap(8)
	VerifySinglePeer(q, peer, h)
	cs := h.CertainEntries()
	if len(cs) != 4 {
		t.Fatalf("certified %d, want 4", len(cs))
	}
	for i, c := range cs {
		if c.ID != int64(i+1) {
			t.Errorf("rank %d holds POI %d, want %d", i+1, c.ID, i+1)
		}
		if math.Abs(c.Dist-float64(i+1)) > 1e-12 {
			t.Errorf("rank %d dist %v", i+1, c.Dist)
		}
	}
}

// Heuristic 3.3 is a heuristic, not a correctness requirement: shuffling
// peer order must never change WHICH objects end up certified by the full
// verification (single pass over all peers + multi-peer), only how soon.
func TestPeerOrderDoesNotChangeCertifiedSet(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 60; trial++ {
		pois := make([]POI, 40)
		for i := range pois {
			pois[i] = POI{ID: int64(i), Loc: geom.Pt(rng.Float64()*300, rng.Float64()*300)}
		}
		q := geom.Pt(rng.Float64()*300, rng.Float64()*300)
		var peers []PeerCache
		for i := 0; i < 4; i++ {
			loc := geom.Pt(q.X+rng.NormFloat64()*50, q.Y+rng.NormFloat64()*50)
			peers = append(peers, honestCache(loc, pois, 6))
		}
		certified := func(ps []PeerCache) map[int64]bool {
			h := NewResultHeap(40) // no truncation: observe the full set
			for _, p := range ps {
				VerifySinglePeer(q, p, h)
			}
			out := map[int64]bool{}
			for _, c := range h.CertainEntries() {
				out[c.ID] = true
			}
			return out
		}
		a := certified(peers)
		shuffled := append([]PeerCache(nil), peers...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		b := certified(shuffled)
		if len(a) != len(b) {
			t.Fatalf("trial %d: certified set size depends on order: %d vs %d", trial, len(a), len(b))
		}
		for id := range a {
			if !b[id] {
				t.Fatalf("trial %d: POI %d certified only in one order", trial, id)
			}
		}
	}
}

// The certified set from any honest peer population is prefix-closed by
// rank: if rank r is certified, so is every rank below it. This is the
// property that makes the heap's lower bound (and the cache policy) sound.
func TestCertifiedSetIsPrefixClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for trial := 0; trial < 100; trial++ {
		pois := make([]POI, 25+rng.Intn(50))
		for i := range pois {
			pois[i] = POI{ID: int64(i), Loc: geom.Pt(rng.Float64()*400, rng.Float64()*400)}
		}
		q := geom.Pt(rng.Float64()*400, rng.Float64()*400)
		var peers []PeerCache
		for i := 0; i < 1+rng.Intn(5); i++ {
			loc := geom.Pt(q.X+rng.NormFloat64()*70, q.Y+rng.NormFloat64()*70)
			peers = append(peers, honestCache(loc, pois, 2+rng.Intn(10)))
		}
		h := NewResultHeap(len(pois))
		for _, p := range peers {
			VerifySinglePeer(q, p, h)
		}
		VerifyMultiPeer(q, peers, h)
		certified := map[int64]bool{}
		for _, c := range h.CertainEntries() {
			certified[c.ID] = true
		}
		truth := trueKNN(q, pois, len(pois))
		seenUncertified := false
		for _, r := range truth {
			if certified[r.ID] {
				if seenUncertified {
					t.Fatalf("trial %d: certified set has a rank gap", trial)
				}
			} else {
				seenUncertified = true
			}
		}
	}
}
