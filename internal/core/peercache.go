package core

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// PeerCache is the NN query result a peer shares over the ad-hoc network:
// the location at which the peer issued its most recent kNN query and the
// certain nearest neighbors it obtained, sorted in ascending order of their
// distance to the query location (the paper's <n_i, P> tuples).
//
// The crucial property the verification lemmas rely on: the peer's cached
// set contains every POI within CertainCircle() — the disc centered at
// QueryLoc with radius Radius() — because the cached neighbors are the exact
// top-k of the query location.
type PeerCache struct {
	QueryLoc  geom.Point
	Neighbors []POI
}

// NewPeerCache builds a PeerCache from an unordered neighbor set, sorting by
// distance to the query location.
func NewPeerCache(queryLoc geom.Point, neighbors []POI) PeerCache {
	ns := make([]POI, len(neighbors))
	copy(ns, neighbors)
	sort.Slice(ns, func(i, j int) bool {
		return queryLoc.Dist2(ns[i].Loc) < queryLoc.Dist2(ns[j].Loc)
	})
	return PeerCache{QueryLoc: queryLoc, Neighbors: ns}
}

// IsEmpty reports whether the cache holds no neighbors (nothing to share).
func (pc PeerCache) IsEmpty() bool { return len(pc.Neighbors) == 0 }

// Radius returns Dist(P, n_k): the distance from the cached query location to
// the farthest cached neighbor, i.e. the radius of the peer's certain area.
// It is zero for an empty cache.
func (pc PeerCache) Radius() float64 {
	if len(pc.Neighbors) == 0 {
		return 0
	}
	return pc.QueryLoc.Dist(pc.Neighbors[len(pc.Neighbors)-1].Loc)
}

// CertainCircle returns the disc within which the peer knows every POI.
func (pc PeerCache) CertainCircle() geom.Circle {
	return geom.NewCircle(pc.QueryLoc, pc.Radius())
}

// String implements fmt.Stringer.
func (pc PeerCache) String() string {
	return fmt.Sprintf("peercache(%s, %d neighbors, r=%.2f)",
		pc.QueryLoc, len(pc.Neighbors), pc.Radius())
}

// SortPeersByProximity orders peer caches in ascending distance between
// their cached query locations and the query point q. This is Heuristic 3.3:
// cached query locations closer to Q are more likely to contribute certain
// neighbors, so processing them first tends to fill the heap sooner. The
// input slice is left untouched; hot paths that own their slice should use
// PeerProximitySorter instead.
func SortPeersByProximity(q geom.Point, peers []PeerCache) []PeerCache {
	out := make([]PeerCache, len(peers))
	copy(out, peers)
	s := PeerProximitySorter{Q: q, Peers: out}
	s.Sort()
	return out
}

// PeerProximitySorter is the allocation-free, in-place form of
// SortPeersByProximity for resolver scratch slices. The sort is stable, so
// peers at equal distance keep their gather order and the resolution stays
// deterministic for any worker count.
type PeerProximitySorter struct {
	Q     geom.Point
	Peers []PeerCache
}

// Sort orders Peers in place by ascending distance of their cached query
// location to Q.
func (s *PeerProximitySorter) Sort() { sort.Stable(s) }

func (s *PeerProximitySorter) Len() int { return len(s.Peers) }
func (s *PeerProximitySorter) Less(i, j int) bool {
	return s.Q.Dist2(s.Peers[i].QueryLoc) < s.Q.Dist2(s.Peers[j].QueryLoc)
}
func (s *PeerProximitySorter) Swap(i, j int) {
	s.Peers[i], s.Peers[j] = s.Peers[j], s.Peers[i]
}
