package core

import (
	"sort"

	"repro/internal/geom"
)

// VerifySinglePeer runs the kNN_single verification step (§3.2.1) of one
// peer's cached result against the query point q, adding each of the peer's
// neighbors to the heap as certain or uncertain.
//
// The certainty rule is Lemma 3.2: with δ = Dist(Q, P) and n_k the peer's
// farthest cached neighbor, a neighbor n_i is certain when
//
//	Dist(Q, n_i) + δ <= Dist(P, n_k)
//
// because the disc around Q through n_i then lies entirely inside the peer's
// certain circle, which contains every existing POI the peer knows about.
// Otherwise Lemma 3.1 applies: an unknown POI could hide in the uncovered
// part of the disc, so n_i is only a candidate (uncertain).
func VerifySinglePeer(q geom.Point, peer PeerCache, h *ResultHeap) {
	if peer.IsEmpty() {
		return
	}
	delta := q.Dist(peer.QueryLoc)
	reach := peer.Radius()
	for _, n := range peer.Neighbors {
		d := q.Dist(n.Loc)
		h.Add(Candidate{
			POI:     n,
			Dist:    d,
			Certain: d+delta <= reach+geom.Eps,
		})
	}
}

// CertainRegion returns R_c, the union of the certain circles of all peers
// (Lemma 3.8). The polygonization fidelity of the returned region can be
// tuned with SetPolygonVertices; the default is geom.DefaultPolygonVertices.
func CertainRegion(peers []PeerCache) *geom.Region {
	r := geom.NewRegion()
	for _, p := range peers {
		if !p.IsEmpty() {
			r.Add(p.CertainCircle())
		}
	}
	return r
}

// VerifyMultiPeer runs the kNN_multiple verification step (§3.2.2): it
// merges the certain circles of every peer into the certain region R_c and
// re-examines each candidate neighbor against the whole region. A candidate
// n_i is certain when the disc centered at Q with radius Dist(Q, n_i) is
// fully covered by R_c (Lemma 3.8) — even when no single peer's circle
// covers it (the Figure 7 situation).
//
// Candidates are drawn from the union of all peers' cached neighbors;
// entries already certified in the heap are kept as-is. This convenience
// wrapper allocates fresh scratch per call; resolver loops should hold a
// VerifierScratch and call its method instead.
func VerifyMultiPeer(q geom.Point, peers []PeerCache, h *ResultHeap) {
	var s VerifierScratch
	s.VerifyMultiPeer(q, peers, h)
}

// VerifierScratch holds the reusable buffers of multi-peer verification — the
// certain region, the candidate dedup map, and the candidate sort slice — so
// a resolver worker can run VerifyMultiPeer across many queries with zero
// steady-state heap allocations. The zero value is ready to use. A scratch
// must not be shared between goroutines.
type VerifierScratch struct {
	region *geom.Region
	seen   map[int64]bool
	cands  candSorter
}

// VerifyMultiPeer is the scratch-reusing form of the package-level
// VerifyMultiPeer, with one algorithmic change: instead of running the
// arc-arrangement coverage test once per candidate, it computes the region's
// monotone coverage threshold ρ_max = MaxCoveredRadius(q, ·) once and
// certifies each candidate by the comparison Dist ≤ ρ_max. Coverage of a disc
// centered at Q is monotone in its radius, so the verdicts are identical to
// the per-candidate CoversCircle path (the property test
// TestMonotoneVerificationMatchesCoversCircle pins this), while the
// O(candidates × arrangement) loop collapses to one arrangement pass plus a
// float comparison per candidate.
func (s *VerifierScratch) VerifyMultiPeer(q geom.Point, peers []PeerCache, h *ResultHeap) {
	if h.Complete() {
		return
	}
	if s.region == nil {
		s.region = geom.NewRegion()
	}
	s.region.Reset()
	for _, p := range peers {
		if !p.IsEmpty() {
			s.region.Add(p.CertainCircle())
		}
	}
	if s.region.IsEmpty() {
		return
	}
	cands, maxDist := s.gatherCandidates(q, peers)
	if len(cands) == 0 {
		return
	}
	rho := s.region.MaxCoveredRadius(q, maxDist)
	for i := range cands {
		if h.Complete() {
			return
		}
		c := cands[i]
		if c.Dist <= geom.Eps {
			// Degenerate candidate at Q itself: certain iff Q is covered,
			// matching CoversCircle's point-circle rule.
			c.Certain = s.region.Contains(q)
		} else {
			c.Certain = c.Dist <= rho+geom.Eps
		}
		h.Add(c)
	}
}

// gatherCandidates deduplicates the peers' cached neighbors by POI ID into
// the scratch slice, sorted by the repo's total order (ascending distance,
// ties broken by POI ID) so the verification order — and with it the heap's
// early exit — is independent of peer enumeration order. It returns the
// scratch-backed slice and the largest candidate distance.
func (s *VerifierScratch) gatherCandidates(q geom.Point, peers []PeerCache) ([]Candidate, float64) {
	if s.seen == nil {
		s.seen = make(map[int64]bool)
	} else {
		clear(s.seen)
	}
	s.cands = s.cands[:0]
	maxDist := 0.0
	for _, p := range peers {
		for _, n := range p.Neighbors {
			if s.seen[n.ID] {
				continue
			}
			s.seen[n.ID] = true
			d := q.Dist(n.Loc)
			if d > maxDist {
				maxDist = d
			}
			s.cands = append(s.cands, Candidate{POI: n, Dist: d})
		}
	}
	sort.Sort(&s.cands)
	return s.cands, maxDist
}

// candSorter orders candidates by ascending distance with equal distances
// broken by POI ID — the same total order INE and ServerModule.Range use.
// It implements sort.Interface on the pointer receiver so sorting the
// scratch slice does not allocate (sort.Slice's closure and reflect-based
// swapper both escape to the heap).
type candSorter []Candidate

func (s *candSorter) Len() int { return len(*s) }
func (s *candSorter) Less(i, j int) bool {
	a, b := (*s)[i], (*s)[j]
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}
func (s *candSorter) Swap(i, j int) { (*s)[i], (*s)[j] = (*s)[j], (*s)[i] }

// VerifyMultiPeerPolygonized is VerifyMultiPeer using the paper's
// polygonization + overlay construction at the given fidelity (vertices per
// circle) instead of the exact arc-coverage test. Its "certain" verdicts are
// a conservative subset of VerifyMultiPeer's.
//
// Unlike the exact path, this variant keeps the per-candidate coverage loop:
// the polygonized predicate's sliver thresholds scale with the candidate
// area, so it is not strictly monotone in the radius, and as the
// paper-faithful reference implementation it stays off the query hot path.
func VerifyMultiPeerPolygonized(q geom.Point, peers []PeerCache, h *ResultHeap, vertices int) {
	region := CertainRegion(peers)
	if vertices > 0 {
		region.SetPolygonVertices(vertices)
	}
	if region.IsEmpty() {
		return
	}
	var s VerifierScratch
	cands, _ := s.gatherCandidates(q, peers)
	for i := range cands {
		if h.Complete() {
			return
		}
		c := cands[i]
		c.Certain = region.CoversCirclePolygonized(geom.NewCircle(q, c.Dist))
		h.Add(c)
	}
}
